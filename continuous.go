package uvdiagram

import (
	"uvdiagram/internal/core"
)

// ContinuousPNN is a moving-query session: it tracks a query point and
// re-evaluates the PNN answer set only when the point leaves a provably
// safe circle (see internal/core ContinuousPNN for the safe-radius
// argument) — the continuous location-based-service setting of the
// paper's introduction ([5]–[7]).
type ContinuousPNN = core.ContinuousPNN

// ContinuousStats counts moves versus actual re-evaluations.
type ContinuousStats = core.ContinuousStats

// NewContinuousPNN opens a moving-query session at q over the UV-index.
func (db *DB) NewContinuousPNN(q Point) (*ContinuousPNN, error) {
	return db.index.NewContinuousPNN(q)
}
