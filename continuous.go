package uvdiagram

import (
	"uvdiagram/internal/core"
)

// ContinuousPNN is a moving-query session: it tracks a query point and
// re-evaluates the PNN answer set only when the point leaves a provably
// safe circle (see internal/core ContinuousPNN for the safe-radius
// argument) — the continuous location-based-service setting of the
// paper's introduction ([5]–[7]).
//
// Sessions survive dynamic maintenance: an Insert or Delete that
// touches the session's shard invalidates the safe circle through the
// shard index's mutation generation (mutations confined to other shards
// provably cannot change answers here and leave the circle valid), a
// Rebuild/Compact epoch swap or a Reshard layout swap transparently
// re-opens the session against the fresh index, and a move across a
// shard boundary re-opens it on the owning shard — so a stale answer
// set is never served. The safe circle never extends past the leaf
// region, and therefore never past the shard, so staying inside it can
// never cross a boundary.
type ContinuousPNN struct {
	db    *DB
	lo    *shardLayout // layout the session routed through
	si    int          // shard owning the current position
	ep    *indexEpoch
	sess  *core.ContinuousPNN
	prior ContinuousStats // counters from sessions before epoch/shard swaps
}

// ContinuousStats counts moves versus actual re-evaluations.
type ContinuousStats = core.ContinuousStats

// NewContinuousPNN opens a moving-query session at q over the owning
// shard's UV-index.
func (db *DB) NewContinuousPNN(q Point) (*ContinuousPNN, error) {
	lo := db.lo()
	si := lo.shardIdx(q)
	ep := lo.epAt(si)
	sess, err := ep.index.NewContinuousPNN(q)
	if err != nil {
		return nil, err
	}
	return &ContinuousPNN{db: db, lo: lo, si: si, ep: ep, sess: sess}, nil
}

// Move advances the query point. It returns the current answer IDs
// (sorted, shared slice) and whether a re-evaluation was needed.
func (c *ContinuousPNN) Move(q Point) ([]int32, bool, error) {
	lo := c.db.lo()
	si := lo.shardIdx(q)
	if ep := lo.epAt(si); lo != c.lo || si != c.si || ep.gen != c.ep.gen {
		// Either the layout was replaced (Reshard), the point crossed
		// into another shard, or this shard's index was rebuilt
		// (Compact/Rebuild): the old session's safe circle argues about
		// the wrong index. Re-open on the owning shard's current epoch,
		// carrying the work counters forward.
		st := c.sess.Stats()
		c.prior.Moves += st.Moves
		c.prior.Recomputes += st.Recomputes
		c.prior.IndexIOs += st.IndexIOs
		sess, err := ep.index.NewContinuousPNN(q)
		if err != nil {
			return nil, true, err
		}
		c.lo, c.si, c.ep, c.sess = lo, si, ep, sess
		c.prior.Moves++ // this Move, charged to the fresh session's caller
		return sess.AnswerIDs(), true, nil
	}
	return c.sess.Move(q)
}

// AnswerIDs returns the answer set at the current position (sorted,
// shared slice).
func (c *ContinuousPNN) AnswerIDs() []int32 { return c.sess.AnswerIDs() }

// SafeRegion returns the current safe circle: the answer set is
// guaranteed constant strictly inside it (for the index state it was
// computed at). A zero radius means every move re-evaluates.
func (c *ContinuousPNN) SafeRegion() Circle { return c.sess.SafeRegion() }

// Stats returns the session counters, accumulated across any epoch or
// shard swaps the session survived.
func (c *ContinuousPNN) Stats() ContinuousStats {
	st := c.sess.Stats()
	st.Moves += c.prior.Moves
	st.Recomputes += c.prior.Recomputes
	st.IndexIOs += c.prior.IndexIOs
	return st
}

// Position returns the current query point.
func (c *ContinuousPNN) Position() Point { return c.sess.Position() }
