package uvdiagram

import (
	"uvdiagram/internal/core"
)

// ContinuousPNN is a moving-query session: it tracks a query point and
// re-evaluates the PNN answer set only when the point leaves a provably
// safe circle (see internal/core ContinuousPNN for the safe-radius
// argument) — the continuous location-based-service setting of the
// paper's introduction ([5]–[7]).
//
// Sessions survive dynamic maintenance: an Insert or Delete invalidates
// the safe circle through the index's mutation generation, and a
// Rebuild/Compact epoch swap transparently re-opens the session against
// the fresh index, so a stale answer set is never served.
type ContinuousPNN struct {
	db    *DB
	ep    *indexEpoch
	sess  *core.ContinuousPNN
	prior ContinuousStats // counters from sessions before epoch swaps
}

// ContinuousStats counts moves versus actual re-evaluations.
type ContinuousStats = core.ContinuousStats

// NewContinuousPNN opens a moving-query session at q over the UV-index.
func (db *DB) NewContinuousPNN(q Point) (*ContinuousPNN, error) {
	ep := db.ep()
	sess, err := ep.index.NewContinuousPNN(q)
	if err != nil {
		return nil, err
	}
	return &ContinuousPNN{db: db, ep: ep, sess: sess}, nil
}

// Move advances the query point. It returns the current answer IDs
// (sorted, shared slice) and whether a re-evaluation was needed.
func (c *ContinuousPNN) Move(q Point) ([]int32, bool, error) {
	if ep := c.db.ep(); ep.gen != c.ep.gen {
		// The index was rebuilt (Compact/Rebuild): the old session's
		// safe circle argues about a retired epoch. Re-open on the new
		// one, carrying the work counters forward.
		st := c.sess.Stats()
		c.prior.Moves += st.Moves
		c.prior.Recomputes += st.Recomputes
		c.prior.IndexIOs += st.IndexIOs
		sess, err := ep.index.NewContinuousPNN(q)
		if err != nil {
			return nil, true, err
		}
		c.ep, c.sess = ep, sess
		c.prior.Moves++ // this Move, charged to the fresh session's caller
		return sess.AnswerIDs(), true, nil
	}
	return c.sess.Move(q)
}

// AnswerIDs returns the answer set at the current position (sorted,
// shared slice).
func (c *ContinuousPNN) AnswerIDs() []int32 { return c.sess.AnswerIDs() }

// SafeRegion returns the current safe circle: the answer set is
// guaranteed constant strictly inside it (for the index state it was
// computed at). A zero radius means every move re-evaluates.
func (c *ContinuousPNN) SafeRegion() Circle { return c.sess.SafeRegion() }

// Stats returns the session counters, accumulated across any epoch
// swaps the session survived.
func (c *ContinuousPNN) Stats() ContinuousStats {
	st := c.sess.Stats()
	st.Moves += c.prior.Moves
	st.Recomputes += c.prior.Recomputes
	st.IndexIOs += c.prior.IndexIOs
	return st
}

// Position returns the current query point.
func (c *ContinuousPNN) Position() Point { return c.sess.Position() }
