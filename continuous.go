package uvdiagram

import (
	"uvdiagram/internal/core"
)

// ContinuousPNN is a moving-query session: it tracks a query point and
// re-evaluates the PNN answer set only when the point leaves a provably
// safe circle (see internal/core ContinuousPNN for the safe-radius
// argument) — the continuous location-based-service setting of the
// paper's introduction ([5]–[7]).
//
// Sessions survive dynamic maintenance: an Insert or Delete that
// touches the session's shard invalidates the safe circle through the
// shard index's mutation generation (mutations confined to other shards
// provably cannot change answers here and leave the circle valid), a
// Rebuild/Compact epoch swap or a Reshard layout swap transparently
// re-opens the session against the fresh index, and a move across a
// shard boundary re-opens it on the owning shard — so a stale answer
// set is never served. The safe circle never extends past the leaf
// region, and therefore never past the shard, so staying inside it can
// never cross a boundary.
type ContinuousPNN struct {
	db    *DB
	lo    *shardLayout // layout the session routed through
	si    int          // shard owning the current position
	ep    *indexEpoch
	sess  *core.ContinuousPNN
	prior ContinuousStats // counters from sessions before epoch/shard swaps
}

// ContinuousStats counts moves versus actual re-evaluations.
type ContinuousStats = core.ContinuousStats

// NewContinuousPNN opens a moving-query session at q over the owning
// shard's UV-index. An out-of-domain q fails with a *DomainError
// (matching ErrOutOfDomain).
func (db *DB) NewContinuousPNN(q Point) (*ContinuousPNN, error) {
	if !db.domain.Contains(q) {
		return nil, &DomainError{Point: q, Domain: db.domain}
	}
	t := db.egc.Pin()
	defer db.egc.Unpin(t)
	lo := db.lo()
	si := lo.shardIdx(q)
	ep := lo.epAt(si)
	sess, err := ep.index.NewContinuousPNN(q)
	if err != nil {
		return nil, err
	}
	return &ContinuousPNN{db: db, lo: lo, si: si, ep: ep, sess: sess}, nil
}

// Move advances the query point. It returns the current answer IDs
// (sorted, shared slice) and whether a re-evaluation was needed. A move
// out of the domain fails with a *DomainError (matching ErrOutOfDomain)
// and leaves the session at its last valid position.
func (c *ContinuousPNN) Move(q Point) ([]int32, bool, error) {
	if !c.db.domain.Contains(q) {
		return nil, false, &DomainError{Point: q, Domain: c.db.domain}
	}
	t := c.db.egc.Pin()
	defer c.db.egc.Unpin(t)
	lo := c.db.lo()
	si := lo.shardIdx(q)
	return c.advance(lo, si, lo.epAt(si), q, nil, true)
}

// Revalidate re-evaluates the session at its CURRENT position if — and
// only if — the index state its safe circle was computed against has
// changed: a mutation on the owning shard, a Compact/Rebuild epoch swap
// or a Reshard layout swap. An untouched engine returns immediately on
// atomic generation comparisons, so calling it after every database
// write is cheap for the (typical) sessions the write did not affect.
// It returns the current answer IDs (sorted, shared slice) and whether
// a re-evaluation ran; unlike Move it does not count a move.
func (c *ContinuousPNN) Revalidate() ([]int32, bool, error) {
	t := c.db.egc.Pin()
	defer c.db.egc.Unpin(t)
	lo := c.db.lo()
	q := c.sess.Position()
	si := lo.shardIdx(q)
	return c.advance(lo, si, lo.epAt(si), q, nil, false)
}

// advance is the ONE re-open + move path shared by Move, Revalidate and
// DB.AdvanceAll. When the layout was replaced (Reshard), the point
// crossed into another shard, or the shard's index was swapped
// (Compact/Rebuild), the old session's safe circle argues about the
// wrong index: the session re-opens on the owning shard's current
// epoch, carrying the work counters forward. Otherwise the core
// session's safe-circle check runs. Counters fold into prior only AFTER
// a successful re-open: on failure (the fresh evaluation can fail, e.g.
// on an out-of-domain point) the live session and its tallies stay
// current, so the next successful call neither double-counts the folded
// work nor leaves the session bound to a dead epoch forever.
func (c *ContinuousPNN) advance(lo *shardLayout, si int, ep *indexEpoch, q Point, cache *core.LeafCache, move bool) ([]int32, bool, error) {
	if lo != c.lo || si != c.si || ep.gen != c.ep.gen {
		sess, err := ep.index.NewContinuousPNNCached(q, cache)
		if err != nil {
			return nil, true, err
		}
		st := c.sess.Stats()
		c.prior.Moves += st.Moves
		c.prior.Recomputes += st.Recomputes
		c.prior.IndexIOs += st.IndexIOs
		c.lo, c.si, c.ep, c.sess = lo, si, ep, sess
		if move {
			c.prior.Moves++ // this Move, charged to the fresh session's caller
		}
		return sess.AnswerIDs(), true, nil
	}
	if move {
		return c.sess.MoveCached(q, cache)
	}
	return c.sess.RevalidateCached(cache)
}

// AnswerIDs returns the answer set at the current position (sorted,
// shared slice).
func (c *ContinuousPNN) AnswerIDs() []int32 { return c.sess.AnswerIDs() }

// SafeRegion returns the current safe circle: the answer set is
// guaranteed constant strictly inside it (for the index state it was
// computed at). A zero radius means every move re-evaluates.
func (c *ContinuousPNN) SafeRegion() Circle { return c.sess.SafeRegion() }

// Stats returns the session counters, accumulated across any epoch or
// shard swaps the session survived.
func (c *ContinuousPNN) Stats() ContinuousStats {
	st := c.sess.Stats()
	st.Moves += c.prior.Moves
	st.Recomputes += c.prior.Recomputes
	st.IndexIOs += c.prior.IndexIOs
	return st
}

// Position returns the current query point.
func (c *ContinuousPNN) Position() Point { return c.sess.Position() }
