package uvdiagram_test

// Perf smoke gate: the derivation fast path must not regress more than
// 2x against the committed ns/op baseline (perf_baseline.json,
// measured on the CI container class by `go test -run
// TestDerivePerfSmoke -update-perf-baseline`). The threshold is
// deliberately generous — this is a soft gate against accidental
// O(n)-regressions in the hot path, not a precision benchmark — and the
// test is skipped under -short and under the race detector (both
// distort timing far beyond the threshold).

import (
	"encoding/json"
	"flag"
	"os"
	"testing"
	"time"

	"uvdiagram/internal/core"
)

const perfBaselinePath = "perf_baseline.json"

var updatePerfBaseline = flag.Bool("update-perf-baseline", false,
	"rewrite perf_baseline.json with this machine's measurement")

type perfBaseline struct {
	// DeriveNSPerOp is the wall clock of one whole-population
	// DeriveCRSets pass at n=800 (paper defaults, strategy IC),
	// best of three runs.
	DeriveNSPerOp int64  `json:"derive_ns_per_op"`
	Note          string `json:"note"`
}

func TestDerivePerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke skipped with -short")
	}
	if raceEnabled {
		t.Skip("perf smoke skipped under the race detector")
	}

	f := getDeriveFixture(t, 800)
	best := time.Duration(1<<63 - 1)
	for run := 0; run < 3; run++ {
		t0 := time.Now()
		if _, _, err := core.DeriveCRSets(f.store, f.cfg.Domain(), f.tree, f.opts); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}

	if *updatePerfBaseline {
		buf, err := json.MarshalIndent(perfBaseline{
			DeriveNSPerOp: best.Nanoseconds(),
			Note:          "DeriveCRSets n=800, IC, paper defaults, best of 3; CI fails soft at >2x",
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(perfBaselinePath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %v", perfBaselinePath, best)
		return
	}

	raw, err := os.ReadFile(perfBaselinePath)
	if err != nil {
		t.Fatalf("no committed baseline (%v); run with -update-perf-baseline", err)
	}
	var base perfBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	limit := time.Duration(2 * base.DeriveNSPerOp)
	t.Logf("derive n=800: %v (baseline %v, limit %v)", best, time.Duration(base.DeriveNSPerOp), limit)
	if best > limit {
		t.Fatalf("derivation perf smoke: %v exceeds 2x the committed baseline %v — the hot path regressed (rebaseline deliberately with -update-perf-baseline if this is expected)",
			best, time.Duration(base.DeriveNSPerOp))
	}
}
