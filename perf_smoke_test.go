package uvdiagram_test

// Perf smoke gate: the derivation fast path must not regress more than
// 2x against the committed ns/op baseline (perf_baseline.json,
// measured on the CI container class by `go test -run
// TestDerivePerfSmoke -update-perf-baseline`). The threshold is
// deliberately generous — this is a soft gate against accidental
// O(n)-regressions in the hot path, not a precision benchmark — and the
// test is skipped under -short and under the race detector (both
// distort timing far beyond the threshold).

import (
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"testing"
	"time"

	"uvdiagram"
	"uvdiagram/internal/core"
	"uvdiagram/internal/datagen"
)

const perfBaselinePath = "perf_baseline.json"

var updatePerfBaseline = flag.Bool("update-perf-baseline", false,
	"rewrite perf_baseline.json with this machine's measurement")

type perfBaseline struct {
	// DeriveNSPerOp is the wall clock of one whole-population
	// DeriveCRSets pass at n=800 (paper defaults, strategy IC),
	// best of three runs.
	DeriveNSPerOp int64 `json:"derive_ns_per_op"`
	// ContinuousMoveNSPerOp is the mean wall clock of one
	// ContinuousPNN.Move on a smooth trajectory at n=2000 (mostly
	// safe-circle absorptions with periodic recomputes), best of three
	// runs.
	ContinuousMoveNSPerOp int64 `json:"continuous_move_ns_per_op"`
	// MaintainTickNSPerOp is the mean wall clock of one idle
	// Maintainer.Tick (imbalance sample + slack sweep, no reshard) on a
	// balanced 4-shard database at n=2000, best of three runs — the
	// steady-state overhead a deployment pays every sampling interval.
	MaintainTickNSPerOp int64 `json:"maintain_tick_ns_per_op"`
	// OrderKBuildNSPerObj is the per-object wall clock of a whole
	// BuildOrderK (k=2, default options) at n=800 on the scratch-threaded
	// fast path, best of three runs.
	OrderKBuildNSPerObj int64 `json:"orderk_build_ns_per_obj"`
	// Build3NSPerObj is the per-object wall clock of a whole 3D Build3
	// (default options) at n=600 on the scratch-threaded fast path, best
	// of three runs.
	Build3NSPerObj int64 `json:"build3_ns_per_obj"`
	// DeleteNSPerOp is the mean wall clock of one DB.Delete on a
	// steady 2000-object population at the churn experiment's density
	// (the output-sensitive path: tightness triage, selective
	// re-derivation, COW leaf surgery), best of three runs.
	DeleteNSPerOp int64 `json:"delete_ns_per_op"`
	// RederivedObjsPerDelete is the mean number of dependents the same
	// run re-derived per delete — the output-sensitivity signal. CI
	// fails soft if it doubles: the tightness triage stopped skipping.
	RederivedObjsPerDelete float64 `json:"rederived_objs_per_delete"`
	// OutOfCorePNNNSPerQuery is the per-query wall clock of one batched
	// PNN round (256 queries, 4 workers) against a database served
	// mmap-backed off a v5 snapshot at n=2000, best of three rounds.
	OutOfCorePNNNSPerQuery int64  `json:"outofcore_pnn_ns_per_query"`
	Note                   string `json:"note"`
}

// loadPerfBaseline reads the committed baseline; absent file is fatal
// in gate mode (the caller names the rebaseline flag).
func loadPerfBaseline(t *testing.T) perfBaseline {
	raw, err := os.ReadFile(perfBaselinePath)
	if err != nil {
		t.Fatalf("no committed baseline (%v); run with -update-perf-baseline", err)
	}
	var base perfBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	return base
}

// updatePerfBaselineField read-modify-writes one field of the baseline
// file, so each smoke test can rebaseline its own metric without
// clobbering the others'.
func updatePerfBaselineField(t *testing.T, mutate func(*perfBaseline)) {
	var base perfBaseline
	if raw, err := os.ReadFile(perfBaselinePath); err == nil {
		if err := json.Unmarshal(raw, &base); err != nil {
			t.Fatal(err)
		}
	}
	mutate(&base)
	base.Note = "best-of-3 wall clocks on the CI container class; CI fails soft at >2x"
	buf, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(perfBaselinePath, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDerivePerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke skipped with -short")
	}
	if raceEnabled {
		t.Skip("perf smoke skipped under the race detector")
	}

	f := getDeriveFixture(t, 800)
	best := time.Duration(1<<63 - 1)
	for run := 0; run < 3; run++ {
		t0 := time.Now()
		if _, _, err := core.DeriveCRSets(f.store, f.cfg.Domain(), f.tree, f.opts); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}

	if *updatePerfBaseline {
		updatePerfBaselineField(t, func(b *perfBaseline) { b.DeriveNSPerOp = best.Nanoseconds() })
		t.Logf("wrote %s: derive %v", perfBaselinePath, best)
		return
	}

	base := loadPerfBaseline(t)
	limit := time.Duration(2 * base.DeriveNSPerOp)
	t.Logf("derive n=800: %v (baseline %v, limit %v)", best, time.Duration(base.DeriveNSPerOp), limit)
	if best > limit {
		t.Fatalf("derivation perf smoke: %v exceeds 2x the committed baseline %v — the hot path regressed (rebaseline deliberately with -update-perf-baseline if this is expected)",
			best, time.Duration(base.DeriveNSPerOp))
	}
}

// TestContinuousMovePerfSmoke gates the moving-query hot path: a
// smooth random walk where most moves land inside the safe circle
// (cheap point-in-circle checks) and the rest re-evaluate. A >2x
// regression means either the absorption fast path grew work or the
// safe circles collapsed (recompute rate explosion) — both of which
// the subscription engine's push economy depends on.
func TestContinuousMovePerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke skipped with -short")
	}
	if raceEnabled {
		t.Skip("perf smoke skipped under the race detector")
	}

	cfg := datagen.Config{N: 2000, Side: 10000, Diameter: 40, Seed: 20100301}
	db, err := uvdiagram.Build(datagen.Uniform(cfg), cfg.Domain(), nil)
	if err != nil {
		t.Fatal(err)
	}

	const moves = 20000
	const step = 0.5 // well under the observed safe radii (1–20 units)
	best := time.Duration(1<<63 - 1)
	for run := 0; run < 3; run++ {
		rng := rand.New(rand.NewSource(99))
		pos := uvdiagram.Pt(cfg.Side/2, cfg.Side/2)
		sess, err := db.NewContinuousPNN(pos)
		if err != nil {
			t.Fatal(err)
		}
		t0 := time.Now()
		for i := 0; i < moves; i++ {
			pos.X = clampCoord(pos.X+(rng.Float64()*2-1)*step, 1, cfg.Side-1)
			pos.Y = clampCoord(pos.Y+(rng.Float64()*2-1)*step, 1, cfg.Side-1)
			if _, _, err := sess.Move(pos); err != nil {
				t.Fatal(err)
			}
		}
		if d := time.Since(t0) / moves; d < best {
			best = d
		}
	}

	if *updatePerfBaseline {
		updatePerfBaselineField(t, func(b *perfBaseline) { b.ContinuousMoveNSPerOp = best.Nanoseconds() })
		t.Logf("wrote %s: continuous move %v", perfBaselinePath, best)
		return
	}

	base := loadPerfBaseline(t)
	if base.ContinuousMoveNSPerOp == 0 {
		t.Skip("no continuous baseline committed yet; run with -update-perf-baseline")
	}
	limit := time.Duration(2 * base.ContinuousMoveNSPerOp)
	t.Logf("continuous move n=%d: %v/op (baseline %v, limit %v)", cfg.N, best, time.Duration(base.ContinuousMoveNSPerOp), limit)
	if best > limit {
		t.Fatalf("continuous move perf smoke: %v/op exceeds 2x the committed baseline %v — the safe-circle fast path regressed (rebaseline deliberately with -update-perf-baseline if this is expected)",
			best, time.Duration(base.ContinuousMoveNSPerOp))
	}
}

// TestMaintainTickPerfSmoke gates the maintenance controller's idle
// cost: one Tick on a balanced database is an imbalance sample plus a
// per-shard slack sweep and must stay microseconds-cheap, or running
// the controller at second-scale intervals would tax the server it is
// supposed to protect. A >2x regression means the sampling path grew
// per-object work.
func TestMaintainTickPerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke skipped with -short")
	}
	if raceEnabled {
		t.Skip("perf smoke skipped under the race detector")
	}

	cfg := datagen.Config{N: 2000, Side: 10000, Diameter: 40, Seed: 20100301}
	db, err := uvdiagram.Build(datagen.Uniform(cfg), cfg.Domain(), &uvdiagram.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := db.StartMaintainer(uvdiagram.MaintainOptions{Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	const ticks = 5000
	best := time.Duration(1<<63 - 1)
	for run := 0; run < 3; run++ {
		t0 := time.Now()
		for i := 0; i < ticks; i++ {
			m.Tick()
		}
		if d := time.Since(t0) / ticks; d < best {
			best = d
		}
	}

	if *updatePerfBaseline {
		updatePerfBaselineField(t, func(b *perfBaseline) { b.MaintainTickNSPerOp = best.Nanoseconds() })
		t.Logf("wrote %s: maintain tick %v", perfBaselinePath, best)
		return
	}

	base := loadPerfBaseline(t)
	if base.MaintainTickNSPerOp == 0 {
		t.Skip("no maintain-tick baseline committed yet; run with -update-perf-baseline")
	}
	limit := time.Duration(2 * base.MaintainTickNSPerOp)
	t.Logf("maintain tick n=%d: %v/op (baseline %v, limit %v)", cfg.N, best, time.Duration(base.MaintainTickNSPerOp), limit)
	if best > limit {
		t.Fatalf("maintain tick perf smoke: %v/op exceeds 2x the committed baseline %v — the controller's sampling path regressed (rebaseline deliberately with -update-perf-baseline if this is expected)",
			best, time.Duration(base.MaintainTickNSPerOp))
	}
}

// TestOrderKBuildPerfSmoke gates the order-k build fast path
// end-to-end: Workers-parallel scratch-threaded derivation (cross-round
// bound cache, reduced-edge golden polish) plus sequential index
// insertion. A >2x regression means the derivation hot path grew
// per-candidate work or started allocating per round again.
func TestOrderKBuildPerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke skipped with -short")
	}
	if raceEnabled {
		t.Skip("perf smoke skipped under the race detector")
	}

	const n, k = 800, 2
	f := getDeriveFixture(t, n)
	best := time.Duration(1<<63 - 1)
	for run := 0; run < 3; run++ {
		t0 := time.Now()
		if _, _, err := core.BuildOrderK(f.store, f.cfg.Domain(), f.tree, k, f.opts); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0) / n; d < best {
			best = d
		}
	}

	if *updatePerfBaseline {
		updatePerfBaselineField(t, func(b *perfBaseline) { b.OrderKBuildNSPerObj = best.Nanoseconds() })
		t.Logf("wrote %s: orderk build %v/obj", perfBaselinePath, best)
		return
	}

	base := loadPerfBaseline(t)
	if base.OrderKBuildNSPerObj == 0 {
		t.Skip("no order-k baseline committed yet; run with -update-perf-baseline")
	}
	limit := time.Duration(2 * base.OrderKBuildNSPerObj)
	t.Logf("orderk build n=%d k=%d: %v/obj (baseline %v, limit %v)", n, k, best, time.Duration(base.OrderKBuildNSPerObj), limit)
	if best > limit {
		t.Fatalf("order-k build perf smoke: %v/obj exceeds 2x the committed baseline %v — the order-k fast path regressed (rebaseline deliberately with -update-perf-baseline if this is expected)",
			best, time.Duration(base.OrderKBuildNSPerObj))
	}
}

// TestBuild3PerfSmoke gates the 3D build fast path end-to-end:
// scratch-threaded derivation over the hash grid (per-candidate bound
// rows over the direction lattice, evaluated once per derive call) plus
// sequential octree insertion. A >2x regression means the 3D hot path
// grew per-direction work or started allocating per round again.
func TestBuild3PerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke skipped with -short")
	}
	if raceEnabled {
		t.Skip("perf smoke skipped under the race detector")
	}

	const n = 600
	const side = 1000.0
	rng := rand.New(rand.NewSource(26))
	objs := make([]uvdiagram.Object3, n)
	for i := range objs {
		objs[i] = uvdiagram.NewObject3(int32(i), rng.Float64()*side, rng.Float64()*side, rng.Float64()*side, 1.5, nil)
	}
	domain := uvdiagram.CubeDomain(side)

	best := time.Duration(1<<63 - 1)
	for run := 0; run < 3; run++ {
		t0 := time.Now()
		if _, err := uvdiagram.Build3(objs, domain, nil); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0) / n; d < best {
			best = d
		}
	}

	if *updatePerfBaseline {
		updatePerfBaselineField(t, func(b *perfBaseline) { b.Build3NSPerObj = best.Nanoseconds() })
		t.Logf("wrote %s: 3D build %v/obj", perfBaselinePath, best)
		return
	}

	base := loadPerfBaseline(t)
	if base.Build3NSPerObj == 0 {
		t.Skip("no 3D build baseline committed yet; run with -update-perf-baseline")
	}
	limit := time.Duration(2 * base.Build3NSPerObj)
	t.Logf("build3 n=%d: %v/obj (baseline %v, limit %v)", n, best, time.Duration(base.Build3NSPerObj), limit)
	if best > limit {
		t.Fatalf("3D build perf smoke: %v/obj exceeds 2x the committed baseline %v — the 3D fast path regressed (rebaseline deliberately with -update-perf-baseline if this is expected)",
			best, time.Duration(base.Build3NSPerObj))
	}
}

func clampCoord(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// TestMutationPerfSmoke gates the output-sensitive delete path: mean
// Delete wall clock and mean re-derived dependents per delete on a
// steady population. A >2x ns/op regression means the COW surgery or
// the triage grew work; a >2x rederived-per-delete regression means the
// tightness classifier stopped skipping and deletes degraded back
// toward re-deriving every dependent.
func TestMutationPerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke skipped with -short")
	}
	if raceEnabled {
		t.Skip("perf smoke skipped under the race detector")
	}

	cfg := datagen.Config{N: 2000, Side: 7000, Diameter: 40, Seed: 7}
	db, err := uvdiagram.Build(datagen.Uniform(cfg), cfg.Domain(), &uvdiagram.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	live := make([]int32, cfg.N)
	for i := range live {
		live[i] = int32(i)
	}
	const dels = 60
	best := time.Duration(1<<63 - 1)
	cursor := 0
	for run := 0; run < 3; run++ {
		var spent time.Duration
		for i := 0; i < dels; i++ {
			k := cursor % len(live)
			cursor++
			t0 := time.Now()
			if err := db.Delete(live[k]); err != nil {
				t.Fatal(err)
			}
			spent += time.Since(t0)
			o := uvdiagram.NewObject(db.NextID(), float64(37+(cursor*131)%6900), float64(91+(cursor*197)%6900), 20, nil)
			if err := db.Insert(o); err != nil {
				t.Fatal(err)
			}
			live[k] = o.ID
		}
		if d := spent / dels; d < best {
			best = d
		}
	}
	ms := db.MutationStats()
	rederived := float64(ms.Rederived) / float64(ms.Deletes)

	if *updatePerfBaseline {
		updatePerfBaselineField(t, func(b *perfBaseline) {
			b.DeleteNSPerOp = best.Nanoseconds()
			b.RederivedObjsPerDelete = rederived
		})
		t.Logf("wrote %s: delete %v, rederived/delete %.2f", perfBaselinePath, best, rederived)
		return
	}

	base := loadPerfBaseline(t)
	if base.DeleteNSPerOp == 0 {
		t.Skip("no mutation baseline committed yet; run with -update-perf-baseline")
	}
	t.Logf("delete n=%d: %v/op, %.2f rederived/delete (baselines %v, %.2f)",
		cfg.N, best, rederived, time.Duration(base.DeleteNSPerOp), base.RederivedObjsPerDelete)
	if best > time.Duration(2*base.DeleteNSPerOp) {
		t.Fatalf("mutation perf smoke: delete %v/op exceeds 2x the committed baseline %v — the output-sensitive path regressed (rebaseline deliberately with -update-perf-baseline if this is expected)",
			best, time.Duration(base.DeleteNSPerOp))
	}
	if base.RederivedObjsPerDelete > 0 && rederived > 2*base.RederivedObjsPerDelete {
		t.Fatalf("mutation perf smoke: %.2f re-derived dependents per delete exceeds 2x the committed baseline %.2f — the tightness triage stopped skipping (rebaseline deliberately with -update-perf-baseline if this is expected)",
			rederived, base.RederivedObjsPerDelete)
	}
}

// TestOutOfCorePerfSmoke gates the out-of-core serving hot path:
// per-query wall clock of a batched PNN round against a database
// served mmap-backed off a v5 snapshot. A >2x regression means the
// zero-copy read path started copying or the snapshot open stopped
// handing queries page views (the full heap-vs-mmap-vs-capped economy
// lives in `uvbench -exp outofcore` / BENCH_outofcore.json).
func TestOutOfCorePerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke skipped with -short")
	}
	if raceEnabled {
		t.Skip("perf smoke skipped under the race detector")
	}

	f := getOutOfCoreFixture(t)
	opts := &uvdiagram.BatchOptions{Workers: 4, CacheSize: 256}
	best := time.Duration(1<<63 - 1)
	for run := 0; run < 3; run++ {
		t0 := time.Now()
		if _, err := f.db.BatchNN(f.queries, opts); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0) / time.Duration(len(f.queries)); d < best {
			best = d
		}
	}

	if *updatePerfBaseline {
		updatePerfBaselineField(t, func(b *perfBaseline) { b.OutOfCorePNNNSPerQuery = best.Nanoseconds() })
		t.Logf("wrote %s: out-of-core batched PNN %v/query", perfBaselinePath, best)
		return
	}

	base := loadPerfBaseline(t)
	if base.OutOfCorePNNNSPerQuery == 0 {
		t.Skip("no out-of-core baseline committed yet; run with -update-perf-baseline")
	}
	limit := time.Duration(2 * base.OutOfCorePNNNSPerQuery)
	t.Logf("out-of-core batched PNN n=2000: %v/query (baseline %v, limit %v)", best, time.Duration(base.OutOfCorePNNNSPerQuery), limit)
	if best > limit {
		t.Fatalf("out-of-core perf smoke: %v/query exceeds 2x the committed baseline %v — the mmap serving path regressed (rebaseline deliberately with -update-perf-baseline if this is expected)",
			best, time.Duration(base.OutOfCorePNNNSPerQuery))
	}
}
