package uvdiagram

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"uvdiagram/internal/core"
	"uvdiagram/internal/pager"
	"uvdiagram/internal/uncertain"
)

// Database persistence: Save writes the objects and the built UV-index;
// Load reopens them without re-running construction (the helper R-tree
// is re-bulk-loaded, which is cheap). The stream is self-contained and
// versioned.

const (
	dbMagic = 0x55564442 // "UVDB"
	// dbVersion 2 added a per-object tombstone flag so a database with
	// deletions round-trips; version-1 streams are still readable and
	// imply every object is live.
	dbVersion = 2
)

// Save serializes the database (objects + UV-index) to w.
func (db *DB) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var scratch [8]byte
	u32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	f64 := func(v float64) error {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
		_, err := bw.Write(scratch[:])
		return err
	}
	if err := u32(dbMagic); err != nil {
		return err
	}
	if err := u32(dbVersion); err != nil {
		return err
	}
	for _, v := range []float64{db.domain.Min.X, db.domain.Min.Y, db.domain.Max.X, db.domain.Max.Y} {
		if err := f64(v); err != nil {
			return err
		}
	}
	// The dense slice keeps deleted slots in place: ids are positions,
	// and the index stream refers to objects by id.
	objs := db.store.Dense()
	if err := u32(uint32(len(objs))); err != nil {
		return err
	}
	for i, o := range objs {
		aliveFlag := byte(0)
		if db.store.Alive(int32(i)) {
			aliveFlag = 1
		}
		if err := bw.WriteByte(aliveFlag); err != nil {
			return err
		}
		if err := f64(o.Region.C.X); err != nil {
			return err
		}
		if err := f64(o.Region.C.Y); err != nil {
			return err
		}
		if err := f64(o.Region.R); err != nil {
			return err
		}
		ws := o.PDF.Weights()
		if err := u32(uint32(len(ws))); err != nil {
			return err
		}
		for _, wgt := range ws {
			if err := f64(wgt); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := db.ep().index.Save(w); err != nil {
		return err
	}
	return nil
}

// Load reopens a database written by Save. opts only affect future
// Inserts (seed/pruning parameters); the index structure itself comes
// from the stream.
func Load(r io.Reader, opts *Options) (*DB, error) {
	br := bufio.NewReader(r)
	var scratch [8]byte
	u32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	f64 := func() (float64, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(scratch[:])), nil
	}
	magic, err := u32()
	if err != nil {
		return nil, fmt.Errorf("uvdiagram: reading header: %w", err)
	}
	if magic != dbMagic {
		return nil, fmt.Errorf("uvdiagram: not a UV-diagram database stream")
	}
	version, err := u32()
	if err != nil || (version != 1 && version != dbVersion) {
		return nil, fmt.Errorf("uvdiagram: unsupported version %d (err=%v)", version, err)
	}
	var coords [4]float64
	for i := range coords {
		if coords[i], err = f64(); err != nil {
			return nil, fmt.Errorf("uvdiagram: reading domain: %w", err)
		}
	}
	domain := Rect{Min: Pt(coords[0], coords[1]), Max: Pt(coords[2], coords[3])}
	n, err := u32()
	if err != nil {
		return nil, fmt.Errorf("uvdiagram: reading object count: %w", err)
	}
	if n == 0 || n > 1<<26 {
		return nil, fmt.Errorf("uvdiagram: implausible object count %d", n)
	}
	objs := make([]Object, n)
	deadIDs := make([]int32, 0)
	for i := range objs {
		if version >= 2 {
			flag, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("uvdiagram: reading object %d tombstone: %w", i, err)
			}
			if flag == 0 {
				deadIDs = append(deadIDs, int32(i))
			}
		}
		var x, y, rad float64
		if x, err = f64(); err == nil {
			if y, err = f64(); err == nil {
				rad, err = f64()
			}
		}
		if err != nil {
			return nil, fmt.Errorf("uvdiagram: reading object %d: %w", i, err)
		}
		bins, err := u32()
		if err != nil || bins == 0 || bins > 4096 {
			return nil, fmt.Errorf("uvdiagram: object %d has bad pdf (%d bins, err=%v)", i, bins, err)
		}
		ws := make([]float64, bins)
		for k := range ws {
			if ws[k], err = f64(); err != nil {
				return nil, fmt.Errorf("uvdiagram: reading object %d pdf: %w", i, err)
			}
		}
		pdf, err := uncertain.NewHistogramPDF(ws)
		if err != nil {
			return nil, fmt.Errorf("uvdiagram: object %d: %w", i, err)
		}
		objs[i] = NewObject(int32(i), x, y, rad, pdf)
	}

	store, err := uncertain.NewStore(objs, pager.New(uncertain.ObjectPageBytes))
	if err != nil {
		return nil, err
	}
	for _, id := range deadIDs {
		if err := store.Delete(id); err != nil {
			return nil, err
		}
	}
	bopts := opts.toBuildOptions()
	tree := core.BuildHelperRTree(store, bopts.Fanout) // live objects only
	index, err := core.LoadUVIndex(br, store)
	if err != nil {
		return nil, err
	}
	built := BuildStats{Strategy: bopts.Strategy, N: store.Live(), Index: index.Stats()}
	db := &DB{store: store, domain: domain, bopts: bopts}
	db.epoch.Store(&indexEpoch{index: index, tree: tree, built: built})
	return db, nil
}
