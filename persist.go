package uvdiagram

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"uvdiagram/internal/core"
	"uvdiagram/internal/epoch"
	"uvdiagram/internal/pager"
	"uvdiagram/internal/rtree"
	"uvdiagram/internal/uncertain"
)

// Database persistence: Save writes the objects and the built
// UV-index(es); Load reopens them without re-running construction (the
// helper R-tree is re-bulk-loaded, which is cheap). The stream is
// self-contained and versioned.

const (
	dbMagic = 0x55564442 // "UVDB"
	// dbVersion 2 added a per-object tombstone flag so a database with
	// deletions round-trips; version-1 streams are still readable and
	// imply every object is live. Version 3 adds the spatial shard
	// layout (gx × gy grid) followed by one index stream per shard.
	// Version 4 adds the layout's cut coordinates for adaptive
	// (weighted-median or resharded) layouts; a sharded database whose
	// cuts are exactly the equal strips keeps writing the byte-
	// compatible version 3, single-shard databases keep writing
	// version 2, and Load accepts all four.
	dbVersion        = 2
	dbVersionSharded = 3
	dbVersionCuts    = 4
)

// Save serializes the database (objects + UV-indexes) to w. A
// single-shard database writes the backward-compatible version-2
// stream; an equal-strip sharded one writes version 3 (byte-compatible
// with pre-adaptive readers); an adaptively cut layout writes version 4
// with its cut coordinates.
func (db *DB) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var scratch [8]byte
	u32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	f64 := func(v float64) error {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
		_, err := bw.Write(scratch[:])
		return err
	}
	if err := u32(dbMagic); err != nil {
		return err
	}
	lo := db.lo()
	version := uint32(dbVersion)
	if len(lo.shards) > 1 {
		if equalStripLayout(lo, db.domain) {
			version = dbVersionSharded
		} else {
			version = dbVersionCuts
		}
	}
	if err := u32(version); err != nil {
		return err
	}
	for _, v := range []float64{db.domain.Min.X, db.domain.Min.Y, db.domain.Max.X, db.domain.Max.Y} {
		if err := f64(v); err != nil {
			return err
		}
	}
	if version >= dbVersionSharded {
		if err := u32(uint32(lo.gx)); err != nil {
			return err
		}
		if err := u32(uint32(lo.gy)); err != nil {
			return err
		}
	}
	if version >= dbVersionCuts {
		for _, v := range lo.xs {
			if err := f64(v); err != nil {
				return err
			}
		}
		for _, v := range lo.ys {
			if err := f64(v); err != nil {
				return err
			}
		}
	}
	// The dense slice keeps deleted slots in place: ids are positions,
	// and the index stream refers to objects by id.
	objs := db.store.Dense()
	if err := u32(uint32(len(objs))); err != nil {
		return err
	}
	for i, o := range objs {
		aliveFlag := byte(0)
		if db.store.Alive(int32(i)) {
			aliveFlag = 1
		}
		if err := bw.WriteByte(aliveFlag); err != nil {
			return err
		}
		if err := f64(o.Region.C.X); err != nil {
			return err
		}
		if err := f64(o.Region.C.Y); err != nil {
			return err
		}
		if err := f64(o.Region.R); err != nil {
			return err
		}
		ws := o.PDF.Weights()
		if err := u32(uint32(len(ws))); err != nil {
			return err
		}
		for _, wgt := range ws {
			if err := f64(wgt); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// One index stream per shard, in row-major shard order (a single
	// shard reproduces the version-2 body exactly). Every stream writes
	// the shared registry, so each shard stays independently loadable
	// by pre-registry readers.
	for i := range lo.shards {
		if err := lo.epAt(i).index.Save(w); err != nil {
			return err
		}
	}
	return nil
}

// equalStripLayout reports whether a layout's cuts are exactly the
// equal strips the grid dimensions imply — the layouts version-3
// streams can represent.
func equalStripLayout(lo *shardLayout, domain Rect) bool {
	ex := cuts(domain.Min.X, domain.Max.X, lo.gx)
	ey := cuts(domain.Min.Y, domain.Max.Y, lo.gy)
	for i, v := range lo.xs {
		if v != ex[i] {
			return false
		}
	}
	for i, v := range lo.ys {
		if v != ey[i] {
			return false
		}
	}
	return true
}

// Load reopens a database written by Save. opts only affect future
// Inserts and Reshards (seed/pruning parameters, layout strategy); the
// index structure and shard layout come from the stream.
func Load(r io.Reader, opts *Options) (*DB, error) {
	br := bufio.NewReader(r)
	var scratch [8]byte
	u32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	f64 := func() (float64, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(scratch[:])), nil
	}
	magic, err := u32()
	if err != nil {
		return nil, fmt.Errorf("uvdiagram: reading header: %w", err)
	}
	if magic != dbMagic {
		return nil, fmt.Errorf("uvdiagram: not a UV-diagram database stream")
	}
	version, err := u32()
	if err != nil || version < 1 || version > dbVersionCuts {
		return nil, fmt.Errorf("uvdiagram: unsupported version %d (err=%v)", version, err)
	}
	var coords [4]float64
	for i := range coords {
		if coords[i], err = f64(); err != nil {
			return nil, fmt.Errorf("uvdiagram: reading domain: %w", err)
		}
	}
	domain := Rect{Min: Pt(coords[0], coords[1]), Max: Pt(coords[2], coords[3])}
	gx, gy := 1, 1
	if version >= dbVersionSharded {
		gxu, err := u32()
		if err == nil {
			var gyu uint32
			gyu, err = u32()
			gx, gy = int(gxu), int(gyu)
		}
		if err != nil {
			return nil, fmt.Errorf("uvdiagram: reading shard layout: %w", err)
		}
		// Bound each axis before multiplying: a crafted stream with
		// gx = gy = 0xFFFFFFFF would overflow gx*gy past the product
		// check and die in allocation instead of erroring.
		if gx < 1 || gy < 1 || gx > MaxShards || gy > MaxShards || gx*gy > MaxShards {
			return nil, fmt.Errorf("uvdiagram: implausible shard layout %d×%d", gx, gy)
		}
	}
	xs := cuts(domain.Min.X, domain.Max.X, gx)
	ys := cuts(domain.Min.Y, domain.Max.Y, gy)
	if version >= dbVersionCuts {
		read := func(n int, ends [2]float64) ([]float64, error) {
			out := make([]float64, n)
			for i := range out {
				if out[i], err = f64(); err != nil {
					return nil, fmt.Errorf("uvdiagram: reading layout cuts: %w", err)
				}
				if i > 0 && !(out[i] > out[i-1]) {
					return nil, fmt.Errorf("uvdiagram: layout cuts not increasing at %d", i)
				}
			}
			if out[0] != ends[0] || out[n-1] != ends[1] {
				return nil, fmt.Errorf("uvdiagram: layout cuts do not span the domain")
			}
			return out, nil
		}
		if xs, err = read(gx+1, [2]float64{domain.Min.X, domain.Max.X}); err != nil {
			return nil, err
		}
		if ys, err = read(gy+1, [2]float64{domain.Min.Y, domain.Max.Y}); err != nil {
			return nil, err
		}
	}
	n, err := u32()
	if err != nil {
		return nil, fmt.Errorf("uvdiagram: reading object count: %w", err)
	}
	if n == 0 || n > 1<<26 {
		return nil, fmt.Errorf("uvdiagram: implausible object count %d", n)
	}
	objs := make([]Object, n)
	deadIDs := make([]int32, 0)
	for i := range objs {
		if version >= 2 {
			flag, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("uvdiagram: reading object %d tombstone: %w", i, err)
			}
			if flag == 0 {
				deadIDs = append(deadIDs, int32(i))
			}
		}
		var x, y, rad float64
		if x, err = f64(); err == nil {
			if y, err = f64(); err == nil {
				rad, err = f64()
			}
		}
		if err != nil {
			return nil, fmt.Errorf("uvdiagram: reading object %d: %w", i, err)
		}
		bins, err := u32()
		if err != nil || bins == 0 || bins > 4096 {
			return nil, fmt.Errorf("uvdiagram: object %d has bad pdf (%d bins, err=%v)", i, bins, err)
		}
		ws := make([]float64, bins)
		for k := range ws {
			if ws[k], err = f64(); err != nil {
				return nil, fmt.Errorf("uvdiagram: reading object %d pdf: %w", i, err)
			}
		}
		pdf, err := uncertain.NewHistogramPDF(ws)
		if err != nil {
			return nil, fmt.Errorf("uvdiagram: object %d: %w", i, err)
		}
		objs[i] = NewObject(int32(i), x, y, rad, pdf)
	}

	store, err := uncertain.NewStore(objs, pager.New(uncertain.ObjectPageBytes))
	if err != nil {
		return nil, err
	}
	for _, id := range deadIDs {
		if err := store.Delete(id); err != nil {
			return nil, err
		}
	}
	bopts := opts.toBuildOptions()
	db := &DB{store: store, domain: domain, bopts: bopts, strategy: opts.layout(), egc: epoch.NewDomain()}
	// The layout comes from the stream: Options.Shards only affects
	// freshly built databases, never a reopened one.
	lo := newShardLayout(0, gx, gy, xs, ys)
	// The index streams must decode sequentially, but the shared helper
	// R-tree is an independent bulk-load over the live objects — build
	// it concurrently with the decode.
	treeDone := make(chan *rtree.Tree, 1)
	go func() { treeDone <- core.BuildHelperRTree(store, bopts.Fanout) }()
	// The deferred drain covers the error returns below, so a truncated
	// index stream never leaks the tree build still running.
	defer func() {
		tree := <-treeDone
		tree.SetReclaimDomain(db.egc)
		db.tree.Store(tree)
	}()
	shapes := make([]core.IndexStats, len(lo.shards))
	indexes := make([]*core.UVIndex, len(lo.shards))
	for i := range lo.shards {
		index, err := core.LoadUVIndex(br, store)
		if err != nil {
			return nil, fmt.Errorf("uvdiagram: shard %d: %w", i, err)
		}
		if index.Domain() != lo.shards[i].rect {
			return nil, fmt.Errorf("uvdiagram: shard %d stream covers %v, layout expects %v",
				i, index.Domain(), lo.shards[i].rect)
		}
		indexes[i] = index
	}
	// Unify the per-shard registry copies into the one engine-wide
	// CRState the runtime maintains. Streams written by this version
	// carry identical copies (the shards shared one registry when they
	// were saved), so sharing is free; a pre-registry snapshot whose
	// shards diverged (old per-shard compaction re-derived locally) gets
	// those shards' leaf structures rebuilt from shard 0's copy, so leaf
	// lists and registry agree again — answers are exact either way.
	reg := indexes[0].CR()
	for i := 1; i < len(indexes); i++ {
		if indexes[i].CR().EqualCROf(reg) {
			indexes[i].AttachCR(reg)
		} else {
			indexes[i] = indexes[i].ReindexCR(reg)
		}
	}
	db.cr = reg
	db.topo = core.NewTopology(reg.Len(), bopts.RegionSamples)
	for i := range lo.shards {
		indexes[i].SetReclaimDomain(db.egc)
		lo.shards[i].epoch.Store(&indexEpoch{index: indexes[i]})
		shapes[i] = indexes[i].Stats()
	}
	db.layout.Store(lo)
	built := BuildStats{Strategy: bopts.Strategy, N: store.Live(), Index: aggregateIndexStats(shapes)}
	db.built.Store(&built)
	if err := db.startConfiguredMaintainer(opts); err != nil {
		return nil, err
	}
	return db, nil
}
