package uvdiagram

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"uvdiagram/internal/core"
	"uvdiagram/internal/pager"
	"uvdiagram/internal/rtree"
	"uvdiagram/internal/uncertain"
)

// Database persistence: Save writes the objects and the built
// UV-index(es); Load reopens them without re-running construction (the
// helper R-trees are re-bulk-loaded, which is cheap). The stream is
// self-contained and versioned.

const (
	dbMagic = 0x55564442 // "UVDB"
	// dbVersion 2 added a per-object tombstone flag so a database with
	// deletions round-trips; version-1 streams are still readable and
	// imply every object is live. Version 3 adds the spatial shard
	// layout (gx × gy grid) followed by one index stream per shard;
	// single-shard databases keep writing version 2 so older readers
	// can open them, and Load accepts all three.
	dbVersion        = 2
	dbVersionSharded = 3
)

// Save serializes the database (objects + UV-indexes) to w. A
// single-shard database writes the backward-compatible version-2
// stream; a sharded one writes version 3 with its layout.
func (db *DB) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var scratch [8]byte
	u32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	f64 := func(v float64) error {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
		_, err := bw.Write(scratch[:])
		return err
	}
	if err := u32(dbMagic); err != nil {
		return err
	}
	version := uint32(dbVersion)
	if len(db.shards) > 1 {
		version = dbVersionSharded
	}
	if err := u32(version); err != nil {
		return err
	}
	for _, v := range []float64{db.domain.Min.X, db.domain.Min.Y, db.domain.Max.X, db.domain.Max.Y} {
		if err := f64(v); err != nil {
			return err
		}
	}
	if version >= dbVersionSharded {
		if err := u32(uint32(db.gx)); err != nil {
			return err
		}
		if err := u32(uint32(db.gy)); err != nil {
			return err
		}
	}
	// The dense slice keeps deleted slots in place: ids are positions,
	// and the index stream refers to objects by id.
	objs := db.store.Dense()
	if err := u32(uint32(len(objs))); err != nil {
		return err
	}
	for i, o := range objs {
		aliveFlag := byte(0)
		if db.store.Alive(int32(i)) {
			aliveFlag = 1
		}
		if err := bw.WriteByte(aliveFlag); err != nil {
			return err
		}
		if err := f64(o.Region.C.X); err != nil {
			return err
		}
		if err := f64(o.Region.C.Y); err != nil {
			return err
		}
		if err := f64(o.Region.R); err != nil {
			return err
		}
		ws := o.PDF.Weights()
		if err := u32(uint32(len(ws))); err != nil {
			return err
		}
		for _, wgt := range ws {
			if err := f64(wgt); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// One index stream per shard, in row-major shard order (a single
	// shard reproduces the version-2 body exactly).
	for i := range db.shards {
		if err := db.epAt(i).index.Save(w); err != nil {
			return err
		}
	}
	return nil
}

// Load reopens a database written by Save. opts only affect future
// Inserts (seed/pruning parameters); the index structure itself comes
// from the stream.
func Load(r io.Reader, opts *Options) (*DB, error) {
	br := bufio.NewReader(r)
	var scratch [8]byte
	u32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	f64 := func() (float64, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(scratch[:])), nil
	}
	magic, err := u32()
	if err != nil {
		return nil, fmt.Errorf("uvdiagram: reading header: %w", err)
	}
	if magic != dbMagic {
		return nil, fmt.Errorf("uvdiagram: not a UV-diagram database stream")
	}
	version, err := u32()
	if err != nil || (version != 1 && version != dbVersion && version != dbVersionSharded) {
		return nil, fmt.Errorf("uvdiagram: unsupported version %d (err=%v)", version, err)
	}
	var coords [4]float64
	for i := range coords {
		if coords[i], err = f64(); err != nil {
			return nil, fmt.Errorf("uvdiagram: reading domain: %w", err)
		}
	}
	domain := Rect{Min: Pt(coords[0], coords[1]), Max: Pt(coords[2], coords[3])}
	gx, gy := 1, 1
	if version >= dbVersionSharded {
		gxu, err := u32()
		if err == nil {
			var gyu uint32
			gyu, err = u32()
			gx, gy = int(gxu), int(gyu)
		}
		if err != nil {
			return nil, fmt.Errorf("uvdiagram: reading shard layout: %w", err)
		}
		// Bound each axis before multiplying: a crafted stream with
		// gx = gy = 0xFFFFFFFF would overflow gx*gy past the product
		// check and die in allocation instead of erroring.
		if gx < 1 || gy < 1 || gx > MaxShards || gy > MaxShards || gx*gy > MaxShards {
			return nil, fmt.Errorf("uvdiagram: implausible shard layout %d×%d", gx, gy)
		}
	}
	n, err := u32()
	if err != nil {
		return nil, fmt.Errorf("uvdiagram: reading object count: %w", err)
	}
	if n == 0 || n > 1<<26 {
		return nil, fmt.Errorf("uvdiagram: implausible object count %d", n)
	}
	objs := make([]Object, n)
	deadIDs := make([]int32, 0)
	for i := range objs {
		if version >= 2 {
			flag, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("uvdiagram: reading object %d tombstone: %w", i, err)
			}
			if flag == 0 {
				deadIDs = append(deadIDs, int32(i))
			}
		}
		var x, y, rad float64
		if x, err = f64(); err == nil {
			if y, err = f64(); err == nil {
				rad, err = f64()
			}
		}
		if err != nil {
			return nil, fmt.Errorf("uvdiagram: reading object %d: %w", i, err)
		}
		bins, err := u32()
		if err != nil || bins == 0 || bins > 4096 {
			return nil, fmt.Errorf("uvdiagram: object %d has bad pdf (%d bins, err=%v)", i, bins, err)
		}
		ws := make([]float64, bins)
		for k := range ws {
			if ws[k], err = f64(); err != nil {
				return nil, fmt.Errorf("uvdiagram: reading object %d pdf: %w", i, err)
			}
		}
		pdf, err := uncertain.NewHistogramPDF(ws)
		if err != nil {
			return nil, fmt.Errorf("uvdiagram: object %d: %w", i, err)
		}
		objs[i] = NewObject(int32(i), x, y, rad, pdf)
	}

	store, err := uncertain.NewStore(objs, pager.New(uncertain.ObjectPageBytes))
	if err != nil {
		return nil, err
	}
	for _, id := range deadIDs {
		if err := store.Delete(id); err != nil {
			return nil, err
		}
	}
	bopts := opts.toBuildOptions()
	db := &DB{store: store, domain: domain, bopts: bopts}
	// The layout comes from the stream: Options.Shards only affects
	// freshly built databases, never a reopened one.
	db.initShardGrid(gx, gy)
	// The index streams must decode sequentially, but each shard's
	// helper R-tree is an independent bulk-load over the live objects —
	// build them concurrently (like publishShards does) so opening a
	// snapshot does not pay the tree cost once per shard.
	trees := make([]*rtree.Tree, len(db.shards))
	var wg sync.WaitGroup
	// The deferred Wait covers the error returns below, so a truncated
	// index stream never leaks tree builds still running; the explicit
	// Wait before publishing covers the success path (Wait after the
	// counter already hit zero is a no-op).
	defer wg.Wait()
	for i := range trees {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			trees[i] = core.BuildHelperRTree(store, bopts.Fanout) // live objects only
		}(i)
	}
	shapes := make([]core.IndexStats, len(db.shards))
	indexes := make([]*core.UVIndex, len(db.shards))
	for i := range db.shards {
		index, err := core.LoadUVIndex(br, store)
		if err != nil {
			return nil, fmt.Errorf("uvdiagram: shard %d: %w", i, err)
		}
		if index.Domain() != db.shards[i].rect {
			return nil, fmt.Errorf("uvdiagram: shard %d stream covers %v, layout expects %v",
				i, index.Domain(), db.shards[i].rect)
		}
		indexes[i] = index
		shapes[i] = index.Stats()
	}
	wg.Wait()
	for i := range db.shards {
		db.shards[i].epoch.Store(&indexEpoch{index: indexes[i], tree: trees[i]})
	}
	built := BuildStats{Strategy: bopts.Strategy, N: store.Live(), Index: aggregateIndexStats(shapes)}
	db.built.Store(&built)
	return db, nil
}
