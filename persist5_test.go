package uvdiagram_test

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"uvdiagram"
	"uvdiagram/internal/datagen"
)

// saveSnapshotDB builds a database, snapshots it to a temp file and
// returns both.
func saveSnapshotDB(t testing.TB, n int, opts *uvdiagram.Options) (*uvdiagram.DB, string) {
	t.Helper()
	cfg := datagen.Config{N: n, Side: 2000, Diameter: 30, Seed: 42}
	db, err := uvdiagram.Build(datagen.Uniform(cfg), cfg.Domain(), opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.uv5")
	if err := db.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	return db, path
}

// assertEquivalent checks that two databases answer an identical query
// workload bitwise identically: PNN, TopKPNN, PossibleKNN and the
// batched PNN path. The paper's engine guarantees bitwise answers, and
// the snapshot path must not lose that.
func assertEquivalent(t *testing.T, want, got *uvdiagram.DB, seed int64) {
	t.Helper()
	assertEquivalentTol(t, want, got, seed, 0)
}

// assertEquivalentTol is assertEquivalent with a probability tolerance:
// the classic Save/Load fallback re-normalizes pdf histograms on load,
// which may move probabilities by an ulp (snapshot paths use 0 — they
// preserve page images exactly).
func assertEquivalentTol(t *testing.T, want, got *uvdiagram.DB, seed int64, tol float64) {
	t.Helper()
	eq := func(a, b uvdiagram.Answer) bool {
		if tol == 0 {
			return a == b
		}
		d := a.Prob - b.Prob
		return a.ID == b.ID && d <= tol && d >= -tol
	}
	rng := rand.New(rand.NewSource(seed))
	qs := make([]uvdiagram.Point, 60)
	for i := range qs {
		qs[i] = uvdiagram.Pt(rng.Float64()*2000, rng.Float64()*2000)
	}
	for _, q := range qs {
		a1, _, err1 := want.PNN(q)
		a2, _, err2 := got.PNN(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("PNN(%v): errs %v, %v", q, err1, err2)
		}
		if len(a1) != len(a2) {
			t.Fatalf("PNN(%v): %d answers vs %d", q, len(a1), len(a2))
		}
		for i := range a1 {
			if !eq(a1[i], a2[i]) {
				t.Fatalf("PNN(%v)[%d]: %v vs %v", q, i, a1[i], a2[i])
			}
		}
		k1, _, err1 := want.TopKPNN(q, 3)
		k2, _, err2 := got.TopKPNN(q, 3)
		if err1 != nil || err2 != nil {
			t.Fatalf("TopKPNN(%v): errs %v, %v", q, err1, err2)
		}
		if len(k1) != len(k2) {
			t.Fatalf("TopKPNN(%v): %d answers vs %d", q, len(k1), len(k2))
		}
		for i := range k1 {
			if !eq(k1[i], k2[i]) {
				t.Fatalf("TopKPNN(%v)[%d]: %v vs %v", q, i, k1[i], k2[i])
			}
		}
		n1, err1 := want.PossibleKNN(q, 4)
		n2, err2 := got.PossibleKNN(q, 4)
		if err1 != nil || err2 != nil {
			t.Fatalf("PossibleKNN(%v): errs %v, %v", q, err1, err2)
		}
		if len(n1) != len(n2) {
			t.Fatalf("PossibleKNN(%v): %d ids vs %d", q, len(n1), len(n2))
		}
		for i := range n1 {
			if n1[i] != n2[i] {
				t.Fatalf("PossibleKNN(%v)[%d]: %d vs %d", q, i, n1[i], n2[i])
			}
		}
	}
	bopts := &uvdiagram.BatchOptions{Workers: 4, CacheSize: 64}
	b1, err1 := want.BatchNN(qs, bopts)
	b2, err2 := got.BatchNN(qs, bopts)
	if err1 != nil || err2 != nil {
		t.Fatalf("BatchNN: errs %v, %v", err1, err2)
	}
	for i := range b1 {
		if len(b1[i]) != len(b2[i]) {
			t.Fatalf("BatchNN[%d]: %d answers vs %d", i, len(b1[i]), len(b2[i]))
		}
		for j := range b1[i] {
			if !eq(b1[i][j], b2[i][j]) {
				t.Fatalf("BatchNN[%d][%d]: %v vs %v", i, j, b1[i][j], b2[i][j])
			}
		}
	}
}

// TestOpenSnapshotEquivalence is the acceptance property: a database
// served off a v5 snapshot — mmap-backed or heap-replayed — answers the
// whole query surface bitwise identically to the in-heap database that
// wrote it, across shard counts.
func TestOpenSnapshotEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, mode := range []string{"mmap", "heap"} {
			t.Run(map[int]string{1: "S1", 4: "S4"}[shards]+"/"+mode, func(t *testing.T) {
				db, path := saveSnapshotDB(t, 400, &uvdiagram.Options{Shards: shards})
				opened, err := uvdiagram.Open(path, &uvdiagram.Options{Pager: mode})
				if err != nil {
					t.Fatal(err)
				}
				defer opened.Close()
				if got := opened.PagerMode(); got != mode {
					t.Fatalf("PagerMode = %q, want %q", got, mode)
				}
				if opened.Len() != db.Len() || opened.Domain() != db.Domain() {
					t.Fatalf("shape: Len %d/%d, Domain %v/%v",
						opened.Len(), db.Len(), opened.Domain(), db.Domain())
				}
				if opened.IndexStats() != db.IndexStats() {
					t.Fatalf("index stats differ:\n%+v\n%+v", opened.IndexStats(), db.IndexStats())
				}
				assertEquivalent(t, db, opened, 7)
			})
		}
	}
}

// TestOpenSnapshotMutable checks that a snapshot-served database stays
// fully writable: inserts and deletes against the mmap-backed store go
// to the append-only heap tail, answers track the mutations, and a
// Vacuum afterwards does not disturb live data.
func TestOpenSnapshotMutable(t *testing.T) {
	db, path := saveSnapshotDB(t, 300, &uvdiagram.Options{Shards: 4})
	opened, err := uvdiagram.Open(path, nil) // default mmap
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()

	// Apply the same mutations to both engines.
	for _, eng := range []*uvdiagram.DB{db, opened} {
		if err := eng.Insert(uvdiagram.NewObject(eng.NextID(), 777, 777, 12, nil)); err != nil {
			t.Fatal(err)
		}
		if err := eng.Delete(3); err != nil {
			t.Fatal(err)
		}
	}
	opened.Vacuum()
	assertEquivalent(t, db, opened, 11)

	// Round-trip again: snapshotting the mutated, mmap-served database
	// must produce a valid snapshot of the post-mutation state.
	path2 := filepath.Join(t.TempDir(), "db2.uv5")
	if err := opened.SaveSnapshot(path2); err != nil {
		t.Fatal(err)
	}
	re, err := uvdiagram.Open(path2, &uvdiagram.Options{Pager: "heap"})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertEquivalent(t, db, re, 13)
}

// TestOpenClassicStream checks Open's fallback: a version ≤ 4 stream
// written by Save loads through the classic path.
func TestOpenClassicStream(t *testing.T) {
	cfg := datagen.Config{N: 150, Side: 2000, Diameter: 30, Seed: 42}
	db, err := uvdiagram.Build(datagen.Uniform(cfg), cfg.Domain(), &uvdiagram.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.uvdb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	opened, err := uvdiagram.Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	if opened.PagerMode() != "heap" {
		t.Fatalf("classic stream served as %q", opened.PagerMode())
	}
	assertEquivalentTol(t, db, opened, 17, 1e-12)
}

// TestOpenSnapshotCorrupt asserts the robustness contract: truncated or
// bit-flipped snapshots yield a typed error matching ErrCorruptSnapshot
// and never a partially constructed DB.
func TestOpenSnapshotCorrupt(t *testing.T) {
	_, path := saveSnapshotDB(t, 120, &uvdiagram.Options{Shards: 2})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		bad := mutate(append([]byte(nil), data...))
		p := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		for _, mode := range []string{"mmap", "heap"} {
			db, err := uvdiagram.Open(p, &uvdiagram.Options{Pager: mode})
			if err == nil {
				db.Close()
				t.Fatalf("%s/%s: corrupt snapshot opened", name, mode)
			}
			if !errors.Is(err, uvdiagram.ErrCorruptSnapshot) {
				t.Fatalf("%s/%s: error %v does not match ErrCorruptSnapshot", name, mode, err)
			}
			var se *uvdiagram.SnapshotError
			if !errors.As(err, &se) {
				t.Fatalf("%s/%s: error %v is not a *SnapshotError", name, mode, err)
			}
		}
	}

	check("truncated-meta", func(b []byte) []byte { return b[:40] })
	check("truncated-pages", func(b []byte) []byte { return b[:len(b)-4096] })
	check("meta-overrun", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[8:], uint64(len(b))) // metaLen past EOF
		return b
	})
	check("bad-object-count", func(b []byte) []byte {
		// n lives right after domain (32) + gx/gy (8) + cuts. With
		// shards=2: gx=2, gy=1 → xs 3×8, ys 2×8 = 40 bytes of cuts.
		off := 16 + 32 + 8 + 40
		binary.LittleEndian.PutUint32(b[off:], 1<<30)
		return b
	})
	check("bad-shard-grid", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[16+32:], 0xFFFFFFFF)
		return b
	})

	// Header-level failures are errors too (typed or not, they must not
	// produce a DB).
	if _, err := uvdiagram.Open(filepath.Join(t.TempDir(), "missing"), nil); err == nil {
		t.Fatal("opening a missing file succeeded")
	}
	badMagic := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(badMagic[0:], 0xDEADBEEF)
	p := filepath.Join(t.TempDir(), "bad-magic")
	if err := os.WriteFile(p, badMagic, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := uvdiagram.Open(p, nil); err == nil {
		t.Fatal("bad magic accepted")
	}
	badVer := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(badVer[4:], 99)
	p = filepath.Join(t.TempDir(), "bad-version")
	if err := os.WriteFile(p, badVer, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := uvdiagram.Open(p, nil); !errors.Is(err, uvdiagram.ErrCorruptSnapshot) {
		t.Fatalf("version 99: %v", err)
	}
}

// FuzzOpenSnapshot feeds arbitrary bytes (seeded with a real snapshot)
// through Open in heap mode: whatever the corruption, Open must return
// an error or a servable DB — never panic, never hang.
func FuzzOpenSnapshot(f *testing.F) {
	_, path := saveSnapshotDB(f, 60, nil)
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:16])
	f.Add([]byte{})
	trunc := append([]byte(nil), data[:len(data)/2]...)
	f.Add(trunc)
	f.Fuzz(func(t *testing.T, b []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.uv5")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Skip()
		}
		db, err := uvdiagram.Open(p, &uvdiagram.Options{Pager: "heap"})
		if err != nil {
			return
		}
		// A structurally valid mutation of the seed must still serve.
		if _, _, err := db.PNN(uvdiagram.Pt(1000, 1000)); err != nil {
			t.Logf("PNN on fuzzed-but-openable snapshot: %v", err)
		}
		db.Close()
	})
}
