// Command uvquery builds a UV-index over a synthetic dataset and
// answers probabilistic nearest-neighbor queries at given points,
// optionally comparing the UV-index against the R-tree baseline and a
// Monte-Carlo verification.
//
// Usage:
//
//	uvquery [-n 10000] [-seed 1] [-compare] [-verify] x,y [x,y ...]
//
// With no explicit points, five random query points are used.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"uvdiagram"
	"uvdiagram/internal/datagen"
)

func main() {
	n := flag.Int("n", 10000, "number of objects")
	seed := flag.Int64("seed", 1, "random seed")
	compare := flag.Bool("compare", false, "also run the R-tree baseline")
	verify := flag.Bool("verify", false, "cross-check probabilities with Monte Carlo")
	flag.Parse()

	cfg := datagen.Config{N: *n, Seed: *seed}
	objs := datagen.Uniform(cfg)
	fmt.Fprintf(os.Stderr, "building UV-index over %d objects...\n", *n)
	db, err := uvdiagram.Build(objs, cfg.Domain(), nil)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "built in %v\n", db.BuildStats().TotalDur)

	var points []uvdiagram.Point
	for _, arg := range flag.Args() {
		parts := strings.Split(arg, ",")
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad point %q (want x,y)", arg))
		}
		x, err1 := strconv.ParseFloat(parts[0], 64)
		y, err2 := strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil {
			fatal(fmt.Errorf("bad point %q", arg))
		}
		points = append(points, uvdiagram.Pt(x, y))
	}
	if len(points) == 0 {
		rng := rand.New(rand.NewSource(*seed + 1))
		for i := 0; i < 5; i++ {
			points = append(points, uvdiagram.Pt(rng.Float64()*datagen.DefaultSide, rng.Float64()*datagen.DefaultSide))
		}
	}

	for _, q := range points {
		answers, st, err := db.PNN(q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("PNN(%.1f, %.1f): %d answer(s), %v (index %d I/O, objects %d I/O)\n",
			q.X, q.Y, len(answers), st.Total().Round(1000), st.IndexIOs, st.ObjectIOs)
		for _, a := range answers {
			o, _ := db.Object(a.ID)
			fmt.Printf("  object %-6d center=(%.1f,%.1f) r=%.1f  P=%.4f\n",
				a.ID, o.Region.C.X, o.Region.C.Y, o.Region.R, a.Prob)
		}
		if *compare {
			rtAnswers, rtSt, err := db.PNNViaRTree(q)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  [r-tree baseline: %d answer(s), %v, %d index I/O]\n",
				len(rtAnswers), rtSt.Total().Round(1000), rtSt.IndexIOs)
		}
		if *verify && len(answers) > 0 {
			var cands []uvdiagram.Object
			for _, a := range answers {
				o, _ := db.Object(a.ID)
				cands = append(cands, o)
			}
			mc := uvdiagram.MonteCarloProbabilities(cands, q, 50000, *seed)
			fmt.Printf("  [monte-carlo:")
			for i := range cands {
				fmt.Printf(" %d:%.4f", cands[i].ID, mc[i])
			}
			fmt.Printf("]\n")
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uvquery:", err)
	os.Exit(1)
}
