// Command uvbench regenerates the paper's evaluation (Section VI):
// every figure and table, at a selectable scale.
//
// Usage:
//
//	uvbench [-exp all|fig6|fig7|fig7f|fig7g|fig7h|table2|sensitivity|server|churn|shards|rebalance|derive|continuous|maintain|parity]
//	        [-scale small|medium|paper] [-shards 1] [-quiet]
//	        [-cpuprofile cpu.out] [-memprofile mem.out]
//
// -shards builds the churn experiment's database with that many spatial
// shards; -exp shards sweeps S ∈ {1, 2, 4, 8} and reports build and
// per-shard compaction wall clock plus worst query latency during
// compaction; -exp rebalance builds a skewed dataset over equal strips,
// compacts disjoint shards concurrently under query load, reshards
// online to weighted-median cuts and writes BENCH_rebalance.json;
// -exp derive benchmarks the output-sensitive derivation fast path
// against the retained naive reference (bitwise-identical cr-sets
// verified) and writes BENCH_derive.json; -exp continuous drives fleets
// of subscribed moving clients (fire-and-forget moves, server-pushed
// answer deltas) with churn riding on a mutator connection and writes
// BENCH_continuous.json; -exp maintain churns a uniform dataset toward
// a Gaussian hot spot with the self-driving maintenance controller off
// vs on (identical deterministic workloads, bitwise-compared answers)
// and writes BENCH_maintain.json; -exp parity benchmarks the order-k
// and 3D builds on the parallel scratch-threaded fast path against the
// retained reference loops (bitwise-identical cr-sets, index stats and
// query answers verified) and writes BENCH_orderk.json and
// BENCH_uv3.json; -exp outofcore builds a database on disk as a v5
// page-image snapshot and serves batched PNN off the mmap-backed file
// under a resident-set cap below the index size (bitwise-identical
// answers vs the in-heap engine verified) and writes
// BENCH_outofcore.json.
//
// -cpuprofile and -memprofile write pprof profiles of the selected
// experiment, so future perf work can be profiled in place (profiles
// are flushed on normal completion).
//
// Tables go to stdout; progress lines go to stderr. The "paper" scale
// matches Section VI-A (10k–80k objects, 50 queries) and takes tens of
// minutes; "small" finishes in about a minute.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"uvdiagram/internal/exp"
)

func main() {
	expName := flag.String("exp", "all", "experiment: all, fig6, fig7, fig7f, fig7g, fig7h, table2, sensitivity, extensions, server, churn, shards, rebalance, derive, continuous, maintain, parity, outofcore")
	scaleName := flag.String("scale", "small", "scale preset: small, medium, paper")
	shards := flag.Int("shards", 1, "spatial shard count for -exp churn (1 = unsharded)")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (post-GC) to this file at exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	sc, err := exp.ScaleByName(*scaleName)
	if err != nil {
		fatal(err)
	}
	sc.Shards = *shards
	progress := func(msg string) {
		if !*quiet {
			fmt.Fprintln(os.Stderr, "... "+msg)
		}
	}

	var tables []*exp.Table
	switch *expName {
	case "all":
		tables, err = exp.RunAll(sc, progress)
	case "fig6":
		tables, err = exp.RunFig6(sc, progress)
	case "fig7":
		tables, err = exp.RunFig7Construction(sc, progress)
	case "fig7f":
		tables, err = single(exp.RunFig7f, sc, progress)
	case "fig7g":
		tables, err = single(exp.RunFig7g, sc, progress)
	case "fig7h":
		tables, err = single(exp.RunFig7h, sc, progress)
	case "table2":
		tables, err = single(exp.RunTable2, sc, progress)
	case "sensitivity":
		tables, err = single(exp.RunSensitivity, sc, progress)
	case "extensions":
		tables, err = exp.RunExtensions(sc, progress)
	case "server":
		tables, err = single(exp.RunServerThroughput, sc, progress)
	case "churn":
		tables, err = single(exp.RunChurn, sc, progress)
	case "shards":
		tables, err = single(exp.RunShards, sc, progress)
	case "rebalance":
		tables, err = single(exp.RunRebalance, sc, progress)
	case "derive":
		tables, err = single(exp.RunDerive, sc, progress)
	case "continuous":
		tables, err = single(exp.RunContinuous, sc, progress)
	case "maintain":
		tables, err = single(exp.RunMaintain, sc, progress)
	case "parity":
		tables, err = single(exp.RunParity, sc, progress)
	case "outofcore":
		tables, err = single(exp.RunOutOfCore, sc, progress)
	default:
		err = fmt.Errorf("unknown experiment %q", *expName)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# uvbench scale=%s exp=%s\n\n", sc.Name, *expName)
	for _, t := range tables {
		if err := t.Fprint(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func single(run func(exp.Scale, func(string)) (*exp.Table, error), sc exp.Scale, progress func(string)) ([]*exp.Table, error) {
	t, err := run(sc, progress)
	if err != nil {
		return nil, err
	}
	return []*exp.Table{t}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uvbench:", err)
	os.Exit(1)
}
