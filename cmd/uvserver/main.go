// Command uvserver builds a UV-index over a synthetic dataset (or a
// previously saved snapshot) and serves it over TCP with the binary
// protocol of internal/wire. Query it with uvclient.
//
// Usage:
//
//	uvserver [-addr :7031] [-n 10000] [-seed 1] [-load db.uv]
//	         [-data db.uvsnap] [-pager mmap|heap]
//	         [-shards 1] [-layout equal|median] [-window 64]
//	         [-workers N] [-cache 256] [-push-timeout 5s]
//	         [-pprof localhost:6060]
//	         [-maintain] [-maintain-interval 2s]
//	         [-maintain-high 1.6] [-maintain-low 1.25]
//	         [-maintain-sustain 3] [-maintain-cooldown 30s]
//
// With -pprof, the standard net/http/pprof endpoints are served on the
// given address so a live server can be profiled in place
// (go tool pprof http://localhost:6060/debug/pprof/profile). The same
// listener serves the full server metrics snapshot as expvar JSON under
// /debug/vars (key "uvdiagram") — the HTTP twin of `uvclient metrics`.
//
// With -maintain, a self-driving maintenance controller samples shard
// imbalance every -maintain-interval and reshards automatically when it
// stays above -maintain-high for -maintain-sustain ticks, disarming
// below -maintain-low (two-threshold hysteresis) with a
// -maintain-cooldown between runs.
//
// With -data, the database file is opened with uvdiagram.Open — any
// saved version works, and a version-5 page-image snapshot (uvbuild
// -snapshot) is served straight off the mmap'd file with zero rebuild;
// -pager heap copies it into memory instead. -load is the older
// logical-stream reader (uvbuild -save / DB.Save); both take the
// file's shard layout over -shards. With -shards S > 1 a fresh build
// splits the domain into S spatial shards, each with its own sub-grid
// index, epoch and slack counter — queries route to the owning shard,
// and compaction is per-shard.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // -pprof serves the standard profiling endpoints
	"os"

	"uvdiagram"
	"uvdiagram/internal/datagen"
	"uvdiagram/internal/server"
)

func main() {
	addr := flag.String("addr", ":7031", "listen address")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	n := flag.Int("n", 10000, "number of synthetic objects (ignored with -load)")
	seed := flag.Int64("seed", 1, "random seed for the synthetic dataset")
	load := flag.String("load", "", "load a logical-stream snapshot instead of generating data")
	data := flag.String("data", "", "open a saved database file with uvdiagram.Open (v5 snapshots serve off the file) instead of generating data")
	pagerMode := flag.String("pager", "", "page-store backend for -data v5 snapshots: mmap (default; zero-copy off the file) or heap (copy into memory)")
	shards := flag.Int("shards", 1, "spatial shard count (ignored with -load; 1 = unsharded)")
	layout := flag.String("layout", "equal", "shard layout strategy for a fresh build: equal, median")
	window := flag.Int("window", 0, "per-connection in-flight request window (0 = default 64)")
	workers := flag.Int("workers", 0, "server-wide query worker pool size (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 0, "batch leaf-cache size (0 = default 256, negative disables)")
	pushTimeout := flag.Duration("push-timeout", 0, "per-write deadline for subscription pushes; a slower consumer is disconnected (0 = default 5s)")
	maintain := flag.Bool("maintain", false, "run the self-driving maintenance controller")
	maintInterval := flag.Duration("maintain-interval", 0, "maintenance sampling period (0 = default 2s)")
	maintHigh := flag.Float64("maintain-high", 0, "imbalance high watermark arming a reshard (0 = default 1.6)")
	maintLow := flag.Float64("maintain-low", 0, "imbalance low watermark disarming the controller (0 = default 1.25)")
	maintSustain := flag.Int("maintain-sustain", 0, "high-water ticks required before a reshard fires (0 = default 3)")
	maintCooldown := flag.Duration("maintain-cooldown", 0, "minimum interval between controller reshards (0 = default 30s)")
	flag.Parse()

	logger := log.New(os.Stderr, "uvserver: ", log.LstdFlags)

	if *pprofAddr != "" {
		go func() {
			logger.Printf("pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Printf("pprof server: %v", err)
			}
		}()
	}

	var db *uvdiagram.DB
	if *data != "" {
		var err error
		db, err = uvdiagram.Open(*data, &uvdiagram.Options{Pager: *pagerMode})
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("opened %d objects from %s (pager=%s)", db.Len(), *data, db.PagerMode())
	} else if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			logger.Fatal(err)
		}
		db, err = uvdiagram.Load(f, nil)
		f.Close()
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("loaded %d objects from %s", db.Len(), *load)
	} else {
		cfg := datagen.Config{N: *n, Seed: *seed}
		objs := datagen.Uniform(cfg)
		strat, err := uvdiagram.LayoutByName(*layout)
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("building UV-index over %d objects (%d shards, %s layout)...", *n, *shards, strat.Name())
		db, err = uvdiagram.Build(objs, cfg.Domain(), &uvdiagram.Options{Shards: *shards, Layout: strat})
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("built in %v", db.BuildStats().TotalDur)
	}
	if s := db.Shards(); s > 1 {
		gx, gy := db.ShardGrid()
		logger.Printf("spatial shards: %d (%d×%d grid)", s, gx, gy)
	}

	if *maintain {
		opts := uvdiagram.MaintainOptions{
			Interval:     *maintInterval,
			HighWater:    *maintHigh,
			LowWater:     *maintLow,
			SustainTicks: *maintSustain,
			MinInterval:  *maintCooldown,
		}
		if _, err := db.StartMaintainer(opts); err != nil {
			logger.Fatal(err)
		}
		eff := db.Maintainer().Options()
		logger.Printf("maintenance controller on: interval %v, watermarks %.2f/%.2f, sustain %d, cooldown %v",
			eff.Interval, eff.HighWater, eff.LowWater, eff.SustainTicks, eff.MinInterval)
	}

	srv, err := server.NewWithConfig(db, server.Logf(logger),
		server.Config{Window: *window, Workers: *workers, CacheSize: *cache,
			PushTimeout: *pushTimeout})
	if err != nil {
		logger.Fatal(err)
	}
	// The snapshot behind OpMetrics, republished as expvar JSON on the
	// -pprof listener's /debug/vars.
	expvar.Publish("uvdiagram", expvar.Func(func() any {
		return srv.MetricsMap()
	}))
	logger.Printf("serving on %s", *addr)
	if err := srv.ListenAndServe(*addr, nil); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
