// Command uvserver builds a UV-index over a synthetic dataset (or a
// previously saved snapshot) and serves it over TCP with the binary
// protocol of internal/wire. Query it with uvclient.
//
// Usage:
//
//	uvserver [-addr :7031] [-n 10000] [-seed 1] [-load db.uv]
//	         [-shards 1] [-layout equal|median] [-window 64]
//	         [-workers N] [-cache 256] [-pprof localhost:6060]
//
// With -pprof, the standard net/http/pprof endpoints are served on the
// given address so a live server can be profiled in place
// (go tool pprof http://localhost:6060/debug/pprof/profile).
//
// With -load, the dataset and index are read from a snapshot written by
// uvbuild -save (or DB.Save); the snapshot's shard layout wins over
// -shards. With -shards S > 1 the domain is split into S spatial
// shards, each with its own sub-grid index, epoch and slack counter —
// queries route to the owning shard, and compaction is per-shard.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // -pprof serves the standard profiling endpoints
	"os"

	"uvdiagram"
	"uvdiagram/internal/datagen"
	"uvdiagram/internal/server"
)

func main() {
	addr := flag.String("addr", ":7031", "listen address")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	n := flag.Int("n", 10000, "number of synthetic objects (ignored with -load)")
	seed := flag.Int64("seed", 1, "random seed for the synthetic dataset")
	load := flag.String("load", "", "load a snapshot instead of generating data")
	shards := flag.Int("shards", 1, "spatial shard count (ignored with -load; 1 = unsharded)")
	layout := flag.String("layout", "equal", "shard layout strategy for a fresh build: equal, median")
	window := flag.Int("window", 0, "per-connection in-flight request window (0 = default 64)")
	workers := flag.Int("workers", 0, "server-wide query worker pool size (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 0, "batch leaf-cache size (0 = default 256, negative disables)")
	flag.Parse()

	logger := log.New(os.Stderr, "uvserver: ", log.LstdFlags)

	if *pprofAddr != "" {
		go func() {
			logger.Printf("pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Printf("pprof server: %v", err)
			}
		}()
	}

	var db *uvdiagram.DB
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			logger.Fatal(err)
		}
		db, err = uvdiagram.Load(f, nil)
		f.Close()
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("loaded %d objects from %s", db.Len(), *load)
	} else {
		cfg := datagen.Config{N: *n, Seed: *seed}
		objs := datagen.Uniform(cfg)
		strat, err := uvdiagram.LayoutByName(*layout)
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("building UV-index over %d objects (%d shards, %s layout)...", *n, *shards, strat.Name())
		db, err = uvdiagram.Build(objs, cfg.Domain(), &uvdiagram.Options{Shards: *shards, Layout: strat})
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("built in %v", db.BuildStats().TotalDur)
	}
	if s := db.Shards(); s > 1 {
		gx, gy := db.ShardGrid()
		logger.Printf("spatial shards: %d (%d×%d grid)", s, gx, gy)
	}

	srv := server.NewWithConfig(db, server.Logf(logger),
		server.Config{Window: *window, Workers: *workers, CacheSize: *cache})
	logger.Printf("serving on %s", *addr)
	if err := srv.ListenAndServe(*addr, nil); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
