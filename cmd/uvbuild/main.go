// Command uvbuild constructs a UV-index over a generated dataset and
// reports construction statistics: phase timings, pruning ratios and
// index shape. It is the quickest way to reproduce the construction-
// side findings of Figure 7 for a single configuration.
//
// Usage:
//
//	uvbuild [-n 30000] [-dataset uniform|skewed|utility|roads|rrlines]
//	        [-strategy ic|icr|basic] [-diameter 40] [-sigma 2500]
//	        [-theta 1.0] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"uvdiagram/internal/core"
	"uvdiagram/internal/datagen"
	"uvdiagram/internal/geom"
	"uvdiagram/internal/pager"
	"uvdiagram/internal/uncertain"
)

func main() {
	n := flag.Int("n", 30000, "number of objects (synthetic datasets)")
	dataset := flag.String("dataset", "uniform", "uniform, skewed, utility, roads, rrlines")
	strategy := flag.String("strategy", "ic", "construction strategy: ic, icr, basic")
	diameter := flag.Float64("diameter", datagen.DefaultDiameter, "uncertainty region diameter")
	sigma := flag.Float64("sigma", 2500, "center std-dev for -dataset skewed")
	theta := flag.Float64("theta", 1.0, "split threshold Tθ")
	seedK := flag.Int("seedk", core.DefaultSeedK, "k of the seed k-NN query")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	cfg := datagen.Config{N: *n, Diameter: *diameter, Seed: *seed}
	var objs []uncertain.Object
	var err error
	switch strings.ToLower(*dataset) {
	case "uniform":
		objs = datagen.Uniform(cfg)
	case "skewed":
		objs = datagen.Skewed(cfg, *sigma)
	case "utility", "roads", "rrlines":
		objs, err = datagen.Real(datagen.RealKind(*dataset), 1.0, *seed)
	default:
		err = fmt.Errorf("unknown dataset %q", *dataset)
	}
	if err != nil {
		fatal(err)
	}

	opts := core.DefaultBuildOptions()
	opts.SeedK = *seedK
	opts.Index.SplitTheta = *theta
	switch strings.ToLower(*strategy) {
	case "ic":
		opts.Strategy = core.StrategyIC
	case "icr":
		opts.Strategy = core.StrategyICR
	case "basic":
		opts.Strategy = core.StrategyBasic
		if *n > 5000 {
			fmt.Fprintln(os.Stderr, "uvbuild: warning: Basic is quadratic; this will take a very long time")
		}
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	store, err := uncertain.NewStore(objs, pager.New(uncertain.ObjectPageBytes))
	if err != nil {
		fatal(err)
	}
	ix, stats, err := core.Build(store, geom.Square(datagen.DefaultSide), nil, opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("dataset        %s (|O|=%d, diameter=%.0f)\n", *dataset, len(objs), *diameter)
	fmt.Printf("strategy       %v\n", stats.Strategy)
	fmt.Printf("total Tc       %v\n", stats.TotalDur)
	fmt.Printf("  seeds        %v\n", stats.SeedDur)
	fmt.Printf("  pruning      %v\n", stats.PruneDur)
	fmt.Printf("  refinement   %v\n", stats.RefineDur)
	fmt.Printf("  indexing     %v\n", stats.IndexDur)
	if stats.Strategy != core.StrategyBasic {
		fmt.Printf("I-prune ratio  %.1f%%\n", 100*stats.IPruneRatio())
		fmt.Printf("C-prune ratio  %.1f%%\n", 100*stats.CPruneRatio())
		fmt.Printf("avg |CR|       %.1f\n", stats.AvgCR())
	}
	if stats.SumR > 0 {
		fmt.Printf("avg |F|        %.1f\n", stats.AvgR())
	}
	ist := ix.Stats()
	fmt.Printf("index          %d non-leaf (%.1f KB RAM), %d leaves, %d pages, depth %d, avg list %.1f\n",
		ist.NonLeaf, float64(ist.MemBytes)/1024, ist.Leaves, ist.Pages, ist.MaxDepth, ist.AvgEntries)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uvbuild:", err)
	os.Exit(1)
}
