// Command uvbuild constructs a UV-index over a generated dataset and
// reports construction statistics: phase timings, pruning ratios and
// index shape. It is the quickest way to reproduce the construction-
// side findings of Figure 7 for a single configuration.
//
// Usage:
//
//	uvbuild [-n 30000] [-dataset uniform|skewed|utility|roads|rrlines]
//	        [-strategy ic|icr|basic] [-diameter 40] [-sigma 2500]
//	        [-theta 1.0] [-seed 1] [-shards 1] [-layout equal|median]
//	        [-workers 1] [-save db.uv] [-snapshot db.uvsnap]
//
// With -shards S > 1 the domain is split into S spatial shards whose
// sub-grid indexes are built in parallel from one derivation pass; the
// report then adds a per-shard shape table.
//
// With -save, the built database is written as a logical stream
// (DB.Save: objects, cr-sets, layout — pages are rebuilt on load);
// with -snapshot, as a version-5 page-image snapshot that
// uvdiagram.Open (and uvserver -data) can serve straight off the
// mmap'd file with zero rebuild. Both may be given at once.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"uvdiagram"
	"uvdiagram/internal/core"
	"uvdiagram/internal/datagen"
	"uvdiagram/internal/geom"
	"uvdiagram/internal/pager"
	"uvdiagram/internal/uncertain"
)

func main() {
	n := flag.Int("n", 30000, "number of objects (synthetic datasets)")
	dataset := flag.String("dataset", "uniform", "uniform, skewed, utility, roads, rrlines")
	strategy := flag.String("strategy", "ic", "construction strategy: ic, icr, basic")
	diameter := flag.Float64("diameter", datagen.DefaultDiameter, "uncertainty region diameter")
	sigma := flag.Float64("sigma", 2500, "center std-dev for -dataset skewed")
	theta := flag.Float64("theta", 1.0, "split threshold Tθ")
	seedK := flag.Int("seedk", core.DefaultSeedK, "k of the seed k-NN query")
	seed := flag.Int64("seed", 1, "random seed")
	shards := flag.Int("shards", 1, "spatial shard count (1 = unsharded)")
	layout := flag.String("layout", "equal", "shard layout strategy: equal, median (weighted-median cuts)")
	workers := flag.Int("workers", 0, "derivation worker pool size (0/1 = sequential)")
	save := flag.String("save", "", "write the built database as a logical stream (DB.Save) to this path")
	snapshot := flag.String("snapshot", "", "write the built database as a v5 page-image snapshot (DB.SaveSnapshot) to this path")
	flag.Parse()

	cfg := datagen.Config{N: *n, Diameter: *diameter, Seed: *seed}
	var objs []uncertain.Object
	var err error
	switch strings.ToLower(*dataset) {
	case "uniform":
		objs = datagen.Uniform(cfg)
	case "skewed":
		objs = datagen.Skewed(cfg, *sigma)
	case "utility", "roads", "rrlines":
		objs, err = datagen.Real(datagen.RealKind(*dataset), 1.0, *seed)
	default:
		err = fmt.Errorf("unknown dataset %q", *dataset)
	}
	if err != nil {
		fatal(err)
	}

	opts := core.DefaultBuildOptions()
	opts.SeedK = *seedK
	opts.Index.SplitTheta = *theta
	switch strings.ToLower(*strategy) {
	case "ic":
		opts.Strategy = core.StrategyIC
	case "icr":
		opts.Strategy = core.StrategyICR
	case "basic":
		opts.Strategy = core.StrategyBasic
		if *n > 5000 {
			fmt.Fprintln(os.Stderr, "uvbuild: warning: Basic is quadratic; this will take a very long time")
		}
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	opts.Workers = *workers

	domain := geom.Square(datagen.DefaultSide)
	var stats core.BuildStats
	var ist core.IndexStats
	var shardStats []uvdiagram.ShardStat
	// Persisting needs a whole DB; bare core.Build suffices otherwise.
	if *shards > 1 || *save != "" || *snapshot != "" {
		strat, err := uvdiagram.LayoutByName(*layout)
		if err != nil {
			fatal(err)
		}
		db, err := uvdiagram.Build(objs, domain, &uvdiagram.Options{
			Strategy:   opts.Strategy,
			SplitTheta: *theta,
			SeedK:      *seedK,
			Workers:    *workers,
			Shards:     *shards,
			Layout:     strat,
		})
		if err != nil {
			fatal(err)
		}
		stats = db.BuildStats()
		ist = db.IndexStats()
		if *shards > 1 {
			shardStats = db.ShardStats()
		}
		if *save != "" {
			if err := saveStream(db, *save); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "uvbuild: saved logical stream to %s (%s)\n", *save, fileSize(*save))
		}
		if *snapshot != "" {
			if err := db.SaveSnapshot(*snapshot); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "uvbuild: saved page-image snapshot to %s (%s)\n", *snapshot, fileSize(*snapshot))
		}
	} else {
		store, err := uncertain.NewStore(objs, pager.New(uncertain.ObjectPageBytes))
		if err != nil {
			fatal(err)
		}
		ix, st, err := core.Build(store, domain, nil, opts)
		if err != nil {
			fatal(err)
		}
		stats, ist = st, ix.Stats()
	}

	fmt.Printf("dataset        %s (|O|=%d, diameter=%.0f)\n", *dataset, len(objs), *diameter)
	fmt.Printf("strategy       %v\n", stats.Strategy)
	fmt.Printf("total Tc       %v\n", stats.TotalDur)
	fmt.Printf("  seeds        %v\n", stats.SeedDur)
	fmt.Printf("  pruning      %v\n", stats.PruneDur)
	fmt.Printf("  refinement   %v\n", stats.RefineDur)
	fmt.Printf("  indexing     %v\n", stats.IndexDur)
	if stats.Strategy != core.StrategyBasic {
		fmt.Printf("I-prune ratio  %.1f%%\n", 100*stats.IPruneRatio())
		fmt.Printf("C-prune ratio  %.1f%%\n", 100*stats.CPruneRatio())
		fmt.Printf("avg |CR|       %.1f\n", stats.AvgCR())
	}
	if stats.SumR > 0 {
		fmt.Printf("avg |F|        %.1f\n", stats.AvgR())
	}
	fmt.Printf("index          %d non-leaf (%.1f KB RAM), %d leaves, %d pages, depth %d, avg list %.1f\n",
		ist.NonLeaf, float64(ist.MemBytes)/1024, ist.Leaves, ist.Pages, ist.MaxDepth, ist.AvgEntries)
	if len(shardStats) > 1 {
		fmt.Printf("shards         %d (layout %s)\n", len(shardStats), *layout)
		for i, sh := range shardStats {
			fmt.Printf("  shard %-3d    %v: %d live, %d leaves, %d pages, depth %d, %d entries\n",
				i, sh.Rect, sh.Live, sh.Index.Leaves, sh.Index.Pages, sh.Index.MaxDepth, sh.Index.Entries)
		}
	}
}

// saveStream writes db as a logical stream via a buffered temp file
// renamed into place.
func saveStream(db *uvdiagram.DB, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	err = db.Save(bw)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func fileSize(path string) string {
	fi, err := os.Stat(path)
	if err != nil {
		return "?"
	}
	return fmt.Sprintf("%.1f MiB", float64(fi.Size())/(1<<20))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uvbuild:", err)
	os.Exit(1)
}
