// Command uvclient queries a running uvserver.
//
// Usage:
//
//	uvclient [-addr localhost:7031] stats
//	uvclient [-addr ...] pnn <x> <y>
//	uvclient [-addr ...] topk <x> <y> <k>
//	uvclient [-addr ...] knn <x> <y> <k>
//	uvclient [-addr ...] rnn <x> <y>
//	uvclient [-addr ...] area <id>
//	uvclient [-addr ...] parts <x0> <y0> <x1> <y1>
//	uvclient [-addr ...] insert <id> <x> <y> <r>
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"uvdiagram"
	"uvdiagram/internal/server"
)

func main() {
	addr := flag.String("addr", "localhost:7031", "server address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fatal(fmt.Errorf("missing command; see -h"))
	}

	cli, err := server.Dial(*addr)
	if err != nil {
		fatal(err)
	}
	defer cli.Close()

	switch cmd, rest := args[0], args[1:]; cmd {
	case "stats":
		st, err := cli.Stats()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("domain   %v\nobjects  %d\nnon-leaf %d\nleaves   %d\npages    %d\ndepth    %d\nentries  %d\n",
			st.Domain, st.Objects, st.NonLeaf, st.Leaves, st.Pages, st.MaxDepth, st.Entries)

	case "pnn":
		x, y := f64(rest, 0), f64(rest, 1)
		answers, err := cli.PNN(uvdiagram.Pt(x, y))
		if err != nil {
			fatal(err)
		}
		printAnswers(answers)

	case "topk":
		x, y, k := f64(rest, 0), f64(rest, 1), i(rest, 2)
		answers, err := cli.TopKPNN(uvdiagram.Pt(x, y), k)
		if err != nil {
			fatal(err)
		}
		printAnswers(answers)

	case "knn":
		x, y, k := f64(rest, 0), f64(rest, 1), i(rest, 2)
		ids, err := cli.PossibleKNN(uvdiagram.Pt(x, y), k)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%d possible %d-NN objects: %v\n", len(ids), k, ids)

	case "rnn":
		x, y := f64(rest, 0), f64(rest, 1)
		answers, err := cli.RNN(uvdiagram.Pt(x, y))
		if err != nil {
			fatal(err)
		}
		for _, a := range answers {
			fmt.Printf("object %d  p=%.4f\n", a.ID, a.Prob)
		}

	case "area":
		id := i(rest, 0)
		area, err := cli.CellArea(int32(id))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("UV-cell area of object %d ≈ %.1f\n", id, area)

	case "parts":
		r := uvdiagram.Rect{
			Min: uvdiagram.Pt(f64(rest, 0), f64(rest, 1)),
			Max: uvdiagram.Pt(f64(rest, 2), f64(rest, 3)),
		}
		parts, err := cli.Partitions(r)
		if err != nil {
			fatal(err)
		}
		for _, p := range parts {
			fmt.Printf("%v  count=%d  density=%.6f\n", p.Region, p.Count, p.Density)
		}

	case "insert":
		id, x, y, rad := i(rest, 0), f64(rest, 1), f64(rest, 2), f64(rest, 3)
		if err := cli.Insert(int32(id), x, y, rad, nil); err != nil {
			fatal(err)
		}
		fmt.Printf("inserted object %d\n", id)

	default:
		fatal(fmt.Errorf("unknown command %q", cmd))
	}
}

func printAnswers(answers []uvdiagram.Answer) {
	fmt.Printf("%d answer object(s)\n", len(answers))
	for _, a := range answers {
		fmt.Printf("object %d  p=%.4f\n", a.ID, a.Prob)
	}
}

func f64(args []string, k int) float64 {
	if k >= len(args) {
		fatal(fmt.Errorf("missing argument %d", k+1))
	}
	v, err := strconv.ParseFloat(args[k], 64)
	if err != nil {
		fatal(err)
	}
	return v
}

func i(args []string, k int) int {
	if k >= len(args) {
		fatal(fmt.Errorf("missing argument %d", k+1))
	}
	v, err := strconv.Atoi(args[k])
	if err != nil {
		fatal(err)
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uvclient:", err)
	os.Exit(1)
}
