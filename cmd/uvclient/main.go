// Command uvclient queries a running uvserver.
//
// Usage:
//
//	uvclient [-addr localhost:7031] stats
//	uvclient [-addr ...] metrics
//	uvclient [-addr ...] pnn <x> <y>
//	uvclient [-addr ...] topk <x> <y> <k>
//	uvclient [-addr ...] knn <x> <y> <k>
//	uvclient [-addr ...] rnn <x> <y>
//	uvclient [-addr ...] area <id>
//	uvclient [-addr ...] parts <x0> <y0> <x1> <y1>
//	uvclient [-addr ...] insert <id> <x> <y> <r>
//	uvclient [-addr ...] delete <id>
//	uvclient [-addr ...] batchdel <id1> [<id2> ...]
//	uvclient [-addr ...] batchpnn <x1> <y1> [<x2> <y2> ...]
//	uvclient [-addr ...] batchknn <k> <x1> <y1> [<x2> <y2> ...]
//	uvclient [-addr ...] batchthresh <tau> <x1> <y1> [<x2> <y2> ...]
//	uvclient [-addr ...] bench <single|pipeline|batch> <queries>
//	uvclient [-addr ...] subscribe <x> <y> [moves] [step]
//
// subscribe opens a server-side moving-query subscription at (x, y),
// streams a deterministic random walk of fire-and-forget moves
// (default 100 moves of step 1% of the domain diagonal), prints every
// pushed answer delta as it arrives, and closes the session, reporting
// the server-side counters — in particular how many of the moves the
// safe circle absorbed without a recompute.
//
// batchpnn/batchknn/batchthresh send all points in one batch frame.
// bench generates deterministic random in-domain points and measures
// query throughput in the given mode: "single" issues one blocking
// round trip at a time, "pipeline" keeps a window of async calls in
// flight, "batch" ships the points in batch frames.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"uvdiagram"
	"uvdiagram/internal/server"
)

func main() {
	addr := flag.String("addr", "localhost:7031", "server address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fatal(fmt.Errorf("missing command; see -h"))
	}

	cli, err := server.Dial(*addr)
	if err != nil {
		fatal(err)
	}
	defer cli.Close()

	switch cmd, rest := args[0], args[1:]; cmd {
	case "stats":
		st, err := cli.Stats()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("domain   %v\nobjects  %d\nnon-leaf %d\nleaves   %d\npages    %d\ndepth    %d\nentries  %d\nnext id  %d\n",
			st.Domain, st.Objects, st.NonLeaf, st.Leaves, st.Pages, st.MaxDepth, st.Entries, st.NextID)
		if st.Shards > 0 {
			fmt.Printf("shards   %d\n", st.Shards)
			if st.GridX > 0 {
				fmt.Printf("grid     %d×%d\n", st.GridX, st.GridY)
				fmt.Printf("x-cuts   %v\ny-cuts   %v\n", st.CutsX, st.CutsY)
			}
			for i, slack := range st.ShardSlack {
				if i < len(st.ShardLive) {
					fmt.Printf("  shard %-3d live %-6d slack %d\n", i, st.ShardLive[i], slack)
				} else {
					fmt.Printf("  shard %-3d slack %d\n", i, slack)
				}
			}
			if f := st.LoadImbalance(); f > 0 {
				fmt.Printf("load imbalance (max/mean) %.2f\n", f)
			}
		}

	case "metrics":
		ms, err := cli.Metrics()
		if err != nil {
			fatal(err)
		}
		width := 0
		for _, m := range ms {
			width = max(width, len(m.Name))
		}
		for _, m := range ms {
			fmt.Printf("%-*s  %g\n", width, m.Name, m.Value)
		}

	case "pnn":
		x, y := f64(rest, 0), f64(rest, 1)
		answers, err := cli.PNN(uvdiagram.Pt(x, y))
		if err != nil {
			fatal(err)
		}
		printAnswers(answers)

	case "topk":
		x, y, k := f64(rest, 0), f64(rest, 1), i(rest, 2)
		answers, err := cli.TopKPNN(uvdiagram.Pt(x, y), k)
		if err != nil {
			fatal(err)
		}
		printAnswers(answers)

	case "knn":
		x, y, k := f64(rest, 0), f64(rest, 1), i(rest, 2)
		ids, err := cli.PossibleKNN(uvdiagram.Pt(x, y), k)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%d possible %d-NN objects: %v\n", len(ids), k, ids)

	case "rnn":
		x, y := f64(rest, 0), f64(rest, 1)
		answers, err := cli.RNN(uvdiagram.Pt(x, y))
		if err != nil {
			fatal(err)
		}
		for _, a := range answers {
			fmt.Printf("object %d  p=%.4f\n", a.ID, a.Prob)
		}

	case "area":
		id := i(rest, 0)
		area, err := cli.CellArea(int32(id))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("UV-cell area of object %d ≈ %.1f\n", id, area)

	case "parts":
		r := uvdiagram.Rect{
			Min: uvdiagram.Pt(f64(rest, 0), f64(rest, 1)),
			Max: uvdiagram.Pt(f64(rest, 2), f64(rest, 3)),
		}
		parts, err := cli.Partitions(r)
		if err != nil {
			fatal(err)
		}
		for _, p := range parts {
			fmt.Printf("%v  count=%d  density=%.6f\n", p.Region, p.Count, p.Density)
		}

	case "insert":
		id, x, y, rad := i(rest, 0), f64(rest, 1), f64(rest, 2), f64(rest, 3)
		if err := cli.Insert(int32(id), x, y, rad, nil); err != nil {
			fatal(err)
		}
		fmt.Printf("inserted object %d\n", id)

	case "delete":
		id := i(rest, 0)
		if err := cli.Delete(int32(id)); err != nil {
			fatal(err)
		}
		fmt.Printf("deleted object %d\n", id)

	case "batchdel":
		if len(rest) == 0 {
			fatal(fmt.Errorf("batchdel needs at least one id"))
		}
		ids := make([]int32, len(rest))
		for k := range rest {
			ids[k] = int32(i(rest, k))
		}
		if err := cli.BatchDelete(ids); err != nil {
			fatal(err)
		}
		fmt.Printf("deleted %d objects\n", len(ids))

	case "batchpnn":
		lists, err := cli.BatchPNN(points(rest))
		if err != nil {
			fatal(err)
		}
		for i, answers := range lists {
			fmt.Printf("query %d:\n", i)
			printAnswers(answers)
		}

	case "batchknn":
		k := i(rest, 0)
		lists, err := cli.BatchPossibleKNN(points(rest[1:]), k)
		if err != nil {
			fatal(err)
		}
		for qi, ids := range lists {
			fmt.Printf("query %d: %d possible %d-NN objects: %v\n", qi, len(ids), k, ids)
		}

	case "batchthresh":
		tau := f64(rest, 0)
		lists, err := cli.BatchThresholdNN(points(rest[1:]), tau)
		if err != nil {
			fatal(err)
		}
		for qi, answers := range lists {
			fmt.Printf("query %d (p ≥ %.3f):\n", qi, tau)
			printAnswers(answers)
		}

	case "bench":
		if len(rest) < 2 {
			fatal(fmt.Errorf("usage: bench <single|pipeline|batch> <queries>"))
		}
		bench(cli, rest[0], i(rest, 1))

	case "subscribe":
		x, y := f64(rest, 0), f64(rest, 1)
		moves, step := 100, 0.0
		if len(rest) > 2 {
			moves = i(rest, 2)
		}
		if len(rest) > 3 {
			step = f64(rest, 3)
		}
		subscribe(cli, uvdiagram.Pt(x, y), moves, step)

	default:
		fatal(fmt.Errorf("unknown command %q", cmd))
	}
}

// bench measures PNN throughput against the connected server.
func bench(cli *server.Client, mode string, n int) {
	st, err := cli.Stats()
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	qs := make([]uvdiagram.Point, n)
	for i := range qs {
		qs[i] = uvdiagram.Pt(
			st.Domain.Min.X+rng.Float64()*(st.Domain.Max.X-st.Domain.Min.X),
			st.Domain.Min.Y+rng.Float64()*(st.Domain.Max.Y-st.Domain.Min.Y),
		)
	}
	var answers int
	start := time.Now()
	switch mode {
	case "single":
		for _, q := range qs {
			as, err := cli.PNN(q)
			if err != nil {
				fatal(err)
			}
			answers += len(as)
		}
	case "pipeline":
		const window = 64
		done := make(chan *server.Call, window)
		inFlight := 0
		drain := func() {
			call := <-done
			as, err := server.PNNAnswers(call)
			if err != nil {
				fatal(err)
			}
			answers += len(as)
			inFlight--
		}
		for _, q := range qs {
			for inFlight >= window {
				drain()
			}
			cli.GoPNN(q, done)
			inFlight++
		}
		for inFlight > 0 {
			drain()
		}
	case "batch":
		const chunk = 1024
		for off := 0; off < len(qs); off += chunk {
			end := min(off+chunk, len(qs))
			lists, err := cli.BatchPNN(qs[off:end])
			if err != nil {
				fatal(err)
			}
			for _, as := range lists {
				answers += len(as)
			}
		}
	default:
		fatal(fmt.Errorf("unknown bench mode %q (single, pipeline, batch)", mode))
	}
	elapsed := time.Since(start)
	fmt.Printf("%s: %d PNN queries in %v  (%.0f queries/s, %d answers)\n",
		mode, n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(), answers)
}

// subscribe runs one moving-query subscription: a random walk of
// fire-and-forget moves with every pushed delta printed as it arrives.
func subscribe(cli *server.Client, q uvdiagram.Point, moves int, step float64) {
	st, err := cli.Stats()
	if err != nil {
		fatal(err)
	}
	w, h := st.Domain.Max.X-st.Domain.Min.X, st.Domain.Max.Y-st.Domain.Min.Y
	if step <= 0 {
		step = 0.01 * math.Hypot(w, h)
	}
	sub, err := cli.Subscribe(q, func(d server.Delta) {
		if d.Err != nil {
			fmt.Printf("push #%d: session dropped: %v\n", d.Seq, d.Err)
			return
		}
		fmt.Printf("push #%d: +%v -%v  safe r=%.3f\n", d.Seq, d.Added, d.Removed, d.Safe.R)
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("subscription %d at (%g, %g): %d initial answer(s) %v, safe r=%.3f\n",
		sub.ID(), q.X, q.Y, len(sub.AnswerIDs()), sub.AnswerIDs(), sub.SafeRegion().R)

	rng := rand.New(rand.NewSource(7))
	start := time.Now()
	for k := 0; k < moves; k++ {
		q.X += (rng.Float64()*2 - 1) * step
		q.Y += (rng.Float64()*2 - 1) * step
		q.X = min(max(q.X, st.Domain.Min.X), st.Domain.Max.X)
		q.Y = min(max(q.Y, st.Domain.Min.Y), st.Domain.Max.Y)
		if err := sub.Move(q); err != nil {
			fatal(err)
		}
	}
	if err := cli.Ping(); err != nil { // delta flush barrier
		fatal(err)
	}
	elapsed := time.Since(start)
	stats, err := sub.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d moves in %v (%.0f moves/s): %d recomputes (%.1f%%), %d leaf reads, %d pushes\n",
		stats.Moves, elapsed.Round(time.Millisecond), float64(stats.Moves)/elapsed.Seconds(),
		stats.Recomputes, 100*float64(stats.Recomputes)/float64(max(stats.Moves, 1)),
		stats.IndexIOs, stats.Pushes)
	fmt.Printf("final answer set: %v\n", sub.AnswerIDs())
}

// points parses the trailing arguments as x y pairs.
func points(args []string) []uvdiagram.Point {
	if len(args) == 0 || len(args)%2 != 0 {
		fatal(fmt.Errorf("need a non-empty, even list of coordinates, got %d", len(args)))
	}
	qs := make([]uvdiagram.Point, len(args)/2)
	for i := range qs {
		qs[i] = uvdiagram.Pt(f64(args, 2*i), f64(args, 2*i+1))
	}
	return qs
}

func printAnswers(answers []uvdiagram.Answer) {
	fmt.Printf("%d answer object(s)\n", len(answers))
	for _, a := range answers {
		fmt.Printf("object %d  p=%.4f\n", a.ID, a.Prob)
	}
}

func f64(args []string, k int) float64 {
	if k >= len(args) {
		fatal(fmt.Errorf("missing argument %d", k+1))
	}
	v, err := strconv.ParseFloat(args[k], 64)
	if err != nil {
		fatal(err)
	}
	return v
}

func i(args []string, k int) int {
	if k >= len(args) {
		fatal(fmt.Errorf("missing argument %d", k+1))
	}
	v, err := strconv.Atoi(args[k])
	if err != nil {
		fatal(err)
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uvclient:", err)
	// Typed match for in-process callers; remote errors cross the wire
	// as flat "server: ..." strings, so fall back to the message.
	if errors.Is(err, uvdiagram.ErrStaleSnapshot) || strings.Contains(err.Error(), "index is stale") {
		fmt.Fprintln(os.Stderr, "uvclient: the server's order-k snapshot predates a mutation; re-issue the query after the server rebuilds it")
	}
	os.Exit(1)
}
