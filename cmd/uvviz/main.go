// Command uvviz renders a UV-diagram to SVG: the uncertainty regions,
// a few exact UV-cells (computed by Algorithm 1 on the fly), the
// adaptive-grid leaves and a partition-density heat map — pictures in
// the spirit of the paper's Figures 1 and 2.
//
// Usage:
//
//	uvviz [-n 60] [-seed 1] [-cells 4] [-leaves] [-density] [-o uv.svg]
package main

import (
	"flag"
	"fmt"
	"os"

	"uvdiagram"
	"uvdiagram/internal/core"
	"uvdiagram/internal/datagen"
	"uvdiagram/internal/viz"
)

func main() {
	n := flag.Int("n", 60, "number of objects")
	seed := flag.Int64("seed", 1, "random seed")
	cells := flag.Int("cells", 4, "number of exact UV-cells to outline")
	leaves := flag.Bool("leaves", true, "draw index leaf boundaries")
	density := flag.Bool("density", false, "shade partitions by NN density")
	out := flag.String("o", "uv.svg", "output file (- for stdout)")
	side := flag.Float64("side", 2000, "domain side")
	flag.Parse()

	cfg := datagen.Config{N: *n, Side: *side, Diameter: *side / 40, Seed: *seed}
	objs := datagen.Uniform(cfg)
	domain := cfg.Domain()
	db, err := uvdiagram.Build(objs, domain, nil)
	if err != nil {
		fatal(err)
	}

	scene := viz.Scene{Domain: domain, Objects: objs}
	if *cells > len(objs) {
		*cells = len(objs)
	}
	for i := 0; i < *cells; i++ {
		region := core.NewPossibleRegion(objs[i].Region.C, domain)
		for j := range objs {
			if j != i {
				region.AddObject(objs[i], objs[j])
			}
		}
		outline := viz.OutlineRegion(region, 360)
		outline.Label = fmt.Sprintf("U%d", i)
		scene.Cells = append(scene.Cells, outline)
	}
	if *leaves {
		parts := db.Partitions(domain)
		for _, p := range parts {
			scene.Leaves = append(scene.Leaves, p.Region)
		}
		if *density {
			scene.Partitions = parts
		}
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := viz.Write(w, scene); err != nil {
		fatal(err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %s (%d objects, %d cells)\n", *out, len(objs), len(scene.Cells))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uvviz:", err)
	os.Exit(1)
}
