// Wireless-broadcast dispatch: the paper motivates the UV-diagram with
// Voronoi-based broadcast services ([2], [3]) where clients tune into a
// broadcast index and every page read costs battery. This example
// replays a workload of probabilistic nearest-neighbor queries over
// uncertain vehicle positions and compares the page-read budget of the
// UV-index against the R-tree baseline — the Figure 6(b) effect as an
// application.
//
// The closing section turns the broadcast around: instead of every
// passenger re-polling when taxis move, passengers SUBSCRIBE to a
// UV-diagram server and the server pushes an answer delta only to the
// passengers whose answer actually changed — churn in one shard never
// wakes a subscriber in another.
//
//	go run ./examples/broadcast
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"

	"uvdiagram"
	"uvdiagram/internal/datagen"
	"uvdiagram/internal/server"
)

func main() {
	// 5000 taxis with GPS/cloaking uncertainty across a 10 km city.
	cfg := datagen.Config{N: 5000, Side: 10000, Diameter: 60, Seed: 3}
	objs := datagen.Uniform(cfg)
	db, err := uvdiagram.Build(objs, cfg.Domain(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d taxis in %v\n", db.Len(), db.BuildStats().TotalDur)
	ist := db.IndexStats()
	fmt.Printf("broadcast index: %d leaf pages, non-leaf directory %.1f KB\n\n",
		ist.Pages, float64(ist.MemBytes)/1024)

	// 200 passengers ask "which taxi might be closest to me?"
	queries := datagen.Queries(200, 10000, 99)
	var uvIO, rtIO, uvAns int64
	var uvMs, rtMs float64
	for _, q := range queries {
		a, st, err := db.PNN(q)
		if err != nil {
			log.Fatal(err)
		}
		uvIO += st.IndexIOs
		uvAns += int64(len(a))
		uvMs += st.Total().Seconds() * 1000

		_, st2, err := db.PNNViaRTree(q)
		if err != nil {
			log.Fatal(err)
		}
		rtIO += st2.IndexIOs
		rtMs += st2.Total().Seconds() * 1000
	}
	n := float64(len(queries))
	fmt.Printf("%-28s %12s %12s\n", "", "UV-index", "R-tree")
	fmt.Printf("%-28s %12.2f %12.2f\n", "avg page reads / query", float64(uvIO)/n, float64(rtIO)/n)
	fmt.Printf("%-28s %12.3f %12.3f\n", "avg latency (ms)", uvMs/n, rtMs/n)
	fmt.Printf("%-28s %12.1f %12s\n", "avg answers / query", float64(uvAns)/n, "same")
	fmt.Printf("\nper 1M broadcast clients, the UV-index saves ~%.1fM page tunes\n",
		(float64(rtIO)-float64(uvIO))/n)

	// Server push instead of re-polling: 64 passengers subscribe, then
	// 30 taxis relocate (delete + insert). Every subscriber stays exact
	// — the server revalidates each session against the churned shards —
	// but only the passengers whose answer set changed hear about it.
	srv := server.New(db, nil)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = srv.Serve(lis) }()
	defer srv.Close()
	cli, err := server.Dial(lis.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	subs := make([]*server.Subscription, 64)
	for i := range subs {
		if subs[i], err = cli.Subscribe(queries[i], nil); err != nil {
			log.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(11))
	gone := map[int32]bool{}
	for k := 0; k < 30; k++ {
		victim := int32(rng.Intn(cfg.N))
		for gone[victim] {
			victim = int32(rng.Intn(cfg.N))
		}
		gone[victim] = true
		if err := cli.Delete(victim); err != nil {
			log.Fatal(err)
		}
		if err := cli.Insert(db.NextID(), rng.Float64()*cfg.Side, rng.Float64()*cfg.Side, cfg.Diameter/2, nil); err != nil {
			log.Fatal(err)
		}
	}
	if err := cli.Ping(); err != nil { // flush barrier: all deltas applied
		log.Fatal(err)
	}
	var pushes, recomputes uint64
	for _, sub := range subs {
		st, err := sub.Close()
		if err != nil {
			log.Fatal(err)
		}
		pushes += st.Pushes
		recomputes += st.Recomputes
	}
	fmt.Printf("\n60 relocation events × %d subscribed passengers: %d revalidations server-side, only %d pushes on air\n",
		len(subs), recomputes, pushes)
}
