// Tracking: a continuous PNN query for a moving client — the
// location-based-service setting of the paper's introduction ([5]–[7]).
//
// A delivery drone flies across a city where the positions of service
// stations are uncertain (privacy-cloaked reports, Section I). At every
// tick the drone needs the set of stations that might be its nearest.
// The ContinuousPNN session keeps a safe circle inside which the answer
// set provably cannot change, so most ticks cost nothing.
//
// The second act replays the same route over the wire: the drone
// subscribes to a UV-diagram server, streams its positions as
// fire-and-forget move frames, and the SERVER evaluates the safe circle
// — the drone's radio only wakes up when the server pushes an answer
// delta.
//
//	go run ./examples/tracking
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"

	"uvdiagram"
	"uvdiagram/internal/server"
)

func main() {
	const side = 5000
	rng := rand.New(rand.NewSource(7))

	// 400 stations with cloaked circular positions.
	objs := make([]uvdiagram.Object, 400)
	for i := range objs {
		objs[i] = uvdiagram.NewObject(int32(i),
			50+rng.Float64()*(side-100), 50+rng.Float64()*(side-100),
			15+rng.Float64()*25, uvdiagram.GaussianPDF())
	}
	db, err := uvdiagram.Build(objs, uvdiagram.SquareDomain(side), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d stations in %v\n\n", db.Len(), db.BuildStats().TotalDur)

	// The drone flies a noisy diagonal route, one position per tick.
	pos := uvdiagram.Pt(250, 250)
	sess, err := db.NewContinuousPNN(pos)
	if err != nil {
		log.Fatal(err)
	}
	heading := math.Pi / 4
	changes := 0
	prev := fmt.Sprint(sess.AnswerIDs())
	for tick := 0; tick < 2000; tick++ {
		heading += rng.NormFloat64() * 0.05
		pos = uvdiagram.Pt(
			clamp(pos.X+3*math.Cos(heading), 1, side-1),
			clamp(pos.Y+3*math.Sin(heading), 1, side-1),
		)
		ids, recomputed, err := sess.Move(pos)
		if err != nil {
			log.Fatal(err)
		}
		if cur := fmt.Sprint(ids); recomputed && cur != prev {
			changes++
			if changes <= 5 {
				fmt.Printf("tick %4d at (%.0f, %.0f): possible nearest stations -> %v\n",
					tick, pos.X, pos.Y, ids)
			}
			prev = cur
		}
	}

	st := sess.Stats()
	fmt.Printf("\n%d ticks, %d re-evaluations (%.1f%% saved by safe regions), %d answer-set changes\n",
		st.Moves, st.Recomputes, 100*(1-float64(st.Recomputes)/float64(st.Moves)), changes)

	// The same route with possible-3-NN at the final position, for a
	// fallback list when the nearest station is busy.
	ids, err := db.PossibleKNN(pos, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stations possibly among the 3 nearest at journey's end: %v\n", ids)

	// Act two: the same drone as a thin client of a UV-diagram server.
	// Moves are fire-and-forget frames; the server keeps the session and
	// pushes a delta only when the answer set actually changes.
	srv := server.New(db, nil)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = srv.Serve(lis) }()
	defer srv.Close()

	cli, err := server.Dial(lis.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	pos = uvdiagram.Pt(250, 250)
	pushes := 0
	sub, err := cli.Subscribe(pos, func(d server.Delta) {
		pushes++
		if pushes <= 3 {
			fmt.Printf("push #%d: stations +%v -%v\n", d.Seq, d.Added, d.Removed)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsubscribed over TCP as session %d: initial stations %v\n", sub.ID(), sub.AnswerIDs())

	rng = rand.New(rand.NewSource(7)) // a fresh route with the same dynamics
	heading = math.Pi / 4
	for tick := 0; tick < 2000; tick++ {
		heading += rng.NormFloat64() * 0.05
		pos = uvdiagram.Pt(
			clamp(pos.X+3*math.Cos(heading), 1, side-1),
			clamp(pos.Y+3*math.Sin(heading), 1, side-1),
		)
		if err := sub.Move(pos); err != nil {
			log.Fatal(err)
		}
	}
	if err := cli.Ping(); err != nil { // flush barrier: all deltas applied
		log.Fatal(err)
	}
	stats, err := sub.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d moves over the wire: %d server recomputes, %d pushes — the radio slept through %.1f%% of the ticks\n",
		stats.Moves, stats.Recomputes, stats.Pushes, 100*(1-float64(stats.Pushes)/float64(stats.Moves)))
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
