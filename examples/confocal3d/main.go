// Confocal3D: nearest-neighbor analysis over 3D uncertain positions —
// the multi-dimensional extension the paper's conclusion lists as
// future work, on the biological imaging workload its introduction
// motivates (cell positions from microscopy are uncertain due to
// resolution and measurement accuracy [11], [12]).
//
// A confocal stack yields organelle positions in a 100³ µm volume, each
// with a spherical uncertainty region from the point-spread function.
// Given a probe position, which organelles might be the nearest?
//
//	go run ./examples/confocal3d
package main

import (
	"fmt"
	"log"
	"math/rand"

	"uvdiagram"
)

func main() {
	const side = 100.0 // µm
	rng := rand.New(rand.NewSource(11))

	// 500 organelles in three bands of the volume (layered tissue), with
	// axial (z) uncertainty dominating — modeled as spheres sized by the
	// worst axis, the minimum-bounding conversion of Section III-C.
	objs := make([]uvdiagram.Object3, 500)
	for i := range objs {
		layer := float64(rng.Intn(3))
		objs[i] = uvdiagram.NewObject3(int32(i),
			3+rng.Float64()*(side-6),
			3+rng.Float64()*(side-6),
			clamp(15+layer*30+rng.NormFloat64()*6, 3, side-3),
			0.5+rng.Float64()*2.0, // PSF-scaled uncertainty radius
			uvdiagram.GaussianPDF3())
	}

	db, err := uvdiagram.Build3(objs, uvdiagram.CubeDomain(side), nil)
	if err != nil {
		log.Fatal(err)
	}
	bs := db.BuildStats()
	fmt.Printf("indexed %d organelles in %v (pruning ratio %.1f%%, avg |CR| %.1f)\n",
		db.Len(), bs.TotalDur, 100*bs.PruneRatio(), bs.AvgCR())
	ixst := db.IndexStats()
	fmt.Printf("octree: %d non-leaf, %d leaves, max depth %d, %.1f entries/leaf\n\n",
		ixst.NonLeaf, ixst.Leaves, ixst.MaxDepth, ixst.AvgEntries)

	probes := []uvdiagram.Point3{
		uvdiagram.Pt3(50, 50, 15), // middle of layer 0
		uvdiagram.Pt3(50, 50, 30), // between layers
		uvdiagram.Pt3(20, 80, 75), // layer 2
	}
	for _, q := range probes {
		answers, st, err := db.PNN(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("probe at (%.0f, %.0f, %.0f): %d possible nearest organelle(s), %d leaf entries read\n",
			q.X, q.Y, q.Z, len(answers), st.LeafEntries)
		for _, a := range answers {
			o, err := db.Object(a.ID)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  organelle %3d at (%.1f, %.1f, %.1f) ± %.1f µm: p = %.4f\n",
				a.ID, o.Region.C.X, o.Region.C.Y, o.Region.C.Z, o.Region.R, a.Prob)
		}
		fmt.Println()
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
