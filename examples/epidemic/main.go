// Epidemic: reverse nearest-neighbor analysis of contact patterns —
// the bluetooth-virus spreading study the paper cites as a Voronoi
// application ([8]), on uncertain device positions.
//
// An infected device is detected at a known location q. Devices report
// privacy-cloaked positions (circular uncertainty regions), and a
// device is at risk of first-hop infection if q may be its nearest
// contact: exactly the probabilistic reverse nearest-neighbor query the
// paper's conclusion lists as future work.
//
//	go run ./examples/epidemic
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"uvdiagram"
)

func main() {
	const side = 2000
	rng := rand.New(rand.NewSource(42))

	// 300 devices clustered around a few hotspots (cafés, stations).
	hotspots := []uvdiagram.Point{
		uvdiagram.Pt(400, 500), uvdiagram.Pt(1400, 600),
		uvdiagram.Pt(1000, 1500), uvdiagram.Pt(600, 1200),
	}
	objs := make([]uvdiagram.Object, 300)
	for i := range objs {
		h := hotspots[rng.Intn(len(hotspots))]
		objs[i] = uvdiagram.NewObject(int32(i),
			clamp(h.X+rng.NormFloat64()*180, 40, side-40),
			clamp(h.Y+rng.NormFloat64()*180, 40, side-40),
			10+rng.Float64()*20, uvdiagram.GaussianPDF())
	}
	db, err := uvdiagram.Build(objs, uvdiagram.SquareDomain(side), nil)
	if err != nil {
		log.Fatal(err)
	}

	// Infection detected near the first hotspot.
	q := uvdiagram.Pt(430, 540)
	answers, stats := db.RNN(q)
	fmt.Printf("infected device at (%.0f, %.0f)\n", q.X, q.Y)
	fmt.Printf("candidate cutoff D2 = %.1f; %d of %d devices checked, %d at risk\n\n",
		stats.Cutoff, stats.Candidates, db.Len(), stats.Answers)

	// Rank by infection-risk probability.
	sort.Slice(answers, func(i, j int) bool { return answers[i].Prob > answers[j].Prob })
	fmt.Println("highest-risk devices (probability q is their nearest contact):")
	for i, a := range answers {
		if i == 10 {
			fmt.Printf("  ... and %d more\n", len(answers)-10)
			break
		}
		o, err := db.Object(a.ID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  device %3d near (%.0f, %.0f): %.3f\n",
			a.ID, o.Region.C.X, o.Region.C.Y, a.Prob)
	}

	// Forward direction for comparison: which devices might the infected
	// one contact first (its own possible nearest neighbors)?
	fwd, _, err := db.PNN(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nforward PNN at q: %d possible nearest neighbors\n", len(fwd))
	fmt.Println("(RNN answers need not coincide with PNN answers: nearest-neighbor")
	fmt.Println(" relations over uncertain data are asymmetric, which is why spread")
	fmt.Println(" analysis needs the reverse query.)")
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
