// Privacy-preserving location services: user positions are deliberately
// "cloaked" into larger regions (as in the paper's privacy motivation,
// references [9], [10], [16]) and a dispatcher still wants to know
// which user is probably closest to an incident.
//
// The example shows the non-circular-region support: each cloak is a
// polygon that the library converts to its minimum bounding circle
// (Section III-C), and qualification probabilities are cross-checked
// against Monte-Carlo simulation.
//
//	go run ./examples/privacy
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"uvdiagram"
)

func main() {
	const side = 5000.0 // a 5 km × 5 km city grid, meters
	rng := rand.New(rand.NewSource(7))

	// 40 couriers, each reporting a rectangular or hexagonal cloak
	// instead of an exact position. Cloak sizes vary: privacy-conscious
	// users pick bigger cloaks.
	objs := make([]uvdiagram.Object, 0, 40)
	for i := 0; i < 40; i++ {
		cx := 300 + rng.Float64()*(side-600)
		cy := 300 + rng.Float64()*(side-600)
		cloak := 80 + rng.Float64()*220 // 80–300 m cloak "radius"
		var poly []uvdiagram.Point
		if i%2 == 0 {
			// Rectangular cloak (e.g. a city block).
			w, h := cloak, cloak*(0.5+rng.Float64())
			poly = []uvdiagram.Point{
				uvdiagram.Pt(cx-w, cy-h), uvdiagram.Pt(cx+w, cy-h),
				uvdiagram.Pt(cx+w, cy+h), uvdiagram.Pt(cx-w, cy+h),
			}
		} else {
			// Hexagonal cloak (cell-tower sector union).
			for k := 0; k < 6; k++ {
				a := float64(k) / 6 * 2 * math.Pi
				poly = append(poly, uvdiagram.Pt(cx+cloak*math.Cos(a), cy+cloak*math.Sin(a)))
			}
		}
		o, err := uvdiagram.NewObjectFromPolygon(int32(i), poly, uvdiagram.UniformPDF())
		if err != nil {
			log.Fatal(err)
		}
		objs = append(objs, o)
	}

	// Small pages make the adaptive grid fine-grained enough for a
	// 40-object workload (4 KB pages would never fill, see quickstart).
	db, err := uvdiagram.Build(objs, uvdiagram.SquareDomain(side), &uvdiagram.Options{PageSize: 256})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d cloaked couriers in %v\n\n", db.Len(), db.BuildStats().TotalDur)

	// An incident comes in: who is probably closest?
	incident := uvdiagram.Pt(2600, 2350)
	answers, stats, err := db.PNN(incident)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incident at (%.0f, %.0f): %d candidate courier(s) in %v\n",
		incident.X, incident.Y, len(answers), stats.Total().Round(1000))

	var cands []uvdiagram.Object
	for _, a := range answers {
		o, _ := db.Object(a.ID)
		cands = append(cands, o)
	}
	mc := uvdiagram.MonteCarloProbabilities(cands, incident, 100000, 1)
	fmt.Println("\ncourier  dispatch-probability  monte-carlo  cloak-radius(m)")
	for i, a := range answers {
		fmt.Printf("%7d  %20.4f  %11.4f  %15.0f\n",
			a.ID, a.Prob, mc[i], cands[i].Region.R)
	}

	// Privacy insight: bigger cloaks spread a user across more of the
	// UV-diagram — their "possible nearest" area grows.
	fmt.Println("\ncloak radius vs possible-NN area (privacy/utility trade-off):")
	type row struct {
		id     int32
		radius float64
		area   float64
	}
	var rows []row
	for _, o := range objs {
		area, err := db.CellArea(o.ID)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{o.ID, o.Region.R, area})
	}
	// Top three largest cloaks vs three smallest.
	small, large := rows[0], rows[0]
	for _, r := range rows {
		if r.radius < small.radius {
			small = r
		}
		if r.radius > large.radius {
			large = r
		}
	}
	fmt.Printf("  smallest cloak: courier %d (r=%.0fm) can be NN over %.2f km²\n",
		small.id, small.radius, small.area/1e6)
	fmt.Printf("  largest  cloak: courier %d (r=%.0fm) can be NN over %.2f km²\n",
		large.id, large.radius, large.area/1e6)
}
