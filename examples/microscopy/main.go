// Microscopy pattern analysis: positions of imaged cells are uncertain
// (image resolution, measurement error — the paper's biology motivation
// [11], [12]). The UV-diagram's pattern queries answer questions such
// as "where in the slide could many different cells be the nearest
// one?" — the UV-partition density query of Section V-C — and render
// the result as an SVG heat map.
//
//	go run ./examples/microscopy
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"uvdiagram"
	"uvdiagram/internal/core"
	"uvdiagram/internal/datagen"
	"uvdiagram/internal/viz"
)

func main() {
	const side = 2000.0 // field of view in µm
	// Cells cluster into colonies: reuse the clustered generator.
	cfg := datagen.Config{N: 120, Side: side, Diameter: 36, Seed: 11}
	objs := datagen.Skewed(cfg, side/5)

	// Fine-grained pages so the adaptive grid resolves the colonies at
	// this small scale (see quickstart).
	db, err := uvdiagram.Build(objs, uvdiagram.SquareDomain(side), &uvdiagram.Options{PageSize: 256})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d cells in %v\n\n", db.Len(), db.BuildStats().TotalDur)

	// UV-partition query: density of possible-nearest cells across the
	// central region of the slide.
	window := uvdiagram.Rect{Min: uvdiagram.Pt(side/4, side/4), Max: uvdiagram.Pt(3*side/4, 3*side/4)}
	parts := db.Partitions(window)
	sort.Slice(parts, func(i, j int) bool { return parts[i].Density > parts[j].Density })
	fmt.Printf("UV-partition query over the central window: %d partitions\n", len(parts))
	fmt.Println("densest regions (many cells compete for 'nearest'):")
	for i := 0; i < 5 && i < len(parts); i++ {
		p := parts[i]
		fmt.Printf("  %v: %d candidate cells (density %.2e/µm²)\n", p.Region, p.Count, p.Density)
	}

	// UV-cell retrieval: which cells have the largest influence areas?
	type cellArea struct {
		id   int32
		area float64
	}
	var areas []cellArea
	for _, o := range objs {
		a, err := db.CellArea(o.ID)
		if err != nil {
			log.Fatal(err)
		}
		areas = append(areas, cellArea{o.ID, a})
	}
	sort.Slice(areas, func(i, j int) bool { return areas[i].area > areas[j].area })
	fmt.Println("\ncells with the largest possible-NN areas (isolated cells):")
	for _, ca := range areas[:5] {
		o, _ := db.Object(ca.id)
		fmt.Printf("  cell %3d at (%.0f, %.0f): %.1f%% of the slide\n",
			ca.id, o.Region.C.X, o.Region.C.Y, 100*ca.area/(side*side))
	}

	// Render: regions + the exact UV-cells of the three most influential
	// cells + partition heat map.
	scene := viz.Scene{Domain: db.Domain(), Objects: objs, Partitions: db.Partitions(db.Domain())}
	for _, ca := range areas[:3] {
		region := core.NewPossibleRegion(objs[ca.id].Region.C, db.Domain())
		for j := range objs {
			if int32(j) != ca.id {
				region.AddObject(objs[ca.id], objs[j])
			}
		}
		outline := viz.OutlineRegion(region, 256)
		outline.Label = fmt.Sprintf("cell %d", ca.id)
		scene.Cells = append(scene.Cells, outline)
	}
	f, err := os.Create("microscopy.svg")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := viz.Write(f, scene); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote microscopy.svg (density heat map + top-3 UV-cells)")
}
