// Quickstart: build a UV-diagram over a handful of uncertain objects
// and ask which of them can be the nearest neighbor of a query point.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"uvdiagram"
)

func main() {
	// Seven objects in a 1000×1000 domain, like the paper's Figure 1(b):
	// each has a circular uncertainty region and a Gaussian pdf.
	coords := [][3]float64{ // x, y, radius
		{150, 780, 40}, {420, 850, 55}, {700, 760, 35},
		{250, 430, 60}, {560, 500, 45}, {820, 420, 50},
		{480, 150, 40},
	}
	objs := make([]uvdiagram.Object, len(coords))
	for i, c := range coords {
		objs[i] = uvdiagram.NewObject(int32(i), c[0], c[1], c[2], uvdiagram.GaussianPDF())
	}

	// The paper's 4 KB pages hold ~113 leaf tuples, so a 7-object toy
	// dataset would never split the adaptive grid; tiny pages force a
	// meaningful UV-partition structure at this scale.
	db, err := uvdiagram.Build(objs, uvdiagram.SquareDomain(1000), &uvdiagram.Options{PageSize: 128})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d objects in %v\n\n", db.Len(), db.BuildStats().TotalDur)

	for _, q := range []uvdiagram.Point{
		uvdiagram.Pt(300, 600), // between O0, O3 and O4
		uvdiagram.Pt(840, 400), // deep inside O5's territory
		uvdiagram.Pt(500, 480), // right at O4
	} {
		answers, stats, err := db.PNN(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("PNN at (%.0f, %.0f) — %d possible nearest neighbor(s), %v:\n",
			q.X, q.Y, len(answers), stats.Total().Round(1000))
		for _, a := range answers {
			fmt.Printf("  object %d with probability %.4f\n", a.ID, a.Prob)
		}
		fmt.Println()
	}

	// Pattern analysis: how large is each object's "possible-NN" region?
	fmt.Println("approximate UV-cell areas (fraction of the domain):")
	for i := range objs {
		area, err := db.CellArea(int32(i))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  object %d: %.1f%%\n", i, 100*area/db.Domain().Area())
	}
}
