package uvdiagram_test

import (
	"math"
	"testing"

	"uvdiagram"
	"uvdiagram/internal/rnn"
)

func TestDBRNNMatchesBruteForce(t *testing.T) {
	db, objs := buildSmallDB(t, 40, nil)
	for _, q := range []uvdiagram.Point{
		uvdiagram.Pt(1000, 1000), uvdiagram.Pt(240, 1680), uvdiagram.Pt(1820, 660),
	} {
		ids, st := db.PossibleRNN(q)
		const tol = 1.0
		for i := range objs {
			m := rnn.BruteForceMargin(objs, objs[i].ID, q, 24)
			if math.Abs(m) <= tol {
				continue
			}
			has := false
			for _, id := range ids {
				if id == objs[i].ID {
					has = true
					break
				}
			}
			if has != (m > 0) {
				t.Fatalf("q=%v object %d: margin %.3f, in answers=%v", q, i, m, has)
			}
		}
		if st.Answers != len(ids) {
			t.Fatalf("stats answers %d != %d", st.Answers, len(ids))
		}
	}
}

func TestDBRNNProbabilitiesValid(t *testing.T) {
	db, _ := buildSmallDB(t, 25, nil)
	ans, _ := db.RNN(uvdiagram.Pt(1000, 1000))
	for _, a := range ans {
		if a.Prob < 0 || a.Prob > 1 {
			t.Fatalf("answer %d probability %v outside [0,1]", a.ID, a.Prob)
		}
	}
	for i := 1; i < len(ans); i++ {
		if ans[i-1].ID >= ans[i].ID {
			t.Fatalf("answers not sorted by ID: %v", ans)
		}
	}
}
