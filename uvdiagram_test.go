package uvdiagram_test

import (
	"math"
	"math/rand"
	"testing"

	"uvdiagram"
	"uvdiagram/internal/datagen"
)

func buildSmallDB(t testing.TB, n int, opts *uvdiagram.Options) (*uvdiagram.DB, []uvdiagram.Object) {
	t.Helper()
	cfg := datagen.Config{N: n, Side: 2000, Diameter: 30, Seed: 42}
	objs := datagen.Uniform(cfg)
	db, err := uvdiagram.Build(objs, cfg.Domain(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, objs
}

func TestBuildAndQuery(t *testing.T) {
	db, objs := buildSmallDB(t, 300, nil)
	if db.Len() != 300 {
		t.Fatalf("Len = %d", db.Len())
	}
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 40; k++ {
		q := uvdiagram.Pt(rng.Float64()*2000, rng.Float64()*2000)
		answers, stats, err := db.PNN(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(answers) == 0 {
			t.Fatalf("query %v returned no answers", q)
		}
		// Probabilities sum to ~1.
		sum := 0.0
		for _, a := range answers {
			if a.Prob <= 0 || a.Prob > 1 {
				t.Fatalf("probability %v out of range", a.Prob)
			}
			sum += a.Prob
		}
		if math.Abs(sum-1) > 0.02 {
			t.Fatalf("probabilities sum to %v", sum)
		}
		// Exactly the brute-force answer set.
		want := uvdiagram.AnswerSet(objs, q)
		if len(want) != len(answers) {
			t.Fatalf("answer count %d, brute force %d", len(answers), len(want))
		}
		for i, a := range answers {
			if int(a.ID) != want[i] {
				t.Fatalf("answers %v, want ids %v", answers, want)
			}
		}
		if stats.IndexIOs < 1 || stats.Total() <= 0 {
			t.Fatal("missing query stats")
		}
	}
}

// TestUVAgainstRTreeBaseline: both retrieval paths return identical
// answers and probabilities; the UV-index must not read more leaf pages
// than the R-tree baseline on average (the Figure 6(b) effect).
func TestUVAgainstRTreeBaseline(t *testing.T) {
	db, _ := buildSmallDB(t, 600, nil)
	rng := rand.New(rand.NewSource(2))
	var uvIOs, rtIOs int64
	for k := 0; k < 50; k++ {
		q := uvdiagram.Pt(rng.Float64()*2000, rng.Float64()*2000)
		a1, s1, err := db.PNN(q)
		if err != nil {
			t.Fatal(err)
		}
		a2, s2, err := db.PNNViaRTree(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a1) != len(a2) {
			t.Fatalf("query %v: UV %d answers, R-tree %d", q, len(a1), len(a2))
		}
		for i := range a1 {
			if a1[i].ID != a2[i].ID || math.Abs(a1[i].Prob-a2[i].Prob) > 1e-9 {
				t.Fatalf("query %v: answers differ: %v vs %v", q, a1, a2)
			}
		}
		uvIOs += s1.IndexIOs
		rtIOs += s2.IndexIOs
	}
	if uvIOs >= rtIOs {
		t.Errorf("UV-index used %d leaf I/Os, R-tree %d — expected UV to win", uvIOs, rtIOs)
	}
}

func TestStrategiesProduceSameAnswers(t *testing.T) {
	cfg := datagen.Config{N: 150, Side: 2000, Diameter: 30, Seed: 7}
	objs := datagen.Uniform(cfg)
	rng := rand.New(rand.NewSource(3))
	queries := make([]uvdiagram.Point, 25)
	for i := range queries {
		queries[i] = uvdiagram.Pt(rng.Float64()*2000, rng.Float64()*2000)
	}
	var baseline [][]uvdiagram.Answer
	for _, strat := range []uvdiagram.Strategy{uvdiagram.IC, uvdiagram.ICR, uvdiagram.Basic} {
		db, err := uvdiagram.Build(objs, cfg.Domain(), &uvdiagram.Options{Strategy: strat, CellSamples: 360})
		if err != nil {
			t.Fatal(err)
		}
		var results [][]uvdiagram.Answer
		for _, q := range queries {
			a, _, err := db.PNN(q)
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, a)
		}
		if baseline == nil {
			baseline = results
			continue
		}
		for qi := range queries {
			if len(results[qi]) != len(baseline[qi]) {
				t.Fatalf("%v: query %d answer count differs", strat, qi)
			}
			for i := range results[qi] {
				if results[qi][i].ID != baseline[qi][i].ID {
					t.Fatalf("%v: query %d ids differ", strat, qi)
				}
			}
		}
	}
}

func TestPatternQueriesFacade(t *testing.T) {
	db, _ := buildSmallDB(t, 250, nil)
	parts := db.Partitions(uvdiagram.SquareDomain(500))
	if len(parts) == 0 {
		t.Fatal("no partitions")
	}
	area, err := db.CellArea(10)
	if err != nil || area <= 0 {
		t.Fatalf("CellArea = %v, %v", area, err)
	}
	if regions := db.CellRegions(10); len(regions) == 0 {
		t.Fatal("no cell regions")
	}
	if _, err := db.Object(10); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Object(9999); err == nil {
		t.Fatal("unknown object accepted")
	}
	if db.BuildStats().N != 250 {
		t.Error("build stats missing")
	}
	if db.IndexStats().Leaves == 0 {
		t.Error("index stats missing")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := uvdiagram.Build(nil, uvdiagram.SquareDomain(10), nil); err == nil {
		t.Error("empty dataset accepted")
	}
	objs := []uvdiagram.Object{uvdiagram.NewObject(0, 50, 50, 5, nil)}
	if _, err := uvdiagram.Build(objs, uvdiagram.SquareDomain(10), nil); err == nil {
		t.Error("object outside domain accepted")
	}
}

func TestMonteCarloAgreesWithIntegration(t *testing.T) {
	objs := []uvdiagram.Object{
		uvdiagram.NewObject(0, 100, 100, 20, uvdiagram.GaussianPDF()),
		uvdiagram.NewObject(1, 150, 100, 20, uvdiagram.GaussianPDF()),
		uvdiagram.NewObject(2, 120, 140, 20, uvdiagram.UniformPDF()),
	}
	q := uvdiagram.Pt(125, 115)
	ana := uvdiagram.Probabilities(objs, q)
	mc := uvdiagram.MonteCarloProbabilities(objs, q, 80000, 9)
	for i := range objs {
		if math.Abs(ana[i]-mc[i]) > 0.02 {
			t.Errorf("object %d: integration %v vs MC %v", i, ana[i], mc[i])
		}
	}
}

func TestNewObjectFromPolygon(t *testing.T) {
	o, err := uvdiagram.NewObjectFromPolygon(3,
		[]uvdiagram.Point{uvdiagram.Pt(0, 0), uvdiagram.Pt(4, 0), uvdiagram.Pt(2, 3)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.ID != 3 || o.Region.R <= 0 {
		t.Fatalf("bad object %+v", o)
	}
	if _, err := uvdiagram.NewObjectFromPolygon(0, nil, nil); err == nil {
		t.Error("empty polygon accepted")
	}
}
