package uvdiagram_test

// Concurrent-mutation property test: randomized interleaved
// Insert/Delete traffic while reader goroutines hammer the full query
// surface and a background goroutine compacts shards off-thread. No
// query may ever error or block, and once the writers quiesce the
// incrementally maintained engine must answer PNN, TopK and order-k KNN
// bitwise identically to a database freshly built over the surviving
// population. Run with -race this doubles as the memory-model check for
// the COW publication protocol (store view before tree, leaf pages
// before tombstone).

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"uvdiagram"
	"uvdiagram/internal/datagen"
)

func TestConcurrentMutationEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("shards=%d/readers=%d", shards, workers), func(t *testing.T) {
				testConcurrentMutation(t, shards, workers)
			})
		}
	}
}

func testConcurrentMutation(t *testing.T, shards, readers int) {
	n, mutations := 260, 80
	if raceEnabled {
		mutations = 40
	}
	cfg := datagen.Config{N: n, Side: 2000, Diameter: 40, Seed: int64(41 + shards + readers)}
	db, err := uvdiagram.Build(datagen.Uniform(cfg), cfg.Domain(), &uvdiagram.Options{Shards: shards, SeedK: 60})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var failed atomic.Value // first reader/compactor error
	fail := func(err error) {
		failed.CompareAndSwap(nil, err)
	}
	var wg sync.WaitGroup

	// Readers: the full query surface, continuously, lock-free.
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := uvdiagram.Pt(rng.Float64()*2000, rng.Float64()*2000)
				if _, _, err := db.PNN(q); err != nil {
					fail(fmt.Errorf("reader %d: PNN: %w", w, err))
					return
				}
				if _, _, err := db.TopKPNN(q, 3); err != nil {
					fail(fmt.Errorf("reader %d: TopKPNN: %w", w, err))
					return
				}
				if _, err := db.PossibleKNN(q, 3); err != nil {
					fail(fmt.Errorf("reader %d: PossibleKNN: %w", w, err))
					return
				}
			}
		}(w)
	}

	// Off-thread shard compaction, racing the writer and the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.CompactShard(context.Background(), rng.Intn(shards)); err != nil {
				fail(fmt.Errorf("compact: %w", err))
				return
			}
		}
	}()

	// The one writer: randomized interleaved inserts and deletes.
	rng := rand.New(rand.NewSource(7))
	live := make([]int32, n)
	for i := range live {
		live[i] = int32(i)
	}
	for i := 0; i < mutations; i++ {
		if rng.Intn(2) == 0 && len(live) > n/2 {
			k := rng.Intn(len(live))
			id := live[k]
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := db.Delete(id); err != nil {
				t.Fatal(err)
			}
		} else {
			o := uvdiagram.NewObject(db.NextID(), rng.Float64()*2000, rng.Float64()*2000, 20, nil)
			if err := db.Insert(o); err != nil {
				t.Fatal(err)
			}
			live = append(live, o.ID)
		}
	}
	close(stop)
	wg.Wait()
	if err, _ := failed.Load().(error); err != nil {
		t.Fatal(err)
	}

	// Quiescent equivalence: rebuild fresh over the survivors (dense ids,
	// mapped back) and compare the query surface bitwise.
	survivors := make([]uvdiagram.Object, 0, db.Len())
	remap := map[int32]int32{}
	for id := int32(0); id < db.NextID(); id++ {
		if !db.Alive(id) {
			continue
		}
		o, err := db.Object(id)
		if err != nil {
			t.Fatal(err)
		}
		remap[int32(len(survivors))] = id
		survivors = append(survivors, uvdiagram.Object{ID: int32(len(survivors)), Region: o.Region, PDF: o.PDF})
	}
	ref, err := uvdiagram.Build(survivors, cfg.Domain(), &uvdiagram.Options{SeedK: 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range datagen.Queries(40, 2000, 17) {
		got, _, err := db.PNN(q)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := ref.PNN(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			want[i].ID = remap[want[i].ID]
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("PNN(%v): incremental %v, fresh build %v", q, got, want)
		}
		gotK, _, err := db.TopKPNN(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		wantK, _, err := ref.TopKPNN(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantK {
			wantK[i].ID = remap[wantK[i].ID]
		}
		if fmt.Sprint(gotK) != fmt.Sprint(wantK) {
			t.Fatalf("TopKPNN(%v): incremental %v, fresh build %v", q, gotK, wantK)
		}
		gotN, err := db.PossibleKNN(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		wantN, err := ref.PossibleKNN(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		// remap is monotonic (survivors keep ascending ids), so a
		// sorted reference answer stays sorted after mapping.
		mapped := make([]int32, len(wantN))
		for i, id := range wantN {
			mapped[i] = remap[id]
		}
		if fmt.Sprint(gotN) != fmt.Sprint(mapped) {
			t.Fatalf("PossibleKNN(%v): incremental %v, fresh build %v", q, gotN, mapped)
		}
	}
}
