package uvdiagram_test

import (
	"math/rand"
	"strings"
	"testing"

	"uvdiagram"
	"uvdiagram/internal/datagen"
)

// queryPoints returns a deterministic mix of uniform and skewed
// (repeated-hotspot) points inside the domain — the skew exercises the
// leaf cache, the repeats exercise cache hits.
func queryPoints(rng *rand.Rand, side float64, n int) []uvdiagram.Point {
	qs := make([]uvdiagram.Point, 0, n)
	hot := uvdiagram.Pt(rng.Float64()*side, rng.Float64()*side)
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0: // uniform
			qs = append(qs, uvdiagram.Pt(rng.Float64()*side, rng.Float64()*side))
		case 1: // clustered around the hotspot
			qs = append(qs, uvdiagram.Pt(
				min(max(hot.X+rng.NormFloat64()*side/50, 0), side),
				min(max(hot.Y+rng.NormFloat64()*side/50, 0), side)))
		default: // exact repeat
			qs = append(qs, qs[len(qs)/2])
		}
	}
	return qs
}

func sameAnswerLists(t *testing.T, label string, got, want [][]uvdiagram.Answer) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d lists, want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: query %d: %d answers, want %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			// Bitwise equality: the batch path must run the exact same
			// computation as the sequential path.
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: query %d answer %d: %+v, want %+v", label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

func sameIDLists(t *testing.T, label string, got, want [][]int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d lists, want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: query %d: %v, want %v", label, i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: query %d: %v, want %v", label, i, got[i], want[i])
			}
		}
	}
}

// TestBatchEquivalence is the batch engine's core property: for every
// build strategy, seed and worker/cache configuration, the Batch*
// methods return results identical to N sequential single-point
// queries.
func TestBatchEquivalence(t *testing.T) {
	const side, k, tau = 2000.0, 3, 0.25
	strategies := []struct {
		name string
		s    uvdiagram.Strategy
		n    int
	}{
		{"IC", uvdiagram.IC, 60},
		{"ICR", uvdiagram.ICR, 45},
		{"Basic", uvdiagram.Basic, 30},
	}
	configs := []*uvdiagram.BatchOptions{
		nil,
		{Workers: 1},
		{Workers: 7, CacheSize: 4},
		{Workers: 3, CacheSize: 64},
	}
	for _, strat := range strategies {
		for seed := int64(1); seed <= 3; seed++ {
			cfg := datagen.Config{N: strat.n, Side: side, Diameter: 35, Seed: seed}
			db, err := uvdiagram.Build(datagen.Uniform(cfg), cfg.Domain(),
				&uvdiagram.Options{Strategy: strat.s})
			if err != nil {
				t.Fatalf("%s seed %d: %v", strat.name, seed, err)
			}
			rng := rand.New(rand.NewSource(seed * 31))
			qs := queryPoints(rng, side, 40)

			// Sequential references.
			wantNN := make([][]uvdiagram.Answer, len(qs))
			wantTop := make([][]uvdiagram.Answer, len(qs))
			wantThr := make([][]uvdiagram.Answer, len(qs))
			wantKNN := make([][]int32, len(qs))
			for i, q := range qs {
				a, _, err := db.PNN(q)
				if err != nil {
					t.Fatal(err)
				}
				wantNN[i] = a
				top, _, err := db.TopKPNN(q, k)
				if err != nil {
					t.Fatal(err)
				}
				wantTop[i] = top
				for _, ans := range a {
					if ans.Prob >= tau {
						wantThr[i] = append(wantThr[i], ans)
					}
				}
				ids, err := db.PossibleKNN(q, k)
				if err != nil {
					t.Fatal(err)
				}
				wantKNN[i] = ids
			}

			for ci, opts := range configs {
				label := strat.name
				gotNN, err := db.BatchNN(qs, opts)
				if err != nil {
					t.Fatalf("%s cfg %d: BatchNN: %v", label, ci, err)
				}
				sameAnswerLists(t, label+"/BatchNN", gotNN, wantNN)

				gotTop, err := db.BatchTopKPNN(qs, k, opts)
				if err != nil {
					t.Fatalf("%s cfg %d: BatchTopKPNN: %v", label, ci, err)
				}
				sameAnswerLists(t, label+"/BatchTopKPNN", gotTop, wantTop)

				gotThr, err := db.BatchThresholdNN(qs, tau, opts)
				if err != nil {
					t.Fatalf("%s cfg %d: BatchThresholdNN: %v", label, ci, err)
				}
				sameAnswerLists(t, label+"/BatchThresholdNN", gotThr, wantThr)

				gotKNN, err := db.BatchOrderK(qs, k, opts)
				if err != nil {
					t.Fatalf("%s cfg %d: BatchOrderK: %v", label, ci, err)
				}
				sameIDLists(t, label+"/BatchOrderK", gotKNN, wantKNN)
			}
		}
	}
}

// TestBatchEquivalenceOrderKIndex checks the grid-served order-k batch
// against sequential grid lookups.
func TestBatchEquivalenceOrderKIndex(t *testing.T) {
	const side = 2000.0
	cfg := datagen.Config{N: 50, Side: side, Diameter: 35, Seed: 9}
	db, err := uvdiagram.Build(datagen.Uniform(cfg), cfg.Domain(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := db.NewOrderKIndex(2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(123))
	qs := queryPoints(rng, side, 30)
	want := make([][]int32, len(qs))
	for i, q := range qs {
		ids, _, err := ix.PossibleKNN(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ids
	}
	for _, opts := range []*uvdiagram.BatchOptions{nil, {Workers: 4, CacheSize: 16}} {
		got, err := ix.BatchPossibleKNN(qs, opts)
		if err != nil {
			t.Fatal(err)
		}
		sameIDLists(t, "OrderKIndex.BatchPossibleKNN", got, want)
	}
}

// TestBatchEquivalenceAfterInsert checks that the leaf caches are
// invalidated by Insert: batch answers must track the mutated database,
// not the cached pre-insert pages.
func TestBatchEquivalenceAfterInsert(t *testing.T) {
	const side = 2000.0
	cfg := datagen.Config{N: 40, Side: side, Diameter: 35, Seed: 5}
	db, err := uvdiagram.Build(datagen.Uniform(cfg), cfg.Domain(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	qs := queryPoints(rng, side, 24)
	opts := &uvdiagram.BatchOptions{Workers: 4, CacheSize: 32}

	// Warm the caches.
	if _, err := db.BatchNN(qs, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := db.BatchOrderK(qs, 2, opts); err != nil {
		t.Fatal(err)
	}

	// Mutate: a new object right where queries are answered.
	if err := db.Insert(uvdiagram.NewObject(int32(db.Len()), qs[0].X, qs[0].Y, 20, nil)); err != nil {
		t.Fatal(err)
	}

	gotNN, err := db.BatchNN(qs, opts)
	if err != nil {
		t.Fatal(err)
	}
	gotKNN, err := db.BatchOrderK(qs, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want, _, err := db.PNN(q)
		if err != nil {
			t.Fatal(err)
		}
		sameAnswerLists(t, "post-insert BatchNN", [][]uvdiagram.Answer{gotNN[i]}, [][]uvdiagram.Answer{want})
		wantIDs, err := db.PossibleKNN(q, 2)
		if err != nil {
			t.Fatal(err)
		}
		sameIDLists(t, "post-insert BatchOrderK", [][]int32{gotKNN[i]}, [][]int32{wantIDs})
	}
}

// TestTopKDegenerateK: k ≤ 0 must yield empty results, not a panic —
// the wire path decodes k as u32, so hostile values must stay safe on
// every build.
func TestTopKDegenerateK(t *testing.T) {
	cfg := datagen.Config{N: 30, Side: 2000, Diameter: 35, Seed: 8}
	db, err := uvdiagram.Build(datagen.Uniform(cfg), cfg.Domain(), nil)
	if err != nil {
		t.Fatal(err)
	}
	qs := []uvdiagram.Point{uvdiagram.Pt(500, 500), uvdiagram.Pt(1500, 900)}
	for _, k := range []int{-1, 0} {
		lists, err := db.BatchTopKPNN(qs, k, &uvdiagram.BatchOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i, l := range lists {
			if len(l) != 0 {
				t.Fatalf("k=%d query %d: %v, want empty", k, i, l)
			}
		}
		seq, _, err := db.TopKPNN(qs[0], k)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != 0 {
			t.Fatalf("sequential TopKPNN k=%d: %v, want empty", k, seq)
		}
	}
}

// TestBatchErrorNamesQuery: a failing point fails the whole batch with
// an error identifying the query, and no partial results leak.
func TestBatchErrorNamesQuery(t *testing.T) {
	cfg := datagen.Config{N: 30, Side: 2000, Diameter: 35, Seed: 2}
	db, err := uvdiagram.Build(datagen.Uniform(cfg), cfg.Domain(), nil)
	if err != nil {
		t.Fatal(err)
	}
	qs := []uvdiagram.Point{
		uvdiagram.Pt(100, 100),
		uvdiagram.Pt(-5, 40), // outside the domain
		uvdiagram.Pt(200, 200),
	}
	for _, opts := range []*uvdiagram.BatchOptions{{Workers: 1}, {Workers: 4}} {
		got, err := db.BatchNN(qs, opts)
		if err == nil {
			t.Fatal("out-of-domain point accepted")
		}
		if !strings.Contains(err.Error(), "query 1") {
			t.Fatalf("error does not name the failing query: %v", err)
		}
		if got != nil {
			t.Fatalf("partial results returned alongside error: %v", got)
		}
	}
}
