package uvdiagram

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"uvdiagram/internal/datagen"
)

// maintTestOptions is the deterministic controller configuration the
// hysteresis tests drive by hand: the background loop idles (hour-long
// interval) and every decision comes from an explicit Tick with an
// injected clock.
func maintTestOptions() MaintainOptions {
	return MaintainOptions{
		Interval:     time.Hour,
		HighWater:    2.0,
		LowWater:     1.5,
		SustainTicks: 3,
		MinInterval:  time.Minute,
	}
}

func buildMaintDB(t *testing.T) (*DB, datagen.Config) {
	t.Helper()
	cfg := datagen.Config{N: 80, Side: 2000, Diameter: 40, Seed: 97}
	db, err := Build(datagen.Uniform(cfg), cfg.Domain(), &Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	return db, cfg
}

// addCluster inserts k objects in a tight box around (fx, fy) of the
// domain (fractions of the side), returning their ids. A tight cluster
// lands in one shard and spikes LoadImbalance.
func addCluster(t *testing.T, db *DB, cfg datagen.Config, k int, fx, fy float64) []int32 {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	ids := make([]int32, 0, k)
	for j := 0; j < k; j++ {
		x := (fx + 0.01*rng.Float64()) * cfg.Side
		y := (fy + 0.01*rng.Float64()) * cfg.Side
		id := db.NextID()
		if err := db.Insert(NewObject(id, x, y, cfg.Diameter/2, nil)); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return ids
}

func removeCluster(t *testing.T, db *DB, ids []int32) {
	t.Helper()
	for _, id := range ids {
		if err := db.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMaintainOptionsValidate rejects configurations that cannot
// implement hysteresis.
func TestMaintainOptionsValidate(t *testing.T) {
	db, _ := buildMaintDB(t)
	for _, opts := range []MaintainOptions{
		{LowWater: 0.5, HighWater: 2},   // imbalance is never below 1
		{LowWater: 1.5, HighWater: 1.5}, // empty band
		{LowWater: 1.5, HighWater: 1.2}, // inverted band
	} {
		if _, err := db.StartMaintainer(opts); err == nil {
			t.Fatalf("StartMaintainer(%+v) accepted an invalid hysteresis band", opts)
		}
	}
	if db.Maintainer() != nil {
		t.Fatal("failed StartMaintainer left a maintainer attached")
	}
}

// TestMaintainerSingleAttach proves the at-most-one-controller contract
// and that Stop detaches cleanly for a successor.
func TestMaintainerSingleAttach(t *testing.T) {
	db, _ := buildMaintDB(t)
	m, err := db.StartMaintainer(maintTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if db.Maintainer() != m {
		t.Fatal("Maintainer() does not return the attached controller")
	}
	if _, err := db.StartMaintainer(maintTestOptions()); err == nil {
		t.Fatal("second StartMaintainer succeeded with one already attached")
	}
	m.Stop()
	m.Stop() // idempotent
	if db.Maintainer() != nil {
		t.Fatal("Stop left the controller attached")
	}
	m2, err := db.StartMaintainer(maintTestOptions())
	if err != nil {
		t.Fatalf("restart after Stop: %v", err)
	}
	m2.Stop()
}

// TestMaintainerHysteresisOscillation is the bounded-reshard property:
// skew that spikes above the high watermark but keeps dipping below the
// low watermark before sustaining never accumulates enough pressure to
// fire — an oscillating workload cannot make the controller thrash.
func TestMaintainerHysteresisOscillation(t *testing.T) {
	db, cfg := buildMaintDB(t)
	opts := maintTestOptions()
	m, err := db.StartMaintainer(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	now := time.Unix(1000, 0)
	m.now = func() time.Time { return now }

	if imb := db.LoadImbalance(); imb > opts.LowWater {
		t.Fatalf("uniform base imbalance %.2f above the low watermark %.2f; retune the fixture", imb, opts.LowWater)
	}
	for round := 0; round < 5; round++ {
		ids := addCluster(t, db, cfg, 3*cfg.N, 0.70, 0.70)
		if imb := db.LoadImbalance(); imb < opts.HighWater {
			t.Fatalf("round %d: clustered imbalance %.2f below the high watermark %.2f", round, imb, opts.HighWater)
		}
		// One tick short of SustainTicks, then the skew collapses.
		for k := 0; k < opts.SustainTicks-1; k++ {
			m.Tick()
		}
		removeCluster(t, db, ids)
		m.Tick() // at or below LowWater: pressure resets
		if st := m.Stats(); st.Pressure != 0 {
			t.Fatalf("round %d: pressure %d after dip below the low watermark, want 0", round, st.Pressure)
		}
	}
	if st := m.Stats(); st.Reshards != 0 {
		t.Fatalf("oscillating skew fired %d reshards, want 0", st.Reshards)
	}
}

// TestMaintainerHysteresisSustained is the convergence property:
// sustained skew fires exactly one reshard once the pressure window
// fills, the reshard brings imbalance below the low watermark, and the
// cooldown blocks a re-fire until the injected clock passes it.
func TestMaintainerHysteresisSustained(t *testing.T) {
	db, cfg := buildMaintDB(t)
	opts := maintTestOptions()
	m, err := db.StartMaintainer(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	now := time.Unix(1000, 0)
	m.now = func() time.Time { return now }

	addCluster(t, db, cfg, 3*cfg.N, 0.70, 0.70)
	for k := 0; k < opts.SustainTicks; k++ {
		if st := m.Stats(); st.Reshards != 0 {
			t.Fatalf("reshard fired after %d ticks, before the sustain window filled", k)
		}
		m.Tick()
	}
	st := m.Stats()
	if st.Reshards != 1 {
		t.Fatalf("sustained skew fired %d reshards, want exactly 1", st.Reshards)
	}
	if imb := db.LoadImbalance(); imb > opts.LowWater {
		t.Fatalf("post-reshard imbalance %.2f above the low watermark %.2f: no convergence", imb, opts.LowWater)
	}
	if st.Pressure != 0 {
		t.Fatalf("pressure %d after a successful reshard, want 0", st.Pressure)
	}

	// Balanced ticks stay quiet.
	for k := 0; k < 3; k++ {
		m.Tick()
	}
	if st := m.Stats(); st.Reshards != 1 {
		t.Fatalf("balanced ticks fired %d extra reshards", st.Reshards-1)
	}

	// New sustained skew inside the cooldown: pressure fills but the
	// reshard is held until the clock passes MinInterval.
	addCluster(t, db, cfg, 4*cfg.N, 0.05, 0.05)
	for k := 0; k < opts.SustainTicks+2; k++ {
		m.Tick()
	}
	st = m.Stats()
	if st.Reshards != 1 {
		t.Fatalf("reshard fired inside the cooldown (%d total)", st.Reshards)
	}
	if st.CooldownSkips == 0 {
		t.Fatal("cooldown held no tick despite sustained pressure")
	}
	now = now.Add(opts.MinInterval + time.Second)
	m.Tick()
	if st := m.Stats(); st.Reshards != 2 {
		t.Fatalf("reshard did not fire after the cooldown expired (%d total)", st.Reshards)
	}
}

// TestMaintainEvents verifies the observer feed: every maintenance
// path fires a typed event with its kind, shard and imbalance bracket.
func TestMaintainEvents(t *testing.T) {
	db, cfg := buildMaintDB(t)
	var mu sync.Mutex
	var events []MaintEvent
	db.OnMaintenance(func(ev MaintEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	take := func() []MaintEvent {
		mu.Lock()
		defer mu.Unlock()
		out := events
		events = nil
		return out
	}

	if err := db.CompactShard(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	evs := take()
	if len(evs) != 1 || evs[0].Kind != MaintCompactShard || evs[0].Shard != 2 {
		t.Fatalf("CompactShard events = %+v, want one compact-shard on shard 2", evs)
	}

	addCluster(t, db, cfg, 2*cfg.N, 0.70, 0.70)
	before := db.LoadImbalance()
	if err := db.Reshard(context.Background()); err != nil {
		t.Fatal(err)
	}
	evs = take()
	if len(evs) != 1 || evs[0].Kind != MaintReshard || evs[0].Shard != -1 {
		t.Fatalf("Reshard events = %+v, want one reshard", evs)
	}
	if evs[0].ImbalanceBefore != before || evs[0].ImbalanceAfter >= before {
		t.Fatalf("reshard event imbalance bracket %.2f -> %.2f, want before=%.2f and a drop",
			evs[0].ImbalanceBefore, evs[0].ImbalanceAfter, before)
	}

	db.OnMaintenance(nil)
	if err := db.CompactShard(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if evs := take(); len(evs) != 0 {
		t.Fatalf("unregistered observer still received %d events", len(evs))
	}
}

// TestDomainErrorsTyped verifies the typed out-of-domain contract of
// the session paths: NewContinuousPNN, Move and AdvanceAll all fail an
// out-of-domain position with a *DomainError matching ErrOutOfDomain,
// and AdvanceAll reports it per session without touching the others.
func TestDomainErrorsTyped(t *testing.T) {
	db, cfg := buildMaintDB(t)
	out := Pt(-cfg.Side, cfg.Side/2)

	if _, err := db.NewContinuousPNN(out); !errors.Is(err, ErrOutOfDomain) {
		t.Fatalf("NewContinuousPNN out of domain: err = %v, want ErrOutOfDomain", err)
	}
	var de *DomainError
	_, err := db.NewContinuousPNN(out)
	if !errors.As(err, &de) || de.Point != out || de.Domain != db.Domain() {
		t.Fatalf("NewContinuousPNN error %v does not carry the point and domain", err)
	}

	in := Pt(cfg.Side/2, cfg.Side/2)
	sess, err := db.NewContinuousPNN(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Move(out); !errors.Is(err, ErrOutOfDomain) {
		t.Fatalf("Move out of domain: err = %v, want ErrOutOfDomain", err)
	}
	if got := sess.Position(); got != in {
		t.Fatalf("failed Move changed the session position to %v, want %v", got, in)
	}

	other, err := db.NewContinuousPNN(in)
	if err != nil {
		t.Fatal(err)
	}
	qs := []Point{out, Pt(cfg.Side/4, cfg.Side/4)}
	_, errs := db.AdvanceAll([]*ContinuousPNN{sess, other}, qs, nil)
	if !errors.Is(errs[0], ErrOutOfDomain) {
		t.Fatalf("AdvanceAll session 0: err = %v, want ErrOutOfDomain", errs[0])
	}
	if errs[1] != nil {
		t.Fatalf("AdvanceAll session 1 (in domain) failed: %v", errs[1])
	}
	if got := other.Position(); got != qs[1] {
		t.Fatalf("in-domain session did not advance: at %v, want %v", got, qs[1])
	}
	if got := sess.Position(); got != in {
		t.Fatalf("out-of-domain session moved to %v, want unchanged %v", got, in)
	}
}

// TestAutoCompactReshardRace hammers the background-compaction /
// Reshard interleaving the singleflight fix targets: watermark-armed
// shard compactions race layout swaps while a mutator churns. The
// compacting flags must always release (re-armability), and the final
// answers must match a fresh build of the same objects bit for bit.
func TestAutoCompactReshardRace(t *testing.T) {
	cfg := datagen.Config{N: 200, Side: 2000, Diameter: 40, Seed: 7}
	db, err := Build(datagen.Uniform(cfg), cfg.Domain(),
		&Options{Shards: 4, CompactSlack: 16})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // layout-swap storm
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.Reshard(context.Background()); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 150; i++ { // churn keeps arming auto-compactions
		id := int32(rng.Intn(int(db.NextID())))
		if db.Alive(id) {
			if err := db.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
		o := NewObject(db.NextID(), rng.Float64()*cfg.Side, rng.Float64()*cfg.Side, cfg.Diameter/2, nil)
		if err := db.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// Re-armability: the storm must not strand a compacting flag. A
	// fresh clustered burst pushes ONE shard's slack over the per-shard
	// watermark and the background compaction must clear it.
	for i := 0; i < 40; i++ {
		o := NewObject(db.NextID(),
			(0.70+0.01*rng.Float64())*cfg.Side, (0.70+0.01*rng.Float64())*cfg.Side,
			cfg.Diameter/2, nil)
		if err := db.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	maxSlack := func() int64 {
		var m int64
		for _, st := range db.ShardStats() {
			m = max(m, st.Slack)
		}
		return m
	}
	deadline := time.Now().Add(30 * time.Second)
	for maxSlack() >= 16 {
		if time.Now().After(deadline) {
			t.Fatalf("auto-compaction never cleared per-shard slack %d: compacting flag stranded", maxSlack())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Answers must equal a clean single-shard build of the same state.
	objs := make([]Object, 0, db.Len())
	for id := int32(0); id < db.NextID(); id++ {
		if o, err := db.Object(id); err == nil {
			objs = append(objs, o)
		}
	}
	ref, err := Build(reID(objs), db.Domain(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		q := Pt(rng.Float64()*cfg.Side, rng.Float64()*cfg.Side)
		got, _, err := db.PNN(q)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := ref.PNN(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %v: %d answers vs reference %d", q, len(got), len(want))
		}
	}
}

// reID renumbers surviving objects densely so they can seed a fresh
// reference Build (which requires ids 0..n-1).
func reID(objs []Object) []Object {
	out := make([]Object, len(objs))
	for i, o := range objs {
		o.ID = int32(i)
		out[i] = o
	}
	return out
}

// BenchmarkMaintainTick is the cost of one idle controller tick — a
// LoadImbalance sample plus the slack sweep on a balanced database
// (the steady-state overhead a deployment pays every Interval).
func BenchmarkMaintainTick(b *testing.B) {
	cfg := datagen.Config{N: 400, Side: 2000, Diameter: 40, Seed: 97}
	db, err := Build(datagen.Uniform(cfg), cfg.Domain(), &Options{Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	m, err := db.StartMaintainer(maintTestOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer m.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Tick()
	}
}
