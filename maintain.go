package uvdiagram

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Self-driving maintenance. The engine has every maintenance primitive
// its dynamic setting needs — watermark-armed per-shard compaction,
// online Reshard, CompactAll — but they fire only when something calls
// them. The Maintainer closes the loop: a single background goroutine
// samples LoadImbalance and per-shard slack on a ticker and calls
// Reshard itself when skew persists, with two-threshold hysteresis, a
// sustain window, a cooldown and exponential backoff so churny
// workloads can never make it thrash. A server holding thousands of
// live moving-query subscriptions cannot pause for an operator; this is
// the operator.
//
// The control law, per tick:
//
//   - Sample imbalance = LoadImbalance() (max/mean of per-shard live
//     counts; 1.0 is perfectly even).
//   - imbalance ≥ HighWater: pressure++ — skew must SUSTAIN for
//     SustainTicks consecutive-ish ticks before anything fires.
//   - imbalance ≤ LowWater: pressure and backoff reset — the system is
//     balanced, disarm entirely.
//   - In between (the hysteresis band): pressure HOLDS. An oscillating
//     workload that keeps dipping into the band neither accumulates
//     pressure toward a spurious reshard nor discards evidence of real
//     sustained skew.
//   - pressure ≥ SustainTicks and the cooldown has expired and no
//     background shard compaction is in flight (a layout swap would
//     retire the epochs those builds are about to publish): run
//     Reshard. Success resets pressure and starts the MinInterval
//     cooldown; failure backs off exponentially up to MaxBackoff.
//
// Each tick also re-runs the CompactSlack watermark check, so slack
// stranded by a skipped background compaction (e.g. a layout swap won
// the race) is re-armed even after writes stop.

// Maintenance event kinds (MaintEvent.Kind).
const (
	// MaintReshard is a full layout re-cut (Reshard/ReshardWith);
	// ImbalanceBefore/After are populated.
	MaintReshard = "reshard"
	// MaintCompact is a full re-derivation rebuild (Compact/Rebuild).
	MaintCompact = "compact"
	// MaintCompactShard is one shard's shadow rebuild (CompactShard,
	// CompactAll, or the background auto-compaction watermark); Shard is
	// the shard index.
	MaintCompactShard = "compact-shard"
)

// MaintEvent describes one completed maintenance action, fired
// synchronously from the maintenance paths to the observer registered
// with DB.OnMaintenance — the feed behind the server's maint.* metrics.
type MaintEvent struct {
	// Kind is MaintReshard, MaintCompact or MaintCompactShard.
	Kind string
	// Shard is the shard index for MaintCompactShard, -1 otherwise.
	Shard int
	// Dur is the action's wall clock.
	Dur time.Duration
	// ImbalanceBefore/After bracket a MaintReshard (equal on failure;
	// zero for other kinds).
	ImbalanceBefore, ImbalanceAfter float64
	// Err is nil on success.
	Err error
}

// OnMaintenance registers fn as the observer of completed maintenance
// events (nil unregisters). One observer is held; a second call
// replaces the first. fn is called synchronously from inside the
// maintenance paths — some while engine locks are held — so it must be
// fast and must not call back into the DB's mutation or maintenance
// methods.
func (db *DB) OnMaintenance(fn func(MaintEvent)) {
	if fn == nil {
		db.maintObs.Store(nil)
		return
	}
	db.maintObs.Store(&fn)
}

// fireMaint delivers ev to the registered observer, if any.
func (db *DB) fireMaint(ev MaintEvent) {
	if obs := db.maintObs.Load(); obs != nil {
		(*obs)(ev)
	}
}

// MaintainOptions tune the self-driving maintenance controller. The
// zero value of every field selects the listed default, so
// &MaintainOptions{} is a fully autonomous configuration.
type MaintainOptions struct {
	// Interval is the sampling tick period (default 2s).
	Interval time.Duration
	// HighWater arms the controller: LoadImbalance must reach it for
	// SustainTicks ticks before a reshard may fire (default 1.6, must
	// exceed LowWater).
	HighWater float64
	// LowWater disarms the controller: imbalance at or below it resets
	// the sustain pressure and the failure backoff (default 1.25, must
	// be ≥ 1).
	LowWater float64
	// SustainTicks is how many high-water ticks must accumulate —
	// without an intervening dip below LowWater — before a reshard fires
	// (default 3).
	SustainTicks int
	// MinInterval is the cooldown after a successful reshard; no
	// controller-initiated reshard runs sooner (default 30s).
	MinInterval time.Duration
	// MaxBackoff caps the exponential backoff applied after failed
	// reshards (default 8 × MinInterval).
	MaxBackoff time.Duration
}

// withDefaults fills zero fields with the documented defaults.
func (o MaintainOptions) withDefaults() MaintainOptions {
	if o.Interval <= 0 {
		o.Interval = 2 * time.Second
	}
	if o.HighWater == 0 {
		o.HighWater = 1.6
	}
	if o.LowWater == 0 {
		o.LowWater = 1.25
	}
	if o.SustainTicks <= 0 {
		o.SustainTicks = 3
	}
	if o.MinInterval <= 0 {
		o.MinInterval = 30 * time.Second
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 8 * o.MinInterval
	}
	return o
}

// validate rejects a configuration whose thresholds cannot implement
// hysteresis.
func (o MaintainOptions) validate() error {
	if o.LowWater < 1 {
		return fmt.Errorf("uvdiagram: maintain LowWater %.3g < 1 (imbalance is never below 1)", o.LowWater)
	}
	if o.HighWater <= o.LowWater {
		return fmt.Errorf("uvdiagram: maintain HighWater %.3g must exceed LowWater %.3g (hysteresis band)",
			o.HighWater, o.LowWater)
	}
	return nil
}

// MaintainerStats is a snapshot of the controller's counters.
type MaintainerStats struct {
	// Ticks counts sampling passes.
	Ticks uint64
	// Reshards counts successful controller-initiated reshards.
	Reshards uint64
	// ReshardFailures counts failed or cancelled ones.
	ReshardFailures uint64
	// CompactArms counts background shard compactions the controller's
	// slack sweep armed.
	CompactArms uint64
	// Deferrals counts reshard attempts postponed because a background
	// shard compaction was in flight.
	Deferrals uint64
	// CooldownSkips counts ticks where sustained pressure wanted a
	// reshard but the cooldown (or backoff) window had not expired.
	CooldownSkips uint64
	// VacuumedBytes is the cumulative storage reclaimed by the per-tick
	// pager vacuum (heap buffers released to the GC, dead mmap extents
	// advised out of the page cache).
	VacuumedBytes int64
	// Pressure is the current sustain counter (ticks at or above
	// HighWater since the last dip below LowWater or the last reshard).
	Pressure int
	// LastImbalance is the imbalance sampled by the most recent tick.
	LastImbalance float64
	// Backoff is the currently applied failure backoff (0 when healthy).
	Backoff time.Duration
}

// Maintainer is the self-driving maintenance controller of one DB. At
// most one is attached to a DB at a time (StartMaintainer enforces it);
// Stop detaches it, after which a fresh one may be started.
type Maintainer struct {
	db   *DB
	opts MaintainOptions
	// now is the tick clock, swappable by tests for deterministic
	// cooldown arithmetic.
	now func() time.Time

	ctx     context.Context
	cancel  context.CancelFunc
	stopped chan struct{} // closed when the loop exits

	// mu serializes ticks (the background loop and manual Tick calls)
	// and guards the controller state below.
	mu          sync.Mutex
	st          MaintainerStats
	nextAllowed time.Time
}

// StartMaintainer attaches a self-driving maintenance controller to the
// database and starts its background sampling loop. It fails if the
// options are invalid or a maintainer is already attached. Stop the
// returned Maintainer to detach it. Databases built with
// Options.Maintain get one started automatically.
func (db *DB) StartMaintainer(opts MaintainOptions) (*Maintainer, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Maintainer{
		db:      db,
		opts:    opts,
		now:     time.Now,
		ctx:     ctx,
		cancel:  cancel,
		stopped: make(chan struct{}),
	}
	if !db.maint.CompareAndSwap(nil, m) {
		cancel()
		return nil, fmt.Errorf("uvdiagram: a maintainer is already attached (Stop it first)")
	}
	go m.loop()
	return m, nil
}

// Maintainer returns the currently attached controller, nil if none.
func (db *DB) Maintainer() *Maintainer { return db.maint.Load() }

// Stop halts the background loop, cancels any reshard it has in flight
// (best-effort: the shadow build itself is uninterruptible) and
// detaches the controller from the DB. It blocks until the loop has
// exited and is idempotent.
func (m *Maintainer) Stop() {
	m.cancel()
	<-m.stopped
	m.db.maint.CompareAndSwap(m, nil)
}

// Options returns the controller's effective (default-filled) options.
func (m *Maintainer) Options() MaintainOptions { return m.opts }

// Stats snapshots the controller's counters.
func (m *Maintainer) Stats() MaintainerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.st
}

// loop is the background sampler.
func (m *Maintainer) loop() {
	defer close(m.stopped)
	t := time.NewTicker(m.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-m.ctx.Done():
			return
		case <-t.C:
			m.Tick()
		}
	}
}

// Tick runs one sampling/decision pass of the control law synchronously
// (the background loop calls it every Interval; tests and the perf gate
// call it directly). Concurrent ticks serialize; a tick that decides to
// reshard returns only when the reshard has finished.
func (m *Maintainer) Tick() {
	m.mu.Lock()
	defer m.mu.Unlock()
	db := m.db
	m.st.Ticks++
	imb := db.LoadImbalance()
	m.st.LastImbalance = imb

	// Slack sweep: re-arm background compaction for shards stuck above
	// the watermark. The mutation paths arm at write time; this closes
	// the gap for slack stranded when writes stop or an arming race was
	// lost to a layout swap.
	m.st.CompactArms += uint64(db.maybeCompact())

	// Storage sweep: release what the COW retire paths have freed since
	// the last tick — heap page buffers for the GC, dead extents of an
	// mmap-backed snapshot for the kernel. The frees themselves already
	// waited out the epoch grace period, so this is pure reclamation.
	m.st.VacuumedBytes += db.Vacuum()

	switch {
	case imb >= m.opts.HighWater:
		m.st.Pressure++
	case imb <= m.opts.LowWater:
		m.st.Pressure = 0
		m.st.Backoff = 0
		// Between the watermarks pressure holds: neither accumulating
		// toward a spurious reshard nor forgetting sustained skew.
	}
	if m.st.Pressure < m.opts.SustainTicks {
		return
	}
	now := m.now()
	if now.Before(m.nextAllowed) {
		m.st.CooldownSkips++
		return
	}
	if db.lo().anyCompacting() {
		// An in-flight background shard compaction is about to publish
		// an epoch into the current layout; a reshard now would retire
		// it unseen. Pressure holds, so the reshard fires on the next
		// clear tick.
		m.st.Deferrals++
		return
	}
	if err := db.Reshard(m.ctx); err != nil {
		m.st.ReshardFailures++
		if m.st.Backoff <= 0 {
			m.st.Backoff = m.opts.MinInterval
		} else if m.st.Backoff < m.opts.MaxBackoff {
			m.st.Backoff *= 2
			if m.st.Backoff > m.opts.MaxBackoff {
				m.st.Backoff = m.opts.MaxBackoff
			}
		}
		m.nextAllowed = m.now().Add(m.st.Backoff)
		return
	}
	m.st.Reshards++
	m.st.Backoff = 0
	m.st.Pressure = 0 // skew must re-sustain before the next one
	m.nextAllowed = m.now().Add(m.opts.MinInterval)
}
