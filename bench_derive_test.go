package uvdiagram_test

// Benchmarks of the output-sensitive derivation fast path and the
// allocation-free batched query hot path, with allocation reporting —
// the CI perf smoke stage runs BenchmarkDeriveCRSets against the
// committed ns/op baseline (perf_baseline.json; see
// TestDerivePerfSmoke). `uvbench -exp derive` produces the full
// before/after table in BENCH_derive.json.

import (
	"sync"
	"testing"

	"uvdiagram"
	"uvdiagram/internal/core"
	"uvdiagram/internal/datagen"
	"uvdiagram/internal/pager"
	"uvdiagram/internal/rtree"
	"uvdiagram/internal/uncertain"
)

type deriveFixture struct {
	cfg   datagen.Config
	store *uncertain.Store
	tree  *rtree.Tree
	opts  core.BuildOptions
}

var (
	deriveFixMu sync.Mutex
	deriveFixes = map[int]*deriveFixture{}
)

func getDeriveFixture(tb testing.TB, n int) *deriveFixture {
	tb.Helper()
	deriveFixMu.Lock()
	defer deriveFixMu.Unlock()
	if f, ok := deriveFixes[n]; ok {
		return f
	}
	cfg := datagen.Config{N: n, Side: benchSide, Diameter: datagen.DefaultDiameter, Seed: 7}
	objs := datagen.Uniform(cfg)
	store, err := uncertain.NewStore(objs, pager.New(uncertain.ObjectPageBytes))
	if err != nil {
		tb.Fatal(err)
	}
	opts := core.DefaultBuildOptions()
	f := &deriveFixture{cfg: cfg, store: store, tree: core.BuildHelperRTree(store, opts.Fanout), opts: opts}
	deriveFixes[n] = f
	return f
}

// BenchmarkDeriveCRSets is the whole-population derivation pass (the
// phase dominating Build/Compact/Reshard) on the fast path. The CI perf
// smoke compares its ns/op against perf_baseline.json.
func BenchmarkDeriveCRSets(b *testing.B) {
	f := getDeriveFixture(b, 800)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.DeriveCRSets(f.store, f.cfg.Domain(), f.tree, f.opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeriveCRSetsReference is the retained naive derivation —
// the before side of the before/after table.
func BenchmarkDeriveCRSetsReference(b *testing.B) {
	f := getDeriveFixture(b, 800)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DeriveCRSetsReference(f.store, f.cfg.Domain(), f.tree, f.opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeriveOne derives single objects with a long-lived scratch —
// the Insert/Delete re-derivation unit; allocs/op here is the retained
// cr-set plus R-tree leaf decodes, nothing else.
func BenchmarkDeriveOne(b *testing.B) {
	f := getDeriveFixture(b, 800)
	dense := f.store.Dense()
	sc := core.NewDeriveScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.DeriveCR(f.tree, dense[i%len(dense)], dense, f.cfg.Domain(),
			f.opts.SeedK, f.opts.SeedSectors, f.opts.RegionSamples, sc)
	}
}

// BenchmarkBatchPNN measures the scratch-pooled batched PNN hot path
// (leaf caches warm); allocs/op divided by the batch size is the
// per-query allocation count the acceptance bar bounds.
func BenchmarkBatchPNN(b *testing.B) {
	f := getFixture(b, 4000, datagen.DefaultDiameter)
	qs := f.queries
	opts := &uvdiagram.BatchOptions{CacheSize: 256}
	if _, err := f.db.BatchNN(qs, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.db.BatchNN(qs, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(qs)), "queries/op")
}
