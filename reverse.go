package uvdiagram

import (
	"uvdiagram/internal/rnn"
)

// RNNAnswer is one probabilistic reverse nearest-neighbor result: the
// object ID and the probability that the query point is that object's
// nearest neighbor.
type RNNAnswer = rnn.Answer

// RNNStats reports the work done by one RNN query: the candidate
// cutoff radius D₂, and the candidate/pool/answer counts.
type RNNStats = rnn.Stats

// RNN answers the probabilistic reverse nearest-neighbor query at q —
// the query type the paper's conclusion lists as future work. It
// returns every object with non-zero probability that q is its nearest
// neighbor, with those probabilities, sorted by ID.
//
// Candidates are collected with the second-minimum cutoff lemma (see
// package rnn) through the helper R-tree, then verified exactly against
// the query point's possible region.
func (db *DB) RNN(q Point) ([]RNNAnswer, RNNStats) {
	t := db.egc.Pin()
	defer db.egc.Unpin(t)
	// One store view serves both the dense array and the liveness
	// filter, captured before the tree so a concurrent delete can never
	// present a tree candidate the view calls dead-but-listed.
	view := db.store.View()
	return rnn.Query(view.Dense(), db.rtree(), q, rnn.Options{Alive: view.Alive})
}

// PossibleRNN returns only the IDs of the probabilistic reverse
// nearest-neighbor answers at q, skipping probability integration.
func (db *DB) PossibleRNN(q Point) ([]int32, RNNStats) {
	t := db.egc.Pin()
	defer db.egc.Unpin(t)
	view := db.store.View()
	return rnn.PossibleRNN(view.Dense(), db.rtree(), q, rnn.Options{Alive: view.Alive})
}

// PossibleRNNUncertain answers the reverse nearest-neighbor query with
// an UNCERTAIN query region (the reverse counterpart of the
// uncertain-query NN setting of [29]): the IDs of every object with
// non-zero probability that the query's true position is its nearest
// neighbor. A zero radius reproduces PossibleRNN.
func (db *DB) PossibleRNNUncertain(region Circle) ([]int32, RNNStats) {
	t := db.egc.Pin()
	defer db.egc.Unpin(t)
	view := db.store.View()
	return rnn.PossibleRNNUncertain(view.Dense(), db.rtree(), region, rnn.Options{Alive: view.Alive})
}
