package uvdiagram

import (
	"uvdiagram/internal/rnn"
)

// RNNAnswer is one probabilistic reverse nearest-neighbor result: the
// object ID and the probability that the query point is that object's
// nearest neighbor.
type RNNAnswer = rnn.Answer

// RNNStats reports the work done by one RNN query: the candidate
// cutoff radius D₂, and the candidate/pool/answer counts.
type RNNStats = rnn.Stats

// RNN answers the probabilistic reverse nearest-neighbor query at q —
// the query type the paper's conclusion lists as future work. It
// returns every object with non-zero probability that q is its nearest
// neighbor, with those probabilities, sorted by ID.
//
// Candidates are collected with the second-minimum cutoff lemma (see
// package rnn) through the helper R-tree, then verified exactly against
// the query point's possible region.
func (db *DB) RNN(q Point) ([]RNNAnswer, RNNStats) {
	return rnn.Query(db.store.Dense(), db.rtree(), q, rnn.Options{Alive: db.store.Alive})
}

// PossibleRNN returns only the IDs of the probabilistic reverse
// nearest-neighbor answers at q, skipping probability integration.
func (db *DB) PossibleRNN(q Point) ([]int32, RNNStats) {
	return rnn.PossibleRNN(db.store.Dense(), db.rtree(), q, rnn.Options{Alive: db.store.Alive})
}

// PossibleRNNUncertain answers the reverse nearest-neighbor query with
// an UNCERTAIN query region (the reverse counterpart of the
// uncertain-query NN setting of [29]): the IDs of every object with
// non-zero probability that the query's true position is its nearest
// neighbor. A zero radius reproduces PossibleRNN.
func (db *DB) PossibleRNNUncertain(region Circle) ([]int32, RNNStats) {
	return rnn.PossibleRNNUncertain(db.store.Dense(), db.rtree(), region, rnn.Options{Alive: db.store.Alive})
}
