package uvdiagram_test

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"

	"uvdiagram"
	"uvdiagram/internal/datagen"
)

func TestOrderKIndexMatchesPossibleKNN(t *testing.T) {
	db, _ := buildSmallDB(t, 60, nil)
	for _, k := range []int{1, 2, 5} {
		ix, err := db.NewOrderKIndex(k)
		if err != nil {
			t.Fatalf("NewOrderKIndex(%d): %v", k, err)
		}
		if ix.K() != k {
			t.Fatalf("K() = %d, want %d", ix.K(), k)
		}
		for _, q := range []uvdiagram.Point{
			uvdiagram.Pt(1000, 1000), uvdiagram.Pt(333, 1777), uvdiagram.Pt(1900, 100),
		} {
			got, _, err := ix.PossibleKNN(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := db.PossibleKNN(q, k)
			if err != nil {
				t.Fatal(err)
			}
			sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
			if len(got) != len(want) {
				t.Fatalf("k=%d q=%v: index %v vs baseline %v", k, q, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("k=%d q=%v: index %v vs baseline %v", k, q, got, want)
				}
			}
		}
	}
}

func TestOrderKProbsSumNearK(t *testing.T) {
	db, _ := buildSmallDB(t, 30, nil)
	ix, err := db.NewOrderKIndex(3)
	if err != nil {
		t.Fatal(err)
	}
	ans, _, err := ix.KNNProbs(uvdiagram.Pt(1000, 1000), 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, a := range ans {
		if a.Prob < 0 || a.Prob > 1 {
			t.Fatalf("answer %d probability %v outside [0,1]", a.ID, a.Prob)
		}
		sum += a.Prob
	}
	// Answers carry all the probability mass: the estimates over the
	// full object set sum to exactly k and non-answers get zero.
	if math.Abs(sum-3) > 1e-9 {
		t.Fatalf("answer probabilities sum to %v, want 3", sum)
	}
}

func TestOrderKValidation(t *testing.T) {
	db, _ := buildSmallDB(t, 10, nil)
	if _, err := db.NewOrderKIndex(0); err == nil {
		t.Fatal("NewOrderKIndex(0) should fail")
	}
}

// TestLoadOrderKIndexRejectsMismatch: an order-k stream is only valid
// against the database it was built over. Loading it into a database
// with a different domain or population must fail loudly instead of
// silently answering k-NN queries from the wrong geometry; and build
// statistics must be reported as absent (not zero) on a loaded index.
func TestLoadOrderKIndexRejectsMismatch(t *testing.T) {
	db, _ := buildSmallDB(t, 40, nil)
	ix, err := db.NewOrderKIndex(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.BuildStats(); !ok {
		t.Fatal("freshly built index reports no build stats")
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Same population count, different domain.
	cfgD := datagen.Config{N: 40, Side: 4000, Diameter: 30, Seed: 42}
	dbDomain, err := uvdiagram.Build(datagen.Uniform(cfgD), cfgD.Domain(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := uvdiagram.LoadOrderKIndex(bytes.NewReader(buf.Bytes()), dbDomain); err == nil {
		t.Fatal("order-k stream accepted against a different domain")
	} else if !strings.Contains(err.Error(), "domain") {
		t.Fatalf("domain mismatch not named: %v", err)
	}

	// Same domain, different population.
	dbPop, _ := buildSmallDB(t, 25, nil)
	if _, err := uvdiagram.LoadOrderKIndex(bytes.NewReader(buf.Bytes()), dbPop); err == nil {
		t.Fatal("order-k stream accepted against a different population")
	}

	// The matching database still loads, and the loaded index reports
	// its build stats as absent rather than a zeroed struct.
	loaded, err := uvdiagram.LoadOrderKIndex(bytes.NewReader(buf.Bytes()), db)
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := loaded.BuildStats(); ok {
		t.Fatalf("loaded index claims build stats %+v", st)
	}
}

func TestOrderKSaveLoad(t *testing.T) {
	db, _ := buildSmallDB(t, 40, nil)
	ix, err := db.NewOrderKIndex(3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := uvdiagram.LoadOrderKIndex(bytes.NewReader(buf.Bytes()), db)
	if err != nil {
		t.Fatal(err)
	}
	if got.K() != 3 {
		t.Fatalf("loaded K = %d, want 3", got.K())
	}
	q := uvdiagram.Pt(1000, 1000)
	a, _, err := ix.PossibleKNN(q)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := got.PossibleKNN(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("answers differ after reload: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("answers differ after reload: %v vs %v", a, b)
		}
	}
}
