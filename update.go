package uvdiagram

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"uvdiagram/internal/core"
	"uvdiagram/internal/prob"
	"uvdiagram/internal/rtree"
)

// Dynamic updates — the maintenance story the paper leaves as future
// work. Insert and Delete mutate the current shard epochs incrementally;
// Rebuild, Compact, CompactShard and Reshard construct fresh state
// off-thread and publish it with atomic swaps, so concurrent queries
// are never blocked by (and never observe a torn state from) a rebuild.
//
// The two-level locking scheme (see the DB doc) splits mutations:
// store, dense ids, constraint registry and the shared helper R-tree
// change under the exclusive store-level lock; the per-shard leaf
// surgery then takes only the write mutexes of the shards the mutated
// UV-cells actually reach, in ascending shard order. CompactShard takes
// the store-level lock SHARED plus its one shard's mutex, which is why
// compactions of disjoint shards overlap in wall-clock while everything
// stays serialized against Insert/Delete.
//
// Concurrency contract: NO mutation requires external synchronization
// against queries. Incremental maintenance is copy-on-write throughout
// — leaf tables, R-tree nodes and the store's population view are
// replaced behind atomic pointers in a fixed publication order (see the
// DB locking notes) — so queries run lock-free against every mutation
// and observe each one atomically. The locks above serialize mutations
// against EACH OTHER only.
//
// Deletes are output-sensitive: the topology registry (core.Topology)
// splits a victim's dependents into those whose boundary the victim
// actually shaped (tight — re-derived, seeded from their surviving
// members) and the rest, which keep their representation stripped of
// the victim with no derivation at all. Any set of live constraint ids
// is a sound conservative cell representation, so the split affects
// slack and cost, never answers.

// Insert adds a new uncertain object to a built database. The object's
// ID must be the next dense ID (db.NextID(); deleted IDs are never
// reused).
//
// Soundness: a new object only shrinks other objects' UV-cells, and
// index leaf lists are supersets of the true overlaps, so existing
// entries stay valid; the new object is inserted with a freshly derived
// cr-object representation into every shard its UV-cell reaches (only
// those shards are locked and touched). Repeated inserts accumulate
// slack in the touched shards' leaf lists (extra false positives, never
// wrong answers); Compact — or the Options.CompactSlack per-shard
// auto-compaction watermark — clears it.
//
// The store append, R-tree insert, registry append and leaf inserts
// land together: if a later step fails its validation, the earlier ones
// are rolled back, so a failed Insert leaves the database exactly as it
// was.
func (db *DB) Insert(o Object) error {
	db.smu.Lock()
	defer db.smu.Unlock()
	if int(o.ID) != db.store.Len() {
		return fmt.Errorf("uvdiagram: Insert with ID %d, want next dense id %d", o.ID, db.store.Len())
	}
	if !db.domain.Contains(o.Region.C) {
		return fmt.Errorf("uvdiagram: object center %v outside domain %v", o.Region.C, db.domain)
	}
	if err := db.store.Append(o); err != nil {
		return err
	}
	tree := db.rtree()
	tree.Insert(rtree.Item{ID: o.ID, MBC: o.Region, Ptr: uint64(db.store.PageOf(o.ID))})
	crIDs := db.deriveCR(tree, o)
	if err := db.cr.Append(o.ID, crIDs); err != nil {
		// Registry validation depends only on the id ordering, which the
		// store append just established; a failure here means the
		// engine's invariants are already broken — still roll back the
		// store and tree to the pre-call state before reporting.
		tree.Delete(o.ID, o.Region)
		if rerr := db.store.RemoveLast(); rerr != nil {
			return fmt.Errorf("uvdiagram: insert failed (%v) AND rollback failed: %w", err, rerr)
		}
		return fmt.Errorf("uvdiagram: insert rolled back: %w", err)
	}
	lo := db.lo()
	var applied []*shard
	for i := range lo.shards {
		sh := lo.shards[i]
		// Lock only the shards the new cell's representation reaches —
		// the same root-level 4-point test InsertLeafLive re-runs, so a
		// skipped shard is one the insert provably cannot touch.
		if len(lo.shards) > 1 && !sh.ep().index.CellReaches(o.ID, sh.rect) {
			continue
		}
		sh.wmu.Lock()
		_, err := sh.ep().index.InsertLeafLive(o.ID)
		sh.wmu.Unlock()
		if err != nil {
			// Unwind the whole insert — strip the object from the shards
			// already applied, then registry, tree and store — so a
			// failed Insert leaves the database exactly as it was.
			for _, ps := range applied {
				ps.wmu.Lock()
				_, _ = ps.ep().index.RemoveAndReinsertLive([]int32{o.ID}, nil)
				ps.wmu.Unlock()
			}
			db.cr.RemoveLast()
			tree.Delete(o.ID, o.Region)
			if rerr := db.store.RemoveLast(); rerr != nil {
				return fmt.Errorf("uvdiagram: insert failed at shard %d (%v) AND rollback failed: %w", i, err, rerr)
			}
			return fmt.Errorf("uvdiagram: insert rolled back: %w", err)
		}
		applied = append(applied, sh)
	}
	// Opportunistic repair: fold the new constraint into every CACHED
	// boundary profile it can clip, recording the new id in those
	// representations. Repair only tightens reps (regions shrink), so no
	// leaf surgery follows; objects without a cached profile are skipped
	// — their reps, formed before o existed, stay sound as-is.
	if n := db.topo.RepairOnInsert(db.cr, o, db.store.Dense(), db.store.Alive); n > 0 {
		db.mstats.repaired.Add(int64(n))
	}
	db.mstats.inserts.Add(1)
	db.maybeCompact()
	return nil
}

// Delete removes object id from the database incrementally. The id is
// tombstoned in the store (never reused), removed from the shared
// helper R-tree, and excised from the UV-indexes: because removing an
// object can only GROW the UV-cells of the objects whose cr-set
// contained it, exactly those neighbors are re-derived (once, from the
// engine-wide registry) and re-inserted into every shard their grown
// cells reach — only the shards the victims' or dependents' cells reach
// are locked and touched, keeping every leaf list a superset of the
// true overlaps. Answers stay exact.
//
// Like Insert, Delete needs no synchronization against queries (see
// the package comment). Each delete adds slack proportional to the
// leaf entries rewritten in the shards it touches; Compact (or the
// CompactSlack watermark) clears it.
func (db *DB) Delete(id int32) error {
	db.smu.Lock()
	defer db.smu.Unlock()
	if !db.store.Alive(id) {
		return fmt.Errorf("uvdiagram: unknown or deleted object %d", id)
	}
	return db.deleteBatchLocked([]int32{id})
}

// BatchDelete removes many objects in one critical section. It is
// all-or-nothing: every id is validated (known, live, no duplicates)
// before the first deletion, so a failing batch changes nothing. The
// index repair is shared across the batch — per touched shard, one leaf
// walk strips every victim and dependent, dirty pages flush once, and
// the leaf caches are invalidated once, instead of per victim;
// dependent re-derivation runs once for the whole engine.
func (db *DB) BatchDelete(ids []int32) error {
	db.smu.Lock()
	defer db.smu.Unlock()
	seen := make(map[int32]bool, len(ids))
	for i, id := range ids {
		if !db.store.Alive(id) {
			return fmt.Errorf("uvdiagram: delete %d: unknown or deleted object %d", i, id)
		}
		if seen[id] {
			return fmt.Errorf("uvdiagram: delete %d: duplicate object %d in batch", i, id)
		}
		seen[id] = true
	}
	if len(ids) == 0 {
		return nil
	}
	return db.deleteBatchLocked(ids)
}

// deleteBatchLocked removes validated, live ids with db.smu held
// exclusively.
func (db *DB) deleteBatchLocked(ids []int32) error {
	lo := db.lo()
	nsh := len(lo.shards)
	// touched marks the shards whose leaf structure the batch can
	// affect. A shard holds leaf entries for X only if X's CURRENT
	// registry representation reaches it (entries are created by the
	// same 4-point test), so marking the victims' and dependents' reach
	// BEFORE the registry changes covers every entry to remove, and
	// marking the dependents' FRESH representations afterwards covers
	// every entry to re-create.
	touched := make([]bool, nsh)
	mark := func(id int32, crIDs []int32) {
		for i := range lo.shards {
			if !touched[i] && lo.shards[i].ep().index.RepReaches(id, crIDs, lo.shards[i].rect) {
				touched[i] = true
			}
		}
	}
	affected := db.cr.AffectedBy(ids)
	if nsh == 1 {
		touched[0] = true
	} else {
		for _, id := range ids {
			mark(id, db.cr.Of(id))
		}
		for _, a := range affected {
			mark(a, db.cr.Of(a))
		}
	}
	// Publication order (see the DB locking notes): R-tree deletes
	// FIRST — k-NN retrieval flips to the post-batch population with one
	// header swap, and the re-derivations below scan a victim-free tree
	// — then the per-shard leaf tables, and the store tombstones LAST,
	// so a query's view captured before its tree loads always covers
	// every id the tree can still hand it.
	tree := db.rtree()
	for _, id := range ids {
		tree.Delete(id, db.store.At(int(id)).Region)
	}
	// Output-sensitive dependent triage: a dependent whose victims never
	// shaped its boundary (not tight in its cached topology profile)
	// keeps its representation minus the victims — no derivation, and
	// the stripped profile stays valid. Only tight dependents re-derive.
	// The store still holds the victims (tombstones come last), so
	// profiles built here can evaluate victim constraints.
	vic := make(map[int32]bool, len(ids))
	for _, id := range ids {
		vic[id] = true
	}
	objs := db.store.Dense()
	rederive := make([]int32, 0, len(affected))
	for _, a := range affected {
		prof := db.topo.Ensure(a, objs[a], db.cr.Of(a), objs, db.domain)
		tight := prof.AnyTight(ids)
		db.cr.Strip(a, vic)
		if tight {
			rederive = append(rederive, a)
		}
	}
	// Region-restricted re-derivation for the tight dependents: seeded
	// from the surviving members (no fresh NN browse), against the
	// already victim-free tree. One derivation serves every shard.
	for _, a := range rederive {
		freshSet := db.deriveCRFrom(tree, objs[a], db.cr.Of(a))
		db.cr.Replace(a, freshSet)
		db.topo.Invalidate(a)
	}
	db.cr.Drop(ids)
	for _, id := range ids {
		db.topo.Invalidate(id)
	}
	if nsh > 1 {
		// Stripped and fresh representations cover GROWN cells: re-mark
		// so reinsertion reaches every shard a grown cell now touches.
		for _, a := range affected {
			mark(a, db.cr.Of(a))
		}
	}
	// Leaf surgery per touched shard: strip victims and dependents, then
	// re-insert every dependent with its CURRENT representation —
	// stripped or fresh, both are sound supersets — publishing each
	// shard's new leaf table with one snapshot store.
	remove := make([]int32, 0, len(ids)+len(affected))
	remove = append(remove, ids...)
	remove = append(remove, affected...)
	for i := range lo.shards {
		if !touched[i] {
			continue
		}
		sh := lo.shards[i]
		sh.wmu.Lock()
		_, err := sh.ep().index.RemoveAndReinsertLive(remove, affected)
		sh.wmu.Unlock()
		if err != nil {
			return err
		}
	}
	// Tombstone last.
	for _, id := range ids {
		if err := db.store.Delete(id); err != nil {
			return err
		}
	}
	db.mstats.deletes.Add(int64(len(ids)))
	db.mstats.dependents.Add(int64(len(affected)))
	db.mstats.rederived.Add(int64(len(rederive)))
	db.mstats.skipped.Add(int64(len(affected) - len(rederive)))
	db.maybeCompact()
	return nil
}

// Rebuild reconstructs every shard's UV-index, the constraint registry
// and the helper R-tree from scratch over the live objects, clearing
// the slack accumulated by Inserts and Deletes. Each fresh shard index
// is published with one atomic epoch swap, so concurrent queries keep
// answering throughout — they see either the old or the new index,
// never a mixture.
func (db *DB) Rebuild() error { return db.Compact(context.Background()) }

// Compact is Rebuild with a context: the shadow build is skipped if ctx
// is already cancelled when compaction starts (the build itself is one
// uninterruptible pass). The live population is derived once — a FULL
// re-derivation, refreshing every constraint set — and every shard's
// sub-grid is then shadow-built in parallel and swapped in. Queries are
// never blocked — they run against the old epochs until the atomic
// swaps. Concurrent Inserts and Deletes serialize behind the
// compaction. For maintenance bounded by one shard's size, use
// CompactShard (or CompactAll to roll over every shard with bounded
// parallelism).
func (db *DB) Compact(ctx context.Context) error {
	db.smu.Lock()
	defer db.smu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	tstart := time.Now()
	// Shadow build: nothing below mutates the live epochs or the store.
	tree := core.BuildHelperRTree(db.store, db.bopts.Fanout)
	tree.SetReclaimDomain(db.egc)
	t0 := time.Now()
	crSets, stats, err := core.DeriveCRSets(db.store, db.domain, tree, db.bopts)
	if err != nil {
		db.fireMaint(MaintEvent{Kind: MaintCompact, Shard: -1, Dur: time.Since(tstart), Err: err})
		return err
	}
	cr := core.NewCRState(crSets)
	lo := db.lo()
	db.buildShards(lo, cr, &stats, t0, maxGen(lo)+1)
	db.cr = cr
	db.topo = core.NewTopology(cr.Len(), db.bopts.RegionSamples)
	db.tree.Store(tree)
	db.built.Store(&stats)
	db.fireMaint(MaintEvent{Kind: MaintCompact, Shard: -1, Dur: time.Since(tstart)})
	return nil
}

// maxGen returns the highest epoch generation across a layout's shards;
// publishing every fresh epoch with maxGen+1 guarantees each shard sees
// a generation different from its current one.
func maxGen(lo *shardLayout) uint64 {
	var max uint64
	for i := range lo.shards {
		if g := lo.shards[i].ep().gen; g > max {
			max = g
		}
	}
	return max
}

// CompactShard shadow-rebuilds one shard's leaf structure from the
// engine's current constraint registry and swaps it in, leaving the
// other shards untouched: the rebuild clears the leaf-list slack
// accumulated by incremental maintenance (stale entries, overflow
// pages), bounded by the objects whose cells reach the shard rather
// than the whole diagram. Constraint sets themselves are NOT re-derived
// — that is the full Compact's (or Reshard's) job — which is what lets
// CompactShard hold the store-level lock only SHARED: compactions of
// disjoint shards run truly in parallel, serializing only against
// Insert/Delete/Compact/Reshard. Queries are never blocked. This is the
// unit of background auto-compaction.
func (db *DB) CompactShard(ctx context.Context, i int) error {
	db.smu.RLock()
	defer db.smu.RUnlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	lo := db.lo()
	if i < 0 || i >= len(lo.shards) {
		return fmt.Errorf("uvdiagram: shard %d out of range [0, %d)", i, len(lo.shards))
	}
	db.compactShardLocked(lo, i)
	return nil
}

// compactShardLocked is CompactShard's body: the shadow build and epoch
// swap of shard i of lo. The caller holds smu (shared suffices) and lo
// is the layout current under that hold — smu is what keeps Reshard
// (which takes it exclusively) from swapping the layout mid-build, so
// the fresh epoch can never be stored into a retired layout's shard.
func (db *DB) compactShardLocked(lo *shardLayout, i int) {
	sh := lo.shards[i]
	sh.wmu.Lock()
	defer sh.wmu.Unlock()
	if hook := db.compactHook; hook != nil {
		hook(i)
	}
	t0 := time.Now()
	old := sh.ep()
	ix, _ := core.BuildRegionCR(db.store, sh.rect, db.cr, db.bopts.Index)
	ix.SetReclaimDomain(db.egc)
	sh.epoch.Store(&indexEpoch{index: ix, gen: old.gen + 1})
	// The full-build statistics snapshot keeps its phase timings; only
	// the aggregate index shape is refreshed. CAS loop: concurrent
	// shard compactions (CompactAll) hold the store lock shared, so a
	// plain load-modify-store could lose the other's refresh — a failed
	// CAS re-aggregates over the then-current epochs and retries.
	for {
		prev := db.built.Load()
		stats := *prev
		stats.Index = db.IndexStats()
		if db.built.CompareAndSwap(prev, &stats) {
			break
		}
	}
	db.fireMaint(MaintEvent{Kind: MaintCompactShard, Shard: i, Dur: time.Since(t0)})
}

// CompactAll compacts every shard with CompactShard on a bounded worker
// pool (parallelism ≤ 0 means one worker per CPU, capped at the shard
// count). Workers hold the store-level lock shared and distinct shard
// mutexes, so the per-shard shadow builds genuinely overlap; on failure
// the remaining shards are skipped and the lowest-indexed error is
// returned.
func (db *DB) CompactAll(ctx context.Context, parallelism int) error {
	n := len(db.lo().shards)
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	return runPool(n, parallelism, nil, "shard", func(i int) error {
		return db.CompactShard(ctx, i)
	})
}

// Reshard re-cuts the shard layout online to match the LIVE object
// distribution: it derives every constraint set once (a full
// re-derivation, like Compact), builds the complete new layout's shard
// sub-grids off to the side, and publishes cuts and all shard epochs
// with ONE atomic layout-pointer swap — queries route through either
// the old layout or the new one, never a mixture, and are never
// blocked. The grid dimensions stay; only the cut coordinates move.
//
// Reshard chooses cuts with the database's configured adaptive
// strategy; a database built with the default equal strips reshards
// with WeightedMedian — calling Reshard means asking for balance. Use
// ReshardWith for an explicit strategy.
//
// Answers are bitwise identical before and after: the layout only
// changes which shard answers a point, never what the answer is.
func (db *DB) Reshard(ctx context.Context) error { return db.ReshardWith(ctx, nil) }

// ReshardWith is Reshard with an explicit layout strategy (nil selects
// the adaptive default described on Reshard).
func (db *DB) ReshardWith(ctx context.Context, strategy LayoutStrategy) error {
	db.smu.Lock()
	defer db.smu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	if strategy == nil {
		strategy = db.strategy
		if _, equal := strategy.(EqualStrips); equal || strategy == nil {
			strategy = WeightedMedian{}
		}
	}
	tstart := time.Now()
	imbBefore := db.LoadImbalance()
	old := db.lo()
	xs, ys := strategy.Cuts(db.domain, old.gx, old.gy, db.liveCenters())
	lo := newShardLayout(old.gen+1, old.gx, old.gy, xs, ys)
	// Like Compact, reshard is a full maintenance event: a fresh
	// bulk-load drops the R-tree slack delete churn left behind, and
	// keeps the derivation's simulated-disk reads off the live tree's
	// I/O accounting.
	tree := core.BuildHelperRTree(db.store, db.bopts.Fanout)
	tree.SetReclaimDomain(db.egc)
	t0 := time.Now()
	crSets, stats, err := core.DeriveCRSets(db.store, db.domain, tree, db.bopts)
	if err != nil {
		db.fireMaint(MaintEvent{Kind: MaintReshard, Shard: -1, Dur: time.Since(tstart),
			ImbalanceBefore: imbBefore, ImbalanceAfter: imbBefore, Err: err})
		return err
	}
	cr := core.NewCRState(crSets)
	db.buildShards(lo, cr, &stats, t0, maxGen(old)+1)
	db.cr = cr
	db.topo = core.NewTopology(cr.Len(), db.bopts.RegionSamples)
	db.tree.Store(tree)
	db.layout.Store(lo) // the single publication point
	db.built.Store(&stats)
	db.fireMaint(MaintEvent{Kind: MaintReshard, Shard: -1, Dur: time.Since(tstart),
		ImbalanceBefore: imbBefore, ImbalanceAfter: db.LoadImbalance()})
	return nil
}

// deriveCR derives object o's constraint set against the current live
// population with the DB's long-lived derivation scratch (callers hold
// smu exclusively, so the scratch is never shared): steady-state
// mutation re-derivation allocates only the returned, registry-retained
// set. The set is bitwise identical to DeriveCRObjects'.
func (db *DB) deriveCR(tree *rtree.Tree, o Object) []int32 {
	if db.dscratch == nil {
		db.dscratch = core.NewDeriveScratch()
	}
	return core.DeriveCR(tree, o, db.store.Dense(), db.domain,
		db.bopts.SeedK, db.bopts.SeedSectors, db.bopts.RegionSamples, db.dscratch)
}

// deriveCRFrom is the delete path's region-restricted re-derivation:
// object o's fresh constraint set seeded from prev, its previous live
// members (victims already stripped), instead of a fresh NN browse.
func (db *DB) deriveCRFrom(tree *rtree.Tree, o Object, prev []int32) []int32 {
	if db.dscratch == nil {
		db.dscratch = core.NewDeriveScratch()
	}
	return core.DeriveCRFrom(tree, o, prev, db.store.Dense(), db.domain,
		db.bopts.RegionSamples, db.dscratch)
}

// maybeCompact kicks off background compaction for every shard whose
// accumulated slack reached the armed watermark, returning how many it
// armed. Singleflight per shard: at most one auto-compaction runs per
// shard at a time, several shards may compact in parallel (they hold
// the store-level lock shared), and explicit mutations arriving
// meanwhile simply serialize behind them. Every exit of the spawned
// goroutine releases the singleflight flag, so a shard whose run was
// skipped (layout swapped underneath it) stays re-armable — the
// maintenance controller's tick also re-runs this check, so slack can
// never strand once writes stop.
func (db *DB) maybeCompact() int {
	if db.bopts.CompactSlack <= 0 {
		return 0
	}
	lo := db.lo()
	armed := 0
	for i := range lo.shards {
		sh := lo.shards[i]
		if sh.ep().index.Slack() < int64(db.bopts.CompactSlack) {
			continue
		}
		if !sh.compacting.CompareAndSwap(false, true) {
			continue
		}
		armed++
		go db.autoCompact(lo, i)
	}
	return armed
}

// autoCompact runs one armed background shard compaction. The
// layout-identity check happens UNDER the shared store lock: Reshard
// swaps the layout only while holding smu exclusively, so once the
// check passes the layout provably stays current for the whole shadow
// build. (Checking before acquiring smu — as this path originally did —
// left a window where a Reshard could land in between, making the build
// target the NEW layout's shard i while the singleflight flag held was
// the OLD shard's: never wrong answers, but wasted work and a
// compaction the new shard's own flag did not account for.)
func (db *DB) autoCompact(lo *shardLayout, i int) {
	sh := lo.shards[i]
	defer sh.compacting.Store(false)
	db.smu.RLock()
	defer db.smu.RUnlock()
	// The watermark decision was made against THIS layout's shard; if a
	// Reshard replaced the layout meanwhile, the new shard i was just
	// freshly built (zero slack) and carries its own singleflight flag —
	// skip rather than compact it redundantly. The deferred flag release
	// keeps the old shard re-armable either way.
	if db.lo() != lo {
		return
	}
	db.compactShardLocked(lo, i)
}

// PossibleKNN returns the IDs of every object with non-zero probability
// of being among the k nearest neighbors of q — the k-NN generalization
// the paper lists as future work (k-th order Voronoi diagrams [30]).
// Retrieval runs on the shared helper R-tree (which covers the full
// live population): UV-index leaf lists only guarantee supersets for
// k = 1 cells, so the branch-and-prune path generalizes while the
// UV-index stays specialized for PNN.
func (db *DB) PossibleKNN(q Point, k int) ([]int32, error) {
	t := db.egc.Pin()
	defer db.egc.Unpin(t)
	return db.possibleKNN(db.rtree(), q, k, nil)
}

// possibleKNN answers through an optional R-tree leaf cache against one
// pinned tree. The candidates' distance bounds come straight from the
// leaf entries' bounding circles (identical to the objects' regions),
// so the objects themselves are never materialized.
func (db *DB) possibleKNN(tree *rtree.Tree, q Point, k int, cache *rtree.LeafCache) ([]int32, error) {
	if k <= 0 {
		return nil, fmt.Errorf("uvdiagram: PossibleKNN needs k ≥ 1, got %d", k)
	}
	items, _ := tree.KNNCandidatesCached(q, k, cache)
	mins := make([]float64, len(items))
	maxes := make([]float64, len(items))
	for i, it := range items {
		d := q.Dist(it.MBC.C)
		if d > it.MBC.R {
			mins[i] = d - it.MBC.R
		}
		maxes[i] = d + it.MBC.R
	}
	idx := prob.KNNAnswerSetDists(mins, maxes, k)
	out := make([]int32, len(idx))
	for i, j := range idx {
		out[i] = items[j].ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// TopKPNN returns the k objects most likely to be the nearest neighbor
// of q, ordered by descending qualification probability (ties by ID) —
// the top-k probable nearest-neighbor query in the spirit of [29],
// served directly from the UV-index.
func (db *DB) TopKPNN(q Point, k int) ([]Answer, QueryStats, error) {
	answers, st, err := db.PNN(q)
	if err != nil {
		return nil, st, err
	}
	return topKAnswers(answers, k), st, nil
}

// topKAnswers sorts answers by descending probability (ties by ID) and
// truncates to the top k (k ≤ 0 yields an empty result). Shared by the
// sequential and batch top-k paths so their ordering stays bitwise
// identical.
func topKAnswers(answers []Answer, k int) []Answer {
	sort.Slice(answers, func(i, j int) bool {
		if answers[i].Prob != answers[j].Prob {
			return answers[i].Prob > answers[j].Prob
		}
		return answers[i].ID < answers[j].ID
	})
	if k < 0 {
		k = 0
	}
	if k < len(answers) {
		answers = answers[:k]
	}
	return answers
}
