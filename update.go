package uvdiagram

import (
	"context"
	"fmt"
	"sort"
	"time"

	"uvdiagram/internal/core"
	"uvdiagram/internal/prob"
	"uvdiagram/internal/rtree"
)

// Dynamic updates — the maintenance story the paper leaves as future
// work. Insert and Delete mutate the current shard epochs incrementally;
// Rebuild, Compact and CompactShard construct fresh epochs off-thread
// and swap each in atomically, so concurrent queries are never blocked
// by (and never observe a torn state from) a rebuild.
//
// Sharding splits the work spatially: the expensive constraint-set
// derivation runs ONCE per mutation and is shared by every shard, while
// each shard's leaf/page churn is bounded by the objects whose UV-cells
// actually reach its region (an object away from a shard is dropped by
// the root-level overlap test before touching any of its leaves). Every
// shard still records the mutation in its constraint bookkeeping — a
// later delete can grow a neighbor's cell across a shard boundary, and
// the shard-local reverse cr-map is what finds those dependents.
//
// Concurrency contract: Insert and Delete require external
// synchronization against queries (the server holds its write lock
// across them — incremental maintenance rewrites live leaf pages).
// Rebuild, Compact and CompactShard do NOT: any goroutine may call them
// while queries run. All mutations serialize against each other
// internally.

// Insert adds a new uncertain object to a built database. The object's
// ID must be the next dense ID (db.NextID(); deleted IDs are never
// reused).
//
// Soundness: a new object only shrinks other objects' UV-cells, and
// index leaf lists are supersets of the true overlaps, so existing
// entries stay valid; the new object is inserted with a freshly derived
// cr-object representation into every shard its UV-cell reaches.
// Repeated inserts accumulate slack in the touched shards' leaf lists
// (extra false positives, never wrong answers); Compact — or the
// Options.CompactSlack per-shard auto-compaction watermark — clears it.
//
// The store append, R-tree inserts and index inserts land together: if
// the index step fails its validation, the first two are rolled back,
// so a failed Insert leaves the database exactly as it was.
func (db *DB) Insert(o Object) error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	if int(o.ID) != db.store.Len() {
		return fmt.Errorf("uvdiagram: Insert with ID %d, want next dense id %d", o.ID, db.store.Len())
	}
	if !db.domain.Contains(o.Region.C) {
		return fmt.Errorf("uvdiagram: object center %v outside domain %v", o.Region.C, db.domain)
	}
	if err := db.store.Append(o); err != nil {
		return err
	}
	eps := db.epochs()
	item := rtree.Item{ID: o.ID, MBC: o.Region, Ptr: uint64(db.store.PageOf(o.ID))}
	for _, ep := range eps {
		ep.tree.Insert(item)
	}
	// One derivation feeds every shard (all trees hold the same live
	// population, so any of them serves the pruning steps).
	res := core.DeriveCRObjects(eps[0].tree, o, db.store.Dense(), db.domain,
		db.bopts.SeedK, db.bopts.SeedSectors, db.bopts.RegionSamples)
	for i, ep := range eps {
		if err := ep.index.InsertLive(o.ID, res.CR); err != nil {
			if i > 0 {
				// InsertLive's validation depends only on the id ordering
				// and the store length, which are identical across shards;
				// a later-shard failure would mean the engine's invariants
				// are already broken, so report rather than half-rollback.
				return fmt.Errorf("uvdiagram: insert applied to %d of %d shards: %w", i, len(eps), err)
			}
			// InsertLive validates before mutating, so store and trees can
			// be rolled back to a consistent pre-call state.
			for _, ep2 := range eps {
				ep2.tree.Delete(o.ID, o.Region)
			}
			if rerr := db.store.RemoveLast(); rerr != nil {
				return fmt.Errorf("uvdiagram: insert failed (%v) AND rollback failed: %w", err, rerr)
			}
			return fmt.Errorf("uvdiagram: insert rolled back: %w", err)
		}
	}
	db.maybeCompact()
	return nil
}

// Delete removes object id from the database incrementally. The id is
// tombstoned in the store (never reused), removed from every shard's
// helper R-tree, and excised from each shard's UV-index: because
// removing an object can only GROW the UV-cells of the objects whose
// cr-set contained it, exactly those neighbors are re-derived (once,
// shared across shards) and re-inserted into every shard their grown
// cells reach, keeping every leaf list a superset of the true overlaps
// — answers stay exact.
//
// Like Insert, Delete requires external synchronization against
// queries. Each delete adds slack proportional to the re-derived
// neighborhood in the shards it touches; Compact (or the CompactSlack
// watermark) clears it.
func (db *DB) Delete(id int32) error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	if !db.store.Alive(id) {
		return fmt.Errorf("uvdiagram: unknown or deleted object %d", id)
	}
	return db.deleteBatchLocked([]int32{id})
}

// BatchDelete removes many objects in one critical section. It is
// all-or-nothing: every id is validated (known, live, no duplicates)
// before the first deletion, so a failing batch changes nothing. The
// index repair is shared across the batch — per shard, one leaf walk
// strips every victim and dependent, dirty pages flush once, and the
// leaf caches are invalidated once, instead of per victim; dependent
// re-derivation additionally runs once for the whole engine.
func (db *DB) BatchDelete(ids []int32) error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	seen := make(map[int32]bool, len(ids))
	for i, id := range ids {
		if !db.store.Alive(id) {
			return fmt.Errorf("uvdiagram: delete %d: unknown or deleted object %d", i, id)
		}
		if seen[id] {
			return fmt.Errorf("uvdiagram: delete %d: duplicate object %d in batch", i, id)
		}
		seen[id] = true
	}
	if len(ids) == 0 {
		return nil
	}
	return db.deleteBatchLocked(ids)
}

// deleteBatchLocked removes validated, live ids with db.wmu held.
func (db *DB) deleteBatchLocked(ids []int32) error {
	eps := db.epochs()
	// Tombstone every victim and drop its R-tree entries first, so the
	// dependents' re-derivation sees the final post-batch population.
	for _, id := range ids {
		o := db.store.At(int(id))
		if err := db.store.Delete(id); err != nil {
			return err
		}
		for _, ep := range eps {
			ep.tree.Delete(id, o.Region)
		}
	}
	// Every shard lists the same dependents (constraint bookkeeping is
	// engine-wide), so one memoized derivation per dependent serves all
	// of them; the per-shard work that remains is leaf surgery bounded
	// by the shard's region.
	memo := make(map[int32][]int32)
	rederive := func(a int32) []int32 {
		if cr, ok := memo[a]; ok {
			return cr
		}
		res := core.DeriveCRObjects(eps[0].tree, db.store.At(int(a)), db.store.Dense(), db.domain,
			db.bopts.SeedK, db.bopts.SeedSectors, db.bopts.RegionSamples)
		memo[a] = res.CR
		return res.CR
	}
	for _, ep := range eps {
		if _, err := ep.index.DeleteLiveBatch(ids, rederive); err != nil {
			return err
		}
	}
	db.maybeCompact()
	return nil
}

// Rebuild reconstructs every shard's UV-index (and helper R-tree) from
// scratch over the live objects, clearing the slack accumulated by
// Inserts and Deletes. Each fresh shard index is published with one
// atomic epoch swap, so concurrent queries keep answering throughout —
// they see either the old or the new index, never a mixture.
func (db *DB) Rebuild() error { return db.Compact(context.Background()) }

// Compact is Rebuild with a context: the shadow build is skipped if ctx
// is already cancelled when compaction starts (the build itself is one
// uninterruptible pass). The live population is derived once and every
// shard's sub-grid is then shadow-built in parallel and swapped in.
// Queries are never blocked — they run against the old epochs until the
// atomic swaps. Concurrent Inserts and Deletes serialize behind the
// compaction. For maintenance bounded by one shard's size, use
// CompactShard.
func (db *DB) Compact(ctx context.Context) error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	// Shadow build: nothing below mutates the live epochs or the store.
	tree := core.BuildHelperRTree(db.store, db.bopts.Fanout)
	if len(db.shards) == 1 {
		index, stats, err := core.Build(db.store, db.domain, tree, db.bopts)
		if err != nil {
			return err
		}
		old := db.ep()
		db.shards[0].epoch.Store(&indexEpoch{index: index, tree: tree, gen: old.gen + 1})
		db.built.Store(&stats)
		return nil
	}
	t0 := time.Now()
	crSets, stats, err := core.DeriveCRSets(db.store, db.domain, tree, db.bopts)
	if err != nil {
		return err
	}
	db.publishShards(crSets, tree, &stats, t0)
	db.built.Store(&stats)
	return nil
}

// CompactShard shadow-rebuilds one shard and swaps it in, leaving the
// other shards untouched: fresh constraint sets are derived only for
// the objects whose (conservatively represented) UV-cells can reach the
// shard's region — every other object keeps its current set for
// cross-shard delete bookkeeping — so both the rebuild work and the
// query-visible churn are bounded by the shard's population rather than
// the whole diagram. Queries are never blocked. This is the unit of
// background auto-compaction.
func (db *DB) CompactShard(ctx context.Context, i int) error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	if i < 0 || i >= len(db.shards) {
		return fmt.Errorf("uvdiagram: shard %d out of range [0, %d)", i, len(db.shards))
	}
	sh := &db.shards[i]
	old := sh.ep()
	tree := core.BuildHelperRTree(db.store, db.bopts.Fanout)
	crSets := make([][]int32, db.store.Len())
	var reach []int32
	for id := 0; id < db.store.Len(); id++ {
		if !db.store.Alive(int32(id)) {
			continue
		}
		if old.index.CellReaches(int32(id), sh.rect) {
			reach = append(reach, int32(id))
		} else {
			crSets[id] = old.index.CRObjects(int32(id))
		}
	}
	db.deriveInto(crSets, reach, tree)
	ix, _ := core.BuildRegion(db.store, sh.rect, crSets, db.bopts.Index)
	sh.epoch.Store(&indexEpoch{index: ix, tree: tree, gen: old.gen + 1})
	// The derivation phase of a shard compact is partial, so the full-
	// build statistics snapshot keeps its phase timings; only the
	// aggregate index shape is refreshed.
	stats := *db.built.Load()
	stats.Index = db.IndexStats()
	db.built.Store(&stats)
	return nil
}

// deriveInto fills crSets[id] with a freshly derived constraint set for
// every id in reach, parallelized by Options.Workers. Like the build
// path, each extra worker clones the helper R-tree so no two share one
// simulated-disk pager's read path under contention.
func (db *DB) deriveInto(crSets [][]int32, reach []int32, tree *rtree.Tree) {
	derive := func(t *rtree.Tree, id int32) []int32 {
		res := core.DeriveCRObjects(t, db.store.At(int(id)), db.store.Dense(), db.domain,
			db.bopts.SeedK, db.bopts.SeedSectors, db.bopts.RegionSamples)
		return res.CR
	}
	workers := db.bopts.Workers
	if workers > len(reach) {
		workers = len(reach)
	}
	if workers <= 1 {
		for _, id := range reach {
			crSets[id] = derive(tree, id)
		}
		return
	}
	next := make(chan int32)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		wtree := tree
		if w > 0 {
			wtree = core.BuildHelperRTree(db.store, db.bopts.Fanout)
		}
		go func(wtree *rtree.Tree) {
			defer func() { done <- struct{}{} }()
			for id := range next {
				crSets[id] = derive(wtree, id)
			}
		}(wtree)
	}
	for _, id := range reach {
		next <- id
	}
	close(next)
	for w := 0; w < workers; w++ {
		<-done
	}
}

// maybeCompact kicks off background compaction for every shard whose
// accumulated slack reached the armed watermark. Singleflight per
// shard: at most one auto-compaction runs per shard at a time, several
// shards may compact in parallel, and explicit mutations arriving
// meanwhile simply serialize behind them.
func (db *DB) maybeCompact() {
	if db.bopts.CompactSlack <= 0 {
		return
	}
	for i := range db.shards {
		sh := &db.shards[i]
		if sh.ep().index.Slack() < int64(db.bopts.CompactSlack) {
			continue
		}
		if !sh.compacting.CompareAndSwap(false, true) {
			continue
		}
		go func(i int) {
			defer db.shards[i].compacting.Store(false)
			// The build inputs were validated when the objects entered the
			// store, so failure here would indicate a programming error;
			// errors surface on the next explicit Compact call.
			_ = db.CompactShard(context.Background(), i)
		}(i)
	}
}

// PossibleKNN returns the IDs of every object with non-zero probability
// of being among the k nearest neighbors of q — the k-NN generalization
// the paper lists as future work (k-th order Voronoi diagrams [30]).
// Retrieval runs on the owning shard's helper R-tree (which covers the
// full live population): UV-index leaf lists only guarantee supersets
// for k = 1 cells, so the branch-and-prune path generalizes while the
// UV-index stays specialized for PNN.
func (db *DB) PossibleKNN(q Point, k int) ([]int32, error) {
	return db.possibleKNN(db.epFor(q), q, k, nil)
}

// possibleKNN answers through an optional R-tree leaf cache against one
// pinned epoch. The candidates' distance bounds come straight from the
// leaf entries' bounding circles (identical to the objects' regions),
// so the objects themselves are never materialized.
func (db *DB) possibleKNN(ep *indexEpoch, q Point, k int, cache *rtree.LeafCache) ([]int32, error) {
	if k <= 0 {
		return nil, fmt.Errorf("uvdiagram: PossibleKNN needs k ≥ 1, got %d", k)
	}
	items, _ := ep.tree.KNNCandidatesCached(q, k, cache)
	mins := make([]float64, len(items))
	maxes := make([]float64, len(items))
	for i, it := range items {
		d := q.Dist(it.MBC.C)
		if d > it.MBC.R {
			mins[i] = d - it.MBC.R
		}
		maxes[i] = d + it.MBC.R
	}
	idx := prob.KNNAnswerSetDists(mins, maxes, k)
	out := make([]int32, len(idx))
	for i, j := range idx {
		out[i] = items[j].ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// TopKPNN returns the k objects most likely to be the nearest neighbor
// of q, ordered by descending qualification probability (ties by ID) —
// the top-k probable nearest-neighbor query in the spirit of [29],
// served directly from the UV-index.
func (db *DB) TopKPNN(q Point, k int) ([]Answer, QueryStats, error) {
	answers, st, err := db.PNN(q)
	if err != nil {
		return nil, st, err
	}
	return topKAnswers(answers, k), st, nil
}

// topKAnswers sorts answers by descending probability (ties by ID) and
// truncates to the top k (k ≤ 0 yields an empty result). Shared by the
// sequential and batch top-k paths so their ordering stays bitwise
// identical.
func topKAnswers(answers []Answer, k int) []Answer {
	sort.Slice(answers, func(i, j int) bool {
		if answers[i].Prob != answers[j].Prob {
			return answers[i].Prob > answers[j].Prob
		}
		return answers[i].ID < answers[j].ID
	})
	if k < 0 {
		k = 0
	}
	if k < len(answers) {
		answers = answers[:k]
	}
	return answers
}
