package uvdiagram

import (
	"context"
	"fmt"
	"sort"

	"uvdiagram/internal/core"
	"uvdiagram/internal/prob"
	"uvdiagram/internal/rtree"
)

// Dynamic updates — the maintenance story the paper leaves as future
// work. Insert and Delete mutate the current index epoch incrementally;
// Rebuild and Compact construct a fresh epoch off-thread and swap it in
// atomically, so concurrent queries are never blocked by (and never
// observe a torn state from) a rebuild.
//
// Concurrency contract: Insert and Delete require external
// synchronization against queries (the server holds its write lock
// across them — incremental maintenance rewrites live leaf pages).
// Rebuild and Compact do NOT: any goroutine may call them while queries
// run. All mutations serialize against each other internally.

// Insert adds a new uncertain object to a built database. The object's
// ID must be the next dense ID (db.NextID(); deleted IDs are never
// reused).
//
// Soundness: a new object only shrinks other objects' UV-cells, and
// index leaf lists are supersets of the true overlaps, so existing
// entries stay valid; the new object is inserted with a freshly derived
// cr-object representation. Repeated inserts accumulate slack in the
// leaf lists (extra false positives, never wrong answers); Compact — or
// the Options.CompactSlack auto-compaction watermark — clears it.
//
// The store append, R-tree insert and index insert land together: if
// the final index step fails, the first two are rolled back, so a
// failed Insert leaves the database exactly as it was.
func (db *DB) Insert(o Object) error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	if int(o.ID) != db.store.Len() {
		return fmt.Errorf("uvdiagram: Insert with ID %d, want next dense id %d", o.ID, db.store.Len())
	}
	if !db.domain.Contains(o.Region.C) {
		return fmt.Errorf("uvdiagram: object center %v outside domain %v", o.Region.C, db.domain)
	}
	if err := db.store.Append(o); err != nil {
		return err
	}
	ep := db.ep()
	ep.tree.Insert(rtree.Item{ID: o.ID, MBC: o.Region, Ptr: uint64(db.store.PageOf(o.ID))})
	res := core.DeriveCRObjects(ep.tree, o, db.store.Dense(), db.domain,
		db.bopts.SeedK, db.bopts.SeedSectors, db.bopts.RegionSamples)
	if err := ep.index.InsertLive(o.ID, res.CR); err != nil {
		// InsertLive validates before mutating, so store and tree can be
		// rolled back to a consistent pre-call state.
		ep.tree.Delete(o.ID, o.Region)
		if rerr := db.store.RemoveLast(); rerr != nil {
			return fmt.Errorf("uvdiagram: insert failed (%v) AND rollback failed: %w", err, rerr)
		}
		return fmt.Errorf("uvdiagram: insert rolled back: %w", err)
	}
	db.maybeCompact(ep)
	return nil
}

// Delete removes object id from the database incrementally. The id is
// tombstoned in the store (never reused), removed from the helper
// R-tree, and excised from the UV-index: because removing an object can
// only GROW the UV-cells of the objects whose cr-set contained it,
// exactly those neighbors are re-derived and re-inserted, keeping every
// leaf list a superset of the true overlaps — answers stay exact.
//
// Like Insert, Delete requires external synchronization against
// queries. Each delete adds slack proportional to the re-derived
// neighborhood; Compact (or the CompactSlack watermark) clears it.
func (db *DB) Delete(id int32) error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	return db.deleteLocked(id)
}

// BatchDelete removes many objects in one critical section. It is
// all-or-nothing: every id is validated (known, live, no duplicates)
// before the first deletion, so a failing batch changes nothing. The
// index repair is shared across the batch — one leaf walk strips every
// victim and dependent, dirty pages flush once, and the leaf caches are
// invalidated once, instead of per victim.
func (db *DB) BatchDelete(ids []int32) error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	seen := make(map[int32]bool, len(ids))
	for i, id := range ids {
		if !db.store.Alive(id) {
			return fmt.Errorf("uvdiagram: delete %d: unknown or deleted object %d", i, id)
		}
		if seen[id] {
			return fmt.Errorf("uvdiagram: delete %d: duplicate object %d in batch", i, id)
		}
		seen[id] = true
	}
	if len(ids) == 0 {
		return nil
	}
	ep := db.ep()
	// Tombstone every victim and drop its R-tree entry first, so the
	// dependents' re-derivation sees the final post-batch population.
	for _, id := range ids {
		o := db.store.At(int(id))
		if err := db.store.Delete(id); err != nil {
			return err
		}
		ep.tree.Delete(id, o.Region)
	}
	_, err := ep.index.DeleteLiveBatch(ids, func(a int32) []int32 {
		res := core.DeriveCRObjects(ep.tree, db.store.At(int(a)), db.store.Dense(), db.domain,
			db.bopts.SeedK, db.bopts.SeedSectors, db.bopts.RegionSamples)
		return res.CR
	})
	if err != nil {
		return err
	}
	db.maybeCompact(ep)
	return nil
}

// deleteLocked is Delete with db.wmu held.
func (db *DB) deleteLocked(id int32) error {
	if !db.store.Alive(id) {
		return fmt.Errorf("uvdiagram: unknown or deleted object %d", id)
	}
	o := db.store.At(int(id))
	if err := db.store.Delete(id); err != nil {
		return err
	}
	ep := db.ep()
	ep.tree.Delete(id, o.Region)
	// Re-derivation runs against the post-delete population: the victim
	// is tombstoned in the store and gone from the R-tree, so seeds and
	// pruning never see it.
	_, err := ep.index.DeleteLive(id, func(a int32) []int32 {
		res := core.DeriveCRObjects(ep.tree, db.store.At(int(a)), db.store.Dense(), db.domain,
			db.bopts.SeedK, db.bopts.SeedSectors, db.bopts.RegionSamples)
		return res.CR
	})
	if err != nil {
		return err
	}
	db.maybeCompact(ep)
	return nil
}

// Rebuild reconstructs the UV-index (and the helper R-tree) from
// scratch over the live objects, clearing the slack accumulated by
// Inserts and Deletes. The fresh index is published with one atomic
// epoch swap, so concurrent queries keep answering throughout — they
// see either the old or the new index, never a mixture.
func (db *DB) Rebuild() error { return db.Compact(context.Background()) }

// Compact is Rebuild with a context: the shadow build is skipped if ctx
// is already cancelled when compaction starts (the build itself is one
// uninterruptible pass). Queries are never blocked — they run against
// the old epoch until the atomic swap. Concurrent Inserts and Deletes
// serialize behind the compaction.
func (db *DB) Compact(ctx context.Context) error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	old := db.ep()
	// Shadow build: nothing below mutates the live epoch or the store.
	tree := core.BuildHelperRTree(db.store, db.bopts.Fanout)
	index, stats, err := core.Build(db.store, db.domain, tree, db.bopts)
	if err != nil {
		return err
	}
	db.epoch.Store(&indexEpoch{index: index, tree: tree, built: stats, gen: old.gen + 1})
	return nil
}

// maybeCompact kicks off a background compaction when the armed slack
// watermark is reached. Singleflight: at most one auto-compaction runs
// at a time, and explicit mutations arriving meanwhile simply serialize
// behind it.
func (db *DB) maybeCompact(ep *indexEpoch) {
	if db.bopts.CompactSlack <= 0 || ep.index.Slack() < int64(db.bopts.CompactSlack) {
		return
	}
	if !db.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer db.compacting.Store(false)
		// The build inputs were validated when the objects entered the
		// store, so failure here would indicate a programming error;
		// errors surface on the next explicit Compact call.
		_ = db.Compact(context.Background())
	}()
}

// PossibleKNN returns the IDs of every object with non-zero probability
// of being among the k nearest neighbors of q — the k-NN generalization
// the paper lists as future work (k-th order Voronoi diagrams [30]).
// Retrieval runs on the R-tree: UV-index leaf lists only guarantee
// supersets for k = 1 cells, so the branch-and-prune path generalizes
// while the UV-index stays specialized for PNN.
func (db *DB) PossibleKNN(q Point, k int) ([]int32, error) {
	return db.possibleKNN(db.ep(), q, k, nil)
}

// possibleKNN answers through an optional R-tree leaf cache against one
// pinned epoch. The candidates' distance bounds come straight from the
// leaf entries' bounding circles (identical to the objects' regions),
// so the objects themselves are never materialized.
func (db *DB) possibleKNN(ep *indexEpoch, q Point, k int, cache *rtree.LeafCache) ([]int32, error) {
	if k <= 0 {
		return nil, fmt.Errorf("uvdiagram: PossibleKNN needs k ≥ 1, got %d", k)
	}
	items, _ := ep.tree.KNNCandidatesCached(q, k, cache)
	mins := make([]float64, len(items))
	maxes := make([]float64, len(items))
	for i, it := range items {
		d := q.Dist(it.MBC.C)
		if d > it.MBC.R {
			mins[i] = d - it.MBC.R
		}
		maxes[i] = d + it.MBC.R
	}
	idx := prob.KNNAnswerSetDists(mins, maxes, k)
	out := make([]int32, len(idx))
	for i, j := range idx {
		out[i] = items[j].ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// TopKPNN returns the k objects most likely to be the nearest neighbor
// of q, ordered by descending qualification probability (ties by ID) —
// the top-k probable nearest-neighbor query in the spirit of [29],
// served directly from the UV-index.
func (db *DB) TopKPNN(q Point, k int) ([]Answer, QueryStats, error) {
	answers, st, err := db.PNN(q)
	if err != nil {
		return nil, st, err
	}
	return topKAnswers(answers, k), st, nil
}

// topKAnswers sorts answers by descending probability (ties by ID) and
// truncates to the top k (k ≤ 0 yields an empty result). Shared by the
// sequential and batch top-k paths so their ordering stays bitwise
// identical.
func topKAnswers(answers []Answer, k int) []Answer {
	sort.Slice(answers, func(i, j int) bool {
		if answers[i].Prob != answers[j].Prob {
			return answers[i].Prob > answers[j].Prob
		}
		return answers[i].ID < answers[j].ID
	})
	if k < 0 {
		k = 0
	}
	if k < len(answers) {
		answers = answers[:k]
	}
	return answers
}
