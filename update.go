package uvdiagram

import (
	"fmt"
	"sort"

	"uvdiagram/internal/core"
	"uvdiagram/internal/prob"
	"uvdiagram/internal/rtree"
)

// Insert adds a new uncertain object to a built database — the
// incremental-update extension the paper leaves as future work. The
// object's ID must be the next dense id (db.Len()).
//
// Soundness: a new object only shrinks other objects' UV-cells, and
// index leaf lists are supersets of the true overlaps, so existing
// entries stay valid; the new object is inserted with a freshly derived
// cr-object representation. Repeated inserts accumulate slack in the
// leaf lists (extra false positives, never wrong answers); rebuild with
// Build when query I/O drifts up.
func (db *DB) Insert(o Object) error {
	if int(o.ID) != db.store.Len() {
		return fmt.Errorf("uvdiagram: Insert with ID %d, want next dense id %d", o.ID, db.store.Len())
	}
	if !db.domain.Contains(o.Region.C) {
		return fmt.Errorf("uvdiagram: object center %v outside domain %v", o.Region.C, db.domain)
	}
	if err := db.store.Append(o); err != nil {
		return err
	}
	db.tree.Insert(rtree.Item{ID: o.ID, MBC: o.Region, Ptr: uint64(db.store.PageOf(o.ID))})
	res := core.DeriveCRObjects(db.tree, o, db.store.All(), db.domain,
		db.bopts.SeedK, db.bopts.SeedSectors, db.bopts.RegionSamples)
	return db.index.InsertLive(o.ID, res.CR)
}

// Rebuild reconstructs the UV-index from scratch over the current
// objects, clearing the leaf-list slack accumulated by Inserts. The
// rebuilt index uses the same options as the original build.
//
// Deletions are intentionally not supported incrementally: removing an
// object GROWS every neighboring UV-cell, which would require
// re-deriving and re-inserting every object whose cr-set contains the
// victim; with the paper's densities that is a near-rebuild anyway, so
// the honest operation is Rebuild over the surviving objects.
func (db *DB) Rebuild() error {
	index, stats, err := core.Build(db.store, db.domain, db.tree, db.bopts)
	if err != nil {
		return err
	}
	db.index = index
	db.built = stats
	return nil
}

// PossibleKNN returns the IDs of every object with non-zero probability
// of being among the k nearest neighbors of q — the k-NN generalization
// the paper lists as future work (k-th order Voronoi diagrams [30]).
// Retrieval runs on the R-tree: UV-index leaf lists only guarantee
// supersets for k = 1 cells, so the branch-and-prune path generalizes
// while the UV-index stays specialized for PNN.
func (db *DB) PossibleKNN(q Point, k int) ([]int32, error) {
	return db.possibleKNN(q, k, nil)
}

// possibleKNN answers through an optional R-tree leaf cache. The
// candidates' distance bounds come straight from the leaf entries'
// bounding circles (identical to the objects' regions), so the objects
// themselves are never materialized.
func (db *DB) possibleKNN(q Point, k int, cache *rtree.LeafCache) ([]int32, error) {
	if k <= 0 {
		return nil, fmt.Errorf("uvdiagram: PossibleKNN needs k ≥ 1, got %d", k)
	}
	items, _ := db.tree.KNNCandidatesCached(q, k, cache)
	mins := make([]float64, len(items))
	maxes := make([]float64, len(items))
	for i, it := range items {
		d := q.Dist(it.MBC.C)
		if d > it.MBC.R {
			mins[i] = d - it.MBC.R
		}
		maxes[i] = d + it.MBC.R
	}
	idx := prob.KNNAnswerSetDists(mins, maxes, k)
	out := make([]int32, len(idx))
	for i, j := range idx {
		out[i] = items[j].ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// TopKPNN returns the k objects most likely to be the nearest neighbor
// of q, ordered by descending qualification probability (ties by ID) —
// the top-k probable nearest-neighbor query in the spirit of [29],
// served directly from the UV-index.
func (db *DB) TopKPNN(q Point, k int) ([]Answer, QueryStats, error) {
	answers, st, err := db.PNN(q)
	if err != nil {
		return nil, st, err
	}
	return topKAnswers(answers, k), st, nil
}

// topKAnswers sorts answers by descending probability (ties by ID) and
// truncates to the top k (k ≤ 0 yields an empty result). Shared by the
// sequential and batch top-k paths so their ordering stays bitwise
// identical.
func topKAnswers(answers []Answer, k int) []Answer {
	sort.Slice(answers, func(i, j int) bool {
		if answers[i].Prob != answers[j].Prob {
			return answers[i].Prob > answers[j].Prob
		}
		return answers[i].ID < answers[j].ID
	})
	if k < 0 {
		k = 0
	}
	if k < len(answers) {
		answers = answers[:k]
	}
	return answers
}
