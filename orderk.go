package uvdiagram

import (
	"errors"
	"fmt"
	"io"

	"uvdiagram/internal/core"
	"uvdiagram/internal/prob"
)

// OrderKIndex is an order-k UV-index: an adaptive grid over the ORDER-k
// UV-cells, the regions where each object can be among the k nearest
// neighbors — the k-th order Voronoi generalization ([30]) the paper
// lists as future work. It answers possible-k-NN queries exactly with
// one point descent, the k-NN analogue of the UV-index PNN path.
type OrderKIndex struct {
	db       *DB
	inner    *core.UVIndex
	k        int
	built    BuildStats
	hasBuilt bool       // false for loaded indexes: the stream carries no build stats
	batch    batchState // leaf cache reused across Batch* calls
	// snap pins the database state the order-k grid was built over,
	// across every shard: a Compact/CompactShard/Rebuild (epoch swap)
	// or an incremental Insert/Delete (shard-index mutation) makes this
	// grid stale — its leaf lists could miss new objects or still list
	// deleted ones — so queries refuse to answer rather than be
	// silently wrong.
	snap genSnap
}

// NewOrderKIndex builds an order-k index over the database's objects
// (k ≥ 1; k = 1 reproduces the standard UV-diagram organization). The
// index is independent of the DB's primary UV-index and shares its
// object store and helper R-tree.
//
// The index is a SNAPSHOT: after any Insert, Delete, Rebuild or
// Compact on the database, its queries return an error and it must be
// rebuilt with NewOrderKIndex (DB.PossibleKNN/BatchOrderK always track
// the live population and need no rebuild).
func (db *DB) NewOrderKIndex(k int) (*OrderKIndex, error) {
	if k < 1 {
		return nil, fmt.Errorf("uvdiagram: order-k index needs k ≥ 1, got %d", k)
	}
	// The shared helper R-tree covers the full live population; the
	// order-k grid itself spans the whole domain and is not sharded. The
	// build reads the shared tree's pages, so it pins the reclaim epoch
	// (the finished grid owns its pages and its queries need no pin).
	t := db.egc.Pin()
	defer db.egc.Unpin(t)
	ix, stats, err := core.BuildOrderK(db.store, db.domain, db.rtree(), k, db.bopts)
	if err != nil {
		return nil, err
	}
	return &OrderKIndex{db: db, inner: ix, k: k, built: stats, hasBuilt: true, snap: db.genSnap()}, nil
}

// ErrStaleSnapshot is the sentinel matched by errors.Is when a
// snapshot index (an order-k grid) refuses a query because the
// database has mutated since it was built. The concrete error is a
// *StaleSnapshotError carrying the order.
var ErrStaleSnapshot = errors.New("uvdiagram: snapshot index is stale")

// StaleSnapshotError reports a query against an order-k snapshot whose
// database has since mutated (Insert, Delete, Rebuild or Compact); the
// grid's leaf lists could miss new objects or still list deleted ones,
// so queries refuse to answer rather than be silently wrong. It
// matches ErrStaleSnapshot under errors.Is.
type StaleSnapshotError struct {
	K int // order of the stale index
}

// Error implements error.
func (e *StaleSnapshotError) Error() string {
	return fmt.Sprintf("uvdiagram: order-%d index is stale (database mutated since it was built); rebuild it with NewOrderKIndex", e.K)
}

// Is reports target == ErrStaleSnapshot, making the sentinel checkable
// through errors.Is without exposing the concrete type.
func (e *StaleSnapshotError) Is(target error) bool { return target == ErrStaleSnapshot }

// fresh errors when the database has mutated since the order-k grid
// was built.
func (ix *OrderKIndex) fresh() error {
	if ix.db.genSnap() != ix.snap {
		return &StaleSnapshotError{K: ix.k}
	}
	return nil
}

// K returns the order of the index.
func (ix *OrderKIndex) K() int { return ix.k }

// BuildStats returns the construction statistics of the order-k index.
// ok is false for an index re-opened with LoadOrderKIndex: the saved
// stream does not carry build stats, and reporting zeros would read as
// an (impossibly) free construction.
func (ix *OrderKIndex) BuildStats() (stats BuildStats, ok bool) { return ix.built, ix.hasBuilt }

// IndexStats returns the shape of the order-k grid.
func (ix *OrderKIndex) IndexStats() core.IndexStats { return ix.inner.Stats() }

// PossibleKNN returns the IDs of every object with non-zero probability
// of being among the k nearest neighbors of q, sorted ascending,
// answered exactly from the order-k grid. It errors if the database has
// mutated since the grid was built (see NewOrderKIndex).
func (ix *OrderKIndex) PossibleKNN(q Point) ([]int32, QueryStats, error) {
	if err := ix.fresh(); err != nil {
		return nil, QueryStats{}, err
	}
	return ix.inner.PossibleKNN(q)
}

// Save serializes the order-k index structure (the stream carries the
// cell order; reload it with LoadOrderKIndex against the same DB).
func (ix *OrderKIndex) Save(w io.Writer) error { return ix.inner.Save(w) }

// LoadOrderKIndex re-opens an order-k index previously written with
// Save, against the database whose objects it was built over. Like
// NewOrderKIndex, the loaded grid snapshots the database's CURRENT
// state and goes stale on the next mutation.
func LoadOrderKIndex(r io.Reader, db *DB) (*OrderKIndex, error) {
	inner, err := core.LoadUVIndex(r, db.store)
	if err != nil {
		return nil, err
	}
	if inner.OrderK() < 1 {
		return nil, fmt.Errorf("uvdiagram: loaded index has invalid order %d", inner.OrderK())
	}
	// core.LoadUVIndex already validates the stream against the store's
	// object population (count and id range); the domain is the
	// remaining degree of freedom. A grid built over a different domain
	// would route every descent through the wrong quadrant geometry and
	// answer queries silently wrong, so refuse it here.
	if d := inner.Domain(); d != db.domain {
		return nil, fmt.Errorf("uvdiagram: loaded order-%d index was built over domain [%g,%g]x[%g,%g], database domain is [%g,%g]x[%g,%g]",
			inner.OrderK(), d.Min.X, d.Max.X, d.Min.Y, d.Max.Y,
			db.domain.Min.X, db.domain.Max.X, db.domain.Min.Y, db.domain.Max.Y)
	}
	return &OrderKIndex{db: db, inner: inner, k: inner.OrderK(), snap: db.genSnap()}, nil
}

// KNNProbs returns possible-k-NN answers with Monte-Carlo rank
// probabilities: for each answer object, the estimated probability that
// it is among the k nearest neighbors of q. Estimates across the full
// object set sum to exactly k; only answers (non-zero possibility) are
// returned.
func (ix *OrderKIndex) KNNProbs(q Point, trials int, seed int64) ([]Answer, QueryStats, error) {
	if err := ix.fresh(); err != nil {
		return nil, QueryStats{}, err
	}
	ids, st, err := ix.inner.PossibleKNN(q)
	if err != nil {
		return nil, st, err
	}
	if trials <= 0 {
		trials = 10000
	}
	// All() is live-only, so the Monte-Carlo ranking never competes
	// against tombstoned objects; map positional estimates back by ID.
	objs := ix.db.store.All()
	ps := prob.KNNProbsMC(objs, q, ix.k, trials, seed)
	byID := make(map[int32]float64, len(objs))
	for i := range objs {
		byID[objs[i].ID] = ps[i]
	}
	answers := make([]Answer, 0, len(ids))
	for _, id := range ids {
		answers = append(answers, Answer{ID: id, Prob: byID[id]})
	}
	return answers, st, nil
}
