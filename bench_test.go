package uvdiagram_test

// One benchmark per table/figure of the paper's evaluation (Section
// VI). These run at reduced scale so `go test -bench=. -benchmem`
// finishes quickly; cmd/uvbench regenerates the full sweeps (use
// `-scale paper` for Section VI-A's exact sizes). Custom metrics carry
// the figures' units: index I/Os per query, pruning ratios, component
// milliseconds.

import (
	"fmt"
	"sync"
	"testing"

	"uvdiagram"
	"uvdiagram/internal/core"
	"uvdiagram/internal/datagen"
	"uvdiagram/internal/geom"
	"uvdiagram/internal/pager"
	"uvdiagram/internal/uncertain"
)

const benchSide = 10000.0

type fixture struct {
	db      *uvdiagram.DB
	queries []uvdiagram.Point
}

var (
	fixMu sync.Mutex
	fixes = map[string]*fixture{}
)

// getFixture builds (once) a DB over a uniform dataset.
func getFixture(b *testing.B, n int, diameter float64) *fixture {
	b.Helper()
	key := fmt.Sprintf("u-%d-%g", n, diameter)
	fixMu.Lock()
	defer fixMu.Unlock()
	if f, ok := fixes[key]; ok {
		return f
	}
	cfg := datagen.Config{N: n, Side: benchSide, Diameter: diameter, Seed: 7}
	objs := datagen.Uniform(cfg)
	db, err := uvdiagram.Build(objs, cfg.Domain(), &uvdiagram.Options{SeedK: 100})
	if err != nil {
		b.Fatal(err)
	}
	f := &fixture{db: db, queries: datagen.Queries(256, benchSide, 13)}
	fixes[key] = f
	return f
}

// ---------------------------------------------------------------------
// Figure 6(a): PNN query time vs |O| — UV-index vs R-tree.

func Benchmark_Fig6a_PNN_UVIndex(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			f := getFixture(b, n, datagen.DefaultDiameter)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := f.db.PNN(f.queries[i%len(f.queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func Benchmark_Fig6a_PNN_RTree(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			f := getFixture(b, n, datagen.DefaultDiameter)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := f.db.PNNViaRTree(f.queries[i%len(f.queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Figure 6(b): PNN index I/O vs |O| (reported as index-ios/op).

func Benchmark_Fig6b_IO(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000} {
		b.Run(fmt.Sprintf("UVIndex/N=%d", n), func(b *testing.B) {
			f := getFixture(b, n, datagen.DefaultDiameter)
			var ios int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err := f.db.PNN(f.queries[i%len(f.queries)])
				if err != nil {
					b.Fatal(err)
				}
				ios += st.IndexIOs
			}
			b.ReportMetric(float64(ios)/float64(b.N), "index-ios/op")
		})
		b.Run(fmt.Sprintf("RTree/N=%d", n), func(b *testing.B) {
			f := getFixture(b, n, datagen.DefaultDiameter)
			var ios int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err := f.db.PNNViaRTree(f.queries[i%len(f.queries)])
				if err != nil {
					b.Fatal(err)
				}
				ios += st.IndexIOs
			}
			b.ReportMetric(float64(ios)/float64(b.N), "index-ios/op")
		})
	}
}

// ---------------------------------------------------------------------
// Figure 6(c): query time components (traverse / retrieve / probability)
// reported as custom ms/op metrics.

func Benchmark_Fig6c_Components(b *testing.B) {
	runComponents := func(b *testing.B, via func(uvdiagram.Point) (uvdiagram.QueryStats, error), f *fixture) {
		var trav, retr, prob float64
		for i := 0; i < b.N; i++ {
			st, err := via(f.queries[i%len(f.queries)])
			if err != nil {
				b.Fatal(err)
			}
			trav += st.TraverseDur.Seconds() * 1000
			retr += st.RetrieveDur.Seconds() * 1000
			prob += st.ProbDur.Seconds() * 1000
		}
		b.ReportMetric(trav/float64(b.N), "traverse-ms/op")
		b.ReportMetric(retr/float64(b.N), "retrieve-ms/op")
		b.ReportMetric(prob/float64(b.N), "qp-ms/op")
	}
	b.Run("UVIndex", func(b *testing.B) {
		f := getFixture(b, 4000, datagen.DefaultDiameter)
		b.ResetTimer()
		runComponents(b, func(q uvdiagram.Point) (uvdiagram.QueryStats, error) {
			_, st, err := f.db.PNN(q)
			return st, err
		}, f)
	})
	b.Run("RTree", func(b *testing.B) {
		f := getFixture(b, 4000, datagen.DefaultDiameter)
		b.ResetTimer()
		runComponents(b, func(q uvdiagram.Point) (uvdiagram.QueryStats, error) {
			_, st, err := f.db.PNNViaRTree(q)
			return st, err
		}, f)
	})
}

// ---------------------------------------------------------------------
// Figure 6(d): query time vs uncertainty region size.

func Benchmark_Fig6d_UncertaintySize(b *testing.B) {
	for _, dia := range []float64{20, 60, 100} {
		b.Run(fmt.Sprintf("UVIndex/D=%.0f", dia), func(b *testing.B) {
			f := getFixture(b, 4000, dia)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := f.db.PNN(f.queries[i%len(f.queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("RTree/D=%.0f", dia), func(b *testing.B) {
			f := getFixture(b, 4000, dia)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := f.db.PNNViaRTree(f.queries[i%len(f.queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Figure 7(a)–(e): index construction. Each op is one full build; the
// pruning ratios of Figure 7(b) and the phase breakdowns of 7(d)/7(e)
// are attached as custom metrics.

func benchBuild(b *testing.B, n int, strategy core.Strategy) {
	cfg := datagen.Config{N: n, Side: benchSide, Diameter: datagen.DefaultDiameter, Seed: 7}
	objs := datagen.Uniform(cfg)
	store, err := uncertain.NewStore(objs, pager.New(uncertain.ObjectPageBytes))
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultBuildOptions()
	opts.Strategy = strategy
	opts.SeedK = 100
	tree := core.BuildHelperRTree(store, opts.Fanout)
	b.ReportAllocs()
	b.ResetTimer()
	var last core.BuildStats
	for i := 0; i < b.N; i++ {
		_, stats, err := core.Build(store, cfg.Domain(), tree, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = stats
	}
	b.StopTimer()
	if strategy != core.StrategyBasic {
		b.ReportMetric(last.IPruneRatio(), "i-prune-ratio")
		b.ReportMetric(last.CPruneRatio(), "c-prune-ratio")
		b.ReportMetric((last.SeedDur+last.PruneDur).Seconds()*1000, "prune-ms")
	}
	b.ReportMetric(last.RefineDur.Seconds()*1000, "refine-ms")
	b.ReportMetric(last.IndexDur.Seconds()*1000, "index-ms")
}

func Benchmark_Fig7a_Construction_Basic(b *testing.B) {
	for _, n := range []int{200, 400} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) { benchBuild(b, n, core.StrategyBasic) })
	}
}

func Benchmark_Fig7a_Construction_ICR(b *testing.B) {
	for _, n := range []int{1000, 2000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) { benchBuild(b, n, core.StrategyICR) })
	}
}

func Benchmark_Fig7a_Construction_IC(b *testing.B) {
	for _, n := range []int{1000, 2000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) { benchBuild(b, n, core.StrategyIC) })
	}
}

// ---------------------------------------------------------------------
// Figure 7(f): construction time vs uncertainty size (ICR vs IC).

func Benchmark_Fig7f_ConstructionVsUncertainty(b *testing.B) {
	for _, strat := range []core.Strategy{core.StrategyICR, core.StrategyIC} {
		for _, dia := range []float64{20, 100} {
			b.Run(fmt.Sprintf("%v/D=%.0f", strat, dia), func(b *testing.B) {
				cfg := datagen.Config{N: 1500, Side: benchSide, Diameter: dia, Seed: 7}
				objs := datagen.Uniform(cfg)
				store, err := uncertain.NewStore(objs, pager.New(uncertain.ObjectPageBytes))
				if err != nil {
					b.Fatal(err)
				}
				opts := core.DefaultBuildOptions()
				opts.Strategy = strat
				opts.SeedK = 100
				tree := core.BuildHelperRTree(store, opts.Fanout)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := core.Build(store, cfg.Domain(), tree, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------
// Figure 7(g): construction time under center skew.

func Benchmark_Fig7g_ConstructionVsSkew(b *testing.B) {
	for _, sigma := range []float64{1500, 3500} {
		b.Run(fmt.Sprintf("Sigma=%.0f", sigma), func(b *testing.B) {
			cfg := datagen.Config{N: 1500, Side: benchSide, Diameter: datagen.DefaultDiameter, Seed: 7}
			objs := datagen.Skewed(cfg, sigma)
			store, err := uncertain.NewStore(objs, pager.New(uncertain.ObjectPageBytes))
			if err != nil {
				b.Fatal(err)
			}
			opts := core.DefaultBuildOptions()
			opts.SeedK = 100
			tree := core.BuildHelperRTree(store, opts.Fanout)
			b.ResetTimer()
			var last core.BuildStats
			for i := 0; i < b.N; i++ {
				_, stats, err := core.Build(store, cfg.Domain(), tree, opts)
				if err != nil {
					b.Fatal(err)
				}
				last = stats
			}
			b.StopTimer()
			b.ReportMetric(last.AvgCR(), "avg-cr-objects")
		})
	}
}

// ---------------------------------------------------------------------
// Figure 7(h): UV-partition queries vs range size.

func Benchmark_Fig7h_PartitionQuery(b *testing.B) {
	f := getFixture(b, 4000, datagen.DefaultDiameter)
	for _, size := range []float64{100, 300, 500} {
		b.Run(fmt.Sprintf("Range=%.0f", size), func(b *testing.B) {
			var parts int
			for i := 0; i < b.N; i++ {
				q := f.queries[i%len(f.queries)]
				r := geom.NewRect(
					clamp(q.X-size/2, 0, benchSide), clamp(q.Y-size/2, 0, benchSide),
					clamp(q.X+size/2, 0, benchSide), clamp(q.Y+size/2, 0, benchSide))
				parts += len(f.db.Partitions(r))
			}
			b.ReportMetric(float64(parts)/float64(b.N), "partitions/op")
		})
	}
}

// ---------------------------------------------------------------------
// Table II: query performance on the simulated real datasets.

func Benchmark_Table2_RealDatasets(b *testing.B) {
	for _, kind := range []datagen.RealKind{datagen.Utility, datagen.Roads, datagen.RRLines} {
		objs, err := datagen.Real(kind, 0.1, 7)
		if err != nil {
			b.Fatal(err)
		}
		db, err := uvdiagram.Build(objs, uvdiagram.SquareDomain(datagen.DefaultSide), &uvdiagram.Options{SeedK: 100})
		if err != nil {
			b.Fatal(err)
		}
		queries := datagen.Queries(256, datagen.DefaultSide, 17)
		b.Run(fmt.Sprintf("UVIndex/%s", kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := db.PNN(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("RTree/%s", kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := db.PNNViaRTree(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Section VI-B.1: Tθ sensitivity (build once per Tθ, bench queries).

func Benchmark_Sensitivity_SplitTheta(b *testing.B) {
	cfg := datagen.Config{N: 4000, Side: benchSide, Diameter: datagen.DefaultDiameter, Seed: 7}
	objs := datagen.Uniform(cfg)
	queries := datagen.Queries(256, benchSide, 19)
	for _, theta := range []float64{0.2, 0.6, 1.0} {
		b.Run(fmt.Sprintf("Theta=%.1f", theta), func(b *testing.B) {
			db, err := uvdiagram.Build(objs, cfg.Domain(), &uvdiagram.Options{SeedK: 100, SplitTheta: theta})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(db.IndexStats().NonLeaf), "non-leaf-nodes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := db.PNN(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
