// Package uvdiagram is a library for nearest-neighbor search over
// uncertain spatial data, reproducing "UV-Diagram: A Voronoi Diagram
// for Uncertain Data" (Cheng, Xie, Yiu, Chen, Sun — ICDE 2010).
//
// An uncertain object is a circular uncertainty region plus a radial
// probability histogram. A Probabilistic Nearest-Neighbor query (PNN)
// at a point q returns every object with non-zero probability of being
// the nearest neighbor of q together with those probabilities.
//
// The central structure is the UV-diagram: the plane decomposed by
// UV-cells, where the UV-cell of an object is exactly the region in
// which it can be a nearest neighbor. Cells are bounded by hyperbolic
// UV-edges and are too expensive to materialize, so the library indexes
// them by their candidate reference objects (cr-objects) in an adaptive
// quad-tree, the UV-index, built in polynomial time.
//
// Basic usage:
//
//	objs := []uvdiagram.Object{ ... }
//	db, err := uvdiagram.Build(objs, uvdiagram.SquareDomain(10000), nil)
//	answers, stats, err := db.PNN(uvdiagram.Pt(4021, 977))
//
// Each answer carries an object ID and its qualification probability.
// The DB also serves the nearest-neighbor pattern queries of the paper
// (UV-cell extent retrieval and UV-partition density retrieval) and an
// R-tree branch-and-prune baseline for comparison.
//
// Beyond the paper's evaluation, the package implements its stated
// future-work directions: probabilistic reverse nearest-neighbor
// queries (RNN, PossibleRNN, PossibleRNNUncertain), order-k UV-diagrams
// and possible-k-NN (NewOrderKIndex, PossibleKNN), continuous queries
// for moving clients (NewContinuousPNN), full dynamic updates
// (incremental Insert and Delete with non-blocking background
// compaction — Compact swaps a freshly built index in atomically, so
// queries are never paused by maintenance), persistence (Save/Load),
// and a full three-dimensional UV-diagram (Build3/DB3).
//
// For streamed workloads the batch engine answers many points per call
// with a worker pool and shared leaf-page caches: BatchNN, BatchOrderK,
// BatchTopKPNN and BatchThresholdNN return results identical to the
// equivalent sequence of single-point queries. A pipelined TCP server
// and client for a built database live in internal/server with the
// cmd/uvserver and cmd/uvclient front ends; see README.md for the
// protocol and its batch opcodes.
//
// With Options.Shards > 1 the engine partitions the domain into a grid
// of spatial shards, each owning an independent sub-grid UV-index,
// epoch pointer, write mutex and slack counter (see shard.go). Point
// queries route to the owning shard lock-free; builds parallelize
// across shards; compaction becomes per-shard, bounding maintenance
// churn by shard size — and compactions of disjoint shards run truly in
// parallel under the two-level locking scheme. Where the grid cuts the
// domain is a pluggable LayoutStrategy (equal strips by default,
// weighted-median quantiles for skewed data), and DB.Reshard re-cuts a
// live database online, publishing the whole new layout with one atomic
// pointer swap. Answers are identical to the single-shard engine bit
// for bit, whatever the layout.
package uvdiagram

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"uvdiagram/internal/core"
	"uvdiagram/internal/epoch"
	"uvdiagram/internal/geom"
	"uvdiagram/internal/pager"
	"uvdiagram/internal/rtree"
	"uvdiagram/internal/uncertain"
)

// Re-exported core types. The aliases make the public API self-
// contained without duplicating the implementations.
type (
	// Point is a location in the plane.
	Point = geom.Point
	// Rect is an axis-aligned rectangle (domains, query ranges).
	Rect = geom.Rect
	// Circle is a disk (uncertainty regions).
	Circle = geom.Circle
	// Object is an uncertain object: a circular uncertainty region and
	// a radial histogram pdf.
	Object = uncertain.Object
	// PDF is a radial probability histogram over the unit disk.
	PDF = uncertain.HistogramPDF
	// Answer is a PNN result: object ID and qualification probability.
	Answer = core.Answer
	// QueryStats carries per-query component timings and I/O counts.
	QueryStats = core.QueryStats
	// BuildStats carries construction timings, pruning ratios and index
	// shape.
	BuildStats = core.BuildStats
	// Partition is a UV-partition query result: a region with its
	// nearest-neighbor candidate count and density.
	Partition = core.Partition
	// Strategy selects the index construction pipeline.
	Strategy = core.Strategy
)

// Construction strategies (Section VI of the paper).
const (
	// IC: I- and C-pruning, then index cr-objects directly (fastest;
	// the paper's recommendation and the default).
	IC = core.StrategyIC
	// ICR: like IC but refines cr-objects to exact r-objects first.
	ICR = core.StrategyICR
	// Basic: exact UV-cells against all objects, no pruning (only
	// sensible for small datasets; the paper's 97-hour baseline).
	Basic = core.StrategyBasic
)

// Pt returns the point (x, y).
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// SquareDomain returns the square domain [0,side]².
func SquareDomain(side float64) Rect { return geom.Square(side) }

// NewObject builds an uncertain object with a circular uncertainty
// region centered at (x, y) with the given radius. A nil pdf defaults
// to the uniform distribution; use GaussianPDF() for the paper's
// default.
func NewObject(id int32, x, y, radius float64, pdf *PDF) Object {
	return uncertain.New(id, Circle{C: Pt(x, y), R: radius}, pdf)
}

// NewObjectFromPolygon builds an uncertain object from a non-circular
// uncertainty region: the polygon is replaced by its minimum enclosing
// circle, the conversion of Section III-C.
func NewObjectFromPolygon(id int32, vertices []Point, pdf *PDF) (Object, error) {
	return uncertain.FromPolygon(id, vertices, pdf)
}

// GaussianPDF returns the paper's default uncertainty pdf: 20 histogram
// bars of a circular Gaussian with σ = diameter/6.
func GaussianPDF() *PDF { return uncertain.PaperGaussian() }

// UniformPDF returns a uniform pdf over the uncertainty region with the
// paper's 20 histogram bars.
func UniformPDF() *PDF { return uncertain.Uniform(uncertain.DefaultBins) }

// Options tune index construction; zero values select the paper's
// defaults (M=4000 non-leaf nodes, Tθ=1, 4 KB pages, k=300 seed
// candidates in 8 sectors, R-tree fanout 100, strategy IC).
type Options struct {
	Strategy    Strategy
	MaxNonLeaf  int     // M
	SplitTheta  float64 // Tθ
	PageSize    int
	SeedK       int
	SeedSectors int
	Fanout      int
	// CellSamples is the angular resolution of exact-cell extraction
	// (used by ICR and Basic).
	CellSamples int
	// RegionSamples is the angular resolution of the pruning bounds.
	RegionSamples int
	// Workers parallelizes per-object derivation during Build; results
	// are identical to a sequential build (0/1 = sequential).
	Workers int
	// CompactSlack, when positive, arms automatic background
	// compaction: once a shard's accumulated insert/delete slack —
	// counted in leaf-list ENTRIES touched, so the watermark is
	// scale-free — reaches this value, the DB rebuilds that shard
	// off-thread and swaps it in atomically (see Compact and
	// CompactShard; with one shard this is a whole-index rebuild). 0
	// disables auto-compaction.
	CompactSlack int
	// Shards partitions the domain into a grid of spatial shards, each
	// with its own sub-grid UV-index, epoch pointer, write mutex and
	// slack counter. Point queries route to the owning shard; builds
	// parallelize across shards; compaction is per-shard. 0 or 1 keeps
	// the single-shard engine. Answers are independent of the shard
	// count.
	Shards int
	// Layout picks where the shard grid cuts the domain: nil or
	// EqualStrips{} for fixed equal-area strips, WeightedMedian{} for
	// quantile cuts of the object-center distribution (skewed data).
	// Reshard re-cuts a live database with an adaptive strategy at any
	// time. The layout never affects answers, only load balance.
	Layout LayoutStrategy
	// Pager selects the page-store backend Open uses for a version-5
	// page-image snapshot: "mmap" (or empty, the default) maps the file
	// read-only and serves zero-copy page reads off the mapping — the
	// out-of-core mode; "heap" copies the page images into in-heap
	// pagers and closes the file. Build and Load ignore it (they are
	// always in-heap). Answers are identical either way.
	Pager string
	// Maintain, when non-nil, attaches a self-driving maintenance
	// controller to the database as soon as it is built or loaded: a
	// background loop that samples LoadImbalance and reshards on
	// sustained skew with two-threshold hysteresis, cooldown and
	// backoff (see MaintainOptions; &MaintainOptions{} selects all
	// defaults). Stop it via DB.Maintainer().Stop(). Nil means no
	// controller — maintenance stays operator-driven.
	Maintain *MaintainOptions
}

func (o *Options) shardCount() (int, error) {
	if o == nil {
		return 1, nil
	}
	return validateShards(o.Shards)
}

// Pager backend names (Options.Pager / DB.PagerMode).
const (
	pagerModeHeap = "heap"
	pagerModeMmap = "mmap"
)

func (o *Options) pagerMode() (string, error) {
	if o == nil || o.Pager == "" {
		return pagerModeMmap, nil
	}
	switch o.Pager {
	case pagerModeHeap, pagerModeMmap:
		return o.Pager, nil
	default:
		return "", fmt.Errorf("uvdiagram: unknown pager backend %q (want %q or %q)",
			o.Pager, pagerModeHeap, pagerModeMmap)
	}
}

func (o *Options) layout() LayoutStrategy {
	if o == nil || o.Layout == nil {
		return EqualStrips{}
	}
	return o.Layout
}

func (o *Options) toBuildOptions() core.BuildOptions {
	b := core.DefaultBuildOptions()
	if o == nil {
		return b
	}
	b.Strategy = o.Strategy
	if o.MaxNonLeaf > 0 {
		b.Index.M = o.MaxNonLeaf
	}
	if o.SplitTheta > 0 {
		b.Index.SplitTheta = o.SplitTheta
	}
	if o.PageSize > 0 {
		b.Index.PageSize = o.PageSize
	}
	if o.SeedK > 0 {
		b.SeedK = o.SeedK
	}
	if o.SeedSectors > 0 {
		b.SeedSectors = o.SeedSectors
	}
	if o.Fanout > 0 {
		b.Fanout = o.Fanout
	}
	if o.CellSamples > 0 {
		b.CellSamples = o.CellSamples
	}
	if o.RegionSamples > 0 {
		b.RegionSamples = o.RegionSamples
	}
	if o.Workers > 0 {
		b.Workers = o.Workers
	}
	if o.CompactSlack > 0 {
		b.CompactSlack = o.CompactSlack
	}
	return b
}

// indexEpoch is one immutable-by-swap generation of a shard's index
// state: the shard's sub-grid UV-index. Queries load the owning shard's
// current epoch with one atomic pointer read and use it for their whole
// execution; Rebuild, Compact, CompactShard and Reshard construct fresh
// epochs off to the side and publish each with one atomic store, so a
// query never observes a torn (half-swapped) index and is never blocked
// by a rebuild (RCU-style). The helper R-tree is NOT part of the epoch:
// it always covers the full live population whatever the shard, so the
// DB keeps one shared tree behind its own atomic pointer.
//
// Incremental Insert/Delete mutate the CURRENT epochs copy-on-write
// (bumping gen via each index's own mutation counter); the leaf-table
// swap is atomic and retired pages outlive in-flight readers, so
// queries need no synchronization against them either.
type indexEpoch struct {
	index *core.UVIndex
	// gen numbers the epoch: it increases by one at every Rebuild /
	// Compact / CompactShard swap of this shard, letting long-lived
	// sessions (ContinuousPNN) detect that the index they captured has
	// been replaced.
	gen uint64
}

// DB is a built UV-diagram database: one or more spatially sharded
// UV-indexes, the object store, the engine-wide constraint registry and
// the shared helper R-tree (also the comparison baseline).
//
// # Locking
//
// Mutations use a two-level scheme:
//
//   - Level 1, the store-level lock (smu): guards the object store and
//     dense-id allocation, the constraint registry and the shared
//     helper R-tree. Insert/Delete/BatchDelete and the full-rebuild
//     paths (Rebuild, Compact, Reshard) hold it EXCLUSIVELY;
//     CompactShard/CompactAll hold it SHARED — they only read store and
//     registry — which is what lets compactions of disjoint shards
//     overlap in wall-clock.
//   - Level 2, the per-shard write mutex (shard.wmu): guards one
//     shard's leaf structure and epoch pointer. Insert/Delete take only
//     the mutexes of the shards the mutated cells actually reach (in
//     ascending shard order); CompactShard takes its one shard's.
//
// Lock order is always smu before shard mutexes, shard mutexes in
// ascending index order, and never smu while holding a shard mutex.
//
// Queries take NO locks against ANY mutation — including Insert and
// Delete. Every mutated structure is copy-on-write behind an atomic
// pointer (the store's population view, the helper R-tree's header,
// each shard index's tree snapshot), so the locks above only serialize
// WRITERS against each other: smu and the shard mutexes form a
// writer-writer hierarchy, and a reader never blocks on (or is blocked
// by) any of them. Readers see each mutation atomically through a
// fixed publication order — on delete the R-tree shrinks first, then
// the leaf tables publish per shard, then the store tombstones; on
// insert the store appends first, then the R-tree and leaf tables —
// and a query that snapshots the store view BEFORE loading a tree
// (see core's pnn) observes exactly the pre- or post-mutation answer,
// never a hybrid. Replaced index pages are reclaimed through the DB's
// epoch domain (egc): queries pin it for their page reads, and a page
// slot is reused only after every reader pinned before the swap has
// finished.
type DB struct {
	store  *uncertain.Store
	domain Rect
	bopts  core.BuildOptions
	// strategy is the configured layout strategy (Options.Layout);
	// Build uses it for the initial cuts.
	strategy LayoutStrategy
	// cr is the engine-wide constraint registry shared by every shard's
	// index (see core.CRState). Guarded by smu: mutators exclusive,
	// shard compactions shared.
	cr *core.CRState
	// topo is the incremental topology registry riding alongside cr: per
	// object, which cr-set members actually shape its UV-cell boundary
	// (core.Topology). It decides which delete dependents re-derive and
	// which keep their stripped representation. Guarded by smu held
	// exclusively; rebuilt fresh whenever cr is (Compact/Reshard).
	topo *core.Topology
	// egc is the epoch-based reclamation domain shared by the helper
	// R-tree and every shard index: queries pin it around page reads,
	// COW mutations retire replaced pages into it, and a page slot is
	// reused only once every reader pinned before the swap finished.
	egc *epoch.Domain
	// mstats counts mutation-path work (see MutationStats).
	mstats mutationCounters
	// vacuumed accumulates the bytes reclaimed by DB.Vacuum (for the
	// metrics layer's pager.vacuumed_bytes gauge).
	vacuumed atomic.Int64
	// tree is the shared helper R-tree over the full live population
	// (pruning, k-NN and RNN retrieval are global no matter which shard
	// runs them). Queries load it atomically; Insert/Delete mutate it
	// in place under smu; Compact/Reshard swap in a fresh bulk-load.
	tree atomic.Pointer[rtree.Tree]
	// layout is the current shard layout (cuts + shard states), swapped
	// as a whole by Reshard — the single-pointer publication that keeps
	// queries from ever seeing a torn layout.
	layout atomic.Pointer[shardLayout]
	// built snapshots the statistics of the last full construction pass
	// (Build, Load, Rebuild/Compact/Reshard); per-shard compaction
	// refreshes only the aggregated index shape.
	built atomic.Pointer[BuildStats]
	// smu is the store-level lock of the two-level scheme (see the
	// locking notes above).
	smu   sync.RWMutex
	batch batchState // per-shard leaf caches reused across Batch* calls
	// dscratch is the derivation scratch of the live mutation paths
	// (Insert, Delete re-derivation). Guarded by smu held exclusively —
	// exactly the sections that derive — so it is never shared.
	dscratch *core.DeriveScratch
	// compactHook, when set (tests only, before any concurrency
	// starts), is called by CompactShard after both of its locks are
	// held and before the shadow build — the observation point the
	// wall-clock-overlap test uses to prove disjoint compactions run
	// inside their critical sections simultaneously.
	compactHook func(shard int)
	// maintObs is the maintenance-event observer (DB.OnMaintenance),
	// fired synchronously from the Compact/CompactShard/Reshard paths.
	maintObs atomic.Pointer[func(MaintEvent)]
	// maint is the attached self-driving maintenance controller, nil
	// when none is running (see StartMaintainer).
	maint atomic.Pointer[Maintainer]
	// closer releases the snapshot backing (the file mapping) of a
	// database opened with Open in mmap mode; nil otherwise. See Close.
	closer func() error
	// pagerMode records which page-store backend serves this database:
	// "heap" for Build/Load (and heap-mode Open), "mmap" for an
	// mmap-backed Open.
	pagerMode string
}

// PagerMode reports which page-store backend serves the database:
// "heap" (Build, Load, heap-mode Open) or "mmap" (out-of-core Open).
func (db *DB) PagerMode() string {
	if db.pagerMode == "" {
		return pagerModeHeap
	}
	return db.pagerMode
}

// Close stops the attached maintainer (if any) and releases the
// snapshot file mapping of an mmap-backed database. It must only be
// called once no queries or mutations are in flight: page reads served
// off the mapping fault after it is unmapped. Idempotent; a no-op
// (beyond stopping the maintainer) for in-heap databases.
func (db *DB) Close() error {
	if m := db.Maintainer(); m != nil {
		m.Stop()
	}
	if c := db.closer; c != nil {
		db.closer = nil
		return c()
	}
	return nil
}

// Build indexes the objects (dense IDs 0..n-1 required) over the given
// domain. opts may be nil for the paper's defaults. With Options.Shards
// > 1, the expensive per-object derivation runs once (parallelized by
// Options.Workers) and the shard sub-grids are then built concurrently,
// one goroutine per shard, all feeding off one shared constraint
// registry.
func Build(objects []Object, domain Rect, opts *Options) (*DB, error) {
	if len(objects) == 0 {
		return nil, fmt.Errorf("uvdiagram: no objects to index")
	}
	nshards, err := opts.shardCount()
	if err != nil {
		return nil, err
	}
	store, err := uncertain.NewStore(objects, pager.New(uncertain.ObjectPageBytes))
	if err != nil {
		return nil, err
	}
	bopts := opts.toBuildOptions()
	db := &DB{store: store, domain: domain, bopts: bopts, strategy: opts.layout(), egc: epoch.NewDomain()}
	gx, gy := shardGrid(nshards)
	var centers []Point
	if _, equal := db.strategy.(EqualStrips); !equal {
		centers = db.liveCenters() // equal strips never read the centers
	}
	xs, ys := db.strategy.Cuts(domain, gx, gy, centers)
	lo := newShardLayout(0, gx, gy, xs, ys)
	tree := core.BuildHelperRTree(store, bopts.Fanout)
	tree.SetReclaimDomain(db.egc)
	db.tree.Store(tree)
	t0 := time.Now()
	crSets, stats, err := core.DeriveCRSets(store, domain, tree, bopts)
	if err != nil {
		return nil, err
	}
	db.cr = core.NewCRState(crSets)
	db.topo = core.NewTopology(len(crSets), bopts.RegionSamples)
	db.buildShards(lo, db.cr, &stats, t0, 0)
	db.layout.Store(lo)
	db.built.Store(&stats)
	if err := db.startConfiguredMaintainer(opts); err != nil {
		return nil, err
	}
	return db, nil
}

// startConfiguredMaintainer attaches the Options.Maintain controller to
// a freshly built or loaded database, if one was requested.
func (db *DB) startConfiguredMaintainer(opts *Options) error {
	if opts == nil || opts.Maintain == nil {
		return nil
	}
	_, err := db.StartMaintainer(*opts.Maintain)
	return err
}

// buildShards shadow-builds every shard of lo's sub-grid from the given
// registry — in parallel, one goroutine per shard — and stores each
// fresh epoch with generation gen. stats receives the summed per-shard
// indexing CPU time, the aggregate index shape and the wall clock since
// t0. The layout is not yet (or no longer) required to be published;
// the caller decides when the world sees it.
func (db *DB) buildShards(lo *shardLayout, cr *core.CRState, stats *BuildStats, t0 time.Time, gen uint64) {
	type built struct {
		ix  *core.UVIndex
		dur time.Duration
	}
	results := make([]built, len(lo.shards))
	var wg sync.WaitGroup
	for i := range lo.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ix, dur := core.BuildRegionCR(db.store, lo.shards[i].rect, cr, db.bopts.Index)
			results[i] = built{ix: ix, dur: dur}
		}(i)
	}
	wg.Wait()
	shapes := make([]core.IndexStats, len(lo.shards))
	for i := range lo.shards {
		results[i].ix.SetReclaimDomain(db.egc)
		lo.shards[i].epoch.Store(&indexEpoch{index: results[i].ix, gen: gen})
		stats.IndexDur += results[i].dur
		shapes[i] = results[i].ix.Stats()
	}
	stats.TotalDur = time.Since(t0)
	stats.Index = aggregateIndexStats(shapes)
}

// rtree returns the current shared helper R-tree.
func (db *DB) rtree() *rtree.Tree { return db.tree.Load() }

// Len returns the number of live (indexed, non-deleted) objects.
func (db *DB) Len() int { return db.store.Live() }

// NextID returns the ID the next Insert must carry. IDs are dense and
// never reused, so after deletions NextID exceeds Len.
func (db *DB) NextID() int32 { return int32(db.store.Len()) }

// Alive reports whether id names a live object.
func (db *DB) Alive(id int32) bool { return db.store.Alive(id) }

// Domain returns the indexed domain.
func (db *DB) Domain() Rect { return db.domain }

// Object returns object id (from memory; no I/O accounted). Deleted
// ids return an error.
func (db *DB) Object(id int32) (Object, error) {
	if !db.store.Alive(id) {
		return Object{}, fmt.Errorf("uvdiagram: unknown or deleted object %d", id)
	}
	return db.store.At(int(id)), nil
}

// BuildStats returns the statistics of the last full construction pass
// (Build, Load, Rebuild/Compact/Reshard). With shards, phase durations
// are summed CPU time across shard builds and Index aggregates the
// shard sub-grids.
func (db *DB) BuildStats() BuildStats { return *db.built.Load() }

// IndexStats returns the UV-index shape statistics, aggregated across
// shards (counts sum, depth is the maximum).
func (db *DB) IndexStats() core.IndexStats {
	lo := db.lo()
	if len(lo.shards) == 1 {
		return lo.epAt(0).index.Stats()
	}
	shapes := make([]core.IndexStats, len(lo.shards))
	for i := range lo.shards {
		shapes[i] = lo.epAt(i).index.Stats()
	}
	return aggregateIndexStats(shapes)
}

// PNN answers a probabilistic nearest-neighbor query through the owning
// shard's UV-index (Section V-A).
func (db *DB) PNN(q Point) ([]Answer, QueryStats, error) {
	t := db.egc.Pin()
	defer db.egc.Unpin(t)
	lo := db.lo()
	if err := checkDomain(lo, db.domain, q); err != nil {
		return nil, QueryStats{}, err
	}
	return lo.epFor(q).index.PNN(q)
}

// mutationCounters are the DB's atomic mutation-path tallies.
type mutationCounters struct {
	inserts    atomic.Int64
	deletes    atomic.Int64
	dependents atomic.Int64
	rederived  atomic.Int64
	skipped    atomic.Int64
	repaired   atomic.Int64
}

// MutationStats reports the cumulative work of the incremental mutation
// paths since the database was built or loaded. The Rederived/Skipped
// split is the output-sensitivity signal: Skipped dependents kept their
// representation (minus the victims) with no derivation at all because
// no victim was tight for them (see core.Topology).
type MutationStats struct {
	Inserts    int64 // Insert calls applied
	Deletes    int64 // objects deleted (BatchDelete counts each victim)
	Dependents int64 // delete dependents examined
	Rederived  int64 // dependents re-derived (a victim was tight)
	Skipped    int64 // dependents kept with a stripped representation
	Repaired   int64 // cached cell profiles tightened in place on insert
}

// MutationStats returns a snapshot of the mutation counters.
func (db *DB) MutationStats() MutationStats {
	return MutationStats{
		Inserts:    db.mstats.inserts.Load(),
		Deletes:    db.mstats.deletes.Load(),
		Dependents: db.mstats.dependents.Load(),
		Rederived:  db.mstats.rederived.Load(),
		Skipped:    db.mstats.skipped.Load(),
		Repaired:   db.mstats.repaired.Load(),
	}
}

// ErrOutOfDomain is the sentinel every "query point outside the indexed
// domain" failure matches through errors.Is, whatever path produced it
// (single-point queries, batch routing, moving-query sessions,
// AdvanceAll error slots). Serving layers drop exactly the bad cursor by
// testing for it instead of string-matching error text.
var ErrOutOfDomain = errors.New("uvdiagram: query point outside domain")

// DomainError is the concrete out-of-domain error: the offending point
// and the domain it missed. errors.Is(err, ErrOutOfDomain) matches it;
// errors.As recovers the point for diagnostics.
type DomainError struct {
	Point  Point
	Domain Rect
}

// Error implements error.
func (e *DomainError) Error() string {
	return fmt.Sprintf("uvdiagram: query point %v outside domain %v", e.Point, e.Domain)
}

// Is makes every DomainError match the ErrOutOfDomain sentinel.
func (e *DomainError) Is(target error) bool { return target == ErrOutOfDomain }

// checkDomain rejects query points outside a multi-shard engine's
// domain (with one shard, the index's own domain check reproduces the
// original core error text). Shared by the single-point and batch
// routing paths so their semantics can never drift apart. The returned
// error is a *DomainError, so it matches ErrOutOfDomain.
func checkDomain(lo *shardLayout, domain Rect, q Point) error {
	if len(lo.shards) > 1 && !domain.Contains(q) {
		return &DomainError{Point: q, Domain: domain}
	}
	return nil
}

// Partitions retrieves all UV-partitions (leaf regions) intersecting r
// with their nearest-neighbor densities (Section V-C), gathered from
// every shard r overlaps.
func (db *DB) Partitions(r Rect) []Partition {
	lo := db.lo()
	if len(lo.shards) == 1 {
		parts, _ := lo.epAt(0).index.Partitions(r)
		return parts
	}
	var out []Partition
	for i := range lo.shards {
		if !lo.shards[i].rect.Overlaps(r) {
			continue
		}
		parts, _ := lo.epAt(i).index.Partitions(r)
		out = append(out, parts...)
	}
	return out
}

// CellArea approximates the area of object id's UV-cell from the index
// (Section V-C, UV-cell retrieval), summing the shard-local areas of
// every shard the cell reaches.
func (db *DB) CellArea(id int32) (float64, error) {
	total := 0.0
	lo := db.lo()
	for i := range lo.shards {
		a, err := lo.epAt(i).index.CellArea(id)
		if err != nil {
			return 0, err
		}
		total += a
	}
	return total, nil
}

// CellRegions returns the leaf regions overlapping object id's UV-cell,
// its displayable approximate extent, concatenated across shards.
func (db *DB) CellRegions(id int32) []Rect {
	lo := db.lo()
	if len(lo.shards) == 1 {
		return lo.epAt(0).index.CellRegions(id)
	}
	var out []Rect
	for i := range lo.shards {
		out = append(out, lo.epAt(i).index.CellRegions(id)...)
	}
	return out
}

// Index exposes the underlying UV-index for advanced use (experiment
// harness, visualization). With shards it is shard 0's sub-grid; use
// ShardStats to enumerate the others. The pointer is the CURRENT
// epoch's index; a Rebuild or Compact replaces it, so hold the result
// only briefly.
func (db *DB) Index() *core.UVIndex { return db.lo().epAt(0).index }

// RTree exposes the shared helper R-tree (the query baseline of
// Figure 6), which covers the full live population. Like Index, it is
// the current pointer; Compact and Reshard replace it.
func (db *DB) RTree() *rtree.Tree { return db.rtree() }

// Store exposes the underlying object store.
func (db *DB) Store() *uncertain.Store { return db.store }
