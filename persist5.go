package uvdiagram

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"uvdiagram/internal/core"
	"uvdiagram/internal/epoch"
	"uvdiagram/internal/pager"
	"uvdiagram/internal/rtree"
	"uvdiagram/internal/uncertain"
)

// Out-of-core persistence (version 5): where Save/Load persist the
// LOGICAL database and rebuild every disk page on load, SaveSnapshot
// writes a page-image snapshot — the raw pages of the object store,
// every shard's UV-index and the helper R-tree, each section aligned to
// snapAlign, preceded by a metadata blob (domain, layout, tombstones,
// constraint registry, per-section manifests). Open of a v5 file then
// serves STRAIGHT OFF THE FILE: the page sections become mmap-backed
// pager.FileStores (zero-copy reads, no rebuild, no per-page heap), so
// a database much larger than RAM opens in milliseconds and the kernel
// pages leaf data in and out on demand. Open falls back to Load for
// version ≤ 4 streams, so uvdiagram.Open(path) is the universal opener.
//
// File layout:
//
//	u32 magic "UVDB" | u32 version=5 | u64 metaLen | meta | pad
//	object pages   (n × storePageSize)             | pad
//	shard 0 pages  (count₀ × indexPageSize)        | pad
//	…                                              | pad
//	R-tree pages   (countᵣ × rtreePageSize)
//
// Page ids inside each section are implicit sequential positions (the
// manifests record only per-leaf counts), which is exactly how both the
// FileStore addresses the section and a heap replay re-allocates it.

const (
	dbVersionSnapshot = 5
	snapAlign         = 4096
	// snapMaxMeta bounds the metadata blob against corrupt headers.
	snapMaxMeta = 1 << 31
	// snapMaxPageSize bounds any section's page size.
	snapMaxPageSize = 1 << 20
)

// ErrCorruptSnapshot is the sentinel every malformed-snapshot failure
// matches through errors.Is, whatever field was damaged. Open never
// returns a partially constructed DB alongside it.
var ErrCorruptSnapshot = errors.New("uvdiagram: corrupt snapshot")

// SnapshotError is the concrete malformed-snapshot error: the file and
// what was wrong with it. errors.Is(err, ErrCorruptSnapshot) matches
// it.
type SnapshotError struct {
	Path   string
	Detail error
}

// Error implements error.
func (e *SnapshotError) Error() string {
	return fmt.Sprintf("uvdiagram: snapshot %s: %v", e.Path, e.Detail)
}

// Is makes every SnapshotError match the ErrCorruptSnapshot sentinel.
func (e *SnapshotError) Is(target error) bool { return target == ErrCorruptSnapshot }

// Unwrap exposes the underlying detail error.
func (e *SnapshotError) Unwrap() error { return e.Detail }

func snapErr(path, format string, args ...any) error {
	return &SnapshotError{Path: path, Detail: fmt.Errorf(format, args...)}
}

// snapMeta is the parsed metadata blob of a v5 snapshot.
type snapMeta struct {
	domain        Rect
	gx, gy        int
	xs, ys        []float64
	n             int
	dead          []bool
	crSets        [][]int32
	storePageSize int
	storeOff      int64 // byte offset of the object page section
	shards        []snapSection
	rt            snapSection
}

// snapSection describes one page section: its manifest and the page
// geometry needed to locate it in the file.
type snapSection struct {
	pageSize  int
	manifest  []byte
	pageCount int
	off       int64 // byte offset of the section's first page
}

type metaWriter struct{ buf []byte }

func (w *metaWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *metaWriter) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}
func (w *metaWriter) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

type metaReader struct {
	b   []byte
	err error
}

func (r *metaReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 4 {
		r.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *metaReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.err = io.ErrUnexpectedEOF
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

func (r *metaReader) bytes(max int) []byte {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n < 0 || n > max || n > len(r.b) {
		r.err = fmt.Errorf("blob of %d bytes exceeds bound %d", n, max)
		return nil
	}
	out := r.b[:n:n]
	r.b = r.b[n:]
	return out
}

func alignUp(off int64) int64 {
	return (off + snapAlign - 1) / snapAlign * snapAlign
}

// SaveSnapshot writes the database as a version-5 page-image snapshot
// to path (atomically: a temp file renamed into place), ready to be
// served off-disk by Open. The caller must not run mutations
// concurrently (queries are fine), matching Save's contract.
func (db *DB) SaveSnapshot(path string) error {
	db.smu.RLock()
	defer db.smu.RUnlock()

	lo := db.lo()
	eps := lo.epochs()
	tree := db.rtree()
	storePg := db.store.Pager()
	n := db.store.Len()

	// Metadata blob first: everything Open needs before touching pages.
	w := &metaWriter{}
	for _, v := range []float64{db.domain.Min.X, db.domain.Min.Y, db.domain.Max.X, db.domain.Max.Y} {
		w.f64(v)
	}
	w.u32(uint32(lo.gx))
	w.u32(uint32(lo.gy))
	for _, v := range lo.xs {
		w.f64(v)
	}
	for _, v := range lo.ys {
		w.f64(v)
	}
	w.u32(uint32(n))
	for i := 0; i < n; i++ {
		flag := byte(0)
		if db.store.Alive(int32(i)) {
			flag = 1
		}
		w.buf = append(w.buf, flag)
	}
	// The engine-wide constraint registry, once — not once per shard as
	// the v≤4 index streams do.
	for i := 0; i < n; i++ {
		ids := db.cr.Of(int32(i))
		w.u32(uint32(len(ids)))
		for _, id := range ids {
			w.u32(uint32(id))
		}
	}
	w.u32(uint32(storePg.PageSize()))
	type section struct {
		pg       *pager.Pager
		pages    []pager.PageID
		manifest []byte
	}
	sections := make([]section, 0, len(eps)+1)
	for i, ep := range eps {
		manifest, pages, err := ep.index.SnapshotManifest()
		if err != nil {
			return fmt.Errorf("uvdiagram: snapshot shard %d: %w", i, err)
		}
		w.u32(uint32(ep.index.Pager().PageSize()))
		w.bytes(manifest)
		w.u32(uint32(len(pages)))
		sections = append(sections, section{pg: ep.index.Pager(), pages: pages})
	}
	manifest, pages, err := tree.SnapshotManifest()
	if err != nil {
		return fmt.Errorf("uvdiagram: snapshot r-tree: %w", err)
	}
	w.u32(uint32(tree.Pager().PageSize()))
	w.bytes(manifest)
	w.u32(uint32(len(pages)))
	sections = append(sections, section{pg: tree.Pager(), pages: pages})

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if f != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<20)
	var written int64
	emit := func(b []byte) error {
		nn, err := bw.Write(b)
		written += int64(nn)
		return err
	}
	pad := func() error {
		for written < alignUp(written) {
			if err := bw.WriteByte(0); err != nil {
				return err
			}
			written++
		}
		return nil
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], dbMagic)
	binary.LittleEndian.PutUint32(hdr[4:], dbVersionSnapshot)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(w.buf)))
	if err := emit(hdr[:]); err != nil {
		return err
	}
	if err := emit(w.buf); err != nil {
		return err
	}
	if err := pad(); err != nil {
		return err
	}
	// Object pages in id order: NewStore allocates one page per object
	// sequentially and never frees one, so page i IS object i — the
	// invariant OpenStoreSnapshot reconstructs.
	for i := 0; i < n; i++ {
		if err := emit(storePg.Peek(db.store.PageOf(int32(i)))); err != nil {
			return err
		}
	}
	for _, sec := range sections {
		if err := pad(); err != nil {
			return err
		}
		for _, pid := range sec.pages {
			if err := emit(sec.pg.Peek(pid)); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		f = nil
		os.Remove(tmp)
		return err
	}
	f = nil
	return os.Rename(tmp, path)
}

// parseSnapMeta decodes and validates the metadata blob, computing each
// section's byte offset and checking every section fits the file.
func parseSnapMeta(path string, meta []byte, metaOff, fileSize int64) (*snapMeta, error) {
	r := &metaReader{b: meta}
	m := &snapMeta{}
	m.domain = Rect{Min: Pt(r.f64(), r.f64()), Max: Pt(r.f64(), r.f64())}
	m.gx, m.gy = int(r.u32()), int(r.u32())
	if r.err == nil && (m.gx < 1 || m.gy < 1 || m.gx > MaxShards || m.gy > MaxShards || m.gx*m.gy > MaxShards) {
		return nil, snapErr(path, "implausible shard layout %d×%d", m.gx, m.gy)
	}
	readCuts := func(k int, lo, hi float64) []float64 {
		out := make([]float64, k+1)
		for i := range out {
			out[i] = r.f64()
			if r.err == nil && i > 0 && !(out[i] > out[i-1]) {
				r.err = fmt.Errorf("layout cuts not increasing at %d", i)
			}
		}
		if r.err == nil && (out[0] != lo || out[k] != hi) {
			r.err = fmt.Errorf("layout cuts do not span the domain")
		}
		return out
	}
	if r.err == nil {
		m.xs = readCuts(m.gx, m.domain.Min.X, m.domain.Max.X)
		m.ys = readCuts(m.gy, m.domain.Min.Y, m.domain.Max.Y)
	}
	m.n = int(r.u32())
	if r.err == nil && (m.n <= 0 || m.n > 1<<26) {
		return nil, snapErr(path, "implausible object count %d", m.n)
	}
	if r.err == nil {
		if len(r.b) < m.n {
			r.err = io.ErrUnexpectedEOF
		} else {
			m.dead = make([]bool, m.n)
			for i := 0; i < m.n; i++ {
				m.dead[i] = r.b[i] == 0
			}
			r.b = r.b[m.n:]
		}
	}
	if r.err == nil {
		m.crSets = make([][]int32, m.n)
		for i := 0; i < m.n && r.err == nil; i++ {
			k := int(r.u32())
			if r.err != nil {
				break
			}
			if k > m.n {
				r.err = fmt.Errorf("object %d cr-set of %d exceeds object count %d", i, k, m.n)
				break
			}
			ids := make([]int32, k)
			for j := range ids {
				v := r.u32()
				if r.err == nil && int(v) >= m.n {
					r.err = fmt.Errorf("object %d cr-id %d out of range", i, v)
				}
				ids[j] = int32(v)
			}
			m.crSets[i] = ids
		}
	}
	m.storePageSize = int(r.u32())
	if r.err == nil && (m.storePageSize <= 0 || m.storePageSize > snapMaxPageSize) {
		return nil, snapErr(path, "store page size %d", m.storePageSize)
	}
	off := alignUp(metaOff + int64(len(meta)))
	if r.err == nil {
		if end := off + int64(m.n)*int64(m.storePageSize); end > fileSize {
			return nil, snapErr(path, "object section [%d, %d) exceeds file of %d bytes", off, end, fileSize)
		}
	}
	storeOff := off
	off = alignUp(off + int64(m.n)*int64(m.storePageSize))
	readSection := func(name string) (snapSection, error) {
		var s snapSection
		s.pageSize = int(r.u32())
		if r.err == nil && (s.pageSize <= 0 || s.pageSize > snapMaxPageSize) {
			return s, snapErr(path, "%s page size %d", name, s.pageSize)
		}
		s.manifest = r.bytes(len(r.b))
		s.pageCount = int(r.u32())
		if r.err != nil {
			return s, nil
		}
		if s.pageCount < 0 {
			return s, snapErr(path, "%s page count %d", name, s.pageCount)
		}
		s.off = off
		end := off + int64(s.pageCount)*int64(s.pageSize)
		if end > fileSize {
			return s, snapErr(path, "%s section [%d, %d) exceeds file of %d bytes", name, off, end, fileSize)
		}
		off = alignUp(end)
		return s, nil
	}
	if r.err == nil {
		m.shards = make([]snapSection, m.gx*m.gy)
		for i := range m.shards {
			s, err := readSection(fmt.Sprintf("shard %d", i))
			if err != nil {
				return nil, err
			}
			m.shards[i] = s
		}
	}
	if r.err == nil {
		s, err := readSection("r-tree")
		if err != nil {
			return nil, err
		}
		m.rt = s
	}
	if r.err != nil {
		return nil, snapErr(path, "metadata: %v", r.err)
	}
	if len(r.b) != 0 {
		return nil, snapErr(path, "metadata has %d trailing bytes", len(r.b))
	}
	m.storeOff = storeOff
	return m, nil
}

// Open opens a database file written by SaveSnapshot (version 5) or
// Save (versions 1–4; Open falls back to Load for those, rebuilding
// pages in the heap as Load always has).
//
// For a v5 snapshot, Options.Pager picks the backend: "mmap" (the
// default) maps the file read-only and serves zero-copy page reads off
// the mapping — the out-of-core mode, where opening is O(metadata) and
// the OS pages index data in on demand; "heap" copies the page images
// into in-heap pagers and closes the file, trading resident memory for
// independence from it. Either way the answers are identical to the
// database that was saved. Call DB.Close when done with an mmap-backed
// database.
func Open(path string, opts *Options) (*DB, error) {
	mode, err := opts.pagerMode()
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var hdr [16]byte
	if _, err := io.ReadFull(f, hdr[:8]); err != nil {
		f.Close()
		return nil, snapErr(path, "reading header: %v", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != dbMagic {
		f.Close()
		return nil, fmt.Errorf("uvdiagram: %s is not a UV-diagram database file", path)
	}
	version := binary.LittleEndian.Uint32(hdr[4:])
	if version >= 1 && version <= dbVersionCuts {
		// Classic logical stream: rewind and hand it to Load.
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		db, err := Load(bufio.NewReaderSize(f, 1<<20), opts)
		f.Close()
		return db, err
	}
	if version != dbVersionSnapshot {
		f.Close()
		return nil, snapErr(path, "unsupported version %d", version)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	fileSize := st.Size()
	if _, err := io.ReadFull(f, hdr[8:]); err != nil {
		f.Close()
		return nil, snapErr(path, "reading header: %v", err)
	}
	metaLen := binary.LittleEndian.Uint64(hdr[8:])
	if metaLen > snapMaxMeta || 16+int64(metaLen) > fileSize {
		f.Close()
		return nil, snapErr(path, "metadata of %d bytes exceeds file of %d", metaLen, fileSize)
	}
	meta := make([]byte, metaLen)
	if _, err := io.ReadFull(f, meta); err != nil {
		f.Close()
		return nil, snapErr(path, "reading metadata: %v", err)
	}
	m, err := parseSnapMeta(path, meta, 16, fileSize)
	if err != nil {
		f.Close()
		return nil, err
	}

	// Materialize the page sections as pagers: FileStores over one
	// shared mapping (mmap mode) or heap replays (heap mode).
	var mapping *pager.Mapping
	fail := func(err error) (*DB, error) {
		if mapping != nil {
			mapping.Close() // closes f too
		} else {
			f.Close()
		}
		return nil, err
	}
	sectionPager := func(off int64, count, pageSize int) (*pager.Pager, error) {
		if mapping != nil {
			fs, err := pager.NewFileStore(mapping, int(off), count, pageSize)
			if err != nil {
				return nil, snapErr(path, "%v", err)
			}
			return pager.NewWithStore(fs), nil
		}
		buf := make([]byte, int64(count)*int64(pageSize))
		if _, err := f.ReadAt(buf, off); err != nil {
			return nil, snapErr(path, "reading section at %d: %v", off, err)
		}
		pg := pager.New(pageSize)
		for i := 0; i < count; i++ {
			pg.Alloc(buf[i*pageSize : (i+1)*pageSize])
		}
		pg.ResetStats() // replay writes are not workload I/O
		return pg, nil
	}
	if mode == pagerModeMmap {
		mapping, err = pager.MapFile(f)
		if err != nil {
			f.Close()
			return nil, err
		}
	}
	storePg, err := sectionPager(m.storeOff, m.n, m.storePageSize)
	if err != nil {
		return fail(err)
	}
	store, err := uncertain.OpenStoreSnapshot(storePg, m.n, m.dead)
	if err != nil {
		return fail(snapErr(path, "%v", err))
	}

	bopts := opts.toBuildOptions()
	reg := core.NewCRState(m.crSets)
	db := &DB{store: store, domain: m.domain, bopts: bopts, strategy: opts.layout(), egc: epoch.NewDomain()}
	db.cr = reg
	db.topo = core.NewTopology(reg.Len(), bopts.RegionSamples)
	db.pagerMode = mode
	lo := newShardLayout(0, m.gx, m.gy, m.xs, m.ys)
	shapes := make([]core.IndexStats, len(lo.shards))
	t0 := time.Now()
	for i := range lo.shards {
		sec := m.shards[i]
		pg, err := sectionPager(sec.off, sec.pageCount, sec.pageSize)
		if err != nil {
			return fail(err)
		}
		ix, err := core.OpenUVIndexSnapshot(sec.manifest, store, reg, pg)
		if err != nil {
			return fail(snapErr(path, "shard %d: %v", i, err))
		}
		if ix.Domain() != lo.shards[i].rect {
			return fail(snapErr(path, "shard %d covers %v, layout expects %v", i, ix.Domain(), lo.shards[i].rect))
		}
		ix.SetReclaimDomain(db.egc)
		lo.shards[i].epoch.Store(&indexEpoch{index: ix})
		shapes[i] = ix.Stats()
	}
	rtPg, err := sectionPager(m.rt.off, m.rt.pageCount, m.rt.pageSize)
	if err != nil {
		return fail(err)
	}
	tree, err := rtree.OpenSnapshot(m.rt.manifest, rtPg)
	if err != nil {
		return fail(snapErr(path, "%v", err))
	}
	tree.SetReclaimDomain(db.egc)
	db.tree.Store(tree)
	db.layout.Store(lo)
	built := BuildStats{Strategy: bopts.Strategy, N: store.Live(), Index: aggregateIndexStats(shapes)}
	built.TotalDur = time.Since(t0)
	db.built.Store(&built)
	if mapping != nil {
		db.closer = mapping.Close
	} else {
		f.Close()
	}
	if err := db.startConfiguredMaintainer(opts); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}
