package uvdiagram

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"uvdiagram/internal/core"
	"uvdiagram/internal/rtree"
)

// BatchOptions tune batch query execution. The zero value (or a nil
// pointer) means "parallelize over all CPUs, no leaf cache".
type BatchOptions struct {
	// Workers bounds the worker pool running grid lookups (0 →
	// GOMAXPROCS, 1 → sequential).
	Workers int
	// CacheSize enables a small LRU cache of decoded leaf page lists,
	// shared by all workers and kept across batch calls — profitable for
	// skewed query streams where many points fall into few leaves. 0
	// disables caching. The cache is invalidated automatically by
	// Insert.
	CacheSize int
}

func (o *BatchOptions) workers() int {
	if o == nil || o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o *BatchOptions) cacheSize() int {
	if o == nil {
		return 0
	}
	return o.CacheSize
}

// batchState lazily holds the leaf caches a DB (or order-k index)
// reuses across batch calls: per shard, one over UV-index grid leaves
// and one over helper R-tree leaves. Caches are per-shard because each
// cache is generation-invalidated against ONE index's mutation counter;
// with a shared cache, shards mutating at different rates would flush
// each other's entries.
type batchState struct {
	mu     sync.Mutex
	caches []*core.LeafCache
	rts    []*rtree.LeafCache
	cap    int
}

// cachesFor returns the persistent per-shard leaf caches for the
// requested size in one critical section, (re)building them when the
// size (or shard count) changes. Size ≤ 0 returns nil slices (no
// caching); a nil slice indexes as a nil cache through cacheAt/rtAt.
func (s *batchState) cachesFor(size, shards int) ([]*core.LeafCache, []*rtree.LeafCache) {
	if size <= 0 {
		return nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.caches) != shards || s.cap != size {
		s.caches = make([]*core.LeafCache, shards)
		s.rts = make([]*rtree.LeafCache, shards)
		for i := 0; i < shards; i++ {
			s.caches[i] = core.NewLeafCache(size)
			s.rts[i] = rtree.NewLeafCache(size)
		}
		s.cap = size
	}
	return s.caches, s.rts
}

// cachesGridFor returns just the per-shard grid leaf caches.
func (s *batchState) cachesGridFor(size, shards int) []*core.LeafCache {
	c, _ := s.cachesFor(size, shards)
	return c
}

// cachesRTreeFor returns just the per-shard helper R-tree leaf caches.
func (s *batchState) cachesRTreeFor(size, shards int) []*rtree.LeafCache {
	_, rt := s.cachesFor(size, shards)
	return rt
}

// cacheAt indexes a possibly-nil cache slice.
func cacheAt(caches []*core.LeafCache, i int) *core.LeafCache {
	if caches == nil {
		return nil
	}
	return caches[i]
}

// rtAt indexes a possibly-nil R-tree cache slice.
func rtAt(rts []*rtree.LeafCache, i int) *rtree.LeafCache {
	if rts == nil {
		return nil
	}
	return rts[i]
}

// runBatch executes fn(i) for i in [0, n) on a bounded worker pool.
// On failure it returns the lowest-indexed error recorded, wrapped
// with that index; since the whole batch's results are discarded on
// any error, queries not yet started are skipped once a failure is
// seen. Per-index results are written by fn into caller-owned slices,
// so the output order is deterministic and identical to a sequential
// loop.
func runBatch(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if errs[i] = fn(i); errs[i] != nil {
				break
			}
		}
	} else {
		var failed atomic.Bool
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if failed.Load() {
						continue // drain; results are moot
					}
					if errs[i] = fn(i); errs[i] != nil {
						failed.Store(true)
					}
				}
			}()
		}
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
	}
	return nil
}

// batchRoute pins every shard's epoch once for a whole batch and
// resolves per-point routing: each point scatters to its owning shard's
// index and per-shard leaf cache, and the positional result slots
// gather the answers back in request order.
type batchRoute struct {
	db  *DB
	eps []*indexEpoch
}

func (db *DB) route() batchRoute { return batchRoute{db: db, eps: db.epochs()} }

// at returns the shard index owning q, erroring for points outside a
// multi-shard domain (the same checkDomain guard the single-point
// queries route through).
func (r batchRoute) at(q Point) (int, error) {
	if err := r.db.checkDomain(q); err != nil {
		return 0, err
	}
	return r.db.shardIdx(q), nil
}

// BatchNN answers N probabilistic nearest-neighbor queries with a
// worker pool, one grid lookup per point, scatter-gathered by shard.
// Results are identical to N sequential PNN calls in query order; on
// any failure the error of the lowest failing query is returned and the
// results are discarded.
//
// Like the single-point queries, batches may run concurrently with each
// other but require external synchronization against Insert (the server
// holds its read lock across a whole batch).
func (db *DB) BatchNN(qs []Point, opts *BatchOptions) ([][]Answer, error) {
	rt := db.route() // one epoch per shard for the whole batch
	caches := db.batch.cachesGridFor(opts.cacheSize(), len(rt.eps))
	out := make([][]Answer, len(qs))
	err := runBatch(len(qs), opts.workers(), func(i int) error {
		si, err := rt.at(qs[i])
		if err != nil {
			return err
		}
		answers, _, err := rt.eps[si].index.PNNCached(qs[i], cacheAt(caches, si))
		out[i] = answers
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BatchTopKPNN answers N top-k probable nearest-neighbor queries (the
// batch form of TopKPNN), k shared by the whole batch.
func (db *DB) BatchTopKPNN(qs []Point, k int, opts *BatchOptions) ([][]Answer, error) {
	rt := db.route()
	caches := db.batch.cachesGridFor(opts.cacheSize(), len(rt.eps))
	out := make([][]Answer, len(qs))
	err := runBatch(len(qs), opts.workers(), func(i int) error {
		si, err := rt.at(qs[i])
		if err != nil {
			return err
		}
		answers, _, err := rt.eps[si].index.PNNCached(qs[i], cacheAt(caches, si))
		if err != nil {
			return err
		}
		out[i] = topKAnswers(answers, k)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BatchThresholdNN answers N probability-threshold nearest-neighbor
// queries: per point, the PNN answers whose qualification probability
// is at least tau (the threshold variant of [14]'s PNN formulation).
// tau ≤ 0 degenerates to BatchNN.
func (db *DB) BatchThresholdNN(qs []Point, tau float64, opts *BatchOptions) ([][]Answer, error) {
	rt := db.route()
	caches := db.batch.cachesGridFor(opts.cacheSize(), len(rt.eps))
	out := make([][]Answer, len(qs))
	err := runBatch(len(qs), opts.workers(), func(i int) error {
		si, err := rt.at(qs[i])
		if err != nil {
			return err
		}
		answers, _, err := rt.eps[si].index.PNNCached(qs[i], cacheAt(caches, si))
		if err != nil {
			return err
		}
		kept := answers[:0]
		for _, a := range answers {
			if a.Prob >= tau {
				kept = append(kept, a)
			}
		}
		out[i] = kept
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BatchOrderK answers N possible-k-NN queries (the order-k batch
// variant), k shared by the whole batch. Results are identical to N
// sequential PossibleKNN calls.
func (db *DB) BatchOrderK(qs []Point, k int, opts *BatchOptions) ([][]int32, error) {
	rt := db.route()
	rts := db.batch.cachesRTreeFor(opts.cacheSize(), len(rt.eps))
	out := make([][]int32, len(qs))
	err := runBatch(len(qs), opts.workers(), func(i int) error {
		si := db.shardIdx(qs[i]) // k-NN accepts out-of-domain points
		ids, err := db.possibleKNN(rt.eps[si], qs[i], k, rtAt(rts, si))
		out[i] = ids
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BatchPossibleKNN answers N possible-k-NN queries from the order-k
// grid with a worker pool and the index's persistent leaf cache —
// the grid-served counterpart of DB.BatchOrderK. Like PossibleKNN, it
// errors once the database has mutated past the grid's snapshot.
func (ix *OrderKIndex) BatchPossibleKNN(qs []Point, opts *BatchOptions) ([][]int32, error) {
	if err := ix.fresh(); err != nil {
		return nil, err
	}
	cache := cacheAt(ix.batch.cachesGridFor(opts.cacheSize(), 1), 0)
	out := make([][]int32, len(qs))
	err := runBatch(len(qs), opts.workers(), func(i int) error {
		ids, _, err := ix.inner.PossibleKNNCached(qs[i], cache)
		out[i] = ids
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
