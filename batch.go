package uvdiagram

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"uvdiagram/internal/core"
	"uvdiagram/internal/rtree"
)

// BatchOptions tune batch query execution. The zero value (or a nil
// pointer) means "parallelize over all CPUs, no leaf cache".
type BatchOptions struct {
	// Workers bounds the worker pool running grid lookups (0 →
	// GOMAXPROCS, 1 → sequential).
	Workers int
	// CacheSize enables a small LRU cache of decoded leaf page lists,
	// shared by all workers and kept across batch calls — profitable for
	// skewed query streams where many points fall into few leaves. 0
	// disables caching. The cache is invalidated automatically by
	// Insert.
	CacheSize int
}

func (o *BatchOptions) workers() int {
	if o == nil || o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o *BatchOptions) cacheSize() int {
	if o == nil {
		return 0
	}
	return o.CacheSize
}

// batchState lazily holds the leaf caches a DB (or order-k index)
// reuses across batch calls: one over UV-index grid leaves, one over
// helper R-tree leaves.
type batchState struct {
	mu    sync.Mutex
	cache *core.LeafCache
	rt    *rtree.LeafCache
	cap   int
}

// cachesFor returns the persistent leaf caches for the requested size
// in one critical section, (re)building both when the size changes.
// Size ≤ 0 returns nil caches (no caching).
func (s *batchState) cachesFor(size int) (*core.LeafCache, *rtree.LeafCache) {
	if size <= 0 {
		return nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache == nil || s.cap != size {
		s.cache = core.NewLeafCache(size)
		s.rt = rtree.NewLeafCache(size)
		s.cap = size
	}
	return s.cache, s.rt
}

// cacheFor returns just the grid leaf cache.
func (s *batchState) cacheFor(size int) *core.LeafCache {
	c, _ := s.cachesFor(size)
	return c
}

// rtreeCacheFor returns just the helper R-tree's leaf cache.
func (s *batchState) rtreeCacheFor(size int) *rtree.LeafCache {
	_, rt := s.cachesFor(size)
	return rt
}

// runBatch executes fn(i) for i in [0, n) on a bounded worker pool.
// On failure it returns the lowest-indexed error recorded, wrapped
// with that index; since the whole batch's results are discarded on
// any error, queries not yet started are skipped once a failure is
// seen. Per-index results are written by fn into caller-owned slices,
// so the output order is deterministic and identical to a sequential
// loop.
func runBatch(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if errs[i] = fn(i); errs[i] != nil {
				break
			}
		}
	} else {
		var failed atomic.Bool
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if failed.Load() {
						continue // drain; results are moot
					}
					if errs[i] = fn(i); errs[i] != nil {
						failed.Store(true)
					}
				}
			}()
		}
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
	}
	return nil
}

// BatchNN answers N probabilistic nearest-neighbor queries with a
// worker pool, one grid lookup per point. Results are identical to N
// sequential PNN calls in query order; on any failure the error of the
// lowest failing query is returned and the results are discarded.
//
// Like the single-point queries, batches may run concurrently with each
// other but require external synchronization against Insert (the server
// holds its read lock across a whole batch).
func (db *DB) BatchNN(qs []Point, opts *BatchOptions) ([][]Answer, error) {
	ep := db.ep() // one epoch for the whole batch
	cache := db.batch.cacheFor(opts.cacheSize())
	out := make([][]Answer, len(qs))
	err := runBatch(len(qs), opts.workers(), func(i int) error {
		answers, _, err := ep.index.PNNCached(qs[i], cache)
		out[i] = answers
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BatchTopKPNN answers N top-k probable nearest-neighbor queries (the
// batch form of TopKPNN), k shared by the whole batch.
func (db *DB) BatchTopKPNN(qs []Point, k int, opts *BatchOptions) ([][]Answer, error) {
	ep := db.ep()
	cache := db.batch.cacheFor(opts.cacheSize())
	out := make([][]Answer, len(qs))
	err := runBatch(len(qs), opts.workers(), func(i int) error {
		answers, _, err := ep.index.PNNCached(qs[i], cache)
		if err != nil {
			return err
		}
		out[i] = topKAnswers(answers, k)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BatchThresholdNN answers N probability-threshold nearest-neighbor
// queries: per point, the PNN answers whose qualification probability
// is at least tau (the threshold variant of [14]'s PNN formulation).
// tau ≤ 0 degenerates to BatchNN.
func (db *DB) BatchThresholdNN(qs []Point, tau float64, opts *BatchOptions) ([][]Answer, error) {
	ep := db.ep()
	cache := db.batch.cacheFor(opts.cacheSize())
	out := make([][]Answer, len(qs))
	err := runBatch(len(qs), opts.workers(), func(i int) error {
		answers, _, err := ep.index.PNNCached(qs[i], cache)
		if err != nil {
			return err
		}
		kept := answers[:0]
		for _, a := range answers {
			if a.Prob >= tau {
				kept = append(kept, a)
			}
		}
		out[i] = kept
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BatchOrderK answers N possible-k-NN queries (the order-k batch
// variant), k shared by the whole batch. Results are identical to N
// sequential PossibleKNN calls.
func (db *DB) BatchOrderK(qs []Point, k int, opts *BatchOptions) ([][]int32, error) {
	ep := db.ep()
	cache := db.batch.rtreeCacheFor(opts.cacheSize())
	out := make([][]int32, len(qs))
	err := runBatch(len(qs), opts.workers(), func(i int) error {
		ids, err := db.possibleKNN(ep, qs[i], k, cache)
		out[i] = ids
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BatchPossibleKNN answers N possible-k-NN queries from the order-k
// grid with a worker pool and the index's persistent leaf cache —
// the grid-served counterpart of DB.BatchOrderK. Like PossibleKNN, it
// errors once the database has mutated past the grid's snapshot.
func (ix *OrderKIndex) BatchPossibleKNN(qs []Point, opts *BatchOptions) ([][]int32, error) {
	if err := ix.fresh(); err != nil {
		return nil, err
	}
	cache := ix.batch.cacheFor(opts.cacheSize())
	out := make([][]int32, len(qs))
	err := runBatch(len(qs), opts.workers(), func(i int) error {
		ids, _, err := ix.inner.PossibleKNNCached(qs[i], cache)
		out[i] = ids
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
