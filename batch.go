package uvdiagram

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"uvdiagram/internal/core"
	"uvdiagram/internal/pager"
	"uvdiagram/internal/rtree"
)

// BatchOptions tune batch query execution. The zero value (or a nil
// pointer) means "parallelize over all CPUs, no leaf cache".
type BatchOptions struct {
	// Workers bounds the worker pool running grid lookups (0 →
	// GOMAXPROCS, 1 → sequential).
	Workers int
	// CacheSize enables a small LRU cache of decoded leaf page lists,
	// shared by all workers and kept across batch calls — profitable for
	// skewed query streams where many points fall into few leaves. 0
	// disables caching. The cache is invalidated automatically by
	// Insert.
	CacheSize int
}

func (o *BatchOptions) workers() int {
	if o == nil || o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o *BatchOptions) cacheSize() int {
	if o == nil {
		return 0
	}
	return o.CacheSize
}

// batchState lazily holds the leaf caches a DB (or order-k index)
// reuses across batch calls: per shard, one over UV-index grid leaves,
// plus a single cache over the shared helper R-tree's leaves. Grid
// caches are per-shard because each is generation-invalidated against
// ONE index's mutation counter; with a shared cache, shards mutating at
// different rates would flush each other's entries.
type batchState struct {
	mu     sync.Mutex
	caches []*core.LeafCache
	rt     *rtree.LeafCache
	cap    int
	// scratch pools *core.QueryScratch across batch workers and batch
	// calls: candidate ids, fetched candidates, object decode buffers
	// and the probability-integration vectors are all reused, so a
	// steady-state batched PNN allocates only its answer slice.
	scratch sync.Pool
}

// getScratch hands one worker a query scratch (fresh on first use).
func (s *batchState) getScratch() *core.QueryScratch {
	if sc, ok := s.scratch.Get().(*core.QueryScratch); ok {
		return sc
	}
	return &core.QueryScratch{}
}

// putScratch returns a scratch to the pool once the query's results
// have been copied out.
func (s *batchState) putScratch(sc *core.QueryScratch) { s.scratch.Put(sc) }

// cachesFor returns the persistent caches for the requested size in one
// critical section, (re)building them when the size (or shard count)
// changes. Size ≤ 0 returns nils (no caching); a nil slice indexes as a
// nil cache through cacheAt.
func (s *batchState) cachesFor(size, shards int) ([]*core.LeafCache, *rtree.LeafCache) {
	if size <= 0 {
		return nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.caches) != shards || s.cap != size {
		s.caches = make([]*core.LeafCache, shards)
		for i := 0; i < shards; i++ {
			s.caches[i] = core.NewLeafCache(size)
		}
		s.rt = rtree.NewLeafCache(size)
		s.cap = size
	}
	return s.caches, s.rt
}

// cachesGridFor returns just the per-shard grid leaf caches.
func (s *batchState) cachesGridFor(size, shards int) []*core.LeafCache {
	c, _ := s.cachesFor(size, shards)
	return c
}

// cacheRTreeFor returns just the shared helper R-tree leaf cache.
func (s *batchState) cacheRTreeFor(size, shards int) *rtree.LeafCache {
	_, rt := s.cachesFor(size, shards)
	return rt
}

// LeafCacheStats aggregates the hit/miss counters of the DB's
// persistent per-shard grid leaf caches — the batch (and bulk-advance)
// fast-path economy signal the metrics layer exposes. All zeros until a
// batch has run with BatchOptions.CacheSize > 0; counters restart when
// the caches are rebuilt (cache-size or shard-count change).
func (db *DB) LeafCacheStats() (hits, misses int64) {
	db.batch.mu.Lock()
	defer db.batch.mu.Unlock()
	for _, c := range db.batch.caches {
		h, m := c.Stats()
		hits += h
		misses += m
	}
	return hits, misses
}

// BufferPoolStats is the serving-side memory economy snapshot: the
// leaf-cache (buffer pool) hit/miss/eviction counters for the UV-index
// grid and the helper R-tree, plus the pager-level I/O and footprint
// totals summed across the object store, every shard index and the
// R-tree. The metrics layer samples it into gauges.
type BufferPoolStats struct {
	LeafHits       int64 // UV-index leaf cache hits
	LeafMisses     int64
	LeafEvictions  int64
	RTreeHits      int64 // helper R-tree leaf cache hits
	RTreeMisses    int64
	RTreeEvictions int64
	PagerReads     int64 // page reads across all pagers
	PagerWrites    int64
	DiskBytes      int64 // simulated disk footprint across all pagers
	VacuumedBytes  int64 // cumulative storage reclaimed by DB.Vacuum

	// Out-of-core footprint (all zero for an in-heap database): bytes
	// of snapshot sections served straight off the mapped file, how
	// many of those are resident in physical memory right now
	// (ResidentKnown false when the mincore probe is unsupported), and
	// the heap bytes of the append-only COW tails.
	MappedBytes   int64
	ResidentBytes int64
	ResidentKnown bool
	TailBytes     int64
}

// BufferPoolStats returns a snapshot of the buffer-pool counters.
func (db *DB) BufferPoolStats() BufferPoolStats {
	var st BufferPoolStats
	db.batch.mu.Lock()
	for _, c := range db.batch.caches {
		h, m := c.Stats()
		st.LeafHits += h
		st.LeafMisses += m
		st.LeafEvictions += c.Evictions()
	}
	if rt := db.batch.rt; rt != nil {
		st.RTreeHits, st.RTreeMisses = rt.Stats()
		st.RTreeEvictions = rt.Evictions()
	}
	db.batch.mu.Unlock()
	st.ResidentKnown = true
	for _, pg := range db.pagers() {
		st.PagerReads += pg.Reads()
		st.PagerWrites += pg.Writes()
		st.DiskBytes += pg.BytesOnDisk()
		if fs, ok := pg.Store().(*pager.FileStore); ok {
			st.MappedBytes += int64(fs.PageSize()) * int64(fs.BasePages())
			res, known := fs.Resident()
			st.ResidentBytes += res
			st.ResidentKnown = st.ResidentKnown && known
			st.TailBytes += fs.TailBytes()
		}
	}
	st.VacuumedBytes = db.vacuumed.Load()
	return st
}

// DropCaches advises every mmap-backed section out of the OS page
// cache — the cold-start / resident-set-cap lever of the out-of-core
// harness. Live pages refault from the snapshot file on their next
// read; an in-heap database is unaffected (returns 0). Safe
// concurrently with queries.
func (db *DB) DropCaches() int64 {
	var n int64
	for _, pg := range db.pagers() {
		if fs, ok := pg.Store().(*pager.FileStore); ok {
			n += int64(fs.DropCaches())
		}
	}
	return n
}

// pagers snapshots every pager serving the database: the object store,
// each shard index and the helper R-tree.
func (db *DB) pagers() []*pager.Pager {
	lo := db.lo()
	out := make([]*pager.Pager, 0, len(lo.shards)+2)
	out = append(out, db.store.Pager())
	for i := range lo.shards {
		out = append(out, lo.epAt(i).index.Pager())
	}
	out = append(out, db.rtree().Pager())
	return out
}

// Vacuum reclaims the storage behind freed page slots across every
// pager: heap buffers of freed slots are dropped for the GC, and dead
// extents of an mmap-backed snapshot are advised out of the OS page
// cache. Safe concurrently with queries — the frees themselves already
// ran post-grace through the epoch domain, Vacuum only releases the
// storage they left behind. Returns the total bytes reclaimed. The
// maintenance controller calls it every tick.
func (db *DB) Vacuum() int64 {
	var n int64
	for _, pg := range db.pagers() {
		n += pg.Vacuum()
	}
	db.vacuumed.Add(n)
	return n
}

// cacheAt indexes a possibly-nil cache slice.
func cacheAt(caches []*core.LeafCache, i int) *core.LeafCache {
	if caches == nil {
		return nil
	}
	return caches[i]
}

// runBatch executes fn(i) for i in [0, n) on a bounded worker pool,
// feeding indexes in the given order (nil = natural). On failure it
// returns the lowest-indexed error recorded, wrapped with that index;
// since the whole batch's results are discarded on any error, queries
// not yet started are skipped once a failure is seen. Per-index results
// are written by fn into caller-owned positional slices, so the output
// order is deterministic and identical to a sequential loop whatever
// the dispatch order.
func runBatch(n, workers int, order []int, fn func(i int) error) error {
	return runPool(n, workers, order, "query", fn)
}

// runPool is the bounded worker pool behind runBatch (and CompactAll);
// label names one unit of work in the wrapped error ("query 3: …",
// "shard 1: …").
func runPool(n, workers int, order []int, label string, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	feed := func(emit func(int)) {
		if order == nil {
			for i := 0; i < n; i++ {
				emit(i)
			}
			return
		}
		for _, i := range order {
			emit(i)
		}
	}
	errs := make([]error, n)
	if workers <= 1 {
		failed := false
		feed(func(i int) {
			if failed {
				return
			}
			if errs[i] = fn(i); errs[i] != nil {
				failed = true
			}
		})
	} else {
		var failed atomic.Bool
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if failed.Load() {
						continue // drain; results are moot
					}
					if errs[i] = fn(i); errs[i] != nil {
						failed.Store(true)
					}
				}
			}()
		}
		feed(func(i int) { next <- i })
		close(next)
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("%s %d: %w", label, i, err)
		}
	}
	return nil
}

// batchRoute pins the layout, every shard's epoch and the helper R-tree
// once for a whole batch and resolves per-point routing: each point
// scatters to its owning shard's index and per-shard leaf cache, and
// the positional result slots gather the answers back in request order.
type batchRoute struct {
	db   *DB
	lo   *shardLayout
	eps  []*indexEpoch
	tree *rtree.Tree
}

func (db *DB) route() batchRoute {
	lo := db.lo()
	return batchRoute{db: db, lo: lo, eps: lo.epochs(), tree: db.rtree()}
}

// plan routes a whole batch in one pass: every point is
// domain-validated in REQUEST order (so the "error of the lowest
// failing query" contract holds whatever the dispatch order) and
// resolved to its owning shard exactly once. It returns the per-point
// owners and a dispatch order grouping the points by owning shard
// (stable within a shard; nil when one shard makes grouping
// pointless). Feeding the worker pool shard-by-shard keeps one shard's
// leaf pages hot in its cache instead of diluting every shard's
// working set across all workers — the server's batch opcodes get this
// for free since they dispatch through here.
func (r batchRoute) plan(qs []Point) (owner, order []int, err error) {
	owner = make([]int, len(qs))
	nsh := len(r.lo.shards)
	counts := make([]int, nsh+1)
	for i, q := range qs {
		if err := checkDomain(r.lo, r.db.domain, q); err != nil {
			return nil, nil, fmt.Errorf("query %d: %w", i, err)
		}
		si := r.lo.shardIdx(q)
		owner[i] = si
		counts[si+1]++
	}
	if nsh <= 1 || len(qs) <= 1 {
		return owner, nil, nil
	}
	for s := 1; s < len(counts); s++ {
		counts[s] += counts[s-1]
	}
	order = make([]int, len(qs))
	for i := range qs { // stable counting sort by shard
		order[counts[owner[i]]] = i
		counts[owner[i]]++
	}
	return owner, order, nil
}

// BatchNN answers N probabilistic nearest-neighbor queries with a
// worker pool, one grid lookup per point, scatter-gathered by shard
// (points are dispatched grouped by owning shard, which keeps per-shard
// leaf caches hot; results are positional, so the grouping is
// invisible). Results are identical to N sequential PNN calls in query
// order; on any failure the error of the lowest failing query is
// returned and the results are discarded.
//
// Like the single-point queries, batches run lock-free against every
// mutation, including Insert and Delete (copy-on-write snapshots; see
// the DB locking notes).
func (db *DB) BatchNN(qs []Point, opts *BatchOptions) ([][]Answer, error) {
	t := db.egc.Pin() // one pin covers every worker's page reads
	defer db.egc.Unpin(t)
	rt := db.route() // one layout + epoch set for the whole batch
	owner, order, err := rt.plan(qs)
	if err != nil {
		return nil, err
	}
	caches := db.batch.cachesGridFor(opts.cacheSize(), len(rt.eps))
	out := make([][]Answer, len(qs))
	err = runBatch(len(qs), opts.workers(), order, func(i int) error {
		si := owner[i]
		sc := db.batch.getScratch()
		answers, _, err := rt.eps[si].index.PNNWith(qs[i], cacheAt(caches, si), sc)
		db.batch.putScratch(sc)
		out[i] = answers
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BatchTopKPNN answers N top-k probable nearest-neighbor queries (the
// batch form of TopKPNN), k shared by the whole batch.
func (db *DB) BatchTopKPNN(qs []Point, k int, opts *BatchOptions) ([][]Answer, error) {
	t := db.egc.Pin() // one pin covers every worker's page reads
	defer db.egc.Unpin(t)
	rt := db.route()
	owner, order, err := rt.plan(qs)
	if err != nil {
		return nil, err
	}
	caches := db.batch.cachesGridFor(opts.cacheSize(), len(rt.eps))
	out := make([][]Answer, len(qs))
	err = runBatch(len(qs), opts.workers(), order, func(i int) error {
		si := owner[i]
		sc := db.batch.getScratch()
		answers, _, err := rt.eps[si].index.PNNWith(qs[i], cacheAt(caches, si), sc)
		db.batch.putScratch(sc)
		if err != nil {
			return err
		}
		out[i] = topKAnswers(answers, k)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BatchThresholdNN answers N probability-threshold nearest-neighbor
// queries: per point, the PNN answers whose qualification probability
// is at least tau (the threshold variant of [14]'s PNN formulation).
// tau ≤ 0 degenerates to BatchNN.
func (db *DB) BatchThresholdNN(qs []Point, tau float64, opts *BatchOptions) ([][]Answer, error) {
	t := db.egc.Pin() // one pin covers every worker's page reads
	defer db.egc.Unpin(t)
	rt := db.route()
	owner, order, err := rt.plan(qs)
	if err != nil {
		return nil, err
	}
	caches := db.batch.cachesGridFor(opts.cacheSize(), len(rt.eps))
	out := make([][]Answer, len(qs))
	err = runBatch(len(qs), opts.workers(), order, func(i int) error {
		si := owner[i]
		sc := db.batch.getScratch()
		answers, _, err := rt.eps[si].index.PNNWith(qs[i], cacheAt(caches, si), sc)
		db.batch.putScratch(sc)
		if err != nil {
			return err
		}
		kept := answers[:0]
		for _, a := range answers {
			if a.Prob >= tau {
				kept = append(kept, a)
			}
		}
		out[i] = kept
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BatchOrderK answers N possible-k-NN queries (the order-k batch
// variant), k shared by the whole batch. Results are identical to N
// sequential PossibleKNN calls. Retrieval runs on the shared helper
// R-tree, so the batch shares one R-tree leaf cache.
func (db *DB) BatchOrderK(qs []Point, k int, opts *BatchOptions) ([][]int32, error) {
	t := db.egc.Pin() // one pin covers every worker's page reads
	defer db.egc.Unpin(t)
	rt := db.route()
	cache := db.batch.cacheRTreeFor(opts.cacheSize(), len(rt.eps))
	out := make([][]int32, len(qs))
	err := runBatch(len(qs), opts.workers(), nil, func(i int) error {
		ids, err := db.possibleKNN(rt.tree, qs[i], k, cache) // k-NN accepts out-of-domain points
		out[i] = ids
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BatchPossibleKNN answers N possible-k-NN queries from the order-k
// grid with a worker pool and the index's persistent leaf cache —
// the grid-served counterpart of DB.BatchOrderK. Like PossibleKNN, it
// errors once the database has mutated past the grid's snapshot.
func (ix *OrderKIndex) BatchPossibleKNN(qs []Point, opts *BatchOptions) ([][]int32, error) {
	if err := ix.fresh(); err != nil {
		return nil, err
	}
	cache := cacheAt(ix.batch.cachesGridFor(opts.cacheSize(), 1), 0)
	out := make([][]int32, len(qs))
	err := runBatch(len(qs), opts.workers(), nil, func(i int) error {
		ids, _, err := ix.inner.PossibleKNNCached(qs[i], cache)
		out[i] = ids
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
