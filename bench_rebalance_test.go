package uvdiagram_test

// Rebalance benchmarks: the per-event cost of an online Reshard (full
// re-derivation + new layout, published with one pointer swap) and of
// concurrent per-shard compaction at parallelism 1 vs 2. CI runs these
// as the rebalance smoke stage (-bench 'Reshard|ConcurrentCompact');
// BENCH_rebalance.json records the uvbench -exp rebalance sweep on the
// reference container.

import (
	"context"
	"fmt"
	"testing"

	"uvdiagram"
	"uvdiagram/internal/datagen"
)

// rebalanceFixture builds (once per config) a skewed sharded DB.
func rebalanceFixture(b *testing.B, n, shards int) *fixture {
	b.Helper()
	key := fmt.Sprintf("rb-%d-%d", n, shards)
	fixMu.Lock()
	defer fixMu.Unlock()
	if f, ok := fixes[key]; ok {
		return f
	}
	cfg := datagen.Config{N: n, Side: benchSide, Diameter: 40, Seed: 7}
	objs := datagen.Skewed(cfg, benchSide/10)
	db, err := uvdiagram.Build(objs, cfg.Domain(), &uvdiagram.Options{SeedK: 100, Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	f := &fixture{db: db, queries: datagen.Queries(256, benchSide, 13)}
	fixes[key] = f
	return f
}

// BenchmarkReshard measures one online reshard of a skewed 16-shard
// database to weighted-median cuts (derivation + parallel shard builds
// + the layout swap).
func BenchmarkReshard(b *testing.B) {
	f := rebalanceFixture(b, 800, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.db.Reshard(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentCompact measures CompactAll over every shard at
// parallelism 1 versus 2 — the two-level locks let the P=2 rollout
// overlap disjoint shadow builds.
func BenchmarkConcurrentCompact(b *testing.B) {
	for _, p := range []int{1, 2} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			f := rebalanceFixture(b, 800, 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.db.CompactAll(context.Background(), p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
