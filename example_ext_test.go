package uvdiagram_test

import (
	"fmt"
	"log"

	"uvdiagram"
)

// ExampleDB_RNN shows the reverse query: which objects might have the
// query point as THEIR nearest neighbor. The two eastern objects are
// close companions — each always has the other nearer than q — so only
// the isolated western object can have q as its nearest neighbor.
func ExampleDB_RNN() {
	objs := []uvdiagram.Object{
		uvdiagram.NewObject(0, 300, 500, 20, nil), // isolated, west of q
		uvdiagram.NewObject(1, 700, 500, 20, nil), // east of q ...
		uvdiagram.NewObject(2, 760, 500, 20, nil), // ... with a close companion
	}
	db, err := uvdiagram.Build(objs, uvdiagram.SquareDomain(1000), nil)
	if err != nil {
		log.Fatal(err)
	}
	ids, _ := db.PossibleRNN(uvdiagram.Pt(500, 500))
	fmt.Println("possible reverse nearest neighbors:", ids)

	// Output:
	// possible reverse nearest neighbors: [0]
}

// ExampleDB_NewContinuousPNN shows a moving query: inside the safe
// circle no re-evaluation happens and the answer set is guaranteed
// unchanged.
func ExampleDB_NewContinuousPNN() {
	objs := []uvdiagram.Object{
		uvdiagram.NewObject(0, 200, 500, 30, nil),
		uvdiagram.NewObject(1, 800, 500, 30, nil),
	}
	db, err := uvdiagram.Build(objs, uvdiagram.SquareDomain(1000), nil)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := db.NewContinuousPNN(uvdiagram.Pt(300, 500))
	if err != nil {
		log.Fatal(err)
	}
	// A tiny move stays inside the safe circle: no recomputation.
	_, recomputed, err := sess.Move(uvdiagram.Pt(301, 500))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tiny move recomputed:", recomputed)
	// Crossing the midpoint changes the nearest neighbor.
	ids, _, err := sess.Move(uvdiagram.Pt(700, 500))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after crossing:", ids)
	// Output:
	// tiny move recomputed: false
	// after crossing: [1]
}

// ExampleBuild3 shows the 3D UV-diagram: uncertain balls, octree
// index, 3D PNN.
func ExampleBuild3() {
	objs := []uvdiagram.Object3{
		uvdiagram.NewObject3(0, 20, 50, 50, 5, nil),
		uvdiagram.NewObject3(1, 80, 50, 50, 5, nil),
	}
	db, err := uvdiagram.Build3(objs, uvdiagram.CubeDomain(100), nil)
	if err != nil {
		log.Fatal(err)
	}
	answers, _, err := db.PNN(uvdiagram.Pt3(30, 50, 50))
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range answers {
		fmt.Printf("object %d (P=%.2f)\n", a.ID, a.Prob)
	}
	// Output:
	// object 0 (P=1.00)
}

// ExampleDB_NewOrderKIndex shows the order-k generalization: an index
// over the regions where objects can be among the k nearest.
func ExampleDB_NewOrderKIndex() {
	objs := []uvdiagram.Object{
		uvdiagram.NewObject(0, 450, 500, 10, nil),
		uvdiagram.NewObject(1, 550, 500, 10, nil),
		uvdiagram.NewObject(2, 900, 900, 10, nil),
	}
	db, err := uvdiagram.Build(objs, uvdiagram.SquareDomain(1000), nil)
	if err != nil {
		log.Fatal(err)
	}
	ix, err := db.NewOrderKIndex(2)
	if err != nil {
		log.Fatal(err)
	}
	ids, _, err := ix.PossibleKNN(uvdiagram.Pt(500, 500))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("possible 2-NN objects:", ids)
	// Output:
	// possible 2-NN objects: [0 1]
}
