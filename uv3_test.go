package uvdiagram_test

import (
	"math"
	"math/rand"
	"testing"

	"uvdiagram"
)

func build3DB(t testing.TB, n int, seed int64) *uvdiagram.DB3 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	objs := make([]uvdiagram.Object3, n)
	for i := range objs {
		objs[i] = uvdiagram.NewObject3(int32(i),
			5+rng.Float64()*190, 5+rng.Float64()*190, 5+rng.Float64()*190,
			1+rng.Float64()*3, uvdiagram.GaussianPDF3())
	}
	db, err := uvdiagram.Build3(objs, uvdiagram.CubeDomain(200), nil)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBuild3AndQuery(t *testing.T) {
	db := build3DB(t, 200, 1)
	if db.Len() != 200 {
		t.Fatalf("Len = %d", db.Len())
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		q := uvdiagram.Pt3(rng.Float64()*200, rng.Float64()*200, rng.Float64()*200)
		got, st, err := db.PNN(q)
		if err != nil {
			t.Fatal(err)
		}
		want := db.PNNBruteForce(q)
		if len(got) != len(want) {
			t.Fatalf("q=%v: index %v vs brute %v", q, got, want)
		}
		sum := 0.0
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("q=%v: index %v vs brute %v", q, got, want)
			}
			if math.Abs(got[i].Prob-want[i].Prob) > 1e-9 {
				t.Fatalf("q=%v: probabilities differ: %v vs %v", q, got[i], want[i])
			}
			sum += got[i].Prob
		}
		if math.Abs(sum-1) > 0.02 {
			t.Fatalf("q=%v: probabilities sum to %v", q, sum)
		}
		if st.LeafEntries <= 0 {
			t.Fatalf("no leaf entries read")
		}
	}
}

func TestBuild3Stats(t *testing.T) {
	db := build3DB(t, 150, 3)
	st := db.BuildStats()
	if st.N != 150 || st.SumCR <= 0 || st.TotalDur <= 0 {
		t.Fatalf("build stats %+v", st)
	}
	if st.PruneRatio() <= 0 {
		t.Fatalf("3D pruning achieved nothing: %+v", st)
	}
	ixst := db.IndexStats()
	if ixst.Leaves < 1 || ixst.Entries < int64(db.Len()) {
		t.Fatalf("index stats %+v", ixst)
	}
}

func TestObject3Lookup(t *testing.T) {
	db := build3DB(t, 10, 4)
	if _, err := db.Object(3); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Object(-1); err == nil {
		t.Fatal("negative id accepted")
	}
	if _, err := db.Object(10); err == nil {
		t.Fatal("out-of-range id accepted")
	}
}
