package pager

import (
	"bytes"
	"testing"
)

func FuzzDecodeLeafTuples(f *testing.F) {
	f.Add(EncodeLeafTuples([]LeafTuple{{ID: 1, CX: 2, CY: 3, R: 4, Pointer: 5}}))
	f.Add(EncodeLeafTuples(nil))
	f.Add([]byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		ts, err := DecodeLeafTuples(data)
		if err != nil {
			return
		}
		// Round trip: decoded tuples re-encode to a decodable page with
		// identical content.
		out, err := DecodeLeafTuples(EncodeLeafTuples(ts))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(out) != len(ts) {
			t.Fatalf("length changed: %d -> %d", len(ts), len(out))
		}
		for i := range ts {
			// Compare bit patterns (NaN-safe).
			a := EncodeLeafTuples(ts[i : i+1])
			b := EncodeLeafTuples(out[i : i+1])
			if !bytes.Equal(a, b) {
				t.Fatalf("tuple %d changed", i)
			}
		}
	})
}

func FuzzDecodeLeafTuples3(f *testing.F) {
	f.Add(EncodeLeafTuples3([]LeafTuple3{{ID: 1, CX: 2, CY: 3, CZ: 4, R: 5, Pointer: 6}}))
	f.Add([]byte{1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		ts, err := DecodeLeafTuples3(data)
		if err != nil {
			return
		}
		out, err := DecodeLeafTuples3(EncodeLeafTuples3(ts))
		if err != nil || len(out) != len(ts) {
			t.Fatalf("re-decode: %v (%d -> %d)", err, len(ts), len(out))
		}
	})
}

func FuzzDecodeObjectRecord(f *testing.F) {
	f.Add(EncodeObjectRecord(ObjectRecord{ID: 3, CX: 1, CY: 2, R: 3, Weights: []float64{0.5, 0.5}}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeObjectRecord(data)
		if err != nil {
			return
		}
		out, err := DecodeObjectRecord(EncodeObjectRecord(rec))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if out.ID != rec.ID || len(out.Weights) != len(rec.Weights) {
			t.Fatalf("record changed: %+v -> %+v", rec, out)
		}
	})
}
