// Package pager simulates a disk of fixed-size pages with read/write
// accounting. Both the R-tree baseline and the UV-index store their leaf
// payloads through a Pager, so the I/O numbers reported by the benchmark
// harness (Figure 6(b) and friends) are counted at a single choke point.
package pager

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultPageSize is the 4 KB page size used by the paper's evaluation.
const DefaultPageSize = 4096

// PageID names a page on the simulated disk.
type PageID int32

// Pager is a simulated disk. It is safe for concurrent use: reads take
// a shared lock and allocations an exclusive one, and the I/O counters
// are atomic — so a database served over the network can run queries in
// parallel while an insert allocates pages.
type Pager struct {
	mu       sync.RWMutex
	pageSize int
	pages    [][]byte
	// free holds the ids of freed page slots, reused by Alloc. A reused
	// slot gets a NEW buffer: the old buffer is never rewritten, so a
	// reader that obtained it through Read keeps seeing the retired
	// page's content — the property copy-on-write leaf tables rely on.
	free   []PageID
	reads  atomic.Int64
	writes atomic.Int64
}

// New returns an empty pager with the given page size (DefaultPageSize
// if size ≤ 0).
func New(size int) *Pager {
	if size <= 0 {
		size = DefaultPageSize
	}
	return &Pager{pageSize: size}
}

// PageSize returns the page size in bytes.
func (p *Pager) PageSize() int { return p.pageSize }

// NumPages returns the number of live (allocated, not freed) pages.
func (p *Pager) NumPages() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.pages) - len(p.free)
}

// BytesOnDisk returns the total simulated disk footprint.
func (p *Pager) BytesOnDisk() int64 {
	return int64(p.NumPages()) * int64(p.pageSize)
}

// Alloc writes data to a fresh page and returns its id, preferring a
// freed slot over growing the disk. It counts as one write. data must
// fit in a page.
func (p *Pager) Alloc(data []byte) PageID {
	if len(data) > p.pageSize {
		panic(fmt.Sprintf("pager: payload %d bytes exceeds page size %d", len(data), p.pageSize))
	}
	page := make([]byte, p.pageSize)
	copy(page, data)
	p.mu.Lock()
	var id PageID
	if n := len(p.free); n > 0 {
		id = p.free[n-1]
		p.free = p.free[:n-1]
		p.pages[id] = page
	} else {
		p.pages = append(p.pages, page)
		id = PageID(len(p.pages) - 1)
	}
	p.mu.Unlock()
	p.writes.Add(1)
	return id
}

// Free returns page slots to the allocator. The buffers themselves are
// left untouched until the slot is reused (see Alloc); callers are
// responsible for freeing a page only once no reader can still reach
// its id (the epoch domains guarantee this for the COW index paths).
func (p *Pager) Free(ids []PageID) {
	if len(ids) == 0 {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, ids...)
	p.mu.Unlock()
}

// Write replaces the content of an existing page; one write.
func (p *Pager) Write(id PageID, data []byte) {
	if len(data) > p.pageSize {
		panic(fmt.Sprintf("pager: payload %d bytes exceeds page size %d", len(data), p.pageSize))
	}
	p.mu.Lock()
	page := p.pages[id]
	for i := range page {
		page[i] = 0
	}
	copy(page, data)
	p.mu.Unlock()
	p.writes.Add(1)
}

// Read returns the content of a page; one read. The returned slice is
// the live page buffer: callers must treat it as read-only.
func (p *Pager) Read(id PageID) []byte {
	p.reads.Add(1)
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.pages[id]
}

// Reads returns the number of page reads since the last ResetStats.
func (p *Pager) Reads() int64 { return p.reads.Load() }

// Writes returns the number of page writes since the last ResetStats.
func (p *Pager) Writes() int64 { return p.writes.Load() }

// ResetStats zeroes the I/O counters (the pages stay).
func (p *Pager) ResetStats() {
	p.reads.Store(0)
	p.writes.Store(0)
}
