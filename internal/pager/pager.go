// Package pager simulates a disk of fixed-size pages with read/write
// accounting. Both the R-tree baseline and the UV-index store their leaf
// payloads through a Pager, so the I/O numbers reported by the benchmark
// harness (Figure 6(b) and friends) are counted at a single choke point.
//
// A Pager is a thin accounting shell over a Store backend. Two backends
// exist: the in-heap HeapStore (every page a heap buffer — the
// construction and default serving mode) and the mmap-backed FileStore
// (page images served zero-copy out of a read-only file mapping, with an
// in-heap append-only tail for pages written after open — the
// out-of-core serving mode, see filestore.go).
package pager

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultPageSize is the 4 KB page size used by the paper's evaluation.
const DefaultPageSize = 4096

// PageID names a page on the simulated disk.
type PageID int32

// Store is the page-storage backend of a Pager. Implementations share
// the copy-on-write contract the index structures rely on: a freed
// slot's old buffer is never rewritten while a reader can still reach
// it — reusing a slot installs a FRESH buffer (heap) or points the slot
// at a fresh tail buffer (file), so a reader that obtained a page
// through Read keeps seeing the retired page's content without any
// reader-side synchronization.
//
// Read is safe to call concurrently with Alloc/Free/Write of OTHER
// pages; Alloc/Free/Write/Vacuum serialize against each other
// internally. Freeing a page still reachable by a concurrent reader is
// the caller's bug (the epoch domains guarantee the grace period for
// the COW index paths).
type Store interface {
	// PageSize returns the page size in bytes.
	PageSize() int
	// NumPages returns the number of live (allocated, not freed) pages.
	NumPages() int
	// Read returns page id's buffer. The result is zero-copy (the live
	// buffer, or a slice into the mapped file) and must be treated as
	// read-only.
	Read(id PageID) []byte
	// Alloc stores data in a fresh page and returns its id, preferring a
	// freed slot over growing the disk.
	Alloc(data []byte) PageID
	// Write replaces the content of an existing page. Not safe against a
	// concurrent reader of the SAME page; the index paths never rewrite
	// a reachable page (they Alloc a replacement and Free the old slot).
	Write(id PageID, data []byte)
	// Free returns page slots to the allocator.
	Free(ids []PageID)
	// Vacuum reclaims the storage behind freed slots — heap buffers are
	// dropped for the GC, dead extents of a mapped file are advised out
	// of the page cache — and returns the number of bytes reclaimed.
	// Slot ids stay valid for reuse by Alloc.
	Vacuum() int64
}

// Pager is a simulated disk: a Store plus atomic I/O counters. It is
// safe for concurrent use under the Store contract above — reads are
// lock-free, so a database served over the network can run queries in
// parallel while an insert allocates pages.
type Pager struct {
	store  Store
	reads  atomic.Int64
	writes atomic.Int64
}

// New returns an empty in-heap pager with the given page size
// (DefaultPageSize if size ≤ 0).
func New(size int) *Pager { return NewWithStore(NewHeapStore(size)) }

// NewWithStore returns a pager over an explicit backend.
func NewWithStore(s Store) *Pager { return &Pager{store: s} }

// Store exposes the backend (backend-specific operations such as
// FileStore residency probes).
func (p *Pager) Store() Store { return p.store }

// PageSize returns the page size in bytes.
func (p *Pager) PageSize() int { return p.store.PageSize() }

// NumPages returns the number of live (allocated, not freed) pages.
func (p *Pager) NumPages() int { return p.store.NumPages() }

// BytesOnDisk returns the total simulated disk footprint.
func (p *Pager) BytesOnDisk() int64 {
	return int64(p.NumPages()) * int64(p.PageSize())
}

// Alloc writes data to a fresh page and returns its id, preferring a
// freed slot over growing the disk. It counts as one write. data must
// fit in a page.
func (p *Pager) Alloc(data []byte) PageID {
	id := p.store.Alloc(data)
	p.writes.Add(1)
	return id
}

// Free returns page slots to the allocator. The buffers themselves are
// left untouched until the slot is reused (see Store); callers are
// responsible for freeing a page only once no reader can still reach
// its id (the epoch domains guarantee this for the COW index paths).
func (p *Pager) Free(ids []PageID) {
	if len(ids) == 0 {
		return
	}
	p.store.Free(ids)
}

// Write replaces the content of an existing page; one write.
func (p *Pager) Write(id PageID, data []byte) {
	p.store.Write(id, data)
	p.writes.Add(1)
}

// Read returns the content of a page; one read. The returned slice is
// the live page buffer (or a view into the mapped file): callers must
// treat it as read-only.
func (p *Pager) Read(id PageID) []byte {
	p.reads.Add(1)
	return p.store.Read(id)
}

// Peek is Read without I/O accounting — the persistence and maintenance
// paths use it so writing a snapshot does not pollute the query-side
// read counters.
func (p *Pager) Peek(id PageID) []byte { return p.store.Read(id) }

// Vacuum reclaims the storage behind freed page slots (see
// Store.Vacuum) and returns the number of bytes reclaimed. Callers must
// only run it once the frees themselves were epoch-safe, which the
// retire paths guarantee by construction: Free already runs after the
// grace period.
func (p *Pager) Vacuum() int64 { return p.store.Vacuum() }

// Reads returns the number of page reads since the last ResetStats.
func (p *Pager) Reads() int64 { return p.reads.Load() }

// Writes returns the number of page writes since the last ResetStats.
func (p *Pager) Writes() int64 { return p.writes.Load() }

// ResetStats zeroes the I/O counters (the pages stay).
func (p *Pager) ResetStats() {
	p.reads.Store(0)
	p.writes.Store(0)
}

// HeapStore keeps every page in a heap buffer. Reads are LOCK-FREE: the
// page-slot array is published through an atomic pointer snapshot, so
// Read is one atomic load plus an index. The publication protocol makes
// this safe without a reader-side lock:
//
//   - Growing the array publishes a fresh slice header; a reader holding
//     an older header simply cannot see (and, by the COW index
//     invariant, cannot hold the id of) pages allocated after its load.
//   - Reusing a freed slot stores a fresh buffer into the SHARED backing
//     array, but only after the epoch grace period guarantees no reader
//     can reach that slot's id — concurrent reads of other elements
//     never touch the written address.
//   - A published page buffer itself is immutable (Alloc copies, Write
//     is construction-only), so the data a reader dereferences is
//     always the bytes that were there when its id was reachable.
type HeapStore struct {
	pageSize int
	pages    atomic.Pointer[[][]byte]
	mu       sync.Mutex // serializes Alloc/Free/Write/Vacuum
	free     []PageID
}

// NewHeapStore returns an empty in-heap store with the given page size
// (DefaultPageSize if size ≤ 0).
func NewHeapStore(size int) *HeapStore {
	if size <= 0 {
		size = DefaultPageSize
	}
	s := &HeapStore{pageSize: size}
	s.pages.Store(new([][]byte))
	return s
}

// PageSize returns the page size in bytes.
func (s *HeapStore) PageSize() int { return s.pageSize }

// NumPages returns the number of live (allocated, not freed) pages.
func (s *HeapStore) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(*s.pages.Load()) - len(s.free)
}

// Read returns page id's buffer, lock-free.
func (s *HeapStore) Read(id PageID) []byte { return (*s.pages.Load())[id] }

func checkFit(data []byte, pageSize int) {
	if len(data) > pageSize {
		panic(fmt.Sprintf("pager: payload %d bytes exceeds page size %d", len(data), pageSize))
	}
}

// Alloc copies data into a fresh page buffer and returns its id. A
// reused slot gets a NEW buffer: the old buffer is never rewritten, so
// a reader that obtained it through Read keeps seeing the retired
// page's content — the property copy-on-write leaf tables rely on.
func (s *HeapStore) Alloc(data []byte) PageID {
	checkFit(data, s.pageSize)
	page := make([]byte, s.pageSize)
	copy(page, data)
	s.mu.Lock()
	var id PageID
	cur := s.pages.Load()
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
		// In-place element store into the shared backing array: no
		// reader can hold this id (see the type comment), and readers of
		// other elements never load this address.
		(*cur)[id] = page
	} else {
		np := append(*cur, page)
		id = PageID(len(np) - 1)
		// Publish the longer header; older headers stay valid for the
		// ids their readers can reach.
		s.pages.Store(&np)
	}
	s.mu.Unlock()
	return id
}

// Free returns page slots to the allocator; buffers are retained until
// the slot is reused or Vacuum drops them.
func (s *HeapStore) Free(ids []PageID) {
	s.mu.Lock()
	s.free = append(s.free, ids...)
	s.mu.Unlock()
}

// Write replaces the content of an existing page in place, zeroing any
// tail the payload does not cover (no zeroing work when the payload
// fills the page). Construction-time only: in-place mutation is not
// safe against a concurrent reader of the same page.
func (s *HeapStore) Write(id PageID, data []byte) {
	checkFit(data, s.pageSize)
	s.mu.Lock()
	page := (*s.pages.Load())[id]
	if page == nil { // slot vacuumed after Free; Write revives it
		page = make([]byte, s.pageSize)
		(*s.pages.Load())[id] = page
	}
	copy(page, data)
	clear(page[len(data):])
	s.mu.Unlock()
}

// Vacuum drops the buffers of freed slots so the GC can reclaim them
// (Alloc installs a fresh buffer on reuse regardless). Returns the
// bytes released.
func (s *HeapStore) Vacuum() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := *s.pages.Load()
	var n int64
	for _, id := range s.free {
		if cur[id] != nil {
			cur[id] = nil
			n += int64(s.pageSize)
		}
	}
	return n
}
