package pager

import (
	"math"
	"testing"
)

func TestLeafTuples3RoundTrip(t *testing.T) {
	in := []LeafTuple3{
		{ID: 0, CX: 1.5, CY: -2.25, CZ: 3.75, R: 0.5, Pointer: 42},
		{ID: 7, CX: math.Pi, CY: math.E, CZ: -math.Sqrt2, R: 123.456, Pointer: 1 << 40},
		{ID: -1, CX: 0, CY: 0, CZ: 0, R: 0, Pointer: 0},
	}
	page := EncodeLeafTuples3(in)
	out, err := DecodeLeafTuples3(page)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("tuple %d: %+v != %+v", i, in[i], out[i])
		}
	}
}

func TestLeafTuples3Empty(t *testing.T) {
	out, err := DecodeLeafTuples3(EncodeLeafTuples3(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("empty round trip produced %v", out)
	}
}

func TestLeafTuples3Truncated(t *testing.T) {
	page := EncodeLeafTuples3([]LeafTuple3{{ID: 1}, {ID: 2}})
	if _, err := DecodeLeafTuples3(page[:len(page)-1]); err == nil {
		t.Fatal("truncated page accepted")
	}
	if _, err := DecodeLeafTuples3(nil); err == nil {
		t.Fatal("nil page accepted")
	}
	if _, err := DecodeLeafTuples3([]byte{1}); err == nil {
		t.Fatal("1-byte page accepted")
	}
}

func TestTuplesPerPage3(t *testing.T) {
	if n := TuplesPerPage3(4096); n != (4096-2)/LeafTuple3Size {
		t.Fatalf("TuplesPerPage3(4096) = %d", n)
	}
	// A full page of tuples must actually fit.
	n := TuplesPerPage3(DefaultPageSize)
	page := EncodeLeafTuples3(make([]LeafTuple3, n))
	if len(page) > DefaultPageSize {
		t.Fatalf("full page is %d bytes, exceeds %d", len(page), DefaultPageSize)
	}
}
