package pager

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPagerAllocReadWrite(t *testing.T) {
	p := New(64)
	if p.PageSize() != 64 {
		t.Fatalf("PageSize = %d", p.PageSize())
	}
	id := p.Alloc([]byte("hello"))
	got := p.Read(id)
	if !bytes.Equal(got[:5], []byte("hello")) {
		t.Errorf("Read = %q", got[:5])
	}
	if len(got) != 64 {
		t.Errorf("page length = %d", len(got))
	}
	p.Write(id, []byte("bye"))
	got = p.Read(id)
	if !bytes.Equal(got[:3], []byte("bye")) || got[3] != 0 {
		t.Errorf("after Write, Read = %q", got[:5])
	}
	if p.Reads() != 2 || p.Writes() != 2 {
		t.Errorf("counters = %d reads, %d writes", p.Reads(), p.Writes())
	}
	p.ResetStats()
	if p.Reads() != 0 || p.Writes() != 0 {
		t.Error("ResetStats did not zero counters")
	}
	if p.NumPages() != 1 || p.BytesOnDisk() != 64 {
		t.Errorf("NumPages=%d BytesOnDisk=%d", p.NumPages(), p.BytesOnDisk())
	}
}

func TestPagerDefaultSize(t *testing.T) {
	if New(0).PageSize() != DefaultPageSize {
		t.Error("zero size should default")
	}
	if New(-5).PageSize() != DefaultPageSize {
		t.Error("negative size should default")
	}
}

func TestPagerOversizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversize Alloc did not panic")
		}
	}()
	New(8).Alloc(make([]byte, 9))
}

func TestLeafTupleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40)
		ts := make([]LeafTuple, n)
		for i := range ts {
			ts[i] = LeafTuple{
				ID:      rng.Int31(),
				CX:      rng.NormFloat64() * 1e4,
				CY:      rng.NormFloat64() * 1e4,
				R:       rng.Float64() * 100,
				Pointer: rng.Uint64(),
			}
		}
		buf := EncodeLeafTuples(ts)
		got, err := DecodeLeafTuples(buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("decoded %d tuples, want %d", len(got), n)
		}
		for i := range ts {
			if got[i] != ts[i] {
				t.Fatalf("tuple %d: %+v vs %+v", i, got[i], ts[i])
			}
		}
	}
}

func TestDecodeLeafTuplesErrors(t *testing.T) {
	if _, err := DecodeLeafTuples([]byte{1}); err == nil {
		t.Error("short page accepted")
	}
	// Count says 5 but no payload.
	if _, err := DecodeLeafTuples([]byte{5, 0}); err == nil {
		t.Error("truncated page accepted")
	}
}

func TestTuplesPerPage(t *testing.T) {
	n := TuplesPerPage(DefaultPageSize)
	if n <= 0 {
		t.Fatalf("TuplesPerPage = %d", n)
	}
	if 2+n*LeafTupleSize > DefaultPageSize {
		t.Error("claimed capacity does not fit in a page")
	}
	if 2+(n+1)*LeafTupleSize <= DefaultPageSize {
		t.Error("capacity is not maximal")
	}
}

func TestObjectRecordRoundTrip(t *testing.T) {
	err := quick.Check(func(id int32, cx, cy float64, r float64, seed int64) bool {
		if math.IsNaN(cx) || math.IsNaN(cy) || math.IsNaN(r) {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		ws := make([]float64, 1+rng.Intn(30))
		for i := range ws {
			ws[i] = rng.Float64()
		}
		rec := ObjectRecord{ID: id, CX: cx, CY: cy, R: r, Weights: ws}
		got, err := DecodeObjectRecord(EncodeObjectRecord(rec))
		if err != nil {
			return false
		}
		if got.ID != rec.ID || got.CX != rec.CX || got.CY != rec.CY || got.R != rec.R {
			return false
		}
		if len(got.Weights) != len(ws) {
			return false
		}
		for i := range ws {
			if got.Weights[i] != ws[i] {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestDecodeObjectRecordErrors(t *testing.T) {
	if _, err := DecodeObjectRecord(make([]byte, 10)); err == nil {
		t.Error("short object page accepted")
	}
	buf := make([]byte, 30)
	buf[28] = 200 // claims 200 weights
	if _, err := DecodeObjectRecord(buf); err == nil {
		t.Error("truncated object page accepted")
	}
}
