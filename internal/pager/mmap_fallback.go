//go:build !linux

package pager

import (
	"io"
	"os"
)

const adviseDontNeed = 0

// mapFile is the portable fallback: pread the whole file into one heap
// buffer. FileStore's zero-copy slot views work identically over it;
// only the resident-set economics differ (everything is heap), which
// Mapping.Mapped reports so harnesses can label their numbers.
func mapFile(f *os.File, size int) ([]byte, bool, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, int64(size)), data); err != nil {
		return nil, false, err
	}
	return data, false, nil
}

func unmap(data []byte) error { return nil }

func advise(b []byte, advice int) error { return nil }

func resident(b []byte) (int64, bool) { return 0, false }

func fadviseDontNeed(f *os.File, off, n int64) error { return nil }
