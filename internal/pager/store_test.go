package pager

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// writeTempPages writes n sequential page images of the given size to a
// temp file and returns its mapping: page i is filled with byte i+1 and
// stamped with its index, so content mismatches are loud.
func writeTempPages(t *testing.T, n, pageSize int) *Mapping {
	t.Helper()
	buf := make([]byte, n*pageSize)
	for i := 0; i < n; i++ {
		page := buf[i*pageSize : (i+1)*pageSize]
		for j := range page {
			page[j] = byte(i + 1)
		}
		binary.LittleEndian.PutUint32(page, uint32(i))
	}
	path := filepath.Join(t.TempDir(), "pages.bin")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MapFile(f)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func TestFileStoreReadsAreZeroCopy(t *testing.T) {
	const n, ps = 8, 128
	m := writeTempPages(t, n, ps)
	fs, err := NewFileStore(m, 0, n, ps)
	if err != nil {
		t.Fatal(err)
	}
	p := NewWithStore(fs)
	if p.NumPages() != n || p.PageSize() != ps {
		t.Fatalf("NumPages=%d PageSize=%d", p.NumPages(), p.PageSize())
	}
	for i := 0; i < n; i++ {
		got := p.Read(PageID(i))
		if int(binary.LittleEndian.Uint32(got)) != i || got[ps-1] != byte(i+1) {
			t.Fatalf("page %d content wrong", i)
		}
		if &got[0] != &m.Data()[i*ps] {
			t.Fatalf("page %d read is not a view into the mapping", i)
		}
	}
	if p.Reads() != int64(n) {
		t.Fatalf("reads = %d", p.Reads())
	}
}

func TestFileStoreCOWTail(t *testing.T) {
	const n, ps = 4, 64
	m := writeTempPages(t, n, ps)
	fs, err := NewFileStore(m, 0, n, ps)
	if err != nil {
		t.Fatal(err)
	}
	p := NewWithStore(fs)

	// A reader holds page 1's mapped bytes.
	old := p.Read(1)
	oldCopy := append([]byte(nil), old...)

	// Rewrite page 1: the slot must repoint at a heap buffer, the old
	// view must keep its bytes.
	p.Write(1, []byte("rewritten"))
	if !bytes.Equal(old, oldCopy) {
		t.Fatal("mapped bytes changed under a reader after Write")
	}
	if got := p.Read(1); !bytes.Equal(got[:9], []byte("rewritten")) {
		t.Fatalf("after Write, Read = %q", got[:9])
	}

	// Free page 2 (grace period elapsed by assumption), then Alloc: the
	// slot is reused with fresh heap bytes while the old view survives.
	old2 := p.Read(2)
	old2Copy := append([]byte(nil), old2...)
	p.Free([]PageID{2})
	id := p.Alloc([]byte("reuse"))
	if id != 2 {
		t.Fatalf("Alloc reused slot %d, want 2", id)
	}
	if !bytes.Equal(old2, old2Copy) {
		t.Fatal("freed page's bytes changed after slot reuse")
	}
	if got := p.Read(2); !bytes.Equal(got[:5], []byte("reuse")) {
		t.Fatalf("reused slot content = %q", got[:5])
	}

	// Appending grows past the base region.
	id = p.Alloc([]byte("tail"))
	if int(id) != n {
		t.Fatalf("tail alloc got id %d, want %d", id, n)
	}
	if fs.TailBytes() != 3*ps {
		t.Fatalf("TailBytes = %d, want %d", fs.TailBytes(), 3*ps)
	}

	// Vacuum reclaims dead base extents without touching live slots.
	p.Vacuum()
	for i := 0; i < n; i++ {
		if i == 1 || i == 2 {
			continue
		}
		got := p.Read(PageID(i))
		if int(binary.LittleEndian.Uint32(got)) != i {
			t.Fatalf("page %d corrupted by Vacuum", i)
		}
	}
}

func TestFileStoreSectionBounds(t *testing.T) {
	m := writeTempPages(t, 4, 64)
	if _, err := NewFileStore(m, 0, 5, 64); err == nil {
		t.Error("section past the mapping accepted")
	}
	if _, err := NewFileStore(m, 128, 4, 64); err == nil {
		t.Error("offset section past the mapping accepted")
	}
	fs, err := NewFileStore(m, 128, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := fs.Read(0); int(binary.LittleEndian.Uint32(got)) != 2 {
		t.Error("section offset not honored")
	}
}

// TestHeapStoreLockFreeRead exercises concurrent lock-free reads
// against allocation, slot reuse and vacuum under the epoch discipline
// (readers only ever read ids they were handed, frees only cover ids no
// reader holds). Run with -race.
func TestHeapStoreLockFreeRead(t *testing.T) {
	p := New(64)
	const readers = 4
	// Stable pages every reader may read at any time.
	stable := make([]PageID, 32)
	for i := range stable {
		stable[i] = p.Alloc([]byte{byte(i)})
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := stable[(i+seed)%len(stable)]
				b := p.Read(id)
				if b[0] != byte((i+seed)%len(stable)) {
					t.Errorf("page %d content %d", id, b[0])
					return
				}
			}
		}(r)
	}
	// Mutator: churn private pages (alloc, free, vacuum, reuse) while
	// the readers hammer the stable ones.
	for i := 0; i < 2000; i++ {
		ids := []PageID{p.Alloc([]byte("a")), p.Alloc([]byte("b"))}
		p.Free(ids)
		if i%16 == 0 {
			p.Vacuum()
		}
	}
	close(stop)
	wg.Wait()
}

func TestHeapStoreVacuum(t *testing.T) {
	p := New(128)
	a := p.Alloc([]byte("a"))
	b := p.Alloc([]byte("b"))
	p.Free([]PageID{a})
	if got := p.Vacuum(); got != 128 {
		t.Fatalf("Vacuum reclaimed %d bytes, want 128", got)
	}
	if got := p.Vacuum(); got != 0 {
		t.Fatalf("second Vacuum reclaimed %d bytes, want 0", got)
	}
	// The freed slot is still reusable and the live page untouched.
	if id := p.Alloc([]byte("c")); id != a {
		t.Fatalf("Alloc after Vacuum = %d, want %d", id, a)
	}
	if got := p.Read(b); got[0] != 'b' {
		t.Fatal("live page corrupted by Vacuum")
	}
}

func TestPagerPeekDoesNotCount(t *testing.T) {
	p := New(64)
	id := p.Alloc([]byte("x"))
	p.ResetStats()
	if got := p.Peek(id); got[0] != 'x' {
		t.Fatal("Peek content")
	}
	if p.Reads() != 0 {
		t.Fatalf("Peek counted as %d reads", p.Reads())
	}
}

func TestMappingDropAndResident(t *testing.T) {
	const n = 64
	ps := os.Getpagesize()
	m := writeTempPages(t, n, ps)
	fs, err := NewFileStore(m, 0, n, ps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		_ = fs.Read(PageID(i))[0]
	}
	if res, ok := fs.Resident(); ok && res == 0 {
		t.Error("no resident bytes after touching every page")
	}
	if m.Mapped() {
		if dropped := fs.DropCaches(); dropped != n*ps {
			t.Errorf("DropCaches advised %d bytes, want %d", dropped, n*ps)
		}
	}
	// Pages must still read correctly after the drop (refault).
	for i := 0; i < n; i++ {
		got := fs.Read(PageID(i))
		if int(binary.LittleEndian.Uint32(got)) != i {
			t.Fatalf("page %d corrupted by DropCaches", i)
		}
	}
}
