package pager

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The binary page layouts used by the indexes. All integers are little
// endian; floats are IEEE-754 bits.

// LeafTuple is the <ID, MBC, pointer> tuple stored in UV-index and
// R-tree leaf pages (Section V-A): 4 + 3·8 + 8 = 36 bytes encoded.
type LeafTuple struct {
	ID      int32
	CX, CY  float64 // MBC center
	R       float64 // MBC radius
	Pointer uint64  // disk address of the object's page
}

// LeafTupleSize is the encoded size of a LeafTuple in bytes.
const LeafTupleSize = 4 + 8 + 8 + 8 + 8

// EncodeLeafTuples serializes tuples, prefixed by a uint16 count.
func EncodeLeafTuples(ts []LeafTuple) []byte {
	buf := make([]byte, 2+len(ts)*LeafTupleSize)
	binary.LittleEndian.PutUint16(buf, uint16(len(ts)))
	off := 2
	for _, t := range ts {
		binary.LittleEndian.PutUint32(buf[off:], uint32(t.ID))
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(t.CX))
		binary.LittleEndian.PutUint64(buf[off+12:], math.Float64bits(t.CY))
		binary.LittleEndian.PutUint64(buf[off+20:], math.Float64bits(t.R))
		binary.LittleEndian.PutUint64(buf[off+28:], t.Pointer)
		off += LeafTupleSize
	}
	return buf
}

// DecodeLeafTuples parses a page written by EncodeLeafTuples.
func DecodeLeafTuples(page []byte) ([]LeafTuple, error) {
	if len(page) < 2 {
		return nil, fmt.Errorf("pager: leaf page too short (%d bytes)", len(page))
	}
	n := int(binary.LittleEndian.Uint16(page))
	need := 2 + n*LeafTupleSize
	if len(page) < need {
		return nil, fmt.Errorf("pager: leaf page truncated: need %d bytes, have %d", need, len(page))
	}
	ts := make([]LeafTuple, n)
	off := 2
	for i := range ts {
		ts[i].ID = int32(binary.LittleEndian.Uint32(page[off:]))
		ts[i].CX = math.Float64frombits(binary.LittleEndian.Uint64(page[off+4:]))
		ts[i].CY = math.Float64frombits(binary.LittleEndian.Uint64(page[off+12:]))
		ts[i].R = math.Float64frombits(binary.LittleEndian.Uint64(page[off+20:]))
		ts[i].Pointer = binary.LittleEndian.Uint64(page[off+28:])
		off += LeafTupleSize
	}
	return ts, nil
}

// TuplesPerPage returns how many leaf tuples fit in one page of the
// given size.
func TuplesPerPage(pageSize int) int {
	return (pageSize - 2) / LeafTupleSize
}

// ObjectRecord is the full uncertainty information of one object as
// stored on its own disk page: region plus pdf histogram bars.
type ObjectRecord struct {
	ID      int32
	CX, CY  float64
	R       float64
	Weights []float64
}

// EncodeObjectRecord serializes an object page.
func EncodeObjectRecord(rec ObjectRecord) []byte {
	buf := make([]byte, 4+24+2+len(rec.Weights)*8)
	binary.LittleEndian.PutUint32(buf, uint32(rec.ID))
	binary.LittleEndian.PutUint64(buf[4:], math.Float64bits(rec.CX))
	binary.LittleEndian.PutUint64(buf[12:], math.Float64bits(rec.CY))
	binary.LittleEndian.PutUint64(buf[20:], math.Float64bits(rec.R))
	binary.LittleEndian.PutUint16(buf[28:], uint16(len(rec.Weights)))
	off := 30
	for _, w := range rec.Weights {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(w))
		off += 8
	}
	return buf
}

// DecodeObjectRecord parses a page written by EncodeObjectRecord.
func DecodeObjectRecord(page []byte) (ObjectRecord, error) {
	return DecodeObjectRecordInto(page, nil)
}

// DecodeObjectRecordInto is DecodeObjectRecord appending the weights
// into a caller-owned buffer (pass buf[:0] to reuse it): the query hot
// path decodes one record per candidate and must not allocate per
// fetch. A nil buffer allocates as before.
func DecodeObjectRecordInto(page []byte, buf []float64) (ObjectRecord, error) {
	var rec ObjectRecord
	if len(page) < 30 {
		return rec, fmt.Errorf("pager: object page too short (%d bytes)", len(page))
	}
	rec.ID = int32(binary.LittleEndian.Uint32(page))
	rec.CX = math.Float64frombits(binary.LittleEndian.Uint64(page[4:]))
	rec.CY = math.Float64frombits(binary.LittleEndian.Uint64(page[12:]))
	rec.R = math.Float64frombits(binary.LittleEndian.Uint64(page[20:]))
	n := int(binary.LittleEndian.Uint16(page[28:]))
	if len(page) < 30+8*n {
		return rec, fmt.Errorf("pager: object page truncated")
	}
	off := 30
	for i := 0; i < n; i++ {
		buf = append(buf, math.Float64frombits(binary.LittleEndian.Uint64(page[off:])))
		off += 8
	}
	rec.Weights = buf
	return rec, nil
}
