//go:build linux

package pager

import (
	"os"
	"syscall"
	"unsafe"
)

const adviseDontNeed = syscall.MADV_DONTNEED

// mapFile mmaps the first size bytes of f read-only. MAP_SHARED on a
// read-only mapping never writes back; it just lets the kernel share
// page-cache pages across processes serving the same snapshot.
func mapFile(f *os.File, size int) ([]byte, bool, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func unmap(data []byte) error { return syscall.Munmap(data) }

// posixFadvDontNeed is POSIX_FADV_DONTNEED (asm-generic/fadvise.h).
const posixFadvDontNeed = 4

// fadviseDontNeed asks the kernel to evict the clean page-cache pages
// backing [off, off+n) of the file. Madvise alone only zaps the page
// tables — the pages stay cached and mincore keeps reporting them
// resident — so DropRange pairs it with this to release the memory for
// real. Best-effort: errors are reported but a failed fadvise leaves
// nothing worse than warm caches.
func fadviseDontNeed(f *os.File, off, n int64) error {
	_, _, errno := syscall.Syscall6(syscall.SYS_FADVISE64,
		f.Fd(), uintptr(off), uintptr(n), posixFadvDontNeed, 0, 0)
	if errno != 0 {
		return errno
	}
	return nil
}

func advise(b []byte, advice int) error { return syscall.Madvise(b, advice) }

// resident counts the bytes of b resident in physical memory via
// mincore(2). b must be OS-page-aligned at its start (mapping bases
// are; interior probes round inward before calling).
func resident(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, true
	}
	ps := os.Getpagesize()
	// Round the probe inward to page boundaries: mincore requires an
	// aligned address.
	addr := uintptr(unsafe.Pointer(&b[0]))
	if off := int(addr % uintptr(ps)); off != 0 {
		skip := ps - off
		if skip >= len(b) {
			return 0, true
		}
		b = b[skip:]
		addr += uintptr(skip)
	}
	npages := (len(b) + ps - 1) / ps
	vec := make([]byte, npages)
	_, _, errno := syscall.Syscall(syscall.SYS_MINCORE, addr, uintptr(len(b)), uintptr(unsafe.Pointer(&vec[0])))
	if errno != 0 {
		return 0, false
	}
	var n int64
	for _, v := range vec {
		if v&1 != 0 {
			n += int64(ps)
		}
	}
	return n, true
}
