package pager

import (
	"encoding/binary"
	"fmt"
	"math"
)

// LeafTuple3 is the <ID, MBS, pointer> tuple stored in the 3D octree
// index's leaf pages: the minimum bounding sphere replaces the MBC.
type LeafTuple3 struct {
	ID         int32
	CX, CY, CZ float64 // MBS center
	R          float64 // MBS radius
	Pointer    uint64
}

// LeafTuple3Size is the encoded size of a LeafTuple3 in bytes.
const LeafTuple3Size = 4 + 4*8 + 8

// EncodeLeafTuples3 serializes tuples, prefixed by a uint16 count.
func EncodeLeafTuples3(ts []LeafTuple3) []byte {
	buf := make([]byte, 2+len(ts)*LeafTuple3Size)
	binary.LittleEndian.PutUint16(buf, uint16(len(ts)))
	off := 2
	for _, t := range ts {
		binary.LittleEndian.PutUint32(buf[off:], uint32(t.ID))
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(t.CX))
		binary.LittleEndian.PutUint64(buf[off+12:], math.Float64bits(t.CY))
		binary.LittleEndian.PutUint64(buf[off+20:], math.Float64bits(t.CZ))
		binary.LittleEndian.PutUint64(buf[off+28:], math.Float64bits(t.R))
		binary.LittleEndian.PutUint64(buf[off+36:], t.Pointer)
		off += LeafTuple3Size
	}
	return buf
}

// DecodeLeafTuples3 parses a page written by EncodeLeafTuples3.
func DecodeLeafTuples3(page []byte) ([]LeafTuple3, error) {
	if len(page) < 2 {
		return nil, fmt.Errorf("pager: 3D leaf page too short (%d bytes)", len(page))
	}
	n := int(binary.LittleEndian.Uint16(page))
	need := 2 + n*LeafTuple3Size
	if len(page) < need {
		return nil, fmt.Errorf("pager: 3D leaf page truncated: need %d bytes, have %d", need, len(page))
	}
	ts := make([]LeafTuple3, n)
	off := 2
	for i := range ts {
		ts[i].ID = int32(binary.LittleEndian.Uint32(page[off:]))
		ts[i].CX = math.Float64frombits(binary.LittleEndian.Uint64(page[off+4:]))
		ts[i].CY = math.Float64frombits(binary.LittleEndian.Uint64(page[off+12:]))
		ts[i].CZ = math.Float64frombits(binary.LittleEndian.Uint64(page[off+20:]))
		ts[i].R = math.Float64frombits(binary.LittleEndian.Uint64(page[off+28:]))
		ts[i].Pointer = binary.LittleEndian.Uint64(page[off+36:])
		off += LeafTuple3Size
	}
	return ts, nil
}

// TuplesPerPage3 returns how many 3D leaf tuples fit in one page.
func TuplesPerPage3(pageSize int) int {
	return (pageSize - 2) / LeafTuple3Size
}
