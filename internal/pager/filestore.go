package pager

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Mapping is a read-only view of a whole snapshot file: an mmap'd
// region on platforms that support it (see mmap_linux.go), or the file
// preread into one heap buffer as the portable fallback. Several
// FileStores (one per snapshot section) share one Mapping.
type Mapping struct {
	data   []byte
	f      *os.File
	mapped bool // true when data is a real mmap (madvise/mincore work)
}

// MapFile maps f read-only and takes ownership of it: Close unmaps the
// region and closes the file. On platforms without mmap support the
// whole file is preread into memory instead (Mapped reports which).
func MapFile(f *os.File) (*Mapping, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size <= 0 {
		return nil, fmt.Errorf("pager: cannot map empty file %s", f.Name())
	}
	if size > 1<<46 {
		return nil, fmt.Errorf("pager: file %s too large to map (%d bytes)", f.Name(), size)
	}
	data, mapped, err := mapFile(f, int(size))
	if err != nil {
		return nil, err
	}
	return &Mapping{data: data, f: f, mapped: mapped}, nil
}

// Data returns the mapped bytes. Read-only: writing through it faults
// (mmap) or corrupts the shared preread buffer (fallback).
func (m *Mapping) Data() []byte { return m.data }

// Mapped reports whether the view is a real file mapping (zero heap)
// rather than the preread fallback.
func (m *Mapping) Mapped() bool { return m.mapped }

// Close unmaps the region and closes the underlying file. The mapping
// must not be used afterwards.
func (m *Mapping) Close() error {
	var err error
	if m.mapped && m.data != nil {
		err = unmap(m.data)
	}
	m.data = nil
	if m.f != nil {
		if cerr := m.f.Close(); err == nil {
			err = cerr
		}
		m.f = nil
	}
	return err
}

// DropRange advises the OS that [off, off+n) of the mapping will not be
// needed soon, releasing its resident pages back to the kernel (they
// refault from the file on the next access). The range is shrunk to OS
// page boundaries; a no-op on the preread fallback. Returns the bytes
// actually advised.
func (m *Mapping) DropRange(off, n int) int {
	if !m.mapped || n <= 0 || off < 0 || off+n > len(m.data) {
		return 0
	}
	ps := os.Getpagesize()
	lo := (off + ps - 1) / ps * ps
	hi := (off + n) / ps * ps
	if hi <= lo {
		return 0
	}
	if err := advise(m.data[lo:hi], adviseDontNeed); err != nil {
		return 0
	}
	// Madvise only zaps the page tables; the pages stay in the OS page
	// cache (and mincore keeps counting them) until the paired fadvise
	// evicts them from the backing file. Best-effort — dirty or busy
	// pages the kernel declines to drop just stay warm.
	if m.f != nil {
		_ = fadviseDontNeed(m.f, int64(lo), int64(hi-lo))
	}
	return hi - lo
}

// Resident returns how many bytes of [off, off+n) are currently
// resident in physical memory, and whether the probe is supported
// (false on the preread fallback, where everything is heap anyway).
func (m *Mapping) Resident(off, n int) (int64, bool) {
	if !m.mapped || n <= 0 || off < 0 || off+n > len(m.data) {
		return 0, false
	}
	return resident(m.data[off : off+n])
}

// FileStore serves a fixed array of page images out of a Mapping
// zero-copy, with an in-heap APPEND-ONLY tail for pages allocated or
// rewritten after open. The copy-on-write contract holds by
// construction: the mapped base region is never written (it is a
// read-only mapping), so slot reuse and page rewrites always point the
// slot at a fresh heap buffer while the old bytes — mapped or heap —
// stay intact for any reader that already holds them. Freed or
// replaced base pages accumulate as dead extents that Vacuum advises
// out of the page cache, which is what bounds the resident set when an
// index larger than RAM is served off the file.
//
// Reads are lock-free exactly like HeapStore's (same published-snapshot
// protocol); the slots of base pages simply start out as subslices of
// the mapping instead of heap buffers.
type FileStore struct {
	pageSize int
	m        *Mapping
	off      int // byte offset of the base page array inside the mapping
	base     int // number of base (mapped) pages
	slots    atomic.Pointer[[][]byte]
	mu       sync.Mutex // serializes Alloc/Free/Write/Vacuum
	free     []PageID
	// dead lists base pages whose mapped bytes are no longer reachable
	// (freed after the epoch grace period, or replaced by Write); the
	// next Vacuum advises their extents away and clears the list.
	dead      []PageID
	tailPages int // heap pages currently live (allocated - vacuumed)
}

// NewFileStore returns a store whose pages 0..count-1 are the count
// page images of the given size starting at byte off of the mapping.
func NewFileStore(m *Mapping, off, count, pageSize int) (*FileStore, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("pager: file store page size %d", pageSize)
	}
	if count < 0 || off < 0 || off+count*pageSize > len(m.data) {
		return nil, fmt.Errorf("pager: file store section [%d, %d+%d×%d) exceeds mapping of %d bytes",
			off, off, count, pageSize, len(m.data))
	}
	s := &FileStore{pageSize: pageSize, m: m, off: off, base: count}
	slots := make([][]byte, count)
	for i := range slots {
		lo := off + i*pageSize
		slots[i] = m.data[lo : lo+pageSize : lo+pageSize]
	}
	s.slots.Store(&slots)
	return s, nil
}

// PageSize returns the page size in bytes.
func (s *FileStore) PageSize() int { return s.pageSize }

// NumPages returns the number of live (allocated, not freed) pages.
func (s *FileStore) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(*s.slots.Load()) - len(s.free)
}

// Read returns page id's buffer — a zero-copy view into the mapped
// file for base pages, a heap buffer for tail pages — lock-free.
func (s *FileStore) Read(id PageID) []byte { return (*s.slots.Load())[id] }

// isBaseSlot reports whether slot id currently points into the mapping
// (callers hold mu).
func (s *FileStore) isBaseSlot(cur [][]byte, id PageID) bool {
	if int(id) >= s.base {
		return false
	}
	lo := s.off + int(id)*s.pageSize
	b := cur[id]
	return b != nil && len(s.m.data) > 0 && &b[0] == &s.m.data[lo]
}

// Alloc appends data as a fresh heap (tail) page, reusing a freed slot
// id when one exists. Mapped bytes are never rewritten.
func (s *FileStore) Alloc(data []byte) PageID {
	checkFit(data, s.pageSize)
	page := make([]byte, s.pageSize)
	copy(page, data)
	s.mu.Lock()
	var id PageID
	cur := s.slots.Load()
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
		(*cur)[id] = page
	} else {
		np := append(*cur, page)
		id = PageID(len(np) - 1)
		s.slots.Store(&np)
	}
	s.tailPages++
	s.mu.Unlock()
	return id
}

// Free returns page slots to the allocator. Base pages become dead
// extents for the next Vacuum; tail buffers are retained until reuse or
// Vacuum.
func (s *FileStore) Free(ids []PageID) {
	s.mu.Lock()
	cur := *s.slots.Load()
	for _, id := range ids {
		if s.isBaseSlot(cur, id) {
			s.dead = append(s.dead, id)
		}
	}
	s.free = append(s.free, ids...)
	s.mu.Unlock()
}

// Write replaces page id by pointing its slot at a fresh heap buffer
// (the mapping is read-only, so in-place rewrite is impossible); the
// old bytes stay visible to readers that already obtained them, and a
// replaced base page becomes a dead extent.
func (s *FileStore) Write(id PageID, data []byte) {
	checkFit(data, s.pageSize)
	page := make([]byte, s.pageSize)
	copy(page, data)
	s.mu.Lock()
	cur := *s.slots.Load()
	if s.isBaseSlot(cur, id) {
		s.dead = append(s.dead, id)
		s.tailPages++ // the slot turns from mapped to heap
	} // replacing an existing heap page keeps the count
	cur[id] = page
	s.mu.Unlock()
}

// Vacuum drops freed tail buffers for the GC and advises the dead base
// extents out of the OS page cache, returning the bytes reclaimed. Safe
// only because Free itself runs post-grace (see Pager.Vacuum).
func (s *FileStore) Vacuum() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := *s.slots.Load()
	var n int64
	for _, id := range s.free {
		if cur[id] != nil && !s.isBaseSlot(cur, id) {
			cur[id] = nil
			s.tailPages--
			n += int64(s.pageSize)
		}
	}
	if len(s.dead) > 0 {
		sort.Slice(s.dead, func(i, j int) bool { return s.dead[i] < s.dead[j] })
		runLo, runHi := int(s.dead[0]), int(s.dead[0])+1
		flush := func() {
			n += int64(s.m.DropRange(s.off+runLo*s.pageSize, (runHi-runLo)*s.pageSize))
		}
		for _, id := range s.dead[1:] {
			if int(id) == runHi-1 { // duplicate (freed then rewritten)
				continue
			}
			if int(id) == runHi {
				runHi++
				continue
			}
			flush()
			runLo, runHi = int(id), int(id)+1
		}
		flush()
		s.dead = s.dead[:0]
	}
	return n
}

// DropCaches advises the WHOLE base region out of the OS page cache —
// the harness's cold-start / resident-set-cap lever. Live mapped pages
// refault from the file on their next read. Returns the bytes advised
// (0 on the preread fallback).
func (s *FileStore) DropCaches() int {
	return s.m.DropRange(s.off, s.base*s.pageSize)
}

// Resident returns how many bytes of the base region are resident in
// physical memory (false when the probe is unsupported).
func (s *FileStore) Resident() (int64, bool) {
	return s.m.Resident(s.off, s.base*s.pageSize)
}

// BasePages returns the number of base (mapped) page slots the store
// was opened with; the byte extent it serves off the file is
// BasePages() × PageSize().
func (s *FileStore) BasePages() int { return s.base }

// TailBytes returns the heap footprint of the append-only tail (pages
// allocated or rewritten since open, minus vacuumed ones).
func (s *FileStore) TailBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(s.tailPages) * int64(s.pageSize)
}
