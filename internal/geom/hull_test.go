package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestConvexHullSquare(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.2, 0.8}}
	h := ConvexHull(pts)
	if len(h) != 4 {
		t.Fatalf("hull size = %d, want 4: %v", len(h), h)
	}
	if PolygonArea(h) <= 0 {
		t.Error("hull should be counter-clockwise")
	}
	if !almostEq(PolygonArea(h), 1, 1e-12) {
		t.Errorf("hull area = %v", PolygonArea(h))
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull(nil); h != nil {
		t.Errorf("empty hull = %v", h)
	}
	if h := ConvexHull([]Point{{1, 1}}); len(h) != 1 {
		t.Errorf("single hull = %v", h)
	}
	if h := ConvexHull([]Point{{1, 1}, {1, 1}, {1, 1}}); len(h) != 1 {
		t.Errorf("duplicate hull = %v", h)
	}
	h := ConvexHull([]Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	if len(h) != 2 {
		t.Errorf("collinear hull = %v", h)
	}
}

// TestConvexHullProperties checks, for random inputs: every input point
// lies inside the hull, hull vertices are input points, and the hull is
// convex.
func TestConvexHullProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(60)
		pts := make([]Point, n)
		inSet := map[Point]bool{}
		for i := range pts {
			pts[i] = Pt(math.Round(rng.Float64()*20), math.Round(rng.Float64()*20))
			inSet[pts[i]] = true
		}
		h := ConvexHull(pts)
		for _, p := range pts {
			if len(h) >= 3 && !PointInConvex(h, p) {
				t.Fatalf("trial %d: input point %v outside hull %v", trial, p, h)
			}
		}
		for _, v := range h {
			if !inSet[v] {
				t.Fatalf("trial %d: hull vertex %v not an input point", trial, v)
			}
		}
		// Convexity: all turns strictly left.
		for i := 0; i < len(h) && len(h) >= 3; i++ {
			a, b, c := h[i], h[(i+1)%len(h)], h[(i+2)%len(h)]
			if turn(a, b, c) <= 0 {
				t.Fatalf("trial %d: non-left turn at %v %v %v", trial, a, b, c)
			}
		}
	}
}

func TestPointInConvex(t *testing.T) {
	sq := []Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}}
	if !PointInConvex(sq, Pt(1, 1)) || !PointInConvex(sq, Pt(0, 0)) || !PointInConvex(sq, Pt(2, 1)) {
		t.Error("inside/boundary points rejected")
	}
	if PointInConvex(sq, Pt(3, 1)) || PointInConvex(sq, Pt(-0.001, 1)) {
		t.Error("outside points accepted")
	}
}

func TestPolygonArea(t *testing.T) {
	tri := []Point{{0, 0}, {4, 0}, {0, 3}}
	if !almostEq(PolygonArea(tri), 6, 1e-12) {
		t.Errorf("triangle area = %v", PolygonArea(tri))
	}
	// Clockwise gives negative.
	cw := []Point{{0, 0}, {0, 3}, {4, 0}}
	if !almostEq(PolygonArea(cw), -6, 1e-12) {
		t.Errorf("cw area = %v", PolygonArea(cw))
	}
}
