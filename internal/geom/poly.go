package geom

import (
	"math"
	"sort"
)

// Real-root solvers for low-degree polynomials, used by the exact
// conic-intersection routines (the paper computes UV-edge intersections
// "by using linear algebra techniques [36]"; this is our equivalent).
// All solvers return real roots in ascending order and polish them with
// a few Newton steps for float64 accuracy.

// SolveQuadratic returns the real roots of ax² + bx + c = 0.
// A zero leading coefficient degrades gracefully to the linear case.
func SolveQuadratic(a, b, c float64) []float64 {
	if a == 0 {
		if b == 0 {
			return nil
		}
		return []float64{-c / b}
	}
	disc := b*b - 4*a*c
	if disc < 0 {
		return nil
	}
	sq := math.Sqrt(disc)
	// Numerically stable form: avoid cancellation.
	q := -(b + math.Copysign(sq, b)) / 2
	var roots []float64
	if q != 0 {
		roots = append(roots, c/q)
	}
	roots = append(roots, q/a)
	sort.Float64s(roots)
	if len(roots) == 2 && roots[0] == roots[1] {
		roots = roots[:1]
	}
	return roots
}

// SolveCubic returns the real roots of ax³ + bx² + cx + d = 0
// (Cardano with trigonometric resolution of the casus irreducibilis).
func SolveCubic(a, b, c, d float64) []float64 {
	if a == 0 {
		return SolveQuadratic(b, c, d)
	}
	// Depressed cubic t³ + pt + q with x = t − b/(3a).
	b, c, d = b/a, c/a, d/a
	p := c - b*b/3
	q := 2*b*b*b/27 - b*c/3 + d
	shift := -b / 3

	var roots []float64
	disc := q*q/4 + p*p*p/27
	switch {
	case disc > 0:
		sq := math.Sqrt(disc)
		u := math.Cbrt(-q/2 + sq)
		v := math.Cbrt(-q/2 - sq)
		roots = []float64{u + v + shift}
	case disc == 0:
		if q == 0 {
			roots = []float64{shift}
		} else {
			u := math.Cbrt(-q / 2)
			roots = []float64{2*u + shift, -u + shift}
		}
	default:
		// Three real roots.
		r := math.Sqrt(-p * p * p / 27)
		phi := math.Acos(clamp(-q/(2*r), -1, 1))
		m := 2 * math.Sqrt(-p/3)
		for k := 0; k < 3; k++ {
			roots = append(roots, m*math.Cos((phi+2*math.Pi*float64(k))/3)+shift)
		}
	}
	poly := func(x float64) float64 { return ((x+b)*x+c)*x + d }
	dpoly := func(x float64) float64 { return (3*x+2*b)*x + c }
	for i := range roots {
		roots[i] = polish(poly, dpoly, roots[i])
	}
	sort.Float64s(roots)
	return dedupRoots(roots, 1e-9)
}

// SolveQuartic returns the real roots of ax⁴ + bx³ + cx² + dx + e = 0
// via Ferrari's resolvent cubic.
func SolveQuartic(a, b, c, d, e float64) []float64 {
	if a == 0 {
		return SolveCubic(b, c, d, e)
	}
	b, c, d, e = b/a, c/a, d/a, e/a
	// Depressed quartic y⁴ + py² + qy + r with x = y − b/4.
	p := c - 3*b*b/8
	q := d - b*c/2 + b*b*b/8
	r := e - b*d/4 + b*b*c/16 - 3*b*b*b*b/256
	shift := -b / 4

	var roots []float64
	if math.Abs(q) < 1e-13*(1+math.Abs(p)+math.Abs(r)) {
		// Biquadratic: y⁴ + py² + r = 0.
		for _, z := range SolveQuadratic(1, p, r) {
			if z < 0 {
				continue
			}
			s := math.Sqrt(z)
			roots = append(roots, s+shift, -s+shift)
		}
	} else {
		// Resolvent cubic: z³ + 2pz² + (p²−4r)z − q² = 0; any positive
		// root z gives the factorization.
		var z float64
		found := false
		for _, cand := range SolveCubic(1, 2*p, p*p-4*r, -q*q) {
			if cand > 1e-300 {
				z = cand
				found = true
				break
			}
		}
		if found {
			s := math.Sqrt(z)
			// y² ± s·y + (p+z ∓ q/s)/2 = 0.
			roots = append(roots, SolveQuadratic(1, s, (p+z-q/s)/2)...)
			roots = append(roots, SolveQuadratic(1, -s, (p+z+q/s)/2)...)
			for i := range roots {
				roots[i] += shift
			}
		}
	}
	poly := func(x float64) float64 { return (((x+b)*x+c)*x+d)*x + e }
	dpoly := func(x float64) float64 { return ((4*x+3*b)*x+2*c)*x + d }
	for i := range roots {
		roots[i] = polish(poly, dpoly, roots[i])
	}
	sort.Float64s(roots)
	return dedupRoots(roots, 1e-9)
}

// polish applies a few guarded Newton steps.
func polish(f, df func(float64) float64, x float64) float64 {
	for i := 0; i < 4; i++ {
		d := df(x)
		if d == 0 {
			break
		}
		step := f(x) / d
		if math.IsNaN(step) || math.IsInf(step, 0) {
			break
		}
		nx := x - step
		if math.Abs(f(nx)) >= math.Abs(f(x)) {
			break
		}
		x = nx
	}
	return x
}

// dedupRoots merges roots closer than tol (relative to magnitude).
func dedupRoots(roots []float64, tol float64) []float64 {
	if len(roots) == 0 {
		return roots
	}
	out := roots[:1]
	for _, r := range roots[1:] {
		last := out[len(out)-1]
		if math.Abs(r-last) > tol*(1+math.Abs(r)+math.Abs(last)) {
			out = append(out, r)
		}
	}
	return out
}
