package geom

import "math"

// Conic is the implicit curve Ax² + Bxy + Cy² + Dx + Ey + F = 0.
type Conic struct {
	A, B, C, D, E, F float64
}

// Eval returns the implicit polynomial at p.
func (c Conic) Eval(p Point) float64 {
	return c.A*p.X*p.X + c.B*p.X*p.Y + c.C*p.Y*p.Y + c.D*p.X + c.E*p.Y + c.F
}

// ConicOfUVEdge expands the sqrt-free implicit form of the full
// hyperbola containing a UV-edge (both branches):
//
//	L(p)² − 4S²·|p−Fj|²  with  L(p) = |p−Fi|² − |p−Fj|² − S²
//
// into explicit conic coefficients (the expansion is quadratic because
// |p−Fi|² − |p−Fj|² is linear in p).
func ConicOfUVEdge(e UVEdge) Conic {
	ax := 2 * (e.Fj.X - e.Fi.X) // L = ax·x + ay·y + k
	ay := 2 * (e.Fj.Y - e.Fi.Y)
	k := e.Fi.NormSq() - e.Fj.NormSq() - e.S*e.S
	s2 := e.S * e.S
	return Conic{
		A: ax*ax - 4*s2,
		B: 2 * ax * ay,
		C: ay*ay - 4*s2,
		D: 2*ax*k + 8*s2*e.Fj.X,
		E: 2*ay*k + 8*s2*e.Fj.Y,
		F: k*k - 4*s2*e.Fj.NormSq(),
	}
}

// IntersectUVEdges returns the intersection points of the two UV-edge
// branches (not the full conics): the points where both distance
// conditions hold simultaneously. It is exact up to float64: e1's
// branch is rationally parameterized as
//
//	x = a(1+t²)/(1−t²), y = 2bt/(1−t²), t ∈ (−1, 1)
//
// in its focal frame, and substituting into e2's implicit conic and
// clearing the denominator yields a quartic in t, solved analytically.
// Spurious roots from the squared form (the wrong branch of e2) are
// filtered by the exact distance predicates.
//
// This is the machinery the paper invokes as "linear algebra techniques
// [36]" for Algorithm 1; the library itself uses the radial cell
// representation instead and keeps this routine for cross-validation.
func IntersectUVEdges(e1, e2 UVEdge) []Point {
	if !e1.Exists() || !e2.Exists() {
		return nil
	}
	conic2 := ConicOfUVEdge(e2)
	a, bb, _ := e1.SemiAxes()
	center := e1.Center()
	theta := e1.Theta()

	// World point of parameter t (valid for |t| < 1).
	at := func(t float64) Point {
		den := 1 - t*t
		local := Point{a * (1 + t*t) / den, 2 * bb * t / den}
		return center.Add(local.Rotate(theta))
	}
	// g(t) = conic2(at(t))·(1−t²)² is a polynomial of degree ≤ 4.
	g := func(t float64) float64 {
		den := 1 - t*t
		return conic2.Eval(at(t)) * den * den
	}
	// Recover its five coefficients by interpolation at five nodes.
	nodes := [5]float64{-0.6, -0.3, 0, 0.3, 0.6}
	var vals [5]float64
	for i, t := range nodes {
		vals[i] = g(t)
	}
	coeffs, ok := fitPoly4(nodes, vals)
	if !ok {
		return nil
	}

	var out []Point
	tol := 1e-7 * (1 + e1.Fi.Dist(e1.Fj) + e2.Fi.Dist(e2.Fj))
	for _, t := range SolveQuartic(coeffs[4], coeffs[3], coeffs[2], coeffs[1], coeffs[0]) {
		if t <= -1+1e-12 || t >= 1-1e-12 {
			continue
		}
		p := at(t)
		// Both exact branch conditions must hold.
		if math.Abs(e1.Delta(p)) < tol && math.Abs(e2.Delta(p)) < tol {
			out = append(out, p)
		}
	}
	return out
}

// fitPoly4 solves the 5×5 Vandermonde system for the coefficients
// (c0..c4) of the degree-4 polynomial through the given nodes.
func fitPoly4(xs [5]float64, ys [5]float64) ([5]float64, bool) {
	var m [5][6]float64
	for i := 0; i < 5; i++ {
		pow := 1.0
		for j := 0; j < 5; j++ {
			m[i][j] = pow
			pow *= xs[i]
		}
		m[i][5] = ys[i]
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < 5; col++ {
		piv := col
		for r := col + 1; r < 5; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if m[piv][col] == 0 {
			return [5]float64{}, false
		}
		m[col], m[piv] = m[piv], m[col]
		for r := 0; r < 5; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for j := col; j < 6; j++ {
				m[r][j] -= f * m[col][j]
			}
		}
	}
	var out [5]float64
	for i := 0; i < 5; i++ {
		out[i] = m[i][5] / m[i][i]
	}
	return out, true
}
