package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewRectSwaps(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	if r.Min != Pt(1, 2) || r.Max != Pt(5, 7) {
		t.Errorf("NewRect = %v", r)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(0, 0, 4, 2)
	if r.W() != 4 || r.H() != 2 || r.Area() != 8 {
		t.Errorf("dims wrong: %v %v %v", r.W(), r.H(), r.Area())
	}
	if r.Center() != Pt(2, 1) {
		t.Errorf("Center = %v", r.Center())
	}
	if !r.Contains(Pt(0, 0)) || !r.Contains(Pt(4, 2)) || r.Contains(Pt(4.001, 1)) {
		t.Error("Contains boundary handling wrong")
	}
}

func TestRectOverlapsUnion(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	b := NewRect(1, 1, 3, 3)
	c := NewRect(5, 5, 6, 6)
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a,b should overlap")
	}
	if a.Overlaps(c) {
		t.Error("a,c should not overlap")
	}
	// Touching edges count as overlap (closed rectangles).
	d := NewRect(2, 0, 4, 2)
	if !a.Overlaps(d) {
		t.Error("touching rectangles should overlap")
	}
	u := a.Union(c)
	if u != NewRect(0, 0, 6, 6) {
		t.Errorf("Union = %v", u)
	}
	if !u.ContainsRect(a) || !u.ContainsRect(c) {
		t.Error("union must contain operands")
	}
}

func TestQuadrantsTile(t *testing.T) {
	r := NewRect(-3, 2, 9, 14)
	total := 0.0
	for k := 0; k < 4; k++ {
		q := r.Quadrant(k)
		total += q.Area()
		if !r.ContainsRect(q) {
			t.Errorf("quadrant %d outside parent", k)
		}
	}
	if !almostEq(total, r.Area(), 1e-12) {
		t.Errorf("quadrant areas sum %v, want %v", total, r.Area())
	}
	// Interiors must be pairwise disjoint.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			a, b := r.Quadrant(i), r.Quadrant(j)
			ix := math.Min(a.Max.X, b.Max.X) - math.Max(a.Min.X, b.Min.X)
			iy := math.Min(a.Max.Y, b.Max.Y) - math.Max(a.Min.Y, b.Min.Y)
			if ix > 1e-12 && iy > 1e-12 {
				t.Errorf("quadrants %d,%d overlap with area", i, j)
			}
		}
	}
}

func TestQuadrantForConsistent(t *testing.T) {
	r := Square(100)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		p := Pt(rng.Float64()*100, rng.Float64()*100)
		k := r.QuadrantFor(p)
		if !r.Quadrant(k).Contains(p) {
			t.Fatalf("point %v assigned to quadrant %d which does not contain it", p, k)
		}
	}
}

func TestMinMaxDist(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	if d := r.MinDist(Pt(1, 1)); d != 0 {
		t.Errorf("MinDist inside = %v", d)
	}
	if d := r.MinDist(Pt(5, 1)); d != 3 {
		t.Errorf("MinDist right = %v", d)
	}
	if d := r.MinDist(Pt(5, 6)); !almostEq(d, 5, 1e-14) {
		t.Errorf("MinDist corner = %v", d)
	}
	if d := r.MaxDist(Pt(0, 0)); !almostEq(d, math.Sqrt(8), 1e-14) {
		t.Errorf("MaxDist = %v", d)
	}
}

// TestMinMaxDistBrute compares against dense sampling of the rectangle.
func TestMinMaxDistBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		r := NewRect(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10+10, rng.Float64()*10+10)
		p := Pt(rng.Float64()*40-10, rng.Float64()*40-10)
		minB, maxB := math.Inf(1), 0.0
		const n = 60
		for i := 0; i <= n; i++ {
			for j := 0; j <= n; j++ {
				q := Pt(r.Min.X+float64(i)/n*r.W(), r.Min.Y+float64(j)/n*r.H())
				d := p.Dist(q)
				minB = math.Min(minB, d)
				maxB = math.Max(maxB, d)
			}
		}
		if r.MinDist(p) > minB+1e-9 {
			t.Errorf("MinDist %v > brute %v", r.MinDist(p), minB)
		}
		if r.MaxDist(p) < maxB-1e-9 {
			t.Errorf("MaxDist %v < brute %v", r.MaxDist(p), maxB)
		}
	}
}

func TestRayExit(t *testing.T) {
	r := Square(10)
	from := Pt(5, 5)
	cases := []struct {
		dir  Point
		want float64
	}{
		{Pt(1, 0), 5},
		{Pt(-1, 0), 5},
		{Pt(0, 1), 5},
		{Pt(0, -1), 5},
		{Pt(1, 1).Unit(), 5 * math.Sqrt2},
	}
	for _, c := range cases {
		if got := r.RayExit(from, c.dir); !almostEq(got, c.want, 1e-12) {
			t.Errorf("RayExit(%v) = %v, want %v", c.dir, got, c.want)
		}
	}
}

// TestRayExitOnBoundary checks that the exit point lies on the rectangle
// boundary for random interior origins and directions.
func TestRayExitOnBoundary(t *testing.T) {
	r := NewRect(1, 2, 11, 8)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		from := Pt(1+rng.Float64()*10, 2+rng.Float64()*6)
		dir := PolarUnit(rng.Float64() * 2 * math.Pi)
		tExit := r.RayExit(from, dir)
		p := from.Add(dir.Scale(tExit))
		onX := almostEq(p.X, r.Min.X, 1e-9) || almostEq(p.X, r.Max.X, 1e-9)
		onY := almostEq(p.Y, r.Min.Y, 1e-9) || almostEq(p.Y, r.Max.Y, 1e-9)
		if !onX && !onY {
			t.Fatalf("exit point %v not on boundary of %v", p, r)
		}
		if !r.Contains(Pt(clamp(p.X, r.Min.X, r.Max.X), clamp(p.Y, r.Min.Y, r.Max.Y))) {
			t.Fatalf("exit point %v far outside %v", p, r)
		}
	}
}
