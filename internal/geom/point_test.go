package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestPointArithmetic(t *testing.T) {
	p := Pt(3, 4)
	q := Pt(-1, 2)
	if got := p.Add(q); got != Pt(2, 6) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(4, 2) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 5 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != 10 {
		t.Errorf("Cross = %v", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := p.NormSq(); got != 25 {
		t.Errorf("NormSq = %v", got)
	}
	if got := p.Dist(q); !almostEq(got, math.Sqrt(20), 1e-14) {
		t.Errorf("Dist = %v", got)
	}
}

func TestUnitZeroVector(t *testing.T) {
	if got := Pt(0, 0).Unit(); got != Pt(1, 0) {
		t.Errorf("Unit(0) = %v, want (1,0)", got)
	}
	u := Pt(3, -7).Unit()
	if !almostEq(u.Norm(), 1, 1e-14) {
		t.Errorf("|Unit| = %v", u.Norm())
	}
}

func TestRotatePreservesNorm(t *testing.T) {
	err := quick.Check(func(x, y, theta float64) bool {
		x = math.Mod(x, 1e6)
		y = math.Mod(y, 1e6)
		theta = math.Mod(theta, 100)
		p := Pt(x, y)
		r := p.Rotate(theta)
		return almostEq(p.Norm(), r.Norm(), 1e-9)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestRotateQuarterTurn(t *testing.T) {
	r := Pt(1, 0).Rotate(math.Pi / 2)
	if !almostEq(r.X, 0, 1e-15) || !almostEq(r.Y, 1, 1e-15) {
		t.Errorf("quarter turn = %v", r)
	}
}

func TestPolarUnit(t *testing.T) {
	for _, phi := range []float64{0, 0.5, math.Pi, 4.2, -1.3} {
		u := PolarUnit(phi)
		if !almostEq(u.Norm(), 1, 1e-14) {
			t.Errorf("|PolarUnit(%v)| = %v", phi, u.Norm())
		}
		if !almostEq(math.Atan2(u.Y, u.X), math.Atan2(math.Sin(phi), math.Cos(phi)), 1e-12) {
			t.Errorf("PolarUnit(%v) direction wrong", phi)
		}
	}
}

func TestAngleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		phi := rng.Float64()*2*math.Pi - math.Pi
		got := PolarUnit(phi).Angle()
		if !almostEq(got, phi, 1e-12) {
			t.Fatalf("Angle(PolarUnit(%v)) = %v", phi, got)
		}
	}
}

func TestLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, -4)
	if got := Lerp(a, b, 0); got != a {
		t.Errorf("Lerp 0 = %v", got)
	}
	if got := Lerp(a, b, 1); got != b {
		t.Errorf("Lerp 1 = %v", got)
	}
	if got := Lerp(a, b, 0.5); got != Pt(5, -2) {
		t.Errorf("Lerp 0.5 = %v", got)
	}
}

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{2 * math.Pi, 0},
		{-math.Pi / 2, 3 * math.Pi / 2},
		{5 * math.Pi, math.Pi},
	}
	for _, c := range cases {
		if got := NormalizeAngle(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	err := quick.Check(func(phi float64) bool {
		phi = math.Mod(phi, 1e4)
		n := NormalizeAngle(phi)
		return n >= 0 && n < 2*math.Pi
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
