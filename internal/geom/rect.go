package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle, the closed region
// [Min.X, Max.X] × [Min.Y, Max.Y]. The UV-diagram domain, quad-tree node
// regions and R-tree MBRs are all Rects.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle with the given bounds, swapping
// coordinates if necessary so that Min ≤ Max holds componentwise.
func NewRect(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Point{x0, y0}, Point{x1, y1}}
}

// Square returns the square [0,side]×[0,side]; the paper's domain D.
func Square(side float64) Rect { return Rect{Point{0, 0}, Point{side, side}} }

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.Min.X, r.Max.X, r.Min.Y, r.Max.Y)
}

// W returns the width of r.
func (r Rect) W() float64 { return r.Max.X - r.Min.X }

// H returns the height of r.
func (r Rect) H() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies in the closed rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return r.Contains(s.Min) && r.Contains(s.Max)
}

// Overlaps reports whether the closed rectangles r and s intersect.
func (r Rect) Overlaps(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// ExpandPoint returns the smallest rectangle containing r and p.
func (r Rect) ExpandPoint(p Point) Rect {
	return r.Union(Rect{p, p})
}

// Corners returns the four corner points of r in counter-clockwise order
// starting at Min.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		r.Min,
		{r.Max.X, r.Min.Y},
		r.Max,
		{r.Min.X, r.Max.Y},
	}
}

// Quadrant returns the k-th quarter of r (k in 0..3) in the order
// SW, SE, NW, NE. The four quadrants tile r exactly; this is the child
// layout of the UV-index quad-tree.
func (r Rect) Quadrant(k int) Rect {
	c := r.Center()
	switch k {
	case 0:
		return Rect{r.Min, c}
	case 1:
		return Rect{Point{c.X, r.Min.Y}, Point{r.Max.X, c.Y}}
	case 2:
		return Rect{Point{r.Min.X, c.Y}, Point{c.X, r.Max.Y}}
	case 3:
		return Rect{c, r.Max}
	}
	panic(fmt.Sprintf("geom: quadrant index %d out of range", k))
}

// QuadrantFor returns the index (per Quadrant) of the quarter of r that
// contains p, resolving boundary ties toward the higher quadrant so that
// descent in the quad-tree is deterministic.
func (r Rect) QuadrantFor(p Point) int {
	c := r.Center()
	k := 0
	if p.X >= c.X {
		k |= 1
	}
	if p.Y >= c.Y {
		k |= 2
	}
	return k
}

// MinDist returns the smallest Euclidean distance from p to r
// (zero when p is inside).
func (r Rect) MinDist(p Point) float64 {
	dx := math.Max(math.Max(r.Min.X-p.X, 0), p.X-r.Max.X)
	dy := math.Max(math.Max(r.Min.Y-p.Y, 0), p.Y-r.Max.Y)
	return math.Hypot(dx, dy)
}

// MaxDist returns the largest Euclidean distance from p to a point of r,
// attained at one of the corners.
func (r Rect) MaxDist(p Point) float64 {
	m := 0.0
	for _, c := range r.Corners() {
		if d := p.Dist(c); d > m {
			m = d
		}
	}
	return m
}

// RayExit returns the distance t ≥ 0 at which the ray from+t·dir leaves
// the rectangle. from must lie inside r (or on its boundary with dir
// pointing inward); dir must be non-zero but need not be unit length —
// the returned t is in units of |dir|.
func (r Rect) RayExit(from, dir Point) float64 {
	t := math.Inf(1)
	if dir.X > 0 {
		t = math.Min(t, (r.Max.X-from.X)/dir.X)
	} else if dir.X < 0 {
		t = math.Min(t, (r.Min.X-from.X)/dir.X)
	}
	if dir.Y > 0 {
		t = math.Min(t, (r.Max.Y-from.Y)/dir.Y)
	} else if dir.Y < 0 {
		t = math.Min(t, (r.Min.Y-from.Y)/dir.Y)
	}
	if math.IsInf(t, 1) || t < 0 {
		return 0
	}
	return t
}
