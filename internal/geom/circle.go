package geom

import (
	"fmt"
	"math"
)

// Circle is the closed disk with center C and radius R ≥ 0. Uncertainty
// regions, minimum bounding circles and pruning d-bounds are Circles.
type Circle struct {
	C Point
	R float64
}

// String implements fmt.Stringer.
func (c Circle) String() string {
	return fmt.Sprintf("Cir((%g,%g),%g)", c.C.X, c.C.Y, c.R)
}

// Contains reports whether p lies in the closed disk.
func (c Circle) Contains(p Point) bool {
	return c.C.DistSq(p) <= c.R*c.R
}

// Overlaps reports whether the two closed disks intersect.
func (c Circle) Overlaps(o Circle) bool {
	s := c.R + o.R
	return c.C.DistSq(o.C) <= s*s
}

// ContainsCircle reports whether o lies entirely inside c.
func (c Circle) ContainsCircle(o Circle) bool {
	return c.C.Dist(o.C)+o.R <= c.R+1e-12*(c.R+1)
}

// Area returns the area of the disk.
func (c Circle) Area() float64 { return math.Pi * c.R * c.R }

// BoundingRect returns the smallest axis-aligned rectangle containing c.
func (c Circle) BoundingRect() Rect {
	return Rect{
		Point{c.C.X - c.R, c.C.Y - c.R},
		Point{c.C.X + c.R, c.C.Y + c.R},
	}
}

// OverlapsRect reports whether the disk intersects the rectangle.
func (c Circle) OverlapsRect(r Rect) bool {
	return r.MinDist(c.C) <= c.R
}

// LensArea returns the area of the intersection of the two disks.
// It is exact (up to floating point) via the standard circular-segment
// formula and handles containment and disjointness.
func LensArea(a, b Circle) float64 {
	if a.R == 0 || b.R == 0 {
		return 0
	}
	d := a.C.Dist(b.C)
	if d >= a.R+b.R {
		return 0
	}
	if d <= math.Abs(a.R-b.R) {
		r := math.Min(a.R, b.R)
		return math.Pi * r * r
	}
	// Half-angles subtended by the chord at each center.
	alpha := math.Acos(clamp((d*d+a.R*a.R-b.R*b.R)/(2*d*a.R), -1, 1))
	beta := math.Acos(clamp((d*d+b.R*b.R-a.R*a.R)/(2*d*b.R), -1, 1))
	return a.R*a.R*(alpha-math.Sin(alpha)*math.Cos(alpha)) +
		b.R*b.R*(beta-math.Sin(beta)*math.Cos(beta))
}

// clamp restricts v to [lo, hi]; used to guard acos against rounding.
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
