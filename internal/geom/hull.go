package geom

import "slices"

// ConvexHull returns the convex hull of pts in counter-clockwise order
// using Andrew's monotone chain. Collinear points on hull edges are
// dropped. The input slice is not modified. Degenerate inputs (0, 1 or 2
// distinct points) return the distinct points themselves.
func ConvexHull(pts []Point) []Point {
	return ConvexHullScratch(pts, nil)
}

// HullScratch holds the reusable buffers of repeated hull extraction
// (the derivation hot path computes one hull per object). The hull
// returned through a scratch aliases it and is valid until the next
// call with the same scratch.
type HullScratch struct {
	ps   []Point
	hull []Point
}

// ConvexHullScratch is ConvexHull through an optional scratch; a nil
// scratch allocates fresh buffers (identical to ConvexHull).
func ConvexHullScratch(pts []Point, sc *HullScratch) []Point {
	n := len(pts)
	if n == 0 {
		return nil
	}
	if sc == nil {
		sc = &HullScratch{}
	}
	ps := append(sc.ps[:0], pts...)
	slices.SortFunc(ps, func(a, b Point) int {
		switch {
		case a.X < b.X:
			return -1
		case a.X > b.X:
			return 1
		case a.Y < b.Y:
			return -1
		case a.Y > b.Y:
			return 1
		}
		return 0
	})
	// Deduplicate. (Equal points are indistinguishable, so the sort
	// algorithm's tie order cannot affect the deduplicated sequence.)
	uniq := ps[:1]
	for _, p := range ps[1:] {
		if p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	sc.ps = ps
	ps = uniq
	if len(ps) <= 2 {
		return ps
	}

	hull := sc.hull[:0]
	// Lower hull.
	for _, p := range ps {
		for len(hull) >= 2 && turn(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := len(ps) - 2; i >= 0; i-- {
		p := ps[i]
		for len(hull) >= lower && turn(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	sc.hull = hull
	return hull[:len(hull)-1] // last point equals the first
}

// turn returns a positive value when a→b→c makes a left (counter-
// clockwise) turn, negative for a right turn and zero when collinear.
func turn(a, b, c Point) float64 {
	return b.Sub(a).Cross(c.Sub(a))
}

// PointInConvex reports whether p lies inside or on the convex polygon
// poly given in counter-clockwise order.
func PointInConvex(poly []Point, p Point) bool {
	n := len(poly)
	switch n {
	case 0:
		return false
	case 1:
		return poly[0] == p
	case 2:
		// On-segment test.
		a, b := poly[0], poly[1]
		if turn(a, b, p) != 0 {
			return false
		}
		return p.X >= min2(a.X, b.X) && p.X <= max2(a.X, b.X) &&
			p.Y >= min2(a.Y, b.Y) && p.Y <= max2(a.Y, b.Y)
	}
	for i := 0; i < n; i++ {
		if turn(poly[i], poly[(i+1)%n], p) < 0 {
			return false
		}
	}
	return true
}

// PolygonArea returns the signed area of the polygon (positive when the
// vertices are in counter-clockwise order).
func PolygonArea(poly []Point) float64 {
	a := 0.0
	for i := range poly {
		j := (i + 1) % len(poly)
		a += poly[i].Cross(poly[j])
	}
	return a / 2
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
