package geom

import "sort"

// ConvexHull returns the convex hull of pts in counter-clockwise order
// using Andrew's monotone chain. Collinear points on hull edges are
// dropped. The input slice is not modified. Degenerate inputs (0, 1 or 2
// distinct points) return the distinct points themselves.
func ConvexHull(pts []Point) []Point {
	n := len(pts)
	if n == 0 {
		return nil
	}
	ps := make([]Point, n)
	copy(ps, pts)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
	// Deduplicate.
	uniq := ps[:1]
	for _, p := range ps[1:] {
		if p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	ps = uniq
	if len(ps) <= 2 {
		return ps
	}

	hull := make([]Point, 0, 2*len(ps))
	// Lower hull.
	for _, p := range ps {
		for len(hull) >= 2 && turn(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := len(ps) - 2; i >= 0; i-- {
		p := ps[i]
		for len(hull) >= lower && turn(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1] // last point equals the first
}

// turn returns a positive value when a→b→c makes a left (counter-
// clockwise) turn, negative for a right turn and zero when collinear.
func turn(a, b, c Point) float64 {
	return b.Sub(a).Cross(c.Sub(a))
}

// PointInConvex reports whether p lies inside or on the convex polygon
// poly given in counter-clockwise order.
func PointInConvex(poly []Point, p Point) bool {
	n := len(poly)
	switch n {
	case 0:
		return false
	case 1:
		return poly[0] == p
	case 2:
		// On-segment test.
		a, b := poly[0], poly[1]
		if turn(a, b, p) != 0 {
			return false
		}
		return p.X >= min2(a.X, b.X) && p.X <= max2(a.X, b.X) &&
			p.Y >= min2(a.Y, b.Y) && p.Y <= max2(a.Y, b.Y)
	}
	for i := 0; i < n; i++ {
		if turn(poly[i], poly[(i+1)%n], p) < 0 {
			return false
		}
	}
	return true
}

// PolygonArea returns the signed area of the polygon (positive when the
// vertices are in counter-clockwise order).
func PolygonArea(poly []Point) float64 {
	a := 0.0
	for i := range poly {
		j := (i + 1) % len(poly)
		a += poly[i].Cross(poly[j])
	}
	return a / 2
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
