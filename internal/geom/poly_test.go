package geom

import (
	"math/rand"
	"sort"
	"testing"
)

func checkRoots(t *testing.T, got, want []float64, tol float64, label string) {
	t.Helper()
	sort.Float64s(want)
	want = dedupRoots(want, 1e-9)
	if len(got) != len(want) {
		t.Fatalf("%s: got roots %v, want %v", label, got, want)
	}
	for i := range got {
		if !almostEq(got[i], want[i], tol) {
			t.Fatalf("%s: root %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

func TestSolveQuadratic(t *testing.T) {
	checkRoots(t, SolveQuadratic(1, -3, 2), []float64{1, 2}, 1e-12, "x²-3x+2")
	checkRoots(t, SolveQuadratic(1, 0, 1), nil, 0, "x²+1")
	checkRoots(t, SolveQuadratic(1, -2, 1), []float64{1}, 1e-9, "(x-1)²")
	checkRoots(t, SolveQuadratic(0, 2, -4), []float64{2}, 1e-12, "linear")
	checkRoots(t, SolveQuadratic(0, 0, 5), nil, 0, "constant")
	// Cancellation-prone case.
	checkRoots(t, SolveQuadratic(1, -1e8, 1), []float64{1e-8, 1e8}, 1e-6, "stiff")
}

func TestSolveCubicKnown(t *testing.T) {
	// (x-1)(x-2)(x-3)
	checkRoots(t, SolveCubic(1, -6, 11, -6), []float64{1, 2, 3}, 1e-9, "cubic3")
	// One real root: x³ + x + 1.
	got := SolveCubic(1, 0, 1, 1)
	if len(got) != 1 || !almostEq(got[0], -0.6823278038280193, 1e-9) {
		t.Fatalf("x³+x+1 roots = %v", got)
	}
	// Triple root (x-2)³ = x³ -6x² +12x -8.
	got = SolveCubic(1, -6, 12, -8)
	if len(got) == 0 || !almostEq(got[0], 2, 1e-5) {
		t.Fatalf("(x-2)³ roots = %v", got)
	}
	// Degenerate leading coefficient.
	checkRoots(t, SolveCubic(0, 1, -3, 2), []float64{1, 2}, 1e-12, "quad fallback")
}

func TestSolveCubicRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 300; trial++ {
		r1 := rng.Float64()*20 - 10
		r2 := rng.Float64()*20 - 10
		r3 := rng.Float64()*20 - 10
		// a(x-r1)(x-r2)(x-r3)
		a := 1 + rng.Float64()*3
		b := -a * (r1 + r2 + r3)
		c := a * (r1*r2 + r1*r3 + r2*r3)
		d := -a * r1 * r2 * r3
		checkRoots(t, SolveCubic(a, b, c, d), []float64{r1, r2, r3}, 1e-6, "random cubic")
	}
}

func TestSolveQuarticKnown(t *testing.T) {
	// (x-1)(x-2)(x-3)(x-4) = x⁴ -10x³ +35x² -50x +24.
	checkRoots(t, SolveQuartic(1, -10, 35, -50, 24), []float64{1, 2, 3, 4}, 1e-8, "quartic4")
	// Biquadratic with two real roots: x⁴ - 5x² + 4 → ±1, ±2.
	checkRoots(t, SolveQuartic(1, 0, -5, 0, 4), []float64{-2, -1, 1, 2}, 1e-9, "biquad")
	// No real roots: x⁴ + 1.
	checkRoots(t, SolveQuartic(1, 0, 0, 0, 1), nil, 0, "x⁴+1")
	// Cubic fallback.
	checkRoots(t, SolveQuartic(0, 1, -6, 11, -6), []float64{1, 2, 3}, 1e-9, "cubic fallback")
}

func TestSolveQuarticRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 300; trial++ {
		roots := make([]float64, 4)
		for i := range roots {
			roots[i] = rng.Float64()*10 - 5
		}
		// Expand (x-r0)(x-r1)(x-r2)(x-r3).
		c := [5]float64{1} // c[k] = coefficient of x^(4-k) built incrementally
		coef := []float64{1}
		for _, r := range roots {
			next := make([]float64, len(coef)+1)
			for i, v := range coef {
				next[i] += v
				next[i+1] -= v * r
			}
			coef = next
		}
		_ = c
		got := SolveQuartic(coef[0], coef[1], coef[2], coef[3], coef[4])
		checkRoots(t, got, roots, 1e-5, "random quartic")
	}
}

// TestSolveQuarticTwoReal: quartics with exactly two real roots.
func TestSolveQuarticTwoReal(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 200; trial++ {
		r1 := rng.Float64()*10 - 5
		r2 := rng.Float64()*10 - 5
		// (x-r1)(x-r2)(x²+px+q) with negative discriminant quadratic.
		p := rng.Float64()*4 - 2
		q := p*p/4 + 0.5 + rng.Float64()*3 // ensures p²-4q < 0
		// Expand.
		b := -(r1 + r2) + p
		cc := r1*r2 - p*(r1+r2) + q
		d := p*r1*r2 - q*(r1+r2)
		e := q * r1 * r2
		checkRoots(t, SolveQuartic(1, b, cc, d, e), []float64{r1, r2}, 1e-5, "two-real quartic")
	}
}
