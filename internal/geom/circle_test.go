package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestCircleContains(t *testing.T) {
	c := Circle{Pt(0, 0), 2}
	if !c.Contains(Pt(2, 0)) {
		t.Error("boundary point should be contained (closed disk)")
	}
	if c.Contains(Pt(2.0001, 0)) {
		t.Error("outside point contained")
	}
}

func TestCircleOverlaps(t *testing.T) {
	a := Circle{Pt(0, 0), 1}
	b := Circle{Pt(2, 0), 1}
	cc := Circle{Pt(2.001, 0), 1}
	if !a.Overlaps(b) {
		t.Error("tangent circles should overlap (closed)")
	}
	if a.Overlaps(cc) {
		t.Error("separated circles overlap")
	}
}

func TestContainsCircle(t *testing.T) {
	big := Circle{Pt(0, 0), 5}
	small := Circle{Pt(1, 1), 2}
	if !big.ContainsCircle(small) {
		t.Error("big should contain small")
	}
	if small.ContainsCircle(big) {
		t.Error("small contains big")
	}
}

func TestBoundingRect(t *testing.T) {
	c := Circle{Pt(3, -1), 2}
	r := c.BoundingRect()
	if r != NewRect(1, -3, 5, 1) {
		t.Errorf("BoundingRect = %v", r)
	}
}

func TestOverlapsRect(t *testing.T) {
	c := Circle{Pt(0, 0), 1}
	if !c.OverlapsRect(NewRect(0.5, 0.5, 2, 2)) {
		t.Error("should overlap")
	}
	// Rect whose corner is just beyond the radius diagonally.
	if c.OverlapsRect(NewRect(0.8, 0.8, 2, 2)) {
		t.Error("corner outside circle should not overlap")
	}
}

func TestLensAreaKnown(t *testing.T) {
	// Disjoint.
	if a := LensArea(Circle{Pt(0, 0), 1}, Circle{Pt(3, 0), 1}); a != 0 {
		t.Errorf("disjoint lens = %v", a)
	}
	// Contained.
	if a := LensArea(Circle{Pt(0, 0), 3}, Circle{Pt(0.5, 0), 1}); !almostEq(a, math.Pi, 1e-12) {
		t.Errorf("contained lens = %v, want π", a)
	}
	// Same circle.
	c := Circle{Pt(1, 1), 2}
	if a := LensArea(c, c); !almostEq(a, c.Area(), 1e-12) {
		t.Errorf("self lens = %v", a)
	}
	// Classic: two unit circles at distance 1. Known closed form:
	// 2·acos(1/2) − (1/2)·sqrt(3) ... full formula below.
	want := 2*1*1*math.Acos(0.5) - 0.5*math.Sqrt(4-1)
	if a := LensArea(Circle{Pt(0, 0), 1}, Circle{Pt(1, 0), 1}); !almostEq(a, want, 1e-12) {
		t.Errorf("unit lens = %v, want %v", a, want)
	}
}

// TestLensAreaMonteCarlo validates LensArea against sampling for random
// circle pairs.
func TestLensAreaMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		a := Circle{Pt(rng.Float64()*4, rng.Float64()*4), 0.5 + rng.Float64()*2}
		b := Circle{Pt(rng.Float64()*4, rng.Float64()*4), 0.5 + rng.Float64()*2}
		exact := LensArea(a, b)
		// Sample within a's disk.
		const n = 200000
		hits := 0
		for i := 0; i < n; i++ {
			// Uniform in disk a.
			r := a.R * math.Sqrt(rng.Float64())
			phi := rng.Float64() * 2 * math.Pi
			p := a.C.Add(PolarUnit(phi).Scale(r))
			if b.Contains(p) {
				hits++
			}
		}
		mc := float64(hits) / n * a.Area()
		tol := 4 * a.Area() / math.Sqrt(n) // ~4σ
		if math.Abs(mc-exact) > tol+1e-9 {
			t.Errorf("trial %d: lens exact %v vs MC %v (tol %v)", trial, exact, mc, tol)
		}
	}
}

func TestLensAreaSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		a := Circle{Pt(rng.Float64()*10, rng.Float64()*10), rng.Float64() * 3}
		b := Circle{Pt(rng.Float64()*10, rng.Float64()*10), rng.Float64() * 3}
		if !almostEq(LensArea(a, b), LensArea(b, a), 1e-12) {
			t.Fatalf("lens not symmetric for %v %v", a, b)
		}
		l := LensArea(a, b)
		if l < 0 || l > math.Min(a.Area(), b.Area())+1e-12 {
			t.Fatalf("lens %v out of range for %v %v", l, a, b)
		}
	}
}
