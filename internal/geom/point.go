// Package geom provides the exact planar geometry underlying the
// UV-diagram: points, rectangles, circles, convex hulls, minimum
// enclosing circles, hyperbolic UV-edges and small numeric helpers
// (bracketed root finding, scanning maximization).
//
// All coordinates are float64. The package is purely computational and
// allocation-light; it has no dependencies outside the standard library.
package geom

import "math"

// Point is a location or a displacement vector in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns k·p.
func (p Point) Scale(k float64) Point { return Point{k * p.X, k * p.Y} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p × q.
// It is positive when q lies counter-clockwise of p.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// NormSq returns the squared Euclidean length of p.
func (p Point) NormSq() float64 { return p.X*p.X + p.Y*p.Y }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// DistSq returns the squared Euclidean distance between p and q.
func (p Point) DistSq(q Point) float64 { return p.Sub(q).NormSq() }

// Unit returns p scaled to unit length. The unit of the zero vector is
// (1, 0) so that callers never receive NaNs.
func (p Point) Unit() Point {
	n := p.Norm()
	if n == 0 {
		return Point{1, 0}
	}
	return Point{p.X / n, p.Y / n}
}

// Angle returns the polar angle of p, atan2(Y, X), in (-π, π].
func (p Point) Angle() float64 { return math.Atan2(p.Y, p.X) }

// Rotate returns p rotated counter-clockwise by theta radians about the
// origin.
func (p Point) Rotate(theta float64) Point {
	s, c := math.Sincos(theta)
	return Point{c*p.X - s*p.Y, s*p.X + c*p.Y}
}

// PolarUnit returns the unit vector at polar angle phi radians.
func PolarUnit(phi float64) Point {
	s, c := math.Sincos(phi)
	return Point{c, s}
}

// Lerp returns the point (1-t)·a + t·b.
func Lerp(a, b Point, t float64) Point {
	return Point{a.X + t*(b.X-a.X), a.Y + t*(b.Y-a.Y)}
}

// NormalizeAngle maps phi into [0, 2π).
func NormalizeAngle(phi float64) float64 {
	phi = math.Mod(phi, 2*math.Pi)
	if phi < 0 {
		phi += 2 * math.Pi
	}
	return phi
}
