package geom

// Bisect refines a root of the continuous function f inside [lo, hi],
// where f(lo) and f(hi) have opposite signs, to within tol. It returns
// the midpoint of the final bracket.
func Bisect(f func(float64) float64, lo, hi, tol float64) float64 {
	flo := f(lo)
	if flo == 0 {
		return lo
	}
	for hi-lo > tol {
		mid := lo + (hi-lo)/2
		if mid == lo || mid == hi {
			break // float64 exhausted
		}
		fm := f(mid)
		if fm == 0 {
			return mid
		}
		if (flo > 0) == (fm > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}

// FindRoots scans f over [lo, hi] at n+1 equally spaced samples and
// refines every sign change by bisection to within tol. Roots that
// coincide with sample points are reported once. f must be continuous;
// roots closer together than (hi-lo)/n may be missed, so n controls
// resolution.
func FindRoots(f func(float64) float64, lo, hi float64, n int, tol float64) []float64 {
	if n < 1 {
		n = 1
	}
	var roots []float64
	step := (hi - lo) / float64(n)
	x0, f0 := lo, f(lo)
	for i := 1; i <= n; i++ {
		x1 := lo + float64(i)*step
		if i == n {
			x1 = hi
		}
		f1 := f(x1)
		switch {
		case f0 == 0:
			roots = append(roots, x0)
		case (f0 > 0) != (f1 > 0):
			roots = append(roots, Bisect(f, x0, x1, tol))
		}
		x0, f0 = x1, f1
	}
	if f0 == 0 {
		roots = append(roots, x0)
	}
	return roots
}

// MaximizeScan finds the maximum of f over [lo, hi] by scanning n+1
// samples and refining around the best sample with golden-section search
// to within tol. It returns the argmax and the maximum value. The result
// is exact for unimodal pieces wider than the scan step.
func MaximizeScan(f func(float64) float64, lo, hi float64, n int, tol float64) (x, fx float64) {
	if n < 2 {
		n = 2
	}
	step := (hi - lo) / float64(n)
	bestX, bestF := lo, f(lo)
	for i := 1; i <= n; i++ {
		xi := lo + float64(i)*step
		if fi := f(xi); fi > bestF {
			bestX, bestF = xi, fi
		}
	}
	a := bestX - step
	b := bestX + step
	if a < lo {
		a = lo
	}
	if b > hi {
		b = hi
	}
	x, fx = goldenMax(f, a, b, tol)
	if bestF > fx {
		return bestX, bestF
	}
	return x, fx
}

// goldenMax performs golden-section search for a maximum on [a, b].
func goldenMax(f func(float64) float64, a, b, tol float64) (float64, float64) {
	const invPhi = 0.6180339887498949
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		}
	}
	if f1 > f2 {
		return x1, f1
	}
	return x2, f2
}
