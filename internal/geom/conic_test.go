package geom

import (
	"math"
	"math/rand"
	"testing"
)

// TestConicOfUVEdgeMatchesImplicit: the expanded coefficients evaluate
// identically to the sqrt-free implicit form.
func TestConicOfUVEdgeMatchesImplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 100; trial++ {
		e := randomEdge(rng)
		c := ConicOfUVEdge(e)
		for k := 0; k < 20; k++ {
			p := Pt(rng.Float64()*200-50, rng.Float64()*200-50)
			want := e.ImplicitEval(p)
			got := c.Eval(p)
			scale := 1 + math.Abs(want) + math.Abs(got)
			if math.Abs(got-want)/scale > 1e-9 {
				t.Fatalf("trial %d: conic %v vs implicit %v at %v", trial, got, want, p)
			}
		}
		// The edge itself satisfies the conic.
		for _, u := range []float64{-1.5, 0, 0.8} {
			p := e.PointAt(u)
			scale := math.Pow(p.DistSq(e.Fi)+1, 2)
			if math.Abs(c.Eval(p))/scale > 1e-7 {
				t.Fatalf("trial %d: edge point not on conic: %v", trial, c.Eval(p)/scale)
			}
		}
	}
}

// TestIntersectUVEdgesAgainstScan compares the analytic quartic-based
// intersection with a brute-force parameter scan.
func TestIntersectUVEdgesAgainstScan(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	found := 0
	for trial := 0; trial < 200; trial++ {
		e1 := randomEdge(rng)
		e2 := randomEdge(rng)
		got := IntersectUVEdges(e1, e2)
		// Scan e1's branch (hyperbolic parameter u) for sign changes of
		// e2.Delta.
		f := func(u float64) float64 { return e2.Delta(e1.PointAt(u)) }
		scan := FindRoots(f, -4, 4, 4000, 1e-11)
		// Every scanned crossing must be found analytically (within the
		// parameter window covered by the rational parameterization).
		for _, u := range scan {
			p := e1.PointAt(u)
			matched := false
			for _, q := range got {
				if p.Dist(q) < 1e-4*(1+p.Norm()) {
					matched = true
					break
				}
			}
			if !matched {
				// The rational parameterization covers t ∈ (−1,1) ⇔
				// u ∈ (−∞,∞); any miss is a genuine failure unless the
				// crossing is tangential (double root, below scan noise).
				if math.Abs(f(u-1e-5)) > 1e-7 && math.Abs(f(u+1e-5)) > 1e-7 {
					t.Fatalf("trial %d: scan crossing at u=%v (%v) missed analytically (got %v)",
						trial, u, p, got)
				}
			}
		}
		// All analytic points satisfy both edge conditions exactly.
		for _, p := range got {
			if math.Abs(e1.Delta(p)) > 1e-6*(1+p.Norm()) || math.Abs(e2.Delta(p)) > 1e-6*(1+p.Norm()) {
				t.Fatalf("trial %d: analytic intersection %v off-curve (%v, %v)",
					trial, p, e1.Delta(p), e2.Delta(p))
			}
		}
		found += len(got)
	}
	if found == 0 {
		t.Error("no intersections found across 200 random trials — scan setup broken?")
	}
}

func TestIntersectUVEdgesDegenerate(t *testing.T) {
	// Overlapping objects: no edge, no intersections.
	e1 := NewUVEdge(Circle{Pt(0, 0), 5}, Circle{Pt(4, 0), 5})
	e2 := NewUVEdge(Circle{Pt(0, 0), 1}, Circle{Pt(30, 0), 1})
	if pts := IntersectUVEdges(e1, e2); pts != nil {
		t.Errorf("degenerate edge produced intersections: %v", pts)
	}
	// Identical edges: the parameterization hits its own conic
	// everywhere; the routine must not blow up (result content is not
	// specified for coincident curves, only that it terminates).
	_ = IntersectUVEdges(e2, e2)
}
