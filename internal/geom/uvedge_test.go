package geom

import (
	"math"
	"math/rand"
	"testing"
)

func randomEdge(rng *rand.Rand) UVEdge {
	for {
		oi := Circle{Pt(rng.Float64()*100, rng.Float64()*100), rng.Float64() * 5}
		oj := Circle{Pt(rng.Float64()*100, rng.Float64()*100), rng.Float64() * 5}
		e := NewUVEdge(oi, oj)
		if e.Exists() {
			return e
		}
	}
}

func TestUVEdgeExists(t *testing.T) {
	oi := Circle{Pt(0, 0), 2}
	oj := Circle{Pt(10, 0), 3}
	if !NewUVEdge(oi, oj).Exists() {
		t.Error("separated objects must have an edge")
	}
	// Overlapping objects: no edge.
	ok := Circle{Pt(4, 0), 3}
	if NewUVEdge(oi, ok).Exists() {
		t.Error("overlapping objects must not have an edge")
	}
}

func TestUVEdgeDeltaSigns(t *testing.T) {
	e := NewUVEdge(Circle{Pt(0, 0), 1}, Circle{Pt(10, 0), 1})
	// Near Fj: outside region (Oj always closer).
	if !e.InOutside(Pt(10, 0)) {
		t.Error("Fj must be in the outside region")
	}
	// Near Fi: not outside.
	if e.InOutside(Pt(0, 0)) {
		t.Error("Fi must not be in the outside region")
	}
}

// TestUVEdgePointAtOnCurve: points from the parameterization satisfy both
// the distance definition and the implicit conic.
func TestUVEdgePointAtOnCurve(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		e := randomEdge(rng)
		for _, u := range []float64{-2, -0.7, 0, 0.4, 1.9} {
			p := e.PointAt(u)
			if d := e.Delta(p); !almostEq(d, 0, 1e-9) {
				t.Fatalf("trial %d: Delta(PointAt(%v)) = %v for %+v", trial, u, d, e)
			}
			scale := math.Pow(p.DistSq(e.Fi)+1, 2)
			if v := e.ImplicitEval(p); math.Abs(v)/scale > 1e-7 {
				t.Fatalf("trial %d: ImplicitEval = %v (scaled %v)", trial, v, v/scale)
			}
		}
	}
}

func TestUVEdgeVertex(t *testing.T) {
	e := NewUVEdge(Circle{Pt(0, 0), 1}, Circle{Pt(10, 0), 2})
	// Vertex: on the segment between foci, at distance where
	// dist(p,Fi) - dist(p,Fj) = 3 → p = (13/2, 0) since d1+d2=10, d1-d2=3.
	v := e.PointAt(0)
	if !almostEq(v.X, 6.5, 1e-9) || !almostEq(v.Y, 0, 1e-9) {
		t.Errorf("vertex = %v, want (6.5,0)", v)
	}
}

// TestRadialBoundOnEdge: the radial bound point lies exactly on the edge,
// and points closer than the bound are never in the outside region
// (star-shapedness along the ray).
func TestRadialBoundOnEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 100; trial++ {
		e := randomEdge(rng)
		for k := 0; k < 32; k++ {
			dir := PolarUnit(rng.Float64() * 2 * math.Pi)
			tb, ok := e.RadialBound(dir)
			if !ok {
				// The whole ray stays on Oi's side: spot-check far out.
				p := e.Fi.Add(dir.Scale(1e5))
				if e.InOutside(p) {
					t.Fatalf("trial %d: RadialBound says no crossing but far point is outside", trial)
				}
				continue
			}
			if tb <= 0 {
				t.Fatalf("trial %d: non-positive bound %v", trial, tb)
			}
			p := e.Fi.Add(dir.Scale(tb))
			if d := e.Delta(p); !almostEq(d, 0, 1e-9) {
				t.Fatalf("trial %d: Delta at radial bound = %v", trial, d)
			}
			// Inside the bound: not in outside region; beyond: in it.
			in := e.Fi.Add(dir.Scale(tb * 0.999))
			out := e.Fi.Add(dir.Scale(tb*1.001 + 1e-9))
			if e.InOutside(in) {
				t.Fatalf("trial %d: point before bound is outside", trial)
			}
			if !e.InOutside(out) {
				t.Fatalf("trial %d: point after bound is not outside", trial)
			}
		}
	}
}

// TestRadialBoundPointObjects: with zero radii the edge is the
// perpendicular bisector and RadialBound must agree with it.
func TestRadialBoundPointObjects(t *testing.T) {
	e := UVEdge{Fi: Pt(0, 0), Fj: Pt(4, 0), S: 0}
	tb, ok := e.RadialBound(Pt(1, 0))
	if !ok || !almostEq(tb, 2, 1e-12) {
		t.Errorf("bisector bound = %v, %v", tb, ok)
	}
	// Perpendicular direction never crosses.
	if _, ok := e.RadialBound(Pt(0, 1)); ok {
		t.Error("perpendicular ray should not cross the bisector")
	}
	// 45 degrees: crossing at x=2 → t = 2·sqrt(2).
	tb, ok = e.RadialBound(Pt(1, 1).Unit())
	if !ok || !almostEq(tb, 2*math.Sqrt2, 1e-12) {
		t.Errorf("diagonal bound = %v, %v", tb, ok)
	}
}

// TestOutsideRegionConvex: sample pairs of points in the outside region;
// their midpoint must also be in it (convexity, basis of the 4-point
// test in Algorithm 5).
func TestOutsideRegionConvex(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		e := randomEdge(rng)
		var pts []Point
		for len(pts) < 20 {
			p := Pt(rng.Float64()*300-100, rng.Float64()*300-100)
			if e.InOutside(p) {
				pts = append(pts, p)
			}
		}
		for i := 0; i < len(pts); i++ {
			for j := i + 1; j < len(pts); j++ {
				m := Lerp(pts[i], pts[j], 0.5)
				if !e.InOutside(m) && e.Delta(m) < -1e-9 {
					t.Fatalf("trial %d: outside region not convex: %v %v mid %v delta %v",
						trial, pts[i], pts[j], m, e.Delta(m))
				}
			}
		}
	}
}

func TestSemiAxes(t *testing.T) {
	e := NewUVEdge(Circle{Pt(0, 0), 1}, Circle{Pt(10, 0), 2})
	a, b, c := e.SemiAxes()
	if !almostEq(a, 1.5, 1e-12) || !almostEq(c, 5, 1e-12) {
		t.Errorf("a=%v c=%v", a, c)
	}
	if !almostEq(b*b, c*c-a*a, 1e-9) {
		t.Errorf("b² = %v, want %v", b*b, c*c-a*a)
	}
	if !almostEq(e.Theta(), 0, 1e-12) {
		t.Errorf("theta = %v", e.Theta())
	}
	if e.Center() != Pt(5, 0) {
		t.Errorf("center = %v", e.Center())
	}
}
