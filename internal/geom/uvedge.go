package geom

import "math"

// UVEdge is the bisector locus between two circular uncertainty regions
// Oi = Cir(Fi, Ri) and Oj = Cir(Fj, Rj):
//
//	{ p : dist(p, Fi) − dist(p, Fj) = S },  S = Ri + Rj ≥ 0,
//
// the branch of a hyperbola with foci Fi and Fj that bends around Fj
// (Equation 5 of the paper; for S = 0 it degenerates to the
// perpendicular bisector, recovering the point Voronoi diagram).
//
// Its outside region X = { p : dist(p,Fi) − dist(p,Fj) > S } is an open
// convex set containing Fj: a query point inside X is strictly closer to
// Oj than to Oi in every possible world, so Oi can be pruned.
type UVEdge struct {
	Fi, Fj Point   // foci: centers of Oi and Oj
	S      float64 // Ri + Rj
}

// NewUVEdge builds the UV-edge of Oi with respect to Oj from the two
// minimum bounding circles.
func NewUVEdge(oi, oj Circle) UVEdge {
	return UVEdge{Fi: oi.C, Fj: oj.C, S: oi.R + oj.R}
}

// Exists reports whether the edge is non-degenerate. When the two
// uncertainty regions overlap (dist(Fi,Fj) ≤ S) the outside region is
// empty and there is no edge (Section III-C).
func (e UVEdge) Exists() bool {
	return e.Fi.Dist(e.Fj) > e.S
}

// Delta returns dist(p,Fi) − dist(p,Fj) − S. It is positive exactly on
// the outside region, zero on the edge, and negative on the side of Oi.
func (e UVEdge) Delta(p Point) float64 {
	return p.Dist(e.Fi) - p.Dist(e.Fj) - e.S
}

// InOutside reports whether p lies strictly in the outside region Xi(j).
func (e UVEdge) InOutside(p Point) bool { return e.Delta(p) > 0 }

// SemiAxes returns the hyperbola parameters of Equation 5:
// a = S/2, c = dist(Fi,Fj)/2 and b = sqrt(c²−a²). b is NaN when the edge
// does not exist.
func (e UVEdge) SemiAxes() (a, b, c float64) {
	a = e.S / 2
	c = e.Fi.Dist(e.Fj) / 2
	b = math.Sqrt(c*c - a*a)
	return a, b, c
}

// Center returns the midpoint of the foci (the hyperbola center).
func (e UVEdge) Center() Point { return Lerp(e.Fi, e.Fj, 0.5) }

// Theta returns the rotation of the focal axis: the angle of Fj − Fi.
func (e UVEdge) Theta() float64 { return e.Fj.Sub(e.Fi).Angle() }

// PointAt returns the point of the edge with hyperbolic parameter u: in
// the rotated focal frame (x toward Fj) the branch around Fj is
// (a·cosh u, b·sinh u). PointAt(0) is the vertex nearest Fj.
func (e UVEdge) PointAt(u float64) Point {
	a, b, _ := e.SemiAxes()
	local := Point{a * math.Cosh(u), b * math.Sinh(u)}
	return e.Center().Add(local.Rotate(e.Theta()))
}

// RadialBound returns the distance t at which the ray Fi + t·dir
// (dir unit length) crosses the edge, i.e. the exact extent of Oi's
// possible region along that ray before entering Xi(j). ok is false when
// the ray never reaches the outside region (t = +∞ conceptually).
//
// Derivation (DESIGN.md §3): with w = Fi − Fj, squaring
// dist(p,Fj) = t − S at p = Fi + t·dir gives
// t = (S² − |w|²) / (2(w·dir + S)), valid iff w·dir < −S.
func (e UVEdge) RadialBound(dir Point) (t float64, ok bool) {
	if !e.Exists() {
		return 0, false
	}
	w := e.Fi.Sub(e.Fj)
	den := w.Dot(dir) + e.S
	if den >= 0 {
		return 0, false
	}
	return (e.S*e.S - w.NormSq()) / (2 * den), true
}

// ImplicitEval evaluates the sqrt-free implicit form of the full conic
// containing the edge: L(p)² − 4S²·|p−Fj|² with
// L(p) = |p−Fi|² − |p−Fj|² − S². It vanishes on both hyperbola branches
// and is used for cross-validation in tests.
func (e UVEdge) ImplicitEval(p Point) float64 {
	l := p.DistSq(e.Fi) - p.DistSq(e.Fj) - e.S*e.S
	return l*l - 4*e.S*e.S*p.DistSq(e.Fj)
}
