package geom

import (
	"math"
	"testing"
)

func TestBisect(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	r := Bisect(f, 0, 2, 1e-12)
	if !almostEq(r, math.Sqrt2, 1e-10) {
		t.Errorf("Bisect = %v", r)
	}
	// Reversed sign orientation.
	g := func(x float64) float64 { return 2 - x*x }
	r = Bisect(g, 0, 2, 1e-12)
	if !almostEq(r, math.Sqrt2, 1e-10) {
		t.Errorf("Bisect reversed = %v", r)
	}
}

func TestFindRoots(t *testing.T) {
	f := func(x float64) float64 { return math.Sin(x) }
	roots := FindRoots(f, 0.1, 3*math.Pi-0.1, 300, 1e-12)
	want := []float64{math.Pi, 2 * math.Pi}
	if len(roots) != len(want) {
		t.Fatalf("FindRoots(sin) = %v", roots)
	}
	for i := range want {
		if !almostEq(roots[i], want[i], 1e-9) {
			t.Errorf("root %d = %v, want %v", i, roots[i], want[i])
		}
	}
}

func TestFindRootsNone(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if roots := FindRoots(f, -5, 5, 100, 1e-10); len(roots) != 0 {
		t.Errorf("roots of x²+1 = %v", roots)
	}
}

func TestMaximizeScan(t *testing.T) {
	f := func(x float64) float64 { return -(x - 1.7) * (x - 1.7) }
	x, fx := MaximizeScan(f, -10, 10, 200, 1e-10)
	if !almostEq(x, 1.7, 1e-7) || !almostEq(fx, 0, 1e-9) {
		t.Errorf("MaximizeScan = %v, %v", x, fx)
	}
	// Multi-modal: must find the global max among samples.
	g := func(x float64) float64 { return math.Sin(x) + 0.3*math.Sin(5*x+1) }
	_, gx := MaximizeScan(g, 0, 2*math.Pi, 500, 1e-10)
	// Brute-force comparison.
	best := math.Inf(-1)
	for i := 0; i <= 100000; i++ {
		v := g(float64(i) / 100000 * 2 * math.Pi)
		if v > best {
			best = v
		}
	}
	if gx < best-1e-6 {
		t.Errorf("MaximizeScan found %v, brute %v", gx, best)
	}
}
