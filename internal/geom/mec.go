package geom

import "math/rand"

// MinEnclosingCircle returns the smallest circle containing every point
// of pts, using Welzl's randomized incremental algorithm (expected O(n)).
// It is used to convert non-circular uncertainty regions into their
// minimal bounding circle (Section III-C of the paper). An empty input
// yields the zero Circle.
func MinEnclosingCircle(pts []Point) Circle {
	if len(pts) == 0 {
		return Circle{}
	}
	ps := make([]Point, len(pts))
	copy(ps, pts)
	// Deterministic shuffle: reproducible builds, still O(n) expected.
	rng := rand.New(rand.NewSource(0x5eed))
	rng.Shuffle(len(ps), func(i, j int) { ps[i], ps[j] = ps[j], ps[i] })

	c := Circle{C: ps[0], R: 0}
	for i := 1; i < len(ps); i++ {
		if mecContains(c, ps[i]) {
			continue
		}
		c = Circle{C: ps[i], R: 0}
		for j := 0; j < i; j++ {
			if mecContains(c, ps[j]) {
				continue
			}
			c = circleFrom2(ps[i], ps[j])
			for k := 0; k < j; k++ {
				if !mecContains(c, ps[k]) {
					c = circleFrom3(ps[i], ps[j], ps[k])
				}
			}
		}
	}
	return c
}

// mecContains is Contains with a small relative slack so that the
// incremental algorithm is robust to rounding.
func mecContains(c Circle, p Point) bool {
	return c.C.Dist(p) <= c.R*(1+1e-12)+1e-12
}

// circleFrom2 returns the circle with the segment ab as diameter.
func circleFrom2(a, b Point) Circle {
	center := Lerp(a, b, 0.5)
	return Circle{C: center, R: center.Dist(a)}
}

// circleFrom3 returns the circumcircle of the triangle abc; for
// (near-)collinear triples it falls back to the diametral circle of the
// farthest pair, which still contains all three points.
func circleFrom3(a, b, c Point) Circle {
	bx := b.X - a.X
	by := b.Y - a.Y
	cx := c.X - a.X
	cy := c.Y - a.Y
	d := 2 * (bx*cy - by*cx)
	if d == 0 {
		// Collinear: use the widest pair.
		best := circleFrom2(a, b)
		if alt := circleFrom2(a, c); alt.R > best.R {
			best = alt
		}
		if alt := circleFrom2(b, c); alt.R > best.R {
			best = alt
		}
		return best
	}
	ux := (cy*(bx*bx+by*by) - by*(cx*cx+cy*cy)) / d
	uy := (bx*(cx*cx+cy*cy) - cx*(bx*bx+by*by)) / d
	center := Point{a.X + ux, a.Y + uy}
	return Circle{C: center, R: center.Dist(a)}
}
