package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestMECKnown(t *testing.T) {
	if c := MinEnclosingCircle(nil); c != (Circle{}) {
		t.Errorf("empty MEC = %v", c)
	}
	if c := MinEnclosingCircle([]Point{{3, 4}}); c.C != Pt(3, 4) || c.R != 0 {
		t.Errorf("single MEC = %v", c)
	}
	c := MinEnclosingCircle([]Point{{0, 0}, {2, 0}})
	if !almostEq(c.R, 1, 1e-12) || !almostEq(c.C.X, 1, 1e-12) {
		t.Errorf("pair MEC = %v", c)
	}
	// Equilateral-ish triangle: circumcircle.
	c = MinEnclosingCircle([]Point{{0, 0}, {1, 0}, {0.5, math.Sqrt(3) / 2}})
	if !almostEq(c.R, 1/math.Sqrt(3), 1e-9) {
		t.Errorf("triangle MEC radius = %v, want %v", c.R, 1/math.Sqrt(3))
	}
	// Obtuse triangle: diameter of the longest side, not circumcircle.
	c = MinEnclosingCircle([]Point{{0, 0}, {10, 0}, {5, 0.1}})
	if !almostEq(c.R, 5, 1e-6) {
		t.Errorf("obtuse MEC radius = %v, want 5", c.R)
	}
}

// TestMECProperties: contains all points; is not larger than the best
// circle found by brute force over all pairs and triples.
func TestMECProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(25)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		}
		c := MinEnclosingCircle(pts)
		for _, p := range pts {
			if c.C.Dist(p) > c.R*(1+1e-9)+1e-9 {
				t.Fatalf("trial %d: point %v outside MEC %v", trial, p, c)
			}
		}
		best := bruteMEC(pts)
		if c.R > best.R*(1+1e-9)+1e-9 {
			t.Fatalf("trial %d: MEC radius %v > brute %v", trial, c.R, best.R)
		}
	}
}

// bruteMEC finds the smallest circle determined by a pair (diametral) or
// triple (circumcircle) of points that encloses all points.
func bruteMEC(pts []Point) Circle {
	best := Circle{R: math.Inf(1)}
	contains := func(c Circle) bool {
		for _, p := range pts {
			if c.C.Dist(p) > c.R*(1+1e-12)+1e-12 {
				return false
			}
		}
		return true
	}
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if c := circleFrom2(pts[i], pts[j]); c.R < best.R && contains(c) {
				best = c
			}
			for k := j + 1; k < len(pts); k++ {
				if c := circleFrom3(pts[i], pts[j], pts[k]); c.R < best.R && contains(c) {
					best = c
				}
			}
		}
	}
	if len(pts) == 1 {
		best = Circle{C: pts[0]}
	}
	return best
}

func TestMECDeterministic(t *testing.T) {
	pts := []Point{{1, 2}, {5, 9}, {4, 4}, {8, 1}, {0, 7}}
	a := MinEnclosingCircle(pts)
	b := MinEnclosingCircle(pts)
	if a != b {
		t.Errorf("MEC not deterministic: %v vs %v", a, b)
	}
}
