package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New[string, int](2)
	if _, ok := c.Get(0, "a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(0, "a", 1)
	c.Put(0, "b", 2)
	if v, ok := c.Get(0, "a"); !ok || v != 1 {
		t.Fatalf("a = %d, %v", v, ok)
	}
	// "a" was just used; inserting "c" must evict "b".
	c.Put(0, "c", 3)
	if _, ok := c.Get(0, "b"); ok {
		t.Fatal("LRU entry not evicted")
	}
	if v, ok := c.Get(0, "a"); !ok || v != 1 {
		t.Fatalf("recently used entry evicted: %d, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestPutOverwrites(t *testing.T) {
	c := New[string, int](2)
	c.Put(0, "a", 1)
	c.Put(0, "a", 9)
	if v, _ := c.Get(0, "a"); v != 9 {
		t.Fatalf("a = %d after overwrite", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestGenerationFlushes(t *testing.T) {
	c := New[string, int](4)
	c.Put(1, "a", 1)
	if _, ok := c.Get(2, "a"); ok {
		t.Fatal("entry survived a generation change")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d after flush", c.Len())
	}
	// The flush happens once: entries stored at the new generation stay.
	c.Put(2, "b", 2)
	if _, ok := c.Get(2, "b"); !ok {
		t.Fatal("entry at current generation missed")
	}
}

func TestNilCache(t *testing.T) {
	var c *Cache[int, int]
	if c := New[int, int](0); c != nil {
		t.Fatal("capacity 0 should yield a nil cache")
	}
	c.Put(0, 1, 1) // must not panic
	if _, ok := c.Get(0, 1); ok {
		t.Fatal("nil cache hit")
	}
	if c.Len() != 0 {
		t.Fatal("nil cache has length")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int, int](8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (w*31 + i) % 16
				if v, ok := c.Get(uint64(i%3), k); ok && v != k*10 {
					t.Errorf("key %d = %d", k, v)
					return
				}
				c.Put(uint64(i%3), k, k*10)
			}
		}(w)
	}
	wg.Wait()
}

func TestEvictionOrderUnderChurn(t *testing.T) {
	c := New[string, int](3)
	for i := 0; i < 10; i++ {
		c.Put(0, fmt.Sprintf("k%d", i), i)
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	for i := 7; i < 10; i++ {
		if v, ok := c.Get(0, fmt.Sprintf("k%d", i)); !ok || v != i {
			t.Fatalf("k%d = %d, %v", i, v, ok)
		}
	}
}
