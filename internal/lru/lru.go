// Package lru provides a small, mutex-guarded LRU cache with
// generation-based invalidation: every Get/Put carries the owning
// structure's current mutation generation, and a generation change
// flushes the cache before the access proceeds. Read-mostly index
// structures (the UV-index grid, the helper R-tree) use it to memoize
// decoded leaf pages for skewed query streams without ever serving
// pre-mutation state.
package lru

import (
	"container/list"
	"sync"
)

// Cache is a fixed-capacity LRU map from K to V, safe for concurrent
// use.
type Cache[K comparable, V any] struct {
	mu        sync.Mutex
	cap       int
	gen       uint64
	evictions int64
	order     *list.List          // front = most recently used
	entries   map[K]*list.Element // key → element; element value is *entry[K, V]
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns a cache holding up to capacity entries. Capacity ≤ 0
// returns nil; a nil *Cache is valid and caches nothing.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity <= 0 {
		return nil
	}
	return &Cache[K, V]{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[K]*list.Element, capacity),
	}
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Get returns the value cached under key, if present and stored at the
// given generation.
func (c *Cache[K, V]) Get(gen uint64, key K) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncGenLocked(gen)
	el, ok := c.entries[key]
	if !ok {
		return zero, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*entry[K, V]).val, true
}

// Put stores val under key at the given generation, evicting the least
// recently used entry when full.
func (c *Cache[K, V]) Put(gen uint64, key K, val V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncGenLocked(gen)
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry[K, V]).val = val
		c.order.MoveToFront(el)
		return
	}
	if len(c.entries) >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry[K, V]).key)
		c.evictions++
	}
	c.entries[key] = c.order.PushFront(&entry[K, V]{key: key, val: val})
}

// Evictions returns the number of entries pushed out by capacity
// pressure since creation. Generation flushes do not count: they
// invalidate, they don't signal an undersized cache.
func (c *Cache[K, V]) Evictions() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// syncGenLocked flushes the cache if the owner has mutated since the
// last access.
func (c *Cache[K, V]) syncGenLocked(gen uint64) {
	if gen != c.gen {
		c.gen = gen
		c.order.Init()
		clear(c.entries)
	}
}
