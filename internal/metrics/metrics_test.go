package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	s := NewSet()
	c := s.Counter("ops.pnn")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters never regress
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if s.Counter("ops.pnn") != c {
		t.Fatal("Counter is not idempotent per name")
	}
	g := s.Gauge("db.imbalance")
	g.Set(1.75)
	if got := g.Value(); got != 1.75 {
		t.Fatalf("gauge = %v, want 1.75", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(10 * time.Microsecond)
	}
	h.Observe(100 * time.Millisecond)
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.quantileNS(0.50)
	if p50 < int64(10*time.Microsecond.Nanoseconds()) || p50 > int64(32*time.Microsecond.Nanoseconds()) {
		t.Fatalf("p50 = %dns, want within a bucket of 10µs", p50)
	}
	if p99 := h.quantileNS(0.99); p99 < int64(64*time.Millisecond.Nanoseconds()) {
		t.Fatalf("p99 = %dns, want to land in the 100ms outlier's bucket", p99)
	}
	if max := h.maxNS.Load(); max != (100 * time.Millisecond).Nanoseconds() {
		t.Fatalf("max = %dns", max)
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second) // clamps to zero
	h.Observe(0)
	h.Observe(time.Hour) // beyond the last bucket bound
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if b := bucketOf(time.Hour); b != histBuckets-1 {
		t.Fatalf("1h bucket = %d, want last (%d)", b, histBuckets-1)
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	s := NewSet()
	s.Counter("b").Inc()
	s.Gauge("a").Set(2)
	s.Histogram("c").Observe(time.Millisecond)
	snap := s.Snapshot()
	want := []string{"a", "b", "c.count", "c.max_ns", "c.p50_ns", "c.p99_ns", "c.sum_ns"}
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d values, want %d: %v", len(snap), len(want), snap)
	}
	for i, v := range snap {
		if v.Name != want[i] {
			t.Fatalf("snapshot[%d] = %q, want %q", i, v.Name, want[i])
		}
	}
	if m := s.Map(); m["b"] != 1 || m["a"] != 2 || m["c.count"] != 1 {
		t.Fatalf("map = %v", m)
	}
}

// TestConcurrentExactness pins the layer's core promise: counts taken
// under concurrency are exact, not approximate.
func TestConcurrentExactness(t *testing.T) {
	s := NewSet()
	c := s.Counter("hits")
	h := s.Histogram("lat")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(time.Duration(i) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}
