// Package metrics provides the lock-cheap counters, gauges and latency
// histograms behind the server's observability surface (the OpMetrics
// wire opcode, `uvclient metrics` and the expvar endpoint). Every
// mutation is a single atomic operation, so instrumenting a hot path —
// one counter bump per request, one histogram observation per push —
// costs nanoseconds and never takes a lock; only registration and
// snapshotting synchronize.
//
// A Set is a named registry. Snapshots flatten every metric into
// (name, value) pairs sorted by name: counters and gauges contribute
// one pair, histograms contribute derived pairs (<name>.count,
// <name>.sum_ns, <name>.max_ns, <name>.p50_ns, <name>.p99_ns), so one
// flat, stable schema serves the wire encoding, the CLI table and
// expvar alike.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n < 0 is ignored: counters never regress).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins float64 level (an imbalance factor, a live
// session count).
type Gauge struct {
	bits atomic.Uint64
}

// Set records the current level.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last recorded level.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the fixed exponential bucket count of a Histogram:
// bucket i holds observations in [2^i µs, 2^(i+1) µs), bucket 0 also
// takes everything below 1µs and the last bucket everything above
// 2^(histBuckets-1) µs ≈ 1100 s — wide enough for any latency this
// engine produces.
const histBuckets = 31

// Histogram accumulates durations into exponential buckets plus exact
// count/sum/max. Observations are four atomic operations; quantiles are
// derived from the buckets at snapshot time (within one power-of-two
// bucket of exact).
type Histogram struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	maxNS   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	b := 0
	for us > 1 && b < histBuckets-1 {
		us >>= 1
		b++
	}
	return b
}

// Observe records one duration (negative durations clamp to zero).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ns := d.Nanoseconds()
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		old := h.maxNS.Load()
		if ns <= old || h.maxNS.CompareAndSwap(old, ns) {
			break
		}
	}
	h.buckets[bucketOf(d)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// quantileNS returns the upper bound (in ns) of the bucket containing
// the q-quantile observation, 0 when empty.
func (h *Histogram) quantileNS(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > rank {
			// Upper bound of bucket i: 2^(i+1) µs.
			return int64(1) << uint(i+1) * 1000
		}
	}
	return h.maxNS.Load()
}

// Value is one flattened metric sample.
type Value struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Set is a named metric registry. Metrics are created on first use and
// live for the Set's lifetime; the returned pointers are what hot paths
// hold, so steady-state instrumentation never touches the registry
// lock.
type Set struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	gaugs map[string]*Gauge
	hists map[string]*Histogram
}

// NewSet returns an empty registry.
func NewSet() *Set {
	return &Set{
		ctrs:  make(map[string]*Counter),
		gaugs: make(map[string]*Gauge),
		hists: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the counter with the given name.
func (s *Set) Counter(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.ctrs[name]
	if !ok {
		c = &Counter{}
		s.ctrs[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge with the given name.
func (s *Set) Gauge(name string) *Gauge {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gaugs[name]
	if !ok {
		g = &Gauge{}
		s.gaugs[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram with the given
// name.
func (s *Set) Histogram(name string) *Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.hists[name]
	if !ok {
		h = &Histogram{}
		s.hists[name] = h
	}
	return h
}

// Snapshot flattens every registered metric into (name, value) pairs
// sorted by name. Counter and gauge reads are single atomic loads, so a
// snapshot taken under concurrent traffic is a consistent-enough view:
// each individual value is exact at its read instant.
func (s *Set) Snapshot() []Value {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Value, 0, len(s.ctrs)+len(s.gaugs)+5*len(s.hists))
	for name, c := range s.ctrs {
		out = append(out, Value{Name: name, Value: float64(c.Value())})
	}
	for name, g := range s.gaugs {
		out = append(out, Value{Name: name, Value: g.Value()})
	}
	for name, h := range s.hists {
		out = append(out,
			Value{Name: name + ".count", Value: float64(h.count.Load())},
			Value{Name: name + ".sum_ns", Value: float64(h.sumNS.Load())},
			Value{Name: name + ".max_ns", Value: float64(h.maxNS.Load())},
			Value{Name: name + ".p50_ns", Value: float64(h.quantileNS(0.50))},
			Value{Name: name + ".p99_ns", Value: float64(h.quantileNS(0.99))},
		)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Map renders a snapshot as a name → value map (the expvar encoding).
func (s *Set) Map() map[string]float64 {
	snap := s.Snapshot()
	m := make(map[string]float64, len(snap))
	for _, v := range snap {
		m[v.Name] = v.Value
	}
	return m
}
