// Package uncertain3 models three-dimensional uncertain objects for the
// multi-dimensional UV-diagram extension: a spherical uncertainty
// region plus a radial shell-histogram pdf, the 3D analogue of the
// paper's 2D circular region with a ring histogram (Section VI-A).
package uncertain3

import (
	"fmt"
	"math"
	"math/rand"

	"uvdiagram/internal/geom3"
)

// DefaultBins mirrors the paper's 20 histogram bars.
const DefaultBins = 20

// PDF3 is a radial probability histogram over the unit ball: bin k
// carries the probability mass of the shell [k/n, (k+1)/n) of the
// normalized radius, uniform in VOLUME within a shell (the 2D model is
// uniform in area within a ring).
type PDF3 struct {
	bins []float64
	cum  []float64 // cum[k] = Σ bins[<k]; len = len(bins)+1
}

// NewPDF3 normalizes the weights into a shell histogram.
func NewPDF3(weights []float64) (*PDF3, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("uncertain3: empty pdf")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("uncertain3: invalid pdf weight %v", w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("uncertain3: pdf has zero mass")
	}
	p := &PDF3{bins: make([]float64, len(weights)), cum: make([]float64, len(weights)+1)}
	for i, w := range weights {
		p.bins[i] = w / total
		p.cum[i+1] = p.cum[i] + p.bins[i]
	}
	return p, nil
}

// Uniform3 returns the volume-uniform pdf over the ball with the given
// number of shells: shell k gets mass proportional to its volume,
// ((k+1)³ − k³)/n³.
func Uniform3(bins int) *PDF3 {
	if bins <= 0 {
		bins = DefaultBins
	}
	w := make([]float64, bins)
	n3 := float64(bins * bins * bins)
	for k := 0; k < bins; k++ {
		a, b := float64(k), float64(k+1)
		w[k] = (b*b*b - a*a*a) / n3
	}
	p, _ := NewPDF3(w)
	return p
}

// Gaussian3 returns an isotropic Gaussian pdf truncated to the ball,
// with σ = sigmaFrac of the radius: shell k gets mass
// ∝ ∫ r²·exp(−r²/2σ²) dr over the shell (numerical quadrature at
// construction).
func Gaussian3(bins int, sigmaFrac float64) *PDF3 {
	if bins <= 0 {
		bins = DefaultBins
	}
	if sigmaFrac <= 0 {
		sigmaFrac = 1.0 / 3.0
	}
	w := make([]float64, bins)
	const sub = 32
	for k := 0; k < bins; k++ {
		a := float64(k) / float64(bins)
		b := float64(k+1) / float64(bins)
		acc := 0.0
		for s := 0; s < sub; s++ {
			r := a + (b-a)*(float64(s)+0.5)/sub
			acc += r * r * math.Exp(-r*r/(2*sigmaFrac*sigmaFrac))
		}
		w[k] = acc * (b - a) / sub
	}
	p, _ := NewPDF3(w)
	return p
}

// PaperGaussian3 mirrors the paper's default: DefaultBins shells of a
// Gaussian with σ = diameter/6 (i.e. one third of the radius).
func PaperGaussian3() *PDF3 { return Gaussian3(DefaultBins, 1.0/3.0) }

// Bins returns the number of shells.
func (p *PDF3) Bins() int { return len(p.bins) }

// Bin returns the probability mass of shell k.
func (p *PDF3) Bin(k int) float64 { return p.bins[k] }

// Weights returns a copy of the normalized shell masses.
func (p *PDF3) Weights() []float64 {
	w := make([]float64, len(p.bins))
	copy(w, p.bins)
	return w
}

// CumRadius returns P(ρ ≤ r) for the normalized radius r in [0, 1],
// interpolating uniformly in volume inside a shell.
func (p *PDF3) CumRadius(r float64) float64 {
	n := len(p.bins)
	if r <= 0 {
		return 0
	}
	if r >= 1 {
		return 1
	}
	k := int(r * float64(n))
	if k >= n {
		k = n - 1
	}
	a := float64(k) / float64(n)
	b := float64(k+1) / float64(n)
	frac := (r*r*r - a*a*a) / (b*b*b - a*a*a)
	return p.cum[k] + p.bins[k]*frac
}

// SampleRadius draws a normalized radius from the radial law.
func (p *PDF3) SampleRadius(rng *rand.Rand) float64 {
	u := rng.Float64()
	lo, hi := 0, len(p.bins)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cum[mid+1] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	k := lo
	if k >= len(p.bins) {
		k = len(p.bins) - 1
	}
	n := float64(len(p.bins))
	a := float64(k) / n
	b := float64(k+1) / n
	var frac float64
	if p.bins[k] > 0 {
		frac = (u - p.cum[k]) / p.bins[k]
	}
	// Uniform in volume within the shell.
	return math.Cbrt(a*a*a + frac*(b*b*b-a*a*a))
}

// Object3 is a 3D uncertain object: ID, spherical uncertainty region
// and radial pdf. A nil PDF with a positive radius means volume-uniform.
type Object3 struct {
	ID     int32
	Region geom3.Sphere
	PDF    *PDF3
}

// New3 builds an object; a nil pdf defaults to Uniform3.
func New3(id int32, region geom3.Sphere, pdf *PDF3) Object3 {
	if pdf == nil && region.R > 0 {
		pdf = Uniform3(DefaultBins)
	}
	return Object3{ID: id, Region: region, PDF: pdf}
}

// DistMin returns the minimum distance of the object from q
// (Equation 2 lifted to 3D).
func (o Object3) DistMin(q geom3.Point3) float64 {
	d := q.Dist(o.Region.C) - o.Region.R
	if d < 0 {
		return 0
	}
	return d
}

// DistMax returns the maximum distance of the object from q
// (Equation 3 lifted to 3D).
func (o Object3) DistMax(q geom3.Point3) float64 {
	return q.Dist(o.Region.C) + o.Region.R
}

// Sample draws a possible position from the object's pdf.
func (o Object3) Sample(rng *rand.Rand) geom3.Point3 {
	if o.Region.R == 0 {
		return o.Region.C
	}
	r := o.PDF.SampleRadius(rng) * o.Region.R
	// Uniform direction on the sphere.
	for {
		v := geom3.P3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		if n := v.Norm(); n > 1e-12 {
			return o.Region.C.Add(v.Scale(r / n))
		}
	}
}
