package uncertain3

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"uvdiagram/internal/geom3"
)

func TestNewPDF3Validation(t *testing.T) {
	if _, err := NewPDF3(nil); err == nil {
		t.Fatal("empty pdf accepted")
	}
	if _, err := NewPDF3([]float64{1, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewPDF3([]float64{0, 0}); err == nil {
		t.Fatal("zero-mass pdf accepted")
	}
	if _, err := NewPDF3([]float64{math.NaN()}); err == nil {
		t.Fatal("NaN weight accepted")
	}
	p, err := NewPDF3([]float64{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Bin(0)-0.25) > 1e-12 || math.Abs(p.Bin(1)-0.75) > 1e-12 {
		t.Fatalf("normalization wrong: %v, %v", p.Bin(0), p.Bin(1))
	}
}

func TestPDF3MassSumsToOne(t *testing.T) {
	for _, p := range []*PDF3{Uniform3(20), Gaussian3(20, 1.0/3), PaperGaussian3()} {
		sum := 0.0
		for k := 0; k < p.Bins(); k++ {
			sum += p.Bin(k)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("pdf mass %v", sum)
		}
	}
}

func TestCumRadiusMonotoneAndEndpoints(t *testing.T) {
	for _, p := range []*PDF3{Uniform3(10), Gaussian3(20, 0.25)} {
		if p.CumRadius(0) != 0 || p.CumRadius(1) != 1 {
			t.Fatalf("endpoints: %v, %v", p.CumRadius(0), p.CumRadius(1))
		}
		prev := 0.0
		for i := 0; i <= 100; i++ {
			r := float64(i) / 100
			c := p.CumRadius(r)
			if c < prev-1e-12 {
				t.Fatalf("CumRadius not monotone at %v: %v < %v", r, c, prev)
			}
			prev = c
		}
	}
}

func TestUniform3IsVolumeUniform(t *testing.T) {
	p := Uniform3(20)
	// CumRadius(r) must equal r³ for the volume-uniform law.
	for _, r := range []float64{0.1, 0.35, 0.5, 0.77, 0.99} {
		if got := p.CumRadius(r); math.Abs(got-r*r*r) > 1e-12 {
			t.Fatalf("CumRadius(%v) = %v, want %v", r, got, r*r*r)
		}
	}
}

func TestSampleRadiusMatchesCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range []*PDF3{Uniform3(20), PaperGaussian3()} {
		const n = 20000
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = p.SampleRadius(rng)
		}
		sort.Float64s(samples)
		// Kolmogorov–Smirnov style check at a grid of quantiles.
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			r := samples[int(q*float64(n))]
			if d := math.Abs(p.CumRadius(r) - q); d > 0.02 {
				t.Fatalf("quantile %v: CDF mismatch %v", q, d)
			}
		}
	}
}

func TestObject3Distances(t *testing.T) {
	o := New3(0, geom3.Sphere{C: geom3.P3(10, 0, 0), R: 3}, nil)
	q := geom3.P3(0, 0, 0)
	if d := o.DistMin(q); math.Abs(d-7) > 1e-12 {
		t.Fatalf("DistMin = %v", d)
	}
	if d := o.DistMax(q); math.Abs(d-13) > 1e-12 {
		t.Fatalf("DistMax = %v", d)
	}
	// Inside the region the minimum distance is zero.
	if d := o.DistMin(geom3.P3(9, 0, 0)); d != 0 {
		t.Fatalf("inside DistMin = %v", d)
	}
}

func TestObject3SampleInsideRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	o := New3(0, geom3.Sphere{C: geom3.P3(5, -3, 2), R: 4}, PaperGaussian3())
	for i := 0; i < 2000; i++ {
		p := o.Sample(rng)
		if !o.Region.Contains(p) {
			t.Fatalf("sample %v outside region", p)
		}
	}
	// Point object always samples its center.
	pt := New3(1, geom3.Sphere{C: geom3.P3(1, 2, 3), R: 0}, nil)
	if p := pt.Sample(rng); p != geom3.P3(1, 2, 3) {
		t.Fatalf("point sample = %v", p)
	}
}
