package prob

import (
	"math"
	"math/rand"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/uncertain"
)

// MonteCarloProbs estimates qualification probabilities by sampling
// every object's position and counting how often each object is the
// nearest (the sampling approach of [25]). It is used as an independent
// cross-check of Probs in tests and examples.
func MonteCarloProbs(objs []uncertain.Object, q geom.Point, trials int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	wins := make([]int, len(objs))
	for t := 0; t < trials; t++ {
		best, arg := math.Inf(1), -1
		for i := range objs {
			p := objs[i].Sample(rng)
			if d := p.DistSq(q); d < best {
				best, arg = d, i
			}
		}
		if arg >= 0 {
			wins[arg]++
		}
	}
	out := make([]float64, len(objs))
	for i, w := range wins {
		out[i] = float64(w) / float64(trials)
	}
	return out
}
