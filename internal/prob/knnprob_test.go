package prob

import (
	"math"
	"testing"

	"uvdiagram/internal/datagen"
	"uvdiagram/internal/geom"
)

func TestKNNProbsMCSumToK(t *testing.T) {
	objs := datagen.Uniform(datagen.Config{N: 15, Side: 500, Diameter: 60, Seed: 1})
	q := geom.Pt(250, 250)
	for _, k := range []int{1, 3, 7} {
		ps := KNNProbsMC(objs, q, k, 2000, 9)
		sum := 0.0
		for _, p := range ps {
			if p < 0 || p > 1 {
				t.Fatalf("k=%d: probability %v outside [0,1]", k, p)
			}
			sum += p
		}
		if math.Abs(sum-float64(k)) > 1e-9 {
			t.Fatalf("k=%d: probabilities sum to %v, want exactly %v", k, sum, float64(k))
		}
	}
}

func TestKNNProbsMCZeroOutsideAnswerSet(t *testing.T) {
	objs := datagen.Uniform(datagen.Config{N: 25, Side: 800, Diameter: 40, Seed: 2})
	q := geom.Pt(400, 400)
	k := 3
	ps := KNNProbsMC(objs, q, k, 4000, 11)
	ans := KNNAnswerSet(objs, q, k)
	inSet := make(map[int]bool, len(ans))
	for _, i := range ans {
		inSet[i] = true
	}
	for i, p := range ps {
		if !inSet[i] && p > 0 {
			t.Fatalf("object %d outside possible-k-NN set has probability %v", i, p)
		}
	}
}

func TestKNNProbsMCKAboveN(t *testing.T) {
	objs := datagen.Uniform(datagen.Config{N: 4, Side: 300, Diameter: 40, Seed: 3})
	ps := KNNProbsMC(objs, geom.Pt(150, 150), 10, 500, 5)
	for i, p := range ps {
		if p != 1 {
			t.Fatalf("k ≥ n: object %d probability %v, want 1", i, p)
		}
	}
}

func TestKNNProbsMCDegenerateInputs(t *testing.T) {
	if ps := KNNProbsMC(nil, geom.Pt(0, 0), 3, 100, 1); len(ps) != 0 {
		t.Fatalf("empty objects: got %v", ps)
	}
	objs := datagen.Uniform(datagen.Config{N: 3, Side: 100, Diameter: 10, Seed: 4})
	for _, p := range KNNProbsMC(objs, geom.Pt(50, 50), 0, 100, 1) {
		if p != 0 {
			t.Fatalf("k=0: probability %v, want 0", p)
		}
	}
}
