package prob

import (
	"sort"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/uncertain"
)

// KNNAnswerSet returns the indices of objects with non-zero probability
// of being among the k nearest neighbors of q — the possible-k-NN set,
// the natural k-NN generalization the paper lists as future work (via
// k-th order Voronoi diagrams [30]).
//
// Exact predicate: Oi can be a k-NN of q iff fewer than k other objects
// are *surely* closer, i.e. |{j ≠ i : distmax(Oj,q) < distmin(Oi,q)}| ≤
// k−1. (Place Oi at its minimum distance; every object without a surely
// -closer guarantee can simultaneously be farther with positive
// probability, by independence.)
func KNNAnswerSet(objs []uncertain.Object, q geom.Point, k int) []int {
	mins := make([]float64, len(objs))
	maxes := make([]float64, len(objs))
	for i := range objs {
		mins[i] = objs[i].DistMin(q)
		maxes[i] = objs[i].DistMax(q)
	}
	return KNNAnswerSetDists(mins, maxes, k)
}

// KNNAnswerSetDists is KNNAnswerSet on precomputed distance bounds:
// mins[i] and maxes[i] are distmin/distmax between q and object i. It
// lets callers that already hold the objects' bounding circles (e.g.
// R-tree leaf entries) answer without materializing the objects.
func KNNAnswerSetDists(mins, maxes []float64, k int) []int {
	n := len(mins)
	if n == 0 || k <= 0 {
		return nil
	}
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	sorted := append([]float64(nil), maxes...)
	sort.Float64s(sorted)

	var ans []int
	for i, dmin := range mins {
		// Objects with distmax strictly below dmin are surely closer.
		surelyCloser := sort.SearchFloat64s(sorted, dmin)
		// Oi itself never counts: distmax(Oi) ≥ distmin(Oi) = dmin, so it
		// is never in the strict prefix.
		if surelyCloser <= k-1 {
			ans = append(ans, i)
		}
	}
	return ans
}
