package prob

import (
	"math/rand"
	"testing"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/uncertain"
)

func TestKNNAnswerSetDegenerate(t *testing.T) {
	objs := []uncertain.Object{obj(0, 0, 0, 1), obj(1, 10, 0, 1)}
	q := geom.Pt(0, 0)
	if got := KNNAnswerSet(nil, q, 1); got != nil {
		t.Errorf("empty = %v", got)
	}
	if got := KNNAnswerSet(objs, q, 0); got != nil {
		t.Errorf("k=0 = %v", got)
	}
	if got := KNNAnswerSet(objs, q, 5); len(got) != 2 {
		t.Errorf("k≥n = %v", got)
	}
}

func TestKNNAnswerSetK1MatchesPNN(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(12)
		objs := make([]uncertain.Object, n)
		for i := range objs {
			objs[i] = obj(int32(i), rng.Float64()*50, rng.Float64()*50, 0.5+rng.Float64()*5)
		}
		q := geom.Pt(rng.Float64()*50, rng.Float64()*50)
		k1 := KNNAnswerSet(objs, q, 1)
		pnn := AnswerSet(objs, q)
		if len(k1) != len(pnn) {
			t.Fatalf("trial %d: k=1 set %v, PNN set %v", trial, k1, pnn)
		}
		for i := range k1 {
			if k1[i] != pnn[i] {
				t.Fatalf("trial %d: k=1 set %v, PNN set %v", trial, k1, pnn)
			}
		}
	}
}

// TestKNNAnswerSetAgainstSampling: any object that appears among the k
// nearest in simulation must be in the possible-k-NN set.
func TestKNNAnswerSetAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 12; trial++ {
		n := 5 + rng.Intn(10)
		objs := make([]uncertain.Object, n)
		for i := range objs {
			objs[i] = uobj(int32(i), rng.Float64()*40, rng.Float64()*40, 1+rng.Float64()*5)
		}
		q := geom.Pt(rng.Float64()*40, rng.Float64()*40)
		k := 1 + rng.Intn(4)
		inSet := map[int]bool{}
		for _, i := range KNNAnswerSet(objs, q, k) {
			inSet[i] = true
		}
		for rep := 0; rep < 2000; rep++ {
			type dd struct {
				i int
				d float64
			}
			ds := make([]dd, n)
			for i := range objs {
				ds[i] = dd{i, objs[i].Sample(rng).Dist(q)}
			}
			// Partial selection of the k smallest.
			for a := 0; a < k; a++ {
				best := a
				for b := a + 1; b < n; b++ {
					if ds[b].d < ds[best].d {
						best = b
					}
				}
				ds[a], ds[best] = ds[best], ds[a]
				if !inSet[ds[a].i] {
					t.Fatalf("trial %d: object %d realized as %d-NN but not in possible-%d-NN set",
						trial, ds[a].i, a+1, k)
				}
			}
		}
	}
}

// TestKNNAnswerSetMonotoneInK: larger k can only grow the set.
func TestKNNAnswerSetMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	objs := make([]uncertain.Object, 20)
	for i := range objs {
		objs[i] = obj(int32(i), rng.Float64()*60, rng.Float64()*60, 0.5+rng.Float64()*4)
	}
	q := geom.Pt(30, 30)
	prev := 0
	for k := 1; k <= 20; k++ {
		cur := len(KNNAnswerSet(objs, q, k))
		if cur < prev {
			t.Fatalf("k=%d set smaller than k=%d (%d < %d)", k, k-1, cur, prev)
		}
		prev = cur
	}
	if prev != 20 {
		t.Fatalf("k=n must include everything, got %d", prev)
	}
}
