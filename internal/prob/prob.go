// Package prob computes PNN qualification probabilities for uncertain
// objects: the exact answer-set predicate, distance distributions via
// ring/disk lens areas, the numerical-integration method of Cheng et
// al. (TKDE 2004, reference [14] of the paper), a Monte-Carlo estimator
// in the spirit of [25], and verifier-style probability bounds in the
// spirit of [15].
package prob

import (
	"math"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/uncertain"
)

// DistanceCDF returns F(r) = P(dist(q, X) ≤ r) where X is the object's
// uncertain position. It is exact for the ring-histogram pdf model: the
// mass of each ring inside the disk Cir(q, r) is proportional to the
// lens area between that disk and the ring.
func DistanceCDF(o uncertain.Object, q geom.Point, r float64) float64 {
	if o.Region.R == 0 {
		if r >= q.Dist(o.Region.C) {
			return 1
		}
		return 0
	}
	if r <= o.DistMin(q) {
		return 0
	}
	if r >= o.DistMax(q) {
		return 1
	}
	disk := geom.Circle{C: q, R: r}
	n := o.PDF.Bins()
	acc := 0.0
	for k := 0; k < n; k++ {
		w := o.PDF.Bin(k)
		if w == 0 {
			continue
		}
		a := o.Region.R * float64(k) / float64(n)
		b := o.Region.R * float64(k+1) / float64(n)
		ringArea := math.Pi * (b*b - a*a)
		if ringArea <= 0 {
			continue
		}
		part := geom.LensArea(disk, geom.Circle{C: o.Region.C, R: b}) -
			geom.LensArea(disk, geom.Circle{C: o.Region.C, R: a})
		acc += w * part / ringArea
	}
	if acc < 0 {
		return 0
	}
	if acc > 1 {
		return 1
	}
	return acc
}

// Dminmax returns min_i distmax(q, Oi), the verification bound of [14]
// used by both indexes to filter candidates, along with the index of
// the minimizing object (-1 for empty input).
func Dminmax(objs []uncertain.Object, q geom.Point) (float64, int) {
	best, arg := math.Inf(1), -1
	for i := range objs {
		if d := objs[i].DistMax(q); d < best {
			best, arg = d, i
		}
	}
	return best, arg
}

// AnswerSet returns the indices (into objs) of the objects with strictly
// positive qualification probability at q: exactly those with
// distmin(Oi, q) < min_{j≠i} distmax(Oj, q).
func AnswerSet(objs []uncertain.Object, q geom.Point) []int {
	return answerSetInto(nil, objs, q)
}

// answerSetInto is AnswerSet appending into a caller-owned buffer (the
// integration scratch path).
func answerSetInto(ans []int, objs []uncertain.Object, q geom.Point) []int {
	n := len(objs)
	if n == 0 {
		return ans
	}
	if n == 1 {
		return append(ans, 0)
	}
	// Two smallest distmax values decide min_{j≠i}.
	m1, m2 := math.Inf(1), math.Inf(1)
	arg1 := -1
	for i := range objs {
		d := objs[i].DistMax(q)
		if d < m1 {
			m1, m2, arg1 = d, m1, i
		} else if d < m2 {
			m2 = d
		}
	}
	for i := range objs {
		other := m1
		if i == arg1 {
			other = m2
		}
		if objs[i].DistMin(q) < other {
			ans = append(ans, i)
		}
	}
	return ans
}
