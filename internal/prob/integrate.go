package prob

import (
	"math"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/uncertain"
)

// DefaultSteps is the default resolution of the numerical integration.
const DefaultSteps = 200

// Probs computes the qualification probability of every object in objs
// for the PNN at q, using the numerical-integration method of [14]:
//
//	P_i = ∫ (dF_i/dr)(r) · Π_{j≠i} (1 − F_j(r)) dr
//
// evaluated as a Riemann–Stieltjes sum over a uniform grid of the
// support [min distmin, second-smallest distmax]. Objects outside the
// answer set get exactly 0. steps ≤ 0 selects DefaultSteps.
//
// The caller typically passes the candidate set produced by an index;
// passing the full dataset is valid, only slower.
func Probs(objs []uncertain.Object, q geom.Point, steps int) []float64 {
	if steps <= 0 {
		steps = DefaultSteps
	}
	out := make([]float64, len(objs))
	ans := AnswerSet(objs, q)
	switch len(ans) {
	case 0:
		return out
	case 1:
		out[ans[0]] = 1
		return out
	}

	// Integration support: every integrand vanishes beyond the smallest
	// distmax (the minimizing object's density is zero there and its
	// survival factor kills every other product), so [lo, dminmax]
	// suffices — which is also why the dminmax candidate filter of [14]
	// is exact.
	lo := math.Inf(1)
	for _, i := range ans {
		lo = math.Min(lo, objs[i].DistMin(q))
	}
	hi, _ := Dminmax(objs, q)
	if hi <= lo {
		// Degenerate support (can happen with coincident point objects):
		// split the mass evenly among answer objects.
		for _, i := range ans {
			out[i] = 1 / float64(len(ans))
		}
		return out
	}

	k := len(ans)
	h := (hi - lo) / float64(steps)
	fPrev := make([]float64, k)
	fNext := make([]float64, k)
	fMid := make([]float64, k)
	for a, i := range ans {
		fPrev[a] = DistanceCDF(objs[i], q, lo)
	}
	for t := 0; t < steps; t++ {
		r1 := lo + float64(t+1)*h
		mid := lo + (float64(t)+0.5)*h
		for a, i := range ans {
			fNext[a] = DistanceCDF(objs[i], q, r1)
			fMid[a] = DistanceCDF(objs[i], q, mid)
		}
		for a := range ans {
			df := fNext[a] - fPrev[a]
			if df <= 0 {
				continue
			}
			prod := 1.0
			for b := range ans {
				if b == a {
					continue
				}
				prod *= 1 - fMid[b]
				if prod == 0 {
					break
				}
			}
			out[ans[a]] += df * prod
		}
		copy(fPrev, fNext)
	}
	return out
}
