package prob

import (
	"math"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/uncertain"
)

// DefaultSteps is the default resolution of the numerical integration.
const DefaultSteps = 200

// Scratch holds the reusable buffers of the probability integration —
// the answer-set index list and the out/fPrev/fNext/fMid vectors that
// Probs used to allocate per query. Batch engines keep one per worker
// (pooled through batchState) so steady-state PNN probability
// computation allocates nothing. A scratch is single-goroutine state;
// slices returned through it are valid until the next call with the
// same scratch.
type Scratch struct {
	out   []float64
	ans   []int
	fPrev []float64
	fNext []float64
	fMid  []float64
}

func (sc *Scratch) floats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// Probs computes the qualification probability of every object in objs
// for the PNN at q, using the numerical-integration method of [14]:
//
//	P_i = ∫ (dF_i/dr)(r) · Π_{j≠i} (1 − F_j(r)) dr
//
// evaluated as a Riemann–Stieltjes sum over a uniform grid of the
// support [min distmin, second-smallest distmax]. Objects outside the
// answer set get exactly 0. steps ≤ 0 selects DefaultSteps.
//
// The caller typically passes the candidate set produced by an index;
// passing the full dataset is valid, only slower.
func Probs(objs []uncertain.Object, q geom.Point, steps int) []float64 {
	return ProbsScratch(objs, q, steps, nil)
}

// ProbsScratch is Probs through an optional scratch: the returned slice
// aliases sc.out and is valid until the next call with the same
// scratch. A nil scratch allocates fresh buffers, making it identical
// to Probs. The arithmetic — and therefore every probability, bitwise —
// is the same on both paths.
func ProbsScratch(objs []uncertain.Object, q geom.Point, steps int, sc *Scratch) []float64 {
	if sc == nil {
		sc = &Scratch{}
	}
	if steps <= 0 {
		steps = DefaultSteps
	}
	out := sc.floats(&sc.out, len(objs))
	for i := range out {
		out[i] = 0
	}
	sc.ans = answerSetInto(sc.ans[:0], objs, q)
	ans := sc.ans
	switch len(ans) {
	case 0:
		return out
	case 1:
		out[ans[0]] = 1
		return out
	}

	// Integration support: every integrand vanishes beyond the smallest
	// distmax (the minimizing object's density is zero there and its
	// survival factor kills every other product), so [lo, dminmax]
	// suffices — which is also why the dminmax candidate filter of [14]
	// is exact.
	lo := math.Inf(1)
	for _, i := range ans {
		lo = math.Min(lo, objs[i].DistMin(q))
	}
	hi, _ := Dminmax(objs, q)
	if hi <= lo {
		// Degenerate support (can happen with coincident point objects):
		// split the mass evenly among answer objects.
		for _, i := range ans {
			out[i] = 1 / float64(len(ans))
		}
		return out
	}

	k := len(ans)
	h := (hi - lo) / float64(steps)
	fPrev := sc.floats(&sc.fPrev, k)
	fNext := sc.floats(&sc.fNext, k)
	fMid := sc.floats(&sc.fMid, k)
	for a, i := range ans {
		fPrev[a] = DistanceCDF(objs[i], q, lo)
	}
	for t := 0; t < steps; t++ {
		r1 := lo + float64(t+1)*h
		mid := lo + (float64(t)+0.5)*h
		for a, i := range ans {
			fNext[a] = DistanceCDF(objs[i], q, r1)
			fMid[a] = DistanceCDF(objs[i], q, mid)
		}
		for a := range ans {
			df := fNext[a] - fPrev[a]
			if df <= 0 {
				continue
			}
			prod := 1.0
			for b := range ans {
				if b == a {
					continue
				}
				prod *= 1 - fMid[b]
				if prod == 0 {
					break
				}
			}
			out[ans[a]] += df * prod
		}
		copy(fPrev, fNext)
	}
	return out
}
