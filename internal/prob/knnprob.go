package prob

import (
	"math/rand"
	"sort"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/uncertain"
)

// KNNProbsMC estimates, for every object, the probability that it is
// among the k nearest neighbors of q, by sampling possible worlds (one
// position per object per trial, the sampling approach of [25]). The
// estimates of one call sum to exactly min(k, n) because every world
// contributes exactly that many top-k memberships.
func KNNProbsMC(objs []uncertain.Object, q geom.Point, k, trials int, seed int64) []float64 {
	n := len(objs)
	out := make([]float64, n)
	if n == 0 || k <= 0 || trials <= 0 {
		return out
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	type ranked struct {
		d   float64
		idx int
	}
	world := make([]ranked, n)
	counts := make([]int64, n)
	for t := 0; t < trials; t++ {
		for i := range objs {
			world[i] = ranked{d: objs[i].Sample(rng).Dist(q), idx: i}
		}
		sort.Slice(world, func(a, b int) bool { return world[a].d < world[b].d })
		for i := 0; i < k; i++ {
			counts[world[i].idx]++
		}
	}
	for i := range out {
		out[i] = float64(counts[i]) / float64(trials)
	}
	return out
}
