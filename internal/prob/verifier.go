package prob

import (
	"math"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/uncertain"
)

// Interval is a closed probability interval.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether p lies in the interval, with slack eps.
func (iv Interval) Contains(p, eps float64) bool {
	return p >= iv.Lo-eps && p <= iv.Hi+eps
}

// Bounds computes guaranteed lower/upper bounds on every object's
// qualification probability without a fine integration, in the spirit
// of the probabilistic verifiers of [15]: the support is split into a
// small number of pieces and on each piece the survival product
// Π(1 − F_j) is bounded by its endpoint values (F_j is monotone).
// The true probability always lies inside the returned interval; more
// pieces give tighter bounds.
func Bounds(objs []uncertain.Object, q geom.Point, pieces int) []Interval {
	if pieces <= 0 {
		pieces = 8
	}
	out := make([]Interval, len(objs))
	ans := AnswerSet(objs, q)
	switch len(ans) {
	case 0:
		return out
	case 1:
		out[ans[0]] = Interval{1, 1}
		return out
	}
	lo := math.Inf(1)
	for _, i := range ans {
		lo = math.Min(lo, objs[i].DistMin(q))
	}
	hi, _ := Dminmax(objs, q)
	if hi <= lo {
		for _, i := range ans {
			out[i] = Interval{0, 1}
		}
		return out
	}

	k := len(ans)
	h := (hi - lo) / float64(pieces)
	fa := make([]float64, k) // F at piece start
	fb := make([]float64, k) // F at piece end
	for a, i := range ans {
		fa[a] = DistanceCDF(objs[i], q, lo)
	}
	for t := 0; t < pieces; t++ {
		r1 := lo + float64(t+1)*h
		for a, i := range ans {
			fb[a] = DistanceCDF(objs[i], q, r1)
		}
		for a := range ans {
			df := fb[a] - fa[a]
			if df <= 0 {
				continue
			}
			prodLo, prodHi := 1.0, 1.0
			for b := range ans {
				if b == a {
					continue
				}
				prodLo *= 1 - fb[b]
				prodHi *= 1 - fa[b]
			}
			out[ans[a]].Lo += df * prodLo
			out[ans[a]].Hi += df * prodHi
		}
		copy(fa, fb)
	}
	for _, i := range ans {
		if out[i].Hi > 1 {
			out[i].Hi = 1
		}
	}
	return out
}
