package prob

import (
	"math"
	"math/rand"
	"testing"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/uncertain"
)

func obj(id int32, x, y, r float64) uncertain.Object {
	return uncertain.New(id, geom.Circle{C: geom.Pt(x, y), R: r}, uncertain.PaperGaussian())
}

func uobj(id int32, x, y, r float64) uncertain.Object {
	return uncertain.New(id, geom.Circle{C: geom.Pt(x, y), R: r}, uncertain.Uniform(20))
}

func TestDistanceCDFEndpoints(t *testing.T) {
	o := uobj(0, 10, 0, 3)
	q := geom.Pt(0, 0)
	if got := DistanceCDF(o, q, o.DistMin(q)); got != 0 {
		t.Errorf("F(distmin) = %v", got)
	}
	if got := DistanceCDF(o, q, o.DistMax(q)); got != 1 {
		t.Errorf("F(distmax) = %v", got)
	}
	if got := DistanceCDF(o, q, 1); got != 0 {
		t.Errorf("F below support = %v", got)
	}
	if got := DistanceCDF(o, q, 100); got != 1 {
		t.Errorf("F above support = %v", got)
	}
}

func TestDistanceCDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		o := obj(0, rng.Float64()*20, rng.Float64()*20, 1+rng.Float64()*4)
		q := geom.Pt(rng.Float64()*40-10, rng.Float64()*40-10)
		lo, hi := o.DistMin(q), o.DistMax(q)
		prev := -1.0
		for i := 0; i <= 200; i++ {
			r := lo + (hi-lo)*float64(i)/200
			f := DistanceCDF(o, q, r)
			if f < prev-1e-9 {
				t.Fatalf("cdf decreasing at r=%v: %v < %v", r, f, prev)
			}
			if f < 0 || f > 1 {
				t.Fatalf("cdf out of range: %v", f)
			}
			prev = f
		}
	}
}

// TestDistanceCDFAgainstSampling: the analytic lens-based CDF must match
// the empirical distance distribution.
func TestDistanceCDFAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, pdf := range []*uncertain.HistogramPDF{uncertain.Uniform(20), uncertain.PaperGaussian()} {
		o := uncertain.New(0, geom.Circle{C: geom.Pt(5, 5), R: 2}, pdf)
		q := geom.Pt(0, 1)
		const n = 100000
		var ds []float64
		for i := 0; i < n; i++ {
			ds = append(ds, o.Sample(rng).Dist(q))
		}
		for _, r := range []float64{4.5, 5.2, 6.0, 6.8} {
			cnt := 0
			for _, d := range ds {
				if d <= r {
					cnt++
				}
			}
			emp := float64(cnt) / n
			ana := DistanceCDF(o, q, r)
			if math.Abs(emp-ana) > 0.01 {
				t.Errorf("r=%v: empirical %v vs analytic %v", r, emp, ana)
			}
		}
	}
}

func TestDistanceCDFPointObject(t *testing.T) {
	o := uncertain.New(0, geom.Circle{C: geom.Pt(3, 0), R: 0}, nil)
	q := geom.Pt(0, 0)
	if DistanceCDF(o, q, 2.9) != 0 || DistanceCDF(o, q, 3.0) != 1 {
		t.Error("point-object cdf must be a step at the distance")
	}
}

func TestDminmax(t *testing.T) {
	objs := []uncertain.Object{obj(0, 0, 0, 1), obj(1, 10, 0, 2), obj(2, 4, 0, 1)}
	q := geom.Pt(0, 0)
	d, arg := Dminmax(objs, q)
	if arg != 0 || d != 1 {
		t.Errorf("Dminmax = %v, %d", d, arg)
	}
	if _, arg := Dminmax(nil, q); arg != -1 {
		t.Error("empty Dminmax should return -1")
	}
}

func TestAnswerSetBasic(t *testing.T) {
	// Far-apart objects: only the closest can be the NN.
	objs := []uncertain.Object{obj(0, 0, 0, 1), obj(1, 100, 0, 1), obj(2, 200, 0, 1)}
	q := geom.Pt(1, 0)
	ans := AnswerSet(objs, q)
	if len(ans) != 1 || ans[0] != 0 {
		t.Errorf("AnswerSet = %v", ans)
	}
	// Two overlapping-in-distance objects.
	objs = []uncertain.Object{obj(0, 0, 0, 3), obj(1, 4, 0, 3), obj(2, 100, 0, 1)}
	ans = AnswerSet(objs, geom.Pt(2, 0))
	if len(ans) != 2 {
		t.Errorf("AnswerSet = %v, want {0,1}", ans)
	}
	if got := AnswerSet(objs[:1], q); len(got) != 1 {
		t.Error("singleton dataset must answer itself")
	}
}

// TestAnswerSetAgainstSampling: every object with empirical win
// frequency > 0 must be in the answer set, and (for comfortable margins)
// vice versa.
func TestAnswerSetAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		objs := make([]uncertain.Object, n)
		for i := range objs {
			objs[i] = uobj(int32(i), rng.Float64()*30, rng.Float64()*30, 0.5+rng.Float64()*3)
		}
		q := geom.Pt(rng.Float64()*30, rng.Float64()*30)
		ans := AnswerSet(objs, q)
		inAns := map[int]bool{}
		for _, i := range ans {
			inAns[i] = true
		}
		mc := MonteCarloProbs(objs, q, 4000, int64(trial))
		for i, p := range mc {
			if p > 0.01 && !inAns[i] {
				t.Fatalf("trial %d: object %d wins %v of samples but not in answer set %v",
					trial, i, p, ans)
			}
		}
	}
}

func TestProbsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(7)
		objs := make([]uncertain.Object, n)
		for i := range objs {
			objs[i] = obj(int32(i), rng.Float64()*30, rng.Float64()*30, 0.5+rng.Float64()*4)
		}
		q := geom.Pt(rng.Float64()*30, rng.Float64()*30)
		ps := Probs(objs, q, 300)
		sum := 0.0
		for _, p := range ps {
			if p < 0 || p > 1+1e-9 {
				t.Fatalf("trial %d: probability %v out of range", trial, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 0.02 {
			t.Fatalf("trial %d: probabilities sum to %v", trial, sum)
		}
	}
}

func TestProbsMatchMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(4)
		objs := make([]uncertain.Object, n)
		for i := range objs {
			objs[i] = uobj(int32(i), rng.Float64()*20, rng.Float64()*20, 1+rng.Float64()*4)
		}
		q := geom.Pt(rng.Float64()*20, rng.Float64()*20)
		ana := Probs(objs, q, 400)
		mc := MonteCarloProbs(objs, q, 60000, int64(trial)+100)
		for i := range objs {
			if math.Abs(ana[i]-mc[i]) > 0.02 {
				t.Errorf("trial %d obj %d: integrated %v vs MC %v", trial, i, ana[i], mc[i])
			}
		}
	}
}

func TestProbsSingleAnswerShortcut(t *testing.T) {
	objs := []uncertain.Object{obj(0, 0, 0, 1), obj(1, 1000, 0, 1)}
	ps := Probs(objs, geom.Pt(0, 0), 0)
	if ps[0] != 1 || ps[1] != 0 {
		t.Errorf("Probs = %v", ps)
	}
	if ps := Probs(nil, geom.Pt(0, 0), 0); len(ps) != 0 {
		t.Errorf("empty Probs = %v", ps)
	}
}

func TestBoundsBracketProbs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(5)
		objs := make([]uncertain.Object, n)
		for i := range objs {
			objs[i] = obj(int32(i), rng.Float64()*25, rng.Float64()*25, 0.5+rng.Float64()*4)
		}
		q := geom.Pt(rng.Float64()*25, rng.Float64()*25)
		ps := Probs(objs, q, 600)
		for _, pieces := range []int{4, 16, 64} {
			bounds := Bounds(objs, q, pieces)
			for i := range objs {
				if !bounds[i].Contains(ps[i], 0.01) {
					t.Fatalf("trial %d obj %d pieces %d: p=%v outside [%v,%v]",
						trial, i, pieces, ps[i], bounds[i].Lo, bounds[i].Hi)
				}
			}
		}
		// More pieces must not widen the bounds materially.
		b4 := Bounds(objs, q, 4)
		b64 := Bounds(objs, q, 64)
		for i := range objs {
			if b64[i].Hi-b64[i].Lo > b4[i].Hi-b4[i].Lo+1e-9 {
				t.Fatalf("trial %d obj %d: bounds widened with more pieces", trial, i)
			}
		}
	}
}

func TestBoundsSingleAnswer(t *testing.T) {
	objs := []uncertain.Object{obj(0, 0, 0, 1), obj(1, 1000, 0, 1)}
	b := Bounds(objs, geom.Pt(0, 0), 8)
	if b[0] != (Interval{1, 1}) || b[1] != (Interval{0, 0}) {
		t.Errorf("Bounds = %v", b)
	}
}
