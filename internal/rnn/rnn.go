// Package rnn answers probabilistic reverse nearest-neighbor (PRNN)
// queries over uncertain objects — the query type the paper's
// conclusion lists as future work ("reverse nearest-neighbor queries",
// in the spirit of [27], [28]).
//
// Given a query point q, an object Oi is a PRNN answer iff q has a
// non-zero probability of being the nearest neighbor of Oi's true
// position Xi among {q} ∪ {Xj : j ≠ i}:
//
//	P[ dist(Xi, q) < min_{j≠i} dist(Xi, Xj) ] > 0.
//
// Geometry. Treat q as a zero-radius uncertain object. Its possible
// region against O ∖ {Oi},
//
//	P₋ᵢ = { x : dist(x,q) < dist(x,cj) + rj  for every j ≠ i },
//
// is exactly the set of positions for which q can be the nearest
// object. P₋ᵢ is star-shaped around q (the same triangle-inequality
// argument as DESIGN.md §3), so along the ray q + t·u(φ) it is the
// interval [0, R₋ᵢ(φ)) with R₋ᵢ(φ) = min_{j≠i} t_j(φ), where t_j is the
// radial bound of the UV-edge of the point object q w.r.t. Oj. Oi is a
// PRNN answer iff its uncertainty region intersects P₋ᵢ with positive
// measure (the pdf model has full support on the region, so interior
// intersection suffices).
//
// Candidate cutoff (the second-minimum lemma). For every direction φ
// let d₂(φ) be the second-smallest radial bound over all objects
// (+∞ if fewer than two bounds exist), and D₂ = max_φ d₂(φ). Dropping
// one constraint raises a minimum at most to the second minimum, so
// every witness x ∈ P₋ᵢ has dist(x,q) ≤ d₂(φ) ≤ D₂, and therefore
// every answer object satisfies distmin(Oi,q) ≤ D₂. Candidates are
// collected with one R-tree range query of radius D₂.
//
// The same bound caps the constraint pool: a constraint whose outside
// region does not meet the disk Cir(q, D₂) cannot exclude any witness,
// and its center must satisfy dist(q,cj) + rj < 2·D₂ to meet that disk,
// so the pool is one more range query of radius 2·D₂.
package rnn

import (
	"math"
	"sort"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/rtree"
	"uvdiagram/internal/uncertain"
)

// Answer is one PRNN result: the object ID and the probability that q
// is the object's nearest neighbor.
type Answer struct {
	ID   int32
	Prob float64
}

// Options tune the PRNN evaluation; zero values select defaults.
type Options struct {
	// SweepSamples is the number of directions in the cutoff sweep
	// (default 720). More samples tighten D₂.
	SweepSamples int
	// VerifySamples is the minimum number of directions used to test one
	// candidate for intersection with P₋ᵢ (default 96).
	VerifySamples int
	// Refine is the number of golden-section iterations polishing each
	// local maximum of the sweep and of the per-candidate margin
	// (default 40).
	Refine int
	// RadialSteps is the number of radial quadrature nodes per pdf bin
	// for probability integration (default 3).
	RadialSteps int
	// AngularSteps is the number of angular quadrature nodes for
	// probability integration (default 48).
	AngularSteps int
	// SkipProbabilities answers the boolean query only, leaving every
	// Answer.Prob zero.
	SkipProbabilities bool
	// Alive filters the population: objects for which it returns false
	// are treated as nonexistent (tombstoned store slots). nil means
	// every object is live. objs stays positionally indexed by ID, so
	// dense slices with dead slots work unchanged.
	Alive func(int32) bool
}

// alive reports whether id is live under the options' filter.
func (o Options) alive(id int32) bool { return o.Alive == nil || o.Alive(id) }

func (o Options) normalized() Options {
	if o.SweepSamples <= 0 {
		o.SweepSamples = 720
	}
	if o.VerifySamples <= 0 {
		o.VerifySamples = 96
	}
	if o.Refine <= 0 {
		o.Refine = 40
	}
	if o.RadialSteps <= 0 {
		o.RadialSteps = 3
	}
	if o.AngularSteps <= 0 {
		o.AngularSteps = 48
	}
	return o
}

// Stats reports the work done by one PRNN query.
type Stats struct {
	// Cutoff is D₂, the candidate radius (math.Inf(1) when some
	// direction is unbounded, in which case every object is a
	// candidate).
	Cutoff float64
	// Candidates is the number of objects passing the cutoff filter.
	Candidates int
	// PoolSize is the number of constraints kept for verification.
	PoolSize int
	// Answers is the number of verified answer objects.
	Answers int
}

// qcon is one precomputed constraint of the query point's possible
// region: the UV-edge of the zero-radius object q w.r.t. Oj.
type qcon struct {
	id     int32
	w      geom.Point // q − cj
	s      float64    // rj
	normSq float64    // |w|²
	m      float64    // (|w|+s)/2: the minimum of t over all directions
}

func newQCon(q geom.Point, o uncertain.Object) qcon {
	return newQConR(q, 0, o)
}

// newQConR builds the constraint for an UNCERTAIN query region
// Cir(q, qr): object Oi can have the query as a nearest neighbor at
// position x only if distmin(Q, x) = dist(x, q) − qr stays below
// dist(x, cj) + rj for every competitor, so the outside-region
// condition is dist(x,q) − dist(x,cj) > rj + qr — the same UV-edge
// with S = rj + qr. The point query is the qr = 0 special case.
func newQConR(q geom.Point, qr float64, o uncertain.Object) qcon {
	w := q.Sub(o.Region.C)
	n := w.Norm()
	s := o.Region.R + qr
	return qcon{id: o.ID, w: w, s: s, normSq: n * n, m: (n + s) / 2}
}

// bound returns the radial bound t of the constraint along the unit
// direction u, with ok=false when the ray from q never enters the
// outside region (same closed form as geom.UVEdge.RadialBound).
func (c qcon) bound(u geom.Point) (float64, bool) {
	den := c.w.Dot(u) + c.s
	if den >= 0 {
		return 0, false
	}
	return (c.s*c.s - c.normSq) / (2 * den), true
}

// exists reports whether the constraint is non-degenerate (the query
// point is outside Oj's uncertainty region).
func (c qcon) exists() bool { return c.normSq > c.s*c.s }

// Query answers the PRNN query at q over the objects, using the R-tree
// for candidate and pool collection. Answers are sorted by ID. tree may
// be nil, in which case candidates are collected by scanning objs.
func Query(objs []uncertain.Object, tree *rtree.Tree, q geom.Point, opt Options) ([]Answer, Stats) {
	opt = opt.normalized()
	ids, st := queryIDs(objs, tree, q, 0, opt)
	out := make([]Answer, len(ids))
	for i, id := range ids {
		out[i] = Answer{ID: id}
		if !opt.SkipProbabilities {
			out[i].Prob = ProbAlive(objs, id, q, opt.RadialSteps, opt.AngularSteps, opt.Alive)
		}
	}
	return out, st
}

// PossibleRNN returns only the IDs of the PRNN answer objects.
func PossibleRNN(objs []uncertain.Object, tree *rtree.Tree, q geom.Point, opt Options) ([]int32, Stats) {
	return queryIDs(objs, tree, q, 0, opt.normalized())
}

// PossibleRNNUncertain answers the PRNN with an UNCERTAIN query object
// (uncertainty region Cir(uq.C, uq.R)) — reverse counterpart of the
// uncertain-query nearest-neighbor setting of [29]. Object Oi is an
// answer iff there is non-zero probability that the query's true
// position is Oi's nearest neighbor; geometrically, the constraint
// UV-edges gain S = rj + rq and everything else carries over (the
// point query is the rq = 0 special case).
func PossibleRNNUncertain(objs []uncertain.Object, tree *rtree.Tree, uq geom.Circle, opt Options) ([]int32, Stats) {
	return queryIDs(objs, tree, uq.C, uq.R, opt.normalized())
}

// queryIDs is the shared pipeline: cutoff sweep → candidate range
// query → exact per-candidate verification. qr is the query's own
// uncertainty radius (0 for a point query).
func queryIDs(objs []uncertain.Object, tree *rtree.Tree, q geom.Point, qr float64, opt Options) ([]int32, Stats) {
	var st Stats

	cons := make([]qcon, 0, len(objs))
	for i := range objs {
		if !opt.alive(objs[i].ID) {
			continue
		}
		if c := newQConR(q, qr, objs[i]); c.exists() {
			cons = append(cons, c)
		}
	}
	// Ascending by the direction-independent lower bound m = (|w|+s)/2
	// (the bound t_j(φ) can never fall below the distance from q to the
	// nearest edge point): minimum searches then stop at the first
	// constraint whose floor already exceeds the running result, so
	// each direction touches only the few nearest objects.
	sort.Slice(cons, func(a, b int) bool { return cons[a].m < cons[b].m })

	d2 := cutoff(cons, opt.SweepSamples, opt.Refine)
	st.Cutoff = d2

	cands := collect(objs, tree, q, d2, func(o uncertain.Object) bool {
		return opt.alive(o.ID) && o.DistMin(q) <= d2
	})
	st.Candidates = len(cands)

	pool := cons
	if !math.IsInf(d2, 1) {
		pool = pool[:0:0]
		for _, c := range cons {
			// Constraint s already includes qr, so the 2·D₂ pool bound
			// is unchanged: |w| + s < 2·D₂.
			if math.Sqrt(c.normSq)+c.s <= 2*d2*(1+1e-9) {
				pool = append(pool, c)
			}
		}
	}
	st.PoolSize = len(pool)

	var out []int32
	for _, id := range cands {
		if intersects(objs[id], q, qr, pool, d2, opt) {
			out = append(out, id)
		}
	}
	st.Answers = len(out)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, st
}

// collect gathers the IDs of objects passing keep, using the R-tree
// when available and the radius is finite.
func collect(objs []uncertain.Object, tree *rtree.Tree, q geom.Point, radius float64, keep func(uncertain.Object) bool) []int32 {
	var ids []int32
	if tree != nil && !math.IsInf(radius, 1) {
		r := geom.Circle{C: q, R: radius}.BoundingRect()
		for _, it := range tree.SearchCollect(r) {
			if keep(objs[it.ID]) {
				ids = append(ids, it.ID)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return ids
	}
	for i := range objs {
		if keep(objs[i]) {
			ids = append(ids, objs[i].ID)
		}
	}
	return ids
}

// cutoff computes D₂ = max_φ d₂(φ) by a dense sweep followed by
// golden-section polishing of each local maximum. The result is
// inflated by a small relative factor: the cutoff is only a candidate
// filter, so overestimating costs a few extra verifications while
// underestimating could drop an answer.
func cutoff(cons []qcon, samples, refine int) float64 {
	if len(cons) < 2 {
		return math.Inf(1)
	}
	eval := func(phi float64) float64 { return secondMin(cons, geom.PolarUnit(phi)) }

	vals := make([]float64, samples)
	for i := 0; i < samples; i++ {
		vals[i] = eval(2 * math.Pi * float64(i) / float64(samples))
	}
	best := 0.0
	for i, v := range vals {
		if math.IsInf(v, 1) {
			return math.Inf(1)
		}
		if v > best {
			best = v
		}
		// Polish local maxima: vals[i] ≥ both neighbors (cyclically).
		prev := vals[(i+samples-1)%samples]
		next := vals[(i+1)%samples]
		if v >= prev && v >= next {
			lo := 2 * math.Pi * float64(i-1) / float64(samples)
			hi := 2 * math.Pi * float64(i+1) / float64(samples)
			if r := goldenMax(eval, lo, hi, refine); r > best {
				if math.IsInf(r, 1) {
					return r
				}
				best = r
			}
		}
	}
	return best * (1 + 1e-6)
}

// secondMin returns the second-smallest radial bound over the
// constraints along u (+∞ when fewer than two constraints bound the
// ray). When cons is sorted ascending by the per-constraint floor m,
// the scan stops as soon as the floor exceeds the running second
// minimum — no later constraint can lower it.
func secondMin(cons []qcon, u geom.Point) float64 {
	m1, m2 := math.Inf(1), math.Inf(1)
	for i := range cons {
		c := &cons[i]
		if c.m >= m2 {
			break
		}
		t, ok := c.bound(u)
		if !ok {
			continue
		}
		if t < m1 {
			m1, m2 = t, m1
		} else if t < m2 {
			m2 = t
		}
	}
	return m2
}

// goldenMax maximizes f on [lo, hi] by golden-section search and
// returns the best value seen (f need not be unimodal on the bracket;
// the result is still a valid lower bound on the maximum, which is the
// safe direction here).
func goldenMax(f func(float64) float64, lo, hi float64, iters int) float64 {
	const invPhi = 0.6180339887498949
	a, b := lo, hi
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	best := math.Max(f1, f2)
	for i := 0; i < iters; i++ {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		}
		if v := math.Max(f1, f2); v > best {
			best = v
		}
	}
	return best
}

// intersects reports whether Oi's uncertainty region intersects the
// interior of P₋ᵢ. The disk is scanned over the angular span it
// subtends from q; along each ray the nearest disk point is at
// t_near(φ), and the ray meets the region iff t_near(φ) < R₋ᵢ(φ).
// qr is the query's own uncertainty radius; the pool constraints
// already carry it in their S terms.
func intersects(oi uncertain.Object, q geom.Point, qr float64, pool []qcon, cap float64, opt Options) bool {
	l := q.Dist(oi.Region.C)
	if l <= oi.Region.R+qr {
		// The query's region touches Oi's: a position of Oi coinciding
		// with a position of the query has distance 0, which beats
		// every other object's maximum distance (positive, since
		// regions that meet the query contribute no constraint).
		return true
	}

	radius := func(u geom.Point) float64 {
		r := math.Inf(1)
		for i := range pool {
			c := &pool[i]
			if c.m >= r {
				break // pool is sorted by floor m: no further improvement
			}
			if c.id == oi.ID {
				continue
			}
			if t, ok := c.bound(u); ok && t < r {
				r = t
			}
		}
		// Witnesses beyond the cutoff cannot exist (second-minimum
		// lemma); clamping also keeps the pool approximation sound.
		if !math.IsInf(cap, 1) && r > cap {
			r = cap
		}
		return r
	}

	phi0 := oi.Region.C.Sub(q).Angle()
	alpha := math.Asin(math.Min(1, oi.Region.R/l))

	// Margin of the ray at angular offset psi from phi0: positive iff
	// the nearest disk point on the ray lies strictly inside P₋ᵢ.
	margin := func(psi float64) float64 {
		s := l * math.Sin(psi)
		disc := oi.Region.R*oi.Region.R - s*s
		if disc < 0 {
			return math.Inf(-1)
		}
		tn := l*math.Cos(psi) - math.Sqrt(disc)
		if tn < 0 {
			tn = 0
		}
		return radius(geom.PolarUnit(phi0+psi)) - tn
	}

	n := opt.VerifySamples
	if n < 9 {
		n = 9
	}
	bestPsi, bestVal := 0.0, math.Inf(-1)
	for i := 0; i < n; i++ {
		psi := -alpha + 2*alpha*float64(i)/float64(n-1)
		if v := margin(psi); v > bestVal {
			bestPsi, bestVal = psi, v
		}
	}
	if bestVal > 0 {
		return true
	}
	// Polish around the best sample before rejecting.
	step := 2 * alpha / float64(n-1)
	lo := math.Max(-alpha, bestPsi-step)
	hi := math.Min(alpha, bestPsi+step)
	return goldenMax(margin, lo, hi, opt.Refine) > 0
}
