package rnn

import (
	"math"
	"testing"

	"uvdiagram/internal/datagen"
	"uvdiagram/internal/geom"
	"uvdiagram/internal/uncertain"
)

func TestProbLoneObjectIsOne(t *testing.T) {
	objs := []uncertain.Object{obj(0, 100, 100, 15)}
	if p := Prob(objs, 0, geom.Pt(0, 0), 4, 64); math.Abs(p-1) > 1e-12 {
		t.Fatalf("lone object probability = %v, want 1", p)
	}
}

func TestProbMatchesMonteCarlo(t *testing.T) {
	objs := datagen.Uniform(datagen.Config{N: 12, Side: 400, Diameter: 80, Seed: 42})
	q := geom.Pt(200, 200)
	ids, _ := PossibleRNN(objs, nil, q, Options{})
	if len(ids) == 0 {
		t.Skip("no answers in this instance")
	}
	for _, id := range ids {
		integ := Prob(objs, id, q, 4, 72)
		mc := MonteCarlo(objs, id, q, 60000, 7)
		if math.Abs(integ-mc) > 0.03 {
			t.Fatalf("object %d: integration %v vs Monte-Carlo %v", id, integ, mc)
		}
	}
}

func TestProbZeroForBlockedObject(t *testing.T) {
	objs := []uncertain.Object{
		obj(0, 100, 0, 10),
		obj(1, 50, 0, 1),
	}
	q := geom.Pt(0, 0)
	if p := Prob(objs, 0, q, 6, 96); p != 0 {
		t.Fatalf("blocked object probability = %v, want 0", p)
	}
	// The far object (radius 10) can still come within ~40 of the
	// blocker while q sits at ~50, so the blocker wins only about half
	// of the possible worlds; cross-check against Monte Carlo.
	p := Prob(objs, 1, q, 6, 96)
	mc := MonteCarlo(objs, 1, q, 60000, 4)
	if math.Abs(p-mc) > 0.03 {
		t.Fatalf("blocker probability %v disagrees with Monte-Carlo %v", p, mc)
	}
}

func TestProbPositiveForAnswers(t *testing.T) {
	objs := datagen.Uniform(datagen.Config{N: 25, Side: 600, Diameter: 60, Seed: 17})
	q := geom.Pt(300, 300)
	ans, _ := Query(objs, buildTree(objs), q, Options{})
	for _, a := range ans {
		m := BruteForceMargin(objs, a.ID, q, 20)
		if m > 2 && a.Prob <= 0 {
			t.Fatalf("answer %d with margin %.2f has probability %v", a.ID, m, a.Prob)
		}
		if a.Prob < 0 || a.Prob > 1 {
			t.Fatalf("answer %d probability %v outside [0,1]", a.ID, a.Prob)
		}
	}
}

func TestPointMassProb(t *testing.T) {
	// Two points: nearer one has probability 1, farther 0.
	objs := []uncertain.Object{
		uncertain.New(0, geom.Circle{C: geom.Pt(10, 0), R: 0}, nil),
		uncertain.New(1, geom.Circle{C: geom.Pt(40, 0), R: 0}, nil),
	}
	q := geom.Pt(0, 0)
	if p := Prob(objs, 0, q, 1, 1); math.Abs(p-1) > 1e-12 {
		t.Fatalf("near point probability = %v, want 1", p)
	}
	// Point 1 is 30 from point 0 and 40 from q, so q is not its NN.
	if p := Prob(objs, 1, q, 1, 1); p != 0 {
		t.Fatalf("far point probability = %v, want 0", p)
	}
}

func TestRelevantCompetitorsFiltersFar(t *testing.T) {
	objs := []uncertain.Object{
		obj(0, 0, 0, 5),
		obj(1, 8, 0, 1),     // relevant: can be closer than q
		obj(2, 10000, 0, 1), // irrelevant: far beyond distmax(O0, q)
	}
	rel := relevantCompetitors(objs, objs[0], geom.Pt(20, 0), nil)
	if len(rel) != 1 || rel[0].ID != 1 {
		ids := make([]int32, len(rel))
		for i, o := range rel {
			ids[i] = o.ID
		}
		t.Fatalf("relevant competitors = %v, want [1]", ids)
	}
}

func TestMonteCarloDeterministicSeed(t *testing.T) {
	objs := datagen.Uniform(datagen.Config{N: 8, Side: 300, Diameter: 60, Seed: 9})
	q := geom.Pt(150, 150)
	a := MonteCarlo(objs, 0, q, 5000, 123)
	b := MonteCarlo(objs, 0, q, 5000, 123)
	if a != b {
		t.Fatalf("same seed gave different estimates: %v vs %v", a, b)
	}
}
