package rnn

import (
	"math"
	"math/rand"
	"testing"

	"uvdiagram/internal/datagen"
	"uvdiagram/internal/geom"
	"uvdiagram/internal/uncertain"
)

// bruteMarginUncertain is the uncertain-query analogue of
// BruteForceMargin: the witness slack with the query's minimum
// distance dist(x,q) − qr.
func bruteMarginUncertain(objs []uncertain.Object, id int32, uq geom.Circle, grid int) float64 {
	oi := objs[id]
	slack := func(x geom.Point) float64 {
		m := math.Inf(1)
		dq := math.Max(0, x.Dist(uq.C)-uq.R)
		for j := range objs {
			if objs[j].ID == id {
				continue
			}
			if s := objs[j].DistMax(x) - dq; s < m {
				m = s
			}
		}
		return m
	}
	best := slack(oi.Region.C)
	for ri := 0; ri <= grid; ri++ {
		r := oi.Region.R * float64(ri) / float64(grid)
		steps := 1
		if ri > 0 {
			steps = 4 * grid
		}
		for t := 0; t < steps; t++ {
			phi := 2 * math.Pi * float64(t) / float64(steps)
			x := oi.Region.C.Add(geom.PolarUnit(phi).Scale(r))
			if s := slack(x); s > best {
				best = s
			}
		}
	}
	return best
}

func TestUncertainQueryZeroRadiusMatchesPoint(t *testing.T) {
	objs := datagen.Uniform(datagen.Config{N: 40, Side: 1000, Diameter: 50, Seed: 31})
	tree := buildTree(objs)
	for _, q := range []geom.Point{geom.Pt(500, 500), geom.Pt(120, 860)} {
		a, _ := PossibleRNN(objs, tree, q, Options{})
		b, _ := PossibleRNNUncertain(objs, tree, geom.Circle{C: q, R: 0}, Options{})
		if len(a) != len(b) {
			t.Fatalf("q=%v: point %v vs zero-radius uncertain %v", q, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("q=%v: point %v vs zero-radius uncertain %v", q, a, b)
			}
		}
	}
}

func TestUncertainQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		objs := datagen.Uniform(datagen.Config{
			N: 25 + rng.Intn(25), Side: 1000, Diameter: 50, Seed: int64(trial + 40),
		})
		tree := buildTree(objs)
		uq := geom.Circle{
			C: geom.Pt(rng.Float64()*1000, rng.Float64()*1000),
			R: rng.Float64() * 40,
		}
		got, _ := PossibleRNNUncertain(objs, tree, uq, Options{})
		const tol = 1.0
		for i := range objs {
			m := bruteMarginUncertain(objs, objs[i].ID, uq, 24)
			if math.Abs(m) <= tol {
				continue
			}
			if containsID(got, objs[i].ID) != (m > 0) {
				t.Fatalf("trial %d uq=%v obj %d: margin %.3f, in answers=%v (answers %v)",
					trial, uq, i, m, containsID(got, objs[i].ID), got)
			}
		}
	}
}

func TestUncertainQueryMonotoneInRadius(t *testing.T) {
	// Growing the query's uncertainty region can only weaken the
	// competitors' constraints, so the answer set is monotone
	// non-decreasing in the query radius.
	objs := datagen.Uniform(datagen.Config{N: 50, Side: 1000, Diameter: 40, Seed: 91})
	tree := buildTree(objs)
	q := geom.Pt(470, 530)
	prev := 0
	for _, qr := range []float64{0, 10, 40, 120, 400} {
		ids, _ := PossibleRNNUncertain(objs, tree, geom.Circle{C: q, R: qr}, Options{})
		if len(ids) < prev {
			t.Fatalf("answer count dropped from %d to %d at qr=%v", prev, len(ids), qr)
		}
		prev = len(ids)
	}
}

func TestUncertainQueryCoversOverlappingObjects(t *testing.T) {
	// Every object whose region intersects the query's region is
	// always an answer (a shared position has distance zero).
	objs := datagen.Uniform(datagen.Config{N: 60, Side: 1000, Diameter: 60, Seed: 13})
	tree := buildTree(objs)
	uq := geom.Circle{C: geom.Pt(500, 500), R: 150}
	ids, _ := PossibleRNNUncertain(objs, tree, uq, Options{})
	for i := range objs {
		if uq.Overlaps(objs[i].Region) && !containsID(ids, objs[i].ID) {
			t.Fatalf("object %d overlaps the query region but is not an answer", i)
		}
	}
}
