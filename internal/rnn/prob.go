package rnn

import (
	"math"
	"math/rand"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/prob"
	"uvdiagram/internal/uncertain"
)

// Prob integrates the PRNN qualification probability of object i:
//
//	P = E_{x ~ Oi} [ Π_{j≠i} P(dist(Xj, x) > dist(x, q)) ]
//	  = E_{x ~ Oi} [ Π_{j≠i} (1 − Fj(dist(x, q); x)) ],
//
// where Fj(d; x) is the distance CDF of Oj seen from x (computed
// exactly from ring lens areas, prob.DistanceCDF). The outer
// expectation is a deterministic polar quadrature over Oi's histogram
// rings: radial nodes per pdf bin (midpoint rule on ring area) times
// angular nodes. Objects that can never come within distmax(Oi,q) of a
// position of Oi contribute a factor of exactly 1 and are skipped.
func Prob(objs []uncertain.Object, id int32, q geom.Point, radialSteps, angularSteps int) float64 {
	return ProbAlive(objs, id, q, radialSteps, angularSteps, nil)
}

// ProbAlive is Prob restricted to a live sub-population: competitors
// for which alive returns false are skipped (nil means all live).
func ProbAlive(objs []uncertain.Object, id int32, q geom.Point, radialSteps, angularSteps int, alive func(int32) bool) float64 {
	if radialSteps <= 0 {
		radialSteps = 3
	}
	if angularSteps <= 0 {
		angularSteps = 48
	}
	oi := objs[id]
	relevant := relevantCompetitors(objs, oi, q, alive)

	if oi.Region.R == 0 {
		return survival(relevant, oi.Region.C, q)
	}

	bins := oi.PDF.Bins()
	total := 0.0
	for b := 0; b < bins; b++ {
		w := oi.PDF.Bin(b)
		if w == 0 {
			continue
		}
		a0 := oi.Region.R * float64(b) / float64(bins)
		a1 := oi.Region.R * float64(b+1) / float64(bins)
		ringArea := math.Pi * (a1*a1 - a0*a0)
		if ringArea <= 0 {
			continue
		}
		for s := 0; s < radialSteps; s++ {
			r0 := a0 + (a1-a0)*float64(s)/float64(radialSteps)
			r1 := a0 + (a1-a0)*float64(s+1)/float64(radialSteps)
			rm := (r0 + r1) / 2
			// Fraction of the bin's mass in this sub-ring (area-uniform
			// within a bin, matching the histogram model).
			frac := (r1*r1 - r0*r0) / (a1*a1 - a0*a0)
			for t := 0; t < angularSteps; t++ {
				phi := 2 * math.Pi * (float64(t) + 0.5) / float64(angularSteps)
				x := oi.Region.C.Add(geom.PolarUnit(phi).Scale(rm))
				total += w * frac / float64(angularSteps) * survival(relevant, x, q)
			}
		}
	}
	return clamp01(total)
}

// survival returns Π_j P(dist(Xj, x) > dist(x,q)) over the competitors.
func survival(competitors []uncertain.Object, x, q geom.Point) float64 {
	d := x.Dist(q)
	p := 1.0
	for _, oj := range competitors {
		p *= 1 - prob.DistanceCDF(oj, x, d)
		if p == 0 {
			return 0
		}
	}
	return p
}

// relevantCompetitors returns the objects that can be closer to some
// position of Oi than q is: dist(ci,cj) − ri − rj < distmax(Oi, q).
// All others multiply the survival product by exactly 1.
func relevantCompetitors(objs []uncertain.Object, oi uncertain.Object, q geom.Point, alive func(int32) bool) []uncertain.Object {
	dm := oi.DistMax(q)
	var out []uncertain.Object
	for j := range objs {
		if objs[j].ID == oi.ID || (alive != nil && !alive(objs[j].ID)) {
			continue
		}
		if oi.Region.C.Dist(objs[j].Region.C)-oi.Region.R-objs[j].Region.R < dm {
			out = append(out, objs[j])
		}
	}
	return out
}

// MonteCarlo estimates the PRNN probability of object id by sampling
// full possible worlds: draw a position for every object and count
// worlds in which q is strictly nearer to Oi's position than every
// other object's position. It is the unbiased ground truth used to
// cross-check Prob in tests.
func MonteCarlo(objs []uncertain.Object, id int32, q geom.Point, trials int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	oi := objs[id]
	hits := 0
	for t := 0; t < trials; t++ {
		x := oi.Sample(rng)
		d := x.Dist(q)
		win := true
		for j := range objs {
			if objs[j].ID == id {
				continue
			}
			// Cheap reject: the competitor can never be that close.
			if objs[j].DistMin(x) >= d {
				continue
			}
			if objs[j].Sample(rng).Dist(x) < d {
				win = false
				break
			}
		}
		if win {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
