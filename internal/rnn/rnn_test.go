package rnn

import (
	"math"
	"math/rand"
	"testing"

	"uvdiagram/internal/datagen"
	"uvdiagram/internal/geom"
	"uvdiagram/internal/pager"
	"uvdiagram/internal/rtree"
	"uvdiagram/internal/uncertain"
)

func obj(id int32, x, y, r float64) uncertain.Object {
	return uncertain.New(id, geom.Circle{C: geom.Pt(x, y), R: r}, uncertain.Uniform(8))
}

func buildTree(objs []uncertain.Object) *rtree.Tree {
	items := make([]rtree.Item, len(objs))
	for i, o := range objs {
		items[i] = rtree.Item{ID: o.ID, MBC: o.Region}
	}
	return rtree.BulkLoad(items, 16, pager.New(4096))
}

func idsOf(ans []Answer) []int32 {
	out := make([]int32, len(ans))
	for i, a := range ans {
		out[i] = a.ID
	}
	return out
}

func containsID(ids []int32, id int32) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

func TestSingleObjectAlwaysAnswer(t *testing.T) {
	objs := []uncertain.Object{obj(0, 500, 500, 20)}
	ans, st := Query(objs, buildTree(objs), geom.Pt(100, 100), Options{})
	if len(ans) != 1 || ans[0].ID != 0 {
		t.Fatalf("lone object must be a PRNN answer, got %v", ans)
	}
	if math.Abs(ans[0].Prob-1) > 1e-9 {
		t.Fatalf("lone object probability = %v, want 1", ans[0].Prob)
	}
	if !math.IsInf(st.Cutoff, 1) {
		t.Fatalf("cutoff with one object must be +Inf, got %v", st.Cutoff)
	}
}

func TestBlockerExcludesFarObject(t *testing.T) {
	// Oj sits between q and Oi: every position of Oi is closer to Oj's
	// worst case than to q, so Oi cannot have q as a nearest neighbor.
	objs := []uncertain.Object{
		obj(0, 100, 0, 10), // far object
		obj(1, 50, 0, 1),   // blocker
	}
	q := geom.Pt(0, 0)
	ans, _ := Query(objs, buildTree(objs), q, Options{})
	ids := idsOf(ans)
	if containsID(ids, 0) {
		t.Fatalf("blocked object reported as PRNN answer: %v", ids)
	}
	if !containsID(ids, 1) {
		t.Fatalf("blocker itself must be a PRNN answer: %v", ids)
	}
}

func TestSymmetricPairBothAnswer(t *testing.T) {
	objs := []uncertain.Object{
		obj(0, -60, 0, 5),
		obj(1, 60, 0, 5),
	}
	ans, _ := Query(objs, buildTree(objs), geom.Pt(0, 0), Options{})
	if len(ans) != 2 {
		t.Fatalf("symmetric pair: want both objects as answers, got %v", ans)
	}
	if math.Abs(ans[0].Prob-ans[1].Prob) > 0.02 {
		t.Fatalf("symmetric probabilities differ: %v vs %v", ans[0].Prob, ans[1].Prob)
	}
}

func TestQInsideRegionIsAnswer(t *testing.T) {
	objs := []uncertain.Object{
		obj(0, 0, 0, 10), // q inside this region
		obj(1, 3, 0, 1),
		obj(2, -4, 1, 1),
	}
	ans, _ := Query(objs, buildTree(objs), geom.Pt(1, 1), Options{})
	if !containsID(idsOf(ans), 0) {
		t.Fatalf("object containing q must be an answer, got %v", ans)
	}
}

func TestMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		n := 20 + rng.Intn(30)
		objs := datagen.Uniform(datagen.Config{
			N: n, Side: 1000, Diameter: 40 + 40*rng.Float64(), Seed: int64(trial),
		})
		tree := buildTree(objs)
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		got, _ := PossibleRNN(objs, tree, q, Options{})

		const tol = 1.0 // margin band excluded from comparison
		for i := range objs {
			m := BruteForceMargin(objs, objs[i].ID, q, 24)
			if math.Abs(m) <= tol {
				continue
			}
			want := m > 0
			if containsID(got, objs[i].ID) != want {
				t.Fatalf("trial %d q=%v object %d: margin=%.3f want answer=%v, answers=%v",
					trial, q, i, m, want, got)
			}
		}
	}
}

func TestCutoffLemma(t *testing.T) {
	// Every brute-force answer must satisfy distmin(Oi, q) ≤ D₂.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		objs := datagen.Uniform(datagen.Config{
			N: 40, Side: 1000, Diameter: 60, Seed: int64(100 + trial),
		})
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		_, st := PossibleRNN(objs, buildTree(objs), q, Options{})
		for _, id := range BruteForceIDs(objs, q, 20) {
			if m := BruteForceMargin(objs, id, q, 20); m <= 1.0 {
				continue // boundary band: grid answer may be spurious
			}
			if dm := objs[id].DistMin(q); dm > st.Cutoff {
				t.Fatalf("trial %d: answer %d has distmin %.3f > cutoff %.3f",
					trial, id, dm, st.Cutoff)
			}
		}
	}
}

func TestPointDegenerationMatchesClassicRNN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 15 + rng.Intn(20)
		pts := make([]geom.Point, n)
		objs := make([]uncertain.Object, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
			objs[i] = uncertain.New(int32(i), geom.Circle{C: pts[i], R: 0}, nil)
		}
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		got, _ := PossibleRNN(objs, buildTree(objs), q, Options{})
		want := PointRNN(pts, q)

		// Exclude ties within tolerance (measure-zero for random data,
		// but guard regardless).
		for _, i := range want {
			if !containsID(got, int32(i)) {
				t.Fatalf("trial %d: classic RNN answer %d missing from PRNN %v", trial, i, got)
			}
		}
		for _, id := range got {
			d := pts[id].Dist(q)
			nearest := math.Inf(1)
			for j, p := range pts {
				if int32(j) != id {
					nearest = math.Min(nearest, pts[id].Dist(p))
				}
			}
			if d > nearest+1e-9 {
				t.Fatalf("trial %d: PRNN answer %d is not a classic RNN (d=%v nearest=%v)",
					trial, id, d, nearest)
			}
		}
	}
}

func TestAnswersAreSubsetOfCandidates(t *testing.T) {
	objs := datagen.Uniform(datagen.Config{N: 60, Side: 1000, Diameter: 50, Seed: 5})
	ans, st := Query(objs, buildTree(objs), geom.Pt(500, 500), Options{SkipProbabilities: true})
	if st.Answers != len(ans) {
		t.Fatalf("stats answers %d != len(answers) %d", st.Answers, len(ans))
	}
	if st.Candidates < st.Answers {
		t.Fatalf("candidates %d < answers %d", st.Candidates, st.Answers)
	}
	if st.Candidates > len(objs) {
		t.Fatalf("candidates %d > n %d", st.Candidates, len(objs))
	}
}

func TestNilTreeScansAllObjects(t *testing.T) {
	objs := datagen.Uniform(datagen.Config{N: 30, Side: 1000, Diameter: 50, Seed: 11})
	q := geom.Pt(400, 600)
	withTree, _ := PossibleRNN(objs, buildTree(objs), q, Options{})
	without, _ := PossibleRNN(objs, nil, q, Options{})
	if len(withTree) != len(without) {
		t.Fatalf("tree vs scan disagree: %v vs %v", withTree, without)
	}
	for i := range withTree {
		if withTree[i] != without[i] {
			t.Fatalf("tree vs scan disagree at %d: %v vs %v", i, withTree, without)
		}
	}
}

func TestGoldenMaxFindsMaximum(t *testing.T) {
	f := func(x float64) float64 { return -(x - 2.3) * (x - 2.3) }
	if got := goldenMax(f, 0, 5, 60); math.Abs(got) > 1e-9 {
		t.Fatalf("goldenMax = %v, want ~0", got)
	}
}

func TestSecondMinBasics(t *testing.T) {
	q := geom.Pt(0, 0)
	cons := []qcon{
		newQCon(q, obj(1, 10, 0, 1)),
		newQCon(q, obj(2, 20, 0, 1)),
	}
	u := geom.Pt(1, 0)
	m2 := secondMin(cons, u)
	t1, ok1 := cons[0].bound(u)
	t2, ok2 := cons[1].bound(u)
	if !ok1 || !ok2 {
		t.Fatalf("both constraints should bound the +x ray")
	}
	want := math.Max(t1, t2)
	if math.Abs(m2-want) > 1e-9 {
		t.Fatalf("secondMin = %v, want %v", m2, want)
	}
	// Opposite direction: neither constraint crosses, so +Inf.
	if v := secondMin(cons, geom.Pt(-1, 0)); !math.IsInf(v, 1) {
		t.Fatalf("secondMin away from all objects = %v, want +Inf", v)
	}
}

func TestQConBoundAgainstUVEdge(t *testing.T) {
	// The local closed form must agree with geom.UVEdge.RadialBound for
	// a zero-radius first object.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		q := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		o := obj(0, rng.Float64()*100, rng.Float64()*100, rng.Float64()*10)
		c := newQCon(q, o)
		if !c.exists() {
			continue
		}
		e := geom.NewUVEdge(geom.Circle{C: q, R: 0}, o.Region)
		phi := rng.Float64() * 2 * math.Pi
		u := geom.PolarUnit(phi)
		t1, ok1 := c.bound(u)
		t2, ok2 := e.RadialBound(u)
		if ok1 != ok2 {
			t.Fatalf("bound existence disagrees: %v vs %v", ok1, ok2)
		}
		if ok1 && math.Abs(t1-t2) > 1e-9*(1+math.Abs(t1)) {
			t.Fatalf("bound disagrees: %v vs %v", t1, t2)
		}
	}
}
