package rnn

import (
	"math"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/uncertain"
)

// BruteForceMargin evaluates the PRNN predicate for object id directly
// from its definition: the maximum over a dense polar grid of positions
// x in Oi's region of the worst-case slack
//
//	min_{j≠i} ( dist(x,cj) + rj − dist(x,q) ).
//
// A positive margin means x is a witness (q can be x's nearest object);
// object id is a PRNN answer iff the true margin is positive. The grid
// maximization is a lower bound on the true margin, so tests compare
// decisions only for objects whose |margin| clears a tolerance.
func BruteForceMargin(objs []uncertain.Object, id int32, q geom.Point, grid int) float64 {
	if grid < 2 {
		grid = 2
	}
	oi := objs[id]
	slack := func(x geom.Point) float64 {
		m := math.Inf(1)
		for j := range objs {
			if objs[j].ID == id {
				continue
			}
			if s := objs[j].DistMax(x) - x.Dist(q); s < m {
				m = s
			}
		}
		return m
	}
	best := slack(oi.Region.C)
	for ri := 0; ri <= grid; ri++ {
		r := oi.Region.R * float64(ri) / float64(grid)
		steps := 1
		if ri > 0 {
			steps = 4 * grid
		}
		for t := 0; t < steps; t++ {
			phi := 2 * math.Pi * float64(t) / float64(steps)
			x := oi.Region.C.Add(geom.PolarUnit(phi).Scale(r))
			if s := slack(x); s > best {
				best = s
			}
		}
	}
	return best
}

// BruteForceIDs returns the PRNN answer IDs by applying
// BruteForceMargin to every object. Objects whose margin is within tol
// of zero are classified by its sign; callers comparing against Query
// should exclude them instead (see tests).
func BruteForceIDs(objs []uncertain.Object, q geom.Point, grid int) []int32 {
	var ids []int32
	for i := range objs {
		if BruteForceMargin(objs, objs[i].ID, q, grid) > 0 {
			ids = append(ids, objs[i].ID)
		}
	}
	return ids
}

// PointRNN answers the classical (certain) reverse nearest-neighbor
// query over point data in O(n²): point i is an answer iff q is at
// least as close to it as every other point. It is the degenerate case
// the PRNN must reproduce when every radius is zero (ties broken
// inclusively, matching the non-strict possible-world semantics of a
// zero-radius object: equality still allows q as *a* nearest neighbor
// only when strictly closer, so strict inequality is used).
func PointRNN(pts []geom.Point, q geom.Point) []int {
	var out []int
	for i, p := range pts {
		d := p.Dist(q)
		win := true
		for j, r := range pts {
			if j == i {
				continue
			}
			if p.Dist(r) < d {
				win = false
				break
			}
		}
		if win {
			out = append(out, i)
		}
	}
	return out
}
