package core3

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"uvdiagram/internal/geom3"
	"uvdiagram/internal/uncertain3"
)

// seedCount is the number of nearest neighbors used to bound an
// object's possible region before I-pruning (the 3D analogue of the
// paper's ks = 8 sector seeds; more seeds compensate for the extra
// dimension).
const seedCount = 24

// Build3 input validation failures, checkable with errors.Is — the 3D
// counterparts of the root package's typed ErrOutOfDomain.
var (
	// ErrSparseIDs reports objects whose IDs are not dense 0..n−1 (the
	// octree's leaf lists and cr-registry index by position).
	ErrSparseIDs = errors.New("core3: objects must carry dense IDs 0..n-1")
	// ErrOutOfDomain3 reports an object whose center lies outside the
	// domain box; its UV-cell would be clipped to nothing.
	ErrOutOfDomain3 = errors.New("core3: object center outside domain")
)

// Strategy3 names the 3D derivation strategy. Only the paper-
// recommended I-pruning + center-range strategy exists in 3D (C-pruning
// needs the 2D convex-hull machinery); the type mirrors the 2D Strategy
// so build logs read the same for every engine.
type Strategy3 int

// StrategyIC3 is I-pruning over the hash-grid substrate, the only (and
// default) 3D strategy.
const StrategyIC3 Strategy3 = iota

// String implements fmt.Stringer.
func (s Strategy3) String() string {
	if s == StrategyIC3 {
		return "IC"
	}
	return fmt.Sprintf("Strategy3(%d)", int(s))
}

// validate3 checks the build input: dense IDs and in-domain centers.
func validate3(objs []uncertain3.Object3, domain geom3.Box) error {
	if len(objs) == 0 {
		return fmt.Errorf("core3: no objects to index")
	}
	for i := range objs {
		if int(objs[i].ID) != i {
			return fmt.Errorf("%w: object %d has ID %d", ErrSparseIDs, i, objs[i].ID)
		}
		if !domain.Contains(objs[i].Region.C) {
			return fmt.Errorf("%w: object %d center %v, domain %v", ErrOutOfDomain3, i, objs[i].Region.C, domain)
		}
	}
	return nil
}

// nearestSeeds returns up to m object ids nearest to oi's center,
// found by expanding-ball search on the hash grid.
func nearestSeeds(grid *HashGrid3, oi uncertain3.Object3, objs []uncertain3.Object3, domain geom3.Box, m int) []int32 {
	return nearestSeedsInto(grid, oi, objs, domain, m, nil, &seedSorter3{})
}

// seedSorter3 orders seed candidates by center distance. sort.Sort over
// a retained pointer receiver allocates nothing, and Go's sort package
// generates the Interface and func variants of pdqsort from the same
// template, so the comparison/swap sequence — and hence the order of
// distance ties — is exactly sort.Slice's.
type seedSorter3 struct {
	ids  []int32
	objs []uncertain3.Object3
	c    geom3.Point3
}

func (s *seedSorter3) Len() int      { return len(s.ids) }
func (s *seedSorter3) Swap(a, b int) { s.ids[a], s.ids[b] = s.ids[b], s.ids[a] }
func (s *seedSorter3) Less(a, b int) bool {
	return s.objs[s.ids[a]].Region.C.DistSq(s.c) < s.objs[s.ids[b]].Region.C.DistSq(s.c)
}

// nearestSeedsInto is nearestSeeds through caller-owned buffers. Every
// intermediate ball is collected in ascending id order (the grid's
// canonical order), so the distance sort sees the same input as the
// allocating form and ties break identically.
func nearestSeedsInto(grid *HashGrid3, oi uncertain3.Object3, objs []uncertain3.Object3, domain geom3.Box, m int, buf []int32, sorter *seedSorter3) []int32 {
	if grid == nil {
		return buf[:0]
	}
	radius := math.Cbrt(domain.Volume()*float64(m)/float64(len(objs)+1)) + oi.Region.R
	maxRadius := domain.MaxDist(oi.Region.C)
	ids := buf
	for {
		ids = grid.CenterRangeInto(geom3.Sphere{C: oi.Region.C, R: radius}, ids)
		w := 0
		for _, id := range ids {
			if id != oi.ID {
				ids[w] = id
				w++
			}
		}
		ids = ids[:w]
		if len(ids) >= m || radius >= maxRadius {
			break
		}
		radius *= 2
	}
	sorter.ids, sorter.objs, sorter.c = ids, objs, oi.Region.C
	sort.Sort(sorter)
	sorter.ids, sorter.objs = nil, nil
	if len(ids) > m {
		ids = ids[:m]
	}
	return ids
}

// DeriveCR3 derives the cr-objects of Oi's 3D UV-cell: a seed phase
// bounds the possible region with the nearest neighbors, then the
// I-pruning filter iterates to a fixpoint. Lemma 2's proof is
// dimension-free: if cj lies outside Ball(ci, 2d − ri), where d bounds
// the possible region's maximum distance from ci, then Oj's outside
// region cannot intersect the region — and since a region built from
// fewer constraints is a superset, the seed region's radius is a valid
// d for the first round.
//
// The derivation runs through sc's reusable buffers (seed and candidate
// pools, the cross-round bound cache, the region's constraint storage),
// so a long-lived scratch makes steady-state derivation allocate only
// the returned cr-set — and the cache means each candidate's
// hyperboloid bounds are evaluated over the lattice once per derive
// call instead of once per fixpoint round. A nil sc uses a private one.
// The returned region is OWNED BY THE SCRATCH and only valid until its
// next use; the cr-set is freshly allocated and safe to retain. Results
// are bitwise identical to DeriveCR3Reference.
func DeriveCR3(grid *HashGrid3, oi uncertain3.Object3, objs []uncertain3.Object3, domain geom3.Box, dirs []geom3.Point3, sc *DeriveScratch3) ([]int32, *PossibleRegion3) {
	if sc == nil {
		sc = NewDeriveScratch3()
	}
	sc.beginObject(oi, domain, dirs, len(objs))
	sc.seeds = nearestSeedsInto(grid, oi, objs, domain, seedCount, sc.seeds, &sc.sorter)
	d := sc.foldMax(oi, objs, sc.seeds, dirs)
	if dd := domain.MaxDist(oi.Region.C); dd < d {
		d = dd // region ⊆ domain: the corner distance is always valid
	}
	sc.cands = sc.cands[:0]
	for iter := 0; iter < 6; iter++ {
		radius := 2*d - oi.Region.R
		if radius <= 0 {
			radius = d
		}
		cands := sc.cands[:0]
		if grid != nil {
			cands = grid.CenterRangeInto(geom3.Sphere{C: oi.Region.C, R: radius}, cands)
			w := 0
			for _, id := range cands {
				if id != oi.ID {
					cands[w] = id
					w++
				}
			}
			cands = cands[:w]
		} else {
			for j := range objs {
				if objs[j].ID != oi.ID && objs[j].Region.C.Dist(oi.Region.C) <= radius {
					cands = append(cands, objs[j].ID)
				}
			}
		}
		sc.cands = cands
		d2 := sc.foldMax(oi, objs, cands, dirs)
		if d2 >= d*(1-1e-9) {
			break
		}
		d = d2
	}
	// Materialize the final round's region once, from cached constraints
	// (the constructor is pure, so these are the exact constraints the
	// reference's per-round AddObject loop ends with).
	pr := &sc.region
	pr.Reset(oi.Region.C, domain)
	for _, j := range sc.cands {
		if idx := sc.rowFor(oi, objs[j], dirs); idx >= 0 {
			pr.cons = append(pr.cons, sc.edges[idx])
		}
	}
	if len(sc.cands) == 0 {
		return nil, pr
	}
	ids := make([]int32, len(sc.cands))
	copy(ids, sc.cands)
	return ids, pr
}

// BuildStats3 records 3D construction cost. With Workers > 1 PruneDur
// is summed CPU time across workers, while TotalDur remains wall clock.
type BuildStats3 struct {
	Strategy Strategy3
	N        int
	PruneDur time.Duration
	IndexDur time.Duration
	TotalDur time.Duration
	SumCR    int64
	Index    IndexStats3
}

// String summarizes the build for logs, phrased like the 2D
// BuildStats.String so every engine's build line reads the same.
func (s BuildStats3) String() string {
	return fmt.Sprintf("build3[%s]: n=%d total=%v (prune %v, index %v), avg|CR|=%.1f, pruned %.1f%%",
		s.Strategy, s.N, s.TotalDur.Round(time.Millisecond),
		s.PruneDur.Round(time.Millisecond), s.IndexDur.Round(time.Millisecond),
		s.AvgCR(), 100*s.PruneRatio())
}

// AvgCR returns the mean cr-object count per object.
func (s BuildStats3) AvgCR() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.SumCR) / float64(s.N)
}

// PruneRatio returns the average fraction of the dataset pruned away
// before indexing.
func (s BuildStats3) PruneRatio() float64 {
	if s.N <= 1 {
		return 0
	}
	return 1 - s.AvgCR()/float64(s.N-1)
}

// DeriveCR3Sets runs the 3D derivation over every object and returns
// the cr-sets indexed by id — the 3D analogue of DeriveCRSets, and like
// it Workers-parallel over a shared work queue with per-worker scratch
// arenas. The hash grid and direction lattice are read-only and shared
// by all workers. The caller fills in IndexDur/TotalDur/Index after
// indexing.
func DeriveCR3Sets(objs []uncertain3.Object3, domain geom3.Box, opts Options3) ([][]int32, BuildStats3, error) {
	if err := validate3(objs, domain); err != nil {
		return nil, BuildStats3{}, err
	}
	opts.normalize()
	stats := BuildStats3{N: len(objs), Strategy: StrategyIC3}
	grid := NewHashGrid3(objs, domain, 0)
	dirs := geom3.FibonacciSphere(opts.Dirs)
	crSets := make([][]int32, len(objs))

	if opts.Workers > 1 {
		var (
			wg     sync.WaitGroup
			mu     sync.Mutex
			prune  time.Duration
			sumCR  int64
			next   = make(chan int)
			labels = pprof.Labels("engine", "uv3", "stage", "derive")
		)
		for w := 0; w < opts.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				pprof.Do(context.Background(), labels, func(context.Context) {
					sc := NewDeriveScratch3()
					var localDur time.Duration
					var localCR int64
					for i := range next {
						p0 := time.Now()
						ids, _ := DeriveCR3(grid, objs[i], objs, domain, dirs, sc)
						localDur += time.Since(p0)
						localCR += int64(len(ids))
						crSets[i] = ids
					}
					mu.Lock()
					prune += localDur
					sumCR += localCR
					mu.Unlock()
				})
			}()
		}
		for i := range objs {
			next <- i
		}
		close(next)
		wg.Wait()
		stats.PruneDur, stats.SumCR = prune, sumCR
	} else {
		pprof.Do(context.Background(), pprof.Labels("engine", "uv3", "stage", "derive"), func(context.Context) {
			sc := NewDeriveScratch3()
			for i := range objs {
				p0 := time.Now()
				ids, _ := DeriveCR3(grid, objs[i], objs, domain, dirs, sc)
				stats.PruneDur += time.Since(p0)
				stats.SumCR += int64(len(ids))
				crSets[i] = ids
			}
		})
	}
	return crSets, stats, nil
}

// Build3 constructs the 3D UV-index over the objects: derive each
// object's cr-set through the hash-grid substrate (Workers-parallel,
// per-worker scratch arenas), insert into the octree sequentially (the
// octree is not concurrency-safe), seal. Objects must carry dense IDs
// 0..n−1 (ErrSparseIDs) with in-domain centers (ErrOutOfDomain3). The
// index — leaf lists, stats and query answers — is bitwise identical to
// Build3Reference's at every worker count.
func Build3(objs []uncertain3.Object3, domain geom3.Box, opts Options3) (*OctIndex, BuildStats3, error) {
	t0 := time.Now()
	crSets, stats, err := DeriveCR3Sets(objs, domain, opts)
	if err != nil {
		return nil, stats, err
	}
	opts.normalize()
	ix := NewOctIndex(objs, domain, opts)
	pprof.Do(context.Background(), pprof.Labels("engine", "uv3", "stage", "index"), func(context.Context) {
		i0 := time.Now()
		for i := range objs {
			ix.Insert(int32(i), crSets[i])
		}
		ix.Finish()
		stats.IndexDur = time.Since(i0)
	})
	stats.TotalDur = time.Since(t0)
	stats.Index = ix.Stats()
	return ix, stats, nil
}
