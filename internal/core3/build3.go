package core3

import (
	"fmt"
	"math"
	"sort"
	"time"

	"uvdiagram/internal/geom3"
	"uvdiagram/internal/uncertain3"
)

// seedCount is the number of nearest neighbors used to bound an
// object's possible region before I-pruning (the 3D analogue of the
// paper's ks = 8 sector seeds; more seeds compensate for the extra
// dimension).
const seedCount = 24

// nearestSeeds returns up to m object ids nearest to oi's center,
// found by expanding-ball search on the hash grid.
func nearestSeeds(grid *HashGrid3, oi uncertain3.Object3, objs []uncertain3.Object3, domain geom3.Box, m int) []int32 {
	if grid == nil {
		return nil
	}
	radius := math.Cbrt(domain.Volume()*float64(m)/float64(len(objs)+1)) + oi.Region.R
	maxRadius := domain.MaxDist(oi.Region.C)
	var ids []int32
	for {
		ids = ids[:0]
		for _, id := range grid.CenterRange(geom3.Sphere{C: oi.Region.C, R: radius}) {
			if id != oi.ID {
				ids = append(ids, id)
			}
		}
		if len(ids) >= m || radius >= maxRadius {
			break
		}
		radius *= 2
	}
	sort.Slice(ids, func(a, b int) bool {
		return objs[ids[a]].Region.C.DistSq(oi.Region.C) < objs[ids[b]].Region.C.DistSq(oi.Region.C)
	})
	if len(ids) > m {
		ids = ids[:m]
	}
	return ids
}

// DeriveCR3 derives the cr-objects of Oi's 3D UV-cell: a seed phase
// bounds the possible region with the nearest neighbors, then the
// I-pruning filter iterates to a fixpoint. Lemma 2's proof is
// dimension-free: if cj lies outside Ball(ci, 2d − ri), where d bounds
// the possible region's maximum distance from ci, then Oj's outside
// region cannot intersect the region — and since a region built from
// fewer constraints is a superset, the seed region's radius is a valid
// d for the first round.
func DeriveCR3(grid *HashGrid3, oi uncertain3.Object3, objs []uncertain3.Object3, domain geom3.Box, dirs []geom3.Point3) ([]int32, *PossibleRegion3) {
	pr := NewPossibleRegion3(oi.Region.C, domain)
	for _, id := range nearestSeeds(grid, oi, objs, domain, seedCount) {
		pr.AddObject(oi, objs[id])
	}
	d := pr.MaxRadius(dirs)
	if dd := domain.MaxDist(oi.Region.C); dd < d {
		d = dd // region ⊆ domain: the corner distance is always valid
	}
	var ids []int32
	for iter := 0; iter < 6; iter++ {
		radius := 2*d - oi.Region.R
		if radius <= 0 {
			radius = d
		}
		var cands []int32
		if grid != nil {
			for _, id := range grid.CenterRange(geom3.Sphere{C: oi.Region.C, R: radius}) {
				if id != oi.ID {
					cands = append(cands, id)
				}
			}
		} else {
			for j := range objs {
				if objs[j].ID != oi.ID && objs[j].Region.C.Dist(oi.Region.C) <= radius {
					cands = append(cands, objs[j].ID)
				}
			}
		}
		pr = NewPossibleRegion3(oi.Region.C, domain)
		for _, j := range cands {
			pr.AddObject(oi, objs[j])
		}
		ids = cands
		d2 := pr.MaxRadius(dirs)
		if d2 >= d*(1-1e-9) {
			break
		}
		d = d2
	}
	return ids, pr
}

// BuildStats3 records 3D construction cost.
type BuildStats3 struct {
	N        int
	PruneDur time.Duration
	IndexDur time.Duration
	TotalDur time.Duration
	SumCR    int64
	Index    IndexStats3
}

// AvgCR returns the mean cr-object count per object.
func (s BuildStats3) AvgCR() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.SumCR) / float64(s.N)
}

// PruneRatio returns the average fraction of the dataset pruned away
// before indexing.
func (s BuildStats3) PruneRatio() float64 {
	if s.N <= 1 {
		return 0
	}
	return 1 - s.AvgCR()/float64(s.N-1)
}

// Build3 constructs the 3D UV-index over the objects: derive each
// object's cr-set through the hash-grid substrate, insert into the
// octree, seal. Objects must carry dense IDs 0..n−1.
func Build3(objs []uncertain3.Object3, domain geom3.Box, opts Options3) (*OctIndex, BuildStats3, error) {
	if len(objs) == 0 {
		return nil, BuildStats3{}, fmt.Errorf("core3: no objects to index")
	}
	for i := range objs {
		if int(objs[i].ID) != i {
			return nil, BuildStats3{}, fmt.Errorf("core3: object %d has ID %d, want dense IDs", i, objs[i].ID)
		}
		if !domain.Contains(objs[i].Region.C) {
			return nil, BuildStats3{}, fmt.Errorf("core3: object %d center %v outside domain %v", i, objs[i].Region.C, domain)
		}
	}
	opts.normalize()
	stats := BuildStats3{N: len(objs)}
	t0 := time.Now()

	grid := NewHashGrid3(objs, domain, 0)
	dirs := geom3.FibonacciSphere(opts.Dirs)
	ix := NewOctIndex(objs, domain, opts)

	for i := range objs {
		p0 := time.Now()
		ids, _ := DeriveCR3(grid, objs[i], objs, domain, dirs)
		stats.PruneDur += time.Since(p0)
		stats.SumCR += int64(len(ids))

		i0 := time.Now()
		ix.Insert(int32(i), ids)
		stats.IndexDur += time.Since(i0)
	}
	i1 := time.Now()
	ix.Finish()
	stats.IndexDur += time.Since(i1)
	stats.TotalDur = time.Since(t0)
	stats.Index = ix.Stats()
	return ix, stats, nil
}
