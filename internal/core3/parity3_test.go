package core3

// Property tests gating the 3D fast path on bitwise equivalence with
// the retained reference loops (reference3.go): identical cr-sets,
// identical octree stats and identical PNN answers — probabilities
// included, since identical candidate lists integrate identically —
// for every worker count and data distribution. These run under -race
// in CI; the uvbench parity experiment repeats the comparison at
// acceptance scale.

import (
	"errors"
	"math/rand"
	"testing"

	"uvdiagram/internal/geom3"
	"uvdiagram/internal/uncertain3"
)

// skewedObjs3 clusters centers around a corner-offset hot spot (clamped
// into the domain), the 3D counterpart of datagen.Skewed.
func skewedObjs3(n int, side, maxR float64, seed int64) []uncertain3.Object3 {
	rng := rand.New(rand.NewSource(seed))
	clamp := func(v, r float64) float64 {
		if v < r {
			return r
		}
		if v > side-r {
			return side - r
		}
		return v
	}
	objs := make([]uncertain3.Object3, n)
	for i := range objs {
		r := 1 + rng.Float64()*maxR
		c := geom3.P3(
			clamp(side/4+rng.NormFloat64()*side/10, r),
			clamp(side/4+rng.NormFloat64()*side/10, r),
			clamp(side/2+rng.NormFloat64()*side/10, r),
		)
		objs[i] = uncertain3.New3(int32(i), geom3.Sphere{C: c, R: r}, uncertain3.PaperGaussian3())
	}
	return objs
}

func TestBuild3Parity(t *testing.T) {
	const side = 150
	domain := geom3.Cube(side)
	datasets := map[string][]uncertain3.Object3{
		"uniform": randObjs3(150, side, 2, 21),
		"skewed":  skewedObjs3(150, side, 2, 22),
	}
	for name, objs := range datasets {
		opts := DefaultOptions3()
		opts.Dirs = 192 // same lattice on both paths; keeps -race runs fast
		refIx, refStats, err := Build3Reference(objs, domain, opts)
		if err != nil {
			t.Fatalf("%s: reference: %v", name, err)
		}
		rng := rand.New(rand.NewSource(23))
		queries := make([]geom3.Point3, 12)
		for i := range queries {
			queries[i] = geom3.P3(rng.Float64()*side, rng.Float64()*side, rng.Float64()*side)
		}
		refAns := make([][]Answer3, len(queries))
		for i, q := range queries {
			if refAns[i], _, err = refIx.PNN(q); err != nil {
				t.Fatal(err)
			}
		}
		for _, workers := range []int{1, 2, 4, 8} {
			wopts := opts
			wopts.Workers = workers
			ix, stats, err := Build3(objs, domain, wopts)
			if err != nil {
				t.Fatalf("%s W=%d: %v", name, workers, err)
			}
			if stats.SumCR != refStats.SumCR {
				t.Fatalf("%s W=%d: SumCR %d, reference %d", name, workers, stats.SumCR, refStats.SumCR)
			}
			if stats.Index != refStats.Index {
				t.Fatalf("%s W=%d: index stats %+v, reference %+v", name, workers, stats.Index, refStats.Index)
			}
			for id := int32(0); int(id) < len(objs); id++ {
				got, want := ix.CRObjects(id), refIx.CRObjects(id)
				if len(got) != len(want) {
					t.Fatalf("%s W=%d id=%d: cr-set %v, reference %v", name, workers, id, got, want)
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("%s W=%d id=%d: cr-set %v, reference %v", name, workers, id, got, want)
					}
				}
			}
			for i, q := range queries {
				got, _, err := ix.PNN(q)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(refAns[i]) {
					t.Fatalf("%s W=%d q=%v: answers %v, reference %v", name, workers, q, got, refAns[i])
				}
				for j := range got {
					if got[j] != refAns[i][j] {
						t.Fatalf("%s W=%d q=%v: answers %v, reference %v", name, workers, q, got, refAns[i])
					}
				}
			}
		}
	}
}

// TestDeriveCR3MatchesReference pins the single-object derivation to
// the reference with one long-lived scratch (steady-state reuse).
func TestDeriveCR3MatchesReference(t *testing.T) {
	objs := randObjs3(120, 120, 2, 24)
	domain := geom3.Cube(120)
	grid := NewHashGrid3(objs, domain, 0)
	dirs := geom3.FibonacciSphere(192)
	sc := NewDeriveScratch3()
	for i := range objs {
		ids, pr := DeriveCR3(grid, objs[i], objs, domain, dirs, sc)
		refIDs, refPr := DeriveCR3Reference(grid, objs[i], objs, domain, dirs)
		if len(ids) != len(refIDs) {
			t.Fatalf("obj=%d: ids %v, reference %v", i, ids, refIDs)
		}
		for j := range ids {
			if ids[j] != refIDs[j] {
				t.Fatalf("obj=%d: ids %v, reference %v", i, ids, refIDs)
			}
		}
		if got, want := pr.MaxRadius(dirs), refPr.MaxRadius(dirs); got != want {
			t.Fatalf("obj=%d: region max radius %v, reference %v", i, got, want)
		}
	}
}

func TestBuild3TypedErrors(t *testing.T) {
	objs := randObjs3(3, 10, 1, 25)
	objs[1].ID = 7
	if _, _, err := Build3(objs, geom3.Cube(10), DefaultOptions3()); !errors.Is(err, ErrSparseIDs) {
		t.Fatalf("non-dense IDs: err = %v, want errors.Is ErrSparseIDs", err)
	}
	objs = randObjs3(3, 10, 1, 26)
	objs[2].Region.C = geom3.P3(100, 100, 100)
	if _, _, err := Build3(objs, geom3.Cube(10), DefaultOptions3()); !errors.Is(err, ErrOutOfDomain3) {
		t.Fatalf("out-of-domain center: err = %v, want errors.Is ErrOutOfDomain3", err)
	}
	if _, _, err := Build3(objs, geom3.Cube(10), DefaultOptions3()); errors.Is(err, ErrSparseIDs) {
		t.Fatal("out-of-domain center misreported as ErrSparseIDs")
	}
}
