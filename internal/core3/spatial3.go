package core3

import (
	"math"
	"slices"

	"uvdiagram/internal/geom3"
	"uvdiagram/internal/uncertain3"
)

// HashGrid3 is the light spatial substrate of the 3D build: a uniform
// hash grid over object centers supporting the circular (spherical)
// center-range queries of I-pruning. It plays the role the R-tree plays
// in 2D; a 3D R-tree would work identically, but the uniform grid is
// the simplest structure that makes candidate collection sub-quadratic.
type HashGrid3 struct {
	origin geom3.Point3
	cell   float64
	cells  map[[3]int32][]int32
	objs   []uncertain3.Object3
}

// NewHashGrid3 indexes the object centers with the given cell size
// (≤ 0 picks a size targeting a few objects per cell).
func NewHashGrid3(objs []uncertain3.Object3, domain geom3.Box, cell float64) *HashGrid3 {
	if cell <= 0 {
		n := len(objs)
		if n < 1 {
			n = 1
		}
		// ~2 objects per occupied cell for uniform data.
		cell = math.Cbrt(domain.Volume() * 2 / float64(n))
		if cell <= 0 {
			cell = 1
		}
	}
	g := &HashGrid3{
		origin: domain.Min,
		cell:   cell,
		cells:  make(map[[3]int32][]int32),
		objs:   objs,
	}
	for i := range objs {
		k := g.key(objs[i].Region.C)
		g.cells[k] = append(g.cells[k], int32(i))
	}
	return g
}

func (g *HashGrid3) key(p geom3.Point3) [3]int32 {
	return [3]int32{
		int32(math.Floor((p.X - g.origin.X) / g.cell)),
		int32(math.Floor((p.Y - g.origin.Y) / g.cell)),
		int32(math.Floor((p.Z - g.origin.Z) / g.cell)),
	}
}

// CenterRange returns the IDs of the objects whose centers lie within
// the ball, sorted ascending.
func (g *HashGrid3) CenterRange(ball geom3.Sphere) []int32 {
	return g.CenterRangeInto(ball, nil)
}

// CenterRangeInto is CenterRange appending into the caller's buffer
// (reset to length 0 first), so derivation workers pool the candidate
// storage. The ids are unique, so the ascending result is canonical —
// identical to CenterRange's. The grid itself is read-only after
// construction and safe for concurrent CenterRangeInto calls with
// distinct buffers.
func (g *HashGrid3) CenterRangeInto(ball geom3.Sphere, out []int32) []int32 {
	out = out[:0]
	lo := g.key(ball.C.Sub(geom3.P3(ball.R, ball.R, ball.R)))
	hi := g.key(ball.C.Add(geom3.P3(ball.R, ball.R, ball.R)))
	for x := lo[0]; x <= hi[0]; x++ {
		for y := lo[1]; y <= hi[1]; y++ {
			for z := lo[2]; z <= hi[2]; z++ {
				for _, id := range g.cells[[3]int32{x, y, z}] {
					if ball.Contains(g.objs[id].Region.C) {
						out = append(out, id)
					}
				}
			}
		}
	}
	slices.Sort(out)
	return out
}

// Len returns the number of indexed objects.
func (g *HashGrid3) Len() int { return len(g.objs) }
