package core3

import (
	"fmt"
	"math"
	"sort"
	"time"

	"uvdiagram/internal/geom3"
	"uvdiagram/internal/pager"
	"uvdiagram/internal/prob3"
	"uvdiagram/internal/uncertain3"
)

// Options3 configure the 3D build and octree index.
type Options3 struct {
	// M is the maximum number of non-leaf octree nodes (paper's M,
	// default 4000).
	M int
	// SplitTheta is the split threshold Tθ of Equation 10, applied to
	// the minimum of the eight children (default 1).
	SplitTheta float64
	// PageSize is the simulated disk page size (default 4 KB).
	PageSize int
	// MaxDepth bounds the octree depth (default 18).
	MaxDepth int
	// Dirs is the size of the Fibonacci direction lattice used for
	// radial bounds (default 1024).
	Dirs int
	// ProbSteps is the resolution of query-time probability integration
	// (default prob3.DefaultSteps).
	ProbSteps int
	// Workers parallelizes the per-object derivation phase of Build3
	// across goroutines; results are identical to a sequential build.
	// 0 or 1 means sequential.
	Workers int
}

// DefaultOptions3 mirrors the paper's 2D configuration.
func DefaultOptions3() Options3 {
	return Options3{M: 4000, SplitTheta: 1.0, PageSize: pager.DefaultPageSize, MaxDepth: 18, Dirs: 1024}
}

func (o *Options3) normalize() {
	if o.M <= 0 {
		o.M = 4000
	}
	if o.SplitTheta <= 0 {
		o.SplitTheta = 1.0
	}
	if o.PageSize <= 0 {
		o.PageSize = pager.DefaultPageSize
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 18
	}
	if o.Dirs <= 0 {
		o.Dirs = 1024
	}
	if o.ProbSteps <= 0 {
		o.ProbSteps = prob3.DefaultSteps
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
}

// onode is one octree node.
type onode struct {
	children   *[8]*onode
	ids        []int32
	pagesAlloc int
	pages      []pager.PageID
}

func (n *onode) isLeaf() bool { return n.children == nil }

// OctIndex is the 3D UV-index: an adaptive octree whose leaves list
// every object whose 3D UV-cell (represented by cr-object ids) overlaps
// the leaf box, decided by the 8-corner test.
type OctIndex struct {
	domain     geom3.Box
	opts       Options3
	pg         *pager.Pager
	objs       []uncertain3.Object3
	crOf       [][]int32
	root       *onode
	nonleaf    int
	capPerPage int
	finished   bool
}

// NewOctIndex prepares an empty octree over the objects.
func NewOctIndex(objs []uncertain3.Object3, domain geom3.Box, opts Options3) *OctIndex {
	opts.normalize()
	return &OctIndex{
		domain:     domain,
		opts:       opts,
		pg:         pager.New(opts.PageSize),
		objs:       objs,
		crOf:       make([][]int32, len(objs)),
		root:       &onode{pagesAlloc: 1},
		capPerPage: pager.TuplesPerPage3(opts.PageSize),
	}
}

// Domain returns the indexed domain.
func (ix *OctIndex) Domain() geom3.Box { return ix.domain }

// Pager exposes the simulated disk for I/O accounting.
func (ix *OctIndex) Pager() *pager.Pager { return ix.pg }

// CRObjects returns object id's cr-object ids (shared slice).
func (ix *OctIndex) CRObjects(id int32) []int32 { return ix.crOf[id] }

// overlapsIDs3 is the 3D lift of Algorithm 5: the box is certainly
// disjoint from Oi's cell once a single outside region contains all
// eight corners (outside regions are convex in 3D too). Spurious
// overlaps are possible, missed overlaps are not.
func (ix *OctIndex) overlapsIDs3(oi uncertain3.Object3, crIDs []int32, b geom3.Box) bool {
	ci, ri := oi.Region.C, oi.Region.R
	corners := b.Corners()
	for _, j := range crIDs {
		oj := ix.objs[j].Region
		s := ri + oj.R
		if ci.Dist(oj.C) <= s {
			continue
		}
		excluded := true
		for _, p := range corners {
			if p.Dist(ci)-p.Dist(oj.C) <= s {
				excluded = false
				break
			}
		}
		if excluded {
			return false
		}
	}
	return true
}

// Insert adds object id, represented by its cr-object ids (Algorithm 3
// with eight children).
func (ix *OctIndex) Insert(id int32, crIDs []int32) {
	if ix.finished {
		panic("core3: Insert after Finish")
	}
	ix.crOf[id] = crIDs
	ix.insertObj(id, ix.objs[id], crIDs, ix.root, ix.domain, 0)
}

func (ix *OctIndex) insertObj(id int32, oi uncertain3.Object3, crIDs []int32, g *onode, region geom3.Box, depth int) {
	if !ix.overlapsIDs3(oi, crIDs, region) {
		return
	}
	if !g.isLeaf() {
		for k := 0; k < 8; k++ {
			ix.insertObj(id, oi, crIDs, g.children[k], region.Octant(k), depth+1)
		}
		return
	}
	state, kids := ix.checkSplit(id, oi, g, region, depth)
	switch state {
	case stateNormal3:
		g.ids = append(g.ids, id)
	case stateOverflow3:
		if len(g.ids) >= g.pagesAlloc*ix.capPerPage {
			g.pagesAlloc++
		}
		g.ids = append(g.ids, id)
	case stateSplit3:
		g.ids = nil
		g.pages = nil
		g.pagesAlloc = 0
		g.children = kids
		ix.nonleaf++
	}
}

type splitState3 int

const (
	stateNormal3 splitState3 = iota
	stateOverflow3
	stateSplit3
)

func (ix *OctIndex) checkSplit(id int32, oi uncertain3.Object3, g *onode, region geom3.Box, depth int) (splitState3, *[8]*onode) {
	if len(g.ids) < g.pagesAlloc*ix.capPerPage {
		return stateNormal3, nil
	}
	if ix.nonleaf+1 > ix.opts.M || depth >= ix.opts.MaxDepth {
		return stateOverflow3, nil
	}
	var kids [8]*onode
	minCount := -1
	for k := 0; k < 8; k++ {
		child := &onode{pagesAlloc: 1}
		sub := region.Octant(k)
		if ix.overlapsIDs3(oi, ix.crOf[id], sub) {
			child.ids = append(child.ids, id)
		}
		for _, j := range g.ids {
			if ix.overlapsIDs3(ix.objs[j], ix.crOf[j], sub) {
				child.ids = append(child.ids, j)
			}
		}
		if need := (len(child.ids) + ix.capPerPage - 1) / ix.capPerPage; need > 1 {
			child.pagesAlloc = need
		}
		kids[k] = child
		if minCount < 0 || len(child.ids) < minCount {
			minCount = len(child.ids)
		}
	}
	theta := float64(minCount) / float64(len(g.ids))
	if theta < ix.opts.SplitTheta {
		return stateSplit3, &kids
	}
	return stateOverflow3, nil
}

// Finish seals the index: leaf lists are serialized into pages.
func (ix *OctIndex) Finish() {
	if ix.finished {
		return
	}
	var walk func(n *onode)
	walk = func(n *onode) {
		if !n.isLeaf() {
			for _, c := range n.children {
				walk(c)
			}
			return
		}
		n.pages = ix.writeLeafPages(n.ids)
	}
	walk(ix.root)
	ix.finished = true
}

func (ix *OctIndex) writeLeafPages(ids []int32) []pager.PageID {
	tuples := make([]pager.LeafTuple3, len(ids))
	for i, id := range ids {
		o := ix.objs[id]
		tuples[i] = pager.LeafTuple3{
			ID: id,
			CX: o.Region.C.X, CY: o.Region.C.Y, CZ: o.Region.C.Z,
			R: o.Region.R,
		}
	}
	var pages []pager.PageID
	for off := 0; ; off += ix.capPerPage {
		end := off + ix.capPerPage
		if end > len(tuples) {
			end = len(tuples)
		}
		var chunk []pager.LeafTuple3
		if off < len(tuples) {
			chunk = tuples[off:end]
		}
		pages = append(pages, ix.pg.Alloc(pager.EncodeLeafTuples3(chunk)))
		if end >= len(tuples) {
			break
		}
	}
	return pages
}

// Answer3 is one 3D PNN result.
type Answer3 struct {
	ID   int32
	Prob float64
}

// QueryStats3 instruments a 3D query.
type QueryStats3 struct {
	IndexIOs    int64
	TraverseDur time.Duration
	ProbDur     time.Duration
	LeafEntries int
	Candidates  int
	Depth       int
}

// PNN answers the 3D probabilistic nearest-neighbor query at q: point
// descent to the leaf, dminmax filter, probability integration.
func (ix *OctIndex) PNN(q geom3.Point3) ([]Answer3, QueryStats3, error) {
	var st QueryStats3
	if !ix.finished {
		return nil, st, fmt.Errorf("core3: PNN before Finish")
	}
	if !ix.domain.Contains(q) {
		return nil, st, fmt.Errorf("core3: query point %v outside domain %v", q, ix.domain)
	}

	t0 := time.Now()
	n, region := ix.root, ix.domain
	for !n.isLeaf() {
		k := region.OctantFor(q)
		n = n.children[k]
		region = region.Octant(k)
		st.Depth++
	}
	var tuples []pager.LeafTuple3
	for _, pid := range n.pages {
		ts, err := pager.DecodeLeafTuples3(ix.pg.Read(pid))
		if err != nil {
			return nil, st, fmt.Errorf("core3: leaf page %d: %w", pid, err)
		}
		tuples = append(tuples, ts...)
		st.IndexIOs++
	}
	st.LeafEntries = len(tuples)

	dminmax := math.Inf(1)
	for _, t := range tuples {
		if d := q.Dist(geom3.P3(t.CX, t.CY, t.CZ)) + t.R; d < dminmax {
			dminmax = d
		}
	}
	var cands []uncertain3.Object3
	for _, t := range tuples {
		dmin := q.Dist(geom3.P3(t.CX, t.CY, t.CZ)) - t.R
		if dmin < 0 {
			dmin = 0
		}
		if dmin <= dminmax {
			cands = append(cands, ix.objs[t.ID])
		}
	}
	st.Candidates = len(cands)
	st.TraverseDur = time.Since(t0)

	t1 := time.Now()
	ps := prob3.Probs3(cands, q, ix.opts.ProbSteps)
	var answers []Answer3
	for i, p := range ps {
		if p > 0 {
			answers = append(answers, Answer3{ID: cands[i].ID, Prob: p})
		}
	}
	sort.Slice(answers, func(i, j int) bool { return answers[i].ID < answers[j].ID })
	st.ProbDur = time.Since(t1)
	return answers, st, nil
}

// IndexStats3 summarize the octree shape.
type IndexStats3 struct {
	NonLeaf    int
	Leaves     int
	Pages      int
	MaxDepth   int
	Entries    int64
	AvgEntries float64
}

// Stats walks the octree and reports its shape.
func (ix *OctIndex) Stats() IndexStats3 {
	var st IndexStats3
	st.NonLeaf = ix.nonleaf
	var walk func(n *onode, depth int)
	walk = func(n *onode, depth int) {
		if depth > st.MaxDepth {
			st.MaxDepth = depth
		}
		if n.isLeaf() {
			st.Leaves++
			st.Pages += len(n.pages)
			st.Entries += int64(len(n.ids))
			return
		}
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	walk(ix.root, 0)
	if st.Leaves > 0 {
		st.AvgEntries = float64(st.Entries) / float64(st.Leaves)
	}
	return st
}
