// Package core3 lifts the UV-diagram to three dimensions — the
// multi-dimensional extension the paper's conclusion lists as future
// work. Objects are uncertain balls; UV-edges become hyperboloid
// sheets; the adaptive quad-tree becomes an adaptive octree whose
// 4-point overlap test becomes an 8-corner test (the outside regions
// stay convex in every dimension); possible regions remain star-shaped
// around the object center, so the radial representation carries over
// with directions sampled from a Fibonacci sphere lattice instead of a
// uniform angular sweep.
package core3

import (
	"math"

	"uvdiagram/internal/geom3"
	"uvdiagram/internal/uncertain3"
)

// Constraint3 is the outside region of one 3D UV-edge, tagged with the
// reference object's identity.
type Constraint3 struct {
	Obj  int32
	Edge geom3.UVEdge3
}

// NewConstraint3 builds the constraint Oi gains from Oj; ok is false
// when the two balls overlap (no edge, empty outside region).
func NewConstraint3(oi, oj uncertain3.Object3) (Constraint3, bool) {
	e := geom3.NewUVEdge3(oi.Region, oj.Region)
	if !e.Exists() {
		return Constraint3{}, false
	}
	return Constraint3{Obj: oj.ID, Edge: e}, true
}

// ExcludesBox reports whether the whole box lies inside the outside
// region, by the 8-corner test: the outside region is convex, so
// containment of all corners implies containment of the box.
func (c Constraint3) ExcludesBox(b geom3.Box) bool {
	for _, p := range b.Corners() {
		if !c.Edge.InOutside(p) {
			return false
		}
	}
	return true
}

// PossibleRegion3 is a region covering an object's 3D UV-cell,
// represented radially around the object center (star-shaped by the
// same triangle-inequality argument as in 2D).
type PossibleRegion3 struct {
	center geom3.Point3
	domain geom3.Box
	cons   []Constraint3
	prof   profile3
}

// profile3 caches the region's radial extent over one direction
// lattice: radius[i] is the fold of the domain exit and the first
// `applied` constraints along dirs[i]. Constraints only ever shrink the
// radius, so appending constraints needs just the suffix cons[applied:]
// folded in — and the buffer is retained across Reset, so a derivation
// worker's whole object stream shares one lattice-sized allocation.
type profile3 struct {
	dirs    []geom3.Point3 // lattice identity (length + base pointer)
	applied int            // cons[:applied] are folded into radius
	radius  []float64
}

// NewPossibleRegion3 starts the region as the whole domain.
func NewPossibleRegion3(center geom3.Point3, domain geom3.Box) *PossibleRegion3 {
	return &PossibleRegion3{center: center, domain: domain}
}

// Reset re-centers the region and drops every constraint while keeping
// the constraint and profile storage for reuse — the steady-state entry
// point of the derivation fast path.
func (p *PossibleRegion3) Reset(center geom3.Point3, domain geom3.Box) {
	p.center = center
	p.domain = domain
	p.cons = p.cons[:0]
	p.prof.dirs = nil
	p.prof.applied = 0
}

// Center returns the star center.
func (p *PossibleRegion3) Center() geom3.Point3 { return p.center }

// Domain returns the domain box.
func (p *PossibleRegion3) Domain() geom3.Box { return p.domain }

// Constraints returns the constraints added so far (shared slice).
func (p *PossibleRegion3) Constraints() []Constraint3 { return p.cons }

// AddObject shrinks the region by Oj's outside region; reports whether
// a constraint was added.
func (p *PossibleRegion3) AddObject(oi, oj uncertain3.Object3) bool {
	c, ok := NewConstraint3(oi, oj)
	if ok {
		p.cons = append(p.cons, c)
	}
	return ok
}

// RadiusDir returns the exact extent of the region along the unit
// direction dir.
func (p *PossibleRegion3) RadiusDir(dir geom3.Point3) float64 {
	r := p.domain.RayExit(p.center, dir)
	for i := range p.cons {
		if t, ok := p.cons[i].Edge.RadialBound(dir); ok && t < r {
			r = t
		}
	}
	return r
}

// Contains reports whether q belongs to the region: inside the domain
// and outside every constraint's outside region.
func (p *PossibleRegion3) Contains(q geom3.Point3) bool {
	if !p.domain.Contains(q) {
		return false
	}
	for i := range p.cons {
		if p.cons[i].Edge.InOutside(q) {
			return false
		}
	}
	return true
}

// MaxRadius returns an upper bound on the maximum distance of the
// region from the center, sampled over the direction lattice and
// inflated by a safety factor that accounts for the lattice's angular
// resolution (an overestimate only weakens pruning, never its
// correctness; the inflation is validated against brute force in
// tests).
func (p *PossibleRegion3) MaxRadius(dirs []geom3.Point3) float64 {
	d := 0.0
	for _, u := range dirs {
		if r := p.RadiusDir(u); r > d {
			d = r
		}
	}
	// Lattice resolution: mean angular spacing ~ sqrt(4π/n); the radial
	// function of a convex-complement region can overshoot a sample by
	// a factor ~ 1/cos(spacing).
	n := len(dirs)
	if n < 1 {
		n = 1
	}
	spacing := math.Sqrt(4 * math.Pi / float64(n))
	return d * (1 + 2*spacing*spacing)
}

// maxRadiusProfiled is MaxRadius through the region's reusable radius
// profile: the per-direction fold lives in a retained buffer and only
// constraints added since the last call are folded in. The per-
// direction values run RadiusDir's exact comparisons in the same order
// and the max/inflation arithmetic is MaxRadius's, so the result is
// bitwise identical to MaxRadius(dirs).
func (p *PossibleRegion3) maxRadiusProfiled(dirs []geom3.Point3) float64 {
	pr := &p.prof
	same := len(pr.dirs) == len(dirs) &&
		(len(dirs) == 0 || &pr.dirs[0] == &dirs[0])
	if !same {
		pr.dirs = dirs
		pr.applied = 0
		if cap(pr.radius) < len(dirs) {
			pr.radius = make([]float64, len(dirs))
		}
		pr.radius = pr.radius[:len(dirs)]
		for i, u := range dirs {
			pr.radius[i] = p.domain.RayExit(p.center, u)
		}
	}
	for ; pr.applied < len(p.cons); pr.applied++ {
		c := &p.cons[pr.applied]
		for i, u := range dirs {
			if t, ok := c.Edge.RadialBound(u); ok && t < pr.radius[i] {
				pr.radius[i] = t
			}
		}
	}
	d := 0.0
	for _, r := range pr.radius {
		if r > d {
			d = r
		}
	}
	n := len(dirs)
	if n < 1 {
		n = 1
	}
	spacing := math.Sqrt(4 * math.Pi / float64(n))
	return d * (1 + 2*spacing*spacing)
}

// Volume approximates the region volume by the radial quadrature
// (1/3)·Σ R(u)³·(4π/n) over the direction lattice.
func (p *PossibleRegion3) Volume(dirs []geom3.Point3) float64 {
	acc := 0.0
	for _, u := range dirs {
		r := p.RadiusDir(u)
		acc += r * r * r
	}
	return acc * 4 * math.Pi / (3 * float64(len(dirs)))
}
