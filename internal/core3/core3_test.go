package core3

import (
	"math"
	"math/rand"
	"testing"

	"uvdiagram/internal/geom3"
	"uvdiagram/internal/prob3"
	"uvdiagram/internal/uncertain3"
)

func randObjs3(n int, side, maxR float64, seed int64) []uncertain3.Object3 {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]uncertain3.Object3, n)
	for i := range objs {
		r := 1 + rng.Float64()*maxR
		c := geom3.P3(
			r+rng.Float64()*(side-2*r),
			r+rng.Float64()*(side-2*r),
			r+rng.Float64()*(side-2*r),
		)
		objs[i] = uncertain3.New3(int32(i), geom3.Sphere{C: c, R: r}, uncertain3.PaperGaussian3())
	}
	return objs
}

func TestHashGridCenterRangeMatchesScan(t *testing.T) {
	objs := randObjs3(200, 100, 3, 1)
	domain := geom3.Cube(100)
	grid := NewHashGrid3(objs, domain, 0)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		ball := geom3.Sphere{
			C: geom3.P3(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100),
			R: rng.Float64() * 40,
		}
		got := grid.CenterRange(ball)
		var want []int32
		for i := range objs {
			if ball.Contains(objs[i].Region.C) {
				want = append(want, int32(i))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: grid %v vs scan %v", trial, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: grid %v vs scan %v", trial, got, want)
			}
		}
	}
}

func TestRegion3RadialAgreesWithContains(t *testing.T) {
	objs := randObjs3(30, 100, 4, 3)
	domain := geom3.Cube(100)
	pr := NewPossibleRegion3(objs[0].Region.C, domain)
	for j := 1; j < len(objs); j++ {
		pr.AddObject(objs[0], objs[j])
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		u := geom3.P3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Unit()
		r := pr.RadiusDir(u)
		if r <= 0.5 {
			continue
		}
		inside := pr.Center().Add(u.Scale(r * 0.99))
		if domain.Contains(inside) && !pr.Contains(inside) {
			t.Fatalf("point at 0.99·R not contained (dir %v, R %v)", u, r)
		}
		outside := pr.Center().Add(u.Scale(r * 1.01))
		if domain.Contains(outside) && pr.Contains(outside) {
			t.Fatalf("point at 1.01·R contained (dir %v, R %v)", u, r)
		}
	}
}

func TestRegion3StarShaped(t *testing.T) {
	// If x is in the region, every point on the segment [center, x]
	// must be too (the property the radial representation relies on).
	objs := randObjs3(25, 80, 4, 5)
	domain := geom3.Cube(80)
	pr := NewPossibleRegion3(objs[3].Region.C, domain)
	for j := range objs {
		if j != 3 {
			pr.AddObject(objs[3], objs[j])
		}
	}
	rng := rand.New(rand.NewSource(6))
	checked := 0
	for trial := 0; trial < 3000 && checked < 300; trial++ {
		x := geom3.P3(rng.Float64()*80, rng.Float64()*80, rng.Float64()*80)
		if !pr.Contains(x) {
			continue
		}
		checked++
		for _, f := range []float64{0.2, 0.5, 0.8} {
			m := geom3.Lerp3(pr.Center(), x, f)
			if !pr.Contains(m) {
				t.Fatalf("segment point %v outside region (endpoint %v)", m, x)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no interior points found")
	}
}

func TestDeriveCR3PreservesMembership(t *testing.T) {
	objs := randObjs3(120, 100, 3, 7)
	domain := geom3.Cube(100)
	grid := NewHashGrid3(objs, domain, 0)
	dirs := geom3.FibonacciSphere(512)
	rng := rand.New(rand.NewSource(8))
	for _, i := range []int{0, 17, 63, 99} {
		_, derived := DeriveCR3(grid, objs[i], objs, domain, dirs, nil)
		full := NewPossibleRegion3(objs[i].Region.C, domain)
		for j := range objs {
			if j != i {
				full.AddObject(objs[i], objs[j])
			}
		}
		d := derived.MaxRadius(dirs)
		for trial := 0; trial < 300; trial++ {
			u := geom3.P3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Unit()
			p := objs[i].Region.C.Add(u.Scale(rng.Float64() * d * 1.2))
			if !domain.Contains(p) {
				continue
			}
			if got, want := derived.Contains(p), full.Contains(p); got != want {
				t.Fatalf("obj %d p=%v: derived=%v full=%v", i, p, got, want)
			}
		}
	}
}

func TestBuild3PNNMatchesBruteForce(t *testing.T) {
	objs := randObjs3(150, 100, 3, 9)
	domain := geom3.Cube(100)
	opts := DefaultOptions3()
	opts.PageSize = 512 // force splits at this scale
	ix, stats, err := Build3(objs, domain, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Index.Leaves < 8 {
		t.Fatalf("octree never split: %+v", stats.Index)
	}
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 60; trial++ {
		q := geom3.P3(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		answers, _, err := ix.PNN(q)
		if err != nil {
			t.Fatal(err)
		}
		want := prob3.AnswerSet3(objs, q)
		if len(answers) != len(want) {
			t.Fatalf("trial %d q=%v: index %d answers vs brute %d", trial, q, len(answers), len(want))
		}
		for i := range answers {
			if answers[i].ID != int32(want[i]) {
				t.Fatalf("trial %d: answer IDs differ: %v vs %v", trial, answers, want)
			}
			if answers[i].Prob <= 0 || answers[i].Prob > 1 {
				t.Fatalf("trial %d: probability %v out of range", trial, answers[i].Prob)
			}
		}
	}
}

func TestBuild3PointDegeneratesToVoronoi(t *testing.T) {
	// Radius-0 objects: the 3D UV-diagram is the ordinary 3D Voronoi
	// diagram; every query has exactly one answer, its nearest point.
	rng := rand.New(rand.NewSource(11))
	objs := make([]uncertain3.Object3, 60)
	for i := range objs {
		objs[i] = uncertain3.New3(int32(i), geom3.Sphere{
			C: geom3.P3(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100),
		}, nil)
	}
	ix, _, err := Build3(objs, geom3.Cube(100), DefaultOptions3())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		q := geom3.P3(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		answers, _, err := ix.PNN(q)
		if err != nil {
			t.Fatal(err)
		}
		best, arg := math.Inf(1), -1
		for i := range objs {
			if d := objs[i].Region.C.Dist(q); d < best {
				best, arg = d, i
			}
		}
		if len(answers) != 1 || answers[0].ID != int32(arg) {
			t.Fatalf("trial %d: answers %v, want exactly object %d", trial, answers, arg)
		}
		if math.Abs(answers[0].Prob-1) > 1e-9 {
			t.Fatalf("trial %d: Voronoi probability %v", trial, answers[0].Prob)
		}
	}
}

func TestBuild3Validation(t *testing.T) {
	if _, _, err := Build3(nil, geom3.Cube(10), DefaultOptions3()); err == nil {
		t.Fatal("empty build accepted")
	}
	objs := randObjs3(3, 10, 1, 12)
	objs[1].ID = 7
	if _, _, err := Build3(objs, geom3.Cube(10), DefaultOptions3()); err == nil {
		t.Fatal("non-dense IDs accepted")
	}
	objs = randObjs3(3, 10, 1, 13)
	objs[2].Region.C = geom3.P3(100, 100, 100)
	if _, _, err := Build3(objs, geom3.Cube(10), DefaultOptions3()); err == nil {
		t.Fatal("out-of-domain center accepted")
	}
}

func TestBuild3PruningEffective(t *testing.T) {
	objs := randObjs3(400, 200, 2, 14)
	_, stats, err := Build3(objs, geom3.Cube(200), DefaultOptions3())
	if err != nil {
		t.Fatal(err)
	}
	if stats.PruneRatio() < 0.5 {
		t.Fatalf("3D pruning ratio %.2f, expected > 0.5 at this density", stats.PruneRatio())
	}
	t.Logf("3D pruning ratio %.1f%%, avg |CR| %.1f", 100*stats.PruneRatio(), stats.AvgCR())
}

func TestOctIndexQueryOutsideDomain(t *testing.T) {
	objs := randObjs3(10, 50, 2, 15)
	ix, _, err := Build3(objs, geom3.Cube(50), DefaultOptions3())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.PNN(geom3.P3(-1, 0, 0)); err == nil {
		t.Fatal("query outside domain accepted")
	}
}

func TestRegion3VolumeSanity(t *testing.T) {
	// A lone object's possible region is the whole domain.
	objs := randObjs3(1, 100, 3, 16)
	pr := NewPossibleRegion3(objs[0].Region.C, geom3.Cube(100))
	dirs := geom3.FibonacciSphere(4096)
	v := pr.Volume(dirs)
	if math.Abs(v-1e6) > 0.05e6 {
		t.Fatalf("lone-object region volume %v, want ≈ 1e6", v)
	}
}
