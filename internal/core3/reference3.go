package core3

// The pre-fast-path 3D build, retained VERBATIM as the equivalence
// oracle for the parallel, scratch-threaded path in build3.go. The
// fast path must produce bitwise-identical cr-sets, index stats and
// query answers; TestBuild3Parity sweeps worker counts against these
// loops.

import (
	"time"

	"uvdiagram/internal/geom3"
	"uvdiagram/internal/uncertain3"
)

// DeriveCR3Reference is the original allocating derivation of one
// object's 3D cr-set: a fresh PossibleRegion3 and candidate slice per
// fixpoint round, per-call center-range result slices. Kept as the
// oracle the scratch-threaded DeriveCR3 is compared against.
func DeriveCR3Reference(grid *HashGrid3, oi uncertain3.Object3, objs []uncertain3.Object3, domain geom3.Box, dirs []geom3.Point3) ([]int32, *PossibleRegion3) {
	pr := NewPossibleRegion3(oi.Region.C, domain)
	for _, id := range nearestSeeds(grid, oi, objs, domain, seedCount) {
		pr.AddObject(oi, objs[id])
	}
	d := pr.MaxRadius(dirs)
	if dd := domain.MaxDist(oi.Region.C); dd < d {
		d = dd // region ⊆ domain: the corner distance is always valid
	}
	var ids []int32
	for iter := 0; iter < 6; iter++ {
		radius := 2*d - oi.Region.R
		if radius <= 0 {
			radius = d
		}
		var cands []int32
		if grid != nil {
			for _, id := range grid.CenterRange(geom3.Sphere{C: oi.Region.C, R: radius}) {
				if id != oi.ID {
					cands = append(cands, id)
				}
			}
		} else {
			for j := range objs {
				if objs[j].ID != oi.ID && objs[j].Region.C.Dist(oi.Region.C) <= radius {
					cands = append(cands, objs[j].ID)
				}
			}
		}
		pr = NewPossibleRegion3(oi.Region.C, domain)
		for _, j := range cands {
			pr.AddObject(oi, objs[j])
		}
		ids = cands
		d2 := pr.MaxRadius(dirs)
		if d2 >= d*(1-1e-9) {
			break
		}
		d = d2
	}
	return ids, pr
}

// Build3Reference is the original single-threaded 3D build loop: derive
// and insert object by object, no worker pool, no scratch reuse.
// Retained verbatim as the fast path's equivalence oracle.
func Build3Reference(objs []uncertain3.Object3, domain geom3.Box, opts Options3) (*OctIndex, BuildStats3, error) {
	if err := validate3(objs, domain); err != nil {
		return nil, BuildStats3{}, err
	}
	opts.normalize()
	stats := BuildStats3{N: len(objs), Strategy: StrategyIC3}
	t0 := time.Now()

	grid := NewHashGrid3(objs, domain, 0)
	dirs := geom3.FibonacciSphere(opts.Dirs)
	ix := NewOctIndex(objs, domain, opts)

	for i := range objs {
		p0 := time.Now()
		ids, _ := DeriveCR3Reference(grid, objs[i], objs, domain, dirs)
		stats.PruneDur += time.Since(p0)
		stats.SumCR += int64(len(ids))

		i0 := time.Now()
		ix.Insert(int32(i), ids)
		stats.IndexDur += time.Since(i0)
	}
	i1 := time.Now()
	ix.Finish()
	stats.IndexDur += time.Since(i1)
	stats.TotalDur = time.Since(t0)
	stats.Index = ix.Stats()
	return ix, stats, nil
}
