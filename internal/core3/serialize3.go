package core3

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"uvdiagram/internal/geom3"
	"uvdiagram/internal/uncertain3"
)

// Octree persistence mirrors the 2D index serializer: header, per-object
// cr-id lists, then a preorder walk with a leaf/non-leaf tag per node
// (non-leaf nodes have exactly eight children). Leaf pages are
// re-materialized on load.

const (
	octMagic   = 0x55564f43 // "UVOC"
	octVersion = 1
)

type writer3 struct {
	w   *bufio.Writer
	err error
}

func (cw *writer3) u32(v uint32) {
	if cw.err != nil {
		return
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, cw.err = cw.w.Write(buf[:])
}

func (cw *writer3) f64(v float64) {
	if cw.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	_, cw.err = cw.w.Write(buf[:])
}

func (cw *writer3) ids(ids []int32) {
	cw.u32(uint32(len(ids)))
	for _, id := range ids {
		cw.u32(uint32(id))
	}
}

// Save serializes the finished octree structure to w.
func (ix *OctIndex) Save(w io.Writer) error {
	if !ix.finished {
		return fmt.Errorf("core3: Save before Finish")
	}
	bw := bufio.NewWriter(w)
	cw := &writer3{w: bw}
	cw.u32(octMagic)
	cw.u32(octVersion)
	for _, v := range []float64{
		ix.domain.Min.X, ix.domain.Min.Y, ix.domain.Min.Z,
		ix.domain.Max.X, ix.domain.Max.Y, ix.domain.Max.Z,
	} {
		cw.f64(v)
	}
	cw.u32(uint32(ix.opts.M))
	cw.f64(ix.opts.SplitTheta)
	cw.u32(uint32(ix.opts.PageSize))
	cw.u32(uint32(ix.opts.MaxDepth))
	cw.u32(uint32(ix.opts.Dirs))
	cw.u32(uint32(len(ix.crOf)))
	for _, cr := range ix.crOf {
		cw.ids(cr)
	}
	var walk func(n *onode)
	walk = func(n *onode) {
		if cw.err != nil {
			return
		}
		if n.isLeaf() {
			cw.u32(0)
			cw.ids(n.ids)
			return
		}
		cw.u32(1)
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(ix.root)
	if cw.err != nil {
		return fmt.Errorf("core3: saving octree: %w", cw.err)
	}
	return bw.Flush()
}

type reader3 struct {
	r   *bufio.Reader
	err error
}

func (rd *reader3) u32() uint32 {
	if rd.err != nil {
		return 0
	}
	var buf [4]byte
	if _, err := io.ReadFull(rd.r, buf[:]); err != nil {
		rd.err = err
		return 0
	}
	return binary.LittleEndian.Uint32(buf[:])
}

func (rd *reader3) f64() float64 {
	if rd.err != nil {
		return 0
	}
	var buf [8]byte
	if _, err := io.ReadFull(rd.r, buf[:]); err != nil {
		rd.err = err
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
}

func (rd *reader3) ids(max int) []int32 {
	n := int(rd.u32())
	if rd.err != nil {
		return nil
	}
	if n < 0 || n > max {
		rd.err = fmt.Errorf("id list of %d exceeds bound %d", n, max)
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		v := rd.u32()
		if int(v) >= max {
			rd.err = fmt.Errorf("id %d out of range", v)
			return nil
		}
		out[i] = int32(v)
	}
	return out
}

// LoadOctIndex re-opens an octree written by Save against the same
// object slice; leaf pages are re-materialized.
func LoadOctIndex(r io.Reader, objs []uncertain3.Object3) (*OctIndex, error) {
	rd := &reader3{r: bufio.NewReader(r)}
	if rd.u32() != octMagic {
		return nil, fmt.Errorf("core3: not an octree stream")
	}
	if v := rd.u32(); v != octVersion {
		return nil, fmt.Errorf("core3: unsupported octree version %d", v)
	}
	domain := geom3.Box{
		Min: geom3.P3(rd.f64(), rd.f64(), rd.f64()),
		Max: geom3.P3(rd.f64(), rd.f64(), rd.f64()),
	}
	opts := Options3{
		M:          int(rd.u32()),
		SplitTheta: rd.f64(),
		PageSize:   int(rd.u32()),
		MaxDepth:   int(rd.u32()),
		Dirs:       int(rd.u32()),
	}
	n := int(rd.u32())
	if rd.err != nil {
		return nil, fmt.Errorf("core3: loading octree header: %w", rd.err)
	}
	if n != len(objs) {
		return nil, fmt.Errorf("core3: octree stores %d objects, have %d", n, len(objs))
	}
	ix := NewOctIndex(objs, domain, opts)
	for i := 0; i < n; i++ {
		ix.crOf[i] = rd.ids(n)
	}
	var nodes int
	var walk func() *onode
	walk = func() *onode {
		if rd.err != nil {
			return nil
		}
		nodes++
		if nodes > 1<<24 {
			rd.err = fmt.Errorf("node count exceeds sanity bound")
			return nil
		}
		switch rd.u32() {
		case 0:
			leaf := &onode{ids: rd.ids(n), pagesAlloc: 1}
			if need := (len(leaf.ids) + ix.capPerPage - 1) / ix.capPerPage; need > 1 {
				leaf.pagesAlloc = need
			}
			return leaf
		case 1:
			nd := &onode{}
			var kids [8]*onode
			for k := 0; k < 8; k++ {
				kids[k] = walk()
			}
			nd.children = &kids
			ix.nonleaf++
			return nd
		default:
			if rd.err == nil {
				rd.err = fmt.Errorf("bad node tag")
			}
			return nil
		}
	}
	ix.root = walk()
	if rd.err != nil {
		return nil, fmt.Errorf("core3: loading octree: %w", rd.err)
	}
	ix.Finish()
	return ix, nil
}
