package core3

import (
	"math"

	"uvdiagram/internal/geom3"
	"uvdiagram/internal/uncertain3"
)

// DeriveScratch3 carries the reusable buffers of one 3D derivation
// worker: the expanding-ball seed buffer, the fixpoint candidate
// buffer pooled with the hash grid's center-range collection, the
// possible region whose constraint storage persists across the
// worker's whole object stream, and the cross-round bound cache — so
// steady-state DeriveCR3 allocates only the returned cr-set. A scratch
// is owned by exactly one goroutine; Build3 gives each worker its own.
type DeriveScratch3 struct {
	seeds  []int32
	cands  []int32
	region PossibleRegion3
	sorter seedSorter3

	// Cross-round bound cache, valid for one DeriveCR3 call. The radial
	// bound of one candidate along one lattice direction is a pure
	// function of the two uncertainty regions, so the fixpoint rounds —
	// whose candidate sets largely overlap — share one evaluation per
	// (candidate, direction) pair instead of re-deriving the hyperboloid
	// bounds every round.
	rowIdx  []int32       // object id → row index (−1 = no edge); valid when rowGen matches gen
	rowGen  []uint32      // generation stamp per object id
	gen     uint32        // current derive call's generation
	rows    [][]float64   // pooled bound rows over the lattice (+Inf = no bound)
	edges   []Constraint3 // cached constraints parallel to rows
	used    int           // rows/edges in use for the current object
	rayExit []float64     // domain exit per direction for the current center
	radius  []float64     // per-direction working fold
}

// NewDeriveScratch3 returns an empty scratch; buffers grow on first use
// and are retained across calls.
func NewDeriveScratch3() *DeriveScratch3 { return &DeriveScratch3{} }

// beginObject starts a new derive call: it invalidates the bound cache
// by bumping the generation stamp and precomputes the domain exits for
// the object's center (pure per direction, shared by every round).
func (sc *DeriveScratch3) beginObject(oi uncertain3.Object3, domain geom3.Box, dirs []geom3.Point3, n int) {
	if len(sc.rowIdx) < n {
		sc.rowIdx = make([]int32, n)
		sc.rowGen = make([]uint32, n)
		sc.gen = 0
	}
	sc.gen++
	if sc.gen == 0 { // generation counter wrapped: drop every stamp
		for i := range sc.rowGen {
			sc.rowGen[i] = 0
		}
		sc.gen = 1
	}
	sc.used = 0
	if cap(sc.rayExit) < len(dirs) {
		sc.rayExit = make([]float64, len(dirs))
		sc.radius = make([]float64, len(dirs))
	}
	sc.rayExit = sc.rayExit[:len(dirs)]
	sc.radius = sc.radius[:len(dirs)]
	for i, u := range dirs {
		sc.rayExit[i] = domain.RayExit(oi.Region.C, u)
	}
}

// rowFor returns the cached bound row of candidate oj against the
// current object, building the constraint and evaluating its radial
// bounds over the lattice on first touch. A negative index means the
// uncertainty regions overlap (no edge, nothing to fold).
func (sc *DeriveScratch3) rowFor(oi, oj uncertain3.Object3, dirs []geom3.Point3) int32 {
	j := oj.ID
	if sc.rowGen[j] == sc.gen {
		return sc.rowIdx[j]
	}
	sc.rowGen[j] = sc.gen
	c, ok := NewConstraint3(oi, oj)
	if !ok {
		sc.rowIdx[j] = -1
		return -1
	}
	if sc.used == len(sc.rows) {
		sc.rows = append(sc.rows, make([]float64, len(dirs)))
		sc.edges = append(sc.edges, Constraint3{})
	}
	row := sc.rows[sc.used]
	if cap(row) < len(dirs) {
		row = make([]float64, len(dirs))
	}
	row = row[:len(dirs)]
	// RadialBound with the edge's pure per-edge subexpressions (the
	// existence test — true here by construction — the focal offset w
	// and the numerator S²−|w|²) hoisted out of the per-direction loop:
	// the remaining arithmetic is operation-for-operation RadialBound's,
	// so every row value is bitwise identical.
	w := c.Edge.Fi.Sub(c.Edge.Fj)
	s := c.Edge.S
	num := s*s - w.NormSq()
	inf := math.Inf(1)
	for i, u := range dirs {
		if den := w.Dot(u) + s; den < 0 {
			row[i] = num / (2 * den)
		} else {
			row[i] = inf
		}
	}
	sc.rows[sc.used] = row
	sc.edges[sc.used] = c
	sc.rowIdx[j] = int32(sc.used)
	sc.used++
	return sc.rowIdx[j]
}

// foldMax returns the inflated maximum radius of the region bounded by
// the domain and the listed candidates' constraints. Per direction it
// runs MaxRadius's exact fold — domain exit first, then each
// constraint's bound in list order — over cached rows (+Inf compares
// exactly like a missing bound), and applies MaxRadius's inflation, so
// the value is bitwise identical to building the region and calling
// MaxRadius(dirs).
func (sc *DeriveScratch3) foldMax(oi uncertain3.Object3, objs []uncertain3.Object3, ids []int32, dirs []geom3.Point3) float64 {
	copy(sc.radius, sc.rayExit)
	for _, j := range ids {
		idx := sc.rowFor(oi, objs[j], dirs)
		if idx < 0 {
			continue
		}
		row := sc.rows[idx]
		for i, t := range row {
			if t < sc.radius[i] {
				sc.radius[i] = t
			}
		}
	}
	d := 0.0
	for _, r := range sc.radius {
		if r > d {
			d = r
		}
	}
	n := len(dirs)
	if n < 1 {
		n = 1
	}
	spacing := math.Sqrt(4 * math.Pi / float64(n))
	return d * (1 + 2*spacing*spacing)
}
