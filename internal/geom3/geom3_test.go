package geom3

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randPoint(rng *rand.Rand, scale float64) Point3 {
	return Point3{rng.Float64() * scale, rng.Float64() * scale, rng.Float64() * scale}
}

func TestPointOps(t *testing.T) {
	a, b := P3(1, 2, 3), P3(4, 5, 6)
	if got := a.Add(b); got != P3(5, 7, 9) {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a); got != P3(3, 3, 3) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if got := a.Cross(b); got != P3(-3, 6, -3) {
		t.Fatalf("Cross = %v", got)
	}
	if got := P3(3, 4, 0).Norm(); got != 5 {
		t.Fatalf("Norm = %v", got)
	}
	if got := P3(0, 0, 0).Unit(); got != P3(1, 0, 0) {
		t.Fatalf("zero Unit = %v", got)
	}
}

func TestCrossOrthogonal(t *testing.T) {
	// Map arbitrary float64s into a bounded range to avoid overflow to
	// infinity in the products.
	squash := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 1e3)
	}
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := P3(squash(ax), squash(ay), squash(az))
		b := P3(squash(bx), squash(by), squash(bz))
		c := a.Cross(b)
		tol := 1e-6 * (1 + a.NormSq() + b.NormSq())
		return math.Abs(c.Dot(a)) < tol && math.Abs(c.Dot(b)) < tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFibonacciSphereUnitAndSpread(t *testing.T) {
	dirs := FibonacciSphere(500)
	if len(dirs) != 500 {
		t.Fatalf("len = %d", len(dirs))
	}
	var mean Point3
	for _, d := range dirs {
		if math.Abs(d.Norm()-1) > 1e-12 {
			t.Fatalf("direction %v is not unit", d)
		}
		mean = mean.Add(d)
	}
	if mean.Scale(1.0/500).Norm() > 0.01 {
		t.Fatalf("directions are not balanced: mean %v", mean.Scale(1.0/500))
	}
	// Nearest-neighbor angle should be small and uniformish: every
	// direction has a neighbor within ~3× the ideal spacing.
	ideal := math.Sqrt(4 * math.Pi / 500)
	for i, d := range dirs {
		best := math.Inf(1)
		for j, e := range dirs {
			if i != j {
				best = math.Min(best, d.Dist(e))
			}
		}
		if best > 3*ideal {
			t.Fatalf("direction %d isolated: nearest at %v (ideal %v)", i, best, ideal)
		}
	}
}

func TestBallLensVolumeCases(t *testing.T) {
	a := Sphere{C: P3(0, 0, 0), R: 10}
	// Disjoint.
	if v := BallLensVolume(a, Sphere{C: P3(30, 0, 0), R: 5}); v != 0 {
		t.Fatalf("disjoint lens = %v", v)
	}
	// Contained.
	small := Sphere{C: P3(1, 0, 0), R: 2}
	if v := BallLensVolume(a, small); math.Abs(v-small.Volume()) > 1e-9 {
		t.Fatalf("contained lens = %v, want %v", v, small.Volume())
	}
	// Self-intersection = own volume.
	if v := BallLensVolume(a, a); math.Abs(v-a.Volume()) > 1e-9 {
		t.Fatalf("self lens = %v, want %v", v, a.Volume())
	}
	// Hemisphere symmetry: two equal balls with centers d apart overlap
	// in a lens symmetric about the mid-plane.
	b := Sphere{C: P3(10, 0, 0), R: 10}
	v := BallLensVolume(a, b)
	// Analytic: V = π(2R−d)²(d²+4dR−3·0)/(12d) with R=10, d=10.
	want := math.Pi * 100 * (100 + 400) / 120
	if math.Abs(v-want) > 1e-9 {
		t.Fatalf("equal-ball lens = %v, want %v", v, want)
	}
}

func TestBallLensVolumeMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		a := Sphere{C: randPoint(rng, 10), R: 1 + rng.Float64()*5}
		b := Sphere{C: randPoint(rng, 10), R: 1 + rng.Float64()*5}
		got := BallLensVolume(a, b)
		// Sample inside a's bounding box.
		const n = 200000
		hits := 0
		bb := a.BoundingBox()
		for i := 0; i < n; i++ {
			p := Point3{
				bb.Min.X + rng.Float64()*bb.W(),
				bb.Min.Y + rng.Float64()*bb.H(),
				bb.Min.Z + rng.Float64()*bb.D(),
			}
			if a.Contains(p) && b.Contains(p) {
				hits++
			}
		}
		mc := float64(hits) / n * bb.Volume()
		tol := 0.05*a.Volume() + 1e-9
		if math.Abs(got-mc) > tol {
			t.Fatalf("trial %d: lens %v vs Monte-Carlo %v (tol %v)", trial, got, mc, tol)
		}
	}
}

func TestOctantsTileBox(t *testing.T) {
	b := Box{Min: P3(0, 0, 0), Max: P3(8, 4, 2)}
	total := 0.0
	for k := 0; k < 8; k++ {
		total += b.Octant(k).Volume()
	}
	if math.Abs(total-b.Volume()) > 1e-12 {
		t.Fatalf("octant volumes sum to %v, want %v", total, b.Volume())
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		p := Point3{rng.Float64() * 8, rng.Float64() * 4, rng.Float64() * 2}
		k := b.OctantFor(p)
		if !b.Octant(k).Contains(p) {
			t.Fatalf("point %v not in its octant %d %v", p, k, b.Octant(k))
		}
	}
}

func TestBoxDistances(t *testing.T) {
	b := Box{Min: P3(0, 0, 0), Max: P3(10, 10, 10)}
	if d := b.MinDist(P3(5, 5, 5)); d != 0 {
		t.Fatalf("inside MinDist = %v", d)
	}
	if d := b.MinDist(P3(13, 14, 10)); math.Abs(d-5) > 1e-12 {
		t.Fatalf("outside MinDist = %v, want 5", d)
	}
	if d := b.MaxDist(P3(0, 0, 0)); math.Abs(d-math.Sqrt(300)) > 1e-12 {
		t.Fatalf("MaxDist = %v, want %v", d, math.Sqrt(300))
	}
}

func TestBoxRayExit(t *testing.T) {
	b := Cube(10)
	from := P3(5, 5, 5)
	if tx := b.RayExit(from, P3(1, 0, 0)); math.Abs(tx-5) > 1e-12 {
		t.Fatalf("+x exit = %v", tx)
	}
	diag := P3(1, 1, 1).Unit()
	want := 5 * math.Sqrt(3)
	if td := b.RayExit(from, diag); math.Abs(td-want) > 1e-9 {
		t.Fatalf("diagonal exit = %v, want %v", td, want)
	}
}

func TestUVEdge3RadialBoundOnLocus(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		oi := Sphere{C: randPoint(rng, 100), R: rng.Float64() * 5}
		oj := Sphere{C: randPoint(rng, 100), R: rng.Float64() * 5}
		e := NewUVEdge3(oi, oj)
		if !e.Exists() {
			continue
		}
		dir := Point3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}.Unit()
		tb, ok := e.RadialBound(dir)
		if !ok {
			continue
		}
		p := e.Fi.Add(dir.Scale(tb))
		// p must lie on the locus dist(p,Fi) − dist(p,Fj) = S.
		if d := e.Delta(p); math.Abs(d) > 1e-6*(1+tb) {
			t.Fatalf("trial %d: Delta at bound = %v", trial, d)
		}
		// Just beyond the bound the ray is in the outside region;
		// just before it is not.
		if !e.InOutside(e.Fi.Add(dir.Scale(tb * 1.001))) {
			t.Fatalf("trial %d: beyond bound not outside", trial)
		}
		if e.InOutside(e.Fi.Add(dir.Scale(tb * 0.999))) {
			t.Fatalf("trial %d: before bound already outside", trial)
		}
	}
}

func TestUVEdge3OutsideRegionConvex(t *testing.T) {
	// Sample pairs of outside points; every midpoint must be outside
	// too (spot check of the convexity the 8-corner test relies on).
	rng := rand.New(rand.NewSource(6))
	e := NewUVEdge3(Sphere{C: P3(0, 0, 0), R: 2}, Sphere{C: P3(30, 0, 0), R: 3})
	var pts []Point3
	for len(pts) < 200 {
		p := Point3{20 + rng.Float64()*40, rng.NormFloat64() * 15, rng.NormFloat64() * 15}
		if e.InOutside(p) {
			pts = append(pts, p)
		}
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j += 7 {
			mid := Lerp3(pts[i], pts[j], 0.5)
			if !e.InOutside(mid) && e.Delta(mid) < -1e-9 {
				t.Fatalf("midpoint of outside points %v, %v is inside (Δ=%v)",
					pts[i], pts[j], e.Delta(mid))
			}
		}
	}
}

func TestSphereBasics(t *testing.T) {
	s := Sphere{C: P3(0, 0, 0), R: 5}
	if !s.Contains(P3(3, 4, 0)) {
		t.Fatal("boundary point not contained")
	}
	if s.Contains(P3(3, 4, 1)) {
		t.Fatal("outside point contained")
	}
	if !s.Overlaps(Sphere{C: P3(10, 0, 0), R: 5}) {
		t.Fatal("tangent spheres should overlap")
	}
	if !s.ContainsSphere(Sphere{C: P3(1, 0, 0), R: 4}) {
		t.Fatal("inner sphere not contained")
	}
	bb := s.BoundingBox()
	if bb.Min != P3(-5, -5, -5) || bb.Max != P3(5, 5, 5) {
		t.Fatalf("bounding box = %v", bb)
	}
}
