package geom3

import "math"

// Sphere is a ball in 3-space (uncertainty regions of 3D objects).
type Sphere struct {
	C Point3
	R float64
}

// Contains reports whether p lies in the closed ball.
func (s Sphere) Contains(p Point3) bool {
	return s.C.DistSq(p) <= s.R*s.R
}

// Overlaps reports whether the two closed balls intersect.
func (s Sphere) Overlaps(o Sphere) bool {
	return s.C.Dist(o.C) <= s.R+o.R
}

// ContainsSphere reports whether o lies entirely inside s.
func (s Sphere) ContainsSphere(o Sphere) bool {
	return s.C.Dist(o.C)+o.R <= s.R
}

// Volume returns the ball volume 4/3·π·R³.
func (s Sphere) Volume() float64 { return 4 * math.Pi * s.R * s.R * s.R / 3 }

// BoundingBox returns the axis-aligned bounding box of the ball.
func (s Sphere) BoundingBox() Box {
	return Box{
		Min: Point3{s.C.X - s.R, s.C.Y - s.R, s.C.Z - s.R},
		Max: Point3{s.C.X + s.R, s.C.Y + s.R, s.C.Z + s.R},
	}
}

// BallLensVolume returns the volume of the intersection of two balls,
// the 3D analogue of geom.LensArea and the basis of the 3D distance
// CDF. Closed form: for d = dist(a,b) with partial overlap the lens is
// two spherical caps,
//
//	V = π (a.R + b.R − d)² (d² + 2d(a.R + b.R) − 3(a.R − b.R)²) / (12 d).
func BallLensVolume(a, b Sphere) float64 {
	if a.R <= 0 || b.R <= 0 {
		return 0
	}
	d := a.C.Dist(b.C)
	if d >= a.R+b.R {
		return 0
	}
	small, big := a, b
	if small.R > big.R {
		small, big = big, small
	}
	if d+small.R <= big.R {
		return small.Volume()
	}
	s := a.R + b.R - d
	return math.Pi * s * s * (d*d + 2*d*(a.R+b.R) - 3*(a.R-b.R)*(a.R-b.R)) / (12 * d)
}
