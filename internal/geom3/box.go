package geom3

import (
	"fmt"
	"math"
)

// Box is an axis-aligned box (domains and octree node regions).
type Box struct {
	Min, Max Point3
}

// Cube returns the cube [0, side]³.
func Cube(side float64) Box {
	return Box{Min: Point3{}, Max: Point3{side, side, side}}
}

// String implements fmt.Stringer.
func (b Box) String() string {
	return fmt.Sprintf("[%g,%g]×[%g,%g]×[%g,%g]",
		b.Min.X, b.Max.X, b.Min.Y, b.Max.Y, b.Min.Z, b.Max.Z)
}

// W, H, D return the box extents along x, y and z.
func (b Box) W() float64 { return b.Max.X - b.Min.X }

// H returns the y extent.
func (b Box) H() float64 { return b.Max.Y - b.Min.Y }

// D returns the z extent.
func (b Box) D() float64 { return b.Max.Z - b.Min.Z }

// Volume returns the box volume.
func (b Box) Volume() float64 { return b.W() * b.H() * b.D() }

// Center returns the box center.
func (b Box) Center() Point3 {
	return Point3{(b.Min.X + b.Max.X) / 2, (b.Min.Y + b.Max.Y) / 2, (b.Min.Z + b.Max.Z) / 2}
}

// Contains reports whether p lies in the closed box.
func (b Box) Contains(p Point3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Overlaps reports whether the two closed boxes intersect.
func (b Box) Overlaps(o Box) bool {
	return b.Min.X <= o.Max.X && o.Min.X <= b.Max.X &&
		b.Min.Y <= o.Max.Y && o.Min.Y <= b.Max.Y &&
		b.Min.Z <= o.Max.Z && o.Min.Z <= b.Max.Z
}

// Corners returns the eight corner points (the 8-point overlap test of
// the octree index, the 3D lift of Algorithm 5's 4-point test).
func (b Box) Corners() [8]Point3 {
	var out [8]Point3
	for k := 0; k < 8; k++ {
		p := b.Min
		if k&1 != 0 {
			p.X = b.Max.X
		}
		if k&2 != 0 {
			p.Y = b.Max.Y
		}
		if k&4 != 0 {
			p.Z = b.Max.Z
		}
		out[k] = p
	}
	return out
}

// Octant returns the k-th of the eight half-size children (bit 0 = +x,
// bit 1 = +y, bit 2 = +z).
func (b Box) Octant(k int) Box {
	c := b.Center()
	out := b
	if k&1 == 0 {
		out.Max.X = c.X
	} else {
		out.Min.X = c.X
	}
	if k&2 == 0 {
		out.Max.Y = c.Y
	} else {
		out.Min.Y = c.Y
	}
	if k&4 == 0 {
		out.Max.Z = c.Z
	} else {
		out.Min.Z = c.Z
	}
	return out
}

// OctantFor returns the index of the octant containing p (points on a
// split plane go to the upper side, matching Octant).
func (b Box) OctantFor(p Point3) int {
	c := b.Center()
	k := 0
	if p.X >= c.X {
		k |= 1
	}
	if p.Y >= c.Y {
		k |= 2
	}
	if p.Z >= c.Z {
		k |= 4
	}
	return k
}

// MinDist returns the distance from p to the box (0 when inside).
func (b Box) MinDist(p Point3) float64 {
	dx := math.Max(0, math.Max(b.Min.X-p.X, p.X-b.Max.X))
	dy := math.Max(0, math.Max(b.Min.Y-p.Y, p.Y-b.Max.Y))
	dz := math.Max(0, math.Max(b.Min.Z-p.Z, p.Z-b.Max.Z))
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// MaxDist returns the distance from p to the farthest point of the box.
func (b Box) MaxDist(p Point3) float64 {
	dx := math.Max(math.Abs(p.X-b.Min.X), math.Abs(p.X-b.Max.X))
	dy := math.Max(math.Abs(p.Y-b.Min.Y), math.Abs(p.Y-b.Max.Y))
	dz := math.Max(math.Abs(p.Z-b.Min.Z), math.Abs(p.Z-b.Max.Z))
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// RayExit returns the distance along the unit direction dir at which
// the ray from a point inside the box leaves it.
func (b Box) RayExit(from, dir Point3) float64 {
	t := math.Inf(1)
	if dir.X > 0 {
		t = math.Min(t, (b.Max.X-from.X)/dir.X)
	} else if dir.X < 0 {
		t = math.Min(t, (b.Min.X-from.X)/dir.X)
	}
	if dir.Y > 0 {
		t = math.Min(t, (b.Max.Y-from.Y)/dir.Y)
	} else if dir.Y < 0 {
		t = math.Min(t, (b.Min.Y-from.Y)/dir.Y)
	}
	if dir.Z > 0 {
		t = math.Min(t, (b.Max.Z-from.Z)/dir.Z)
	} else if dir.Z < 0 {
		t = math.Min(t, (b.Min.Z-from.Z)/dir.Z)
	}
	if t < 0 {
		t = 0
	}
	return t
}
