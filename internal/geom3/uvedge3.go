package geom3

// UVEdge3 is the bisector locus between two spherical uncertainty
// regions Oi = Ball(Fi, Ri) and Oj = Ball(Fj, Rj):
//
//	{ p : dist(p, Fi) − dist(p, Fj) = S },  S = Ri + Rj ≥ 0,
//
// one sheet of a two-sheeted hyperboloid of revolution with foci Fi and
// Fj, bending around Fj. Its outside region
// X = { p : dist(p,Fi) − dist(p,Fj) > S } is an open convex set
// containing Fj (the region bounded by one sheet on the focus side is
// convex in any dimension), which is what justifies the 8-corner box
// test of the octree index.
type UVEdge3 struct {
	Fi, Fj Point3
	S      float64
}

// NewUVEdge3 builds the 3D UV-edge of Oi with respect to Oj.
func NewUVEdge3(oi, oj Sphere) UVEdge3 {
	return UVEdge3{Fi: oi.C, Fj: oj.C, S: oi.R + oj.R}
}

// Exists reports whether the edge is non-degenerate (the two balls do
// not overlap).
func (e UVEdge3) Exists() bool {
	return e.Fi.Dist(e.Fj) > e.S
}

// Delta returns dist(p,Fi) − dist(p,Fj) − S: positive exactly on the
// outside region.
func (e UVEdge3) Delta(p Point3) float64 {
	return p.Dist(e.Fi) - p.Dist(e.Fj) - e.S
}

// InOutside reports whether p lies strictly in the outside region.
func (e UVEdge3) InOutside(p Point3) bool { return e.Delta(p) > 0 }

// RadialBound returns the distance t at which the ray Fi + t·dir (dir
// unit length) crosses the sheet — the same closed form as the 2D case,
// whose derivation never uses the dimension:
//
//	t = (S² − |w|²) / (2(w·dir + S)),  w = Fi − Fj,  valid iff w·dir < −S.
func (e UVEdge3) RadialBound(dir Point3) (t float64, ok bool) {
	if !e.Exists() {
		return 0, false
	}
	w := e.Fi.Sub(e.Fj)
	den := w.Dot(dir) + e.S
	if den >= 0 {
		return 0, false
	}
	return (e.S*e.S - w.NormSq()) / (2 * den), true
}
