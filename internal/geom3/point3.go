// Package geom3 provides the three-dimensional geometry substrate for
// the multi-dimensional UV-diagram extension (the paper's conclusion
// lists support for multi-dimensional data as future work): points,
// spheres, boxes, 3D UV-edges (hyperboloid bisectors) and ball
// intersection volumes.
//
// Every 2D construction of the paper lifts cleanly: the UV-edge locus
// dist(p,ci) − dist(p,cj) = ri + rj is one sheet of a two-sheeted
// hyperboloid of revolution, its outside region is convex, the radial
// bound along a ray from ci has the same closed form (the derivation
// never uses the dimension), and possible regions remain star-shaped
// around the object center by the same triangle-inequality argument.
package geom3

import "math"

// Point3 is a location in 3-space.
type Point3 struct {
	X, Y, Z float64
}

// P3 returns the point (x, y, z).
func P3(x, y, z float64) Point3 { return Point3{x, y, z} }

// Add returns p + q.
func (p Point3) Add(q Point3) Point3 { return Point3{p.X + q.X, p.Y + q.Y, p.Z + q.Z} }

// Sub returns p − q.
func (p Point3) Sub(q Point3) Point3 { return Point3{p.X - q.X, p.Y - q.Y, p.Z - q.Z} }

// Scale returns k·p.
func (p Point3) Scale(k float64) Point3 { return Point3{k * p.X, k * p.Y, k * p.Z} }

// Dot returns the dot product p·q.
func (p Point3) Dot(q Point3) float64 { return p.X*q.X + p.Y*q.Y + p.Z*q.Z }

// Cross returns the cross product p × q.
func (p Point3) Cross(q Point3) Point3 {
	return Point3{
		p.Y*q.Z - p.Z*q.Y,
		p.Z*q.X - p.X*q.Z,
		p.X*q.Y - p.Y*q.X,
	}
}

// Norm returns |p|.
func (p Point3) Norm() float64 { return math.Sqrt(p.NormSq()) }

// NormSq returns |p|².
func (p Point3) NormSq() float64 { return p.X*p.X + p.Y*p.Y + p.Z*p.Z }

// Dist returns the Euclidean distance between p and q.
func (p Point3) Dist(q Point3) float64 { return p.Sub(q).Norm() }

// DistSq returns the squared distance between p and q.
func (p Point3) DistSq(q Point3) float64 { return p.Sub(q).NormSq() }

// Unit returns p normalized to length 1 (the zero vector maps to the
// +x axis).
func (p Point3) Unit() Point3 {
	n := p.Norm()
	if n == 0 {
		return Point3{1, 0, 0}
	}
	return p.Scale(1 / n)
}

// FibonacciSphere returns n quasi-uniform unit directions (the golden
// -spiral lattice), the 3D analogue of the uniform angular sweeps used
// by the 2D radial representation.
func FibonacciSphere(n int) []Point3 {
	if n < 1 {
		n = 1
	}
	const golden = math.Pi * (3 - 2.2360679774997896) // π(3−√5)
	dirs := make([]Point3, n)
	for i := 0; i < n; i++ {
		z := 1 - 2*(float64(i)+0.5)/float64(n)
		r := math.Sqrt(1 - z*z)
		th := golden * float64(i)
		dirs[i] = Point3{r * math.Cos(th), r * math.Sin(th), z}
	}
	return dirs
}

// Lerp3 returns a + t(b−a).
func Lerp3(a, b Point3, t float64) Point3 { return a.Add(b.Sub(a).Scale(t)) }
