package datagen

import (
	"math"
	"testing"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/uncertain"
)

func TestUniformBasics(t *testing.T) {
	cfg := Config{N: 500, Side: 1000, Diameter: 20, Seed: 1}
	objs := Uniform(cfg)
	if len(objs) != 500 {
		t.Fatalf("n = %d", len(objs))
	}
	domain := cfg.Domain()
	for i, o := range objs {
		if int(o.ID) != i {
			t.Fatal("IDs must be dense")
		}
		if o.Region.R != 10 {
			t.Fatalf("radius = %v", o.Region.R)
		}
		if !domain.ContainsRect(o.Region.BoundingRect()) {
			t.Fatalf("object %d region %v leaves the domain", i, o.Region)
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := Uniform(Config{N: 50, Seed: 7})
	b := Uniform(Config{N: 50, Seed: 7})
	for i := range a {
		if a[i].Region != b[i].Region {
			t.Fatal("same seed must give same data")
		}
	}
	c := Uniform(Config{N: 50, Seed: 8})
	same := true
	for i := range a {
		if a[i].Region != c[i].Region {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical data")
	}
}

// TestSkewedConcentration: smaller sigma packs centers closer to the
// domain center.
func TestSkewedConcentration(t *testing.T) {
	cfg := Config{N: 2000, Seed: 3}
	tight := Skewed(cfg, 1500)
	wide := Skewed(cfg, 3500)
	mid := geom.Pt(DefaultSide/2, DefaultSide/2)
	mean := func(objs []float64) float64 {
		s := 0.0
		for _, v := range objs {
			s += v
		}
		return s / float64(len(objs))
	}
	var dt, dw []float64
	for i := range tight {
		dt = append(dt, tight[i].Region.C.Dist(mid))
		dw = append(dw, wide[i].Region.C.Dist(mid))
	}
	if mean(dt) >= mean(dw) {
		t.Errorf("sigma=1500 mean distance %v not below sigma=3500 %v", mean(dt), mean(dw))
	}
	domain := cfg.Domain()
	for _, o := range tight {
		if !domain.Contains(o.Region.C) {
			t.Fatal("skewed object outside domain")
		}
	}
}

func TestRealDatasets(t *testing.T) {
	for _, kind := range []RealKind{Utility, Roads, RRLines} {
		objs, err := Real(kind, 0.05, 11)
		if err != nil {
			t.Fatal(err)
		}
		want := int(float64(RealSize(kind)) * 0.05)
		if len(objs) != want {
			t.Fatalf("%s: n = %d, want %d", kind, len(objs), want)
		}
		domain := geom.Square(DefaultSide)
		for i, o := range objs {
			if int(o.ID) != i {
				t.Fatalf("%s: sparse IDs", kind)
			}
			if !domain.Contains(o.Region.C) {
				t.Fatalf("%s: object outside domain", kind)
			}
		}
	}
	if _, err := Real("nonsense", 0.5, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := Real(Utility, 0, 1); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, err := Real(Utility, 1.5, 1); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

// TestRealSkewExceedsUniform: the simulated real datasets must actually
// be skewed — their nearest-neighbor spacing variance should exceed the
// uniform workload's at equal size.
func TestRealSkewExceedsUniform(t *testing.T) {
	clu, err := Real(Utility, 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	uni := Uniform(Config{N: len(clu), Seed: 5})
	vc := nnDistVariance(centersOf(clu))
	vu := nnDistVariance(centersOf(uni))
	if vc <= vu {
		t.Errorf("clustered NN-distance variance %v not above uniform %v", vc, vu)
	}
}

func centersOf(objs []uncertain.Object) []geom.Point {
	pts := make([]geom.Point, len(objs))
	for i, o := range objs {
		pts[i] = o.Region.C
	}
	return pts
}

// nnDistVariance computes the variance of nearest-center distances.
func nnDistVariance(pts []geom.Point) float64 {
	ds := make([]float64, len(pts))
	for i, p := range pts {
		best := math.Inf(1)
		for j, q := range pts {
			if i != j {
				if d := p.DistSq(q); d < best {
					best = d
				}
			}
		}
		ds[i] = math.Sqrt(best)
	}
	mean := 0.0
	for _, d := range ds {
		mean += d
	}
	mean /= float64(len(ds))
	v := 0.0
	for _, d := range ds {
		v += (d - mean) * (d - mean)
	}
	return v / float64(len(ds))
}

func TestQueries(t *testing.T) {
	qs := Queries(50, 1000, 9)
	if len(qs) != 50 {
		t.Fatalf("n = %d", len(qs))
	}
	for _, q := range qs {
		if q.X < 0 || q.X > 1000 || q.Y < 0 || q.Y > 1000 {
			t.Fatalf("query %v outside domain", q)
		}
	}
	if Queries(1, 0, 1)[0].X > DefaultSide {
		t.Error("default side not applied")
	}
}

func TestConfigDomain(t *testing.T) {
	if d := (Config{}).Domain(); d != geom.Square(DefaultSide) {
		t.Errorf("default domain = %v", d)
	}
	if d := (Config{Side: 42}).Domain(); d != geom.Square(42) {
		t.Errorf("domain = %v", d)
	}
	if math.Abs(DefaultDiameter-40) > 0 {
		t.Error("paper diameter must be 40")
	}
}
