// Package datagen generates the evaluation workloads of Section VI-A:
// uniform synthetic objects in a 10k×10k domain (Theodoridis-style),
// skewed datasets with Gaussian-distributed centers (the σ sweep of
// Figure 7(g)), and synthetic stand-ins for the three real German
// geographic datasets (utility, roads, rrlines) from rtreeportal.org,
// which are not redistributable offline. The stand-ins preserve the
// properties the experiments depend on: dataset sizes and the
// clustered/linear spatial skew (see DESIGN.md §3, substitutions).
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/uncertain"
)

// Paper-default workload parameters (Section VI-A).
const (
	DefaultSide     = 10000.0 // 10k×10k domain
	DefaultDiameter = 40.0    // uncertainty region diameter
)

// Config parameterizes a synthetic dataset.
type Config struct {
	N        int
	Side     float64 // square domain side
	Diameter float64 // uncertainty-region diameter
	Seed     int64
	PDF      func() *uncertain.HistogramPDF // nil = paper's Gaussian
}

func (c *Config) normalize() {
	if c.Side <= 0 {
		c.Side = DefaultSide
	}
	if c.Diameter <= 0 {
		c.Diameter = DefaultDiameter
	}
	if c.PDF == nil {
		c.PDF = uncertain.PaperGaussian
	}
}

// Domain returns the square domain of the configuration.
func (c Config) Domain() geom.Rect {
	cc := c
	cc.normalize()
	return geom.Square(cc.Side)
}

// Uniform generates objects with centers uniformly distributed in the
// domain (the paper's default synthetic workload).
func Uniform(cfg Config) []uncertain.Object {
	cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	r := cfg.Diameter / 2
	objs := make([]uncertain.Object, cfg.N)
	for i := range objs {
		c := geom.Pt(r+rng.Float64()*(cfg.Side-2*r), r+rng.Float64()*(cfg.Side-2*r))
		objs[i] = uncertain.New(int32(i), geom.Circle{C: c, R: r}, cfg.PDF())
	}
	return objs
}

// Skewed generates objects whose centers follow an isotropic Gaussian
// around the domain center with standard deviation sigma, clamped to
// the domain — the skewness workload of Figure 7(g): smaller sigma
// means denser overlap and harder pruning.
func Skewed(cfg Config, sigma float64) []uncertain.Object {
	cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	r := cfg.Diameter / 2
	mid := cfg.Side / 2
	objs := make([]uncertain.Object, cfg.N)
	for i := range objs {
		x := clampF(mid+rng.NormFloat64()*sigma, r, cfg.Side-r)
		y := clampF(mid+rng.NormFloat64()*sigma, r, cfg.Side-r)
		objs[i] = uncertain.New(int32(i), geom.Circle{C: geom.Pt(x, y), R: r}, cfg.PDF())
	}
	return objs
}

// RealKind names one of the simulated German geographic datasets.
type RealKind string

const (
	Utility RealKind = "utility" // 17k clustered utility points
	Roads   RealKind = "roads"   // 30k points along road-like polylines
	RRLines RealKind = "rrlines" // 36k points along longer, straighter rail lines
)

// RealSize returns the paper's size for each real dataset.
func RealSize(kind RealKind) int {
	switch kind {
	case Utility:
		return 17000
	case Roads:
		return 30000
	case RRLines:
		return 36000
	}
	return 0
}

// Real generates the synthetic stand-in for one of the paper's three
// real datasets at the paper's size (scaled by frac in (0,1] for
// smaller experiments).
func Real(kind RealKind, frac float64, seed int64) ([]uncertain.Object, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("datagen: frac must be in (0,1], got %v", frac)
	}
	n := int(float64(RealSize(kind)) * frac)
	if n == 0 {
		return nil, fmt.Errorf("datagen: unknown real dataset %q", kind)
	}
	cfg := Config{N: n, Seed: seed}
	cfg.normalize()
	switch kind {
	case Utility:
		return clusteredPoints(cfg, 120, cfg.Side/40), nil
	case Roads:
		return polylinePoints(cfg, 220, 60, cfg.Side/25, 0.9), nil
	case RRLines:
		return polylinePoints(cfg, 70, 160, cfg.Side/12, 0.25), nil
	}
	return nil, fmt.Errorf("datagen: unknown real dataset %q", kind)
}

// clusteredPoints places n objects in Gaussian clusters (utility
// stations cluster around towns).
func clusteredPoints(cfg Config, clusters int, spread float64) []uncertain.Object {
	rng := rand.New(rand.NewSource(cfg.Seed))
	r := cfg.Diameter / 2
	centers := make([]geom.Point, clusters)
	for i := range centers {
		centers[i] = geom.Pt(rng.Float64()*cfg.Side, rng.Float64()*cfg.Side)
	}
	objs := make([]uncertain.Object, cfg.N)
	for i := range objs {
		c := centers[rng.Intn(clusters)]
		x := clampF(c.X+rng.NormFloat64()*spread, r, cfg.Side-r)
		y := clampF(c.Y+rng.NormFloat64()*spread, r, cfg.Side-r)
		objs[i] = uncertain.New(int32(i), geom.Circle{C: geom.Pt(x, y), R: r}, cfg.PDF())
	}
	return objs
}

// polylinePoints jitters n objects along random-walk polylines (roads /
// rail lines digitized as point sequences). turn controls curviness:
// high for winding roads, low for straight rail lines.
func polylinePoints(cfg Config, lines, stepsPerLine int, stepLen, turn float64) []uncertain.Object {
	rng := rand.New(rand.NewSource(cfg.Seed))
	r := cfg.Diameter / 2
	var pts []geom.Point
	for l := 0; l < lines; l++ {
		p := geom.Pt(rng.Float64()*cfg.Side, rng.Float64()*cfg.Side)
		dir := rng.Float64() * 2 * math.Pi
		for s := 0; s < stepsPerLine; s++ {
			pts = append(pts, p)
			dir += (rng.Float64() - 0.5) * turn
			p = geom.Pt(
				clampF(p.X+math.Cos(dir)*stepLen, r, cfg.Side-r),
				clampF(p.Y+math.Sin(dir)*stepLen, r, cfg.Side-r))
		}
	}
	objs := make([]uncertain.Object, cfg.N)
	for i := range objs {
		base := pts[rng.Intn(len(pts))]
		x := clampF(base.X+rng.NormFloat64()*stepLen/4, r, cfg.Side-r)
		y := clampF(base.Y+rng.NormFloat64()*stepLen/4, r, cfg.Side-r)
		objs[i] = uncertain.New(int32(i), geom.Circle{C: geom.Pt(x, y), R: r}, cfg.PDF())
	}
	return objs
}

// Queries returns n query points uniformly distributed in the domain
// (the paper evaluates 50 uniform PNN queries).
func Queries(n int, side float64, seed int64) []geom.Point {
	if side <= 0 {
		side = DefaultSide
	}
	rng := rand.New(rand.NewSource(seed))
	qs := make([]geom.Point, n)
	for i := range qs {
		qs[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
	}
	return qs
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
