package exp

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"time"

	"uvdiagram"
	"uvdiagram/internal/datagen"
	"uvdiagram/internal/server"
)

// RunChurn measures the dynamic-maintenance path end to end over
// loopback TCP: a population under continuous insert/delete churn while
// query traffic keeps flowing, at several write ratios, plus a
// compaction row showing that a full index rebuild happens off-thread
// (queries keep answering; the table reports the worst query latency
// observed while the rebuild ran).
func RunChurn(sc Scale, progress func(string)) (*Table, error) {
	cfg := datagen.Config{N: sc.MidN, Side: sc.Side, Diameter: sc.Diameter, Seed: sc.Seed}
	shards := sc.shardCount()
	progress(fmt.Sprintf("churn: building UV-index over %d objects (%d shards)", cfg.N, shards))
	db, err := uvdiagram.Build(datagen.Uniform(cfg), cfg.Domain(), &uvdiagram.Options{Shards: shards})
	if err != nil {
		return nil, err
	}
	srv := server.New(db, nil)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = srv.Serve(lis)
	}()
	defer func() {
		srv.Close()
		<-serveDone
		srv.Wait()
	}()

	cli, err := server.Dial(lis.Addr().String())
	if err != nil {
		return nil, err
	}
	defer cli.Close()

	t := &Table{
		ID:      "churn",
		Title:   fmt.Sprintf("Mixed insert/delete/query churn over loopback TCP (n=%d)", sc.MidN),
		Columns: []string{"workload", "shards", "ops", "inserts", "deletes", "elapsed", "ops/s", "ins p50/p99", "del p50/p99", "rederiv/del"},
		Notes: []string{
			"writes are per-connection pipeline barriers; queries are PNN round trips",
			"delete re-derives only the dependents whose cr-set lost a TIGHT constraint; the rest keep their set minus the victim",
			"ins/del p50,p99 are per-write round-trip latency percentiles; rederiv/del is mean objects re-derived per delete (MutationStats delta)",
			"compact row: queries during an off-thread DB.Compact (epoch swap); ops/s is query throughput while the rebuild ran",
		},
	}

	rng := rand.New(rand.NewSource(sc.Seed + 7))
	randPt := func() uvdiagram.Point {
		return uvdiagram.Pt(rng.Float64()*sc.Side, rng.Float64()*sc.Side)
	}
	// Live id pool for deletions; inserts extend it.
	live := make([]int32, db.Len())
	for i := range live {
		live[i] = int32(i)
	}
	nextID := db.NextID()

	ops := sc.Queries * 50
	for _, mix := range []struct {
		name   string
		writes int // percent of ops that are writes (half inserts, half deletes)
	}{
		{"read-only", 0},
		{"light churn (5% writes)", 5},
		{"heavy churn (20% writes)", 20},
	} {
		var inserts, deletes int
		var insLat, delLat []time.Duration
		msBefore := db.MutationStats()
		elapsed, err := timeIt(func() error {
			for i := 0; i < ops; i++ {
				switch {
				case mix.writes > 0 && i%100 < mix.writes && i%2 == 0:
					q := randPt()
					w0 := time.Now()
					if err := cli.Insert(nextID, q.X, q.Y, sc.Diameter/2, nil); err != nil {
						return err
					}
					insLat = append(insLat, time.Since(w0))
					live = append(live, nextID)
					nextID++
					inserts++
				case mix.writes > 0 && i%100 < mix.writes:
					if len(live) == 0 {
						continue
					}
					k := rng.Intn(len(live))
					id := live[k]
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
					w0 := time.Now()
					if err := cli.Delete(id); err != nil {
						return err
					}
					delLat = append(delLat, time.Since(w0))
					deletes++
				default:
					if _, err := cli.PNN(randPt()); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		msAfter := db.MutationStats()
		rederivPerDel := "-"
		if deletes > 0 {
			rederivPerDel = fmt.Sprintf("%.1f", float64(msAfter.Rederived-msBefore.Rederived)/float64(deletes))
		}
		progress(fmt.Sprintf("churn: %s — %d ops in %v", mix.name, ops, elapsed.Round(time.Millisecond)))
		t.AddRow(mix.name, fmt.Sprintf("%d", shards), fmt.Sprintf("%d", ops),
			fmt.Sprintf("%d", inserts), fmt.Sprintf("%d", deletes),
			elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", float64(ops)/elapsed.Seconds()),
			latPair(insLat), latPair(delLat), rederivPerDel)
	}

	// Compaction row: query continuously while a full rebuild runs
	// off-thread; the epoch swap must never block a query.
	compactDone := make(chan error, 1)
	start := time.Now()
	go func() { compactDone <- db.Compact(context.Background()) }()
	var during int
	var worst time.Duration
	for {
		q0 := time.Now()
		if _, err := cli.PNN(randPt()); err != nil {
			return nil, err
		}
		if lat := time.Since(q0); lat > worst {
			worst = lat
		}
		during++
		select {
		case err := <-compactDone:
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			progress(fmt.Sprintf("churn: compact — %d queries answered during a %v rebuild (worst latency %v)",
				during, elapsed.Round(time.Millisecond), worst.Round(time.Microsecond)))
			t.AddRow("queries during Compact", fmt.Sprintf("%d", shards),
				fmt.Sprintf("%d", during), "0", "0",
				elapsed.Round(time.Millisecond).String(),
				fmt.Sprintf("%.0f", float64(during)/elapsed.Seconds()))
			t.Notes = append(t.Notes, fmt.Sprintf("worst query latency while compacting: %v", worst.Round(time.Microsecond)))
			return t, nil
		default:
		}
	}
}

// latPair formats a latency sample set as "p50/p99" (exact order
// statistics — write counts per mix are small). Empty samples render
// as "-" (the read-only row).
func latPair(lat []time.Duration) string {
	if len(lat) == 0 {
		return "-"
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) time.Duration {
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	return fmt.Sprintf("%v/%v", q(0.50).Round(time.Microsecond), q(0.99).Round(time.Microsecond))
}
