package exp

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"uvdiagram"
	"uvdiagram/internal/datagen"
)

// MaintainJSONPath is where RunMaintain records the sweep (the CI and
// README baseline artifact).
const MaintainJSONPath = "BENCH_maintain.json"

// maintainRow is one measured pass of the maintenance experiment.
type maintainRow struct {
	N          int     `json:"n"`
	Shards     int     `json:"shards"`
	Controller bool    `json:"controller"`
	ChurnOps   int     `json:"churn_ops"`
	Ticks      uint64  `json:"ticks"`
	Reshards   uint64  `json:"reshards"`
	ImbPeak    float64 `json:"imbalance_peak_max_over_mean"`
	ImbFinal   float64 `json:"imbalance_final_max_over_mean"`
	// Trajectory is the imbalance sampled at every controller tick, in
	// tick order — the signal the hysteresis control law consumes.
	Trajectory   []float64 `json:"imbalance_trajectory"`
	WorstQueryMS float64   `json:"worst_query_latency_ms"`
	MeanQueryMS  float64   `json:"mean_query_latency_ms"`
	// AnswersIdentical reports whether the full query workload answered
	// bitwise identically to the controller-off pass (controller-on row
	// only; the controller may move objects between shards but must not
	// change a single answer bit).
	AnswersIdentical bool `json:"answers_bitwise_identical_to_off_pass,omitempty"`
}

type maintainReport struct {
	ReportHeader
	Description string         `json:"description"`
	Environment map[string]any `json:"environment"`
	Rows        []maintainRow  `json:"rows"`
	Notes       string         `json:"notes"`
}

// RunMaintain measures what the self-driving maintenance controller
// buys on a churny workload whose distribution drifts: a uniform
// dataset over a 16-shard equal-strip grid is churned toward a Gaussian
// hot spot (every op deletes a uniform-era object and inserts a
// clustered one), so per-shard imbalance climbs as the run progresses.
// The same deterministic workload runs twice — controller off, then on
// — with the controller clocked explicitly (Maintainer.Tick every
// tickEvery ops) so the trajectory is reproducible. Recorded per pass:
// the imbalance trajectory, the reshard count, worst/mean PNN latency
// sampled at every tick, and whether the full query workload answers
// bitwise identically across the two passes (it must — maintenance
// only decides which shard answers).
//
// The sweep also writes BENCH_maintain.json to the working directory.
func RunMaintain(sc Scale, progress func(string)) (*Table, error) {
	const shards = 16 // 4×4 equal strips; the hot spot lands on the center 4
	sigma := sc.Side / 12
	opts := uvdiagram.MaintainOptions{
		Interval:     time.Hour, // background loop idles; the harness clocks Tick
		HighWater:    1.5,
		LowWater:     1.2,
		SustainTicks: 3,
		MinInterval:  50 * time.Millisecond,
	}
	t := &Table{
		ID:    "maintain",
		Title: fmt.Sprintf("Self-driving maintenance under drifting churn (S=%d, σ=%.0f)", shards, sigma),
		Columns: []string{"n", "controller", "churn", "ticks", "reshards",
			"imb peak", "imb final", "worst lat", "answers"},
		Notes: []string{
			"workload: every op deletes a uniform-era object and inserts one clustered at the domain center — skew builds as the run progresses",
			fmt.Sprintf("controller: hysteresis watermarks %.2f/%.2f, sustain %d ticks, cooldown %v; ticked explicitly for a reproducible trajectory",
				opts.HighWater, opts.LowWater, opts.SustainTicks, opts.MinInterval),
			"answers: bitwise comparison of the full query workload between the off and on passes after identical churn",
		},
	}
	report := maintainReport{
		ReportHeader: newReportHeader("maintain"),
		Description:  fmt.Sprintf("Self-driving maintenance sweep: uvbench -exp maintain -scale %s. Uniform dataset churned toward a Gaussian hot spot (sigma=%.0f, side=%.0f) over a %d-shard (4x4) equal-strip grid; identical deterministic workload with the hysteresis controller off vs on.", sc.Name, sigma, sc.Side, shards),
		Environment: map[string]any{
			"goos":  runtime.GOOS,
			"cpu":   fmt.Sprintf("%d cores", runtime.NumCPU()),
			"go":    runtime.Version(),
			"scale": sc.Name,
		},
		Notes: fmt.Sprintf("Acceptance: the controller-on pass ends with imbalance_final at or below the %.2f high watermark using a bounded number of reshards while the off pass drifts unbounded, with answers_bitwise_identical_to_off_pass true. A final sample inside the (%.2f, %.2f) hysteresis band is by design: the controller does not chase in-band skew.", opts.HighWater, opts.LowWater, opts.HighWater),
	}

	n := sc.MidN
	var offAnswers string
	for _, controller := range []bool{false, true} {
		row, answers, err := runMaintainPass(sc, n, shards, sigma, opts, controller, progress)
		if err != nil {
			return nil, err
		}
		if controller {
			row.AnswersIdentical = answers == offAnswers
			if !row.AnswersIdentical {
				return nil, fmt.Errorf("maintain: answers diverged between controller-off and controller-on passes at n=%d", n)
			}
		} else {
			offAnswers = answers
		}
		answersCell := "-"
		if controller {
			answersCell = "identical"
		}
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%v", controller),
			fmt.Sprintf("%d", row.ChurnOps),
			fmt.Sprintf("%d", row.Ticks),
			fmt.Sprintf("%d", row.Reshards),
			fmt.Sprintf("%.2f", row.ImbPeak),
			fmt.Sprintf("%.2f", row.ImbFinal),
			fmt.Sprintf("%.2fms", row.WorstQueryMS),
			answersCell)
		report.Rows = append(report.Rows, *row)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(MaintainJSONPath, append(buf, '\n'), 0o644); err != nil {
		return nil, err
	}
	progress("maintain: wrote " + MaintainJSONPath)
	return t, nil
}

// runMaintainPass runs one deterministic churn pass and returns its row
// plus the final answer string of the fixed query workload.
func runMaintainPass(sc Scale, n, shards int, sigma float64, opts uvdiagram.MaintainOptions, controller bool, progress func(string)) (*maintainRow, string, error) {
	const tickEvery = 100
	cfg := datagen.Config{N: n, Side: sc.Side, Diameter: sc.Diameter, Seed: sc.Seed}
	progress(fmt.Sprintf("maintain: building uniform n=%d over %d shards (controller %v)", n, shards, controller))
	db, err := uvdiagram.Build(datagen.Uniform(cfg), cfg.Domain(), &uvdiagram.Options{Shards: shards})
	if err != nil {
		return nil, "", err
	}
	row := &maintainRow{N: n, Shards: shards, Controller: controller}

	var m *uvdiagram.Maintainer
	if controller {
		m, err = db.StartMaintainer(opts)
		if err != nil {
			return nil, "", err
		}
		defer m.Stop()
	}

	// The fixed query workload compared bitwise across the two passes.
	qrng := rand.New(rand.NewSource(sc.Seed + 5))
	queries := make([]uvdiagram.Point, 64)
	for i := range queries {
		queries[i] = uvdiagram.Pt(qrng.Float64()*sc.Side, qrng.Float64()*sc.Side)
	}

	// Drift churn: delete uniform-era objects in id order, insert
	// Gaussian-clustered replacements at the domain center.
	rng := rand.New(rand.NewSource(sc.Seed + 31))
	churn := n / 2
	row.ChurnOps = churn
	cx, cy := sc.Side/2, sc.Side/2
	clamp := func(v float64) float64 { return min(max(v, 0), sc.Side) }
	var worst, total time.Duration
	var sampled int
	tick := func() {
		imb := db.LoadImbalance()
		row.Trajectory = append(row.Trajectory, imb)
		if imb > row.ImbPeak {
			row.ImbPeak = imb
		}
		if m != nil {
			m.Tick()
		}
		q := uvdiagram.Pt(rng.Float64()*sc.Side, rng.Float64()*sc.Side)
		t0 := time.Now()
		if _, _, err := db.PNN(q); err != nil {
			panic(err) // in-domain PNN cannot fail
		}
		d := time.Since(t0)
		total += d
		if d > worst {
			worst = d
		}
		sampled++
	}
	for op := 0; op < churn; op++ {
		if err := db.Delete(int32(op)); err != nil {
			return nil, "", err
		}
		o := uvdiagram.NewObject(db.NextID(),
			clamp(cx+sigma*rng.NormFloat64()), clamp(cy+sigma*rng.NormFloat64()),
			sc.Diameter/2, nil)
		if err := db.Insert(o); err != nil {
			return nil, "", err
		}
		if (op+1)%tickEvery == 0 {
			tick()
		}
	}
	// Trailing ticks: give pending pressure (sustain + cooldown) room to
	// converge after the churn stops, like a server that stays up.
	for i := 0; i < 3*opts.SustainTicks; i++ {
		time.Sleep(opts.MinInterval / time.Duration(opts.SustainTicks))
		tick()
	}
	row.Ticks = uint64(len(row.Trajectory))
	row.ImbFinal = db.LoadImbalance()
	if m != nil {
		row.Reshards = m.Stats().Reshards
	}
	row.WorstQueryMS = float64(worst.Microseconds()) / 1e3
	if sampled > 0 {
		row.MeanQueryMS = float64(total.Microseconds()) / 1e3 / float64(sampled)
	}
	progress(fmt.Sprintf("maintain: controller %v: imbalance peak %.2f -> final %.2f, %d reshards, worst query %v",
		controller, row.ImbPeak, row.ImbFinal, row.Reshards, worst.Round(time.Microsecond)))
	answers, err := answerStrings(db, queries)
	if err != nil {
		return nil, "", err
	}
	return row, answers, nil
}
