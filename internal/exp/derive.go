package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"uvdiagram"
	"uvdiagram/internal/core"
	"uvdiagram/internal/datagen"
	"uvdiagram/internal/pager"
	"uvdiagram/internal/uncertain"
)

// DeriveJSONPath is where RunDerive records the sweep (the CI and
// README baseline artifact of the derivation fast path).
const DeriveJSONPath = "BENCH_derive.json"

// deriveRow is one measured configuration of the derivation sweep.
type deriveRow struct {
	N                   int     `json:"n"`
	ReferenceDeriveMS   float64 `json:"reference_derive_ms"`
	OptimizedDeriveMS   float64 `json:"optimized_derive_ms"`
	SpeedupX            float64 `json:"derive_speedup_x"`
	CRSetsIdentical     bool    `json:"cr_sets_bitwise_identical"`
	FullBuildMS         float64 `json:"full_build_ms"`
	CompactMS           float64 `json:"compact_ms"`
	ReshardMS           float64 `json:"reshard_ms"`
	RefDeriveAllocsObj  float64 `json:"reference_derive_allocs_per_obj"`
	OptDeriveAllocsObj  float64 `json:"optimized_derive_allocs_per_obj"`
	SinglePNNAllocsOp   float64 `json:"single_pnn_allocs_per_query"`
	BatchPNNAllocsOp    float64 `json:"batch_pnn_allocs_per_query"`
	BatchPNNNSPerQuery  float64 `json:"batch_pnn_ns_per_query"`
	AnswersIdentical    bool    `json:"batch_answers_bitwise_identical"`
	DeriveObjsPerSecond float64 `json:"optimized_derive_objs_per_second"`
}

type deriveReport struct {
	ReportHeader
	Description string         `json:"description"`
	Environment map[string]any `json:"environment"`
	Rows        []deriveRow    `json:"rows"`
	Notes       string         `json:"notes"`
}

// RunDerive measures the output-sensitive derivation fast path against
// the retained naive reference (core.DeriveCRSetsReference) on the same
// hardware: whole-population derivation wall clock before/after (the
// phase that dominates Build, Compact and Reshard), the maintenance
// events it feeds, and the allocation profile of derivation and batched
// PNN. The cr-sets of both paths are compared bitwise — a mismatch
// fails the experiment — and the batch answers are compared against
// single-point queries the same way.
//
// The sweep also writes BENCH_derive.json to the working directory.
func RunDerive(sc Scale, progress func(string)) (*Table, error) {
	t := &Table{
		ID:    "derive",
		Title: "Output-sensitive derivation: naive reference vs fast path",
		Columns: []string{"n", "ref derive", "opt derive", "speedup", "build", "compact",
			"reshard", "derive allocs/obj", "pnn allocs/q", "answers"},
		Notes: []string{
			"ref/opt derive: whole-population cr-set derivation wall clock (naive reference vs incremental/lazy fast path), identical cr-sets verified bitwise",
			"build/compact/reshard: DB maintenance events dominated by derivation (4 spatial shards)",
			"derive allocs/obj: heap allocations per object derivation with a long-lived scratch (reference in parentheses)",
			"pnn allocs/q: allocations per batched PNN query, scratch-pooled with leaf cache (single-point uncached in parentheses)",
		},
	}
	report := deriveReport{
		ReportHeader: newReportHeader("derive"),
		Description:  fmt.Sprintf("Derivation fast-path sweep: uvbench -exp derive -scale %s. Uniform datasets, paper defaults (SeedK=%d, 8 sectors, 256 region samples), strategy IC, 4 spatial shards for the maintenance events.", sc.Name, core.DefaultSeedK),
		Environment: map[string]any{
			"goos":  runtime.GOOS,
			"cpu":   fmt.Sprintf("%d cores", runtime.NumCPU()),
			"go":    runtime.Version(),
			"scale": sc.Name,
		},
		Notes: "Acceptance: derive_speedup_x >= 1.5 with cr_sets_bitwise_identical true at every n, and batch_pnn_allocs_per_query within a handful (answer slices only).",
	}

	for _, n := range []int{800, 4000} {
		cfg := datagen.Config{N: n, Side: sc.Side, Diameter: sc.Diameter, Seed: sc.Seed}
		objs := datagen.Uniform(cfg)
		store, err := uncertain.NewStore(objs, pager.New(uncertain.ObjectPageBytes))
		if err != nil {
			return nil, err
		}
		bopts := core.DefaultBuildOptions()
		tree := core.BuildHelperRTree(store, bopts.Fanout)
		row := deriveRow{N: n}

		progress(fmt.Sprintf("derive: n=%d reference derivation", n))
		t0 := time.Now()
		refSets, err := core.DeriveCRSetsReference(store, cfg.Domain(), tree, bopts)
		if err != nil {
			return nil, err
		}
		refDur := time.Since(t0)
		row.ReferenceDeriveMS = durMS(refDur)

		progress(fmt.Sprintf("derive: n=%d optimized derivation", n))
		t1 := time.Now()
		optSets, _, err := core.DeriveCRSets(store, cfg.Domain(), tree, bopts)
		if err != nil {
			return nil, err
		}
		optDur := time.Since(t1)
		row.OptimizedDeriveMS = durMS(optDur)
		row.SpeedupX = float64(refDur) / float64(optDur)
		row.DeriveObjsPerSecond = float64(n) / optDur.Seconds()
		row.CRSetsIdentical = equalCRSets(refSets, optSets)
		if !row.CRSetsIdentical {
			return nil, fmt.Errorf("derive: cr-sets diverged from the reference at n=%d", n)
		}

		// Allocation profile of one object derivation (rotating through
		// the population so leaf/candidate shapes vary).
		dense := store.Dense()
		scD := core.NewDeriveScratch()
		var i int
		row.OptDeriveAllocsObj = allocsPerRun(64, func() {
			core.DeriveCR(tree, dense[i%n], dense, cfg.Domain(), bopts.SeedK, bopts.SeedSectors, bopts.RegionSamples, scD)
			i++
		})
		i = 0
		row.RefDeriveAllocsObj = allocsPerRun(16, func() {
			core.DeriveCRObjectsReference(tree, dense[i%n], dense, cfg.Domain(), bopts.SeedK, bopts.SeedSectors, bopts.RegionSamples)
			i++
		})

		// Maintenance events dominated by derivation, on a sharded DB.
		progress(fmt.Sprintf("derive: n=%d build/compact/reshard", n))
		tb := time.Now()
		db, err := uvdiagram.Build(objs, cfg.Domain(), &uvdiagram.Options{Shards: 4})
		if err != nil {
			return nil, err
		}
		row.FullBuildMS = durMS(time.Since(tb))
		tc := time.Now()
		if err := db.Compact(context.Background()); err != nil {
			return nil, err
		}
		row.CompactMS = durMS(time.Since(tc))
		tr := time.Now()
		if err := db.Reshard(context.Background()); err != nil {
			return nil, err
		}
		row.ReshardMS = durMS(time.Since(tr))

		// Batched PNN: allocations and latency per query with the
		// scratch pool + leaf caches, answers verified against the
		// single-point path bitwise.
		qs := datagen.Queries(256, sc.Side, sc.Seed+3)
		batchOpts := &uvdiagram.BatchOptions{Workers: 1, CacheSize: 256}
		batch, err := db.BatchNN(qs, batchOpts)
		if err != nil {
			return nil, err
		}
		row.AnswersIdentical = true
		for qi, q := range qs {
			single, _, err := db.PNN(q)
			if err != nil {
				return nil, err
			}
			if fmt.Sprintf("%v", single) != fmt.Sprintf("%v", batch[qi]) {
				row.AnswersIdentical = false
			}
		}
		if !row.AnswersIdentical {
			return nil, fmt.Errorf("derive: batch answers diverged from single-point PNN at n=%d", n)
		}
		row.BatchPNNAllocsOp = allocsPerRun(8, func() {
			if _, err := db.BatchNN(qs, batchOpts); err != nil {
				panic(err)
			}
		}) / float64(len(qs))
		var qi int
		row.SinglePNNAllocsOp = allocsPerRun(256, func() {
			if _, _, err := db.PNN(qs[qi%len(qs)]); err != nil {
				panic(err)
			}
			qi++
		})
		const rounds = 8
		tq := time.Now()
		for r := 0; r < rounds; r++ {
			if _, err := db.BatchNN(qs, batchOpts); err != nil {
				return nil, err
			}
		}
		row.BatchPNNNSPerQuery = float64(time.Since(tq).Nanoseconds()) / float64(rounds*len(qs))

		progress(fmt.Sprintf("derive: n=%d ref %v, opt %v (%.2fx), batch PNN %.2f allocs/q",
			n, refDur.Round(time.Millisecond), optDur.Round(time.Millisecond),
			row.SpeedupX, row.BatchPNNAllocsOp))
		t.AddRow(fmt.Sprintf("%d", n),
			refDur.Round(time.Millisecond).String(),
			optDur.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", row.SpeedupX),
			fmt.Sprintf("%.0fms", row.FullBuildMS),
			fmt.Sprintf("%.0fms", row.CompactMS),
			fmt.Sprintf("%.0fms", row.ReshardMS),
			fmt.Sprintf("%.1f (%.0f)", row.OptDeriveAllocsObj, row.RefDeriveAllocsObj),
			fmt.Sprintf("%.2f (%.0f)", row.BatchPNNAllocsOp, row.SinglePNNAllocsOp),
			"identical")
		report.Rows = append(report.Rows, row)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(DeriveJSONPath, append(buf, '\n'), 0o644); err != nil {
		return nil, err
	}
	progress("derive: wrote " + DeriveJSONPath)
	return t, nil
}

func durMS(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

// allocsPerRun measures the mean heap allocations of one f() call
// (testing.AllocsPerRun's method — single-proc, one warm-up run, a
// Mallocs delta over runs — without linking the testing package into
// the uvbench binary).
func allocsPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm up: one-time lazy initializations are not steady state
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

func equalCRSets(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				return false
			}
		}
	}
	return true
}
