package exp

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"uvdiagram"
	"uvdiagram/internal/datagen"
)

// RunShards sweeps the spatial shard count and measures what sharding
// buys the maintenance path: full-build wall clock (the per-shard
// sub-grids build in parallel from one derivation pass), the wall clock
// of a full background compaction driven shard by shard (the unit of
// auto-compaction), and the worst query latency observed while that
// compaction ran — per-shard shadow builds keep the query-visible pause
// bounded by one shard's population instead of the whole diagram.
//
// Before compacting, the database is churned with a deterministic
// insert/delete mix so the compaction has real slack to clear, exactly
// like a long-running deployment.
func RunShards(sc Scale, progress func(string)) (*Table, error) {
	t := &Table{
		ID:    "shards",
		Title: fmt.Sprintf("Spatial sharding: build + per-shard compaction (n=%d)", sc.MidN),
		Columns: []string{"shards", "grid", "build", "churn", "compact",
			"queries", "worst lat", "mean lat"},
		Notes: []string{
			"build: wall clock of a full Build (shard sub-grids built in parallel from one derivation pass)",
			"churn: 5% of the population deleted and re-inserted before compacting, so compaction clears real slack",
			"compact: wall clock of CompactShard over every shard, one at a time (the background auto-compaction unit)",
			"queries/worst lat/mean lat: in-process PNN traffic riding alongside the compaction; per-shard swaps bound the query-visible pause by shard size",
		},
	}

	for _, s := range []int{1, 2, 4, 8} {
		cfg := datagen.Config{N: sc.MidN, Side: sc.Side, Diameter: sc.Diameter, Seed: sc.Seed}
		objs := datagen.Uniform(cfg)
		progress(fmt.Sprintf("shards: building n=%d with %d shards", sc.MidN, s))
		t0 := time.Now()
		db, err := uvdiagram.Build(objs, cfg.Domain(), &uvdiagram.Options{Shards: s})
		if err != nil {
			return nil, err
		}
		buildDur := time.Since(t0)

		// Deterministic churn: delete every 20th object, then insert the
		// same number of fresh ones, accumulating slack in every shard
		// the victims' neighborhoods reach.
		rng := rand.New(rand.NewSource(sc.Seed + 11))
		var churned int
		tc := time.Now()
		for id := int32(0); int(id) < len(objs); id += 20 {
			if err := db.Delete(id); err != nil {
				return nil, err
			}
			churned++
		}
		for i := 0; i < churned; i++ {
			o := uvdiagram.NewObject(db.NextID(),
				rng.Float64()*sc.Side, rng.Float64()*sc.Side, sc.Diameter/2, nil)
			if err := db.Insert(o); err != nil {
				return nil, err
			}
		}
		churnDur := time.Since(tc)

		// Compact shard by shard off-thread while query traffic rides
		// alongside, tracking the worst single-query latency.
		compactDone := make(chan error, 1)
		start := time.Now()
		go func() {
			for i := 0; i < db.Shards(); i++ {
				if err := db.CompactShard(context.Background(), i); err != nil {
					compactDone <- err
					return
				}
			}
			compactDone <- nil
		}()
		queries, worst, total, err := queryLoad(db, rng, sc.Side, compactDone)
		if err != nil {
			return nil, err
		}
		compactDur := time.Since(start)
		gx, gy := db.ShardGrid()
		mean := meanLatency(total, queries)
		progress(fmt.Sprintf("shards: S=%d build %v, compact %v, worst query %v",
			s, buildDur.Round(time.Millisecond), compactDur.Round(time.Millisecond),
			worst.Round(time.Microsecond)))
		t.AddRow(fmt.Sprintf("%d", s), fmt.Sprintf("%d×%d", gx, gy),
			buildDur.Round(time.Millisecond).String(),
			churnDur.Round(time.Millisecond).String(),
			compactDur.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", queries),
			worst.Round(time.Microsecond).String(),
			mean.Round(time.Microsecond).String())
	}
	return t, nil
}
