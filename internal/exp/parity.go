package exp

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"uvdiagram/internal/core"
	"uvdiagram/internal/core3"
	"uvdiagram/internal/datagen"
	"uvdiagram/internal/geom3"
	"uvdiagram/internal/pager"
	"uvdiagram/internal/uncertain"
	"uvdiagram/internal/uncertain3"
)

// OrderKJSONPath and UV3JSONPath are where RunParity records the
// engine-parity measurements (the CI and README baseline artifacts of
// the order-k and 3D fast paths).
const (
	OrderKJSONPath = "BENCH_orderk.json"
	UV3JSONPath    = "BENCH_uv3.json"
)

// parityRow is one engine's reference-vs-fast-path measurement.
type parityRow struct {
	N                int     `json:"n"`
	Workers          int     `json:"workers"`
	ReferenceBuildMS float64 `json:"reference_build_ms"`
	OptimizedBuildMS float64 `json:"optimized_build_ms"`
	SpeedupX         float64 `json:"build_speedup_x"`
	BuildNSPerObj    float64 `json:"build_ns_per_obj"`
	RefAllocsPerObj  float64 `json:"reference_derive_allocs_per_obj"`
	OptAllocsPerObj  float64 `json:"optimized_derive_allocs_per_obj"`
	CRSetsIdentical  bool    `json:"cr_sets_bitwise_identical"`
	StatsIdentical   bool    `json:"index_stats_identical"`
	AnswersIdentical bool    `json:"query_answers_bitwise_identical"`
}

type parityReport struct {
	ReportHeader
	Description string         `json:"description"`
	Environment map[string]any `json:"environment"`
	Rows        []parityRow    `json:"rows"`
	Notes       string         `json:"notes"`
}

func parityEnvironment(sc Scale) map[string]any {
	return map[string]any{
		"goos":  runtime.GOOS,
		"cpu":   fmt.Sprintf("%d cores", runtime.NumCPU()),
		"go":    runtime.Version(),
		"scale": sc.Name,
	}
}

// RunParity measures the order-k and 3D builds on the parallel,
// scratch-threaded fast path against the retained reference loops
// (core.BuildOrderKReference, core3.Build3Reference) on the same
// hardware, verifying bitwise-identical cr-sets, index stats and query
// answers along the way — a mismatch fails the experiment. It writes
// BENCH_orderk.json and BENCH_uv3.json.
func RunParity(sc Scale, progress func(string)) (*Table, error) {
	t := &Table{
		ID:    "parity",
		Title: "Engine parity: order-k and 3D builds, reference vs parallel fast path",
		Columns: []string{"engine", "n", "workers", "ref build", "opt build", "speedup",
			"derive allocs/obj", "answers"},
		Notes: []string{
			"ref/opt build: full index construction wall clock (retained single-threaded reference vs Workers-parallel scratch-threaded fast path)",
			"derive allocs/obj: heap allocations per object derivation with a long-lived scratch (reference in parentheses)",
			"cr-sets, index stats and query answers (PossibleKNN / 3D PNN) verified bitwise identical between the paths",
		},
	}
	const workers = 4

	// Order-k engine at uvbench scale.
	kRow, err := runOrderKParity(sc, workers, progress)
	if err != nil {
		return nil, err
	}
	t.AddRow("orderk", fmt.Sprintf("%d", kRow.N), fmt.Sprintf("%d", workers),
		fmt.Sprintf("%.0fms", kRow.ReferenceBuildMS), fmt.Sprintf("%.0fms", kRow.OptimizedBuildMS),
		fmt.Sprintf("%.2fx", kRow.SpeedupX),
		fmt.Sprintf("%.1f (%.0f)", kRow.OptAllocsPerObj, kRow.RefAllocsPerObj), "identical")
	kReport := parityReport{
		ReportHeader: newReportHeader("orderk"),
		Description:  fmt.Sprintf("Order-k build parity sweep: uvbench -exp parity -scale %s. Uniform dataset, k=2, paper defaults (256 region samples), BuildOrderK at Workers=%d vs BuildOrderKReference.", sc.Name, workers),
		Environment:  parityEnvironment(sc),
		Rows:         []parityRow{*kRow},
		Notes:        "Acceptance: build_speedup_x >= 2 at Workers=4 with every *_identical flag true and optimized allocs/obj at least 10x below the reference.",
	}
	if err := writeParityReport(OrderKJSONPath, kReport, progress); err != nil {
		return nil, err
	}

	// 3D engine at uvbench scale.
	row3, err := runUV3Parity(sc, workers, progress)
	if err != nil {
		return nil, err
	}
	t.AddRow("uv3", fmt.Sprintf("%d", row3.N), fmt.Sprintf("%d", workers),
		fmt.Sprintf("%.0fms", row3.ReferenceBuildMS), fmt.Sprintf("%.0fms", row3.OptimizedBuildMS),
		fmt.Sprintf("%.2fx", row3.SpeedupX),
		fmt.Sprintf("%.1f (%.0f)", row3.OptAllocsPerObj, row3.RefAllocsPerObj), "identical")
	report3 := parityReport{
		ReportHeader: newReportHeader("uv3"),
		Description:  fmt.Sprintf("3D build parity sweep: uvbench -exp parity -scale %s. Uniform spheres, 1024 Fibonacci directions, Build3 at Workers=%d vs Build3Reference.", sc.Name, workers),
		Environment:  parityEnvironment(sc),
		Rows:         []parityRow{*row3},
		Notes:        "Acceptance: build_speedup_x >= 2 at Workers=4 with every *_identical flag true and optimized allocs/obj at least 10x below the reference.",
	}
	if err := writeParityReport(UV3JSONPath, report3, progress); err != nil {
		return nil, err
	}
	return t, nil
}

func runOrderKParity(sc Scale, workers int, progress func(string)) (*parityRow, error) {
	n := sc.MidN
	const k = 2
	cfg := datagen.Config{N: n, Side: sc.Side, Diameter: sc.Diameter, Seed: sc.Seed}
	objs := datagen.Uniform(cfg)
	domain := cfg.Domain()
	store, err := uncertain.NewStore(objs, pager.New(uncertain.ObjectPageBytes))
	if err != nil {
		return nil, err
	}
	opts := core.DefaultBuildOptions()
	tree := core.BuildHelperRTree(store, opts.Fanout)
	row := &parityRow{N: n, Workers: workers}

	progress(fmt.Sprintf("parity: orderk n=%d k=%d reference build", n, k))
	t0 := time.Now()
	refIx, refStats, err := core.BuildOrderKReference(store, domain, tree, k, opts)
	if err != nil {
		return nil, err
	}
	refDur := time.Since(t0)
	row.ReferenceBuildMS = durMS(refDur)

	progress(fmt.Sprintf("parity: orderk n=%d k=%d fast-path build (Workers=%d)", n, k, workers))
	opts.Workers = workers
	t1 := time.Now()
	ix, stats, err := core.BuildOrderK(store, domain, tree, k, opts)
	if err != nil {
		return nil, err
	}
	optDur := time.Since(t1)
	row.OptimizedBuildMS = durMS(optDur)
	row.SpeedupX = float64(refDur) / float64(optDur)
	row.BuildNSPerObj = float64(optDur.Nanoseconds()) / float64(n)

	row.CRSetsIdentical = true
	for id := int32(0); int(id) < n; id++ {
		if !equalIDSlices(ix.CRObjects(id), refIx.CRObjects(id)) {
			row.CRSetsIdentical = false
		}
	}
	row.StatsIdentical = stats.SumCR == refStats.SumCR && stats.Index == refStats.Index
	row.AnswersIdentical = true
	for _, q := range datagen.Queries(64, sc.Side, sc.Seed+5) {
		got, _, err := ix.PossibleKNN(q)
		if err != nil {
			return nil, err
		}
		want, _, err := refIx.PossibleKNN(q)
		if err != nil {
			return nil, err
		}
		if !equalIDSlices(got, want) {
			row.AnswersIdentical = false
		}
	}
	if !row.CRSetsIdentical || !row.StatsIdentical || !row.AnswersIdentical {
		return nil, fmt.Errorf("parity: order-k fast path diverged from the reference (crSets=%v stats=%v answers=%v)",
			row.CRSetsIdentical, row.StatsIdentical, row.AnswersIdentical)
	}

	// Steady-state allocation profile of one object derivation: a first
	// pass over the measured objects saturates the scratch pools (bound
	// rows, candidate buffers) so the measured pass sees the arena a
	// long-running worker reaches, not its growth.
	dense := store.Dense()
	scD := core.NewDeriveScratch()
	for w := 0; w < 64; w++ {
		core.DeriveOrderKCR(tree, dense[w%n], dense, domain, k, opts.RegionSamples, scD)
	}
	var i int
	row.OptAllocsPerObj = allocsPerRun(64, func() {
		core.DeriveOrderKCR(tree, dense[i%n], dense, domain, k, opts.RegionSamples, scD)
		i++
	})
	i = 0
	row.RefAllocsPerObj = allocsPerRun(16, func() {
		core.DeriveOrderKCRReference(tree, dense[i%n], dense, domain, k, opts.RegionSamples)
		i++
	})
	progress(fmt.Sprintf("parity: orderk ref %v, opt %v (%.2fx), allocs/obj %.1f (ref %.0f)",
		refDur.Round(time.Millisecond), optDur.Round(time.Millisecond), row.SpeedupX,
		row.OptAllocsPerObj, row.RefAllocsPerObj))
	return row, nil
}

func runUV3Parity(sc Scale, workers int, progress func(string)) (*parityRow, error) {
	n := 1500
	if sc.MidN < n {
		n = sc.MidN
	}
	side := 1000.0
	objs := uniformObjs3(n, side, sc.Seed+6)
	domain := geom3.Cube(side)
	opts := core3.DefaultOptions3()
	row := &parityRow{N: n, Workers: workers}

	progress(fmt.Sprintf("parity: uv3 n=%d reference build", n))
	t0 := time.Now()
	refIx, refStats, err := core3.Build3Reference(objs, domain, opts)
	if err != nil {
		return nil, err
	}
	refDur := time.Since(t0)
	row.ReferenceBuildMS = durMS(refDur)

	progress(fmt.Sprintf("parity: uv3 n=%d fast-path build (Workers=%d)", n, workers))
	opts.Workers = workers
	t1 := time.Now()
	ix, stats, err := core3.Build3(objs, domain, opts)
	if err != nil {
		return nil, err
	}
	optDur := time.Since(t1)
	row.OptimizedBuildMS = durMS(optDur)
	row.SpeedupX = float64(refDur) / float64(optDur)
	row.BuildNSPerObj = float64(optDur.Nanoseconds()) / float64(n)

	row.CRSetsIdentical = true
	for id := int32(0); int(id) < n; id++ {
		if !equalIDSlices(ix.CRObjects(id), refIx.CRObjects(id)) {
			row.CRSetsIdentical = false
		}
	}
	row.StatsIdentical = stats.SumCR == refStats.SumCR && stats.Index == refStats.Index
	row.AnswersIdentical = true
	for qi := 0; qi < 32; qi++ {
		q := geom3.P3(side*float64(qi*7%32)/32, side*float64(qi*11%32)/32, side*float64(qi*13%32)/32)
		got, _, err := ix.PNN(q)
		if err != nil {
			return nil, err
		}
		want, _, err := refIx.PNN(q)
		if err != nil {
			return nil, err
		}
		if len(got) != len(want) {
			row.AnswersIdentical = false
			continue
		}
		for j := range got {
			if got[j] != want[j] {
				row.AnswersIdentical = false
			}
		}
	}
	if !row.CRSetsIdentical || !row.StatsIdentical || !row.AnswersIdentical {
		return nil, fmt.Errorf("parity: 3D fast path diverged from the reference (crSets=%v stats=%v answers=%v)",
			row.CRSetsIdentical, row.StatsIdentical, row.AnswersIdentical)
	}

	grid := core3.NewHashGrid3(objs, domain, 0)
	dirs := geom3.FibonacciSphere(opts.Dirs)
	sc3 := core3.NewDeriveScratch3()
	for w := 0; w < 64; w++ { // saturate the scratch pools first (see runOrderKParity)
		core3.DeriveCR3(grid, objs[w%n], objs, domain, dirs, sc3)
	}
	var i int
	row.OptAllocsPerObj = allocsPerRun(64, func() {
		core3.DeriveCR3(grid, objs[i%n], objs, domain, dirs, sc3)
		i++
	})
	i = 0
	row.RefAllocsPerObj = allocsPerRun(16, func() {
		core3.DeriveCR3Reference(grid, objs[i%n], objs, domain, dirs)
		i++
	})
	progress(fmt.Sprintf("parity: uv3 ref %v, opt %v (%.2fx), allocs/obj %.1f (ref %.0f)",
		refDur.Round(time.Millisecond), optDur.Round(time.Millisecond), row.SpeedupX,
		row.OptAllocsPerObj, row.RefAllocsPerObj))
	return row, nil
}

// uniformObjs3 generates a deterministic uniform 3D population (the 3D
// counterpart of datagen.Uniform at uvbench scale).
func uniformObjs3(n int, side float64, seed int64) []uncertain3.Object3 {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]uncertain3.Object3, n)
	for i := range objs {
		r := 2 + rng.Float64()*4
		objs[i] = uncertain3.New3(int32(i), geom3.Sphere{
			C: geom3.P3(r+rng.Float64()*(side-2*r), r+rng.Float64()*(side-2*r), r+rng.Float64()*(side-2*r)),
			R: r,
		}, uncertain3.PaperGaussian3())
	}
	return objs
}

func equalIDSlices(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func writeParityReport(path string, report parityReport, progress func(string)) error {
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	progress("parity: wrote " + path)
	return nil
}
