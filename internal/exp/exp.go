// Package exp is the benchmark harness that regenerates every table and
// figure of the paper's evaluation (Section VI). Each runner returns
// paper-style tables; cmd/uvbench prints them and EXPERIMENTS.md records
// paper-reported versus measured values.
package exp

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

// ReportHeader is the top-level schema shared by every BENCH_*.json
// artifact the harness writes: the experiment name, the run date and
// the host it ran on. Embedding it (untagged) flattens the fields into
// the report's top level, so every report can be keyed and compared
// with the same three fields.
type ReportHeader struct {
	Name string `json:"name"`
	Date string `json:"date"`
	Host string `json:"host"`
}

// newReportHeader stamps a report with the experiment name, today's UTC
// date and the hostname.
func newReportHeader(name string) ReportHeader {
	host, _ := os.Hostname()
	return ReportHeader{Name: name, Date: time.Now().UTC().Format("2006-01-02"), Host: host}
}

// Scale bundles the workload parameters of an experiment sweep. The
// paper's exact scale (10k–80k objects, 50 queries) takes tens of
// minutes in this in-process reproduction, so smaller presets exist for
// quick runs and for `go test -bench`.
type Scale struct {
	Name       string
	Sizes      []int // |O| sweep (Figures 6(a,b), 7(a–e))
	BasicSizes []int // sizes at which Basic is actually executed
	MidN       int   // dataset size for fixed-size experiments
	Queries    int   // PNN queries per configuration
	Side       float64
	Diameter   float64
	Diameters  []float64 // Figure 6(d), 7(f)
	Sigmas     []float64 // Figure 7(g)
	RangeSizes []float64 // Figure 7(h)
	Thetas     []float64 // Tθ sensitivity
	RealFrac   float64   // fraction of the real datasets' sizes
	SeedK      int
	Seed       int64
	// Shards is the spatial shard count the churn experiment builds its
	// database with (0 or 1 = unsharded). The shards experiment sweeps
	// its own counts and ignores this.
	Shards int
}

func (sc Scale) shardCount() int {
	if sc.Shards <= 0 {
		return 1
	}
	return sc.Shards
}

// Small is the quick-look preset (seconds to a few minutes).
func Small() Scale {
	return Scale{
		Name:       "small",
		Sizes:      []int{1000, 2000, 4000, 8000},
		BasicSizes: []int{250, 500, 1000},
		MidN:       4000,
		Queries:    20,
		Side:       10000,
		Diameter:   40,
		Diameters:  []float64{20, 40, 60, 80, 100},
		Sigmas:     []float64{1500, 2000, 2500, 3000, 3500},
		RangeSizes: []float64{100, 200, 300, 400, 500},
		Thetas:     []float64{0.2, 0.4, 0.6, 0.8, 1.0},
		RealFrac:   0.1,
		SeedK:      100,
		Seed:       20100301,
	}
}

// Medium is the preset used to fill EXPERIMENTS.md: large enough for
// the paper's shapes to be visible, small enough to run on a laptop
// core in well under an hour.
func Medium() Scale {
	s := Small()
	s.Name = "medium"
	s.Sizes = []int{5000, 10000, 20000}
	s.BasicSizes = []int{400, 800}
	s.MidN = 10000
	s.Queries = 30
	s.Diameters = []float64{20, 60, 100}
	s.Thetas = []float64{0.2, 0.6, 1.0}
	s.RealFrac = 0.25
	s.SeedK = 300
	return s
}

// Paper is the full scale of Section VI-A.
func Paper() Scale {
	s := Small()
	s.Name = "paper"
	s.Sizes = []int{10000, 20000, 30000, 40000, 50000, 60000, 70000, 80000}
	s.BasicSizes = []int{1000, 2000, 4000}
	s.MidN = 30000
	s.Queries = 50
	s.RealFrac = 1.0
	s.SeedK = 300
	return s
}

// ScaleByName resolves a preset name.
func ScaleByName(name string) (Scale, error) {
	switch strings.ToLower(name) {
	case "small", "":
		return Small(), nil
	case "medium":
		return Medium(), nil
	case "paper":
		return Paper(), nil
	}
	return Scale{}, fmt.Errorf("exp: unknown scale %q (small, medium, paper)", name)
}

// Table is a printable experiment result.
type Table struct {
	ID      string // experiment id, e.g. "fig6a"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(cell, widths[i]))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func ms(d float64) string  { return fmt.Sprintf("%.2f", d) }
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
