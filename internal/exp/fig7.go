package exp

import (
	"fmt"

	"uvdiagram/internal/core"
	"uvdiagram/internal/datagen"
	"uvdiagram/internal/geom"
	"uvdiagram/internal/pager"
	"uvdiagram/internal/uncertain"
)

// buildWith runs one core.Build with the given strategy and returns its
// statistics.
func buildWith(objs []uncertain.Object, domain geom.Rect, strategy core.Strategy, sc Scale) (core.BuildStats, error) {
	store, err := uncertain.NewStore(objs, pager.New(uncertain.ObjectPageBytes))
	if err != nil {
		return core.BuildStats{}, err
	}
	opts := core.DefaultBuildOptions()
	opts.Strategy = strategy
	opts.SeedK = sc.SeedK
	// Half the default angular resolution for exact cells: the ICR/Basic
	// timings keep their shape and the sweeps stay laptop-sized.
	opts.CellSamples = 360
	tree := core.BuildHelperRTree(store, opts.Fanout)
	_, stats, err := core.Build(store, domain, tree, opts)
	return stats, err
}

// fitQuadratic least-squares fits t ≈ a·n² through the origin and
// returns a (for extrapolating Basic's cost, Figure 7(a)).
func fitQuadratic(ns []int, secs []float64) float64 {
	num, den := 0.0, 0.0
	for i := range ns {
		x := float64(ns[i]) * float64(ns[i])
		num += x * secs[i]
		den += x * x
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// RunFig7Construction regenerates Figures 7(a)–7(e): construction cost
// of Basic vs ICR vs IC, pruning ratios, and time breakdowns. Basic is
// executed only at sc.BasicSizes and extrapolated quadratically to the
// sweep sizes (the paper reports 97 hours at 50k — the point of the
// figure is the growth curve, which the fit preserves).
func RunFig7Construction(sc Scale, progress func(string)) ([]*Table, error) {
	if progress == nil {
		progress = func(string) {}
	}
	a := &Table{ID: "fig7a", Title: "construction time vs |O|: Basic vs ICR vs IC (paper: Basic explodes; 97h at 50k)",
		Columns: []string{"|O|", "Tc(Basic) s", "Tc(ICR) s", "Tc(IC) s"}}
	bt := &Table{ID: "fig7b", Title: "pruning ratio pc vs |O| (paper at 40k: I 90.9%, C 95.5%)",
		Columns: []string{"|O|", "I-pruning", "C-pruning"}}
	c := &Table{ID: "fig7c", Title: "Tc of ICR vs IC (paper: IC ≈ 10% of ICR at 70k)",
		Columns: []string{"|O|", "Tc(ICR) s", "Tc(IC) s", "IC/ICR"}}
	d := &Table{ID: "fig7d", Title: "ICR time breakdown (paper: generating r-objects dominates)",
		Columns: []string{"|O|", "I+C pruning", "gen r-object", "indexing"}}
	e := &Table{ID: "fig7e", Title: "IC time breakdown (paper: pruning + indexing only)",
		Columns: []string{"|O|", "I+C pruning", "indexing"}}

	// Measure Basic at its small sizes.
	var basicNs []int
	var basicSecs []float64
	basicAt := map[int]float64{}
	for _, n := range sc.BasicSizes {
		cfg := datagen.Config{N: n, Side: sc.Side, Diameter: sc.Diameter, Seed: sc.Seed}
		objs := datagen.Uniform(cfg)
		st, err := buildWith(objs, cfg.Domain(), core.StrategyBasic, sc)
		if err != nil {
			return nil, err
		}
		basicNs = append(basicNs, n)
		basicSecs = append(basicSecs, st.TotalDur.Seconds())
		basicAt[n] = st.TotalDur.Seconds()
		progress(fmt.Sprintf("fig7a Basic |O|=%d done (%.1fs)", n, st.TotalDur.Seconds()))
	}
	quad := fitQuadratic(basicNs, basicSecs)

	for _, n := range sc.Sizes {
		cfg := datagen.Config{N: n, Side: sc.Side, Diameter: sc.Diameter, Seed: sc.Seed}
		objs := datagen.Uniform(cfg)
		domain := cfg.Domain()
		icr, err := buildWith(objs, domain, core.StrategyICR, sc)
		if err != nil {
			return nil, err
		}
		ic, err := buildWith(objs, domain, core.StrategyIC, sc)
		if err != nil {
			return nil, err
		}
		basicStr := fmt.Sprintf("~%.1f (extrap)", quad*float64(n)*float64(n))
		if secs, ok := basicAt[n]; ok {
			basicStr = fmt.Sprintf("%.1f", secs)
		}
		icrS := icr.TotalDur.Seconds()
		icS := ic.TotalDur.Seconds()
		a.AddRow(fmt.Sprintf("%d", n), basicStr, fmt.Sprintf("%.1f", icrS), fmt.Sprintf("%.1f", icS))
		bt.AddRow(fmt.Sprintf("%d", n), pct(ic.IPruneRatio()), pct(ic.CPruneRatio()))
		c.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.1f", icrS), fmt.Sprintf("%.1f", icS),
			fmt.Sprintf("%.2f", icS/icrS))
		prune := icr.SeedDur + icr.PruneDur
		d.AddRow(fmt.Sprintf("%d", n),
			pct(prune.Seconds()/icrS),
			pct(icr.RefineDur.Seconds()/icrS),
			pct(icr.IndexDur.Seconds()/icrS))
		pruneIC := ic.SeedDur + ic.PruneDur
		e.AddRow(fmt.Sprintf("%d", n),
			pct(pruneIC.Seconds()/icS),
			pct(ic.IndexDur.Seconds()/icS))
		progress(fmt.Sprintf("fig7a-e |O|=%d done (ICR %.1fs, IC %.1fs)", n, icrS, icS))
	}
	for _, n := range sc.BasicSizes {
		a.Notes = append(a.Notes, fmt.Sprintf("Basic measured at |O|=%d: %.1fs", n, basicAt[n]))
	}
	a.Notes = append(a.Notes, fmt.Sprintf("Basic extrapolation: Tc ≈ %.3g·n² s (quadratic fit)", quad))
	return []*Table{a, bt, c, d, e}, nil
}

// RunFig7f regenerates Figure 7(f): construction time vs uncertainty
// region size, ICR vs IC (paper: ICR grows sharply, IC stays flat).
func RunFig7f(sc Scale, progress func(string)) (*Table, error) {
	if progress == nil {
		progress = func(string) {}
	}
	t := &Table{ID: "fig7f", Title: fmt.Sprintf("construction time vs uncertainty diameter at |O|=%d", sc.MidN),
		Columns: []string{"diameter", "Tc(ICR) s", "Tc(IC) s"}}
	for _, dia := range sc.Diameters {
		cfg := datagen.Config{N: sc.MidN, Side: sc.Side, Diameter: dia, Seed: sc.Seed + 3}
		objs := datagen.Uniform(cfg)
		domain := cfg.Domain()
		icr, err := buildWith(objs, domain, core.StrategyICR, sc)
		if err != nil {
			return nil, err
		}
		ic, err := buildWith(objs, domain, core.StrategyIC, sc)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0f", dia),
			fmt.Sprintf("%.1f", icr.TotalDur.Seconds()),
			fmt.Sprintf("%.1f", ic.TotalDur.Seconds()))
		progress(fmt.Sprintf("fig7f diameter=%.0f done", dia))
	}
	return t, nil
}

// RunFig7g regenerates Figure 7(g): IC construction time under skewed
// center distributions (paper: smaller σ — more skew — costs more).
func RunFig7g(sc Scale, progress func(string)) (*Table, error) {
	if progress == nil {
		progress = func(string) {}
	}
	t := &Table{ID: "fig7g", Title: fmt.Sprintf("IC construction time vs center skew σ at |O|=%d", sc.MidN),
		Columns: []string{"sigma", "Tc(IC) s", "avg |CR|"}}
	for _, sigma := range sc.Sigmas {
		cfg := datagen.Config{N: sc.MidN, Side: sc.Side, Diameter: sc.Diameter, Seed: sc.Seed + 5}
		objs := datagen.Skewed(cfg, sigma)
		ic, err := buildWith(objs, cfg.Domain(), core.StrategyIC, sc)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0f", sigma),
			fmt.Sprintf("%.1f", ic.TotalDur.Seconds()),
			fmt.Sprintf("%.1f", ic.AvgCR()))
		progress(fmt.Sprintf("fig7g sigma=%.0f done", sigma))
	}
	return t, nil
}

// RunFig7h regenerates Figure 7(h): UV-partition query time vs query
// range size (paper: grows with the range, stays small).
func RunFig7h(sc Scale, progress func(string)) (*Table, error) {
	if progress == nil {
		progress = func(string) {}
	}
	t := &Table{ID: "fig7h", Title: fmt.Sprintf("UV-partition query time vs range size at |O|=%d", sc.MidN),
		Columns: []string{"range size", "Tq ms", "avg partitions"}}
	cfg := datagen.Config{N: sc.MidN, Side: sc.Side, Diameter: sc.Diameter, Seed: sc.Seed + 9}
	objs := datagen.Uniform(cfg)
	store, err := uncertain.NewStore(objs, pager.New(uncertain.ObjectPageBytes))
	if err != nil {
		return nil, err
	}
	opts := core.DefaultBuildOptions()
	opts.SeedK = sc.SeedK
	ix, _, err := core.Build(store, cfg.Domain(), nil, opts)
	if err != nil {
		return nil, err
	}
	centers := datagen.Queries(sc.Queries, sc.Side, sc.Seed+13)
	for _, size := range sc.RangeSizes {
		var totalMs float64
		var totalParts int
		for _, q := range centers {
			r := geom.NewRect(
				clampF(q.X-size/2, 0, sc.Side), clampF(q.Y-size/2, 0, sc.Side),
				clampF(q.X+size/2, 0, sc.Side), clampF(q.Y+size/2, 0, sc.Side))
			parts, dur := ix.Partitions(r)
			totalMs += dur.Seconds() * 1000
			totalParts += len(parts)
		}
		n := float64(len(centers))
		t.AddRow(fmt.Sprintf("%.0f", size), fmt.Sprintf("%.3f", totalMs/n),
			fmt.Sprintf("%.1f", float64(totalParts)/n))
		progress(fmt.Sprintf("fig7h range=%.0f done", size))
	}
	return t, nil
}

// RunSensitivity regenerates the Tθ sensitivity test of Section VI-B.1:
// a wide range of Tθ barely changes the index, while very small values
// suppress splitting and degrade the structure into page lists.
func RunSensitivity(sc Scale, progress func(string)) (*Table, error) {
	if progress == nil {
		progress = func(string) {}
	}
	t := &Table{ID: "sensitivity", Title: fmt.Sprintf("Tθ sensitivity at |O|=%d", sc.MidN),
		Columns: []string{"Tθ", "Tc(IC) s", "non-leaf", "avg leaf entries", "Tq(UVD) ms"}}
	cfg := datagen.Config{N: sc.MidN, Side: sc.Side, Diameter: sc.Diameter, Seed: sc.Seed + 17}
	objs := datagen.Uniform(cfg)
	store, err := uncertain.NewStore(objs, pager.New(uncertain.ObjectPageBytes))
	if err != nil {
		return nil, err
	}
	tree := core.BuildHelperRTree(store, core.DefaultBuildOptions().Fanout)
	queries := datagen.Queries(sc.Queries, sc.Side, sc.Seed+19)
	for _, theta := range sc.Thetas {
		opts := core.DefaultBuildOptions()
		opts.SeedK = sc.SeedK
		opts.Index.SplitTheta = theta
		ix, stats, err := core.Build(store, cfg.Domain(), tree, opts)
		if err != nil {
			return nil, err
		}
		var totalMs float64
		for _, q := range queries {
			_, st, err := ix.PNN(q)
			if err != nil {
				return nil, err
			}
			totalMs += st.Total().Seconds() * 1000
		}
		ist := stats.Index
		t.AddRow(fmt.Sprintf("%.1f", theta),
			fmt.Sprintf("%.1f", stats.TotalDur.Seconds()),
			fmt.Sprintf("%d", ist.NonLeaf),
			fmt.Sprintf("%.1f", ist.AvgEntries),
			ms(totalMs/float64(len(queries))))
		progress(fmt.Sprintf("sensitivity Tθ=%.1f done", theta))
	}
	return t, nil
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
