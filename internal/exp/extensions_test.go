package exp

import (
	"bytes"
	"testing"
)

func TestRunExtensionsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("extension runner in -short mode")
	}
	sc := tinyScale()
	tables, err := RunExtensions(sc, func(string) {})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("got %d tables, want 4", len(tables))
	}
	wantIDs := []string{"ext-rnn", "ext-orderk", "ext-continuous", "ext-3d"}
	for i, tb := range tables {
		if tb.ID != wantIDs[i] {
			t.Fatalf("table %d has ID %q, want %q", i, tb.ID, wantIDs[i])
		}
		if len(tb.Rows) == 0 {
			t.Fatalf("table %s has no rows", tb.ID)
		}
		var buf bytes.Buffer
		if err := tb.Fprint(&buf); err != nil {
			t.Fatalf("printing %s: %v", tb.ID, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("table %s printed nothing", tb.ID)
		}
	}

	// The RNN table must show at least one answer on average (a query
	// point always has some possible reverse neighbor in a uniform
	// dataset of this density).
	rnnTable := tables[0]
	for _, row := range rnnTable.Rows {
		if parse(t, row[4]) <= 0 {
			t.Fatalf("RNN row %v reports zero answers", row)
		}
	}

	// Continuous: saved percentage is within [0, 100].
	for _, row := range tables[2].Rows {
		if v := parse(t, row[3]); v < 0 || v > 100 {
			t.Fatalf("continuous row %v has saved%% = %v", row, v)
		}
	}
}
