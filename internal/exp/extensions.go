package exp

import (
	"fmt"
	"math/rand"
	"time"

	"uvdiagram"
	"uvdiagram/internal/datagen"
	"uvdiagram/internal/geom"
	"uvdiagram/internal/rnn"
)

// RunExtensions measures the future-work extensions (DESIGN.md §6):
// reverse nearest-neighbor queries, the order-k index versus the
// R-tree possible-k-NN path, continuous PNN safe regions, and the 3D
// UV-diagram. These have no paper counterpart — the tables document
// behavior, not reproduction targets.
func RunExtensions(sc Scale, progress func(string)) ([]*Table, error) {
	var tables []*Table

	// --- Reverse nearest neighbors vs |O|. ---
	t1 := &Table{
		ID:      "ext-rnn",
		Title:   "Extension: PRNN query (reverse nearest neighbors)",
		Columns: []string{"|O|", "Tq(ms)", "cutoff D2", "cands", "answers"},
	}
	for _, n := range sc.Sizes {
		progress(fmt.Sprintf("extensions: RNN at n=%d", n))
		cfg := datagen.Config{N: n, Side: sc.Side, Diameter: sc.Diameter, Seed: sc.Seed}
		objs := datagen.Uniform(cfg)
		db, err := uvdiagram.Build(objs, cfg.Domain(), &uvdiagram.Options{SeedK: sc.SeedK})
		if err != nil {
			return nil, err
		}
		queries := datagen.Queries(sc.Queries, sc.Side, sc.Seed+1)
		var dur time.Duration
		var cutoff, cands, answers float64
		for _, q := range queries {
			t0 := time.Now()
			_, st := rnn.PossibleRNN(objs, db.RTree(), q, rnn.Options{})
			dur += time.Since(t0)
			cutoff += st.Cutoff
			cands += float64(st.Candidates)
			answers += float64(st.Answers)
		}
		nq := float64(len(queries))
		t1.AddRow(fmt.Sprintf("%d", n),
			ms(dur.Seconds()*1000/nq),
			fmt.Sprintf("%.0f", cutoff/nq),
			fmt.Sprintf("%.1f", cands/nq),
			fmt.Sprintf("%.2f", answers/nq))
	}
	tables = append(tables, t1)

	// --- Possible-k-NN: order-k index vs the R-tree path. ---
	progress("extensions: order-k index")
	cfg := datagen.Config{N: sc.MidN, Side: sc.Side, Diameter: sc.Diameter, Seed: sc.Seed}
	objs := datagen.Uniform(cfg)
	db, err := uvdiagram.Build(objs, cfg.Domain(), &uvdiagram.Options{SeedK: sc.SeedK})
	if err != nil {
		return nil, err
	}
	queries := datagen.Queries(sc.Queries, sc.Side, sc.Seed+2)
	t2 := &Table{
		ID:      "ext-orderk",
		Title:   fmt.Sprintf("Extension: possible-k-NN at |O|=%d", sc.MidN),
		Columns: []string{"k", "Tc(orderK build)", "Tq(orderK) µs", "Tq(R-tree) µs", "answers"},
	}
	for _, k := range []int{1, 2, 4} {
		b0 := time.Now()
		ix, err := db.NewOrderKIndex(k)
		if err != nil {
			return nil, err
		}
		build := time.Since(b0)
		var durIx, durRT time.Duration
		var nAns int
		for _, q := range queries {
			t0 := time.Now()
			ids, _, err := ix.PossibleKNN(q)
			if err != nil {
				return nil, err
			}
			durIx += time.Since(t0)
			nAns += len(ids)
			t0 = time.Now()
			if _, err := db.PossibleKNN(q, k); err != nil {
				return nil, err
			}
			durRT += time.Since(t0)
		}
		nq := float64(len(queries))
		t2.AddRow(fmt.Sprintf("%d", k),
			build.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", durIx.Seconds()*1e6/nq),
			fmt.Sprintf("%.1f", durRT.Seconds()*1e6/nq),
			fmt.Sprintf("%.1f", float64(nAns)/nq))
	}
	tables = append(tables, t2)

	// --- Continuous PNN: safe-region savings on a random walk. ---
	progress("extensions: continuous PNN")
	t3 := &Table{
		ID:      "ext-continuous",
		Title:   fmt.Sprintf("Extension: continuous PNN (random walk, |O|=%d)", sc.MidN),
		Columns: []string{"step", "moves", "recomputes", "saved", "Tmove(µs)", "Tnaive(µs)"},
	}
	for _, step := range []float64{2, 10, 50} {
		rng := rand.New(rand.NewSource(sc.Seed + 3))
		q := geom.Pt(sc.Side/2, sc.Side/2)
		sess, err := db.NewContinuousPNN(q)
		if err != nil {
			return nil, err
		}
		const moves = 2000
		t0 := time.Now()
		for i := 0; i < moves; i++ {
			q = geom.Pt(
				clampF(q.X+rng.NormFloat64()*step, 1, sc.Side-1),
				clampF(q.Y+rng.NormFloat64()*step, 1, sc.Side-1),
			)
			if _, _, err := sess.Move(q); err != nil {
				return nil, err
			}
		}
		durMove := time.Since(t0)
		// Naive comparison: full PNN at a sample of the positions.
		t0 = time.Now()
		const naiveSample = 50
		for i := 0; i < naiveSample; i++ {
			if _, _, err := db.PNN(geom.Pt(rng.Float64()*sc.Side, rng.Float64()*sc.Side)); err != nil {
				return nil, err
			}
		}
		durNaive := time.Since(t0)
		st := sess.Stats()
		t3.AddRow(fmt.Sprintf("%.0f", step),
			fmt.Sprintf("%d", st.Moves),
			fmt.Sprintf("%d", st.Recomputes),
			pct(1-float64(st.Recomputes)/float64(st.Moves)),
			fmt.Sprintf("%.1f", durMove.Seconds()*1e6/moves),
			fmt.Sprintf("%.1f", durNaive.Seconds()*1e6/naiveSample))
	}
	tables = append(tables, t3)

	// --- 3D UV-diagram. ---
	progress("extensions: 3D UV-diagram")
	t4 := &Table{
		ID:      "ext-3d",
		Title:   "Extension: 3D UV-diagram (octree index)",
		Columns: []string{"|O|", "Tc", "prune%", "avg|CR|", "Tq(index) µs", "Tq(brute) µs"},
	}
	n3max := sc.MidN
	if n3max > 2000 {
		n3max = 2000 // 3D builds are cubic-volume work; cap the sweep
	}
	for _, n := range []int{n3max / 4, n3max / 2, n3max} {
		if n < 10 {
			continue
		}
		rng := rand.New(rand.NewSource(sc.Seed + 4))
		side := 1000.0
		objs3 := make([]uvdiagram.Object3, n)
		for i := range objs3 {
			objs3[i] = uvdiagram.NewObject3(int32(i),
				5+rng.Float64()*(side-10), 5+rng.Float64()*(side-10), 5+rng.Float64()*(side-10),
				2+rng.Float64()*4, uvdiagram.GaussianPDF3())
		}
		db3, err := uvdiagram.Build3(objs3, uvdiagram.CubeDomain(side), nil)
		if err != nil {
			return nil, err
		}
		bs := db3.BuildStats()
		var durIx, durBr time.Duration
		const q3n = 20
		for i := 0; i < q3n; i++ {
			q := uvdiagram.Pt3(rng.Float64()*side, rng.Float64()*side, rng.Float64()*side)
			t0 := time.Now()
			if _, _, err := db3.PNN(q); err != nil {
				return nil, err
			}
			durIx += time.Since(t0)
			t0 = time.Now()
			db3.PNNBruteForce(q)
			durBr += time.Since(t0)
		}
		t4.AddRow(fmt.Sprintf("%d", n),
			bs.TotalDur.Round(time.Millisecond).String(),
			pct(bs.PruneRatio()),
			fmt.Sprintf("%.1f", bs.AvgCR()),
			fmt.Sprintf("%.1f", durIx.Seconds()*1e6/q3n),
			fmt.Sprintf("%.1f", durBr.Seconds()*1e6/q3n))
	}
	tables = append(tables, t4)

	return tables, nil
}
