package exp

import (
	"fmt"
	"math/rand"
	"net"
	"time"

	"uvdiagram"
	"uvdiagram/internal/datagen"
	"uvdiagram/internal/server"
)

// RunServerThroughput measures the serving layer end to end over
// loopback TCP: the same query workload shipped as (1) blocking
// single-request round trips, (2) a pipelined stream of async calls,
// and (3) batch frames. Two workloads run: possible-k-NN (wire-bound —
// the serving model dominates) and PNN (compute-bound — the numerical
// integration dominates, bounding what batching can buy per core). It
// is the experiment behind the batch query engine.
func RunServerThroughput(sc Scale, progress func(string)) (*Table, error) {
	cfg := datagen.Config{N: sc.MidN, Side: sc.Side, Diameter: sc.Diameter, Seed: sc.Seed}
	progress(fmt.Sprintf("server: building UV-index over %d objects", cfg.N))
	db, err := uvdiagram.Build(datagen.Uniform(cfg), cfg.Domain(), nil)
	if err != nil {
		return nil, err
	}
	srv := server.New(db, nil)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = srv.Serve(lis)
	}()
	defer func() {
		srv.Close()
		<-serveDone
		srv.Wait()
	}()

	cli, err := server.Dial(lis.Addr().String())
	if err != nil {
		return nil, err
	}
	defer cli.Close()

	t := &Table{
		ID:      "server",
		Title:   fmt.Sprintf("Serving throughput over loopback TCP (n=%d)", sc.MidN),
		Columns: []string{"workload", "mode", "queries", "elapsed", "queries/s", "speedup"},
		Notes: []string{
			"single: one blocking round trip per query (the pre-batch serving model)",
			"pipelined: async client, 64 requests in flight on one connection",
			"batched: 1024-point batch frames, server-side worker-pool fan-out + leaf cache",
		},
	}

	const knnK = 4
	workloads := []struct {
		name    string
		queries int
		single  func(q uvdiagram.Point) error
		goCall  func(q uvdiagram.Point, done chan *server.Call)
		decode  func(call *server.Call) error
		batch   func(qs []uvdiagram.Point) error
	}{
		{
			name:    "possible-4-NN",
			queries: sc.Queries * 500,
			single:  func(q uvdiagram.Point) error { _, err := cli.PossibleKNN(q, knnK); return err },
			goCall:  func(q uvdiagram.Point, done chan *server.Call) { cli.GoPossibleKNN(q, knnK, done) },
			decode:  func(call *server.Call) error { _, err := server.PossibleKNNIDs(call); return err },
			batch:   func(qs []uvdiagram.Point) error { _, err := cli.BatchPossibleKNN(qs, knnK); return err },
		},
		{
			name:    "PNN",
			queries: sc.Queries * 20,
			single:  func(q uvdiagram.Point) error { _, err := cli.PNN(q); return err },
			goCall:  func(q uvdiagram.Point, done chan *server.Call) { cli.GoPNN(q, done) },
			decode:  func(call *server.Call) error { _, err := server.PNNAnswers(call); return err },
			batch:   func(qs []uvdiagram.Point) error { _, err := cli.BatchPNN(qs); return err },
		},
	}

	for _, w := range workloads {
		rng := rand.New(rand.NewSource(sc.Seed))
		qs := make([]uvdiagram.Point, w.queries)
		for i := range qs {
			qs[i] = uvdiagram.Pt(rng.Float64()*sc.Side, rng.Float64()*sc.Side)
		}

		single, err := timeIt(func() error {
			for _, q := range qs {
				if err := w.single(q); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		progress(fmt.Sprintf("server: %s single %d queries in %v", w.name, w.queries, single.Round(time.Millisecond)))

		pipelined, err := timeIt(func() error {
			const window = 64
			done := make(chan *server.Call, window)
			inFlight := 0
			for _, q := range qs {
				for inFlight >= window {
					if err := w.decode(<-done); err != nil {
						return err
					}
					inFlight--
				}
				w.goCall(q, done)
				inFlight++
			}
			for ; inFlight > 0; inFlight-- {
				if err := w.decode(<-done); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		progress(fmt.Sprintf("server: %s pipelined %d queries in %v", w.name, w.queries, pipelined.Round(time.Millisecond)))

		batched, err := timeIt(func() error {
			const chunk = 1024
			for off := 0; off < len(qs); off += chunk {
				end := off + chunk
				if end > len(qs) {
					end = len(qs)
				}
				if err := w.batch(qs[off:end]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		progress(fmt.Sprintf("server: %s batched %d queries in %v", w.name, w.queries, batched.Round(time.Millisecond)))

		for _, row := range []struct {
			mode string
			d    time.Duration
		}{{"single", single}, {"pipelined", pipelined}, {"batched", batched}} {
			t.AddRow(w.name, row.mode,
				fmt.Sprintf("%d", w.queries),
				row.d.Round(time.Millisecond).String(),
				fmt.Sprintf("%.0f", float64(w.queries)/row.d.Seconds()),
				fmt.Sprintf("%.2fx", single.Seconds()/row.d.Seconds()))
		}
	}
	return t, nil
}

func timeIt(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}
