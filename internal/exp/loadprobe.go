package exp

import (
	"math/rand"
	"time"

	"uvdiagram"
)

// queryLoad rides uniform in-process PNN traffic against db until done
// yields the background maintenance result, returning the query count
// and worst/total single-query latency. Shared by the shards and
// rebalance sweeps, whose whole point is the query-visible cost of
// maintenance running alongside.
func queryLoad(db *uvdiagram.DB, rng *rand.Rand, side float64, done <-chan error) (queries int, worst, total time.Duration, err error) {
	for {
		q := uvdiagram.Pt(rng.Float64()*side, rng.Float64()*side)
		q0 := time.Now()
		if _, _, qerr := db.PNN(q); qerr != nil {
			return queries, worst, total, qerr
		}
		lat := time.Since(q0)
		total += lat
		if lat > worst {
			worst = lat
		}
		queries++
		select {
		case cerr := <-done:
			return queries, worst, total, cerr
		default:
		}
	}
}

// meanLatency is total/queries, zero-safe.
func meanLatency(total time.Duration, queries int) time.Duration {
	if queries == 0 {
		return 0
	}
	return total / time.Duration(queries)
}
