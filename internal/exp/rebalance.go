package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"uvdiagram"
	"uvdiagram/internal/datagen"
)

// RebalanceJSONPath is where RunRebalance records the sweep (the CI and
// README baseline artifact).
const RebalanceJSONPath = "BENCH_rebalance.json"

// rebalanceRow is one measured configuration of the rebalance sweep.
type rebalanceRow struct {
	N                  int     `json:"n"`
	Shards             int     `json:"shards"`
	Sigma              float64 `json:"sigma"`
	BuildMS            float64 `json:"full_build_ms"`
	ImbalanceBefore    float64 `json:"imbalance_before_max_over_mean"`
	ImbalanceAfter     float64 `json:"imbalance_after_max_over_mean"`
	ImbalanceGain      float64 `json:"imbalance_gain_x"`
	CompactAllMS       float64 `json:"concurrent_compact_all_ms"`
	QueriesDuring      int     `json:"queries_during_compact"`
	WorstQueryMS       float64 `json:"worst_query_latency_during_compact_ms"`
	MeanQueryMS        float64 `json:"mean_query_latency_during_compact_ms"`
	ReshardMS          float64 `json:"reshard_ms"`
	AnswersIdentical   bool    `json:"answers_bitwise_identical_after_reshard"`
	MaxShardLiveBefore int     `json:"max_shard_live_before"`
	MaxShardLiveAfter  int     `json:"max_shard_live_after"`
}

type rebalanceReport struct {
	ReportHeader
	Description string         `json:"description"`
	Environment map[string]any `json:"environment"`
	Rows        []rebalanceRow `json:"rows"`
	Notes       string         `json:"notes"`
}

// RunRebalance measures what the adaptive shard layout buys on skewed
// data: a Gaussian-centered dataset is built over a 4×4 equal-strip
// shard grid (most UV-cells pile into the central shards), churned,
// compacted CONCURRENTLY (CompactAll with two workers — disjoint shards
// shadow-build in parallel under the two-level locks) with PNN traffic
// riding alongside, and finally resharded online to weighted-median
// cuts. Recorded per configuration: per-shard load imbalance (max/mean
// live objects) before and after Reshard, the worst query latency
// observed during the concurrent compaction, and whether a fixed query
// workload answers bitwise identically before and after the layout
// swap (it must — the layout only decides which shard answers).
//
// The sweep also writes BENCH_rebalance.json to the working directory.
func RunRebalance(sc Scale, progress func(string)) (*Table, error) {
	const shards = 16 // 4×4: equal strips leave the center 4 shards hot
	sigma := sc.Side / 10
	t := &Table{
		ID:    "rebalance",
		Title: fmt.Sprintf("Adaptive shard layout: online reshard on skewed data (S=%d, σ=%.0f)", shards, sigma),
		Columns: []string{"n", "build", "imbalance", "compact(2w)", "worst lat",
			"reshard", "imbalance'", "gain", "answers"},
		Notes: []string{
			"imbalance: max/mean live objects per shard on the equal-strip layout; imbalance': after Reshard to weighted-median cuts",
			"compact(2w): wall clock of CompactAll(parallelism=2) riding under PNN traffic; worst lat: worst single query during it",
			"answers: bitwise comparison of the full query workload before vs after the layout swap",
		},
	}
	report := rebalanceReport{
		ReportHeader: newReportHeader("rebalance"),
		Description:  fmt.Sprintf("Adaptive shard layout sweep: uvbench -exp rebalance -scale %s. Skewed dataset (Gaussian centers, sigma=%.0f, side=%.0f) over a %d-shard (4x4) grid; equal strips vs online Reshard to weighted-median cuts; CompactAll(2) runs concurrently with PNN traffic.", sc.Name, sigma, sc.Side, shards),
		Environment: map[string]any{
			"goos":  runtime.GOOS,
			"cpu":   fmt.Sprintf("%d cores", runtime.NumCPU()),
			"go":    runtime.Version(),
			"scale": sc.Name,
		},
		Notes: "Acceptance: imbalance_gain_x >= 2 with answers_bitwise_identical_after_reshard true — reshard evens per-shard load without changing a single bit of any answer.",
	}

	for _, n := range []int{sc.MidN / 2, sc.MidN} {
		cfg := datagen.Config{N: n, Side: sc.Side, Diameter: sc.Diameter, Seed: sc.Seed}
		objs := datagen.Skewed(cfg, sigma)
		progress(fmt.Sprintf("rebalance: building skewed n=%d over %d equal-strip shards", n, shards))
		t0 := time.Now()
		db, err := uvdiagram.Build(objs, cfg.Domain(), &uvdiagram.Options{Shards: shards})
		if err != nil {
			return nil, err
		}
		buildDur := time.Since(t0)
		row := rebalanceRow{N: n, Shards: shards, Sigma: sigma,
			BuildMS: float64(buildDur.Microseconds()) / 1e3}
		row.ImbalanceBefore = db.LoadImbalance()
		row.MaxShardLiveBefore = maxLive(db.ShardStats())

		// Deterministic churn so the concurrent compaction clears real
		// slack, like a long-running deployment.
		rng := rand.New(rand.NewSource(sc.Seed + 17))
		var churned int
		for id := int32(0); int(id) < len(objs); id += 25 {
			if err := db.Delete(id); err != nil {
				return nil, err
			}
			churned++
		}
		for i := 0; i < churned; i++ {
			o := uvdiagram.NewObject(db.NextID(),
				rng.Float64()*sc.Side, rng.Float64()*sc.Side, sc.Diameter/2, nil)
			if err := db.Insert(o); err != nil {
				return nil, err
			}
		}

		// The fixed query workload whose answers must survive the
		// layout swap bit for bit.
		queries := make([]uvdiagram.Point, 64)
		for i := range queries {
			queries[i] = uvdiagram.Pt(rng.Float64()*sc.Side, rng.Float64()*sc.Side)
		}
		before, err := answerStrings(db, queries)
		if err != nil {
			return nil, err
		}

		// Concurrent per-shard compaction (two workers on disjoint
		// shards) with PNN traffic riding alongside.
		progress(fmt.Sprintf("rebalance: n=%d concurrent CompactAll under query load", n))
		compactDone := make(chan error, 1)
		cstart := time.Now()
		go func() { compactDone <- db.CompactAll(context.Background(), 2) }()
		during, worst, total, err := queryLoad(db, rng, sc.Side, compactDone)
		if err != nil {
			return nil, err
		}
		compactDur := time.Since(cstart)
		row.CompactAllMS = float64(compactDur.Microseconds()) / 1e3
		row.QueriesDuring = during
		row.WorstQueryMS = float64(worst.Microseconds()) / 1e3
		if during > 0 {
			row.MeanQueryMS = float64(total.Microseconds()) / 1e3 / float64(during)
		}

		// Online reshard to weighted-median cuts.
		progress(fmt.Sprintf("rebalance: n=%d online Reshard", n))
		rstart := time.Now()
		if err := db.Reshard(context.Background()); err != nil {
			return nil, err
		}
		reshardDur := time.Since(rstart)
		row.ReshardMS = float64(reshardDur.Microseconds()) / 1e3
		row.ImbalanceAfter = db.LoadImbalance()
		row.MaxShardLiveAfter = maxLive(db.ShardStats())
		if row.ImbalanceAfter > 0 {
			row.ImbalanceGain = row.ImbalanceBefore / row.ImbalanceAfter
		}
		after, err := answerStrings(db, queries)
		if err != nil {
			return nil, err
		}
		row.AnswersIdentical = before == after
		if !row.AnswersIdentical {
			return nil, fmt.Errorf("rebalance: answers diverged across Reshard at n=%d", n)
		}

		progress(fmt.Sprintf("rebalance: n=%d imbalance %.2f -> %.2f (%.1fx), worst query %v during concurrent compaction",
			n, row.ImbalanceBefore, row.ImbalanceAfter, row.ImbalanceGain, worst.Round(time.Microsecond)))
		t.AddRow(fmt.Sprintf("%d", n),
			buildDur.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2f", row.ImbalanceBefore),
			compactDur.Round(time.Millisecond).String(),
			worst.Round(time.Microsecond).String(),
			reshardDur.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2f", row.ImbalanceAfter),
			fmt.Sprintf("%.1fx", row.ImbalanceGain),
			"identical")
		report.Rows = append(report.Rows, row)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(RebalanceJSONPath, append(buf, '\n'), 0o644); err != nil {
		return nil, err
	}
	progress("rebalance: wrote " + RebalanceJSONPath)
	return t, nil
}

// answerStrings renders the PNN answers of a workload into one
// comparable string (bitwise: fmt prints the full float64 state).
func answerStrings(db *uvdiagram.DB, qs []uvdiagram.Point) (string, error) {
	out := ""
	for _, q := range qs {
		answers, _, err := db.PNN(q)
		if err != nil {
			return "", err
		}
		out += fmt.Sprintf("%v;", answers)
	}
	return out, nil
}

func maxLive(sts []uvdiagram.ShardStat) int {
	max := 0
	for _, st := range sts {
		if st.Live > max {
			max = st.Live
		}
	}
	return max
}
