package exp

import (
	"fmt"
	"time"

	"uvdiagram"
	"uvdiagram/internal/datagen"
	"uvdiagram/internal/geom"
)

// queryAverages aggregates one query workload against one retrieval
// path.
type queryAverages struct {
	TotalMs    float64
	IndexIOs   float64
	ObjectIOs  float64
	TraverseMs float64
	RetrieveMs float64
	ProbMs     float64
	Answers    float64
}

func runWorkload(run func(q geom.Point) (uvdiagram.QueryStats, int, error), queries []geom.Point) (queryAverages, error) {
	var agg queryAverages
	for _, q := range queries {
		st, answers, err := run(q)
		if err != nil {
			return agg, err
		}
		agg.TotalMs += st.Total().Seconds() * 1000
		agg.IndexIOs += float64(st.IndexIOs)
		agg.ObjectIOs += float64(st.ObjectIOs)
		agg.TraverseMs += st.TraverseDur.Seconds() * 1000
		agg.RetrieveMs += st.RetrieveDur.Seconds() * 1000
		agg.ProbMs += st.ProbDur.Seconds() * 1000
		agg.Answers += float64(answers)
	}
	n := float64(len(queries))
	agg.TotalMs /= n
	agg.IndexIOs /= n
	agg.ObjectIOs /= n
	agg.TraverseMs /= n
	agg.RetrieveMs /= n
	agg.ProbMs /= n
	agg.Answers /= n
	return agg, nil
}

func uvWorkload(db *uvdiagram.DB, queries []geom.Point) (queryAverages, error) {
	return runWorkload(func(q geom.Point) (uvdiagram.QueryStats, int, error) {
		a, st, err := db.PNN(q)
		return st, len(a), err
	}, queries)
}

func rtWorkload(db *uvdiagram.DB, queries []geom.Point) (queryAverages, error) {
	return runWorkload(func(q geom.Point) (uvdiagram.QueryStats, int, error) {
		a, st, err := db.PNNViaRTree(q)
		return st, len(a), err
	}, queries)
}

func buildDB(objs []uvdiagram.Object, domain geom.Rect, sc Scale) (*uvdiagram.DB, time.Duration, error) {
	t0 := time.Now()
	db, err := uvdiagram.Build(objs, domain, &uvdiagram.Options{SeedK: sc.SeedK})
	return db, time.Since(t0), err
}

// DiskLatencyMs is the simulated cost of one random page read, used for
// the "charged" query-time columns. Our pager is in-memory, so raw wall
// time hides the I/O gap that dominated the paper's 2006-era testbed;
// 5 ms is a period-typical random-seek latency. Object-retrieval I/O is
// identical for both access methods and is therefore not charged.
const DiskLatencyMs = 5.0

// RunFig6 regenerates Figure 6: PNN query performance of the UV-index
// versus the R-tree baseline — (a) time vs |O|, (b) I/O vs |O|,
// (c) component breakdown at MidN, (d) time vs uncertainty size.
// progress (optional) receives one line per configuration.
func RunFig6(sc Scale, progress func(string)) ([]*Table, error) {
	if progress == nil {
		progress = func(string) {}
	}
	a := &Table{ID: "fig6a", Title: "PNN time vs dataset size (paper: UVD ≈ 50% of R-tree at 60k)",
		Columns: []string{"|O|", "Tq(UVD) ms", "Tq(R-tree) ms", "charged(UVD)", "charged(R-tree)", "ratio"},
		Notes:   []string{fmt.Sprintf("charged = wall time + %.0f ms per index page read (in-memory pager hides seek latency)", DiskLatencyMs)}}
	b := &Table{ID: "fig6b", Title: "PNN index I/O vs dataset size (paper: UVD ~1/7 of R-tree at 70k, flat)",
		Columns: []string{"|O|", "IO(UVD)", "IO(R-tree)", "ratio"}}
	for _, n := range sc.Sizes {
		cfg := datagen.Config{N: n, Side: sc.Side, Diameter: sc.Diameter, Seed: sc.Seed}
		objs := datagen.Uniform(cfg)
		db, _, err := buildDB(objs, cfg.Domain(), sc)
		if err != nil {
			return nil, err
		}
		queries := datagen.Queries(sc.Queries, sc.Side, sc.Seed+int64(n))
		uv, err := uvWorkload(db, queries)
		if err != nil {
			return nil, err
		}
		rt, err := rtWorkload(db, queries)
		if err != nil {
			return nil, err
		}
		uvCharged := uv.TotalMs + DiskLatencyMs*uv.IndexIOs
		rtCharged := rt.TotalMs + DiskLatencyMs*rt.IndexIOs
		a.AddRow(fmt.Sprintf("%d", n), ms(uv.TotalMs), ms(rt.TotalMs),
			ms(uvCharged), ms(rtCharged),
			fmt.Sprintf("%.2f", uvCharged/rtCharged))
		b.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.2f", uv.IndexIOs),
			fmt.Sprintf("%.2f", rt.IndexIOs), fmt.Sprintf("%.2f", uv.IndexIOs/rt.IndexIOs))
		progress(fmt.Sprintf("fig6ab |O|=%d done (UVD %.2fms vs R-tree %.2fms charged)", n, uvCharged, rtCharged))
	}

	// (c) component breakdown at MidN.
	c := &Table{ID: "fig6c", Title: fmt.Sprintf("query time components at |O|=%d (paper: R-tree pays in index traversal)", sc.MidN),
		Columns: []string{"component", "UVD ms", "R-tree ms"}}
	cfg := datagen.Config{N: sc.MidN, Side: sc.Side, Diameter: sc.Diameter, Seed: sc.Seed}
	objs := datagen.Uniform(cfg)
	db, _, err := buildDB(objs, cfg.Domain(), sc)
	if err != nil {
		return nil, err
	}
	queries := datagen.Queries(sc.Queries, sc.Side, sc.Seed+7)
	uv, err := uvWorkload(db, queries)
	if err != nil {
		return nil, err
	}
	rt, err := rtWorkload(db, queries)
	if err != nil {
		return nil, err
	}
	c.AddRow("index traversal", ms(uv.TraverseMs), ms(rt.TraverseMs))
	c.AddRow("object retrieval", ms(uv.RetrieveMs), ms(rt.RetrieveMs))
	c.AddRow("QP calculation", ms(uv.ProbMs), ms(rt.ProbMs))
	progress("fig6c done")

	// (d) uncertainty-size sweep at MidN.
	d := &Table{ID: "fig6d", Title: fmt.Sprintf("PNN time vs uncertainty diameter at |O|=%d (paper: both grow, UVD wins)", sc.MidN),
		Columns: []string{"diameter", "charged(UVD) ms", "charged(R-tree) ms"},
		Notes:   []string{fmt.Sprintf("charged = wall time + %.0f ms per index page read", DiskLatencyMs)}}
	for _, dia := range sc.Diameters {
		cfg := datagen.Config{N: sc.MidN, Side: sc.Side, Diameter: dia, Seed: sc.Seed + 11}
		objs := datagen.Uniform(cfg)
		db, _, err := buildDB(objs, cfg.Domain(), sc)
		if err != nil {
			return nil, err
		}
		queries := datagen.Queries(sc.Queries, sc.Side, sc.Seed+int64(dia))
		uv, err := uvWorkload(db, queries)
		if err != nil {
			return nil, err
		}
		rt, err := rtWorkload(db, queries)
		if err != nil {
			return nil, err
		}
		d.AddRow(fmt.Sprintf("%.0f", dia),
			ms(uv.TotalMs+DiskLatencyMs*uv.IndexIOs),
			ms(rt.TotalMs+DiskLatencyMs*rt.IndexIOs))
		progress(fmt.Sprintf("fig6d diameter=%.0f done", dia))
	}
	return []*Table{a, b, c, d}, nil
}
