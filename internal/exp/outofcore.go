package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"uvdiagram"
	"uvdiagram/internal/datagen"
)

// OutOfCoreJSONPath is where RunOutOfCore records the sweep (the CI
// and README artifact of the mmap-backed serving path).
const OutOfCoreJSONPath = "BENCH_outofcore.json"

// outOfCoreRow is one measured configuration of the out-of-core sweep.
type outOfCoreRow struct {
	N             int     `json:"n"`
	SnapshotBytes int64   `json:"snapshot_bytes"`
	SaveMS        float64 `json:"save_snapshot_ms"`
	OpenMmapMS    float64 `json:"open_mmap_ms"`
	OpenHeapMS    float64 `json:"open_heap_ms"`
	OpenSpeedupX  float64 `json:"open_speedup_x"`

	HeapQPS       float64 `json:"heap_batch_pnn_qps"`
	MmapColdQPS   float64 `json:"mmap_cold_batch_pnn_qps"`
	MmapWarmQPS   float64 `json:"mmap_warm_batch_pnn_qps"`
	MmapCappedQPS float64 `json:"mmap_capped_batch_pnn_qps"`
	// ThroughputRatio is the acceptance headline: capped mmap serving
	// versus in-heap serving (>= 0.5 required).
	ThroughputRatio float64 `json:"capped_vs_heap_throughput_ratio"`

	MappedBytes       int64 `json:"mapped_bytes"`
	ResidentCapBytes  int64 `json:"resident_cap_bytes"`
	ResidentPeakBytes int64 `json:"resident_peak_bytes"`
	CapHeld           bool  `json:"resident_cap_below_index"`
	PagedInBytes      int64 `json:"paged_in_bytes"`
	// ReadAmpVsHeap divides the bytes the capped run paged in from the
	// snapshot by the bytes the in-heap engine reads to load the same
	// snapshot once (= the file size): how many times over the capped
	// server re-read its index to stay under the cap.
	ReadAmpVsHeap float64 `json:"read_amp_vs_heap"`

	HeapRSSBytes     int64 `json:"heap_serving_vmrss_bytes"`
	MmapRSSBytes     int64 `json:"mmap_capped_serving_vmrss_bytes"`
	AnswersIdentical bool  `json:"answers_bitwise_identical"`
}

type outOfCoreReport struct {
	ReportHeader
	Description string         `json:"description"`
	Environment map[string]any `json:"environment"`
	Rows        []outOfCoreRow `json:"rows"`
	Notes       string         `json:"notes"`
}

// outOfCoreN picks the dataset size: the committed artifact (medium and
// paper scales) must build at least 50k objects on disk; small stays
// quick-look.
func outOfCoreN(sc Scale) int {
	switch sc.Name {
	case "paper":
		return 80000
	case "medium":
		return 50000
	default:
		if sc.MidN < 4000 {
			return sc.MidN
		}
		return 4000
	}
}

// RunOutOfCore measures the out-of-core serving path: a database is
// built in heap, written as a version-5 page-image snapshot, and then
// served three ways — rebuilt in heap (the v≤4 economy), mmap-backed
// warm, and mmap-backed under a resident-set cap at a quarter of the
// index size (DropCaches whenever the mapping's resident bytes exceed
// the cap, the way a memory-pressured kernel would evict). Batched PNN
// answers of every mode are compared bitwise against the heap engine —
// a divergence fails the experiment — and the capped run reports its
// read amplification: bytes refaulted from the file over the file size.
//
// The sweep also writes BENCH_outofcore.json to the working directory.
func RunOutOfCore(sc Scale, progress func(string)) (*Table, error) {
	if progress == nil {
		progress = func(string) {}
	}
	t := &Table{
		ID:    "outofcore",
		Title: "Out-of-core serving: mmap-backed snapshot vs in-heap rebuild",
		Columns: []string{"n", "file", "save", "open mmap", "open heap", "heap q/s",
			"mmap q/s", "capped q/s", "cap", "peak", "read amp", "answers"},
		Notes: []string{
			"open mmap/heap: uvdiagram.Open wall clock on a v5 snapshot — mmap serves straight off the file, heap replays every page",
			"heap/mmap/capped q/s: batched PNN throughput (workers=4); capped drops the OS page cache whenever the mapping's resident set exceeds cap = mapped/4",
			"cap/peak: the resident-set cap and the highest resident bytes observed between drops (mincore over the mapped sections)",
			"read amp: bytes refaulted from the snapshot during the capped run / snapshot size (in-heap reads the file exactly once)",
			"answers: batched PNN answers of every mode, compared bitwise against the in-heap engine",
		},
	}
	n := outOfCoreN(sc)
	report := outOfCoreReport{
		ReportHeader: newReportHeader("outofcore"),
		Description:  fmt.Sprintf("Out-of-core serving sweep: uvbench -exp outofcore -scale %s. Uniform dataset of %d objects, 4 spatial shards, v5 page-image snapshot served by pager=mmap vs pager=heap.", sc.Name, n),
		Environment: map[string]any{
			"goos":  runtime.GOOS,
			"cpu":   fmt.Sprintf("%d cores", runtime.NumCPU()),
			"go":    runtime.Version(),
			"scale": sc.Name,
		},
		Notes: "Acceptance: capped_vs_heap_throughput_ratio >= 0.5 with resident_cap_below_index true and answers_bitwise_identical true — the index is served at an RSS cap below its own size without losing correctness or half the throughput.",
	}

	dir, err := os.MkdirTemp("", "uvdiagram-outofcore-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "uv.snap")

	progress(fmt.Sprintf("outofcore: building n=%d (4 shards) in heap", n))
	cfg := datagen.Config{N: n, Side: sc.Side, Diameter: sc.Diameter, Seed: sc.Seed}
	objs := datagen.Uniform(cfg)
	built, err := uvdiagram.Build(objs, cfg.Domain(), &uvdiagram.Options{Shards: 4})
	if err != nil {
		return nil, err
	}
	row := outOfCoreRow{N: n}

	t0 := time.Now()
	if err := built.SaveSnapshot(snapPath); err != nil {
		return nil, err
	}
	row.SaveMS = durMS(time.Since(t0))
	fi, err := os.Stat(snapPath)
	if err != nil {
		return nil, err
	}
	row.SnapshotBytes = fi.Size()
	built.Close()
	built = nil //nolint:ineffassign // release the build before serving

	qs := datagen.Queries(256, sc.Side, sc.Seed+7)
	batchOpts := &uvdiagram.BatchOptions{Workers: 4, CacheSize: 256}
	// qps times rounds of the whole batch until minDur has elapsed.
	minDur := 2 * time.Second
	if sc.Name == "tiny" || n <= 4000 {
		minDur = 300 * time.Millisecond
	}
	qps := func(db *uvdiagram.DB, perRound func(*uvdiagram.DB)) (float64, error) {
		start := time.Now()
		rounds := 0
		for time.Since(start) < minDur || rounds < 2 {
			if _, err := db.BatchNN(qs, batchOpts); err != nil {
				return 0, err
			}
			rounds++
			if perRound != nil {
				perRound(db)
			}
		}
		return float64(rounds*len(qs)) / time.Since(start).Seconds(), nil
	}

	// In-heap serving: Open replays every page into heap pagers.
	progress("outofcore: open pager=heap (full page replay)")
	t1 := time.Now()
	heapDB, err := uvdiagram.Open(snapPath, &uvdiagram.Options{Pager: "heap"})
	if err != nil {
		return nil, err
	}
	row.OpenHeapMS = durMS(time.Since(t1))
	wantAns, err := heapDB.BatchNN(qs, batchOpts)
	if err != nil {
		return nil, err
	}
	if row.HeapQPS, err = qps(heapDB, nil); err != nil {
		return nil, err
	}
	// Return build/open garbage to the OS so VmRSS reflects what heap
	// serving actually holds live.
	debug.FreeOSMemory()
	row.HeapRSSBytes = vmRSS()
	heapDB.Close()

	// Mmap serving: the same file, zero rebuild.
	progress("outofcore: open pager=mmap (serve off the file)")
	t2 := time.Now()
	db, err := uvdiagram.Open(snapPath, &uvdiagram.Options{Pager: "mmap"})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	row.OpenMmapMS = durMS(time.Since(t2))
	if row.OpenMmapMS > 0 {
		row.OpenSpeedupX = row.OpenHeapMS / row.OpenMmapMS
	}
	gotAns, err := db.BatchNN(qs, batchOpts)
	if err != nil {
		return nil, err
	}
	row.AnswersIdentical = fmt.Sprintf("%v", wantAns) == fmt.Sprintf("%v", gotAns)
	if !row.AnswersIdentical {
		return nil, fmt.Errorf("outofcore: mmap answers diverged from the in-heap engine at n=%d", n)
	}
	bp := db.BufferPoolStats()
	row.MappedBytes = bp.MappedBytes

	// Cold: everything advised out, first batch pages the working set in.
	debug.FreeOSMemory()
	db.DropCaches()
	tc := time.Now()
	if _, err := db.BatchNN(qs, batchOpts); err != nil {
		return nil, err
	}
	row.MmapColdQPS = float64(len(qs)) / time.Since(tc).Seconds()

	// Warm steady state.
	if row.MmapWarmQPS, err = qps(db, nil); err != nil {
		return nil, err
	}

	// Capped: whenever the mapping's resident set exceeds a quarter of
	// the index size, advise it all out — a hard stand-in for the
	// kernel evicting under memory pressure — and keep serving.
	capBytes := row.MappedBytes / 4
	row.ResidentCapBytes = capBytes
	row.CapHeld = capBytes < row.SnapshotBytes
	progress(fmt.Sprintf("outofcore: capped serving at %d MiB of a %d MiB index",
		capBytes>>20, row.MappedBytes>>20))
	debug.FreeOSMemory()
	db.DropCaches()
	prev := residentOf(db)
	var pagedIn, peak int64
	row.MmapCappedQPS, err = qps(db, func(db *uvdiagram.DB) {
		res := residentOf(db)
		if res > prev {
			pagedIn += res - prev
		}
		if res > peak {
			peak = res
		}
		if res > capBytes {
			db.DropCaches()
			res = residentOf(db)
		}
		prev = res
	})
	if err != nil {
		return nil, err
	}
	row.PagedInBytes = pagedIn
	row.ResidentPeakBytes = peak
	if row.SnapshotBytes > 0 {
		row.ReadAmpVsHeap = float64(pagedIn) / float64(row.SnapshotBytes)
	}
	if row.HeapQPS > 0 {
		row.ThroughputRatio = row.MmapCappedQPS / row.HeapQPS
	}
	debug.FreeOSMemory()
	row.MmapRSSBytes = vmRSS()

	cappedAns, err := db.BatchNN(qs, batchOpts)
	if err != nil {
		return nil, err
	}
	if fmt.Sprintf("%v", wantAns) != fmt.Sprintf("%v", cappedAns) {
		return nil, fmt.Errorf("outofcore: capped-serving answers diverged at n=%d", n)
	}

	progress(fmt.Sprintf("outofcore: heap %.0f q/s, mmap %.0f q/s, capped %.0f q/s (%.2fx heap), read amp %.2f",
		row.HeapQPS, row.MmapWarmQPS, row.MmapCappedQPS, row.ThroughputRatio, row.ReadAmpVsHeap))
	t.AddRow(strconv.Itoa(n),
		fmt.Sprintf("%d MiB", row.SnapshotBytes>>20),
		fmt.Sprintf("%.0fms", row.SaveMS),
		fmt.Sprintf("%.1fms", row.OpenMmapMS),
		fmt.Sprintf("%.0fms", row.OpenHeapMS),
		fmt.Sprintf("%.0f", row.HeapQPS),
		fmt.Sprintf("%.0f", row.MmapWarmQPS),
		fmt.Sprintf("%.0f", row.MmapCappedQPS),
		fmt.Sprintf("%d MiB", row.ResidentCapBytes>>20),
		fmt.Sprintf("%d MiB", row.ResidentPeakBytes>>20),
		fmt.Sprintf("%.2f", row.ReadAmpVsHeap),
		"identical")
	report.Rows = append(report.Rows, row)

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(OutOfCoreJSONPath, append(buf, '\n'), 0o644); err != nil {
		return nil, err
	}
	progress("outofcore: wrote " + OutOfCoreJSONPath)
	return t, nil
}

// residentOf probes the resident bytes of a DB's mapped sections (0 for
// in-heap databases or when mincore is unsupported).
func residentOf(db *uvdiagram.DB) int64 {
	bp := db.BufferPoolStats()
	if !bp.ResidentKnown {
		return 0
	}
	return bp.ResidentBytes
}

// vmRSS reads the process's resident set from /proc/self/status
// (0 when the proc filesystem is unavailable).
func vmRSS() int64 {
	raw, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
