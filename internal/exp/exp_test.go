package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tinyScale keeps the smoke tests fast.
func tinyScale() Scale {
	return Scale{
		Name:       "tiny",
		Sizes:      []int{150, 300},
		BasicSizes: []int{60, 120},
		MidN:       200,
		Queries:    5,
		Side:       3000,
		Diameter:   40,
		Diameters:  []float64{20, 60},
		Sigmas:     []float64{400, 900},
		RangeSizes: []float64{100, 400},
		Thetas:     []float64{0.2, 1.0},
		RealFrac:   0.01,
		SeedK:      40,
		Seed:       99,
	}
}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimPrefix(s, "~"), "%")
	s = strings.TrimSuffix(s, " (extrap)")
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"small", "medium", "paper", ""} {
		if _, err := ScaleByName(name); err != nil {
			t.Errorf("ScaleByName(%q): %v", name, err)
		}
	}
	if _, err := ScaleByName("galactic"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestTableFprint(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Columns: []string{"a", "bb"}, Notes: []string{"n1"}}
	tb.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tb.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig6Smoke(t *testing.T) {
	sc := tinyScale()
	tables, err := RunFig6(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("fig6 produced %d tables", len(tables))
	}
	a, b := tables[0], tables[1]
	if len(a.Rows) != len(sc.Sizes) || len(b.Rows) != len(sc.Sizes) {
		t.Fatalf("row counts: %d, %d", len(a.Rows), len(b.Rows))
	}
	// The headline claim: UV-index beats the R-tree baseline on I/O in
	// every configuration.
	for _, row := range b.Rows {
		uv, rt := parse(t, row[1]), parse(t, row[2])
		if uv >= rt {
			t.Errorf("|O|=%s: UV I/O %v not below R-tree %v", row[0], uv, rt)
		}
	}
	if len(tables[2].Rows) != 3 {
		t.Errorf("fig6c rows = %d", len(tables[2].Rows))
	}
	if len(tables[3].Rows) != len(sc.Diameters) {
		t.Errorf("fig6d rows = %d", len(tables[3].Rows))
	}
}

func TestRunFig7ConstructionSmoke(t *testing.T) {
	sc := tinyScale()
	var progressed int
	tables, err := RunFig7Construction(sc, func(string) { progressed++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 5 {
		t.Fatalf("fig7 produced %d tables", len(tables))
	}
	if progressed == 0 {
		t.Error("no progress callbacks")
	}
	a := tables[0]
	if len(a.Rows) != len(sc.Sizes) {
		t.Fatalf("fig7a rows = %d", len(a.Rows))
	}
	// IC must never be slower than ICR (it does strictly less work).
	for _, row := range tables[2].Rows {
		icr, ic := parse(t, row[1]), parse(t, row[2])
		if ic > icr*1.5+0.2 {
			t.Errorf("|O|=%s: IC %vs much slower than ICR %vs", row[0], ic, icr)
		}
	}
	// Pruning ratios within [0, 1] and C ≥ I.
	for _, row := range tables[1].Rows {
		i, c := parse(t, row[1])/100, parse(t, row[2])/100
		if i < 0 || i > 1 || c < i {
			t.Errorf("|O|=%s: pruning ratios I=%v C=%v", row[0], i, c)
		}
	}
}

func TestRunFig7fghSmoke(t *testing.T) {
	sc := tinyScale()
	f, err := RunFig7f(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != len(sc.Diameters) {
		t.Errorf("fig7f rows = %d", len(f.Rows))
	}
	g, err := RunFig7g(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != len(sc.Sigmas) {
		t.Errorf("fig7g rows = %d", len(g.Rows))
	}
	h, err := RunFig7h(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Rows) != len(sc.RangeSizes) {
		t.Errorf("fig7h rows = %d", len(h.Rows))
	}
	// Larger ranges must return at least as many partitions on average.
	first := parse(t, h.Rows[0][2])
	last := parse(t, h.Rows[len(h.Rows)-1][2])
	if last < first {
		t.Errorf("partition count decreased with range size: %v -> %v", first, last)
	}
}

func TestRunTable2AndSensitivitySmoke(t *testing.T) {
	sc := tinyScale()
	tb, err := RunTable2(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("table2 rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if pc := parse(t, row[5]) / 100; pc <= 0 || pc > 1 {
			t.Errorf("%s: pruning ratio %v", row[0], pc)
		}
	}
	s, err := RunSensitivity(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != len(sc.Thetas) {
		t.Fatalf("sensitivity rows = %d", len(s.Rows))
	}
	// Tθ=0.2 must split no more than Tθ=1.
	lo := parse(t, s.Rows[0][2])
	hi := parse(t, s.Rows[len(s.Rows)-1][2])
	if lo > hi {
		t.Errorf("Tθ=0.2 produced more non-leaf nodes (%v) than Tθ=1 (%v)", lo, hi)
	}
}
