package exp

import (
	"fmt"

	"uvdiagram"
	"uvdiagram/internal/core"
	"uvdiagram/internal/datagen"
	"uvdiagram/internal/geom"
	"uvdiagram/internal/pager"
	"uvdiagram/internal/uncertain"
)

// RunTable2 regenerates Table II: query and construction performance on
// the (simulated) German geographic datasets. The paper reports UVD
// beating the R-tree on all three with pruning ratios of 86–89%.
func RunTable2(sc Scale, progress func(string)) (*Table, error) {
	if progress == nil {
		progress = func(string) {}
	}
	t := &Table{ID: "table2", Title: fmt.Sprintf("real datasets at %.0f%% of paper size (simulated stand-ins; see DESIGN.md)", sc.RealFrac*100),
		Columns: []string{"dataset", "|O|", "Tq(UVD) ms", "Tq(R-tree) ms", "Tc s", "pc"},
		Notes:   []string{fmt.Sprintf("Tq charged at %.0f ms per index page read", DiskLatencyMs)}}
	for _, kind := range []datagen.RealKind{datagen.Utility, datagen.Roads, datagen.RRLines} {
		objs, err := datagen.Real(kind, sc.RealFrac, sc.Seed)
		if err != nil {
			return nil, err
		}
		domain := geom.Square(datagen.DefaultSide)
		store, err := uncertain.NewStore(objs, pager.New(uncertain.ObjectPageBytes))
		if err != nil {
			return nil, err
		}
		opts := core.DefaultBuildOptions()
		opts.SeedK = sc.SeedK
		tree := core.BuildHelperRTree(store, opts.Fanout)
		_, stats, err := core.Build(store, domain, tree, opts)
		if err != nil {
			return nil, err
		}
		db, err := uvdiagram.Build(objs, domain, &uvdiagram.Options{SeedK: sc.SeedK})
		if err != nil {
			return nil, err
		}
		queries := datagen.Queries(sc.Queries, datagen.DefaultSide, sc.Seed+int64(len(objs)))
		uv, err := uvWorkload(db, queries)
		if err != nil {
			return nil, err
		}
		rt, err := rtWorkload(db, queries)
		if err != nil {
			return nil, err
		}
		t.AddRow(string(kind), fmt.Sprintf("%d", len(objs)),
			ms(uv.TotalMs+DiskLatencyMs*uv.IndexIOs),
			ms(rt.TotalMs+DiskLatencyMs*rt.IndexIOs),
			fmt.Sprintf("%.1f", stats.TotalDur.Seconds()),
			pct(stats.CPruneRatio()))
		progress(fmt.Sprintf("table2 %s done", kind))
	}
	return t, nil
}

// RunAll executes every experiment at the given scale and returns the
// tables in presentation order.
func RunAll(sc Scale, progress func(string)) ([]*Table, error) {
	var out []*Table
	t6, err := RunFig6(sc, progress)
	if err != nil {
		return nil, err
	}
	out = append(out, t6...)
	t7, err := RunFig7Construction(sc, progress)
	if err != nil {
		return nil, err
	}
	out = append(out, t7...)
	for _, run := range []func(Scale, func(string)) (*Table, error){RunFig7f, RunFig7g, RunFig7h, RunTable2, RunSensitivity} {
		t, err := run(sc, progress)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
