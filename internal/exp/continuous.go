package exp

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"uvdiagram"
	"uvdiagram/internal/datagen"
	"uvdiagram/internal/server"
)

// ContinuousJSONPath is where RunContinuous records the sweep (the CI
// and README baseline artifact).
const ContinuousJSONPath = "BENCH_continuous.json"

// continuousRow is one measured configuration of the subscription
// engine sweep.
type continuousRow struct {
	N             int     `json:"n"`
	Shards        int     `json:"shards"`
	Sessions      int     `json:"sessions"`
	Conns         int     `json:"conns"`
	MovesPerSess  int     `json:"moves_per_session"`
	SubscribesPS  float64 `json:"subscribes_per_s"`
	MovesPS       float64 `json:"moves_per_s"`
	Moves         uint64  `json:"moves"`
	Recomputes    uint64  `json:"recomputes"`
	RecomputeRate float64 `json:"recompute_rate"`
	IndexIOs      uint64  `json:"index_ios"`
	Pushes        uint64  `json:"pushes"`
	ChurnOps      int     `json:"churn_ops"`
	ChurnDeltas   int     `json:"churn_deltas_received"`
	PushMeanMS    float64 `json:"churn_push_latency_mean_ms"`
	PushMaxMS     float64 `json:"churn_push_latency_max_ms"`
}

type continuousReport struct {
	ReportHeader
	Description string          `json:"description"`
	Environment map[string]any  `json:"environment"`
	Rows        []continuousRow `json:"rows"`
	Notes       string          `json:"notes"`
}

// RunContinuous measures the moving-query subscription engine end to
// end over loopback TCP: a fleet of subscribed clients streams smooth
// random-walk trajectories as fire-and-forget OpMove frames, the server
// evaluates each move against the session's safe circle and pushes
// answer deltas only on boundary crossings, and a separate mutator
// connection churns the database mid-run so every subscriber is
// revalidated and pushed to. Recorded per configuration: subscribe and
// move throughput, the server-side recompute rate (the fraction of
// moves the safe circle failed to absorb — the number the whole design
// exists to keep low), and the client-observed latency of
// churn-triggered pushes from the start of the triggering write.
//
// The sweep also writes BENCH_continuous.json to the working directory.
func RunContinuous(sc Scale, progress func(string)) (*Table, error) {
	const (
		shards  = 4
		conns   = 4
		moves   = 50
		churnOp = 20
	)
	// Smooth trajectory: 0.005% of the domain side per move. The safe
	// radius is bounded by the distance to the nearest UV-edge, and at
	// thousands of uncertain objects those are a few units apart — steps
	// must be small on THAT scale (a real moving client's update rate),
	// not on the domain's, for the circle to absorb anything.
	step := sc.Side * 5e-5

	cfg := datagen.Config{N: sc.MidN, Side: sc.Side, Diameter: sc.Diameter, Seed: sc.Seed}
	progress(fmt.Sprintf("continuous: building UV-index over %d objects (%d shards)", cfg.N, shards))
	db, err := uvdiagram.Build(datagen.Uniform(cfg), cfg.Domain(), &uvdiagram.Options{Shards: shards})
	if err != nil {
		return nil, err
	}
	srv := server.New(db, nil)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = srv.Serve(lis)
	}()
	defer func() {
		srv.Close()
		<-serveDone
		srv.Wait()
	}()

	t := &Table{
		ID:    "continuous",
		Title: fmt.Sprintf("Moving-query subscriptions over loopback TCP (n=%d, %d shards)", sc.MidN, shards),
		Columns: []string{"sessions", "subs/s", "moves", "moves/s", "recompute",
			"pushes", "churn push mean", "max"},
		Notes: []string{
			"recompute: fraction of moves the safe circle did NOT absorb (server re-ran the PNN)",
			fmt.Sprintf("trajectories: random walks of %d steps, %.2g units each (%.3g%% of the side)", moves, step, 100*step/sc.Side),
			fmt.Sprintf("churn push: client-observed delta latency from the start of the triggering Insert/Delete (%d ops on a separate conn)", churnOp),
		},
	}
	report := continuousReport{
		ReportHeader: newReportHeader("continuous"),
		Description:  fmt.Sprintf("Continuous moving-query subscription sweep: uvbench -exp continuous -scale %s. Uniform dataset (n=%d, side=%.0f) behind a %d-shard loopback server; sessions stream fire-and-forget moves on %d connections and receive server-pushed answer deltas; a mutator connection interleaves inserts and deletes.", sc.Name, sc.MidN, sc.Side, shards, conns),
		Environment: map[string]any{
			"goos":  runtime.GOOS,
			"cpu":   fmt.Sprintf("%d cores", runtime.NumCPU()),
			"go":    runtime.Version(),
			"scale": sc.Name,
		},
		Notes: "Acceptance: recompute_rate well below 1 on smooth trajectories (the safe circle absorbs most moves), with churn pushes delivered in milliseconds.",
	}

	for _, sessions := range []int{4 * sc.Queries, 16 * sc.Queries} {
		row, err := runContinuousConfig(db, lis.Addr().String(), sc, sessions, conns, moves, churnOp, step, progress)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", sessions),
			fmt.Sprintf("%.0f", row.SubscribesPS),
			fmt.Sprintf("%d", row.Moves),
			fmt.Sprintf("%.0f", row.MovesPS),
			fmt.Sprintf("%.1f%%", 100*row.RecomputeRate),
			fmt.Sprintf("%d", row.Pushes),
			fmt.Sprintf("%.2fms", row.PushMeanMS),
			fmt.Sprintf("%.2fms", row.PushMaxMS))
		report.Rows = append(report.Rows, *row)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(ContinuousJSONPath, append(buf, '\n'), 0o644); err != nil {
		return nil, err
	}
	progress("continuous: wrote " + ContinuousJSONPath)
	return t, nil
}

// runContinuousConfig drives one fleet size through subscribe, smooth
// movement, churn, and teardown.
func runContinuousConfig(db *uvdiagram.DB, addr string, sc Scale, sessions, conns, moves, churnOps int, step float64, progress func(string)) (*continuousRow, error) {
	row := &continuousRow{N: sc.MidN, Shards: 4, Sessions: sessions, Conns: conns, MovesPerSess: moves}

	clients := make([]*server.Client, conns)
	for i := range clients {
		cli, err := server.Dial(addr)
		if err != nil {
			return nil, err
		}
		defer cli.Close()
		clients[i] = cli
	}
	mutator, err := server.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer mutator.Close()

	// Churn-push latency instrumentation, shared by every delta
	// callback: while churnT0 holds a start timestamp, received deltas
	// record their distance from it.
	var churnT0 atomic.Int64
	var latMu sync.Mutex
	var latencies []time.Duration
	onDelta := func(d server.Delta) {
		if t0 := churnT0.Load(); t0 != 0 && d.Err == nil {
			lat := time.Since(time.Unix(0, t0))
			latMu.Lock()
			latencies = append(latencies, lat)
			latMu.Unlock()
		}
	}

	// Subscribe the fleet, round-robin across connections.
	rng := rand.New(rand.NewSource(sc.Seed + 29))
	subs := make([]*server.Subscription, sessions)
	pos := make([]uvdiagram.Point, sessions)
	progress(fmt.Sprintf("continuous: subscribing %d sessions over %d conns", sessions, conns))
	t0 := time.Now()
	for i := range subs {
		pos[i] = uvdiagram.Pt(rng.Float64()*sc.Side, rng.Float64()*sc.Side)
		sub, err := clients[i%conns].Subscribe(pos[i], onDelta)
		if err != nil {
			return nil, err
		}
		subs[i] = sub
	}
	row.SubscribesPS = float64(sessions) / time.Since(t0).Seconds()

	// Smooth movement: every session walks `moves` small steps,
	// interleaved round-robin so the server sees mixed traffic. A Ping
	// per connection is the delta flush barrier.
	progress(fmt.Sprintf("continuous: streaming %d moves", sessions*moves))
	t0 = time.Now()
	for k := 0; k < moves; k++ {
		for i, sub := range subs {
			pos[i].X = min(max(pos[i].X+(rng.Float64()*2-1)*step, 0), sc.Side)
			pos[i].Y = min(max(pos[i].Y+(rng.Float64()*2-1)*step, 0), sc.Side)
			if err := sub.Move(pos[i]); err != nil {
				return nil, err
			}
		}
	}
	for _, cli := range clients {
		if err := cli.Ping(); err != nil {
			return nil, err
		}
	}
	row.MovesPS = float64(sessions*moves) / time.Since(t0).Seconds()

	// Churn: alternate inserts and deletes on the mutator connection.
	// The server pushes every shard-invalidated subscriber's delta
	// before releasing the write's response, so the client-side receive
	// time minus the write's start bounds the true push latency.
	progress(fmt.Sprintf("continuous: %d churn ops under %d live sessions", churnOps, sessions))
	var inserted []int32
	for k := 0; k < churnOps; k++ {
		churnT0.Store(time.Now().UnixNano())
		if k%2 == 0 {
			id := db.NextID()
			if err := mutator.Insert(id, rng.Float64()*sc.Side, rng.Float64()*sc.Side, sc.Diameter/2, nil); err != nil {
				return nil, err
			}
			inserted = append(inserted, id)
		} else {
			if err := mutator.Delete(inserted[len(inserted)-1]); err != nil {
				return nil, err
			}
			inserted = inserted[:len(inserted)-1]
		}
		for _, cli := range clients {
			if err := cli.Ping(); err != nil { // drain this op's pushes before the next
				return nil, err
			}
		}
		churnT0.Store(0)
	}
	row.ChurnOps = churnOps

	// Teardown: fold the server-side counters.
	for _, sub := range subs {
		st, err := sub.Close()
		if err != nil {
			return nil, err
		}
		row.Moves += st.Moves
		row.Recomputes += st.Recomputes
		row.IndexIOs += st.IndexIOs
		row.Pushes += st.Pushes
	}
	if row.Moves > 0 {
		row.RecomputeRate = float64(row.Recomputes) / float64(row.Moves)
	}

	latMu.Lock()
	row.ChurnDeltas = len(latencies)
	var sum, max time.Duration
	for _, l := range latencies {
		sum += l
		if l > max {
			max = l
		}
	}
	latMu.Unlock()
	if row.ChurnDeltas > 0 {
		row.PushMeanMS = float64(sum.Microseconds()) / 1e3 / float64(row.ChurnDeltas)
		row.PushMaxMS = float64(max.Microseconds()) / 1e3
	}
	progress(fmt.Sprintf("continuous: %d sessions — %.0f moves/s, recompute rate %.1f%%, %d pushes, churn push mean %.2fms",
		sessions, row.MovesPS, 100*row.RecomputeRate, row.Pushes, row.PushMeanMS))
	return row, nil
}
