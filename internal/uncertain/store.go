package uncertain

import (
	"fmt"
	"sync/atomic"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/pager"
)

// Store keeps the full uncertainty information of every object (region
// and pdf histogram) on its own simulated disk page, mirroring the
// paper's setup where "the uncertainty information about the objects is
// stored in the disk". Fetch goes through the pager and therefore counts
// toward object-retrieval I/O; construction-time code uses the
// in-memory accessors, which do not.
//
// Deletion is a tombstone: the dense id space 0..Len()-1 never shrinks
// or renumbers (leaf tuples, cr-sets and R-tree entries address objects
// by id), a deleted object merely stops being live. Dead slots stay
// addressable through Dense/At so geometric code can keep positional
// id lookups; live-only consumers iterate with All or check Alive.
//
// The population is published as an immutable View behind an atomic
// pointer so lock-free queries read a CONSISTENT population snapshot
// while mutations run: a mutator builds the next view (appends extend
// shared backing arrays past every published length; Delete copies the
// tombstone array) and publishes it with one pointer store. Mutators
// themselves must be externally serialized (the DB's store mutex does
// this); only the reader side is synchronization-free.
type Store struct {
	pg  *pager.Pager
	hdr atomic.Pointer[View]
}

// View is one immutable population snapshot. All read accessors exist
// on both Store (loading the current view per call) and View (pinning
// one snapshot across a multi-step read, the lock-free query path).
type View struct {
	pg     *pager.Pager
	pageOf []pager.PageID
	objs   []Object
	dead   []bool // tombstones, indexed like objs
	nDead  int
}

// ObjectPageBytes is the recommended page size for object stores: a
// record is ~30 + 8·bins bytes (190 with the default 20 bars), so full
// 4 KB pages would waste most of the simulated disk's RAM at large
// dataset sizes. I/O accounting (one page per object) is unchanged.
const ObjectPageBytes = 1024

// NewStore writes every object to its own page of pg and returns the
// store. Objects must have dense IDs 0..n-1 and their records must fit
// one page.
func NewStore(objs []Object, pg *pager.Pager) (*Store, error) {
	v := &View{pg: pg, pageOf: make([]pager.PageID, len(objs)), objs: objs, dead: make([]bool, len(objs))}
	for i, o := range objs {
		if int(o.ID) != i {
			return nil, fmt.Errorf("uncertain: object at index %d has ID %d; stores need dense IDs", i, o.ID)
		}
		buf, err := encodeObject(o, pg.PageSize())
		if err != nil {
			return nil, err
		}
		v.pageOf[i] = pg.Alloc(buf)
	}
	s := &Store{pg: pg}
	s.hdr.Store(v)
	return s, nil
}

func encodeObject(o Object, pageSize int) ([]byte, error) {
	rec := pager.ObjectRecord{
		ID: o.ID,
		CX: o.Region.C.X, CY: o.Region.C.Y, R: o.Region.R,
		Weights: o.PDF.Weights(),
	}
	buf := pager.EncodeObjectRecord(rec)
	if len(buf) > pageSize {
		return nil, fmt.Errorf("uncertain: object %d record (%d bytes, %d pdf bars) exceeds the %d-byte page",
			o.ID, len(buf), o.PDF.Bins(), pageSize)
	}
	return buf, nil
}

// OpenStoreSnapshot reattaches a store to a pager that already holds
// every object record — pages 0..n-1 in id order, as NewStore lays them
// out (it allocates one page per object, sequentially, and never frees
// one, so pageOf[i] == i by construction; page-image snapshots persist
// that invariant). Objects are decoded from the pages themselves, no
// re-encoding or page writes happen, so the pager can be an mmap-backed
// read-only FileStore. dead marks tombstoned slots (nil for none).
func OpenStoreSnapshot(pg *pager.Pager, n int, dead []bool) (*Store, error) {
	if pg.NumPages() != n {
		return nil, fmt.Errorf("uncertain: snapshot store holds %d pages, want %d", pg.NumPages(), n)
	}
	if dead == nil {
		dead = make([]bool, n)
	} else if len(dead) != n {
		return nil, fmt.Errorf("uncertain: snapshot tombstone array of %d, want %d", len(dead), n)
	}
	v := &View{pg: pg, pageOf: make([]pager.PageID, n), objs: make([]Object, n), dead: dead}
	for i := 0; i < n; i++ {
		v.pageOf[i] = pager.PageID(i)
		rec, err := pager.DecodeObjectRecordInto(pg.Peek(pager.PageID(i)), nil)
		if err != nil {
			return nil, fmt.Errorf("uncertain: snapshot object page %d: %w", i, err)
		}
		if int(rec.ID) != i {
			return nil, fmt.Errorf("uncertain: snapshot page %d holds object %d", i, rec.ID)
		}
		pdf, err := NewHistogramPDF(rec.Weights)
		if err != nil {
			return nil, fmt.Errorf("uncertain: snapshot object %d: %w", i, err)
		}
		v.objs[i] = Object{
			ID:     rec.ID,
			Region: geom.Circle{C: geom.Pt(rec.CX, rec.CY), R: rec.R},
			PDF:    pdf,
		}
		if dead[i] {
			v.nDead++
		}
	}
	s := &Store{pg: pg}
	s.hdr.Store(v)
	return s, nil
}

// View returns the current population snapshot. A reader that must see
// one consistent population across several calls (candidate filter +
// fetch, for instance) captures a view once and reads through it.
func (s *Store) View() *View { return s.hdr.Load() }

// Len returns the size of the dense id space: every object ever stored,
// dead or alive. The next Append must use ID Len(); deleted ids are
// never reused. Use Live for the population count.
func (s *Store) Len() int { return s.hdr.Load().Len() }

// Len is Store.Len on one snapshot.
func (v *View) Len() int { return len(v.objs) }

// Live returns the number of live (non-deleted) objects.
func (s *Store) Live() int { return s.hdr.Load().Live() }

// Live is Store.Live on one snapshot.
func (v *View) Live() int { return len(v.objs) - v.nDead }

// Alive reports whether id names a live object.
func (s *Store) Alive(id int32) bool { return s.hdr.Load().Alive(id) }

// Alive is Store.Alive on one snapshot.
func (v *View) Alive(id int32) bool {
	return id >= 0 && int(id) < len(v.objs) && !v.dead[id]
}

// Delete tombstones object id. The slot stays addressable through
// Dense/At (index structures may still hold geometric references) but
// the object no longer appears in All and can no longer be Fetched.
func (s *Store) Delete(id int32) error {
	v := s.hdr.Load()
	if id < 0 || int(id) >= len(v.objs) {
		return fmt.Errorf("uncertain: delete of unknown object %d", id)
	}
	if v.dead[id] {
		return fmt.Errorf("uncertain: object %d already deleted", id)
	}
	dead := make([]bool, len(v.dead))
	copy(dead, v.dead)
	dead[id] = true
	s.hdr.Store(&View{pg: v.pg, pageOf: v.pageOf, objs: v.objs, dead: dead, nDead: v.nDead + 1})
	return nil
}

// All returns the live objects (no I/O accounted). With no deletions it
// is the shared dense slice (callers must not modify it); once objects
// have been deleted it is a fresh filtered copy, so positions no longer
// equal ids — use Dense or At for positional access by id.
func (s *Store) All() []Object { return s.hdr.Load().All() }

// All is Store.All on one snapshot.
func (v *View) All() []Object {
	if v.nDead == 0 {
		return v.objs
	}
	out := make([]Object, 0, v.Live())
	for i := range v.objs {
		if !v.dead[i] {
			out = append(out, v.objs[i])
		}
	}
	return out
}

// Dense returns the raw dense slice, dead slots included, so that
// objs[id] addresses object id. Callers must not modify it and must
// check Alive before treating an entry as part of the population.
func (s *Store) Dense() []Object { return s.hdr.Load().objs }

// Dense is Store.Dense on one snapshot.
func (v *View) Dense() []Object { return v.objs }

// At returns object i from memory (no I/O accounted), whether or not it
// is live: index maintenance needs the geometry of tombstoned slots.
func (s *Store) At(i int) Object { return s.hdr.Load().objs[i] }

// At is Store.At on one snapshot.
func (v *View) At(i int) Object { return v.objs[i] }

// PageOf returns the disk page id holding object i's record; it is the
// value stored in leaf-tuple pointers.
func (s *Store) PageOf(i int32) pager.PageID { return s.hdr.Load().pageOf[i] }

// Fetch reads object id's record from disk (one page read) and decodes
// it. It is the query-time path, used so that object-retrieval I/O and
// decode time are accounted realistically.
func (s *Store) Fetch(id int32) (Object, error) {
	return s.hdr.Load().FetchWith(id, nil)
}

// Fetch is Store.Fetch on one snapshot.
func (v *View) Fetch(id int32) (Object, error) {
	return v.FetchWith(id, nil)
}

// FetchScratch reuses the decode buffers of FetchWith across queries:
// one weights staging buffer plus a grow-only pool of HistogramPDF
// structs (every candidate fetched within one query needs its own live
// pdf, so the pool hands out a fresh struct per fetch and Reset returns
// them all). Objects fetched before a Reset must no longer be in use —
// the PNN path copies what it returns (ids and probabilities) before
// resetting. Single-goroutine state, like the other scratches.
type FetchScratch struct {
	weights []float64
	pdfs    []*HistogramPDF
	used    int
}

// Reset makes every pooled pdf reusable again.
func (sc *FetchScratch) Reset() { sc.used = 0 }

func (sc *FetchScratch) nextPDF() *HistogramPDF {
	if sc.used == len(sc.pdfs) {
		sc.pdfs = append(sc.pdfs, &HistogramPDF{})
	}
	p := sc.pdfs[sc.used]
	sc.used++
	return p
}

// FetchWith is Fetch through an optional decode scratch: the page read
// (and its I/O accounting) is identical, but the weights buffer and the
// pdf normalization arrays are reused instead of allocated per fetch.
// A nil scratch allocates fresh, making it identical to Fetch; either
// way the decoded object is bitwise identical.
func (s *Store) FetchWith(id int32, sc *FetchScratch) (Object, error) {
	return s.hdr.Load().FetchWith(id, sc)
}

// FetchWith is Store.FetchWith on one snapshot.
func (v *View) FetchWith(id int32, sc *FetchScratch) (Object, error) {
	if id < 0 || int(id) >= len(v.pageOf) {
		return Object{}, fmt.Errorf("uncertain: fetch of unknown object %d", id)
	}
	if v.dead[id] {
		return Object{}, fmt.Errorf("uncertain: fetch of deleted object %d", id)
	}
	var buf []float64
	if sc != nil {
		buf = sc.weights[:0]
	}
	rec, err := pager.DecodeObjectRecordInto(v.pg.Read(v.pageOf[id]), buf)
	if err != nil {
		return Object{}, fmt.Errorf("uncertain: object %d: %w", id, err)
	}
	var pdf *HistogramPDF
	if sc != nil {
		sc.weights = rec.Weights
		pdf = sc.nextPDF()
		err = pdf.setWeights(rec.Weights)
	} else {
		pdf, err = NewHistogramPDF(rec.Weights)
	}
	if err != nil {
		return Object{}, fmt.Errorf("uncertain: object %d: %w", id, err)
	}
	return Object{
		ID:     rec.ID,
		Region: geom.Circle{C: geom.Pt(rec.CX, rec.CY), R: rec.R},
		PDF:    pdf,
	}, nil
}

// Pager exposes the underlying pager for I/O accounting.
func (s *Store) Pager() *pager.Pager { return s.pg }

// Append adds a new object to the store on a fresh disk page. Its ID
// must be the next dense id (current Len). Supports the incremental-
// update extension of the UV-index.
//
// The append extends the current view's backing arrays in place where
// capacity allows: no published view's length covers the appended slot,
// so concurrent snapshot readers never observe the write.
func (s *Store) Append(o Object) error {
	v := s.hdr.Load()
	if int(o.ID) != len(v.objs) {
		return fmt.Errorf("uncertain: appended object has ID %d, want %d", o.ID, len(v.objs))
	}
	buf, err := encodeObject(o, s.pg.PageSize())
	if err != nil {
		return err
	}
	s.hdr.Store(&View{
		pg:     v.pg,
		pageOf: append(v.pageOf, s.pg.Alloc(buf)),
		objs:   append(v.objs, o),
		dead:   append(v.dead, false),
		nDead:  v.nDead,
	})
	return nil
}

// RemoveLast pops the most recently appended object, undoing an Append
// whose follow-up index insertion failed (the insert rollback path).
// The truncated view gets FRESH backing arrays: a later Append must
// never rewrite a slot that an older, longer view still publishes.
func (s *Store) RemoveLast() error {
	v := s.hdr.Load()
	n := len(v.objs)
	if n == 0 {
		return fmt.Errorf("uncertain: RemoveLast on empty store")
	}
	nv := &View{
		pg:     v.pg,
		pageOf: append([]pager.PageID(nil), v.pageOf[:n-1]...),
		objs:   append([]Object(nil), v.objs[:n-1]...),
		dead:   append([]bool(nil), v.dead[:n-1]...),
		nDead:  v.nDead,
	}
	if v.dead[n-1] {
		nv.nDead--
	}
	s.hdr.Store(nv)
	return nil
}
