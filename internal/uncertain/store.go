package uncertain

import (
	"fmt"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/pager"
)

// Store keeps the full uncertainty information of every object (region
// and pdf histogram) on its own simulated disk page, mirroring the
// paper's setup where "the uncertainty information about the objects is
// stored in the disk". Fetch goes through the pager and therefore counts
// toward object-retrieval I/O; construction-time code uses the
// in-memory accessors, which do not.
type Store struct {
	pg     *pager.Pager
	pageOf []pager.PageID
	objs   []Object
}

// ObjectPageBytes is the recommended page size for object stores: a
// record is ~30 + 8·bins bytes (190 with the default 20 bars), so full
// 4 KB pages would waste most of the simulated disk's RAM at large
// dataset sizes. I/O accounting (one page per object) is unchanged.
const ObjectPageBytes = 1024

// NewStore writes every object to its own page of pg and returns the
// store. Objects must have dense IDs 0..n-1 and their records must fit
// one page.
func NewStore(objs []Object, pg *pager.Pager) (*Store, error) {
	s := &Store{pg: pg, pageOf: make([]pager.PageID, len(objs)), objs: objs}
	for i, o := range objs {
		if int(o.ID) != i {
			return nil, fmt.Errorf("uncertain: object at index %d has ID %d; stores need dense IDs", i, o.ID)
		}
		buf, err := encodeObject(o, pg.PageSize())
		if err != nil {
			return nil, err
		}
		s.pageOf[i] = pg.Alloc(buf)
	}
	return s, nil
}

func encodeObject(o Object, pageSize int) ([]byte, error) {
	rec := pager.ObjectRecord{
		ID: o.ID,
		CX: o.Region.C.X, CY: o.Region.C.Y, R: o.Region.R,
		Weights: o.PDF.Weights(),
	}
	buf := pager.EncodeObjectRecord(rec)
	if len(buf) > pageSize {
		return nil, fmt.Errorf("uncertain: object %d record (%d bytes, %d pdf bars) exceeds the %d-byte page",
			o.ID, len(buf), o.PDF.Bins(), pageSize)
	}
	return buf, nil
}

// Len returns the number of objects.
func (s *Store) Len() int { return len(s.objs) }

// All returns the in-memory objects (no I/O accounted). The slice is
// shared; callers must not modify it.
func (s *Store) All() []Object { return s.objs }

// At returns object i from memory (no I/O accounted).
func (s *Store) At(i int) Object { return s.objs[i] }

// PageOf returns the disk page id holding object i's record; it is the
// value stored in leaf-tuple pointers.
func (s *Store) PageOf(i int32) pager.PageID { return s.pageOf[i] }

// Fetch reads object id's record from disk (one page read) and decodes
// it. It is the query-time path, used so that object-retrieval I/O and
// decode time are accounted realistically.
func (s *Store) Fetch(id int32) (Object, error) {
	if id < 0 || int(id) >= len(s.pageOf) {
		return Object{}, fmt.Errorf("uncertain: fetch of unknown object %d", id)
	}
	rec, err := pager.DecodeObjectRecord(s.pg.Read(s.pageOf[id]))
	if err != nil {
		return Object{}, fmt.Errorf("uncertain: object %d: %w", id, err)
	}
	pdf, err := NewHistogramPDF(rec.Weights)
	if err != nil {
		return Object{}, fmt.Errorf("uncertain: object %d: %w", id, err)
	}
	return Object{
		ID:     rec.ID,
		Region: geom.Circle{C: geom.Pt(rec.CX, rec.CY), R: rec.R},
		PDF:    pdf,
	}, nil
}

// Pager exposes the underlying pager for I/O accounting.
func (s *Store) Pager() *pager.Pager { return s.pg }

// Append adds a new object to the store on a fresh disk page. Its ID
// must be the next dense id (current Len). Supports the incremental-
// update extension of the UV-index.
func (s *Store) Append(o Object) error {
	if int(o.ID) != len(s.objs) {
		return fmt.Errorf("uncertain: appended object has ID %d, want %d", o.ID, len(s.objs))
	}
	buf, err := encodeObject(o, s.pg.PageSize())
	if err != nil {
		return err
	}
	s.pageOf = append(s.pageOf, s.pg.Alloc(buf))
	s.objs = append(s.objs, o)
	return nil
}
