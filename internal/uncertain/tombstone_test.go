package uncertain

import (
	"testing"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/pager"
)

func tombstoneStore(t *testing.T, n int) *Store {
	t.Helper()
	objs := make([]Object, n)
	for i := range objs {
		objs[i] = New(int32(i), geom.Circle{C: geom.Pt(float64(10*i), 5), R: 2}, nil)
	}
	s, err := NewStore(objs, pager.New(ObjectPageBytes))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreDelete(t *testing.T) {
	s := tombstoneStore(t, 5)
	if s.Len() != 5 || s.Live() != 5 {
		t.Fatalf("fresh store: Len=%d Live=%d", s.Len(), s.Live())
	}

	if err := s.Delete(2); err != nil {
		t.Fatal(err)
	}
	if s.Alive(2) {
		t.Fatal("deleted object reported alive")
	}
	if s.Len() != 5 {
		t.Fatalf("Len changed on delete: %d", s.Len())
	}
	if s.Live() != 4 {
		t.Fatalf("Live = %d, want 4", s.Live())
	}
	if err := s.Delete(2); err == nil {
		t.Fatal("double delete accepted")
	}
	if err := s.Delete(17); err == nil {
		t.Fatal("out-of-range delete accepted")
	}
	if err := s.Delete(-1); err == nil {
		t.Fatal("negative delete accepted")
	}

	// All skips the dead slot; Dense keeps it addressable.
	all := s.All()
	if len(all) != 4 {
		t.Fatalf("All returned %d objects, want 4", len(all))
	}
	for _, o := range all {
		if o.ID == 2 {
			t.Fatal("All returned the deleted object")
		}
	}
	if dense := s.Dense(); len(dense) != 5 || dense[2].ID != 2 {
		t.Fatalf("Dense lost positional addressing: %v", dense)
	}
	if s.At(2).ID != 2 {
		t.Fatal("At stopped addressing the tombstoned slot")
	}

	// Fetch of a dead object fails; live fetches still work.
	if _, err := s.Fetch(2); err == nil {
		t.Fatal("Fetch returned a deleted object")
	}
	if o, err := s.Fetch(3); err != nil || o.ID != 3 {
		t.Fatalf("live fetch broken: %v %v", o, err)
	}
}

func TestStoreAppendAfterDelete(t *testing.T) {
	s := tombstoneStore(t, 3)
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	// The dense id space never shrinks: the next id is Len, not Live.
	next := New(int32(s.Len()), geom.Circle{C: geom.Pt(99, 5), R: 2}, nil)
	if err := s.Append(next); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 || s.Live() != 3 {
		t.Fatalf("after append: Len=%d Live=%d", s.Len(), s.Live())
	}
	if !s.Alive(3) || s.Alive(1) {
		t.Fatal("aliveness wrong after append")
	}

	// RemoveLast (insert rollback) pops the appended object.
	if err := s.RemoveLast(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Live() != 2 {
		t.Fatalf("after rollback: Len=%d Live=%d", s.Len(), s.Live())
	}
}
