package uncertain

import (
	"fmt"
	"math"
)

// Additional pdf families beyond the paper's uniform and Gaussian
// defaults. The uncertainty model of Section III allows an arbitrary
// pdf over the region; these constructors cover shapes that arise in
// the motivating applications.

// FromDensity discretizes an arbitrary radial density into a ring
// histogram: f(r) is the (unnormalized) density per unit AREA at
// normalized radius r ∈ [0, 1]. Ring masses are computed by midpoint
// quadrature of 2πr·f(r), so any radially symmetric law can be plugged
// into the uncertainty model.
func FromDensity(bins int, f func(r float64) float64) (*HistogramPDF, error) {
	if bins <= 0 {
		bins = DefaultBins
	}
	const sub = 16
	w := make([]float64, bins)
	for k := 0; k < bins; k++ {
		a := float64(k) / float64(bins)
		b := float64(k+1) / float64(bins)
		acc := 0.0
		for s := 0; s < sub; s++ {
			r := a + (b-a)*(float64(s)+0.5)/sub
			d := f(r)
			if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				return nil, fmt.Errorf("uncertain: density %v at r=%v", d, r)
			}
			acc += 2 * math.Pi * r * d
		}
		w[k] = acc * (b - a) / sub
	}
	return NewHistogramPDF(w)
}

// Ring returns an annulus pdf: the position is uniformly distributed
// over the ring inner ≤ ρ ≤ 1 (normalized radius) and impossible
// inside. This models measurements that fix a distance but not a
// bearing — e.g. a device localized by signal round-trip time from a
// known anchor, one of the cloaking shapes suggested by the privacy
// literature the paper cites ([9], [10]).
func Ring(bins int, inner float64) (*HistogramPDF, error) {
	if inner < 0 || inner >= 1 {
		return nil, fmt.Errorf("uncertain: ring inner radius %v outside [0,1)", inner)
	}
	return FromDensity(bins, func(r float64) float64 {
		if r < inner {
			return 0
		}
		return 1
	})
}

// Exponential returns a pdf whose density decays exponentially with
// the distance from the center, f(r) ∝ exp(−r/scale) per unit area —
// a heavier-tailed alternative to the Gaussian for sensor error models.
func Exponential(bins int, scale float64) (*HistogramPDF, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("uncertain: exponential scale %v must be positive", scale)
	}
	return FromDensity(bins, func(r float64) float64 {
		return math.Exp(-r / scale)
	})
}

// Mean returns the expected normalized distance from the center,
// E[ρ], computed from the histogram (area-uniform within each ring the
// conditional mean of ρ on [a,b] is 2(b³−a³)/(3(b²−a²))).
func (p *HistogramPDF) Mean() float64 {
	n := len(p.bins)
	acc := 0.0
	for k, w := range p.bins {
		if w == 0 {
			continue
		}
		a := float64(k) / float64(n)
		b := float64(k+1) / float64(n)
		acc += w * 2 * (b*b*b - a*a*a) / (3 * (b*b - a*a))
	}
	return acc
}
