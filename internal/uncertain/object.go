// Package uncertain implements the attribute-uncertainty data model of
// the paper: an uncertain object has a closed circular uncertainty
// region (its minimum bounding circle, MBC) and a radially symmetric
// probability density over that region, stored as a histogram of
// concentric rings (the paper uses 20 bars).
//
// Non-circular uncertainty regions are supported by converting them to
// their minimum bounding circle (Section III-C), which preserves
// correctness of PNN answers (the UV-cell can only grow).
package uncertain

import (
	"fmt"
	"math/rand"

	"uvdiagram/internal/geom"
)

// Object is an uncertain object: the true position is distributed inside
// Region according to PDF. Datasets use dense IDs 0..n-1 so that an
// Object's ID doubles as its index.
type Object struct {
	ID     int32
	Region geom.Circle
	PDF    *HistogramPDF
}

// New returns an uncertain object with the given circular region and pdf.
// A nil pdf defaults to the uniform distribution.
func New(id int32, region geom.Circle, pdf *HistogramPDF) Object {
	if pdf == nil {
		pdf = Uniform(DefaultBins)
	}
	return Object{ID: id, Region: region, PDF: pdf}
}

// FromPolygon builds an uncertain object from a non-circular uncertainty
// region given by its vertices: the region is replaced by its minimum
// bounding circle as prescribed in Section III-C of the paper.
func FromPolygon(id int32, vertices []geom.Point, pdf *HistogramPDF) (Object, error) {
	if len(vertices) == 0 {
		return Object{}, fmt.Errorf("uncertain: FromPolygon with no vertices")
	}
	return New(id, geom.MinEnclosingCircle(vertices), pdf), nil
}

// DistMin returns the minimum possible distance between q and the
// object's true position (Equation 2): zero when q is inside the region.
func (o Object) DistMin(q geom.Point) float64 {
	d := q.Dist(o.Region.C) - o.Region.R
	if d < 0 {
		return 0
	}
	return d
}

// DistMax returns the maximum possible distance between q and the
// object's true position (Equation 3).
func (o Object) DistMax(q geom.Point) float64 {
	return q.Dist(o.Region.C) + o.Region.R
}

// Sample draws a position from the object's distribution.
func (o Object) Sample(rng *rand.Rand) geom.Point {
	if o.Region.R == 0 {
		return o.Region.C
	}
	r := o.PDF.SampleRadius(rng) * o.Region.R
	phi := rng.Float64() * 2 * math2Pi
	return o.Region.C.Add(geom.PolarUnit(phi).Scale(r))
}

const math2Pi = 6.283185307179586

// MBC returns the object's minimum bounding circle (its Region; the
// name follows the leaf-tuple field of the UV-index, Section V-A).
func (o Object) MBC() geom.Circle { return o.Region }
