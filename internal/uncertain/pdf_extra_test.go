package uncertain

import (
	"math"
	"math/rand"
	"testing"
)

func TestFromDensityRecoversUniform(t *testing.T) {
	got, err := FromDensity(20, func(r float64) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	want := Uniform(20)
	for k := 0; k < 20; k++ {
		if math.Abs(got.Bin(k)-want.Bin(k)) > 1e-9 {
			t.Fatalf("bin %d: %v vs uniform %v", k, got.Bin(k), want.Bin(k))
		}
	}
}

func TestFromDensityRecoversGaussian(t *testing.T) {
	sigma := 1.0 / 3
	got, err := FromDensity(200, func(r float64) float64 {
		return math.Exp(-r * r / (2 * sigma * sigma))
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Gaussian(200, sigma)
	for k := 0; k < 200; k++ {
		if math.Abs(got.Bin(k)-want.Bin(k)) > 1e-4 {
			t.Fatalf("bin %d: %v vs closed-form %v", k, got.Bin(k), want.Bin(k))
		}
	}
}

func TestFromDensityRejectsInvalid(t *testing.T) {
	if _, err := FromDensity(10, func(r float64) float64 { return -1 }); err == nil {
		t.Fatal("negative density accepted")
	}
	if _, err := FromDensity(10, func(r float64) float64 { return math.NaN() }); err == nil {
		t.Fatal("NaN density accepted")
	}
	if _, err := FromDensity(10, func(r float64) float64 { return 0 }); err == nil {
		t.Fatal("zero-mass density accepted")
	}
}

func TestRingPDF(t *testing.T) {
	p, err := Ring(20, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// No mass strictly inside the inner radius.
	if c := p.CumRadius(0.45); c != 0 {
		t.Fatalf("mass inside ring hole: %v", c)
	}
	if c := p.CumRadius(1); c != 1 {
		t.Fatalf("total mass %v", c)
	}
	// Mass of [0.5, 0.75] vs [0.75, 1] for an area-uniform annulus:
	// proportional to (0.75²−0.5²) vs (1²−0.75²).
	m1 := p.CumRadius(0.75) - p.CumRadius(0.5)
	m2 := p.CumRadius(1) - p.CumRadius(0.75)
	want := (0.75*0.75 - 0.25) / (1 - 0.75*0.75)
	if math.Abs(m1/m2-want) > 0.01 {
		t.Fatalf("ring mass ratio %v, want %v", m1/m2, want)
	}
	if _, err := Ring(20, 1.0); err == nil {
		t.Fatal("inner radius 1 accepted")
	}
	if _, err := Ring(20, -0.1); err == nil {
		t.Fatal("negative inner radius accepted")
	}
}

func TestExponentialPDF(t *testing.T) {
	p, err := Exponential(40, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Density decays: early rings (scaled by area 2πr) peak then drop;
	// mass beyond 3 scales should be small relative to the peak.
	tail := 1 - p.CumRadius(0.8)
	head := p.CumRadius(0.4)
	if tail > head {
		t.Fatalf("exponential tail %v heavier than head %v", tail, head)
	}
	if _, err := Exponential(40, 0); err == nil {
		t.Fatal("zero scale accepted")
	}
}

func TestMean(t *testing.T) {
	// Uniform disk: E[ρ] = 2/3.
	if m := Uniform(200).Mean(); math.Abs(m-2.0/3) > 1e-3 {
		t.Fatalf("uniform mean %v, want 2/3", m)
	}
	// Ring with inner → 1 concentrates near the rim: mean → 1.
	p, err := Ring(400, 0.98)
	if err != nil {
		t.Fatal(err)
	}
	if m := p.Mean(); m < 0.97 {
		t.Fatalf("thin ring mean %v", m)
	}
	// Monte-Carlo agreement for the Gaussian.
	rng := rand.New(rand.NewSource(1))
	g := PaperGaussian()
	acc := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		acc += g.SampleRadius(rng)
	}
	if mc := acc / n; math.Abs(mc-g.Mean()) > 0.01 {
		t.Fatalf("Gaussian mean %v vs Monte-Carlo %v", g.Mean(), mc)
	}
}

func TestRingPDFEndToEnd(t *testing.T) {
	// A ring-pdf object still produces a valid distance CDF through the
	// shared lens-area machinery (exercised via CumRadius bounds here;
	// prob-level checks live in the prob package).
	p, err := Ring(DefaultBins, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i := 0; i <= 50; i++ {
		r := float64(i) / 50
		c := p.CumRadius(r)
		if c < prev-1e-12 || c < 0 || c > 1 {
			t.Fatalf("CumRadius(%v) = %v not monotone in [0,1]", r, c)
		}
		prev = c
	}
}
