package uncertain

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewHistogramPDFValidation(t *testing.T) {
	if _, err := NewHistogramPDF(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := NewHistogramPDF([]float64{0, 0}); err == nil {
		t.Error("zero mass accepted")
	}
	if _, err := NewHistogramPDF([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewHistogramPDF([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN weight accepted")
	}
	p, err := NewHistogramPDF([]float64{2, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Bin(2); got != 0.5 {
		t.Errorf("Bin(2) = %v, want 0.5", got)
	}
}

func TestUniformPDF(t *testing.T) {
	p := Uniform(DefaultBins)
	if p.Bins() != DefaultBins {
		t.Fatalf("bins = %d", p.Bins())
	}
	// Uniform over the disk: P(ρ ≤ r) = r².
	for _, r := range []float64{0, 0.1, 0.35, 0.5, 0.77, 1} {
		if got := p.CumRadius(r); math.Abs(got-r*r) > 1e-12 {
			t.Errorf("CumRadius(%v) = %v, want %v", r, got, r*r)
		}
	}
}

func TestGaussianPDFShape(t *testing.T) {
	p := PaperGaussian()
	if p.Bins() != DefaultBins {
		t.Fatalf("bins = %d", p.Bins())
	}
	// Rayleigh cdf truncated to [0,1]: most mass well inside (σ = 1/3).
	if c := p.CumRadius(1.0 / 3.0); c < 0.3 || c > 0.5 {
		t.Errorf("CumRadius(σ) = %v, want ≈ 0.39", c)
	}
	// Mass concentrated near the center compared to uniform.
	u := Uniform(DefaultBins)
	if p.CumRadius(0.5) <= u.CumRadius(0.5) {
		t.Error("Gaussian should concentrate more mass near the center than uniform")
	}
}

func TestCumRadiusMonotone(t *testing.T) {
	for _, p := range []*HistogramPDF{Uniform(20), PaperGaussian(), Gaussian(7, 0.8)} {
		prev := -1.0
		for i := 0; i <= 1000; i++ {
			r := float64(i) / 1000
			c := p.CumRadius(r)
			if c < prev-1e-15 {
				t.Fatalf("CumRadius not monotone at %v", r)
			}
			prev = c
		}
		if p.CumRadius(0) != 0 || p.CumRadius(1) != 1 {
			t.Error("CumRadius endpoints wrong")
		}
	}
}

func TestSampleRadiusMatchesCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, p := range []*HistogramPDF{Uniform(20), PaperGaussian()} {
		const n = 100000
		counts := 0
		const at = 0.6
		for i := 0; i < n; i++ {
			if p.SampleRadius(rng) <= at {
				counts++
			}
		}
		got := float64(counts) / n
		want := p.CumRadius(at)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("empirical P(ρ≤%v) = %v, cdf says %v", at, got, want)
		}
	}
}

func TestSampleRadiusInRange(t *testing.T) {
	p := PaperGaussian()
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := p.SampleRadius(rng)
		return r >= 0 && r <= 1
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestWeightsCopy(t *testing.T) {
	p := Uniform(5)
	w := p.Weights()
	w[0] = 99
	if p.Bin(0) == 99 {
		t.Error("Weights must return a copy")
	}
	sum := 0.0
	for _, v := range p.Weights() {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum = %v", sum)
	}
}
