package uncertain

import (
	"math"
	"math/rand"
	"testing"

	"uvdiagram/internal/geom"
)

func TestDistMinMax(t *testing.T) {
	o := New(0, geom.Circle{C: geom.Pt(0, 0), R: 2}, nil)
	q := geom.Pt(5, 0)
	if got := o.DistMin(q); got != 3 {
		t.Errorf("DistMin = %v", got)
	}
	if got := o.DistMax(q); got != 7 {
		t.Errorf("DistMax = %v", got)
	}
	// Query inside the region: DistMin is 0.
	if got := o.DistMin(geom.Pt(1, 0)); got != 0 {
		t.Errorf("DistMin inside = %v", got)
	}
	if got := o.DistMax(geom.Pt(1, 0)); got != 3 {
		t.Errorf("DistMax inside = %v", got)
	}
}

func TestPointObject(t *testing.T) {
	o := New(0, geom.Circle{C: geom.Pt(3, 4), R: 0}, nil)
	q := geom.Pt(0, 0)
	if o.DistMin(q) != 5 || o.DistMax(q) != 5 {
		t.Error("point object distances must coincide")
	}
	rng := rand.New(rand.NewSource(1))
	if o.Sample(rng) != geom.Pt(3, 4) {
		t.Error("point object must sample its center")
	}
}

func TestSampleInsideRegion(t *testing.T) {
	o := New(0, geom.Circle{C: geom.Pt(10, -3), R: 4}, PaperGaussian())
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		p := o.Sample(rng)
		if o.Region.C.Dist(p) > o.Region.R+1e-9 {
			t.Fatalf("sample %v outside region %v", p, o.Region)
		}
	}
}

// TestSampleDistanceBracket: empirical distances from an external point
// stay within [DistMin, DistMax].
func TestSampleDistanceBracket(t *testing.T) {
	o := New(0, geom.Circle{C: geom.Pt(0, 0), R: 3}, Uniform(20))
	q := geom.Pt(8, 1)
	dmin, dmax := o.DistMin(q), o.DistMax(q)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 5000; i++ {
		d := o.Sample(rng).Dist(q)
		if d < dmin-1e-9 || d > dmax+1e-9 {
			t.Fatalf("sampled distance %v outside [%v, %v]", d, dmin, dmax)
		}
	}
}

func TestFromPolygon(t *testing.T) {
	// A unit square: MBC is the circumcircle, radius √2/2.
	square := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)}
	o, err := FromPolygon(7, square, nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.ID != 7 {
		t.Errorf("ID = %d", o.ID)
	}
	if math.Abs(o.Region.R-math.Sqrt2/2) > 1e-9 {
		t.Errorf("MBC radius = %v, want %v", o.Region.R, math.Sqrt2/2)
	}
	for _, v := range square {
		if !o.Region.Contains(v) {
			t.Errorf("MBC does not contain vertex %v", v)
		}
	}
	if _, err := FromPolygon(0, nil, nil); err == nil {
		t.Error("empty polygon accepted")
	}
}

func TestNewDefaultsUniform(t *testing.T) {
	o := New(0, geom.Circle{C: geom.Pt(0, 0), R: 1}, nil)
	if o.PDF == nil || o.PDF.Bins() != DefaultBins {
		t.Error("nil pdf should default to uniform with DefaultBins bars")
	}
}
