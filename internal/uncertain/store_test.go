package uncertain

import (
	"math"
	"testing"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/pager"
)

func testObjects(n int) []Object {
	objs := make([]Object, n)
	for i := range objs {
		objs[i] = New(int32(i),
			geom.Circle{C: geom.Pt(float64(i)*10, float64(i%5)), R: 1 + float64(i%3)},
			PaperGaussian())
	}
	return objs
}

func TestStoreRoundTrip(t *testing.T) {
	pg := pager.New(pager.DefaultPageSize)
	objs := testObjects(10)
	st, err := NewStore(objs, pg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 10 {
		t.Fatalf("Len = %d", st.Len())
	}
	pg.ResetStats()
	for i := int32(0); i < 10; i++ {
		got, err := st.Fetch(i)
		if err != nil {
			t.Fatal(err)
		}
		want := objs[i]
		if got.ID != want.ID || got.Region != want.Region {
			t.Fatalf("object %d: got %+v, want %+v", i, got, want)
		}
		for k := 0; k < want.PDF.Bins(); k++ {
			if math.Abs(got.PDF.Bin(k)-want.PDF.Bin(k)) > 1e-15 {
				t.Fatalf("object %d bin %d: %v vs %v", i, k, got.PDF.Bin(k), want.PDF.Bin(k))
			}
		}
	}
	if pg.Reads() != 10 {
		t.Errorf("fetching 10 objects cost %d reads, want 10", pg.Reads())
	}
}

func TestStoreRejectsSparseIDs(t *testing.T) {
	objs := testObjects(3)
	objs[1].ID = 42
	if _, err := NewStore(objs, pager.New(ObjectPageBytes)); err == nil {
		t.Error("sparse IDs accepted")
	}
}

func TestStoreFetchUnknown(t *testing.T) {
	st, err := NewStore(testObjects(3), pager.New(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Fetch(99); err == nil {
		t.Error("fetch of unknown id succeeded")
	}
	if _, err := st.Fetch(-1); err == nil {
		t.Error("fetch of negative id succeeded")
	}
}
