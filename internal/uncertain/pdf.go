package uncertain

import (
	"fmt"
	"math"
	"math/rand"
)

// DefaultBins is the number of histogram bars used by the paper's
// experiments (Section VI-A).
const DefaultBins = 20

// HistogramPDF is a radially symmetric density over the unit disk,
// discretized into equal-width concentric rings: Bin(k) is the
// probability that the normalized distance from the center lies in
// [k/n, (k+1)/n). Within a ring the density is uniform per unit area.
// Scaling to an object's actual radius is done by the callers.
type HistogramPDF struct {
	bins []float64 // normalized to sum to 1
	cum  []float64 // cum[k] = sum of bins[0..k-1]; len = n+1
}

// NewHistogramPDF builds a pdf from raw non-negative ring masses,
// normalizing them to sum to 1.
func NewHistogramPDF(weights []float64) (*HistogramPDF, error) {
	p := &HistogramPDF{}
	if err := p.setWeights(weights); err != nil {
		return nil, err
	}
	return p, nil
}

// setWeights (re)normalizes weights into p, reusing p's buffers when
// they are large enough — the pooled decode path of Store.FetchWith.
// The arithmetic is exactly NewHistogramPDF's, so a reused pdf is
// bitwise identical to a freshly allocated one.
func (p *HistogramPDF) setWeights(weights []float64) error {
	if len(weights) == 0 {
		return fmt.Errorf("uncertain: histogram pdf needs at least one bin")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("uncertain: bin %d has invalid weight %v", i, w)
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("uncertain: histogram pdf has zero total mass")
	}
	n := len(weights)
	if cap(p.bins) < n || cap(p.cum) < n+1 {
		p.bins = make([]float64, n)
		p.cum = make([]float64, n+1)
	}
	p.bins = p.bins[:n]
	p.cum = p.cum[:n+1]
	p.cum[0] = 0
	for i, w := range weights {
		p.bins[i] = w / total
		p.cum[i+1] = p.cum[i] + p.bins[i]
	}
	p.cum[n] = 1
	return nil
}

// Uniform returns the pdf of a position uniformly distributed over the
// disk: ring masses proportional to ring areas.
func Uniform(bins int) *HistogramPDF {
	w := make([]float64, bins)
	for k := range w {
		a := float64(k) / float64(bins)
		b := float64(k+1) / float64(bins)
		w[k] = b*b - a*a
	}
	p, err := NewHistogramPDF(w)
	if err != nil {
		panic(err) // unreachable: weights are positive
	}
	return p
}

// Gaussian returns the pdf used throughout the paper's evaluation: a
// circular Gaussian centered at the region center with standard
// deviation sigmaFrac times the region radius (the paper sets the
// variance to the square of one sixth of the diameter, i.e.
// sigmaFrac = 1/3), truncated to the region and discretized into the
// given number of ring bars via the Rayleigh radial law.
func Gaussian(bins int, sigmaFrac float64) *HistogramPDF {
	if sigmaFrac <= 0 {
		panic("uncertain: Gaussian sigmaFrac must be positive")
	}
	w := make([]float64, bins)
	s2 := 2 * sigmaFrac * sigmaFrac
	for k := range w {
		a := float64(k) / float64(bins)
		b := float64(k+1) / float64(bins)
		// P(a ≤ ρ ≤ b) for Rayleigh: exp(-a²/2σ²) − exp(-b²/2σ²).
		w[k] = math.Exp(-a*a/s2) - math.Exp(-b*b/s2)
	}
	p, err := NewHistogramPDF(w)
	if err != nil {
		panic(err) // unreachable
	}
	return p
}

// PaperGaussian is the exact pdf configuration of Section VI-A: 20 bars,
// σ = diameter/6 = radius/3.
func PaperGaussian() *HistogramPDF { return Gaussian(DefaultBins, 1.0/3.0) }

// Bins returns the number of histogram bars.
func (p *HistogramPDF) Bins() int { return len(p.bins) }

// Bin returns the probability mass of ring k.
func (p *HistogramPDF) Bin(k int) float64 { return p.bins[k] }

// CumRadius returns P(ρ ≤ r) for the normalized radius r in [0, 1],
// interpolating uniformly in area inside a ring.
func (p *HistogramPDF) CumRadius(r float64) float64 {
	n := len(p.bins)
	if r <= 0 {
		return 0
	}
	if r >= 1 {
		return 1
	}
	k := int(r * float64(n))
	if k >= n {
		k = n - 1
	}
	a := float64(k) / float64(n)
	b := float64(k+1) / float64(n)
	frac := (r*r - a*a) / (b*b - a*a)
	return p.cum[k] + p.bins[k]*frac
}

// SampleRadius draws a normalized radius in [0, 1] from the radial law.
func (p *HistogramPDF) SampleRadius(rng *rand.Rand) float64 {
	u := rng.Float64()
	// Binary search the cumulative table.
	lo, hi := 0, len(p.bins)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cum[mid+1] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	k := lo
	if k >= len(p.bins) {
		k = len(p.bins) - 1
	}
	n := float64(len(p.bins))
	a := float64(k) / n
	b := float64(k+1) / n
	var frac float64
	if p.bins[k] > 0 {
		frac = (u - p.cum[k]) / p.bins[k]
	}
	// Uniform in area within the ring.
	return math.Sqrt(a*a + frac*(b*b-a*a))
}

// Weights returns a copy of the normalized bin masses (used by the page
// encoders).
func (p *HistogramPDF) Weights() []float64 {
	w := make([]float64, len(p.bins))
	copy(w, p.bins)
	return w
}
