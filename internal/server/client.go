package server

import (
	"fmt"
	"net"
	"sync"

	"uvdiagram"
	"uvdiagram/internal/wire"
)

// Client is a pipelined UV-diagram protocol client. Any number of
// requests may be in flight at once: Go queues a request without
// waiting for its response, the synchronous methods are Go plus a wait.
// The server answers strictly in request order, so a background reader
// goroutine matches responses to calls FIFO. A Client is safe for
// concurrent use from multiple goroutines.
type Client struct {
	wmu  sync.Mutex // serializes frame writes and queue appends
	conn net.Conn

	mu    sync.Mutex // guards queue and err
	queue []*Call    // outstanding calls, oldest first
	err   error      // sticky transport error; set once, fails everything after

	submu sync.Mutex               // guards subs
	subs  map[uint64]*Subscription // live subscriptions by server id
}

// Call is one in-flight request. When the response (or a transport
// error) arrives, the call is sent on Done.
type Call struct {
	Op   byte
	Err  error         // set on in-band server errors and transport failures
	Done chan *Call    // receives the call itself on completion
	r    *wire.Reader  // response payload on success
	sub  *Subscription // subscribe calls: registered by the read loop before completion
}

// Reader returns the response payload reader, or the call's error. It
// must only be used after the call was received from Done.
func (call *Call) Reader() (*wire.Reader, error) { return call.r, call.Err }

// complete delivers the finished call without ever blocking: a full
// Done channel drops the notification (net/rpc semantics), so a
// misbehaving consumer cannot stall the response reader.
func (call *Call) complete() {
	select {
	case call.Done <- call:
	default:
	}
}

// Dial connects to a UV-diagram server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an existing connection (e.g. a net.Pipe end in
// tests) and starts the response reader. Close releases it.
func NewClient(conn net.Conn) *Client {
	c := &Client{conn: conn}
	go c.readLoop()
	return c
}

// Close closes the connection; outstanding calls complete with an
// error.
func (c *Client) Close() error { return c.conn.Close() }

// Go queues one request and returns immediately. done may be nil for a
// fresh buffered channel, otherwise it must be buffered with room for
// every call it serves concurrently (one channel can serve many calls,
// rpc-style) — as in net/rpc, a completion that finds the channel full
// is dropped rather than allowed to stall the response reader. The
// returned call is sent on its Done channel when the response arrives.
func (c *Client) Go(op byte, payload []byte, done chan *Call) *Call {
	return c.goCall(op, payload, done, nil)
}

// goWithSub is Go for subscribe calls: the read loop registers sub
// (decoding the response into it) before completing the call, so no
// delta pushed right behind the response can miss the subscription.
func (c *Client) goWithSub(op byte, payload []byte, sub *Subscription) *Call {
	return c.goCall(op, payload, nil, sub)
}

func (c *Client) goCall(op byte, payload []byte, done chan *Call, sub *Subscription) *Call {
	if done == nil {
		done = make(chan *Call, 1)
	} else if cap(done) == 0 {
		panic("server: Go done channel is unbuffered")
	}
	call := &Call{Op: op, Done: done, sub: sub}
	// An oversized request is rejected before anything touches the
	// socket: the stream is still in sync, so only this call fails, not
	// the connection.
	if n := 1 + len(payload) + 4; n > wire.MaxFrame {
		call.Err = fmt.Errorf("client: request of %d bytes exceeds frame limit %d; split the batch", n, wire.MaxFrame)
		call.complete()
		return call
	}
	c.wmu.Lock()
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		c.wmu.Unlock()
		call.Err = err
		call.complete()
		return call
	}
	// Queue order must equal write order; both happen under wmu.
	c.queue = append(c.queue, call)
	c.mu.Unlock()
	err := wire.WriteFrame(c.conn, op, payload)
	c.wmu.Unlock()
	if err != nil {
		c.fail(fmt.Errorf("client: send: %w", err))
	}
	return call
}

// readLoop receives response frames and completes outstanding calls in
// FIFO order. It exits on the first transport error, failing every
// outstanding and future call.
func (c *Client) readLoop() {
	for {
		status, resp, err := wire.ReadFrame(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("client: receive: %w", err))
			return
		}
		if status == wire.PushAnswerDelta {
			// Out-of-band server push: not a response, consumes no call.
			if err := c.handlePush(resp); err != nil {
				c.fail(err)
				return
			}
			continue
		}
		c.mu.Lock()
		var call *Call
		if len(c.queue) > 0 {
			call = c.queue[0]
			c.queue = c.queue[1:]
		}
		c.mu.Unlock()
		if call == nil {
			c.fail(fmt.Errorf("client: response frame without outstanding request"))
			return
		}
		r := wire.NewReader(resp)
		switch status {
		case wire.StatusOK:
			call.r = r
			if call.sub != nil {
				call.Err = c.registerSub(call.sub, r)
			}
		case wire.StatusErr:
			msg := r.Str()
			if err := r.Err(); err != nil {
				call.Err = fmt.Errorf("client: malformed error response: %w", err)
			} else {
				call.Err = fmt.Errorf("server: %s", msg)
			}
		default:
			call.Err = fmt.Errorf("client: unknown response status 0x%02x", status)
		}
		call.complete()
	}
}

// fail records the first transport error and completes every
// outstanding call with it.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	} else {
		err = c.err
	}
	queue := c.queue
	c.queue = nil
	c.mu.Unlock()
	c.conn.Close()
	for _, call := range queue {
		call.Err = err
		call.complete()
	}
}

// send writes one fire-and-forget frame (OpMove): no call is queued and
// no response will arrive for it.
func (c *Client) send(op byte, payload []byte) error {
	c.wmu.Lock()
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		c.wmu.Unlock()
		return err
	}
	c.mu.Unlock()
	err := wire.WriteFrame(c.conn, op, payload)
	c.wmu.Unlock()
	if err != nil {
		c.fail(fmt.Errorf("client: send: %w", err))
	}
	return err
}

// roundTrip sends one request and waits for its response.
func (c *Client) roundTrip(op byte, payload []byte) (*wire.Reader, error) {
	call := c.Go(op, payload, nil)
	<-call.Done
	return call.r, call.Err
}

// Ping round-trips an empty frame.
func (c *Client) Ping() error {
	_, err := c.roundTrip(wire.OpPing, nil)
	return err
}

// Stats mirrors DB.Len, DB.Domain, DB.IndexStats and DB.NextID.
type Stats struct {
	Domain uvdiagram.Rect
	// Objects is the LIVE object count (deletions shrink it).
	Objects  int
	NonLeaf  int
	Leaves   int
	Pages    int
	MaxDepth int
	Entries  int64
	// NextID is the ID the next Insert must carry. After deletions it
	// exceeds Objects: the dense id space never shrinks or reuses ids.
	// Zero when talking to a pre-delete server that does not send it.
	NextID int32
	// Shards is the server's spatial shard count (0 when talking to a
	// pre-sharding server that does not send it).
	Shards int
	// ShardSlack is each shard's accumulated mutation slack since its
	// index was last (re)built, in shard order.
	ShardSlack []int64
	// GridX, GridY are the shard grid dimensions (0 when talking to a
	// pre-layout server that does not send them).
	GridX, GridY int
	// CutsX, CutsY are the layout's cut coordinates (GridX+1 and
	// GridY+1 values; equal strips or adaptive weighted-median cuts).
	CutsX, CutsY []float64
	// ShardLive is each shard's live-object count in shard order — the
	// load-balance signal DB.Reshard evens out.
	ShardLive []int
}

// LoadImbalance returns max/mean of ShardLive (1 = perfectly balanced;
// 0 when the server did not send shard loads).
func (st Stats) LoadImbalance() float64 {
	if len(st.ShardLive) == 0 {
		return 0
	}
	total, max := 0, 0
	for _, v := range st.ShardLive {
		total += v
		if v > max {
			max = v
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) * float64(len(st.ShardLive)) / float64(total)
}

// Stats fetches server-side database statistics.
func (c *Client) Stats() (Stats, error) {
	r, err := c.roundTrip(wire.OpStats, nil)
	if err != nil {
		return Stats{}, err
	}
	st := Stats{
		Domain: uvdiagram.Rect{
			Min: uvdiagram.Pt(r.F64(), r.F64()),
			Max: uvdiagram.Pt(r.F64(), r.F64()),
		},
		Objects:  int(r.U32()),
		NonLeaf:  int(r.U32()),
		Leaves:   int(r.U32()),
		Pages:    int(r.U32()),
		MaxDepth: int(r.U32()),
		Entries:  int64(r.U64()),
	}
	if r.Err() == nil && r.Remaining() >= 4 {
		st.NextID = r.I32()
	}
	if r.Err() == nil && r.Remaining() >= 4 {
		st.Shards = int(r.U32())
		if st.Shards > 0 && r.Remaining() >= 8*st.Shards {
			st.ShardSlack = make([]int64, st.Shards)
			for i := range st.ShardSlack {
				st.ShardSlack[i] = int64(r.U64())
			}
		}
	}
	// Layout block (appended by adaptive-layout servers): grid, cuts,
	// per-shard live counts.
	if r.Err() == nil && r.Remaining() >= 8 {
		gx, gy := int(r.U32()), int(r.U32())
		need := 8*(gx+1) + 8*(gy+1) + 4*st.Shards
		if gx >= 1 && gy >= 1 && gx*gy == st.Shards && r.Remaining() >= need {
			st.GridX, st.GridY = gx, gy
			st.CutsX = make([]float64, gx+1)
			for i := range st.CutsX {
				st.CutsX[i] = r.F64()
			}
			st.CutsY = make([]float64, gy+1)
			for i := range st.CutsY {
				st.CutsY[i] = r.F64()
			}
			st.ShardLive = make([]int, st.Shards)
			for i := range st.ShardLive {
				st.ShardLive[i] = int(r.U32())
			}
		}
	}
	return st, r.Err()
}

// Metrics fetches the server's observability snapshot: flattened
// (name, value) pairs sorted by name. Callers must ignore names they do
// not recognize — the metric set grows without a protocol bump.
func (c *Client) Metrics() ([]Metric, error) {
	r, err := c.roundTrip(wire.OpMetrics, nil)
	if err != nil {
		return nil, err
	}
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > r.Remaining() { // each metric is ≥ 12 bytes; cheap sanity cap
		return nil, fmt.Errorf("client: metric count %d exceeds payload", n)
	}
	out := make([]Metric, n)
	for i := range out {
		out[i] = Metric{Name: r.Str(), Value: r.F64()}
	}
	return out, r.Err()
}

// Metric is one named sample from the server's metrics snapshot.
type Metric struct {
	Name  string
	Value float64
}

func decodeAnswers(r *wire.Reader) ([]uvdiagram.Answer, error) {
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > r.Remaining() { // each answer is ≥ 12 bytes; cheap sanity cap
		return nil, fmt.Errorf("client: answer count %d exceeds payload", n)
	}
	out := make([]uvdiagram.Answer, n)
	for i := range out {
		out[i] = uvdiagram.Answer{ID: r.I32(), Prob: r.F64()}
	}
	return out, r.Err()
}

// PNN runs a probabilistic nearest-neighbor query.
func (c *Client) PNN(q uvdiagram.Point) ([]uvdiagram.Answer, error) {
	var b wire.Buffer
	b.F64(q.X)
	b.F64(q.Y)
	r, err := c.roundTrip(wire.OpPNN, b.Bytes())
	if err != nil {
		return nil, err
	}
	return decodeAnswers(r)
}

// TopKPNN runs a top-k probable nearest-neighbor query.
func (c *Client) TopKPNN(q uvdiagram.Point, k int) ([]uvdiagram.Answer, error) {
	var b wire.Buffer
	b.F64(q.X)
	b.F64(q.Y)
	b.U32(uint32(k))
	r, err := c.roundTrip(wire.OpTopK, b.Bytes())
	if err != nil {
		return nil, err
	}
	return decodeAnswers(r)
}

// decodeIDs reads a u32-prefixed list of object IDs.
func decodeIDs(r *wire.Reader) ([]int32, error) {
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > r.Remaining() {
		return nil, fmt.Errorf("client: id count %d exceeds payload", n)
	}
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = r.I32()
	}
	return ids, r.Err()
}

// PossibleKNN runs a possible-k-NN query, returning answer IDs.
func (c *Client) PossibleKNN(q uvdiagram.Point, k int) ([]int32, error) {
	var b wire.Buffer
	b.F64(q.X)
	b.F64(q.Y)
	b.U32(uint32(k))
	r, err := c.roundTrip(wire.OpPossibleKNN, b.Bytes())
	if err != nil {
		return nil, err
	}
	return decodeIDs(r)
}

// RNN runs a probabilistic reverse nearest-neighbor query.
func (c *Client) RNN(q uvdiagram.Point) ([]uvdiagram.RNNAnswer, error) {
	var b wire.Buffer
	b.F64(q.X)
	b.F64(q.Y)
	r, err := c.roundTrip(wire.OpRNN, b.Bytes())
	if err != nil {
		return nil, err
	}
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > r.Remaining() {
		return nil, fmt.Errorf("client: answer count %d exceeds payload", n)
	}
	out := make([]uvdiagram.RNNAnswer, n)
	for i := range out {
		out[i] = uvdiagram.RNNAnswer{ID: r.I32(), Prob: r.F64()}
	}
	return out, r.Err()
}

// CellArea fetches the approximate UV-cell area of an object.
func (c *Client) CellArea(id int32) (float64, error) {
	var b wire.Buffer
	b.I32(id)
	r, err := c.roundTrip(wire.OpCellArea, b.Bytes())
	if err != nil {
		return 0, err
	}
	area := r.F64()
	return area, r.Err()
}

// Partitions runs a UV-partition (density) query over a rectangle.
func (c *Client) Partitions(rect uvdiagram.Rect) ([]uvdiagram.Partition, error) {
	var b wire.Buffer
	b.F64(rect.Min.X)
	b.F64(rect.Min.Y)
	b.F64(rect.Max.X)
	b.F64(rect.Max.Y)
	r, err := c.roundTrip(wire.OpPartitions, b.Bytes())
	if err != nil {
		return nil, err
	}
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > r.Remaining() {
		return nil, fmt.Errorf("client: partition count %d exceeds payload", n)
	}
	out := make([]uvdiagram.Partition, n)
	for i := range out {
		out[i].Region = uvdiagram.Rect{
			Min: uvdiagram.Pt(r.F64(), r.F64()),
			Max: uvdiagram.Pt(r.F64(), r.F64()),
		}
		out[i].Count = int(r.U32())
		out[i].Density = r.F64()
	}
	return out, r.Err()
}

// GoPNN queues a PNN query without waiting (see Go); decode the
// response with PNNAnswers after the call completes.
func (c *Client) GoPNN(q uvdiagram.Point, done chan *Call) *Call {
	var b wire.Buffer
	b.F64(q.X)
	b.F64(q.Y)
	return c.Go(wire.OpPNN, b.Bytes(), done)
}

// PNNAnswers decodes a completed GoPNN call.
func PNNAnswers(call *Call) ([]uvdiagram.Answer, error) {
	r, err := call.Reader()
	if err != nil {
		return nil, err
	}
	return decodeAnswers(r)
}

// GoPossibleKNN queues a possible-k-NN query without waiting (see Go);
// decode the response with PossibleKNNIDs after the call completes.
func (c *Client) GoPossibleKNN(q uvdiagram.Point, k int, done chan *Call) *Call {
	var b wire.Buffer
	b.F64(q.X)
	b.F64(q.Y)
	b.U32(uint32(k))
	return c.Go(wire.OpPossibleKNN, b.Bytes(), done)
}

// PossibleKNNIDs decodes a completed GoPossibleKNN call.
func PossibleKNNIDs(call *Call) ([]int32, error) {
	r, err := call.Reader()
	if err != nil {
		return nil, err
	}
	return decodeIDs(r)
}

// BatchPNN answers one PNN query per point in a single frame pair. The
// batch is all-or-nothing: any failing query fails the whole call with
// the server's in-band error naming that query.
func (c *Client) BatchPNN(qs []uvdiagram.Point) ([][]uvdiagram.Answer, error) {
	if err := checkBatchSize(qs); err != nil {
		return nil, err
	}
	var b wire.Buffer
	encodePoints(&b, qs)
	r, err := c.roundTrip(wire.OpBatchPNN, b.Bytes())
	if err != nil {
		return nil, err
	}
	return decodeAnswerLists(r)
}

// BatchTopKPNN answers one top-k PNN query per point in a single frame
// pair (k shared by the batch).
func (c *Client) BatchTopKPNN(qs []uvdiagram.Point, k int) ([][]uvdiagram.Answer, error) {
	if err := checkBatchSize(qs); err != nil {
		return nil, err
	}
	var b wire.Buffer
	b.U32(uint32(k))
	encodePoints(&b, qs)
	r, err := c.roundTrip(wire.OpBatchTopK, b.Bytes())
	if err != nil {
		return nil, err
	}
	return decodeAnswerLists(r)
}

// BatchPossibleKNN answers one possible-k-NN (order-k) query per point
// in a single frame pair (k shared by the batch).
func (c *Client) BatchPossibleKNN(qs []uvdiagram.Point, k int) ([][]int32, error) {
	if err := checkBatchSize(qs); err != nil {
		return nil, err
	}
	var b wire.Buffer
	b.U32(uint32(k))
	encodePoints(&b, qs)
	r, err := c.roundTrip(wire.OpBatchKNN, b.Bytes())
	if err != nil {
		return nil, err
	}
	return decodeIDLists(r)
}

// BatchThresholdNN answers one probability-threshold PNN query per
// point in a single frame pair: only answers with qualification
// probability ≥ tau are returned.
func (c *Client) BatchThresholdNN(qs []uvdiagram.Point, tau float64) ([][]uvdiagram.Answer, error) {
	if err := checkBatchSize(qs); err != nil {
		return nil, err
	}
	var b wire.Buffer
	b.F64(tau)
	encodePoints(&b, qs)
	r, err := c.roundTrip(wire.OpBatchThreshold, b.Bytes())
	if err != nil {
		return nil, err
	}
	return decodeAnswerLists(r)
}

// Insert adds a new uncertain object (the incremental-update path). The
// weights may be nil for a uniform pdf.
func (c *Client) Insert(id int32, x, y, radius float64, weights []float64) error {
	var b wire.Buffer
	b.I32(id)
	b.F64(x)
	b.F64(y)
	b.F64(radius)
	b.U16(uint16(len(weights)))
	for _, w := range weights {
		b.F64(w)
	}
	_, err := c.roundTrip(wire.OpInsert, b.Bytes())
	return err
}

// Delete removes object id (the incremental-delete path). Like Insert,
// the server treats it as a per-connection pipeline barrier, so
// requests queued after it read post-delete state.
func (c *Client) Delete(id int32) error {
	call := c.GoDelete(id, nil)
	<-call.Done
	return call.Err
}

// GoDelete queues a delete without waiting (see Go). The completed
// call's Err carries the in-band result.
func (c *Client) GoDelete(id int32, done chan *Call) *Call {
	var b wire.Buffer
	b.I32(id)
	return c.Go(wire.OpDelete, b.Bytes(), done)
}

// BatchDelete removes many objects in one frame pair. The batch is
// all-or-nothing: the server validates every id before deleting any,
// and a failure names the offending position in-band.
func (c *Client) BatchDelete(ids []int32) error {
	if len(ids) > wire.MaxBatchPoints {
		return fmt.Errorf("client: batch of %d ids exceeds limit %d; split the batch", len(ids), wire.MaxBatchPoints)
	}
	var b wire.Buffer
	b.U32(uint32(len(ids)))
	for _, id := range ids {
		b.I32(id)
	}
	r, err := c.roundTrip(wire.OpBatchDelete, b.Bytes())
	if err != nil {
		return err
	}
	if echoed := int(r.U32()); r.Err() == nil && echoed != len(ids) {
		return fmt.Errorf("client: batch delete echoed %d ids, sent %d", echoed, len(ids))
	}
	return r.Err()
}
