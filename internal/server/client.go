package server

import (
	"fmt"
	"net"
	"sync"

	"uvdiagram"
	"uvdiagram/internal/wire"
)

// Client is a UV-diagram protocol client. One request is in flight at a
// time per client (calls serialize on an internal mutex); open several
// clients for parallelism.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a UV-diagram server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// NewClient wraps an existing connection (e.g. a net.Pipe end in
// tests).
func NewClient(conn net.Conn) *Client { return &Client{conn: conn} }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and decodes the response envelope.
func (c *Client) roundTrip(op byte, payload []byte) (*wire.Reader, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := wire.WriteFrame(c.conn, op, payload); err != nil {
		return nil, fmt.Errorf("client: send: %w", err)
	}
	status, resp, err := wire.ReadFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("client: receive: %w", err)
	}
	r := wire.NewReader(resp)
	switch status {
	case wire.StatusOK:
		return r, nil
	case wire.StatusErr:
		msg := r.Str()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("client: malformed error response: %w", err)
		}
		return nil, fmt.Errorf("server: %s", msg)
	default:
		return nil, fmt.Errorf("client: unknown response status 0x%02x", status)
	}
}

// Ping round-trips an empty frame.
func (c *Client) Ping() error {
	_, err := c.roundTrip(wire.OpPing, nil)
	return err
}

// Stats mirrors DB.Len, DB.Domain and DB.IndexStats.
type Stats struct {
	Domain   uvdiagram.Rect
	Objects  int
	NonLeaf  int
	Leaves   int
	Pages    int
	MaxDepth int
	Entries  int64
}

// Stats fetches server-side database statistics.
func (c *Client) Stats() (Stats, error) {
	r, err := c.roundTrip(wire.OpStats, nil)
	if err != nil {
		return Stats{}, err
	}
	st := Stats{
		Domain: uvdiagram.Rect{
			Min: uvdiagram.Pt(r.F64(), r.F64()),
			Max: uvdiagram.Pt(r.F64(), r.F64()),
		},
		Objects:  int(r.U32()),
		NonLeaf:  int(r.U32()),
		Leaves:   int(r.U32()),
		Pages:    int(r.U32()),
		MaxDepth: int(r.U32()),
		Entries:  int64(r.U64()),
	}
	return st, r.Err()
}

func decodeAnswers(r *wire.Reader) ([]uvdiagram.Answer, error) {
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > r.Remaining() { // each answer is ≥ 12 bytes; cheap sanity cap
		return nil, fmt.Errorf("client: answer count %d exceeds payload", n)
	}
	out := make([]uvdiagram.Answer, n)
	for i := range out {
		out[i] = uvdiagram.Answer{ID: r.I32(), Prob: r.F64()}
	}
	return out, r.Err()
}

// PNN runs a probabilistic nearest-neighbor query.
func (c *Client) PNN(q uvdiagram.Point) ([]uvdiagram.Answer, error) {
	var b wire.Buffer
	b.F64(q.X)
	b.F64(q.Y)
	r, err := c.roundTrip(wire.OpPNN, b.Bytes())
	if err != nil {
		return nil, err
	}
	return decodeAnswers(r)
}

// TopKPNN runs a top-k probable nearest-neighbor query.
func (c *Client) TopKPNN(q uvdiagram.Point, k int) ([]uvdiagram.Answer, error) {
	var b wire.Buffer
	b.F64(q.X)
	b.F64(q.Y)
	b.U32(uint32(k))
	r, err := c.roundTrip(wire.OpTopK, b.Bytes())
	if err != nil {
		return nil, err
	}
	return decodeAnswers(r)
}

// PossibleKNN runs a possible-k-NN query, returning answer IDs.
func (c *Client) PossibleKNN(q uvdiagram.Point, k int) ([]int32, error) {
	var b wire.Buffer
	b.F64(q.X)
	b.F64(q.Y)
	b.U32(uint32(k))
	r, err := c.roundTrip(wire.OpPossibleKNN, b.Bytes())
	if err != nil {
		return nil, err
	}
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > r.Remaining() {
		return nil, fmt.Errorf("client: id count %d exceeds payload", n)
	}
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = r.I32()
	}
	return ids, r.Err()
}

// RNN runs a probabilistic reverse nearest-neighbor query.
func (c *Client) RNN(q uvdiagram.Point) ([]uvdiagram.RNNAnswer, error) {
	var b wire.Buffer
	b.F64(q.X)
	b.F64(q.Y)
	r, err := c.roundTrip(wire.OpRNN, b.Bytes())
	if err != nil {
		return nil, err
	}
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > r.Remaining() {
		return nil, fmt.Errorf("client: answer count %d exceeds payload", n)
	}
	out := make([]uvdiagram.RNNAnswer, n)
	for i := range out {
		out[i] = uvdiagram.RNNAnswer{ID: r.I32(), Prob: r.F64()}
	}
	return out, r.Err()
}

// CellArea fetches the approximate UV-cell area of an object.
func (c *Client) CellArea(id int32) (float64, error) {
	var b wire.Buffer
	b.I32(id)
	r, err := c.roundTrip(wire.OpCellArea, b.Bytes())
	if err != nil {
		return 0, err
	}
	area := r.F64()
	return area, r.Err()
}

// Partitions runs a UV-partition (density) query over a rectangle.
func (c *Client) Partitions(rect uvdiagram.Rect) ([]uvdiagram.Partition, error) {
	var b wire.Buffer
	b.F64(rect.Min.X)
	b.F64(rect.Min.Y)
	b.F64(rect.Max.X)
	b.F64(rect.Max.Y)
	r, err := c.roundTrip(wire.OpPartitions, b.Bytes())
	if err != nil {
		return nil, err
	}
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > r.Remaining() {
		return nil, fmt.Errorf("client: partition count %d exceeds payload", n)
	}
	out := make([]uvdiagram.Partition, n)
	for i := range out {
		out[i].Region = uvdiagram.Rect{
			Min: uvdiagram.Pt(r.F64(), r.F64()),
			Max: uvdiagram.Pt(r.F64(), r.F64()),
		}
		out[i].Count = int(r.U32())
		out[i].Density = r.F64()
	}
	return out, r.Err()
}

// Insert adds a new uncertain object (the incremental-update path). The
// weights may be nil for a uniform pdf.
func (c *Client) Insert(id int32, x, y, radius float64, weights []float64) error {
	var b wire.Buffer
	b.I32(id)
	b.F64(x)
	b.F64(y)
	b.F64(radius)
	b.U16(uint16(len(weights)))
	for _, w := range weights {
		b.F64(w)
	}
	_, err := c.roundTrip(wire.OpInsert, b.Bytes())
	return err
}
