package server

import (
	"sync"
	"testing"
	"time"

	"uvdiagram"
	"uvdiagram/internal/datagen"
)

// metricsMap fetches the server's snapshot over the wire as a map.
func metricsMap(t *testing.T, cli *Client) map[string]float64 {
	t.Helper()
	ms, err := cli.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64, len(ms))
	for _, m := range ms {
		out[m.Name] = m.Value
	}
	return out
}

// TestMetricsExactness is the counter contract under concurrent load:
// one decoded request frame bumps exactly one ops.* counter, so after
// a quiesced burst of known size the counts must EQUAL the ground
// truth — not approximate it. Race-clean by construction (run under
// -race in CI).
func TestMetricsExactness(t *testing.T) {
	cli, srv := startServer(t, 60)
	const (
		workers  = 8
		perOp    = 25 // per worker, per opcode
		batchLen = 4
	)
	dom := srv.DB().Domain()
	q := uvdiagram.Pt((dom.Min.X+dom.Max.X)/2, (dom.Min.Y+dom.Max.Y)/2)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perOp; i++ {
				if _, err := cli.PNN(q); err != nil {
					t.Error(err)
					return
				}
				if _, err := cli.TopKPNN(q, 3); err != nil {
					t.Error(err)
					return
				}
				if _, err := cli.Stats(); err != nil {
					t.Error(err)
					return
				}
				qs := make([]uvdiagram.Point, batchLen)
				for j := range qs {
					qs[j] = q
				}
				if _, err := cli.BatchPNN(qs); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	m := metricsMap(t, cli)
	want := map[string]float64{
		"ops.pnn":       workers * perOp,
		"ops.topk":      workers * perOp,
		"ops.stats":     workers * perOp,
		"ops.batch_pnn": workers * perOp,
		"ops.errors":    0,
		"ops.unknown":   0,
	}
	for name, w := range want {
		if got := m[name]; got != w {
			t.Errorf("%s = %g, want %g", name, got, w)
		}
	}
	// The metrics fetch itself was decoded before the snapshot ran.
	if got := m["ops.metrics"]; got != 1 {
		t.Errorf("ops.metrics = %g, want 1", got)
	}
	if got := m["db.live"]; got != 60 {
		t.Errorf("db.live = %g, want 60", got)
	}
}

// TestMetricsMaintenanceFeed verifies the DB-observer wiring: engine
// maintenance fired through the server's DB shows up in the maint.*
// counters, and the leaf-cache gauges mirror DB.LeafCacheStats.
func TestMetricsMaintenanceFeed(t *testing.T) {
	cli, srv := startServer(t, 60)
	db := srv.DB()
	if err := db.Compact(t.Context()); err != nil {
		t.Fatal(err)
	}
	m := metricsMap(t, cli)
	if got := m["maint.compacts"]; got != 1 {
		t.Errorf("maint.compacts = %g, want 1", got)
	}
	if got := m["maint.compact.count"]; got != 1 {
		t.Errorf("maint.compact.count = %g, want 1", got)
	}
	hits, misses := db.LeafCacheStats()
	if m["cache.leaf_hits"] != float64(hits) || m["cache.leaf_misses"] != float64(misses) {
		t.Errorf("cache gauges (%g, %g) != LeafCacheStats (%d, %d)",
			m["cache.leaf_hits"], m["cache.leaf_misses"], hits, misses)
	}
}

// TestPushTimeoutConfig covers the Config.PushTimeout satellite: the
// default fills in, an explicit value sticks and a negative one is
// rejected by NewWithConfig.
func TestPushTimeoutConfig(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.PushTimeout != 5*time.Second {
		t.Fatalf("default PushTimeout = %v, want 5s", cfg.PushTimeout)
	}
	cfg = Config{PushTimeout: 250 * time.Millisecond}.withDefaults()
	if cfg.PushTimeout != 250*time.Millisecond {
		t.Fatalf("explicit PushTimeout overridden to %v", cfg.PushTimeout)
	}
	db := testDB(t, 10)
	if _, err := NewWithConfig(db, nil, Config{PushTimeout: -time.Second}); err == nil {
		t.Fatal("NewWithConfig accepted a negative PushTimeout")
	}
	srv, err := NewWithConfig(db, nil, Config{})
	if err != nil {
		t.Fatalf("NewWithConfig with zero config: %v", err)
	}
	if srv.cfg.PushTimeout != 5*time.Second {
		t.Fatalf("server PushTimeout = %v, want default 5s", srv.cfg.PushTimeout)
	}
}

// testDB builds a small database for direct-construction tests.
func testDB(t *testing.T, n int) *uvdiagram.DB {
	t.Helper()
	cfg := datagen.Config{N: n, Side: 2000, Diameter: 30, Seed: 77}
	db, err := uvdiagram.Build(datagen.Uniform(cfg), cfg.Domain(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestMetricsSnapshotSorted pins the snapshot's wire contract: unique
// names, sorted ascending, none empty.
func TestMetricsSnapshotSorted(t *testing.T) {
	cli, _ := startServer(t, 20)
	ms, err := cli.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("empty metrics snapshot")
	}
	if ms[0].Name == "" {
		t.Fatal("empty metric name")
	}
	for i := 1; i < len(ms); i++ {
		if ms[i-1].Name >= ms[i].Name {
			t.Fatalf("snapshot not sorted/unique: %q before %q", ms[i-1].Name, ms[i].Name)
		}
	}
}
