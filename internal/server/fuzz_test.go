package server

import (
	"net"
	"sync"
	"testing"
	"time"

	"uvdiagram"
	"uvdiagram/internal/datagen"
	"uvdiagram/internal/wire"
)

// fuzzDB builds one small database shared by all fuzz executions (the
// fuzz target must be fast; the DB is read-only there).
var fuzzDB = sync.OnceValue(func() *uvdiagram.DB {
	cfg := datagen.Config{N: 25, Side: 2000, Diameter: 30, Seed: 3}
	db, err := uvdiagram.Build(datagen.Uniform(cfg), cfg.Domain(), nil)
	if err != nil {
		panic(err)
	}
	return db
})

// FuzzBatchPayload throws corrupted batch payloads at the dispatch
// path: whatever the bytes, decoding must fail in-band (an error
// return) or answer correctly — never panic and never over-allocate on
// a hostile count.
func FuzzBatchPayload(f *testing.F) {
	var valid wire.Buffer
	encodePoints(&valid, []uvdiagram.Point{uvdiagram.Pt(100, 100), uvdiagram.Pt(900, 1200)})
	f.Add(uint8(0), valid.Bytes())

	var topk wire.Buffer
	topk.U32(2)
	encodePoints(&topk, []uvdiagram.Point{uvdiagram.Pt(40, 40)})
	f.Add(uint8(1), topk.Bytes())

	var thr wire.Buffer
	thr.F64(0.5)
	encodePoints(&thr, []uvdiagram.Point{uvdiagram.Pt(40, 40)})
	f.Add(uint8(3), thr.Bytes())

	// Hostile count with no points behind it.
	var hostile wire.Buffer
	hostile.U32(1 << 30)
	f.Add(uint8(0), hostile.Bytes())
	f.Add(uint8(2), []byte{})
	f.Add(uint8(1), []byte{1, 2, 3})

	srv := New(fuzzDB(), nil)
	ops := []byte{wire.OpBatchPNN, wire.OpBatchTopK, wire.OpBatchKNN, wire.OpBatchThreshold}
	f.Fuzz(func(t *testing.T, opSel uint8, payload []byte) {
		op := ops[int(opSel)%len(ops)]
		resp, err := srv.dispatch(op, payload)
		if err == nil && resp == nil && op != wire.OpBatchPNN {
			// Batch responses always carry at least the echoed count.
			t.Fatalf("op 0x%02x: nil response without error", op)
		}
	})
}

// FuzzDispatchAnyOpcode widens the fuzz to every opcode byte: no
// request payload may panic the dispatcher.
func FuzzDispatchAnyOpcode(f *testing.F) {
	f.Add(uint8(wire.OpPNN), []byte{1, 2, 3})
	f.Add(uint8(wire.OpInsert), []byte{})
	f.Add(uint8(0xEE), []byte{0xFF})
	var b wire.Buffer
	b.F64(100)
	b.F64(100)
	f.Add(uint8(wire.OpPNN), b.Bytes())

	srv := New(fuzzDB(), nil)
	f.Fuzz(func(t *testing.T, op uint8, payload []byte) {
		if op == wire.OpInsert {
			// Insert mutates the shared DB; exercised by its own tests.
			return
		}
		_, _ = srv.dispatch(op, payload)
	})
}

// TestMalformedBatchPoisonsOnlyPayload: a batch frame whose payload is
// garbage (but whose framing is intact) yields an in-band error and the
// connection survives; a frame with broken framing kills only that
// connection while others continue answering batches.
func TestMalformedBatchPoisonsOnlyPayload(t *testing.T) {
	cli, srv := startServer(t, 20)

	// Garbage payload, valid frame → in-band error, connection usable.
	if _, err := cli.roundTrip(wire.OpBatchPNN, []byte{9, 9, 9}); err == nil {
		t.Fatal("garbage batch payload accepted")
	}
	if _, err := cli.BatchPNN([]uvdiagram.Point{uvdiagram.Pt(100, 100)}); err != nil {
		t.Fatalf("connection unusable after in-band batch error: %v", err)
	}

	// Broken framing on a second connection → that connection dies...
	raw, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F, wire.OpBatchPNN, 1, 2}); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw.Read(make([]byte, 8)); err == nil {
		t.Fatal("server answered a frame with an oversized length prefix")
	}
	// ...while the healthy connection keeps serving batches.
	if _, err := cli.BatchPNN([]uvdiagram.Point{uvdiagram.Pt(500, 700)}); err != nil {
		t.Fatalf("healthy connection disturbed: %v", err)
	}
}
