package server

import (
	"net"
	"sync"
	"testing"
	"time"

	"uvdiagram"
	"uvdiagram/internal/datagen"
	"uvdiagram/internal/wire"
)

// fuzzDB builds one small database shared by all fuzz executions (the
// fuzz target must be fast; the DB is read-only there).
var fuzzDB = sync.OnceValue(func() *uvdiagram.DB {
	cfg := datagen.Config{N: 25, Side: 2000, Diameter: 30, Seed: 3}
	db, err := uvdiagram.Build(datagen.Uniform(cfg), cfg.Domain(), nil)
	if err != nil {
		panic(err)
	}
	return db
})

// FuzzBatchPayload throws corrupted batch payloads at the dispatch
// path: whatever the bytes, decoding must fail in-band (an error
// return) or answer correctly — never panic and never over-allocate on
// a hostile count.
func FuzzBatchPayload(f *testing.F) {
	var valid wire.Buffer
	encodePoints(&valid, []uvdiagram.Point{uvdiagram.Pt(100, 100), uvdiagram.Pt(900, 1200)})
	f.Add(uint8(0), valid.Bytes())

	var topk wire.Buffer
	topk.U32(2)
	encodePoints(&topk, []uvdiagram.Point{uvdiagram.Pt(40, 40)})
	f.Add(uint8(1), topk.Bytes())

	var thr wire.Buffer
	thr.F64(0.5)
	encodePoints(&thr, []uvdiagram.Point{uvdiagram.Pt(40, 40)})
	f.Add(uint8(3), thr.Bytes())

	// Hostile count with no points behind it.
	var hostile wire.Buffer
	hostile.U32(1 << 30)
	f.Add(uint8(0), hostile.Bytes())
	f.Add(uint8(2), []byte{})
	f.Add(uint8(1), []byte{1, 2, 3})

	srv := New(fuzzDB(), nil)
	ops := []byte{wire.OpBatchPNN, wire.OpBatchTopK, wire.OpBatchKNN, wire.OpBatchThreshold}
	f.Fuzz(func(t *testing.T, opSel uint8, payload []byte) {
		op := ops[int(opSel)%len(ops)]
		resp, err := srv.dispatch(op, payload)
		if err == nil && resp == nil && op != wire.OpBatchPNN {
			// Batch responses always carry at least the echoed count.
			t.Fatalf("op 0x%02x: nil response without error", op)
		}
	})
}

// FuzzDispatchAnyOpcode widens the fuzz to every opcode byte: no
// request payload may panic the dispatcher.
func FuzzDispatchAnyOpcode(f *testing.F) {
	f.Add(uint8(wire.OpPNN), []byte{1, 2, 3})
	f.Add(uint8(wire.OpInsert), []byte{})
	f.Add(uint8(0xEE), []byte{0xFF})
	var b wire.Buffer
	b.F64(100)
	b.F64(100)
	f.Add(uint8(wire.OpPNN), b.Bytes())

	srv := New(fuzzDB(), nil)
	f.Fuzz(func(t *testing.T, op uint8, payload []byte) {
		if op == wire.OpInsert || op == wire.OpDelete || op == wire.OpBatchDelete {
			// Writes mutate the shared DB; FuzzDeletePayload owns the
			// delete path with a DB it is allowed to chew up.
			return
		}
		_, _ = srv.dispatch(op, payload)
	})
}

// FuzzDeletePayload throws corrupted delete and batch-delete payloads
// at the dispatch path. Whatever the bytes: no panic, and a response
// that is either an in-band error or a successful deletion of live
// objects. The shared DB shrinks as valid ids land — deletes of dead
// ids must then fail in-band rather than corrupt anything, and queries
// must keep working between executions.
func FuzzDeletePayload(f *testing.F) {
	var one wire.Buffer
	one.I32(2)
	f.Add(uint8(0), one.Bytes())

	var batch wire.Buffer
	batch.U32(2)
	batch.I32(3)
	batch.I32(4)
	f.Add(uint8(1), batch.Bytes())

	// Hostile count with nothing behind it; truncated id; trailing junk.
	var hostile wire.Buffer
	hostile.U32(1 << 30)
	f.Add(uint8(1), hostile.Bytes())
	f.Add(uint8(0), []byte{7})
	f.Add(uint8(0), []byte{1, 0, 0, 0, 0xEE})
	f.Add(uint8(1), []byte{})

	cfg := datagen.Config{N: 20, Side: 2000, Diameter: 30, Seed: 11}
	db, err := uvdiagram.Build(datagen.Uniform(cfg), cfg.Domain(), nil)
	if err != nil {
		f.Fatal(err)
	}
	srv := New(db, nil)
	ops := []byte{wire.OpDelete, wire.OpBatchDelete}
	f.Fuzz(func(t *testing.T, opSel uint8, payload []byte) {
		op := ops[int(opSel)%len(ops)]
		_, _ = srv.dispatch(op, payload)
		// The DB must stay internally consistent: a PNN at the domain
		// center either answers or reports a clean error, never panics.
		if _, err := srv.dispatch(wire.OpPNN, pnnPayload(1000, 1000)); err != nil {
			t.Fatalf("PNN broken after delete fuzz input: %v", err)
		}
	})
}

// FuzzSubscribePayload throws corrupted subscribe, move and unsubscribe
// payloads at the subscription engine. Each execution gets its own
// connection state with one healthy session seeded, so the fuzz input
// can hit both the unknown-id and live-session paths. Whatever the
// bytes: no panic, no session leak, the dispatcher keeps answering
// queries, and a malformed MOVE only reports the poison error (the
// decode loop closes the conn; the handler itself must stay total).
func FuzzSubscribePayload(f *testing.F) {
	var sub wire.Buffer
	sub.F64(1000)
	sub.F64(1000)
	f.Add(uint8(0), sub.Bytes())

	var move wire.Buffer
	move.U64(1)
	move.F64(999)
	move.F64(999)
	f.Add(uint8(1), move.Bytes())

	var unsub wire.Buffer
	unsub.U64(1)
	f.Add(uint8(2), unsub.Bytes())

	// Truncations, trailing junk, hostile ids.
	f.Add(uint8(0), []byte{1, 2, 3})
	f.Add(uint8(1), []byte{})
	f.Add(uint8(1), append(move.Bytes(), 0xEE))
	f.Add(uint8(2), []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	srv := New(fuzzDB(), nil)
	f.Fuzz(func(t *testing.T, opSel uint8, payload []byte) {
		server, client := net.Pipe()
		defer server.Close()
		defer client.Close()
		go func() { // drain pushes; net.Pipe is unbuffered
			buf := make([]byte, 4096)
			for {
				if _, err := client.Read(buf); err != nil {
					return
				}
			}
		}()
		cs := &connState{s: srv, conn: server, subs: make(map[uint64]*session)}

		// Seed one live, registered session.
		var seed wire.Buffer
		seed.F64(1000)
		seed.F64(1000)
		sl := &slot{}
		if _, err := srv.handleSubscribe(cs, sl, seed.Bytes()); err != nil {
			t.Fatal(err)
		}
		sl.written()

		switch opSel % 3 {
		case 0:
			sl2 := &slot{}
			if _, err := srv.dispatchConn(cs, sl2, wire.OpSubscribe, payload); err == nil && sl2.written != nil {
				sl2.written()
			}
		case 1:
			_ = srv.handleMove(cs, payload)
		case 2:
			_, _ = srv.dispatchConn(cs, &slot{}, wire.OpUnsubscribe, payload)
		}

		// The engine must stay serviceable whatever just happened.
		if _, err := srv.dispatch(wire.OpPNN, pnnPayload(1000, 1000)); err != nil {
			t.Fatalf("PNN broken after subscription fuzz input: %v", err)
		}
		srv.dropConnSessions(cs)
		if n := srv.Subscriptions(); n != 0 {
			t.Fatalf("%d sessions leaked past dropConnSessions", n)
		}
	})
}

// FuzzAnswerDelta throws corrupted push frames at the client's delta
// decoder. Whatever the bytes: no panic, a clean error for anything
// malformed (the read loop then poisons the connection), an applied
// delta otherwise — and the reconstructed answer set stays sorted.
func FuzzAnswerDelta(f *testing.F) {
	var ok wire.Buffer
	ok.U64(1) // sub id
	ok.U64(1) // seq
	ok.U8(0)
	ok.F64(10)
	ok.F64(10)
	ok.F64(2.5)
	ok.U32(2)
	ok.I32(4)
	ok.I32(9)
	ok.U32(1)
	ok.I32(2)
	f.Add(ok.Bytes())

	var fail wire.Buffer
	fail.U64(1)
	fail.U64(1)
	fail.U8(1)
	fail.Str("session dropped")
	f.Add(fail.Bytes())

	var hostile wire.Buffer
	hostile.U64(1)
	hostile.U64(1)
	hostile.U8(0)
	hostile.F64(0)
	hostile.F64(0)
	hostile.F64(0)
	hostile.U32(1 << 30) // id count far past the payload
	f.Add(hostile.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(append(ok.Bytes(), 0xAB)) // trailing junk

	f.Fuzz(func(t *testing.T, payload []byte) {
		c := &Client{subs: map[uint64]*Subscription{}}
		sub := &Subscription{c: c, id: 1, ids: []int32{2, 7}}
		c.subs[1] = sub
		_ = c.handlePush(payload)
		ids := sub.AnswerIDs()
		for i := 1; i < len(ids); i++ {
			if ids[i-1] >= ids[i] {
				t.Fatalf("answer set unsorted after push: %v", ids)
			}
		}
	})
}

func pnnPayload(x, y float64) []byte {
	var b wire.Buffer
	b.F64(x)
	b.F64(y)
	return b.Bytes()
}

// TestMalformedBatchPoisonsOnlyPayload: a batch frame whose payload is
// garbage (but whose framing is intact) yields an in-band error and the
// connection survives; a frame with broken framing kills only that
// connection while others continue answering batches.
func TestMalformedBatchPoisonsOnlyPayload(t *testing.T) {
	cli, srv := startServer(t, 20)

	// Garbage payload, valid frame → in-band error, connection usable.
	if _, err := cli.roundTrip(wire.OpBatchPNN, []byte{9, 9, 9}); err == nil {
		t.Fatal("garbage batch payload accepted")
	}
	if _, err := cli.BatchPNN([]uvdiagram.Point{uvdiagram.Pt(100, 100)}); err != nil {
		t.Fatalf("connection unusable after in-band batch error: %v", err)
	}

	// Broken framing on a second connection → that connection dies...
	raw, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F, wire.OpBatchPNN, 1, 2}); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw.Read(make([]byte, 8)); err == nil {
		t.Fatal("server answered a frame with an oversized length prefix")
	}
	// ...while the healthy connection keeps serving batches.
	if _, err := cli.BatchPNN([]uvdiagram.Point{uvdiagram.Pt(500, 700)}); err != nil {
		t.Fatalf("healthy connection disturbed: %v", err)
	}
}
