package server

import (
	"fmt"

	"uvdiagram"
	"uvdiagram/internal/wire"
)

// Batch payload codec, shared by the server's dispatch and the client's
// batch helpers. The request side carries a point list; the response
// side carries one answer list (or ID list) per query, prefixed with
// the echoed query count.

// checkBatchSize rejects client-side batches the protocol cannot
// carry, keeping the connection healthy (the frame is never sent).
func checkBatchSize(qs []uvdiagram.Point) error {
	if len(qs) > wire.MaxBatchPoints {
		return fmt.Errorf("client: batch of %d points exceeds limit %d; split the batch", len(qs), wire.MaxBatchPoints)
	}
	return nil
}

// encodePoints appends a u32 count and the points to b.
func encodePoints(b *wire.Buffer, qs []uvdiagram.Point) {
	b.U32(uint32(len(qs)))
	for _, q := range qs {
		b.F64(q.X)
		b.F64(q.Y)
	}
}

// decodePoints reads a bounds-checked point list. The count is capped
// by wire.MaxBatchPoints and validated against the bytes actually
// present, so a hostile count can neither over-allocate nor run past
// the payload.
func decodePoints(r *wire.Reader) ([]uvdiagram.Point, error) {
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > wire.MaxBatchPoints {
		return nil, fmt.Errorf("batch of %d points exceeds limit %d", n, wire.MaxBatchPoints)
	}
	if 16*n > r.Remaining() {
		return nil, fmt.Errorf("batch count %d exceeds payload (%d bytes remaining)", n, r.Remaining())
	}
	qs := make([]uvdiagram.Point, n)
	for i := range qs {
		qs[i] = uvdiagram.Pt(r.F64(), r.F64())
	}
	return qs, r.Err()
}

// encodeAnswerLists encodes one answer list per query.
func encodeAnswerLists(lists [][]uvdiagram.Answer) []byte {
	var b wire.Buffer
	b.U32(uint32(len(lists)))
	for _, answers := range lists {
		b.U32(uint32(len(answers)))
		for _, a := range answers {
			b.I32(a.ID)
			b.F64(a.Prob)
		}
	}
	return b.Bytes()
}

// decodeAnswerLists is the client-side inverse of encodeAnswerLists.
func decodeAnswerLists(r *wire.Reader) ([][]uvdiagram.Answer, error) {
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > r.Remaining() { // each list costs ≥ 4 bytes
		return nil, fmt.Errorf("client: batch count %d exceeds payload", n)
	}
	lists := make([][]uvdiagram.Answer, n)
	for i := range lists {
		answers, err := decodeAnswers(r)
		if err != nil {
			return nil, err
		}
		lists[i] = answers
	}
	return lists, r.Err()
}

// encodeIDLists encodes one object-ID list per query.
func encodeIDLists(lists [][]int32) []byte {
	var b wire.Buffer
	b.U32(uint32(len(lists)))
	for _, ids := range lists {
		b.U32(uint32(len(ids)))
		for _, id := range ids {
			b.I32(id)
		}
	}
	return b.Bytes()
}

// decodeIDLists is the client-side inverse of encodeIDLists.
func decodeIDLists(r *wire.Reader) ([][]int32, error) {
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > r.Remaining() {
		return nil, fmt.Errorf("client: batch count %d exceeds payload", n)
	}
	lists := make([][]int32, n)
	for i := range lists {
		m := int(r.U32())
		if err := r.Err(); err != nil {
			return nil, err
		}
		if 4*m > r.Remaining() {
			return nil, fmt.Errorf("client: id count %d exceeds payload", m)
		}
		ids := make([]int32, m)
		for j := range ids {
			ids[j] = r.I32()
		}
		lists[i] = ids
	}
	return lists, r.Err()
}

// borrowWorkers takes as many free tokens from the server-wide worker
// pool as are available (up to max), without blocking. The returned
// release must be called when the fan-out is done.
func (s *Server) borrowWorkers(max int) (n int, release func()) {
	for n < max {
		select {
		case s.sem <- struct{}{}:
			n++
		default:
			return n, func() { s.releaseWorkers(n) }
		}
	}
	return n, func() { s.releaseWorkers(n) }
}

func (s *Server) releaseWorkers(n int) {
	for i := 0; i < n; i++ {
		<-s.sem
	}
}

// dispatchBatch handles the batch opcodes. The caller guarantees op is
// one of them. Batches take no server lock: every query in the fan-out
// reads a consistent copy-on-write snapshot on its own, and a write
// landing mid-batch gives each query exactly the pre- or post-write
// state, never a hybrid.
//
// Fan-out width is accounted against the server-wide worker pool: the
// request itself holds one token, and the batch borrows only tokens
// that are currently free — concurrent batches therefore share
// Config.Workers instead of multiplying it.
func (s *Server) dispatchBatch(op byte, r *wire.Reader) ([]byte, error) {
	var k uint32
	var tau float64
	switch op {
	case wire.OpBatchTopK, wire.OpBatchKNN:
		k = r.U32()
	case wire.OpBatchThreshold:
		tau = r.F64()
	}
	qs, err := decodePoints(r)
	if err != nil {
		return nil, err
	}
	if rem := r.Remaining(); rem != 0 {
		return nil, fmt.Errorf("batch payload has %d trailing bytes", rem)
	}

	borrowed, release := s.borrowWorkers(s.cfg.Workers - 1)
	defer release()
	opts := &uvdiagram.BatchOptions{Workers: 1 + borrowed, CacheSize: s.cfg.CacheSize}

	switch op {
	case wire.OpBatchPNN:
		lists, err := s.db.BatchNN(qs, opts)
		if err != nil {
			return nil, err
		}
		return encodeAnswerLists(lists), nil

	case wire.OpBatchTopK:
		lists, err := s.db.BatchTopKPNN(qs, int(k), opts)
		if err != nil {
			return nil, err
		}
		return encodeAnswerLists(lists), nil

	case wire.OpBatchKNN:
		lists, err := s.db.BatchOrderK(qs, int(k), opts)
		if err != nil {
			return nil, err
		}
		return encodeIDLists(lists), nil

	case wire.OpBatchThreshold:
		lists, err := s.db.BatchThresholdNN(qs, tau, opts)
		if err != nil {
			return nil, err
		}
		return encodeAnswerLists(lists), nil
	}
	return nil, fmt.Errorf("server: unknown batch opcode 0x%02x", op)
}
