// Package server exposes a built UV-diagram database over TCP with the
// framed binary protocol of package wire — the service substrate for
// the location-based-service settings of the paper's introduction
// (e.g. the wireless broadcast services of [2], [3] front a spatial
// index with exactly this kind of query endpoint).
//
// Concurrency model: queries take a read lock and run concurrently;
// Insert and Delete take the write lock (incremental maintenance
// rewrites live leaf pages in place). Index rebuilds are different:
// DB.Compact and DB.Rebuild swap a freshly built index in with one
// atomic epoch store, so they run WITHOUT the server lock and never
// block queries.
//
// Connections are pipelined: each connection runs a decode loop and a
// response-writer goroutine, with up to Config.Window requests in
// flight at once. Requests execute on a server-wide worker pool bounded
// by Config.Workers, and responses are always written in request order,
// so clients may stream requests without waiting for answers. Batch
// opcodes fan their points out across the pool under one read lock. A
// framing or checksum error poisons the connection, while an
// application-level error (including a malformed request payload) is
// reported in-band and the connection continues.
package server

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime"
	"sync"
	"time"

	"uvdiagram"
	"uvdiagram/internal/uncertain"
	"uvdiagram/internal/wire"
)

// Config tunes the serving engine. The zero value selects the defaults.
type Config struct {
	// Window is the maximum number of in-flight requests per connection
	// (default 64). A full window applies backpressure by pausing the
	// connection's decode loop.
	Window int
	// Workers bounds the number of concurrently executing requests
	// across the whole server, and the fan-out width of one batch
	// request (default GOMAXPROCS).
	Workers int
	// CacheSize is the size of the batch engine's leaf-lookup LRU cache
	// (default 256; negative disables caching).
	CacheSize int
	// PushTimeout bounds one out-of-band push write to a subscriber: a
	// consumer that stopped reading long enough for its socket buffer
	// to fill would otherwise stall whoever produces its deltas, so
	// after PushTimeout its connection is disconnected (and counted in
	// push.slow_consumer_disconnects). Zero selects the default 5s;
	// negative values are rejected by NewWithConfig — an unbounded push
	// write would let one dead subscriber wedge the whole server.
	PushTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	} else if c.CacheSize < 0 {
		c.CacheSize = 0
	}
	if c.PushTimeout == 0 {
		c.PushTimeout = 5 * time.Second
	}
	return c
}

// validate rejects configurations withDefaults cannot repair.
func (c Config) validate() error {
	if c.PushTimeout < 0 {
		return fmt.Errorf("server: PushTimeout %v is negative (0 selects the 5s default)", c.PushTimeout)
	}
	return nil
}

// Server serves one DB over a listener.
type Server struct {
	mu     sync.RWMutex // orders writes against each other and the subscription sweep; queries take no server lock (the DB is lock-free for readers)
	db     *uvdiagram.DB
	cfg    Config
	sem    chan struct{} // server-wide worker pool (one token = one executing request)
	logf   func(format string, args ...any)
	wg     sync.WaitGroup
	lmu    sync.Mutex // guards lis
	lis    net.Listener
	closed chan struct{}

	// The subscription engine's server-wide session table, swept by the
	// churn notifier after every write (see subscribe.go).
	submu sync.RWMutex
	subs  map[uint64]*session
	subid uint64 // last assigned subscription id (guarded by submu)

	// metrics is the observability registry (see metrics.go), exposed
	// through OpMetrics, MetricsSnapshot/MetricsMap and uvclient.
	metrics *serverMetrics
}

// New wraps a built database with the default Config. logf may be nil
// to discard logs.
func New(db *uvdiagram.DB, logf func(format string, args ...any)) *Server {
	s, err := NewWithConfig(db, logf, Config{})
	if err != nil {
		// The zero Config is always valid; reaching here is a
		// programming error in validate itself.
		panic(err)
	}
	return s
}

// NewWithConfig wraps a built database with an explicit engine
// configuration, rejecting invalid configurations (negative
// PushTimeout). It registers itself as the database's maintenance
// observer (DB.OnMaintenance), so reshard/compaction events land in the
// server's maint.* metrics; a caller-installed observer would be
// replaced.
func NewWithConfig(db *uvdiagram.DB, logf func(format string, args ...any), cfg Config) (*Server, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Server{
		db:      db,
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.Workers),
		logf:    logf,
		closed:  make(chan struct{}),
		subs:    make(map[uint64]*session),
		metrics: newServerMetrics(),
	}
	db.OnMaintenance(s.metrics.observeMaint)
	return s, nil
}

// DB returns the served database.
func (s *Server) DB() *uvdiagram.DB { return s.db }

// Addr returns the listener's address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.lmu.Lock()
	defer s.lmu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// Serve accepts connections until the listener is closed. It always
// returns a non-nil error (net.ErrClosed after Close).
func (s *Server) Serve(lis net.Listener) error {
	s.lmu.Lock()
	s.lis = lis
	s.lmu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return net.ErrClosed
			default:
				return err
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves. The returned address
// channel receives the bound address once (useful with ":0").
func (s *Server) ListenAndServe(addr string, bound chan<- net.Addr) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if bound != nil {
		bound <- lis.Addr()
	}
	return s.Serve(lis)
}

// Close stops accepting and waits for in-flight connections to finish
// their current request loop (their sockets are not force-closed; they
// end when the client disconnects).
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	s.lmu.Lock()
	defer s.lmu.Unlock()
	var err error
	if s.lis != nil {
		err = s.lis.Close()
	}
	return err
}

// Wait blocks until every connection goroutine has exited.
func (s *Server) Wait() { s.wg.Wait() }

// slot is one in-flight request's response, filled by a worker and
// consumed by the connection's writer goroutine.
type slot struct {
	done    chan struct{} // closed when status/payload are final
	status  byte
	payload []byte
	// written, when set, runs on the writer goroutine right after the
	// response frame is on the wire — the subscribe handler uses it to
	// publish a session only once the client can know its id, so no
	// push ever precedes the response carrying that id.
	written func()
}

func (sl *slot) finish(resp []byte, err error) {
	if err == nil && 1+len(resp)+4 > wire.MaxFrame {
		err = fmt.Errorf("server: response of %d bytes exceeds frame limit; split the batch", len(resp))
	}
	if err != nil {
		var eb wire.Buffer
		eb.Str(err.Error())
		sl.status, sl.payload = wire.StatusErr, eb.Bytes()
	} else {
		sl.status, sl.payload = wire.StatusOK, resp
	}
	close(sl.done)
}

// serveConn pipelines one connection: the calling goroutine decodes
// frames and hands each request to the worker pool, while a writer
// goroutine emits responses strictly in request order. The pending
// channel is the in-flight window; when it is full the decode loop
// blocks, which is the protocol's backpressure.
//
// Write requests (Insert, Delete, BatchDelete) are per-connection
// execution barriers: the decode loop waits for the connection's
// in-flight queries to finish, runs the write inline, and only then
// decodes further frames — so a pipelined stream keeps
// read-your-writes ordering on its own connection. Queries pipelined
// across *different* connections order only by the database's
// read/write lock.
func (s *Server) serveConn(conn net.Conn) {
	cs := &connState{s: s, conn: conn, subs: make(map[uint64]*session)}
	pending := make(chan *slot, s.cfg.Window)
	var inflight sync.WaitGroup // this connection's executing queries
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		broken := false
		for sl := range pending {
			<-sl.done
			if broken {
				continue // drain so the decode loop never blocks forever
			}
			if err := cs.write(sl.status, sl.payload, 0); err != nil {
				broken = true
				conn.Close() // unblocks the decode loop's ReadFrame
				continue
			}
			if sl.written != nil {
				sl.written()
			}
		}
	}()
	defer func() {
		close(pending)
		<-writerDone
		conn.Close()
		s.dropConnSessions(cs)
	}()

	for {
		select {
		case <-s.closed:
			return
		default:
		}
		op, payload, err := wire.ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("server: %v: read: %v", conn.RemoteAddr(), err)
			}
			return
		}
		// One decoded request frame = exactly one ops.* increment, here
		// and nowhere else — what makes the counters ground-truth exact.
		s.metrics.ops[op].Inc()
		if op == wire.OpMove {
			// Fire-and-forget: no response slot. Runs inline so the
			// move's delta (if any) is on the wire before any later
			// frame of this connection is decoded.
			if err := s.handleMove(cs, payload); err != nil {
				s.metrics.opErrors.Inc()
				s.logf("server: %v: move: %v", conn.RemoteAddr(), err)
				return // poison: no in-band channel exists for move errors
			}
			continue
		}
		sl := &slot{done: make(chan struct{})}
		pending <- sl // in-flight window (blocks when full)
		if op == wire.OpInsert || op == wire.OpDelete || op == wire.OpBatchDelete {
			inflight.Wait() // barrier: earlier queries observe pre-write state
			s.sem <- struct{}{}
			resp, err := s.dispatch(op, payload)
			<-s.sem
			if err != nil {
				s.metrics.opErrors.Inc()
			}
			if err == nil {
				// Push answer deltas to every affected subscriber BEFORE
				// the write's response is released (see notifySessions).
				s.notifySessions()
			}
			sl.finish(resp, err)
			continue // later frames decode only after the write landed
		}
		inflight.Add(1)
		s.sem <- struct{}{}
		go func() {
			defer func() { <-s.sem }()
			defer inflight.Done()
			resp, err := s.dispatchConn(cs, sl, op, payload)
			if err != nil {
				s.metrics.opErrors.Inc()
			}
			sl.finish(resp, err)
		}()
	}
}

// dispatchConn routes the opcodes that need per-connection state (the
// subscription engine) and falls through to the stateless dispatch.
func (s *Server) dispatchConn(cs *connState, sl *slot, op byte, payload []byte) ([]byte, error) {
	switch op {
	case wire.OpSubscribe:
		return s.handleSubscribe(cs, sl, payload)
	case wire.OpUnsubscribe:
		return s.handleUnsubscribe(cs, payload)
	}
	return s.dispatch(op, payload)
}

func (s *Server) dispatch(op byte, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	switch op {
	case wire.OpPing:
		return nil, nil

	case wire.OpStats:
		d := s.db.Domain()
		st := s.db.IndexStats()
		var b wire.Buffer
		b.F64(d.Min.X)
		b.F64(d.Min.Y)
		b.F64(d.Max.X)
		b.F64(d.Max.Y)
		b.U32(uint32(s.db.Len()))
		b.U32(uint32(st.NonLeaf))
		b.U32(uint32(st.Leaves))
		b.U32(uint32(st.Pages))
		b.U32(uint32(st.MaxDepth))
		b.U64(uint64(st.Entries))
		// Appended after the original fields: the ID the next Insert
		// must carry. Objects above reports the LIVE count, which after
		// deletions is smaller than the dense id space — clients must
		// not derive insert ids from it.
		b.I32(s.db.NextID())
		// Appended after NextID: the spatial shard count and each
		// shard's accumulated mutation slack (the per-shard compaction
		// signal). Older clients stop reading before this. The whole
		// layout block comes from ONE snapshot: Reshard may run
		// concurrently (it takes no server lock), and mixing cuts from
		// one layout with shard states from another would tear the
		// frame.
		snap := s.db.LayoutSnapshot()
		b.U32(uint32(len(snap.Shards)))
		for _, sh := range snap.Shards {
			b.U64(uint64(sh.Slack))
		}
		// Appended after the slack block: the shard grid dimensions,
		// the layout's cut coordinates (gx+1 x-cuts, gy+1 y-cuts —
		// equal strips or adaptive weighted-median/Reshard cuts), and
		// each shard's live-object count (the load-balance signal;
		// uvclient derives the max/mean imbalance factor from it).
		// Older clients stop reading before this too.
		b.U32(uint32(snap.GridX))
		b.U32(uint32(snap.GridY))
		for _, v := range snap.CutsX {
			b.F64(v)
		}
		for _, v := range snap.CutsY {
			b.F64(v)
		}
		for _, sh := range snap.Shards {
			b.U32(uint32(sh.Live))
		}
		return b.Bytes(), nil

	case wire.OpPNN:
		q := uvdiagram.Pt(r.F64(), r.F64())
		if err := r.Err(); err != nil {
			return nil, err
		}
		answers, _, err := s.db.PNN(q)
		if err != nil {
			return nil, err
		}
		return encodeAnswers(answers), nil

	case wire.OpTopK:
		q := uvdiagram.Pt(r.F64(), r.F64())
		k := int(r.U32())
		if err := r.Err(); err != nil {
			return nil, err
		}
		answers, _, err := s.db.TopKPNN(q, k)
		if err != nil {
			return nil, err
		}
		return encodeAnswers(answers), nil

	case wire.OpPossibleKNN:
		q := uvdiagram.Pt(r.F64(), r.F64())
		k := int(r.U32())
		if err := r.Err(); err != nil {
			return nil, err
		}
		ids, err := s.db.PossibleKNN(q, k)
		if err != nil {
			return nil, err
		}
		var b wire.Buffer
		b.U32(uint32(len(ids)))
		for _, id := range ids {
			b.I32(id)
		}
		return b.Bytes(), nil

	case wire.OpRNN:
		q := uvdiagram.Pt(r.F64(), r.F64())
		if err := r.Err(); err != nil {
			return nil, err
		}
		answers, _ := s.db.RNN(q)
		var b wire.Buffer
		b.U32(uint32(len(answers)))
		for _, a := range answers {
			b.I32(a.ID)
			b.F64(a.Prob)
		}
		return b.Bytes(), nil

	case wire.OpCellArea:
		id := r.I32()
		if err := r.Err(); err != nil {
			return nil, err
		}
		area, err := s.db.CellArea(id)
		if err != nil {
			return nil, err
		}
		var b wire.Buffer
		b.F64(area)
		return b.Bytes(), nil

	case wire.OpPartitions:
		rect := uvdiagram.Rect{
			Min: uvdiagram.Pt(r.F64(), r.F64()),
			Max: uvdiagram.Pt(r.F64(), r.F64()),
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		parts := s.db.Partitions(rect)
		var b wire.Buffer
		b.U32(uint32(len(parts)))
		for _, p := range parts {
			b.F64(p.Region.Min.X)
			b.F64(p.Region.Min.Y)
			b.F64(p.Region.Max.X)
			b.F64(p.Region.Max.Y)
			b.U32(uint32(p.Count))
			b.F64(p.Density)
		}
		return b.Bytes(), nil

	case wire.OpMetrics:
		if rem := r.Remaining(); rem != 0 {
			return nil, fmt.Errorf("server: metrics payload has %d trailing bytes", rem)
		}
		snap := s.MetricsSnapshot()
		var b wire.Buffer
		b.U32(uint32(len(snap)))
		for _, v := range snap {
			b.Str(v.Name)
			b.F64(v.Value)
		}
		return b.Bytes(), nil

	case wire.OpBatchPNN, wire.OpBatchTopK, wire.OpBatchKNN, wire.OpBatchThreshold:
		return s.dispatchBatch(op, r)

	case wire.OpInsert:
		id := r.I32()
		cx, cy, rad := r.F64(), r.F64(), r.F64()
		nb := int(r.U16())
		if nb > 1024 {
			return nil, fmt.Errorf("server: pdf with %d bins rejected", nb)
		}
		weights := make([]float64, nb)
		for i := range weights {
			weights[i] = r.F64()
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		var pdf *uvdiagram.PDF
		if nb > 0 {
			p, err := uncertain.NewHistogramPDF(weights)
			if err != nil {
				return nil, err
			}
			pdf = p
		}
		obj := uvdiagram.NewObject(id, cx, cy, rad, pdf)
		s.mu.Lock()
		err := s.db.Insert(obj)
		s.mu.Unlock()
		return nil, err

	case wire.OpDelete:
		id := r.I32()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if rem := r.Remaining(); rem != 0 {
			return nil, fmt.Errorf("server: delete payload has %d trailing bytes", rem)
		}
		s.mu.Lock()
		err := s.db.Delete(id)
		s.mu.Unlock()
		return nil, err

	case wire.OpBatchDelete:
		n := int(r.U32())
		if err := r.Err(); err != nil {
			return nil, err
		}
		if n > wire.MaxBatchPoints {
			return nil, fmt.Errorf("server: batch delete of %d ids exceeds limit %d", n, wire.MaxBatchPoints)
		}
		if 4*n > r.Remaining() {
			return nil, fmt.Errorf("server: batch delete count %d exceeds payload (%d bytes remaining)", n, r.Remaining())
		}
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = r.I32()
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		if rem := r.Remaining(); rem != 0 {
			return nil, fmt.Errorf("server: batch delete payload has %d trailing bytes", rem)
		}
		s.mu.Lock()
		err := s.db.BatchDelete(ids)
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
		var b wire.Buffer
		b.U32(uint32(n))
		return b.Bytes(), nil

	default:
		return nil, fmt.Errorf("server: unknown opcode 0x%02x", op)
	}
}

func encodeAnswers(answers []uvdiagram.Answer) []byte {
	var b wire.Buffer
	b.U32(uint32(len(answers)))
	for _, a := range answers {
		b.I32(a.ID)
		b.F64(a.Prob)
	}
	return b.Bytes()
}

// Logf is a convenience adapter for log.Printf-style loggers.
func Logf(l *log.Logger) func(string, ...any) {
	return func(format string, args ...any) { l.Printf(format, args...) }
}
