// Package server exposes a built UV-diagram database over TCP with the
// framed binary protocol of package wire — the service substrate for
// the location-based-service settings of the paper's introduction
// (e.g. the wireless broadcast services of [2], [3] front a spatial
// index with exactly this kind of query endpoint).
//
// Concurrency model: queries take a read lock and run concurrently;
// Insert takes the write lock (the incremental-update extension).
// Each connection is served by one goroutine; a framing or checksum
// error poisons the connection, while an application-level error is
// reported in-band and the connection continues.
package server

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"uvdiagram"
	"uvdiagram/internal/uncertain"
	"uvdiagram/internal/wire"
)

// Server serves one DB over a listener.
type Server struct {
	mu     sync.RWMutex // guards db state (queries: RLock, Insert: Lock)
	db     *uvdiagram.DB
	logf   func(format string, args ...any)
	wg     sync.WaitGroup
	lmu    sync.Mutex // guards lis
	lis    net.Listener
	closed chan struct{}
}

// New wraps a built database. logf may be nil to discard logs.
func New(db *uvdiagram.DB, logf func(format string, args ...any)) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{db: db, logf: logf, closed: make(chan struct{})}
}

// DB returns the served database.
func (s *Server) DB() *uvdiagram.DB { return s.db }

// Addr returns the listener's address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.lmu.Lock()
	defer s.lmu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// Serve accepts connections until the listener is closed. It always
// returns a non-nil error (net.ErrClosed after Close).
func (s *Server) Serve(lis net.Listener) error {
	s.lmu.Lock()
	s.lis = lis
	s.lmu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return net.ErrClosed
			default:
				return err
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves. The returned address
// channel receives the bound address once (useful with ":0").
func (s *Server) ListenAndServe(addr string, bound chan<- net.Addr) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if bound != nil {
		bound <- lis.Addr()
	}
	return s.Serve(lis)
}

// Close stops accepting and waits for in-flight connections to finish
// their current request loop (their sockets are not force-closed; they
// end when the client disconnects).
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	s.lmu.Lock()
	defer s.lmu.Unlock()
	var err error
	if s.lis != nil {
		err = s.lis.Close()
	}
	return err
}

// Wait blocks until every connection goroutine has exited.
func (s *Server) Wait() { s.wg.Wait() }

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		select {
		case <-s.closed:
			return
		default:
		}
		op, payload, err := wire.ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("server: %v: read: %v", conn.RemoteAddr(), err)
			}
			return
		}
		resp, err := s.dispatch(op, payload)
		if err != nil {
			var eb wire.Buffer
			eb.Str(err.Error())
			if werr := wire.WriteFrame(conn, wire.StatusErr, eb.Bytes()); werr != nil {
				return
			}
			continue
		}
		if err := wire.WriteFrame(conn, wire.StatusOK, resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(op byte, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	switch op {
	case wire.OpPing:
		return nil, nil

	case wire.OpStats:
		s.mu.RLock()
		defer s.mu.RUnlock()
		d := s.db.Domain()
		st := s.db.IndexStats()
		var b wire.Buffer
		b.F64(d.Min.X)
		b.F64(d.Min.Y)
		b.F64(d.Max.X)
		b.F64(d.Max.Y)
		b.U32(uint32(s.db.Len()))
		b.U32(uint32(st.NonLeaf))
		b.U32(uint32(st.Leaves))
		b.U32(uint32(st.Pages))
		b.U32(uint32(st.MaxDepth))
		b.U64(uint64(st.Entries))
		return b.Bytes(), nil

	case wire.OpPNN:
		q := uvdiagram.Pt(r.F64(), r.F64())
		if err := r.Err(); err != nil {
			return nil, err
		}
		s.mu.RLock()
		answers, _, err := s.db.PNN(q)
		s.mu.RUnlock()
		if err != nil {
			return nil, err
		}
		return encodeAnswers(answers), nil

	case wire.OpTopK:
		q := uvdiagram.Pt(r.F64(), r.F64())
		k := int(r.U32())
		if err := r.Err(); err != nil {
			return nil, err
		}
		s.mu.RLock()
		answers, _, err := s.db.TopKPNN(q, k)
		s.mu.RUnlock()
		if err != nil {
			return nil, err
		}
		return encodeAnswers(answers), nil

	case wire.OpPossibleKNN:
		q := uvdiagram.Pt(r.F64(), r.F64())
		k := int(r.U32())
		if err := r.Err(); err != nil {
			return nil, err
		}
		s.mu.RLock()
		ids, err := s.db.PossibleKNN(q, k)
		s.mu.RUnlock()
		if err != nil {
			return nil, err
		}
		var b wire.Buffer
		b.U32(uint32(len(ids)))
		for _, id := range ids {
			b.I32(id)
		}
		return b.Bytes(), nil

	case wire.OpRNN:
		q := uvdiagram.Pt(r.F64(), r.F64())
		if err := r.Err(); err != nil {
			return nil, err
		}
		s.mu.RLock()
		answers, _ := s.db.RNN(q)
		s.mu.RUnlock()
		var b wire.Buffer
		b.U32(uint32(len(answers)))
		for _, a := range answers {
			b.I32(a.ID)
			b.F64(a.Prob)
		}
		return b.Bytes(), nil

	case wire.OpCellArea:
		id := r.I32()
		if err := r.Err(); err != nil {
			return nil, err
		}
		s.mu.RLock()
		area, err := s.db.CellArea(id)
		s.mu.RUnlock()
		if err != nil {
			return nil, err
		}
		var b wire.Buffer
		b.F64(area)
		return b.Bytes(), nil

	case wire.OpPartitions:
		rect := uvdiagram.Rect{
			Min: uvdiagram.Pt(r.F64(), r.F64()),
			Max: uvdiagram.Pt(r.F64(), r.F64()),
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		s.mu.RLock()
		parts := s.db.Partitions(rect)
		s.mu.RUnlock()
		var b wire.Buffer
		b.U32(uint32(len(parts)))
		for _, p := range parts {
			b.F64(p.Region.Min.X)
			b.F64(p.Region.Min.Y)
			b.F64(p.Region.Max.X)
			b.F64(p.Region.Max.Y)
			b.U32(uint32(p.Count))
			b.F64(p.Density)
		}
		return b.Bytes(), nil

	case wire.OpInsert:
		id := r.I32()
		cx, cy, rad := r.F64(), r.F64(), r.F64()
		nb := int(r.U16())
		if nb > 1024 {
			return nil, fmt.Errorf("server: pdf with %d bins rejected", nb)
		}
		weights := make([]float64, nb)
		for i := range weights {
			weights[i] = r.F64()
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		var pdf *uvdiagram.PDF
		if nb > 0 {
			p, err := uncertain.NewHistogramPDF(weights)
			if err != nil {
				return nil, err
			}
			pdf = p
		}
		obj := uvdiagram.NewObject(id, cx, cy, rad, pdf)
		s.mu.Lock()
		err := s.db.Insert(obj)
		s.mu.Unlock()
		return nil, err

	default:
		return nil, fmt.Errorf("server: unknown opcode 0x%02x", op)
	}
}

func encodeAnswers(answers []uvdiagram.Answer) []byte {
	var b wire.Buffer
	b.U32(uint32(len(answers)))
	for _, a := range answers {
		b.I32(a.ID)
		b.F64(a.Prob)
	}
	return b.Bytes()
}

// Logf is a convenience adapter for log.Printf-style loggers.
func Logf(l *log.Logger) func(string, ...any) {
	return func(format string, args ...any) { l.Printf(format, args...) }
}
