package server

import (
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"uvdiagram"
	"uvdiagram/internal/datagen"
	"uvdiagram/internal/wire"
)

// startServer builds a small DB, serves it on a loopback listener and
// returns a connected client. Everything is torn down with t.Cleanup.
func startServer(t *testing.T, n int) (*Client, *Server) {
	t.Helper()
	cfg := datagen.Config{N: n, Side: 2000, Diameter: 30, Seed: 77}
	objs := datagen.Uniform(cfg)
	db, err := uvdiagram.Build(objs, cfg.Domain(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, t.Logf)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(lis)
	}()
	cli, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
		<-done
		srv.Wait()
	})
	return cli, srv
}

func TestPingAndStats(t *testing.T) {
	cli, srv := startServer(t, 50)
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
	st, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Objects != 50 {
		t.Fatalf("objects = %d", st.Objects)
	}
	if st.Domain != srv.DB().Domain() {
		t.Fatalf("domain = %v, want %v", st.Domain, srv.DB().Domain())
	}
	want := srv.DB().IndexStats()
	if st.Leaves != want.Leaves || st.Entries != want.Entries {
		t.Fatalf("stats %+v, want %+v", st, want)
	}
}

// TestShardedStatsOverWire serves a spatially sharded database and
// checks the Stats opcode carries the shard count and per-shard slack,
// that queries route correctly over the wire, and that a delete's slack
// shows up in the shard breakdown.
func TestShardedStatsOverWire(t *testing.T) {
	cfg := datagen.Config{N: 80, Side: 2000, Diameter: 30, Seed: 77}
	objs := datagen.Uniform(cfg)
	db, err := uvdiagram.Build(objs, cfg.Domain(), &uvdiagram.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, t.Logf)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(lis)
	}()
	cli, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
		<-done
		srv.Wait()
	})

	st, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 4 || len(st.ShardSlack) != 4 {
		t.Fatalf("stats shards = %d (%d slacks), want 4", st.Shards, len(st.ShardSlack))
	}
	for i, s := range st.ShardSlack {
		if s != 0 {
			t.Fatalf("fresh shard %d has slack %d", i, s)
		}
	}
	// Aggregated shape fields come from all shards.
	if want := db.IndexStats(); st.Leaves != want.Leaves || st.Entries != want.Entries {
		t.Fatalf("stats %+v, want aggregate %+v", st, want)
	}
	// The layout block: grid dimensions, cut coordinates and per-shard
	// live counts (the load-balance signal).
	if st.GridX != 2 || st.GridY != 2 {
		t.Fatalf("stats grid %dx%d, want 2x2", st.GridX, st.GridY)
	}
	xs, ys := db.ShardCuts()
	if fmt.Sprint(st.CutsX) != fmt.Sprint(xs) || fmt.Sprint(st.CutsY) != fmt.Sprint(ys) {
		t.Fatalf("stats cuts %v/%v, engine %v/%v", st.CutsX, st.CutsY, xs, ys)
	}
	liveTotal := 0
	for _, v := range st.ShardLive {
		liveTotal += v
	}
	if liveTotal != db.Len() {
		t.Fatalf("per-shard live counts sum to %d, live population is %d", liveTotal, db.Len())
	}
	if f := st.LoadImbalance(); f < 1 {
		t.Fatalf("load imbalance %v < 1", f)
	}

	// Queries route through the wire identically to local calls,
	// including points on the 2×2 cut lines.
	for _, q := range []uvdiagram.Point{
		uvdiagram.Pt(1000, 1000), uvdiagram.Pt(1000, 250), uvdiagram.Pt(37, 1999),
	} {
		got, err := cli.PNN(q)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := db.PNN(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("q=%v: wire %v vs local %v", q, got, want)
		}
	}

	// A delete accrues slack in at least one shard and the wire reports
	// the new breakdown.
	if err := cli.Delete(5); err != nil {
		t.Fatal(err)
	}
	st, err = cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range st.ShardSlack {
		total += s
	}
	if total == 0 {
		t.Fatal("delete left zero slack across every shard")
	}
	if total != db.Slack() {
		t.Fatalf("wire slack %d, engine slack %d", total, db.Slack())
	}
}

func TestPNNOverWireMatchesLocal(t *testing.T) {
	cli, srv := startServer(t, 80)
	for _, q := range []uvdiagram.Point{
		uvdiagram.Pt(1000, 1000), uvdiagram.Pt(150, 1800), uvdiagram.Pt(1930, 430),
	} {
		got, err := cli.PNN(q)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := srv.DB().PNN(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("q=%v: wire %v vs local %v", q, got, want)
		}
		for i := range got {
			if got[i].ID != want[i].ID || math.Abs(got[i].Prob-want[i].Prob) > 1e-12 {
				t.Fatalf("q=%v answer %d: wire %v vs local %v", q, i, got[i], want[i])
			}
		}
	}
}

func TestAllOpsOverWire(t *testing.T) {
	cli, srv := startServer(t, 60)
	q := uvdiagram.Pt(1000, 1000)

	topk, err := cli.TopKPNN(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(topk) > 2 {
		t.Fatalf("top-2 returned %d answers", len(topk))
	}

	ids, err := cli.PossibleKNN(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs, err := srv.DB().PossibleKNN(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(wantIDs) {
		t.Fatalf("possible-4-NN: wire %v vs local %v", ids, wantIDs)
	}

	rnn, err := cli.RNN(q)
	if err != nil {
		t.Fatal(err)
	}
	wantRNN, _ := srv.DB().RNN(q)
	if len(rnn) != len(wantRNN) {
		t.Fatalf("RNN: wire %v vs local %v", rnn, wantRNN)
	}

	area, err := cli.CellArea(5)
	if err != nil {
		t.Fatal(err)
	}
	wantArea, err := srv.DB().CellArea(5)
	if err != nil {
		t.Fatal(err)
	}
	if area != wantArea {
		t.Fatalf("cell area: wire %v vs local %v", area, wantArea)
	}

	parts, err := cli.Partitions(uvdiagram.Rect{Min: uvdiagram.Pt(500, 500), Max: uvdiagram.Pt(1500, 1500)})
	if err != nil {
		t.Fatal(err)
	}
	wantParts := srv.DB().Partitions(uvdiagram.Rect{Min: uvdiagram.Pt(500, 500), Max: uvdiagram.Pt(1500, 1500)})
	if len(parts) != len(wantParts) {
		t.Fatalf("partitions: wire %d vs local %d", len(parts), len(wantParts))
	}
}

func TestInsertOverWire(t *testing.T) {
	cli, srv := startServer(t, 30)
	next := int32(srv.DB().Len())
	if err := cli.Insert(next, 777, 888, 15, nil); err != nil {
		t.Fatal(err)
	}
	if srv.DB().Len() != int(next)+1 {
		t.Fatalf("server DB has %d objects, want %d", srv.DB().Len(), next+1)
	}
	// Wrong (non-dense) ID must be rejected in-band; connection stays
	// usable.
	if err := cli.Insert(999, 1, 1, 5, nil); err == nil {
		t.Fatal("non-dense insert accepted")
	}
	if err := cli.Ping(); err != nil {
		t.Fatalf("connection unusable after in-band error: %v", err)
	}
}

func TestServerErrorsInBand(t *testing.T) {
	cli, _ := startServer(t, 20)
	// Query outside the domain: application error, not a dead socket.
	if _, err := cli.PNN(uvdiagram.Pt(-50, -50)); err == nil {
		t.Fatal("out-of-domain query accepted")
	} else if !strings.Contains(err.Error(), "server:") {
		t.Fatalf("unexpected error: %v", err)
	}
	if err := cli.Ping(); err != nil {
		t.Fatalf("connection unusable after in-band error: %v", err)
	}
}

func TestUnknownOpcode(t *testing.T) {
	cli, _ := startServer(t, 10)
	if _, err := cli.roundTrip(0xEE, nil); err == nil {
		t.Fatal("unknown opcode accepted")
	}
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestMalformedPayloadRejected(t *testing.T) {
	cli, _ := startServer(t, 10)
	// PNN with a half payload: in-band error.
	if _, err := cli.roundTrip(wire.OpPNN, []byte{1, 2, 3}); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestGarbageFramePoisonsConnection(t *testing.T) {
	cli, srv := startServer(t, 10)
	// Raw connection sending garbage: the server must close it (framing
	// errors poison the stream) without disturbing other clients.
	raw, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("server answered a garbage frame instead of closing")
	}
	// The well-behaved client is unaffected.
	if err := cli.Ping(); err != nil {
		t.Fatalf("healthy connection disturbed: %v", err)
	}
}

func TestCorruptChecksumPoisonsConnection(t *testing.T) {
	_, srv := startServer(t, 10)
	raw, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// A structurally valid frame whose checksum does not match.
	frame := []byte{
		9, 0, 0, 0, // length = 1 opcode + 4 payload + 4 crc
		0x03,       // OpPNN
		1, 2, 3, 4, // payload
		0, 0, 0, 0, // wrong CRC
	}
	if _, err := raw.Write(frame); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw.Read(make([]byte, 16)); err == nil {
		t.Fatal("server answered a corrupt frame instead of closing")
	}
}

func TestConcurrentClientsAndInserts(t *testing.T) {
	cli, srv := startServer(t, 60)
	_ = cli
	addr := srv.Addr().String()

	const workers = 8
	const queriesPerWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers+1)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < queriesPerWorker; i++ {
				q := uvdiagram.Pt(float64(100+w*37+i*13%1800), float64(100+i*71%1800))
				if _, err := c.PNN(q); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// One writer inserting concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := Dial(addr)
		if err != nil {
			errs <- err
			return
		}
		defer c.Close()
		for i := 0; i < 10; i++ {
			if err := c.Insert(int32(60+i), float64(200+i*50), float64(300+i*40), 12, nil); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if srv.DB().Len() != 70 {
		t.Fatalf("server DB has %d objects, want 70", srv.DB().Len())
	}
}
