package server

import (
	"net"
	"testing"

	"uvdiagram"
	"uvdiagram/internal/datagen"
)

// benchServer builds a DB of n objects and serves it over loopback TCP.
func benchServer(b *testing.B, n int) (*Client, []uvdiagram.Point) {
	b.Helper()
	cfg := datagen.Config{N: n, Side: 2000, Diameter: 30, Seed: 77}
	db, err := uvdiagram.Build(datagen.Uniform(cfg), cfg.Domain(), nil)
	if err != nil {
		b.Fatal(err)
	}
	srv := New(db, nil)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(lis)
	}()
	cli, err := Dial(lis.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		cli.Close()
		srv.Close()
		<-done
		srv.Wait()
	})
	qs := make([]uvdiagram.Point, 1024)
	for i := range qs {
		qs[i] = uvdiagram.Pt(float64(37+i*53%1900), float64(59+i*97%1900))
	}
	return cli, qs
}

const (
	benchObjects = 400
	benchK       = 4
)

// The NN benchmarks ship a possible-k-NN workload (k-nearest-neighbor
// retrieval without the probability integration) — the wire-bound query
// where the serving model dominates the cost. BenchmarkBatchNN versus
// BenchmarkSingleNN is the batch engine's headline number.

// BenchmarkSingleNN is the baseline: one blocking round trip per query,
// exactly one request in flight (the pre-batch serving model).
func BenchmarkSingleNN(b *testing.B) {
	cli, qs := benchServer(b, benchObjects)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.PossibleKNN(qs[i%len(qs)], benchK); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelinedNN streams the same queries with a 64-deep
// in-flight window on one connection.
func BenchmarkPipelinedNN(b *testing.B) {
	cli, qs := benchServer(b, benchObjects)
	b.ResetTimer()
	const window = 64
	done := make(chan *Call, window)
	inFlight := 0
	drain := func() {
		if _, err := PossibleKNNIDs(<-done); err != nil {
			b.Fatal(err)
		}
		inFlight--
	}
	for i := 0; i < b.N; i++ {
		for inFlight >= window {
			drain()
		}
		cli.GoPossibleKNN(qs[i%len(qs)], benchK, done)
		inFlight++
	}
	for inFlight > 0 {
		drain()
	}
}

// BenchmarkBatchNN ships the queries as batch frames of up to 1024
// points, answered by the server's worker-pool fan-out with the shared
// leaf cache.
func BenchmarkBatchNN(b *testing.B) {
	cli, qs := benchServer(b, benchObjects)
	b.ResetTimer()
	for off := 0; off < b.N; off += len(qs) {
		end := off + len(qs)
		if end > b.N {
			end = b.N
		}
		if _, err := cli.BatchPossibleKNN(qs[:end-off], benchK); err != nil {
			b.Fatal(err)
		}
	}
}

// The PNN benchmarks run the paper's probabilistic NN query, whose
// numerical integration dominates the round trip; they bound what
// pipelining can buy for compute-bound traffic on one core.

// BenchmarkSinglePNN is one blocking PNN round trip per query.
func BenchmarkSinglePNN(b *testing.B) {
	cli, qs := benchServer(b, benchObjects)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.PNN(qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchPNN ships PNN queries as batch frames.
func BenchmarkBatchPNN(b *testing.B) {
	cli, qs := benchServer(b, benchObjects)
	b.ResetTimer()
	for off := 0; off < b.N; off += len(qs) {
		end := off + len(qs)
		if end > b.N {
			end = b.N
		}
		if _, err := cli.BatchPNN(qs[:end-off]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChurn is the dynamic-maintenance workload: a 90/5/5 mix of
// PNN queries, inserts and deletes over one pipelined connection —
// every write is a pipeline barrier, and every delete re-derives only
// the victim's cr-dependents. The per-op number is the blended cost of
// serving under churn.
func BenchmarkChurn(b *testing.B) {
	cli, qs := benchServer(b, benchObjects)
	next := int32(benchObjects)
	live := make([]int32, benchObjects)
	for i := range live {
		live[i] = int32(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch {
		case i%20 == 7: // 5% inserts
			q := qs[i%len(qs)]
			if err := cli.Insert(next, q.X, q.Y, 12, nil); err != nil {
				b.Fatal(err)
			}
			live = append(live, next)
			next++
		case i%20 == 13 && len(live) > benchObjects/2: // 5% deletes
			id := live[i%len(live)]
			live[i%len(live)] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := cli.Delete(id); err != nil {
				b.Fatal(err)
			}
		default:
			if _, err := cli.PNN(qs[i%len(qs)]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDelete measures the incremental delete alone: each op
// removes one live object over the wire (the population is replenished
// by inserts outside the timed sections).
func BenchmarkDelete(b *testing.B) {
	cli, qs := benchServer(b, benchObjects)
	next := int32(benchObjects)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Keep the population stable: insert one (untimed), delete one
		// (timed). The inserted object is the next victim, so every
		// delete has a real neighborhood to repair.
		b.StopTimer()
		q := qs[i%len(qs)]
		if err := cli.Insert(next, q.X, q.Y, 12, nil); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := cli.Delete(next); err != nil {
			b.Fatal(err)
		}
		next++
	}
}
