package server

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"uvdiagram"
	"uvdiagram/internal/wire"
)

// TestDeleteOverWire drives the delete opcodes end to end: visibility,
// in-band failures, and the read-your-deletes pipeline barrier.
func TestDeleteOverWire(t *testing.T) {
	cli, srv := startServer(t, 40)

	victim := int32(3)
	center, err := srv.DB().Object(victim)
	if err != nil {
		t.Fatal(err)
	}
	q := center.Region.C

	if err := cli.Delete(victim); err != nil {
		t.Fatal(err)
	}
	if srv.DB().Alive(victim) {
		t.Fatal("server DB still lists the victim as alive")
	}
	if srv.DB().Len() != 39 {
		t.Fatalf("live count %d, want 39", srv.DB().Len())
	}
	answers, err := cli.PNN(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range answers {
		if a.ID == victim {
			t.Fatalf("deleted object still answered over the wire: %v", answers)
		}
	}

	// Double delete and unknown id: in-band errors, connection healthy.
	if err := cli.Delete(victim); err == nil {
		t.Fatal("double delete accepted")
	} else if !strings.Contains(err.Error(), "server:") {
		t.Fatalf("unexpected error shape: %v", err)
	}
	if err := cli.Delete(9999); err == nil {
		t.Fatal("unknown delete accepted")
	}
	if err := cli.Ping(); err != nil {
		t.Fatalf("connection unusable after in-band delete error: %v", err)
	}

	// Batch delete: all-or-nothing, echoed count checked by the client.
	if err := cli.BatchDelete([]int32{5, victim}); err == nil {
		t.Fatal("batch with dead id accepted")
	}
	if !srv.DB().Alive(5) {
		t.Fatal("failed batch delete was not all-or-nothing")
	}
	if err := cli.BatchDelete([]int32{5, 7, 11}); err != nil {
		t.Fatal(err)
	}
	if srv.DB().Len() != 36 {
		t.Fatalf("live count %d after batch delete, want 36", srv.DB().Len())
	}

	// Stats must expose both the live count and the next insert id —
	// after deletions they differ, and inserts key off NextID.
	st, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Objects != 36 {
		t.Fatalf("stats objects = %d, want live count 36", st.Objects)
	}
	if st.NextID != 40 {
		t.Fatalf("stats next id = %d, want dense end 40", st.NextID)
	}
	if err := cli.Insert(st.NextID, 500, 500, 10, nil); err != nil {
		t.Fatalf("insert at advertised NextID failed: %v", err)
	}
}

// TestPipelinedReadYourDeletes: a Delete pipelined between queries on
// one connection is a barrier — queries queued after it must not see
// the victim.
func TestPipelinedReadYourDeletes(t *testing.T) {
	cli, srv := startServer(t, 30)
	victim := int32(12)
	o, err := srv.DB().Object(victim)
	if err != nil {
		t.Fatal(err)
	}
	q := o.Region.C

	var pre, post [6]*Call
	for i := range pre {
		pre[i] = cli.GoPNN(q, nil)
	}
	del := cli.GoDelete(victim, nil)
	for i := range post {
		post[i] = cli.GoPNN(q, nil)
	}

	seen := func(calls []*Call) bool {
		t.Helper()
		found := false
		for _, call := range calls {
			<-call.Done
			answers, err := PNNAnswers(call)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range answers {
				found = found || a.ID == victim
			}
		}
		return found
	}
	if !seen(pre[:]) {
		t.Fatal("pre-delete queries never saw the victim at its own center")
	}
	<-del.Done
	if del.Err != nil {
		t.Fatal(del.Err)
	}
	if seen(post[:]) {
		t.Fatal("post-delete pipelined query still saw the victim")
	}
}

// TestMalformedDeleteIsolation: truncated or trailing-garbage delete
// payloads fail only their own call; the connection keeps serving.
func TestMalformedDeleteIsolation(t *testing.T) {
	cli, srv := startServer(t, 20)
	before := srv.DB().Len()

	if _, err := cli.roundTrip(wire.OpDelete, []byte{1, 2}); err == nil {
		t.Fatal("truncated delete accepted")
	}
	if _, err := cli.roundTrip(wire.OpDelete, []byte{0, 0, 0, 0, 0xFF}); err == nil {
		t.Fatal("delete with trailing bytes accepted")
	}
	var hostile wire.Buffer
	hostile.U32(1 << 30) // batch count with no ids behind it
	if _, err := cli.roundTrip(wire.OpBatchDelete, hostile.Bytes()); err == nil {
		t.Fatal("hostile batch delete count accepted")
	}
	if _, err := cli.roundTrip(wire.OpBatchDelete, []byte{}); err == nil {
		t.Fatal("empty batch delete payload accepted")
	}

	if srv.DB().Len() != before {
		t.Fatalf("malformed deletes mutated the DB: %d -> %d", before, srv.DB().Len())
	}
	if err := cli.Ping(); err != nil {
		t.Fatalf("connection unusable after malformed deletes: %v", err)
	}
	// And a well-formed delete still works on the same connection.
	if err := cli.Delete(0); err != nil {
		t.Fatal(err)
	}
}

// TestRebuildDuringQueries is the regression guard for the pre-epoch
// data race: DB.Rebuild used to write db.index/db.built in place while
// server goroutines read them. With the epoch swap this must be clean
// under -race and queries must keep answering correctly throughout.
func TestRebuildDuringQueries(t *testing.T) {
	_, srv := startServer(t, 60)
	addr := srv.Addr().String()

	const readers = 4
	const rounds = 30
	var wg sync.WaitGroup
	var failed atomic.Bool
	stop := make(chan struct{})

	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				failed.Store(true)
				t.Errorf("reader %d: %v", w, err)
				return
			}
			defer c.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := uvdiagram.Pt(float64(100+(w*131+i*17)%1800), float64(100+(i*41)%1800))
				if _, err := c.PNN(q); err != nil {
					failed.Store(true)
					t.Errorf("reader %d query %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}

	for r := 0; r < rounds; r++ {
		if err := srv.DB().Rebuild(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if failed.Load() {
		t.FailNow()
	}
}

// TestChurnStress is the full dynamic workload under the race detector:
// concurrent pipelined and batch queries, one writer interleaving
// inserts and deletes over the wire, and a Compact epoch swap
// mid-flight.
func TestChurnStress(t *testing.T) {
	_, srv := startServer(t, 50)
	addr := srv.Addr().String()

	const (
		readers         = 5
		roundsPerReader = 10
		writeOps        = 24
		batchPointsPer  = 12
	)
	var wg sync.WaitGroup
	var failed atomic.Bool
	fail := func(format string, args ...any) {
		failed.Store(true)
		t.Errorf(format, args...)
	}

	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				fail("reader %d: %v", w, err)
				return
			}
			defer c.Close()
			pt := func(i, j int) uvdiagram.Point {
				return uvdiagram.Pt(float64(100+(w*211+i*37+j*97)%1800), float64(100+(i*71+j*13)%1800))
			}
			for i := 0; i < roundsPerReader && !failed.Load(); i++ {
				switch i % 3 {
				case 0:
					qs := make([]uvdiagram.Point, batchPointsPer)
					for j := range qs {
						qs[j] = pt(i, j)
					}
					if _, err := c.BatchPNN(qs); err != nil {
						fail("reader %d round %d: BatchPNN: %v", w, i, err)
						return
					}
				case 1:
					if _, err := c.PossibleKNN(pt(i, 0), 3); err != nil {
						fail("reader %d round %d: PossibleKNN: %v", w, i, err)
						return
					}
					if _, err := c.RNN(pt(i, 1)); err != nil {
						fail("reader %d round %d: RNN: %v", w, i, err)
						return
					}
				default:
					calls := make([]*Call, 8)
					for j := range calls {
						calls[j] = c.GoPNN(pt(i, j), nil)
					}
					for j, call := range calls {
						<-call.Done
						if _, err := PNNAnswers(call); err != nil {
							fail("reader %d round %d call %d: %v", w, i, j, err)
							return
						}
					}
				}
			}
		}(w)
	}

	// One writer alternating inserts and deletes (single connection
	// keeps the dense-ID sequencing trivial).
	wg.Add(1)
	var inserted, deleted atomic.Int64
	go func() {
		defer wg.Done()
		c, err := Dial(addr)
		if err != nil {
			fail("writer: %v", err)
			return
		}
		defer c.Close()
		next := int32(50)
		for i := 0; i < writeOps; i++ {
			if i%2 == 0 {
				if err := c.Insert(next, float64(150+i*140%1700), float64(250+i*120%1600), 12, nil); err != nil {
					fail("writer insert %d: %v", next, err)
					return
				}
				next++
				inserted.Add(1)
			} else {
				// Delete one of the seed objects; each id used once.
				if err := c.Delete(int32(i / 2)); err != nil {
					fail("writer delete %d: %v", i/2, err)
					return
				}
				deleted.Add(1)
			}
		}
	}()

	// A compaction mid-flight, directly on the DB (the epoch swap runs
	// without the server lock).
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := srv.DB().Compact(context.Background()); err != nil {
			fail("compact: %v", err)
		}
	}()

	wg.Wait()
	if failed.Load() {
		t.FailNow()
	}
	want := 50 + int(inserted.Load()) - int(deleted.Load())
	if got := srv.DB().Len(); got != want {
		t.Fatalf("server DB has %d live objects, want %d", got, want)
	}
	// The post-churn database still answers consistently with a fresh
	// rebuild of itself.
	q := uvdiagram.Pt(1000, 1000)
	before, _, err := srv.DB().PNN(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.DB().Rebuild(); err != nil {
		t.Fatal(err)
	}
	after, _, err := srv.DB().PNN(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("rebuild changed post-churn answers: %v vs %v", before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("rebuild changed post-churn answers: %v vs %v", before, after)
		}
	}
}
