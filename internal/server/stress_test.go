package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"uvdiagram"
	"uvdiagram/internal/wire"
)

// TestBatchOpsOverWire checks every batch opcode end to end against
// local sequential answers.
func TestBatchOpsOverWire(t *testing.T) {
	cli, srv := startServer(t, 60)
	qs := []uvdiagram.Point{
		uvdiagram.Pt(1000, 1000), uvdiagram.Pt(150, 1800),
		uvdiagram.Pt(1930, 430), uvdiagram.Pt(1000, 1000), // repeat → cache hit
	}

	lists, err := cli.BatchPNN(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want, _, err := srv.DB().PNN(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(lists[i]) != len(want) {
			t.Fatalf("query %d: wire %v vs local %v", i, lists[i], want)
		}
		for j := range want {
			if lists[i][j] != want[j] {
				t.Fatalf("query %d answer %d: wire %v vs local %v", i, j, lists[i][j], want[j])
			}
		}
	}

	top, err := cli.BatchTopKPNN(qs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want, _, err := srv.DB().TopKPNN(q, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(top[i]) != len(want) {
			t.Fatalf("topk query %d: wire %v vs local %v", i, top[i], want)
		}
	}

	knn, err := cli.BatchPossibleKNN(qs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want, err := srv.DB().PossibleKNN(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(knn[i]) != fmt.Sprint(want) {
			t.Fatalf("knn query %d: wire %v vs local %v", i, knn[i], want)
		}
	}

	thr, err := cli.BatchThresholdNN(qs, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		all, _, err := srv.DB().PNN(q)
		if err != nil {
			t.Fatal(err)
		}
		var want []uvdiagram.Answer
		for _, a := range all {
			if a.Prob >= 0.3 {
				want = append(want, a)
			}
		}
		if len(thr[i]) != len(want) {
			t.Fatalf("threshold query %d: wire %v vs local %v", i, thr[i], want)
		}
	}
}

// TestBatchAllOrNothing: one bad point fails the whole batch in-band,
// naming the query, and the connection stays usable.
func TestBatchAllOrNothing(t *testing.T) {
	cli, _ := startServer(t, 20)
	qs := []uvdiagram.Point{
		uvdiagram.Pt(100, 100),
		uvdiagram.Pt(-40, -40), // outside the domain
	}
	if _, err := cli.BatchPNN(qs); err == nil {
		t.Fatal("batch with out-of-domain point accepted")
	}
	if err := cli.Ping(); err != nil {
		t.Fatalf("connection unusable after failed batch: %v", err)
	}
}

// TestPipelinedResponsesInOrder issues a window of async calls at once
// and checks each response matches its own query (responses must come
// back in request order, not completion order).
func TestPipelinedResponsesInOrder(t *testing.T) {
	cli, srv := startServer(t, 60)
	const n = 128
	qs := make([]uvdiagram.Point, n)
	calls := make([]*Call, n)
	for i := range qs {
		qs[i] = uvdiagram.Pt(float64(50+i*14%1900), float64(70+i*29%1900))
		calls[i] = cli.GoPNN(qs[i], nil)
	}
	for i, call := range calls {
		<-call.Done
		got, err := PNNAnswers(call)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		want, _, err := srv.DB().PNN(qs[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("call %d: %v, want %v (response misordered?)", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("call %d answer %d: %v, want %v", i, j, got[j], want[j])
			}
		}
	}
}

// TestPipelinedReadYourWrites: an Insert pipelined ahead of queries on
// the same connection must be visible to them — the server treats
// writes as per-connection execution barriers.
func TestPipelinedReadYourWrites(t *testing.T) {
	cli, srv := startServer(t, 30)
	next := int32(srv.DB().Len())
	q := uvdiagram.Pt(1234, 987)

	// Queue queries, the insert, and post-insert queries back to back
	// without waiting for any response.
	var pre, post [8]*Call
	for i := range pre {
		pre[i] = cli.GoPNN(q, nil)
	}
	var ib wire.Buffer
	ib.I32(next)
	ib.F64(q.X)
	ib.F64(q.Y)
	ib.F64(15)
	ib.U16(0)
	ins := cli.Go(wire.OpInsert, ib.Bytes(), nil)
	for i := range post {
		post[i] = cli.GoPNN(q, nil)
	}

	for _, call := range pre {
		<-call.Done
		if _, err := PNNAnswers(call); err != nil {
			t.Fatal(err)
		}
	}
	<-ins.Done
	if _, err := ins.Reader(); err != nil {
		t.Fatal(err)
	}
	for i, call := range post {
		<-call.Done
		answers, err := PNNAnswers(call)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, a := range answers {
			found = found || a.ID == next
		}
		if !found {
			t.Fatalf("post-insert query %d does not see object %d: %v", i, next, answers)
		}
	}
}

// TestOversizedRequestDoesNotPoisonClient: a request too large for one
// frame fails only that call — the connection was never touched, so
// later calls keep working.
func TestOversizedRequestDoesNotPoisonClient(t *testing.T) {
	cli, _ := startServer(t, 10)
	huge := make([]uvdiagram.Point, wire.MaxBatchPoints+1)
	if _, err := cli.BatchPNN(huge); err == nil {
		t.Fatal("oversized batch accepted")
	}
	// Raw oversized frame through Go as well.
	call := cli.Go(wire.OpPNN, make([]byte, wire.MaxFrame), nil)
	<-call.Done
	if _, err := call.Reader(); err == nil {
		t.Fatal("oversized frame accepted")
	}
	if err := cli.Ping(); err != nil {
		t.Fatalf("client poisoned by oversized request: %v", err)
	}
}

// TestConcurrentMixedWorkloadStress is the race-detector workout: many
// pipelined clients issuing mixed single, async and batch queries
// interleaved with Inserts against one server.
func TestConcurrentMixedWorkloadStress(t *testing.T) {
	_, srv := startServer(t, 50)
	addr := srv.Addr().String()

	const (
		readers          = 6
		roundsPerReader  = 12
		inserts          = 8
		batchPointsPer   = 16
		pipelineWindowed = 24
	)
	var wg sync.WaitGroup
	var failed atomic.Bool
	fail := func(format string, args ...any) {
		failed.Store(true)
		t.Errorf(format, args...)
	}

	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				fail("reader %d: %v", w, err)
				return
			}
			defer c.Close()
			pt := func(i, j int) uvdiagram.Point {
				return uvdiagram.Pt(float64(100+(w*211+i*37+j*97)%1800), float64(100+(i*71+j*13)%1800))
			}
			for i := 0; i < roundsPerReader && !failed.Load(); i++ {
				switch i % 4 {
				case 0: // pipelined async burst
					calls := make([]*Call, pipelineWindowed)
					for j := range calls {
						calls[j] = c.GoPNN(pt(i, j), nil)
					}
					for j, call := range calls {
						<-call.Done
						if _, err := PNNAnswers(call); err != nil {
							fail("reader %d round %d call %d: %v", w, i, j, err)
							return
						}
					}
				case 1: // batch PNN
					qs := make([]uvdiagram.Point, batchPointsPer)
					for j := range qs {
						qs[j] = pt(i, j)
					}
					if _, err := c.BatchPNN(qs); err != nil {
						fail("reader %d round %d: BatchPNN: %v", w, i, err)
						return
					}
				case 2: // batch order-k
					qs := make([]uvdiagram.Point, batchPointsPer)
					for j := range qs {
						qs[j] = pt(i, j)
					}
					if _, err := c.BatchPossibleKNN(qs, 3); err != nil {
						fail("reader %d round %d: BatchPossibleKNN: %v", w, i, err)
						return
					}
				default: // blocking single ops
					if _, err := c.TopKPNN(pt(i, 0), 2); err != nil {
						fail("reader %d round %d: TopKPNN: %v", w, i, err)
						return
					}
					if _, err := c.RNN(pt(i, 1)); err != nil {
						fail("reader %d round %d: RNN: %v", w, i, err)
						return
					}
				}
			}
		}(w)
	}

	// One writer inserting concurrently (IDs must stay dense, so a
	// single writer issues them in order over one pipelined connection).
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := Dial(addr)
		if err != nil {
			fail("writer: %v", err)
			return
		}
		defer c.Close()
		for i := 0; i < inserts; i++ {
			id := int32(50 + i)
			if err := c.Insert(id, float64(150+i*190), float64(250+i*160), 12, nil); err != nil {
				fail("writer insert %d: %v", id, err)
				return
			}
		}
	}()

	wg.Wait()
	if failed.Load() {
		t.FailNow()
	}
	if got := srv.DB().Len(); got != 50+inserts {
		t.Fatalf("server DB has %d objects, want %d", got, 50+inserts)
	}
}
