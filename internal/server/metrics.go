package server

import (
	"uvdiagram"
	"uvdiagram/internal/metrics"
	"uvdiagram/internal/wire"
)

// Server observability: every request frame bumps a per-opcode counter,
// the push path times its flushes and counts slow-consumer disconnects,
// and the DB's maintenance observer feeds reshard/compaction events —
// all lock-free atomics on the hot paths (see internal/metrics). The
// flattened snapshot is served identically through the OpMetrics wire
// opcode, Server.MetricsMap (the expvar feed) and `uvclient metrics`.
//
// Counter semantics are EXACT: a request frame increments exactly one
// ops.* counter at decode time, so under any concurrency the counts
// equal the number of frames the server decoded. Gauges (db.*, sub.*,
// cache.*, maint.ticks…) are sampled at snapshot time from the live
// engine.
type serverMetrics struct {
	set *metrics.Set

	// ops maps a request opcode byte to its counter; unknown bytes
	// share ops.unknown. Filled once at construction so the decode loop
	// never touches the registry lock.
	ops      [256]*metrics.Counter
	opErrors *metrics.Counter

	pushDeltas    *metrics.Counter
	pushFlush     *metrics.Histogram
	slowConsumers *metrics.Counter

	maintReshards      *metrics.Counter
	maintCompacts      *metrics.Counter
	maintShardCompacts *metrics.Counter
	maintFailures      *metrics.Counter
	maintReshardDur    *metrics.Histogram
	maintCompactDur    *metrics.Histogram
	imbBefore          *metrics.Gauge
	imbAfter           *metrics.Gauge

	// Snapshot-time gauges.
	subActive   *metrics.Gauge
	dbLive      *metrics.Gauge
	dbSlack     *metrics.Gauge
	dbImbalance *metrics.Gauge
	cacheHits   *metrics.Gauge
	cacheMisses *metrics.Gauge
	cacheEvict  *metrics.Gauge
	rtHits      *metrics.Gauge
	rtMisses    *metrics.Gauge
	rtEvict     *metrics.Gauge
	pagerReads  *metrics.Gauge
	pagerWrites *metrics.Gauge
	pagerDisk   *metrics.Gauge
	pagerVac    *metrics.Gauge
	maintTicks  *metrics.Gauge
	maintArms   *metrics.Gauge
	maintPress  *metrics.Gauge
}

func newServerMetrics() *serverMetrics {
	set := metrics.NewSet()
	m := &serverMetrics{
		set:      set,
		opErrors: set.Counter("ops.errors"),

		pushDeltas:    set.Counter("push.deltas"),
		pushFlush:     set.Histogram("push.flush"),
		slowConsumers: set.Counter("push.slow_consumer_disconnects"),

		maintReshards:      set.Counter("maint.reshards"),
		maintCompacts:      set.Counter("maint.compacts"),
		maintShardCompacts: set.Counter("maint.shard_compacts"),
		maintFailures:      set.Counter("maint.failures"),
		maintReshardDur:    set.Histogram("maint.reshard"),
		maintCompactDur:    set.Histogram("maint.compact"),
		imbBefore:          set.Gauge("maint.last_imbalance_before"),
		imbAfter:           set.Gauge("maint.last_imbalance_after"),

		subActive:   set.Gauge("sub.active"),
		dbLive:      set.Gauge("db.live"),
		dbSlack:     set.Gauge("db.slack"),
		dbImbalance: set.Gauge("db.imbalance"),
		cacheHits:   set.Gauge("cache.leaf_hits"),
		cacheMisses: set.Gauge("cache.leaf_misses"),
		cacheEvict:  set.Gauge("cache.leaf_evictions"),
		rtHits:      set.Gauge("cache.rtree_hits"),
		rtMisses:    set.Gauge("cache.rtree_misses"),
		rtEvict:     set.Gauge("cache.rtree_evictions"),
		pagerReads:  set.Gauge("pager.reads"),
		pagerWrites: set.Gauge("pager.writes"),
		pagerDisk:   set.Gauge("pager.disk_bytes"),
		pagerVac:    set.Gauge("pager.vacuumed_bytes"),
		maintTicks:  set.Gauge("maint.ticks"),
		maintArms:   set.Gauge("maint.compact_arms"),
		maintPress:  set.Gauge("maint.pressure"),
	}
	unknown := set.Counter("ops.unknown")
	for i := 0; i < 256; i++ {
		if name := wire.OpName(byte(i)); name != "unknown" {
			m.ops[i] = set.Counter("ops." + name)
		} else {
			m.ops[i] = unknown
		}
	}
	return m
}

// observeMaint is the DB maintenance observer (see DB.OnMaintenance):
// it runs synchronously inside the maintenance paths, so it only bumps
// atomics.
func (m *serverMetrics) observeMaint(ev uvdiagram.MaintEvent) {
	if ev.Err != nil {
		m.maintFailures.Inc()
		return
	}
	switch ev.Kind {
	case uvdiagram.MaintReshard:
		m.maintReshards.Inc()
		m.maintReshardDur.Observe(ev.Dur)
		m.imbBefore.Set(ev.ImbalanceBefore)
		m.imbAfter.Set(ev.ImbalanceAfter)
	case uvdiagram.MaintCompact:
		m.maintCompacts.Inc()
		m.maintCompactDur.Observe(ev.Dur)
	case uvdiagram.MaintCompactShard:
		m.maintShardCompacts.Inc()
		m.maintCompactDur.Observe(ev.Dur)
	}
}

// MetricsSnapshot samples the live-engine gauges and returns the full
// flattened metric set, sorted by name — the one source behind the
// OpMetrics opcode, MetricsMap/expvar and the CLI. Safe to call
// concurrently with traffic; no server lock is taken (the sampled DB
// accessors are atomic reads).
func (s *Server) MetricsSnapshot() []metrics.Value {
	m := s.metrics
	m.subActive.Set(float64(s.Subscriptions()))
	m.dbLive.Set(float64(s.db.Len()))
	m.dbSlack.Set(float64(s.db.Slack()))
	m.dbImbalance.Set(s.db.LoadImbalance())
	bp := s.db.BufferPoolStats()
	m.cacheHits.Set(float64(bp.LeafHits))
	m.cacheMisses.Set(float64(bp.LeafMisses))
	m.cacheEvict.Set(float64(bp.LeafEvictions))
	m.rtHits.Set(float64(bp.RTreeHits))
	m.rtMisses.Set(float64(bp.RTreeMisses))
	m.rtEvict.Set(float64(bp.RTreeEvictions))
	m.pagerReads.Set(float64(bp.PagerReads))
	m.pagerWrites.Set(float64(bp.PagerWrites))
	m.pagerDisk.Set(float64(bp.DiskBytes))
	m.pagerVac.Set(float64(bp.VacuumedBytes))
	if mt := s.db.Maintainer(); mt != nil {
		st := mt.Stats()
		m.maintTicks.Set(float64(st.Ticks))
		m.maintArms.Set(float64(st.CompactArms))
		m.maintPress.Set(float64(st.Pressure))
	}
	return m.set.Snapshot()
}

// MetricsMap renders MetricsSnapshot as a name → value map — the shape
// expvar.Func wants, so cmd/uvserver can publish the whole set on the
// existing -pprof HTTP listener with one registration.
func (s *Server) MetricsMap() map[string]float64 {
	snap := s.MetricsSnapshot()
	out := make(map[string]float64, len(snap))
	for _, v := range snap {
		out[v.Name] = v.Value
	}
	return out
}
