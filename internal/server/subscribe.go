package server

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"uvdiagram"
	"uvdiagram/internal/wire"
)

// Server-side subscription engine. A subscription is one moving-query
// ContinuousPNN session living on the server: the client streams
// fire-and-forget OpMove frames, the server evaluates each against the
// session's safe circle, and the client hears back only through
// out-of-band PushAnswerDelta frames — pushed exactly when the answer
// set changed, on a safe-circle exit or when an Insert/Delete
// invalidated the session's shard. Sessions on shards a write did not
// touch are provably unaffected (the shard index's mutation generation
// is unchanged) and get neither a re-evaluation beyond one atomic
// comparison nor a push.
//
// Delivery ordering, the contract the client's delta reconstruction
// rests on:
//
//   - A move-triggered delta is written before any LATER frame from the
//     same connection is even decoded (moves run inline on the decode
//     loop), so a Ping queued after a burst of moves flushes their
//     deltas.
//   - Churn-triggered deltas for EVERY subscriber are written before
//     the triggering Insert/Delete/BatchDelete response is released to
//     the mutating client.
//   - Per session, pushes carry a gap-free 1-based sequence, and all
//     writes to one connection are serialized, so the client can detect
//     any hole.

// One out-of-band push write is bounded by Config.PushTimeout (default
// 5s). A subscriber that stopped reading long enough for its socket
// buffer to fill would otherwise stall whoever produces its deltas
// (another connection's decode loop, after a write); instead its
// connection is poisoned — it could not have reconstructed the answer
// set past a dropped delta anyway. Each such disconnect is counted in
// the push.slow_consumer_disconnects metric.

// connState is one connection's write path and subscription table. All
// frame writes — ordered responses from the writer goroutine and
// out-of-band pushes — go through write, so frames never interleave
// mid-frame.
type connState struct {
	s    *Server
	conn net.Conn
	wmu  sync.Mutex // serializes every frame write on conn

	mu   sync.Mutex          // guards subs
	subs map[uint64]*session // sessions opened on THIS connection
}

// write emits one frame under the connection's write mutex. A non-zero
// timeout arms a write deadline (pushes); response writes pass zero and
// block like before.
func (cs *connState) write(kind byte, payload []byte, timeout time.Duration) error {
	cs.wmu.Lock()
	defer cs.wmu.Unlock()
	if timeout > 0 {
		cs.conn.SetWriteDeadline(time.Now().Add(timeout))
		defer cs.conn.SetWriteDeadline(time.Time{})
	}
	return wire.WriteFrame(cs.conn, kind, payload)
}

// session is one server-side moving-query subscription: the root
// continuous cursor, the answer set the client currently holds, and the
// push sequence.
//
// Lock order: the DB lock (Server.mu) is always acquired BEFORE a
// session's mu, and Server.submu / connState.mu are never held while
// acquiring either — the move path, the churn notifier and teardown all
// follow this order.
type session struct {
	id uint64
	cs *connState

	mu     sync.Mutex
	sess   *uvdiagram.ContinuousPNN
	last   []int32 // answer set the client holds (copy, sorted)
	seq    uint64  // per-session push sequence, 1-based
	pushes uint64
	closed bool
}

// pushDelta diffs ids against the answer set the client holds and, when
// anything changed, writes one delta push frame. The caller holds
// ss.mu; the DB lock is not required — ids is the session's answer
// slice, stable until the session's next advance, which ss.mu excludes.
func (ss *session) pushDelta(ids []int32, safe uvdiagram.Circle) {
	added, removed := diffIDs(ss.last, ids)
	if len(added) == 0 && len(removed) == 0 {
		return
	}
	ss.seq++
	ss.pushes++
	var b wire.Buffer
	b.U64(ss.id)
	b.U64(ss.seq)
	b.U8(0)
	b.F64(safe.C.X)
	b.F64(safe.C.Y)
	b.F64(safe.R)
	b.U32(uint32(len(added)))
	for _, id := range added {
		b.I32(id)
	}
	b.U32(uint32(len(removed)))
	for _, id := range removed {
		b.I32(id)
	}
	m := ss.cs.s.metrics
	t0 := time.Now()
	if err := ss.cs.write(wire.PushAnswerDelta, b.Bytes(), ss.cs.s.cfg.PushTimeout); err != nil {
		m.slowConsumers.Inc()
		ss.cs.conn.Close() // poisons the subscriber's connection
		return
	}
	m.pushFlush.Observe(time.Since(t0))
	m.pushDeltas.Inc()
	ss.last = append(ss.last[:0], ids...)
}

// fail pushes a terminal session-error delta and marks the session
// closed (the caller holds ss.mu and unregisters afterwards). The
// connection — and its other sessions — stay healthy.
func (ss *session) fail(cause error) {
	ss.seq++
	ss.closed = true
	var b wire.Buffer
	b.U64(ss.id)
	b.U64(ss.seq)
	b.U8(1)
	b.Str(cause.Error())
	if err := ss.cs.write(wire.PushAnswerDelta, b.Bytes(), ss.cs.s.cfg.PushTimeout); err != nil {
		ss.cs.s.metrics.slowConsumers.Inc()
		ss.cs.conn.Close()
	}
}

// diffIDs returns the ids in cur but not prev (added) and in prev but
// not cur (removed); both inputs and outputs are sorted ascending.
func diffIDs(prev, cur []int32) (added, removed []int32) {
	i, j := 0, 0
	for i < len(prev) && j < len(cur) {
		switch {
		case prev[i] == cur[j]:
			i++
			j++
		case prev[i] < cur[j]:
			removed = append(removed, prev[i])
			i++
		default:
			added = append(added, cur[j])
			j++
		}
	}
	removed = append(removed, prev[i:]...)
	added = append(added, cur[j:]...)
	return added, removed
}

// register publishes a session to the server-wide table the churn
// notifier sweeps. It runs from the writer goroutine AFTER the
// subscribe response is on the wire, so no push can ever precede the
// response that tells the client its subscription id; the staleness gap
// this leaves (a write landing between session creation and
// registration) is closed by the revalidation below.
func (s *Server) register(ss *session) {
	s.submu.Lock()
	s.subs[ss.id] = ss
	s.submu.Unlock()

	// Close the creation→registration window: if a write landed in
	// between, the session's initial answer predates it and the notifier
	// never saw the session. Revalidate once — the untouched case is one
	// atomic generation comparison.
	s.mu.RLock()
	ss.mu.Lock()
	ids, re, err := ss.sess.Revalidate()
	safe := ss.sess.SafeRegion()
	s.mu.RUnlock()
	switch {
	case err != nil:
		ss.fail(err)
		ss.mu.Unlock()
		s.unregister(ss)
	case re:
		ss.pushDelta(ids, safe)
		ss.mu.Unlock()
	default:
		ss.mu.Unlock()
	}
}

// unregister removes a session from the server-wide and per-connection
// tables. Safe to call more than once.
func (s *Server) unregister(ss *session) {
	s.submu.Lock()
	delete(s.subs, ss.id)
	s.submu.Unlock()
	ss.cs.mu.Lock()
	delete(ss.cs.subs, ss.id)
	ss.cs.mu.Unlock()
}

// dropConnSessions tears down every session of a closing connection.
func (s *Server) dropConnSessions(cs *connState) {
	cs.mu.Lock()
	subs := make([]*session, 0, len(cs.subs))
	for _, ss := range cs.subs {
		subs = append(subs, ss)
	}
	cs.mu.Unlock()
	for _, ss := range subs {
		ss.mu.Lock()
		ss.closed = true
		ss.mu.Unlock()
		s.unregister(ss)
	}
}

// handleSubscribe opens a subscription session at the payload's point
// and answers with the id, the safe circle and the initial answer set.
// It runs on the worker pool like any query; registration for churn
// notification is deferred to the response write (see register).
func (s *Server) handleSubscribe(cs *connState, sl *slot, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	q := uvdiagram.Pt(r.F64(), r.F64())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if rem := r.Remaining(); rem != 0 {
		return nil, fmt.Errorf("server: subscribe payload has %d trailing bytes", rem)
	}
	s.mu.RLock()
	sess, err := s.db.NewContinuousPNN(q)
	if err != nil {
		s.mu.RUnlock()
		return nil, err
	}
	ids := sess.AnswerIDs()
	safe := sess.SafeRegion()
	s.mu.RUnlock()

	ss := &session{cs: cs, sess: sess, last: append([]int32(nil), ids...)}
	s.submu.Lock()
	s.subid++
	ss.id = s.subid
	s.submu.Unlock()
	cs.mu.Lock()
	cs.subs[ss.id] = ss
	cs.mu.Unlock()
	sl.written = func() { s.register(ss) }

	var b wire.Buffer
	b.U64(ss.id)
	b.F64(safe.C.X)
	b.F64(safe.C.Y)
	b.F64(safe.R)
	b.U32(uint32(len(ss.last)))
	for _, id := range ss.last {
		b.I32(id)
	}
	return b.Bytes(), nil
}

// handleMove advances one session. It runs inline on the decode loop —
// no response frame exists — and a returned error poisons the
// connection (malformed payload only; see the OpMove wire doc).
func (s *Server) handleMove(cs *connState, payload []byte) error {
	r := wire.NewReader(payload)
	id := r.U64()
	q := uvdiagram.Pt(r.F64(), r.F64())
	if err := r.Err(); err != nil {
		return err
	}
	if rem := r.Remaining(); rem != 0 {
		return fmt.Errorf("server: move payload has %d trailing bytes", rem)
	}
	cs.mu.Lock()
	ss := cs.subs[id]
	cs.mu.Unlock()
	if ss == nil {
		// Either a benign race with a server-side session drop whose
		// error push is still in flight, or a client bug; neither can
		// desync the stream, so ignore it.
		return nil
	}
	s.mu.RLock()
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		s.mu.RUnlock()
		return nil
	}
	ids, _, err := ss.sess.Move(q)
	safe := ss.sess.SafeRegion()
	s.mu.RUnlock()
	if err != nil {
		ss.fail(err)
		ss.mu.Unlock()
		s.unregister(ss)
		return nil
	}
	ss.pushDelta(ids, safe)
	ss.mu.Unlock()
	return nil
}

// handleUnsubscribe closes a session and answers with its final
// counters.
func (s *Server) handleUnsubscribe(cs *connState, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	id := r.U64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if rem := r.Remaining(); rem != 0 {
		return nil, fmt.Errorf("server: unsubscribe payload has %d trailing bytes", rem)
	}
	cs.mu.Lock()
	ss := cs.subs[id]
	cs.mu.Unlock()
	if ss == nil {
		return nil, fmt.Errorf("server: unsubscribe for unknown subscription %d", id)
	}
	s.unregister(ss)
	ss.mu.Lock()
	ss.closed = true
	st := ss.sess.Stats()
	pushes := ss.pushes
	ss.mu.Unlock()
	var b wire.Buffer
	b.U64(uint64(st.Moves))
	b.U64(uint64(st.Recomputes))
	b.U64(uint64(st.IndexIOs))
	b.U64(pushes)
	return b.Bytes(), nil
}

// notifySessions re-validates every live subscription after a write
// landed, pushing answer deltas to exactly the sessions whose answers
// changed. It runs synchronously on the mutating connection's decode
// loop BEFORE the write's response is released: when an Insert or
// Delete returns to its caller, every resulting delta is already on the
// wire to every subscriber. The sweep is one bulk AdvanceAll pass —
// shard-grouped, on the batch worker pool, re-opens across epoch/layout
// swaps handled centrally — and sessions on shards the write did not
// touch cost one atomic generation comparison each.
func (s *Server) notifySessions() {
	s.submu.RLock()
	if len(s.subs) == 0 {
		s.submu.RUnlock()
		return
	}
	sessions := make([]*session, 0, len(s.subs))
	for _, ss := range s.subs {
		sessions = append(sessions, ss)
	}
	s.submu.RUnlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })

	// DB read lock first, then the session locks — the order the move
	// path uses — so the bulk advance cannot deadlock against it.
	s.mu.RLock()
	live := make([]*session, 0, len(sessions))
	cursors := make([]*uvdiagram.ContinuousPNN, 0, len(sessions))
	for _, ss := range sessions {
		ss.mu.Lock()
		if ss.closed {
			ss.mu.Unlock()
			continue
		}
		live = append(live, ss)
		cursors = append(cursors, ss.sess)
	}
	recomputed, errs := s.db.AdvanceAll(cursors, nil, &uvdiagram.BatchOptions{
		Workers:   s.cfg.Workers,
		CacheSize: s.cfg.CacheSize,
	})
	s.mu.RUnlock()

	var failed []*session
	for i, ss := range live {
		switch {
		case errs[i] != nil:
			ss.fail(errs[i])
			failed = append(failed, ss)
		case recomputed[i]:
			ss.pushDelta(ss.sess.AnswerIDs(), ss.sess.SafeRegion())
		}
		ss.mu.Unlock()
	}
	for _, ss := range failed {
		s.unregister(ss)
	}
}

// Subscriptions returns the number of live subscription sessions across
// all connections.
func (s *Server) Subscriptions() int {
	s.submu.RLock()
	defer s.submu.RUnlock()
	return len(s.subs)
}
