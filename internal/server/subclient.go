package server

import (
	"fmt"
	"sync"

	"uvdiagram"
	"uvdiagram/internal/wire"
)

// Client-side subscription support. Subscribe opens a server-side
// moving-query session; Move streams positions fire-and-forget; the
// server pushes answer deltas out-of-band and the Subscription applies
// them, so AnswerIDs always reconstructs exactly the answer set
// per-move polling would have returned (pushes for one session arrive
// in a gap-free sequence, and the server flushes move-triggered deltas
// before any later frame of the connection — a Ping after a burst of
// moves is a delta barrier).

// Delta is one server-pushed answer-set change.
type Delta struct {
	// Seq is the per-session push sequence (1-based, gap-free).
	Seq uint64
	// Added and Removed are the ids entering and leaving the answer set,
	// sorted ascending. Both are nil on a terminal error delta.
	Added, Removed []int32
	// Safe is the safe circle after the change (zero on Err).
	Safe uvdiagram.Circle
	// Err is set on a terminal session-error push: the server dropped
	// the session (e.g. the position left the domain) and no further
	// deltas will arrive.
	Err error
}

// Subscription is one open moving-query subscription.
type Subscription struct {
	c       *Client
	id      uint64
	onDelta func(Delta) // may be nil; runs on the client's read loop

	mu   sync.Mutex
	ids  []int32 // reconstructed current answer set (sorted)
	safe uvdiagram.Circle
	seq  uint64
	err  error // terminal session error, if any
}

// SubscriptionStats are the server-side session counters returned by
// Close.
type SubscriptionStats struct {
	Moves      uint64 // successful server-side Move evaluations
	Recomputes uint64 // actual re-evaluations (safe-circle exits + churn)
	IndexIOs   uint64 // leaf pages read across re-evaluations
	Pushes     uint64 // delta frames pushed
}

// Subscribe opens a subscription at q. onDelta, when non-nil, is
// invoked on the client's read loop for every push (after it has been
// applied to the subscription's answer set) — it must not block and
// must not call into the Client synchronously. A terminal Delta.Err
// (the server dropped the session) is delivered the same way.
func (c *Client) Subscribe(q uvdiagram.Point, onDelta func(Delta)) (*Subscription, error) {
	var b wire.Buffer
	b.F64(q.X)
	b.F64(q.Y)
	sub := &Subscription{c: c, onDelta: onDelta}
	call := c.goWithSub(wire.OpSubscribe, b.Bytes(), sub)
	<-call.Done
	if call.Err != nil {
		return nil, call.Err
	}
	return sub, nil
}

// registerSub decodes a subscribe response and publishes the
// subscription — called from the read loop BEFORE the call completes,
// so a delta arriving right behind the response finds the subscription
// registered.
func (c *Client) registerSub(sub *Subscription, r *wire.Reader) error {
	sub.id = r.U64()
	sub.safe.C = uvdiagram.Pt(r.F64(), r.F64())
	sub.safe.R = r.F64()
	ids, err := decodeIDs(r)
	if err != nil {
		return fmt.Errorf("client: malformed subscribe response: %w", err)
	}
	sub.ids = ids
	c.submu.Lock()
	if c.subs == nil {
		c.subs = make(map[uint64]*Subscription)
	}
	c.subs[sub.id] = sub
	c.submu.Unlock()
	return nil
}

// handlePush decodes one out-of-band PushAnswerDelta frame and applies
// it. A malformed push poisons the connection (the server never sends
// one; the stream can no longer be trusted). A push for an unknown
// subscription id is dropped: it can only be the tail of a race with a
// local Close.
func (c *Client) handlePush(payload []byte) error {
	r := wire.NewReader(payload)
	id, seq, flags := r.U64(), r.U64(), r.U8()
	if err := r.Err(); err != nil {
		return fmt.Errorf("client: malformed push frame: %w", err)
	}
	d := Delta{Seq: seq}
	switch flags {
	case 0:
		d.Safe.C = uvdiagram.Pt(r.F64(), r.F64())
		d.Safe.R = r.F64()
		var err error
		if d.Added, err = decodeIDs(r); err != nil {
			return fmt.Errorf("client: malformed push frame: %w", err)
		}
		if d.Removed, err = decodeIDs(r); err != nil {
			return fmt.Errorf("client: malformed push frame: %w", err)
		}
	case 1:
		msg := r.Str()
		if err := r.Err(); err != nil {
			return fmt.Errorf("client: malformed push frame: %w", err)
		}
		d.Err = fmt.Errorf("server: %s", msg)
	default:
		return fmt.Errorf("client: unknown push flags 0x%02x", flags)
	}
	if rem := r.Remaining(); rem != 0 {
		return fmt.Errorf("client: push frame has %d trailing bytes", rem)
	}

	c.submu.Lock()
	sub := c.subs[id]
	c.submu.Unlock()
	if sub == nil {
		return nil
	}
	if err := sub.apply(d); err != nil {
		return err
	}
	if d.Err != nil {
		c.submu.Lock()
		delete(c.subs, id)
		c.submu.Unlock()
	}
	if sub.onDelta != nil {
		sub.onDelta(d)
	}
	return nil
}

// apply folds one delta into the reconstructed answer set.
func (s *Subscription) apply(d Delta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d.Seq != s.seq+1 {
		return fmt.Errorf("client: subscription %d push sequence hole (got %d, want %d)", s.id, d.Seq, s.seq+1)
	}
	s.seq = d.Seq
	if d.Err != nil {
		s.err = d.Err
		return nil
	}
	ids, err := applyDelta(s.ids, d.Added, d.Removed)
	if err != nil {
		return fmt.Errorf("client: subscription %d: %w", s.id, err)
	}
	s.ids = ids
	s.safe = d.Safe
	return nil
}

// applyDelta merges sorted added/removed id lists into a sorted set. A
// delta inconsistent with the held set — a removed id not held, an
// added id already held, an unsorted or duplicated list — is an error:
// the server only ever pushes exact diffs, so an inconsistent one means
// the stream can no longer reconstruct the answer set.
func applyDelta(ids, added, removed []int32) ([]int32, error) {
	for k := 1; k < len(added); k++ {
		if added[k-1] >= added[k] {
			return nil, fmt.Errorf("delta id list unsorted at %d", added[k])
		}
	}
	out := make([]int32, 0, max(len(ids)+len(added)-len(removed), 0))
	i := 0
	for _, rm := range removed {
		for i < len(ids) && ids[i] < rm {
			out = append(out, ids[i])
			i++
		}
		if i >= len(ids) || ids[i] != rm {
			return nil, fmt.Errorf("delta removes id %d the client does not hold", rm)
		}
		i++ // drop it
	}
	out = append(out, ids[i:]...)
	if len(added) == 0 {
		return out, nil
	}
	merged := make([]int32, 0, len(out)+len(added))
	i, j := 0, 0
	for i < len(out) && j < len(added) {
		switch {
		case out[i] == added[j]:
			return nil, fmt.Errorf("delta adds id %d the client already holds", added[j])
		case out[i] < added[j]:
			merged = append(merged, out[i])
			i++
		default:
			merged = append(merged, added[j])
			j++
		}
	}
	merged = append(merged, out[i:]...)
	merged = append(merged, added[j:]...)
	return merged, nil
}

// ID returns the server-assigned subscription id.
func (s *Subscription) ID() uint64 { return s.id }

// AnswerIDs returns a copy of the current reconstructed answer set.
func (s *Subscription) AnswerIDs() []int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int32(nil), s.ids...)
}

// SafeRegion returns the most recently pushed safe circle. Strictly
// inside it, moves cannot change the answer set (for the index state it
// was computed at — churn invalidates it server-side).
func (s *Subscription) SafeRegion() uvdiagram.Circle {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.safe
}

// Err returns the terminal session error, if the server dropped the
// session.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Move streams a new position, fire-and-forget: it returns once the
// frame is written, without waiting for any server evaluation. If the
// move changes the answer set, a delta push follows; a Ping afterwards
// guarantees every delta for previously sent moves has been applied.
func (s *Subscription) Move(q uvdiagram.Point) error {
	var b wire.Buffer
	b.U64(s.id)
	b.F64(q.X)
	b.F64(q.Y)
	return s.c.send(wire.OpMove, b.Bytes())
}

// Close unsubscribes and returns the server-side session counters.
func (s *Subscription) Close() (SubscriptionStats, error) {
	var b wire.Buffer
	b.U64(s.id)
	r, err := s.c.roundTrip(wire.OpUnsubscribe, b.Bytes())
	s.c.submu.Lock()
	delete(s.c.subs, s.id)
	s.c.submu.Unlock()
	if err != nil {
		return SubscriptionStats{}, err
	}
	st := SubscriptionStats{
		Moves:      r.U64(),
		Recomputes: r.U64(),
		IndexIOs:   r.U64(),
		Pushes:     r.U64(),
	}
	return st, r.Err()
}
