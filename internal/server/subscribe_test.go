package server

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"uvdiagram"
	"uvdiagram/internal/datagen"
	"uvdiagram/internal/wire"
)

// startShardedServer is startServer with a spatially sharded database,
// returning the DB too so tests can mirror the server's answers
// locally.
func startShardedServer(t *testing.T, n, shards int) (*Client, *Server, *uvdiagram.DB) {
	t.Helper()
	cfg := datagen.Config{N: n, Side: 2000, Diameter: 30, Seed: 77}
	db, err := uvdiagram.Build(datagen.Uniform(cfg), cfg.Domain(), &uvdiagram.Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, t.Logf)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(lis)
	}()
	cli, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
		<-done
		srv.Wait()
	})
	return cli, srv, db
}

func dialExtra(t *testing.T, srv *Server) *Client {
	t.Helper()
	cli, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

// TestSubscribeDeltaMatchesPolling drives one subscription through a
// trajectory with Inserts and Deletes interleaved on a second
// connection, and asserts after EVERY step that the delta-reconstructed
// answer set is bitwise identical to what per-move polling (a direct
// PNN at the current position) returns. The Ping after each step is the
// documented flush barrier.
func TestSubscribeDeltaMatchesPolling(t *testing.T) {
	cli, srv, db := startShardedServer(t, 150, 4)
	mutator := dialExtra(t, srv)

	rng := rand.New(rand.NewSource(41))
	pos := uvdiagram.Pt(1000, 1000)
	sub, err := cli.Subscribe(pos, nil)
	if err != nil {
		t.Fatal(err)
	}

	check := func(step int) {
		t.Helper()
		if err := cli.Ping(); err != nil {
			t.Fatal(err)
		}
		want, _, err := db.PNN(pos)
		if err != nil {
			t.Fatal(err)
		}
		got := sub.AnswerIDs()
		if len(got) != len(want) {
			t.Fatalf("step %d at %v: pushed set %v, polling %v", step, pos, got, want)
		}
		for i := range want {
			if got[i] != want[i].ID {
				t.Fatalf("step %d at %v: pushed set %v, polling %v", step, pos, got, want)
			}
		}
	}
	check(-1)

	var inserted []int32
	for step := 0; step < 120; step++ {
		switch {
		case step%17 == 11: // churn: insert near the query
			id := db.NextID()
			if err := mutator.Insert(id, pos.X+rng.Float64()*40-20, pos.Y+rng.Float64()*40-20, 12, nil); err != nil {
				t.Fatal(err)
			}
			inserted = append(inserted, id)
		case step%17 == 5 && len(inserted) > 0: // churn: delete one back
			if err := mutator.Delete(inserted[0]); err != nil {
				t.Fatal(err)
			}
			inserted = inserted[1:]
		default: // movement: tiny steps with occasional shard-crossing jumps
			if step%13 == 7 {
				pos = uvdiagram.Pt(rng.Float64()*2000, rng.Float64()*2000)
			} else {
				pos = uvdiagram.Pt(
					min(max(pos.X+(rng.Float64()*2-1)*3, 0), 2000),
					min(max(pos.Y+(rng.Float64()*2-1)*3, 0), 2000))
			}
			if err := sub.Move(pos); err != nil {
				t.Fatal(err)
			}
		}
		check(step)
	}

	st, err := sub.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Moves == 0 || st.Recomputes == 0 {
		t.Fatalf("implausible session counters: %+v", st)
	}
	if srv.Subscriptions() != 0 {
		t.Fatalf("%d sessions left registered after Close", srv.Subscriptions())
	}
}

// TestSubscriptionLifecycleErrors covers the failure surface: an
// out-of-domain move drops only its session (terminal error push, conn
// survives), unsubscribing a dead session errors in-band, and a
// malformed move frame poisons exactly its own connection.
func TestSubscriptionLifecycleErrors(t *testing.T) {
	cli, srv, _ := startShardedServer(t, 60, 2)

	deltas := make(chan Delta, 4)
	sub, err := cli.Subscribe(uvdiagram.Pt(500, 500), func(d Delta) { deltas <- d })
	if err != nil {
		t.Fatal(err)
	}

	// Out-of-domain move: the server drops the session and pushes a
	// terminal error delta.
	if err := sub.Move(uvdiagram.Pt(-50, -50)); err != nil {
		t.Fatal(err)
	}
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
	if sub.Err() == nil {
		t.Fatal("no terminal error after out-of-domain move")
	}
	select {
	case d := <-deltas:
		if d.Err == nil {
			t.Fatalf("callback got a non-error delta: %+v", d)
		}
	default:
		t.Fatal("terminal delta not delivered to the callback")
	}
	if srv.Subscriptions() != 0 {
		t.Fatalf("dropped session still registered: %d", srv.Subscriptions())
	}

	// The connection survives: queries and fresh subscriptions work.
	if _, err := cli.PNN(uvdiagram.Pt(700, 700)); err != nil {
		t.Fatalf("connection dead after session drop: %v", err)
	}
	sub2, err := cli.Subscribe(uvdiagram.Pt(700, 700), nil)
	if err != nil {
		t.Fatalf("cannot re-subscribe after session drop: %v", err)
	}

	// Unsubscribing the DROPPED session reports in-band and leaves the
	// connection healthy.
	if _, err := sub.Close(); err == nil {
		t.Fatal("unsubscribe of a dropped session succeeded")
	}
	if _, err := cli.PNN(uvdiagram.Pt(700, 700)); err != nil {
		t.Fatalf("connection dead after in-band unsubscribe error: %v", err)
	}

	// A further move on the dropped session is silently ignored — the
	// live session keeps working.
	if err := sub.Move(uvdiagram.Pt(600, 600)); err != nil {
		t.Fatal(err)
	}
	if err := sub2.Move(uvdiagram.Pt(710, 710)); err != nil {
		t.Fatal(err)
	}
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
	if sub2.Err() != nil {
		t.Fatalf("live session affected by dead-session move: %v", sub2.Err())
	}

	// Malformed move payload: no response slot exists, so it poisons the
	// connection — but ONLY that connection.
	cli2 := dialExtra(t, srv)
	if _, err := cli2.Subscribe(uvdiagram.Pt(300, 300), nil); err != nil {
		t.Fatal(err)
	}
	if err := cli2.send(wire.OpMove, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for cli2.Ping() == nil {
		if time.Now().After(deadline) {
			t.Fatal("connection survived a malformed move frame")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := cli.PNN(uvdiagram.Pt(700, 700)); err != nil {
		t.Fatalf("healthy connection poisoned by another conn's bad move: %v", err)
	}
	if srv.Subscriptions() != 1 {
		t.Fatalf("poisoned conn's sessions not torn down: %d live", srv.Subscriptions())
	}
}

// TestManySubscribersUnderChurn is the acceptance stress: 1000
// concurrent subscribed moving clients across 8 connections, a mutator
// churning inserts and deletes the whole time, race-clean, with every
// final answer set bitwise identical to a direct PNN and a recompute
// rate well below the move rate.
func TestManySubscribersUnderChurn(t *testing.T) {
	const (
		conns   = 8
		perConn = 125
		moves   = 20
		churn   = 10
	)
	cli, srv, db := startShardedServer(t, 500, 4)
	mutator := dialExtra(t, srv)

	clients := make([]*Client, conns)
	clients[0] = cli
	for i := 1; i < conns; i++ {
		clients[i] = dialExtra(t, srv)
	}

	type fleet struct {
		subs []*Subscription
		pos  []uvdiagram.Point
	}
	fleets := make([]fleet, conns)
	for ci := range fleets {
		fleets[ci].subs = make([]*Subscription, perConn)
		fleets[ci].pos = make([]uvdiagram.Point, perConn)
		rng := rand.New(rand.NewSource(int64(1000 + ci)))
		for i := 0; i < perConn; i++ {
			fleets[ci].pos[i] = uvdiagram.Pt(rng.Float64()*2000, rng.Float64()*2000)
			sub, err := clients[ci].Subscribe(fleets[ci].pos[i], nil)
			if err != nil {
				t.Fatal(err)
			}
			fleets[ci].subs[i] = sub
		}
	}
	if got := srv.Subscriptions(); got != conns*perConn {
		t.Fatalf("registered %d sessions, want %d", got, conns*perConn)
	}

	var wg sync.WaitGroup
	errc := make(chan error, conns+1)
	for ci := range fleets {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			fl := fleets[ci]
			rng := rand.New(rand.NewSource(int64(2000 + ci)))
			for k := 0; k < moves; k++ {
				for i := range fl.subs {
					fl.pos[i] = uvdiagram.Pt(
						min(max(fl.pos[i].X+(rng.Float64()*2-1)*0.3, 0), 2000),
						min(max(fl.pos[i].Y+(rng.Float64()*2-1)*0.3, 0), 2000))
					if err := fl.subs[i].Move(fl.pos[i]); err != nil {
						errc <- fmt.Errorf("conn %d move: %w", ci, err)
						return
					}
				}
			}
		}(ci)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(9999))
		var ids []int32
		for k := 0; k < churn; k++ {
			if k%2 == 0 {
				id := db.NextID()
				if err := mutator.Insert(id, rng.Float64()*2000, rng.Float64()*2000, 12, nil); err != nil {
					errc <- fmt.Errorf("churn insert: %w", err)
					return
				}
				ids = append(ids, id)
			} else {
				if err := mutator.Delete(ids[len(ids)-1]); err != nil {
					errc <- fmt.Errorf("churn delete: %w", err)
					return
				}
				ids = ids[:len(ids)-1]
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Quiesce: one Ping per connection applies every outstanding delta.
	for _, c := range clients {
		if err := c.Ping(); err != nil {
			t.Fatal(err)
		}
	}

	// Every reconstructed answer set matches a direct PNN at the final
	// position, bit for bit.
	var totMoves, totRecomputes uint64
	for ci := range fleets {
		fl := fleets[ci]
		for i, sub := range fl.subs {
			if sub.Err() != nil {
				t.Fatalf("conn %d session %d dropped: %v", ci, i, sub.Err())
			}
			want, _, err := db.PNN(fl.pos[i])
			if err != nil {
				t.Fatal(err)
			}
			got := sub.AnswerIDs()
			if len(got) != len(want) {
				t.Fatalf("conn %d session %d at %v: pushed %v, polling %v", ci, i, fl.pos[i], got, want)
			}
			for k := range want {
				if got[k] != want[k].ID {
					t.Fatalf("conn %d session %d at %v: pushed %v, polling %v", ci, i, fl.pos[i], got, want)
				}
			}
			st, err := sub.Close()
			if err != nil {
				t.Fatal(err)
			}
			totMoves += st.Moves
			totRecomputes += st.Recomputes
		}
	}
	if srv.Subscriptions() != 0 {
		t.Fatalf("%d sessions left after teardown", srv.Subscriptions())
	}
	if totMoves != conns*perConn*moves {
		t.Fatalf("server counted %d moves, want %d", totMoves, conns*perConn*moves)
	}
	// Smooth trajectories: the safe circles must absorb most moves even
	// with churn-forced revalidations charged to the same counter.
	if totRecomputes*2 > totMoves {
		t.Fatalf("recompute rate %.1f%% — safe circles absorbing nothing (%d recomputes / %d moves)",
			100*float64(totRecomputes)/float64(totMoves), totRecomputes, totMoves)
	}
	t.Logf("1000 sessions: %d moves, %d recomputes (%.1f%%)",
		totMoves, totRecomputes, 100*float64(totRecomputes)/float64(totMoves))
}

// BenchmarkSubscriptionMove measures the full wire round of one
// fire-and-forget move against a live subscription (safe-circle hits
// and misses mixed), with a flush Ping every 256 moves standing in for
// a real client's read-back cadence.
func BenchmarkSubscriptionMove(b *testing.B) {
	cfg := datagen.Config{N: 2000, Side: 2000, Diameter: 30, Seed: 5}
	db, err := uvdiagram.Build(datagen.Uniform(cfg), cfg.Domain(), &uvdiagram.Options{Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	srv := New(db, nil)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(lis)
	}()
	defer func() {
		srv.Close()
		<-done
		srv.Wait()
	}()
	cli, err := Dial(lis.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()

	pos := uvdiagram.Pt(1000, 1000)
	sub, err := cli.Subscribe(pos, nil)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos = uvdiagram.Pt(
			min(max(pos.X+(rng.Float64()*2-1)*0.5, 0), 2000),
			min(max(pos.Y+(rng.Float64()*2-1)*0.5, 0), 2000))
		if err := sub.Move(pos); err != nil {
			b.Fatal(err)
		}
		if i%256 == 255 {
			if err := cli.Ping(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := cli.Ping(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	st, err := sub.Close()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(st.Recomputes)/float64(st.Moves), "recomputes/move")
	b.ReportMetric(float64(st.Pushes), "pushes")
}
