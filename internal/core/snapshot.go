package core

import (
	"bufio"
	"bytes"
	"fmt"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/pager"
	"uvdiagram/internal/uncertain"
)

// Page-image snapshots: unlike Save/LoadUVIndex — which persist the
// logical structure and RE-MATERIALIZE every leaf page on load — a
// snapshot separates the index into a compact MANIFEST (tree shape,
// leaf id lists, per-leaf page counts) and the raw page images
// themselves, which the caller persists verbatim in manifest walk
// order. Opening then just points a fresh tree at the existing pages
// (typically an mmap-backed pager.FileStore over the snapshot file), so
// a database serves straight off disk with zero rebuild work and zero
// resident heap for leaf payloads.
//
// Page ids are implicit: the manifest records only how many pages each
// leaf owns, and both SnapshotManifest and OpenUVIndexSnapshot walk the
// tree in the same depth-first order, so leaf k's pages are the next
// count_k sequential ids. This works because a pager built from a
// snapshot allocates ids 0,1,2,… in Alloc order (heap replay) or
// addresses the file section directly (FileStore).

// SnapshotManifest serializes the finished index's structure — without
// the constraint registry, which the engine persists once at the
// database level — and returns the leaf page ids in manifest order so
// the caller can copy the page images out of ix.Pager() into the
// snapshot file.
func (ix *UVIndex) SnapshotManifest() ([]byte, []pager.PageID, error) {
	if !ix.finished {
		return nil, nil, fmt.Errorf("core: SnapshotManifest before Finish")
	}
	var buf bytes.Buffer
	cw := &countingWriter{w: &buf}
	cw.f64(ix.domain.Min.X)
	cw.f64(ix.domain.Min.Y)
	cw.f64(ix.domain.Max.X)
	cw.f64(ix.domain.Max.Y)
	cw.u32(uint32(ix.opts.M))
	cw.f64(ix.opts.SplitTheta)
	cw.u32(uint32(ix.opts.PageSize))
	cw.u32(uint32(ix.opts.MaxDepth))
	cw.u32(uint32(ix.orderK))
	cw.u32(uint32(ix.store.Len()))
	var pages []pager.PageID
	var walk func(n *qnode)
	walk = func(n *qnode) {
		if cw.err != nil {
			return
		}
		if n.isLeaf() {
			cw.u32(0)
			cw.ids(n.ids)
			cw.u32(uint32(len(n.pages)))
			pages = append(pages, n.pages...)
			return
		}
		cw.u32(1)
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(ix.snap().root)
	if cw.err != nil {
		return nil, nil, fmt.Errorf("core: snapshot manifest: %w", cw.err)
	}
	return buf.Bytes(), pages, nil
}

// OpenUVIndexSnapshot reconstructs an index from a manifest written by
// SnapshotManifest and a pager already holding the page images in
// manifest order (ids 0..NumPages-1). No pages are written and Finish
// is never called: the tree is published as-is, which is the whole
// point — opening a snapshot costs only the manifest parse.
//
// The store provides object geometry for future queries and mutations;
// cr is the engine-level constraint registry the leaves were built
// from.
func OpenUVIndexSnapshot(manifest []byte, store *uncertain.Store, cr *CRState, pg *pager.Pager) (*UVIndex, error) {
	rd := &reader{r: bufio.NewReader(bytes.NewReader(manifest))}
	domain := geom.Rect{
		Min: geom.Pt(rd.f64(), rd.f64()),
		Max: geom.Pt(rd.f64(), rd.f64()),
	}
	opts := IndexOptions{
		M:          int(rd.u32()),
		SplitTheta: rd.f64(),
		PageSize:   int(rd.u32()),
		MaxDepth:   int(rd.u32()),
	}
	orderK := int(rd.u32())
	n := int(rd.u32())
	if rd.err != nil {
		return nil, fmt.Errorf("core: snapshot header: %w", rd.err)
	}
	if orderK < 1 {
		return nil, fmt.Errorf("core: snapshot cell order %d", orderK)
	}
	if n != store.Len() {
		return nil, fmt.Errorf("core: snapshot indexes %d objects, store has %d", n, store.Len())
	}
	opts.normalize()
	if opts.PageSize != pg.PageSize() {
		return nil, fmt.Errorf("core: snapshot page size %d, pager %d", opts.PageSize, pg.PageSize())
	}
	ix := &UVIndex{
		domain:     domain,
		opts:       opts,
		pg:         pg,
		store:      store,
		cr:         cr,
		capPerPage: pager.TuplesPerPage(opts.PageSize),
		orderK:     orderK,
	}
	total := pg.NumPages()
	next := 0 // next unclaimed sequential page id
	var nodes, nonleaf int
	var walk func() *qnode
	walk = func() *qnode {
		if rd.err != nil {
			return nil
		}
		nodes++
		if nodes > 1<<24 {
			rd.err = fmt.Errorf("node count exceeds sanity bound")
			return nil
		}
		switch rd.u32() {
		case 0:
			leaf := &qnode{ids: rd.ids(n)}
			count := int(rd.u32())
			if rd.err != nil {
				return nil
			}
			if count < 1 || next+count > total {
				rd.err = fmt.Errorf("leaf claims pages [%d, %d) of %d", next, next+count, total)
				return nil
			}
			if count < (len(leaf.ids)+ix.capPerPage-1)/ix.capPerPage {
				rd.err = fmt.Errorf("leaf of %d ids claims only %d pages", len(leaf.ids), count)
				return nil
			}
			leaf.pages = make([]pager.PageID, count)
			for i := range leaf.pages {
				leaf.pages[i] = pager.PageID(next + i)
			}
			next += count
			leaf.pagesAlloc = count
			return leaf
		case 1:
			var kids [4]*qnode
			for k := 0; k < 4; k++ {
				kids[k] = walk()
			}
			nonleaf++
			return &qnode{children: &kids}
		default:
			if rd.err == nil {
				rd.err = fmt.Errorf("bad node tag")
			}
			return nil
		}
	}
	root := walk()
	if rd.err != nil {
		return nil, fmt.Errorf("core: snapshot tree: %w", rd.err)
	}
	if next != total {
		return nil, fmt.Errorf("core: snapshot tree claims %d pages, section holds %d", next, total)
	}
	ix.root = root
	ix.nonleaf = nonleaf
	ix.finished = true
	ix.ts.Store(&treeState{root: root, nonleaf: nonleaf})
	return ix, nil
}
