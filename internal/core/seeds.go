package core

import (
	"math"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/rtree"
	"uvdiagram/internal/uncertain"
)

// Seed-selection defaults from Section IV-B / VI: a 300-NN query feeds
// 8 sectors of 45° each.
const (
	DefaultSeedK       = 300
	DefaultSeedSectors = 8
)

// SelectSeeds implements initPossibleRegion's seed choice (Section
// IV-B): the domain is divided into ks sectors centered at ci and the
// closest object of each sector becomes a seed, considering the k
// nearest objects by minimum distance. Fewer than ks seeds may be
// returned when sectors are empty — the initial region is then merely
// larger (the paper notes this does not affect the later steps).
//
// Retrieval is output-sensitive: neighbors are pulled lazily from a
// best-first incremental-NN browse of the R-tree (in exactly the order
// a materialized k-NN would list them) and the pull stops as soon as
// every sector is seeded — typically after a few dozen neighbors
// instead of the k+1 the eager implementation always materialized. At
// most k+1 neighbors are ever consumed, so the seed set is bitwise
// identical to the eager form.
//
// Objects whose uncertainty region overlaps Oi's are skipped: they
// contribute no UV-edge (Section III-C), so taking one as a sector's
// seed would leave that sector unbounded and ruin the pruning bound of
// Lemma 2. At the paper's densest settings (40k objects of diameter 40
// in a 10k×10k domain) most objects overlap one or two neighbors, so
// this filter is what keeps the pruning ratio at the reported ~90%.
func SelectSeeds(tree *rtree.Tree, oi uncertain.Object, k, ks int) []int32 {
	var sc DeriveScratch
	sc.selectSeeds(tree, oi, k, ks)
	return sc.seeds
}

// selectSeeds fills sc.seeds, reusing sc's iterator and sector buffers.
func (sc *DeriveScratch) selectSeeds(tree *rtree.Tree, oi uncertain.Object, k, ks int) {
	if k <= 0 {
		k = DefaultSeedK
	}
	if ks <= 0 {
		ks = DefaultSeedSectors
	}
	sc.seeds = sc.seeds[:0]
	if cap(sc.taken) < ks {
		sc.taken = make([]bool, ks)
	} else {
		sc.taken = sc.taken[:ks]
		for i := range sc.taken {
			sc.taken[i] = false
		}
	}
	sc.it.Reset(tree, oi.Region.C)
	found := 0
	// k+1 because the query point is Oi's own center and Oi itself is
	// excluded below.
	for pulled := 0; pulled < k+1; pulled++ {
		nb, ok := sc.it.Next()
		if !ok {
			break
		}
		if nb.Item.ID == oi.ID || oi.Region.Overlaps(nb.Item.MBC) {
			continue
		}
		dir := nb.Item.MBC.C.Sub(oi.Region.C)
		sector := int(geom.NormalizeAngle(dir.Angle()) / (2 * math.Pi) * float64(ks))
		if sector >= ks {
			sector = ks - 1
		}
		if !sc.taken[sector] {
			sc.taken[sector] = true
			sc.seeds = append(sc.seeds, nb.Item.ID)
			found++
			if found == ks {
				break
			}
		}
	}
}
