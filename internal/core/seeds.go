package core

import (
	"math"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/rtree"
	"uvdiagram/internal/uncertain"
)

// Seed-selection defaults from Section IV-B / VI: a 300-NN query feeds
// 8 sectors of 45° each.
const (
	DefaultSeedK       = 300
	DefaultSeedSectors = 8
)

// SelectSeeds implements initPossibleRegion's seed choice (Section
// IV-B): a k-NN query on the R-tree around Oi's center retrieves the k
// objects with the smallest minimum distance; the domain is divided
// into ks sectors centered at ci and the closest object of each sector
// becomes a seed. Fewer than ks seeds may be returned when sectors are
// empty — the initial region is then merely larger (the paper notes
// this does not affect the later steps).
//
// Objects whose uncertainty region overlaps Oi's are skipped: they
// contribute no UV-edge (Section III-C), so taking one as a sector's
// seed would leave that sector unbounded and ruin the pruning bound of
// Lemma 2. At the paper's densest settings (40k objects of diameter 40
// in a 10k×10k domain) most objects overlap one or two neighbors, so
// this filter is what keeps the pruning ratio at the reported ~90%.
func SelectSeeds(tree *rtree.Tree, oi uncertain.Object, k, ks int) []int32 {
	if k <= 0 {
		k = DefaultSeedK
	}
	if ks <= 0 {
		ks = DefaultSeedSectors
	}
	// k+1 because the query point is Oi's own center and Oi itself is
	// excluded below.
	nbrs := tree.KNN(oi.Region.C, k+1)
	seeds := make([]int32, 0, ks)
	taken := make([]bool, ks)
	found := 0
	for _, nb := range nbrs {
		if nb.Item.ID == oi.ID || oi.Region.Overlaps(nb.Item.MBC) {
			continue
		}
		dir := nb.Item.MBC.C.Sub(oi.Region.C)
		sector := int(geom.NormalizeAngle(dir.Angle()) / (2 * math.Pi) * float64(ks))
		if sector >= ks {
			sector = ks - 1
		}
		if !taken[sector] {
			taken[sector] = true
			seeds = append(seeds, nb.Item.ID)
			found++
			if found == ks {
				break
			}
		}
	}
	return seeds
}
