package core

import (
	"math/rand"
	"testing"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/prob"
)

// TestDensePNNCorrectness pins the regime that broke the original seed
// selection: uncertainty regions large enough that most objects overlap
// several neighbors (the paper's 40k-object setting). Queries must stay
// exact and pruning must stay effective.
func TestDensePNNCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(1101))
	domain := geom.Square(1000)
	// 150 objects of radius up to 60 in 1000²: ~4 overlaps per object.
	objs := randObjects(rng, 150, 1000, 60)
	overlaps := 0
	for i := range objs {
		for j := i + 1; j < len(objs); j++ {
			if objs[i].Region.Overlaps(objs[j].Region) {
				overlaps++
			}
		}
	}
	if overlaps < len(objs) {
		t.Fatalf("instance not dense enough: only %d overlapping pairs", overlaps)
	}

	ix, stats := buildIndex(t, objs, domain, StrategyIC)
	// Pruning must survive density (the seed rule): cr-sets well below n.
	if stats.AvgCR() > float64(len(objs))/2 {
		t.Errorf("pruning collapsed on dense input: avg |CR| = %.1f of %d", stats.AvgCR(), len(objs))
	}
	for k := 0; k < 100; k++ {
		q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		answers, _, err := ix.PNN(q)
		if err != nil {
			t.Fatal(err)
		}
		want := prob.AnswerSet(objs, q)
		if len(answers) != len(want) {
			t.Fatalf("query %v: %d answers, want %d", q, len(answers), len(want))
		}
		for i, a := range answers {
			if int(a.ID) != want[i] {
				t.Fatalf("query %v: ids differ", q)
			}
		}
	}
}

// TestDenseSeedsNeverOverlap: under heavy overlap, seed selection must
// still produce only edge-contributing seeds.
func TestDenseSeedsNeverOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(1103))
	objs := randObjects(rng, 200, 1000, 70)
	tree := buildTestTree(objs)
	for i := 0; i < len(objs); i += 7 {
		for _, id := range SelectSeeds(tree, objs[i], 100, 8) {
			if objs[i].Region.Overlaps(objs[id].Region) {
				t.Fatalf("object %d got overlapping seed %d", i, id)
			}
		}
	}
}

// TestAllOverlapping: the degenerate extreme — every pair overlaps, no
// UV-edges exist at all, every object can be the NN of every point.
func TestAllOverlapping(t *testing.T) {
	rng := rand.New(rand.NewSource(1109))
	domain := geom.Square(100)
	objs := randObjects(rng, 12, 100, 45)
	for i := range objs {
		objs[i].Region.R = 60 // force total overlap
	}
	ix, stats := buildIndex(t, objs, domain, StrategyIC)
	if stats.SumCR != 0 {
		t.Errorf("no edges exist but SumCR = %d", stats.SumCR)
	}
	for k := 0; k < 30; k++ {
		q := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		answers, _, err := ix.PNN(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(answers) != len(objs) {
			t.Fatalf("query %v: %d answers, want all %d", q, len(answers), len(objs))
		}
	}
}
