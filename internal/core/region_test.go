package core

import (
	"math"
	"math/rand"
	"testing"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/uncertain"
)

// randObjects builds a reproducible random dataset of n uncertain
// objects with centers in [margin, side-margin]² and radii in (0, rmax].
func randObjects(rng *rand.Rand, n int, side, rmax float64) []uncertain.Object {
	margin := rmax
	objs := make([]uncertain.Object, n)
	for i := range objs {
		c := geom.Pt(margin+rng.Float64()*(side-2*margin), margin+rng.Float64()*(side-2*margin))
		objs[i] = uncertain.New(int32(i), geom.Circle{C: c, R: 0.1 + rng.Float64()*(rmax-0.1)},
			uncertain.PaperGaussian())
	}
	return objs
}

// nnPossible is the ground-truth UV-cell membership predicate of
// Definition 1: Oi can be q's nearest neighbor iff
// distmin(Oi,q) ≤ min_{j≠i} distmax(Oj,q).
func nnPossible(objs []uncertain.Object, i int, q geom.Point) bool {
	dmin := objs[i].DistMin(q)
	for j := range objs {
		if j != i && objs[j].DistMax(q) < dmin {
			return false
		}
	}
	return true
}

// fullRegion builds Oi's possible region refined by every other object:
// the exact UV-cell region.
func fullRegion(objs []uncertain.Object, i int, domain geom.Rect) *PossibleRegion {
	r := NewPossibleRegion(objs[i].Region.C, domain)
	for j := range objs {
		if j != i {
			r.AddObject(objs[i], objs[j])
		}
	}
	return r
}

// TestRegionMembershipEquivalence: the radial representation and the
// direct constraint predicate agree everywhere.
func TestRegionMembershipEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	domain := geom.Square(1000)
	for trial := 0; trial < 10; trial++ {
		objs := randObjects(rng, 12, 1000, 30)
		i := rng.Intn(len(objs))
		region := fullRegion(objs, i, domain)
		for k := 0; k < 500; k++ {
			q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
			direct := region.Contains(q)
			// Radial: distance from center vs Radius along that angle.
			d := q.Dist(region.Center())
			dir := q.Sub(region.Center()).Unit()
			r, _ := region.RadiusDir(dir)
			radial := d <= r+1e-9
			if d < 1e-12 {
				radial = true // q is the center
			}
			if direct != radial && math.Abs(d-r) > 1e-6 {
				t.Fatalf("trial %d: membership disagree at %v: direct=%v radial=%v (d=%v R=%v)",
					trial, q, direct, radial, d, r)
			}
		}
	}
}

// TestRegionMatchesNNPredicate: the fully refined region is exactly the
// UV-cell of Definition 1.
func TestRegionMatchesNNPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	domain := geom.Square(1000)
	for trial := 0; trial < 8; trial++ {
		objs := randObjects(rng, 15, 1000, 40)
		i := rng.Intn(len(objs))
		region := fullRegion(objs, i, domain)
		for k := 0; k < 400; k++ {
			q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
			want := nnPossible(objs, i, q)
			got := region.Contains(q)
			if got != want {
				// Tolerate only exact boundary coincidences.
				dmin := objs[i].DistMin(q)
				slack := math.Inf(1)
				for j := range objs {
					if j != i {
						slack = math.Min(slack, objs[j].DistMax(q))
					}
				}
				if math.Abs(dmin-slack) > 1e-9 {
					t.Fatalf("trial %d: cell membership wrong at %v: got %v want %v", trial, q, got, want)
				}
			}
		}
	}
}

// TestStarShapedness: if q is in a region, so is every point on the
// segment from the center to q (DESIGN.md §3).
func TestStarShapedness(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	domain := geom.Square(1000)
	for trial := 0; trial < 10; trial++ {
		objs := randObjects(rng, 10, 1000, 35)
		i := rng.Intn(len(objs))
		region := fullRegion(objs, i, domain)
		found := 0
		for k := 0; k < 3000 && found < 60; k++ {
			q := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
			if !region.Contains(q) {
				continue
			}
			found++
			for _, f := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
				m := geom.Lerp(region.Center(), q, f)
				if !region.Contains(m) {
					t.Fatalf("trial %d: region not star-shaped: %v in, %v (t=%v) out", trial, q, m, f)
				}
			}
		}
	}
}

// TestRadiusBoundary: the point at the radial bound lies on the region
// boundary — inside by the direct predicate with slack, with points just
// beyond it outside.
func TestRadiusBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	domain := geom.Square(1000)
	objs := randObjects(rng, 12, 1000, 30)
	i := 0
	region := fullRegion(objs, i, domain)
	for k := 0; k < 300; k++ {
		phi := rng.Float64() * 2 * math.Pi
		r, active := region.Radius(phi)
		if r <= 0 {
			continue
		}
		in := region.Center().Add(geom.PolarUnit(phi).Scale(r * 0.9999))
		out := region.Center().Add(geom.PolarUnit(phi).Scale(r*1.0001 + 1e-9))
		if !region.Contains(in) {
			t.Fatalf("phi=%v active=%d: point inside radial bound rejected", phi, active)
		}
		if domain.Contains(out) && region.Contains(out) {
			t.Fatalf("phi=%v active=%d: point beyond radial bound accepted", phi, active)
		}
	}
}

func TestEmptyRegionIsDomain(t *testing.T) {
	domain := geom.Square(100)
	region := NewPossibleRegion(geom.Pt(30, 40), domain)
	// Radius along +x must reach the east wall.
	r, active := region.Radius(0)
	if math.Abs(r-70) > 1e-12 || active != edgeEast {
		t.Errorf("Radius(0) = %v, active %d", r, active)
	}
	r, active = region.Radius(math.Pi / 2)
	if math.Abs(r-60) > 1e-12 || active != edgeNorth {
		t.Errorf("Radius(π/2) = %v, active %d", r, active)
	}
	// Area of the whole domain.
	if a := region.Area(512); math.Abs(a-10000) > 1 {
		t.Errorf("domain-region area = %v", a)
	}
	// Vertices: the four corners.
	vs := region.Vertices(256)
	if len(vs) != 4 {
		t.Fatalf("domain-region vertices = %d, want 4", len(vs))
	}
	for _, v := range vs {
		onCorner := false
		for _, c := range domain.Corners() {
			if v.P.Dist(c) < 1e-6 {
				onCorner = true
			}
		}
		if !onCorner {
			t.Errorf("vertex %v is not a domain corner", v.P)
		}
	}
}

func TestMaxRadiusIsUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	domain := geom.Square(1000)
	for trial := 0; trial < 10; trial++ {
		objs := randObjects(rng, 10, 1000, 30)
		i := rng.Intn(len(objs))
		region := fullRegion(objs, i, domain)
		d := region.MaxRadius(512)
		for k := 0; k < 2000; k++ {
			phi := rng.Float64() * 2 * math.Pi
			if r, _ := region.Radius(phi); r > d {
				t.Fatalf("trial %d: MaxRadius %v < Radius(%v) = %v", trial, d, phi, r)
			}
		}
	}
}

// TestSingleObjectCellIsDomain: with one object, its UV-cell is D.
func TestSingleObjectCellIsDomain(t *testing.T) {
	domain := geom.Square(500)
	o := uncertain.New(0, geom.Circle{C: geom.Pt(200, 300), R: 10}, nil)
	region := NewPossibleRegion(o.Region.C, domain)
	cell := region.Cell(0, 256)
	if len(cell.RObjects) != 0 {
		t.Errorf("r-objects of a singleton = %v", cell.RObjects)
	}
	if math.Abs(cell.Area()-domain.Area()) > domain.Area()*1e-3 {
		t.Errorf("cell area = %v, want %v", cell.Area(), domain.Area())
	}
}

// TestOverlappingObjectsNoConstraint: overlapping uncertainty regions
// produce no UV-edge (Xi(j) has zero area).
func TestOverlappingObjectsNoConstraint(t *testing.T) {
	oi := uncertain.New(0, geom.Circle{C: geom.Pt(100, 100), R: 30}, nil)
	oj := uncertain.New(1, geom.Circle{C: geom.Pt(140, 100), R: 30}, nil)
	region := NewPossibleRegion(oi.Region.C, geom.Square(1000))
	if region.AddObject(oi, oj) {
		t.Error("overlapping objects must not add a constraint")
	}
	if _, ok := NewConstraint(oi, oj); ok {
		t.Error("NewConstraint must fail for overlapping objects")
	}
}
