package core

import (
	"fmt"
	"math"
	"sort"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/rtree"
	"uvdiagram/internal/uncertain"
)

// Reference (naive) derivation — the pre-optimization Algorithm 2,
// retained verbatim as the equivalence oracle for the output-sensitive
// fast path: SelectSeeds materializes the full (k+1)-NN up front, the
// radial sweep is re-evaluated from scratch on every MaxRadius /
// Vertices use, and the id union builds a map per object. The optimized
// path (DeriveCR, the Build workers) must produce bitwise-identical
// cr-sets and therefore bitwise-identical indexes and answers; the
// property tests and `uvbench -exp derive` hold it to that, and the
// before/after numbers in BENCH_derive.json are measured against this
// implementation on the same hardware.

// referenceSelectSeeds is the eager sectored seed choice: a full
// (k+1)-NN query, then one pass over the materialized neighbors.
func referenceSelectSeeds(tree *rtree.Tree, oi uncertain.Object, k, ks int) []int32 {
	if k <= 0 {
		k = DefaultSeedK
	}
	if ks <= 0 {
		ks = DefaultSeedSectors
	}
	nbrs := tree.KNN(oi.Region.C, k+1)
	seeds := make([]int32, 0, ks)
	taken := make([]bool, ks)
	found := 0
	for _, nb := range nbrs {
		if nb.Item.ID == oi.ID || oi.Region.Overlaps(nb.Item.MBC) {
			continue
		}
		dir := nb.Item.MBC.C.Sub(oi.Region.C)
		sector := int(geom.NormalizeAngle(dir.Angle()) / (2 * math.Pi) * float64(ks))
		if sector >= ks {
			sector = ks - 1
		}
		if !taken[sector] {
			taken[sector] = true
			seeds = append(seeds, nb.Item.ID)
			found++
			if found == ks {
				break
			}
		}
	}
	return seeds
}

// referenceVertices is the from-scratch angular sweep: every sample
// angle re-evaluates the full constraint list through Radius.
func referenceVertices(p *PossibleRegion, samples int) []Vertex {
	if samples < 16 {
		samples = 16
	}
	n := samples
	phis := make([]float64, n)
	actives := make([]int, n)
	for i := 0; i < n; i++ {
		phis[i] = 2 * math.Pi * float64(i) / float64(n)
		_, actives[i] = p.Radius(phis[i])
	}
	var vs []Vertex
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		if actives[i] == actives[j] {
			continue
		}
		lo, hi := phis[i], phis[i]+2*math.Pi/float64(n)
		aLo := actives[i]
		for hi-lo > vertexTol {
			mid := lo + (hi-lo)/2
			if _, am := p.Radius(mid); am == aLo {
				lo = mid
			} else {
				hi = mid
			}
		}
		phi := geom.NormalizeAngle(lo + (hi-lo)/2)
		r, _ := p.Radius(phi)
		vs = append(vs, Vertex{
			Phi:    phi,
			R:      r,
			P:      p.center.Add(geom.PolarUnit(phi).Scale(r)),
			Before: actives[i],
			After:  actives[j],
		})
	}
	sort.Slice(vs, func(a, b int) bool { return vs[a].Phi < vs[b].Phi })
	return vs
}

// referenceMaxRadius re-derives the pruning bound from a fresh sweep.
func referenceMaxRadius(p *PossibleRegion, samples int) float64 {
	vs := referenceVertices(p, samples)
	d := 0.0
	for _, v := range vs {
		if v.R > d {
			d = v.R
		}
	}
	if len(vs) == 0 {
		for i := 0; i < samples; i++ {
			if r, _ := p.Radius(2 * math.Pi * float64(i) / float64(samples)); r > d {
				d = r
			}
		}
	}
	return d * (1 + 1e-6)
}

// referenceIPrune materializes the circular range result before
// filtering out Oi.
func referenceIPrune(tree *rtree.Tree, oi uncertain.Object, region *PossibleRegion, samples int) []int32 {
	d := referenceMaxRadius(region, samples)
	radius := 2*d - oi.Region.R
	if radius <= 0 {
		return nil
	}
	items := tree.CenterRange(geom.Circle{C: oi.Region.C, R: radius})
	ids := make([]int32, 0, len(items))
	for _, it := range items {
		if it.ID != oi.ID {
			ids = append(ids, it.ID)
		}
	}
	return ids
}

// referenceCPrune re-extracts the vertices (a second full sweep) before
// the d-bound test.
func referenceCPrune(candidates []int32, oi uncertain.Object, region *PossibleRegion, samples int, objs []uncertain.Object) []int32 {
	hull := hullOfVertices(referenceVertices(region, samples))
	if len(hull) == 0 {
		return candidates
	}
	bounds := make([]geom.Circle, len(hull))
	for i, v := range hull {
		bounds[i] = geom.Circle{C: v, R: v.Dist(oi.Region.C) * (1 + 1e-9)}
	}
	kept := make([]int32, 0, len(candidates))
	for _, id := range candidates {
		if oi.Region.Overlaps(objs[id].Region) {
			continue
		}
		cj := objs[id].Region.C
		for _, b := range bounds {
			if b.Contains(cj) {
				kept = append(kept, id)
				break
			}
		}
	}
	return kept
}

// referenceMergeIDs is the map-based sorted union.
func referenceMergeIDs(a, b []int32) []int32 {
	seen := make(map[int32]bool, len(a)+len(b))
	out := make([]int32, 0, len(a)+len(b))
	for _, s := range [][]int32{a, b} {
		for _, id := range s {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// referenceCell extracts the r-object ids of an exact cell through the
// from-scratch sweep (the RObjects half of PossibleRegion.Cell).
func referenceCell(p *PossibleRegion, samples int) []int32 {
	if samples <= 0 {
		samples = DefaultCellSamples
	}
	vs := referenceVertices(p, samples)
	seen := map[int32]bool{}
	var robjs []int32
	record := func(active int) {
		if active < 0 {
			return
		}
		id := p.cons[active].Obj
		if !seen[id] {
			seen[id] = true
			robjs = append(robjs, id)
		}
	}
	for _, v := range vs {
		record(v.Before)
		record(v.After)
	}
	if len(vs) == 0 {
		_, a := p.Radius(0)
		record(a)
	}
	sort.Slice(robjs, func(i, j int) bool { return robjs[i] < robjs[j] })
	return robjs
}

// DeriveCRObjectsReference is the naive Algorithm 2 for one object —
// the reference the optimized DeriveCRObjects/DeriveCR must match
// bitwise.
func DeriveCRObjectsReference(tree *rtree.Tree, oi uncertain.Object, objs []uncertain.Object, domain geom.Rect, k, ks, samples int) CRResult {
	seeds := referenceSelectSeeds(tree, oi, k, ks)
	region := NewPossibleRegion(oi.Region.C, domain)
	for _, id := range seeds {
		region.AddObject(oi, objs[id])
	}
	ids := referenceIPrune(tree, oi, region, samples)
	kept := referenceCPrune(ids, oi, region, samples, objs)
	cr := referenceMergeIDs(kept, seeds)
	return CRResult{Seeds: seeds, CR: cr, Region: region, NI: len(ids), NC: len(kept)}
}

// DeriveCRSetsReference is the naive whole-population derivation pass
// (sequential): per live object the constraint set the pre-optimization
// builder produced, under any strategy. It is the oracle of the
// derivation-equivalence property tests and the "before" measurement of
// `uvbench -exp derive`.
func DeriveCRSetsReference(store *uncertain.Store, domain geom.Rect, tree *rtree.Tree, opts BuildOptions) ([][]int32, error) {
	opts.normalize()
	objs := store.Dense()
	for i, o := range objs {
		if !store.Alive(int32(i)) {
			continue
		}
		if !domain.Contains(o.Region.C) {
			return nil, fmt.Errorf("core: object %d center %v outside domain %v", o.ID, o.Region.C, domain)
		}
	}
	if tree == nil && opts.Strategy != StrategyBasic {
		tree = BuildHelperRTree(store, opts.Fanout)
	}
	crSets := make([][]int32, len(objs))
	for i := range objs {
		if !store.Alive(int32(i)) {
			continue
		}
		oi := objs[i]
		switch opts.Strategy {
		case StrategyBasic:
			region := NewPossibleRegion(oi.Region.C, domain)
			for j := range objs {
				if j != i && store.Alive(int32(j)) {
					region.AddObject(oi, objs[j])
				}
			}
			crSets[i] = referenceCell(region, opts.CellSamples)
		case StrategyIC, StrategyICR:
			seeds := referenceSelectSeeds(tree, oi, opts.SeedK, opts.SeedSectors)
			region := NewPossibleRegion(oi.Region.C, domain)
			for _, id := range seeds {
				region.AddObject(oi, objs[id])
			}
			ids := referenceIPrune(tree, oi, region, opts.RegionSamples)
			kept := ids
			if !opts.DisableCPrune {
				kept = referenceCPrune(ids, oi, region, opts.RegionSamples, objs)
			}
			cr := referenceMergeIDs(kept, seeds)
			if opts.Strategy == StrategyIC {
				crSets[i] = cr
				break
			}
			refined := NewPossibleRegion(oi.Region.C, domain)
			for _, id := range cr {
				refined.AddObject(oi, objs[id])
			}
			crSets[i] = referenceCell(refined, opts.CellSamples)
		default:
			return nil, fmt.Errorf("core: unknown strategy %v", opts.Strategy)
		}
	}
	return crSets, nil
}
