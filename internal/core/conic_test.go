package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"uvdiagram/internal/geom"
)

// TestVerticesOnConics cross-validates the radial cell representation
// against the paper's hyperbola formulation (Equation 5): every cell
// vertex bounded by two UV-edges must satisfy both edges' implicit
// conic equations, and every vertex on a single UV-edge must satisfy
// that edge's distance definition exactly.
func TestVerticesOnConics(t *testing.T) {
	rng := rand.New(rand.NewSource(1001))
	domain := geom.Square(1000)
	for trial := 0; trial < 6; trial++ {
		objs := randObjects(rng, 14, 1000, 35)
		i := rng.Intn(len(objs))
		region := fullRegion(objs, i, domain)
		vs := region.Vertices(720)
		checked := 0
		for _, v := range vs {
			for _, side := range []int{v.Before, v.After} {
				if side < 0 {
					continue // domain edge
				}
				c := region.Constraints()[side]
				// Distance definition: |Delta| ≈ 0 at the vertex.
				if d := c.Edge.Delta(v.P); math.Abs(d) > 1e-5*(1+v.R) {
					t.Fatalf("trial %d: vertex %v not on UV-edge of pair (%d,%d): Delta=%v",
						trial, v.P, i, c.Obj, d)
				}
				// Implicit conic of Equation 5 (squared form): scaled
				// residual must vanish.
				scale := math.Pow(v.P.DistSq(c.Edge.Fi)+1, 2)
				if r := c.Edge.ImplicitEval(v.P); math.Abs(r)/scale > 1e-5 {
					t.Fatalf("trial %d: vertex %v violates implicit conic: %v",
						trial, v.P, r/scale)
				}
				checked++
			}
		}
		if checked == 0 {
			t.Log("no hyperbolic vertices in this instance (all domain corners)")
		}
	}
}

// TestRegionMembershipQuick is a quick.Check property: for arbitrary
// query points, membership via the radial function agrees with the
// direct constraint predicate.
func TestRegionMembershipQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1013))
	domain := geom.Square(1000)
	objs := randObjects(rng, 10, 1000, 30)
	region := fullRegion(objs, 0, domain)
	cfg := &quick.Config{MaxCount: 500, Rand: rng}
	err := quick.Check(func(xf, yf float64) bool {
		// Map arbitrary floats into the domain.
		x := math.Mod(math.Abs(xf), 1000)
		y := math.Mod(math.Abs(yf), 1000)
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		q := geom.Pt(x, y)
		direct := region.Contains(q)
		d := q.Dist(region.Center())
		if d < 1e-9 {
			return direct
		}
		r, _ := region.RadiusDir(q.Sub(region.Center()).Unit())
		radial := d <= r+1e-9
		if direct != radial {
			// Tolerate only boundary coincidence.
			return math.Abs(d-r) < 1e-6
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestCellAreaMonotoneInConstraints: adding constraints never grows the
// region area (quadrature sanity under composition).
func TestCellAreaMonotoneInConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(1019))
	domain := geom.Square(1000)
	objs := randObjects(rng, 12, 1000, 30)
	region := NewPossibleRegion(objs[0].Region.C, domain)
	prev := region.Area(512)
	for j := 1; j < len(objs); j++ {
		if !region.AddObject(objs[0], objs[j]) {
			continue
		}
		cur := region.Area(512)
		if cur > prev*(1+1e-9) {
			t.Fatalf("area grew after adding constraint %d: %v -> %v", j, prev, cur)
		}
		prev = cur
	}
}
