package core

import (
	"uvdiagram/internal/geom"
	"uvdiagram/internal/uncertain"
)

// Constraint is the outside region Xi(j) of one UV-edge, tagged with the
// identity of the reference object Oj. A point inside the outside
// region can never have Oi as a nearest neighbor.
type Constraint struct {
	Obj  int32 // j, the object on the far side of the edge
	Edge geom.UVEdge
}

// NewConstraint builds the constraint Oi gains from Oj. ok is false when
// the two uncertainty regions overlap, in which case Xi(j) is empty and
// no constraint exists (Section III-C).
func NewConstraint(oi, oj uncertain.Object) (Constraint, bool) {
	e := geom.NewUVEdge(oi.Region, oj.Region)
	if !e.Exists() {
		return Constraint{}, false
	}
	return Constraint{Obj: oj.ID, Edge: e}, true
}

// Excludes reports whether p lies strictly inside the outside region.
func (c Constraint) Excludes(p geom.Point) bool { return c.Edge.InOutside(p) }

// ExcludesRect reports whether the whole rectangle r lies inside the
// outside region, via the 4-point test of Algorithm 5: the outside
// region is convex, so containment of the four corners implies
// containment of the rectangle.
func (c Constraint) ExcludesRect(r geom.Rect) bool {
	for _, corner := range r.Corners() {
		if !c.Edge.InOutside(corner) {
			return false
		}
	}
	return true
}

// ConstraintsFromIDs builds the constraint list of object oi against the
// reference candidates ids (overlapping objects are skipped — they
// contribute no edge).
func ConstraintsFromIDs(oi uncertain.Object, ids []int32, objs []uncertain.Object) []Constraint {
	cons := make([]Constraint, 0, len(ids))
	for _, id := range ids {
		if id == oi.ID {
			continue
		}
		if c, ok := NewConstraint(oi, objs[id]); ok {
			cons = append(cons, c)
		}
	}
	return cons
}
