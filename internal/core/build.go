package core

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"uvdiagram/internal/geom"
	"uvdiagram/internal/pager"
	"uvdiagram/internal/rtree"
	"uvdiagram/internal/uncertain"
)

// Strategy selects how the per-object constraint sets fed to the index
// are obtained (Section VI-B.3).
type Strategy int

const (
	// StrategyIC (the paper's recommendation): I- and C-pruning produce
	// cr-objects that go straight into the index.
	StrategyIC Strategy = iota
	// StrategyICR: like IC but refines cr-objects to exact r-objects
	// first.
	StrategyICR
	// StrategyBasic: Algorithm 1 — exact UV-cells against every other
	// object, no pruning. Exponentially more expensive; used only as
	// the baseline of Figure 7(a).
	StrategyBasic
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyIC:
		return "IC"
	case StrategyICR:
		return "ICR"
	case StrategyBasic:
		return "Basic"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// BuildOptions configure index construction.
type BuildOptions struct {
	Strategy      Strategy
	Index         IndexOptions
	SeedK         int // k of the seed k-NN query (paper: 300)
	SeedSectors   int // ks sectors (paper: 8)
	RegionSamples int // angular resolution for pruning bounds and hulls
	CellSamples   int // angular resolution for exact cells (ICR/Basic)
	Fanout        int // fanout of the helper R-tree
	// Workers parallelizes the per-object derivation phase (seeds,
	// pruning, refinement) across goroutines; results are identical to
	// a sequential build. 0 or 1 means sequential — the paper's
	// single-threaded setting, which the timing figures assume.
	Workers int
	// DisableCPrune skips computational-level pruning (Lemma 3), keeping
	// every I-pruning survivor as a cr-object. Ablation knob: isolates
	// the contribution of each pruning level (Figure 7(b)).
	DisableCPrune bool
	// CompactSlack, when positive, arms automatic compaction: once the
	// live index's accumulated mutation slack (UVIndex.Slack) reaches
	// this watermark, the DB rebuilds itself in the background and
	// atomically swaps the fresh index in. 0 (the default) disables
	// auto-compaction; explicit DB.Compact always works.
	CompactSlack int
}

// DefaultBuildOptions mirrors Section VI-A.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{
		Strategy:      StrategyIC,
		Index:         DefaultIndexOptions(),
		SeedK:         DefaultSeedK,
		SeedSectors:   DefaultSeedSectors,
		RegionSamples: 256,
		CellSamples:   DefaultCellSamples,
		Fanout:        rtree.DefaultFanout,
	}
}

func (o *BuildOptions) normalize() {
	if o.SeedK <= 0 {
		o.SeedK = DefaultSeedK
	}
	if o.SeedSectors <= 0 {
		o.SeedSectors = DefaultSeedSectors
	}
	if o.RegionSamples <= 0 {
		o.RegionSamples = 256
	}
	if o.CellSamples <= 0 {
		o.CellSamples = DefaultCellSamples
	}
	if o.Fanout <= 0 {
		o.Fanout = rtree.DefaultFanout
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	o.Index.normalize()
}

// BuildStats records construction cost and its components, matching the
// breakdowns of Figures 7(b), 7(d) and 7(e). With Workers > 1 the phase
// durations are summed CPU time across workers, while TotalDur remains
// wall clock.
type BuildStats struct {
	Strategy Strategy
	N        int

	SeedDur   time.Duration // initPossibleRegion (seeds + initial region)
	PruneDur  time.Duration // I- and C-pruning
	RefineDur time.Duration // exact-cell generation (ICR/Basic)
	IndexDur  time.Duration // Algorithm 3 inserts + page writes
	TotalDur  time.Duration

	SumI  int64 // Σ |I| over objects (I-pruning survivors)
	SumCR int64 // Σ |Ci|
	SumR  int64 // Σ |Fi| (ICR/Basic only)

	Index IndexStats
}

// String summarizes the build for logs: strategy, size, the phase
// breakdown and the pruning outcome.
func (s BuildStats) String() string {
	return fmt.Sprintf("build[%s]: n=%d total=%v (seed %v, prune %v, refine %v, index %v), avg|CR|=%.1f, pruned %.1f%%",
		s.Strategy, s.N, s.TotalDur.Round(time.Millisecond),
		s.SeedDur.Round(time.Millisecond), s.PruneDur.Round(time.Millisecond),
		s.RefineDur.Round(time.Millisecond), s.IndexDur.Round(time.Millisecond),
		s.AvgCR(), 100*s.CPruneRatio())
}

// IPruneRatio is the pruning ratio pc of I-pruning: the average
// fraction of the other n−1 objects eliminated.
func (s BuildStats) IPruneRatio() float64 { return s.ratio(s.SumI) }

// CPruneRatio is the pruning ratio after C-pruning (i.e. of the final
// cr-sets).
func (s BuildStats) CPruneRatio() float64 { return s.ratio(s.SumCR) }

func (s BuildStats) ratio(sum int64) float64 {
	if s.N <= 1 {
		return 0
	}
	return 1 - float64(sum)/float64(s.N)/float64(s.N-1)
}

// AvgCR returns the mean cr-set size.
func (s BuildStats) AvgCR() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.SumCR) / float64(s.N)
}

// AvgR returns the mean r-set size (ICR/Basic).
func (s BuildStats) AvgR() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.SumR) / float64(s.N)
}

// deriveStats are the per-object counters accumulated by one worker.
type deriveStats struct {
	seed, prune, refine time.Duration
	sumI, sumCR, sumR   int64
}

func (d *deriveStats) add(o deriveStats) {
	d.seed += o.seed
	d.prune += o.prune
	d.refine += o.refine
	d.sumI += o.sumI
	d.sumCR += o.sumCR
	d.sumR += o.sumR
}

// builder carries the shared read-only state of a construction run.
// objs is the store's DENSE slice (positions are ids); tombstoned slots
// are skipped via alive, so a build over a store with deletions is
// exactly a fresh build over the survivors.
type builder struct {
	objs   []uncertain.Object
	alive  func(int32) bool
	domain geom.Rect
	tree   *rtree.Tree
	opts   BuildOptions
	// sc is the worker's private derivation scratch: every per-object
	// buffer (NN browse heap, seeds, pruning ids, hull, region radius
	// profiles) is reused across the worker's whole object stream, so
	// steady-state derivation allocates only the retained cr-sets.
	sc *DeriveScratch
}

// deriveOne computes object i's cell representation (cr- or r-object
// ids) according to the strategy.
func (b *builder) deriveOne(i int) ([]int32, deriveStats) {
	var ds deriveStats
	oi := b.objs[i]
	sc := b.sc
	switch b.opts.Strategy {
	case StrategyBasic:
		tr := time.Now()
		region := &sc.refine
		region.Reset(oi.Region.C, b.domain)
		for j := range b.objs {
			if j != i && b.alive(int32(j)) {
				region.AddObject(oi, b.objs[j])
			}
		}
		cell := region.Cell(oi.ID, b.opts.CellSamples)
		ds.refine = time.Since(tr)
		ds.sumR = int64(len(cell.RObjects))
		return cell.RObjects, ds

	case StrategyICR, StrategyIC:
		ts := time.Now()
		sc.selectSeeds(b.tree, oi, b.opts.SeedK, b.opts.SeedSectors)
		region := &sc.region
		region.Reset(oi.Region.C, b.domain)
		for _, id := range sc.seeds {
			region.AddObject(oi, b.objs[id])
		}
		ds.seed = time.Since(ts)

		tp := time.Now()
		sc.ids = iPruneInto(b.tree, oi, region, b.opts.RegionSamples, sc.ids[:0])
		kept := sc.ids
		if !b.opts.DisableCPrune {
			kept = cPruneInto(sc.ids, oi, region, b.opts.RegionSamples, b.objs, sc)
		}
		nI := len(sc.ids)
		slices.Sort(kept)
		sc.sorted = append(sc.sorted[:0], sc.seeds...)
		slices.Sort(sc.sorted)
		cr := mergeSorted(kept, sc.sorted)
		ds.prune = time.Since(tp)
		ds.sumI = int64(nI)
		ds.sumCR = int64(len(cr))

		if b.opts.Strategy == StrategyIC {
			return cr, ds
		}
		tr := time.Now()
		refined := &sc.refine
		refined.Reset(oi.Region.C, b.domain)
		for _, id := range cr {
			refined.AddObject(oi, b.objs[id])
		}
		cell := refined.Cell(oi.ID, b.opts.CellSamples)
		ds.refine = time.Since(tr)
		ds.sumR = int64(len(cell.RObjects))
		return cell.RObjects, ds
	}
	panic(fmt.Sprintf("core: unknown strategy %v", b.opts.Strategy))
}

// Build constructs the UV-index over the store's objects with the given
// strategy. tree is the R-tree over the uncertain objects used by the
// pruning steps; if nil, one is bulk-loaded first (the paper likewise
// assumes the R-tree "is available for use" and does not charge it to
// construction time).
func Build(store *uncertain.Store, domain geom.Rect, tree *rtree.Tree, opts BuildOptions) (*UVIndex, BuildStats, error) {
	t0 := time.Now()
	crSets, stats, err := DeriveCRSets(store, domain, tree, opts)
	if err != nil {
		return nil, stats, err
	}
	opts.normalize()
	ix, indexDur := BuildRegion(store, domain, crSets, opts.Index)
	stats.IndexDur = indexDur
	stats.TotalDur = time.Since(t0)
	stats.Index = ix.Stats()
	return ix, stats, nil
}

// DeriveCRSets runs the per-object derivation phase of construction
// (seeds, I-/C-pruning, optional refinement) over every live object and
// returns the constraint sets, indexed by dense id (dead slots stay
// nil). The sets are independent of any index region, so a spatially
// sharded engine derives them once and feeds them to one BuildRegion
// call per shard. The returned stats carry the derivation components;
// the caller fills in IndexDur/TotalDur/Index after indexing.
func DeriveCRSets(store *uncertain.Store, domain geom.Rect, tree *rtree.Tree, opts BuildOptions) ([][]int32, BuildStats, error) {
	opts.normalize()
	// The dense slice keeps position == id; tombstoned slots are skipped
	// everywhere, so this is a fresh derivation over the survivors.
	objs := store.Dense()
	stats := BuildStats{Strategy: opts.Strategy, N: store.Live()}
	for i, o := range objs {
		if !store.Alive(int32(i)) {
			continue
		}
		if !domain.Contains(o.Region.C) {
			return nil, stats, fmt.Errorf("core: object %d center %v outside domain %v", o.ID, o.Region.C, domain)
		}
	}
	if tree == nil && opts.Strategy != StrategyBasic {
		tree = BuildHelperRTree(store, opts.Fanout)
	}
	// The R-tree's simulated-disk reads during construction are the
	// paper's "assumed available" index; workers may not share one tree
	// pager concurrently, so each worker gets a private clone of the
	// bulk-load when parallelism is requested.
	b := &builder{objs: objs, alive: store.Alive, domain: domain, tree: tree, opts: opts, sc: NewDeriveScratch()}

	crSets := make([][]int32, len(objs))

	if opts.Workers > 1 {
		var (
			wg    sync.WaitGroup
			mu    sync.Mutex
			total deriveStats
			next  = make(chan int)
		)
		for w := 0; w < opts.Workers; w++ {
			wtree := tree
			if wtree != nil && w > 0 {
				wtree = BuildHelperRTree(store, opts.Fanout)
			}
			wg.Add(1)
			go func(wtree *rtree.Tree) {
				defer wg.Done()
				wb := &builder{objs: objs, alive: store.Alive, domain: domain, tree: wtree, opts: opts, sc: NewDeriveScratch()}
				var local deriveStats
				for i := range next {
					crSet, ds := wb.deriveOne(i)
					crSets[i] = crSet
					local.add(ds)
				}
				mu.Lock()
				total.add(local)
				mu.Unlock()
			}(wtree)
		}
		for i := range objs {
			if store.Alive(int32(i)) {
				next <- i
			}
		}
		close(next)
		wg.Wait()
		stats.SeedDur, stats.PruneDur, stats.RefineDur = total.seed, total.prune, total.refine
		stats.SumI, stats.SumCR, stats.SumR = total.sumI, total.sumCR, total.sumR
	} else {
		var total deriveStats
		for i := range objs {
			if !store.Alive(int32(i)) {
				continue
			}
			crSet, ds := b.deriveOne(i)
			crSets[i] = crSet
			total.add(ds)
		}
		stats.SeedDur, stats.PruneDur, stats.RefineDur = total.seed, total.prune, total.refine
		stats.SumI, stats.SumCR, stats.SumR = total.sumI, total.sumCR, total.sumR
	}
	return crSets, stats, nil
}

// BuildRegion constructs a finished UV-index over region — the whole
// domain, or one spatial shard of it — from constraint sets derived by
// DeriveCRSets, recording them in a fresh registry the index owns. The
// crSets slices are shared, never copied or mutated.
func BuildRegion(store *uncertain.Store, region geom.Rect, crSets [][]int32, opts IndexOptions) (*UVIndex, time.Duration) {
	return BuildRegionCR(store, region, NewCRState(crSets), opts)
}

// BuildRegionCR is BuildRegion over an external constraint registry —
// the shards of one engine each build from the engine's single shared
// CRState this way. Every live object is offered to the index; an
// object whose UV-cell cannot reach region is dropped by the root-level
// overlap test and contributes no leaf entries, while its registry
// entry still lets incremental deletes find every dependent whose cell
// might later grow into the region. The registry is only read, so
// concurrent BuildRegionCR calls for disjoint shards may feed off one
// derivation pass.
func BuildRegionCR(store *uncertain.Store, region geom.Rect, cr *CRState, opts IndexOptions) (*UVIndex, time.Duration) {
	ix := NewUVIndexCR(store, region, opts, cr)
	return ix, ix.fillFromCR()
}

// fillFromCR inserts every live object from the registry and seals the
// index — the one registry-driven build loop (cell order must be set
// BEFORE this runs; the overlap test depends on it).
func (ix *UVIndex) fillFromCR() time.Duration {
	ti := time.Now()
	for i := 0; i < ix.cr.Len(); i++ {
		if ix.store.Alive(int32(i)) {
			ix.InsertShared(int32(i))
		}
	}
	ix.Finish()
	return time.Since(ti)
}

// ReindexCR rebuilds a fresh finished index over the same domain,
// options and cell order from the given registry. DB.Load uses it when
// a shard's stream carried a registry copy that diverged from the
// engine-wide one (pre-shared-registry snapshots), so the rebuilt leaf
// lists are consistent with the registry the engine will maintain.
func (ix *UVIndex) ReindexCR(cr *CRState) *UVIndex {
	nx := NewUVIndexCR(ix.store, ix.domain, ix.opts, cr)
	nx.orderK = ix.orderK
	nx.fillFromCR()
	return nx
}

// BuildHelperRTree bulk-loads the R-tree over the LIVE uncertain
// objects; both the pruning steps and the query-time baseline use it.
func BuildHelperRTree(store *uncertain.Store, fanout int) *rtree.Tree {
	objs := store.All() // live objects only
	items := make([]rtree.Item, len(objs))
	for i, o := range objs {
		items[i] = rtree.Item{ID: o.ID, MBC: o.Region, Ptr: uint64(store.PageOf(o.ID))}
	}
	return rtree.BulkLoad(items, fanout, pager.New(pager.DefaultPageSize))
}
