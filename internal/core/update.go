package core

import (
	"fmt"
	"sort"

	"uvdiagram/internal/pager"
)

// Incremental updates — the extension the paper lists as future work
// ("it would be interesting to study how the UV-diagram can be extended
// to support ... incremental updates").
//
// Insertion is sound without touching existing entries because of a
// monotonicity property of the UV-diagram: adding an object can only
// SHRINK every other object's UV-cell (each new outside region removes
// points, never adds them). Leaf lists are defined as supersets of the
// cells overlapping the leaf, so existing lists remain valid supersets
// after any insertion; the query-time dminmax filter removes the now-
// impossible candidates exactly.
//
// Deletion is the asymmetric case: removing an object GROWS every
// neighboring UV-cell, so existing leaf lists can stop being supersets.
// The damage is bounded, though: an object's cell can only change if
// the victim's constraint participated in its representation, i.e. if
// the victim is in its cr-set. DeleteLive therefore re-derives and
// re-inserts exactly the objects in revCR[victim] (tracked since
// construction) and answers stay exact. The price of both operations is
// accumulated slack (extra false positives, never wrong answers),
// counted in Slack; long-running deployments compact when it drifts up
// (DB.Compact / BuildOptions.CompactSlack).

// InsertLive adds object id (already appended to the store) to a
// finished index, represented by its cr-object ids. Affected leaf pages
// are rewritten in place where possible.
//
// The constraint set is always recorded — later deletes consult it even
// in indexes the object has no leaf entries in — but slack and the
// cache-invalidating generation only advance when some leaf actually
// changed, so a spatial shard the object's cell never reaches keeps its
// caches, its continuous-query safe circles and its compaction budget.
func (ix *UVIndex) InsertLive(id int32, crIDs []int32) error {
	if !ix.finished {
		return fmt.Errorf("core: InsertLive before Finish (use Insert during construction)")
	}
	if int(id) != len(ix.crOf) {
		return fmt.Errorf("core: InsertLive id %d out of order, want %d", id, len(ix.crOf))
	}
	if int(id) >= ix.store.Len() {
		return fmt.Errorf("core: object %d not in the store", id)
	}
	ix.crOf = append(ix.crOf, crIDs)
	ix.revCR = append(ix.revCR, nil)
	ix.addRev(id, crIDs)
	if ix.insertObj(id, ix.store.At(int(id)), crIDs, ix.root, ix.domain, 0) {
		ix.flushDirty(ix.root)
		ix.slack.Add(1)
		ix.gen.Add(1) // invalidate leaf caches
	}
	return nil
}

// DeleteLive removes object victim from a finished index. rederive must
// return a fresh cr-set for a surviving object, computed WITHOUT the
// victim (the caller has already tombstoned it in the store and removed
// it from the helper R-tree).
//
// Soundness: the victim's entries are dropped from every leaf; the
// objects whose cr-set contains the victim (revCR) are the only ones
// whose UV-cell can grow, so each is stripped from the leaves, given a
// freshly derived cr-set and re-inserted — leaf lists are supersets of
// the true overlaps again and answers remain exact. The returned slice
// holds the re-derived ids (sorted), mainly for instrumentation.
func (ix *UVIndex) DeleteLive(victim int32, rederive func(id int32) []int32) ([]int32, error) {
	return ix.DeleteLiveBatch([]int32{victim}, rederive)
}

// DeleteLiveBatch is DeleteLive over many victims at once, sharing the
// expensive whole-tree passes: the victims and the union of their
// dependents are stripped in ONE leaf walk, dirty pages are flushed
// once, and the mutation generation (which empties leaf caches) bumps
// once. Every victim must already be tombstoned in the store and gone
// from the helper R-tree, so the rederive callbacks see the final
// post-batch population.
func (ix *UVIndex) DeleteLiveBatch(victims []int32, rederive func(id int32) []int32) ([]int32, error) {
	if !ix.finished {
		return nil, fmt.Errorf("core: DeleteLive before Finish")
	}
	vic := make(map[int32]bool, len(victims))
	for _, v := range victims {
		if v < 0 || int(v) >= len(ix.crOf) {
			return nil, fmt.Errorf("core: DeleteLive of unknown object %d", v)
		}
		vic[v] = true
	}

	// The dependents of the whole batch, deduplicated, minus the
	// victims themselves; sorted for deterministic re-insertion order
	// (leaf list order is insertion order).
	affectedSet := make(map[int32]bool)
	for _, v := range victims {
		for _, a := range ix.revCR[v] {
			if !vic[a] {
				affectedSet[a] = true
			}
		}
	}
	affected := make([]int32, 0, len(affectedSet))
	for a := range affectedSet {
		affected = append(affected, a)
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })

	// One walk removes every victim and every affected object from the
	// leaf lists; the affected ones come back below with fresh cr-sets,
	// so no leaf ever holds a duplicate entry. touched collects the ids
	// that actually had leaf entries here — in a spatial shard most of
	// the engine-wide batch may be elsewhere, and only real leaf churn
	// should advance this index's slack and generation.
	remove := make(map[int32]bool, len(vic)+len(affected))
	for v := range vic {
		remove[v] = true
	}
	for _, a := range affected {
		remove[a] = true
	}
	touched := make(map[int32]bool)
	ix.removeFromLeaves(ix.root, remove, touched)

	// Unlink the victims from both directions of the cr-maps.
	for _, v := range victims {
		ix.dropRev(v, ix.crOf[v])
		ix.crOf[v] = nil
		ix.revCR[v] = nil
	}

	for _, a := range affected {
		ix.dropRev(a, ix.crOf[a])
		crIDs := rederive(a)
		ix.crOf[a] = crIDs
		ix.addRev(a, crIDs)
		if ix.insertObj(a, ix.store.At(int(a)), crIDs, ix.root, ix.domain, 0) {
			touched[a] = true
		}
	}

	if len(touched) > 0 {
		ix.flushDirty(ix.root)
		ix.slack.Add(int64(len(touched)))
		ix.gen.Add(1) // invalidate leaf caches
	}
	return affected, nil
}

// removeFromLeaves filters every leaf list against the remove set,
// marking changed leaves dirty for the next flush and recording the ids
// actually removed somewhere in touched.
func (ix *UVIndex) removeFromLeaves(n *qnode, remove, touched map[int32]bool) {
	if !n.isLeaf() {
		for _, c := range n.children {
			ix.removeFromLeaves(c, remove, touched)
		}
		return
	}
	kept := n.ids[:0]
	for _, id := range n.ids {
		if !remove[id] {
			kept = append(kept, id)
		} else {
			touched[id] = true
		}
	}
	if len(kept) != len(n.ids) {
		n.ids = kept
		n.dirty = true
	}
}

// flushDirty rewrites the page lists of leaves modified since the last
// flush, reusing already-allocated pages where they suffice.
func (ix *UVIndex) flushDirty(n *qnode) {
	if !n.isLeaf() {
		for _, c := range n.children {
			ix.flushDirty(c)
		}
		return
	}
	if !n.dirty {
		return
	}
	n.dirty = false
	tuples := make([]pager.LeafTuple, len(n.ids))
	for i, id := range n.ids {
		o := ix.store.At(int(id))
		tuples[i] = pager.LeafTuple{
			ID: id,
			CX: o.Region.C.X, CY: o.Region.C.Y, R: o.Region.R,
			Pointer: uint64(ix.store.PageOf(id)),
		}
	}
	var pages []pager.PageID
	slot := 0
	for off := 0; ; off += ix.capPerPage {
		end := off + ix.capPerPage
		if end > len(tuples) {
			end = len(tuples)
		}
		var chunk []pager.LeafTuple
		if off < len(tuples) {
			chunk = tuples[off:end]
		}
		payload := pager.EncodeLeafTuples(chunk)
		if slot < len(n.pages) {
			ix.pg.Write(n.pages[slot], payload)
			pages = append(pages, n.pages[slot])
		} else {
			pages = append(pages, ix.pg.Alloc(payload))
		}
		slot++
		if end >= len(tuples) {
			break
		}
	}
	n.pages = pages
}
